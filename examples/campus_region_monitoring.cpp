// Campus temperature monitoring with region-monitoring queries
// (Algorithms 3 + 4): facilities teams monitor building zones of a campus
// modeled as a Gaussian random field (the Intel-lab substitute). Shows the
// GP machinery end to end: per-slot sampling-point selection, point-query
// generation, Eq. (18) cost weighting, opportunistic sensor sharing, and
// the achieved-vs-requested quality metric.

#include <cstdio>

#include "common/rng.h"
#include "core/point_scheduling.h"
#include "core/region_monitoring.h"
#include "core/slot.h"
#include "data/gaussian_field.h"
#include "mobility/random_waypoint.h"
#include "sim/workload.h"
#include "sim/experiments.h"

int main() {
  using namespace psens;
  constexpr int kSlots = 25;

  // The campus: a 20 x 15 field with spatially correlated temperature.
  GaussianField::Config field_config;
  field_config.num_slots = kSlots;
  const GaussianField field(field_config);
  const Rect campus{0, 0, 20, 15};

  // 30 staff phones roaming the campus.
  RandomWaypointConfig mobility;
  mobility.num_sensors = 30;
  mobility.num_slots = kSlots;
  mobility.region_size = 20;
  mobility.region_height = 15;
  mobility.min_max_speed = 1;
  mobility.max_max_speed = 2;
  const Trace trace = GenerateRandomWaypoint(mobility);

  Rng rng(42);
  SensorPopulationConfig population;
  population.count = 30;
  population.lifetime = kSlots;
  std::vector<Sensor> sensors = GenerateSensors(population, rng);

  RegionMonitoringManager::Config config;
  RegionMonitoringManager manager(field.SpatialKernel(), config);

  // Three standing zone-monitoring queries.
  struct Zone {
    const char* name;
    Rect region;
  };
  const Zone zones[] = {
      {"library", Rect{1, 1, 8, 7}},
      {"labs", Rect{6, 5, 14, 12}},  // overlaps the library zone
      {"cafeteria", Rect{13, 2, 19, 9}},
  };
  int id = 0;
  for (const Zone& zone : zones) {
    RegionMonitoringQuery q;
    q.id = id++;
    q.region = zone.region;
    q.t1 = 0;
    q.t2 = kSlots - 1;
    // Budget rate comparable to Fig. 9's: enough that a planned sample's
    // marginal valuation clears the C_s = 10 sensor price.
    q.budget = zone.region.Area() * 60.0;
    manager.AddQuery(q);
  }

  double welfare = 0.0;
  std::printf("slot  planned  satisfied  shared  slot_value  slot_cost\n");
  for (int t = 0; t < kSlots; ++t) {
    ApplyTraceSlot(trace, t, &sensors);
    const SlotContext slot = BuildSlotContext(sensors, campus, t, 2.0);
    const std::vector<PointQuery> created = manager.CreatePointQueries(slot);
    PointSchedulingOptions options;
    options.scheduler = PointScheduler::kOptimal;
    const PointScheduleResult schedule = SchedulePointQueries(created, slot, options);
    const RegionMonitoringManager::SlotOutcome outcome = manager.ApplyResults(
        slot, created, schedule.assignments, schedule.selected_sensors);
    for (int si : schedule.selected_sensors) {
      sensors[slot.sensors[si].sensor_id].RecordReading(t);
    }
    welfare += outcome.value_gain - schedule.total_cost;
    std::printf("%4d  %7zu  %9d  %6.1f  %10.2f  %9.2f\n", t, created.size(),
                schedule.NumSatisfied(), outcome.contribution,
                outcome.value_gain, schedule.total_cost);
  }
  manager.RemoveExpired(kSlots + 1);
  std::printf("\ntotal welfare: %.2f  mean zone quality (achieved/requested): %.2f\n",
              welfare, manager.MeanCompletedQuality());
  // The actual field readings would now be handed to the query processor;
  // show one sample for flavor.
  std::printf("library center temperature at final slot: %.2f\n",
              field.Value(kSlots - 1, Point{4.5, 4}));
  return 0;
}
