// Privacy/cost trade-off study: how participants' privacy sensitivity
// (Eq. 14/15) shapes prices, selection, and social welfare. Sweeps the
// fleet's privacy sensitivity level and reports per-level welfare and how
// the privacy surcharge spreads measurements across sensors (a sensor that
// just reported becomes expensive, so the scheduler rotates the load).

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/point_scheduling.h"
#include "core/slot.h"
#include "mobility/random_waypoint.h"
#include "sim/workload.h"
#include "sim/experiments.h"

int main() {
  using namespace psens;
  constexpr int kSlots = 30;

  RandomWaypointConfig mobility;
  mobility.num_sensors = 120;
  mobility.num_slots = kSlots;
  const Trace trace = GenerateRandomWaypoint(mobility);
  const Rect working = CentralSubregion(80, 50);

  std::printf("%-10s %12s %12s %14s %16s\n", "PSL", "avg_utility",
              "avg_price", "satisfaction", "distinct_sensors");
  for (const PrivacySensitivity level :
       {PrivacySensitivity::kZero, PrivacySensitivity::kLow,
        PrivacySensitivity::kModerate, PrivacySensitivity::kHigh,
        PrivacySensitivity::kVeryHigh}) {
    Rng rng(11);
    SensorPopulationConfig population;
    population.count = mobility.num_sensors;
    population.lifetime = kSlots;
    std::vector<Sensor> sensors = GenerateSensors(population, rng);
    for (Sensor& s : sensors) {
      SensorProfile profile = s.profile();
      profile.privacy = level;
      s = Sensor(s.id(), profile);
    }

    Rng workload_rng(77);
    RunningStat utility, price;
    int64_t asked = 0, answered = 0;
    std::vector<int> readings_per_sensor(mobility.num_sensors, 0);
    for (int t = 0; t < kSlots; ++t) {
      ApplyTraceSlot(trace, t, &sensors);
      const SlotContext slot = BuildSlotContext(sensors, working, t, 5.0);
      for (const SlotSensor& s : slot.sensors) price.Add(s.cost);
      Rng slot_rng = workload_rng.Fork(t);
      const auto queries = GeneratePointQueries(
          150, working, BudgetScheme{20.0, false, 0.0}, 0.2, 0, slot_rng);
      PointSchedulingOptions options;
      options.scheduler = PointScheduler::kLocalSearch;
      const PointScheduleResult r = SchedulePointQueries(queries, slot, options);
      utility.Add(r.Utility());
      asked += static_cast<int64_t>(queries.size());
      answered += r.NumSatisfied();
      for (int si : r.selected_sensors) {
        const int id = slot.sensors[si].sensor_id;
        sensors[id].RecordReading(t);
        ++readings_per_sensor[id];
      }
    }
    int distinct = 0;
    for (int c : readings_per_sensor) distinct += c > 0 ? 1 : 0;
    const char* names[] = {"Zero", "Low", "Moderate", "High", "VeryHigh"};
    std::printf("%-10s %12.1f %12.2f %14.3f %16d\n",
                names[static_cast<int>(level)], utility.Mean(), price.Mean(),
                static_cast<double>(answered) / static_cast<double>(asked),
                distinct);
  }
  std::printf(
      "\nHigher privacy sensitivity raises announced prices (Eq. 15), which\n"
      "lowers welfare and satisfaction but spreads readings over more\n"
      "sensors: recently-used sensors price themselves out (Eq. 14).\n");
  return 0;
}
