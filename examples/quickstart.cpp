// Quickstart: the smallest end-to-end use of the psens public API.
//
// Sets up a handful of mobile sensors, submits point queries for one time
// slot, runs the three schedulers, and prints who got what at which price.
// Pass a thread count (default 1) to run the joint greedy selection of
// step 5 with intra-slot parallel valuation — same answers to the bit,
// with the slot-turnover timing printed:
//
//   ./quickstart 8
//
// A 12-sensor toy slot is far too small to profit from threads; this
// only demonstrates the API. bench/fig12_streaming --threads N measures
// the real serving speedup at city scale.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/point_scheduling.h"
#include "core/sensor.h"
#include "core/slot.h"

int main(int argc, char** argv) {
  using namespace psens;
  const int threads = argc > 1 ? std::atoi(argv[1]) : 1;

  // 1. A small sensor fleet. Each sensor has an inherent inaccuracy, a
  //    trust score, and announces a price per measurement (Eq. 8).
  std::vector<Sensor> sensors;
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    SensorProfile profile;
    profile.inaccuracy = rng.Uniform(0.0, 0.2);
    profile.base_price = 10.0;
    sensors.emplace_back(i, profile);
    sensors.back().SetPosition(Point{rng.Uniform(0, 30), rng.Uniform(0, 30)},
                               /*present=*/true);
  }

  // 2. The aggregator builds the slot context: who is where, at what price.
  const Rect working{0, 0, 30, 30};
  const SlotContext slot = BuildSlotContext(sensors, working, /*time=*/0,
                                            /*dmax=*/5.0);
  std::printf("slot has %zu available sensors\n", slot.sensors.size());

  // 3. End users submit point queries (Eq. 3 valuations).
  std::vector<PointQuery> queries;
  for (int i = 0; i < 8; ++i) {
    PointQuery q;
    q.id = i;
    q.location = Point{rng.Uniform(0, 30), rng.Uniform(0, 30)};
    q.budget = 15.0;
    q.theta_min = 0.2;
    queries.push_back(q);
  }

  // 4. Schedule with each strategy and compare.
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, PointScheduler>>{
           {"Optimal", PointScheduler::kOptimal},
           {"LocalSearch", PointScheduler::kLocalSearch},
           {"Baseline", PointScheduler::kBaseline}}) {
    PointSchedulingOptions options;
    options.scheduler = kind;
    const PointScheduleResult result = SchedulePointQueries(queries, slot, options);
    std::printf("\n%s: utility=%.2f (value=%.2f, cost=%.2f), %d/%zu answered\n",
                name, result.Utility(), result.total_value, result.total_cost,
                result.NumSatisfied(), queries.size());
    for (const PointAssignment& a : result.assignments) {
      if (!a.satisfied()) continue;
      std::printf("  query %d <- sensor %d  quality=%.2f value=%.2f pays %.2f\n",
                  a.query, slot.sensors[a.sensor].sensor_id, a.quality, a.value,
                  a.payment);
    }
  }

  // 5. The same queries through Algorithm 1's joint greedy selection —
  //    the serving path ServingConfig::threads parallelizes. With N > 1
  //    the slot's valuation rounds shard across a worker pool; the
  //    selection, payments, and ValuationCalls are bit-identical to the
  //    serial run, only the slot turnover time changes.
  {
    // The pool only exists when parallelism was requested; a serial run
    // never spawns a worker.
    std::unique_ptr<ThreadPool> pool;
    if (threads != 1) pool = std::make_unique<ThreadPool>(threads);
    SlotContext parallel_slot = slot;
    parallel_slot.pool = pool.get();
    std::vector<PointMultiQuery> multi;
    multi.reserve(queries.size());
    for (const PointQuery& q : queries) multi.emplace_back(q, &parallel_slot);
    std::vector<MultiQuery*> ptrs;
    for (PointMultiQuery& q : multi) ptrs.push_back(&q);
    const auto start = std::chrono::steady_clock::now();
    const SelectionResult joint = GreedySensorSelection(ptrs, parallel_slot);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::printf("\nJoint greedy (%d thread%s): utility=%.2f, %zu sensors, "
                "%lld valuation calls, slot turnover %.3f ms\n",
                threads, threads == 1 ? "" : "s", joint.Utility(),
                joint.selected_sensors.size(),
                static_cast<long long>(joint.valuation_calls), ms);
  }
  return 0;
}
