// Quickstart: the smallest end-to-end use of the psens public API.
//
// Sets up a handful of mobile sensors, submits point queries for one time
// slot, runs the three schedulers, and prints who got what at which price.

#include <cstdio>

#include "core/point_scheduling.h"
#include "core/sensor.h"
#include "core/slot.h"
#include "common/rng.h"

int main() {
  using namespace psens;

  // 1. A small sensor fleet. Each sensor has an inherent inaccuracy, a
  //    trust score, and announces a price per measurement (Eq. 8).
  std::vector<Sensor> sensors;
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    SensorProfile profile;
    profile.inaccuracy = rng.Uniform(0.0, 0.2);
    profile.base_price = 10.0;
    sensors.emplace_back(i, profile);
    sensors.back().SetPosition(Point{rng.Uniform(0, 30), rng.Uniform(0, 30)},
                               /*present=*/true);
  }

  // 2. The aggregator builds the slot context: who is where, at what price.
  const Rect working{0, 0, 30, 30};
  const SlotContext slot = BuildSlotContext(sensors, working, /*time=*/0,
                                            /*dmax=*/5.0);
  std::printf("slot has %zu available sensors\n", slot.sensors.size());

  // 3. End users submit point queries (Eq. 3 valuations).
  std::vector<PointQuery> queries;
  for (int i = 0; i < 8; ++i) {
    PointQuery q;
    q.id = i;
    q.location = Point{rng.Uniform(0, 30), rng.Uniform(0, 30)};
    q.budget = 15.0;
    q.theta_min = 0.2;
    queries.push_back(q);
  }

  // 4. Schedule with each strategy and compare.
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, PointScheduler>>{
           {"Optimal", PointScheduler::kOptimal},
           {"LocalSearch", PointScheduler::kLocalSearch},
           {"Baseline", PointScheduler::kBaseline}}) {
    PointSchedulingOptions options;
    options.scheduler = kind;
    const PointScheduleResult result = SchedulePointQueries(queries, slot, options);
    std::printf("\n%s: utility=%.2f (value=%.2f, cost=%.2f), %d/%zu answered\n",
                name, result.Utility(), result.total_value, result.total_cost,
                result.NumSatisfied(), queries.size());
    for (const PointAssignment& a : result.assignments) {
      if (!a.satisfied()) continue;
      std::printf("  query %d <- sensor %d  quality=%.2f value=%.2f pays %.2f\n",
                  a.query, slot.sensors[a.sensor].sensor_id, a.quality, a.value,
                  a.payment);
    }
  }
  return 0;
}
