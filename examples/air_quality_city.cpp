// Air-quality monitoring over a city (the paper's motivating scenario):
// a hotspot downtown roamed by citizens with CO2 sensors, serving a mix of
//   * end-user point queries ("what is the CO2 level at my location?"),
//   * spatial-aggregate queries ("average CO2 over the park"), and
//   * continuous location-monitoring queries ("track CO2 at my home
//     8am-6pm").
// Runs Algorithm 5 (joint greedy acquisition) against the sequential
// baseline over a multi-slot day and prints the running social welfare.

// Pass a thread count (default 1) to run each slot's joint greedy
// selection with intra-slot parallel valuation (SlotContext::pool):
//
//   ./air_quality_city 8
//
// The welfare numbers are bit-identical for any thread count; the
// slot-turnover timing printed at the end is what changes.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/query_mix.h"
#include "core/slot.h"
#include "data/ozone_trace.h"
#include "mobility/synthetic_nokia.h"
#include "sim/workload.h"
#include "sim/experiments.h"

int main(int argc, char** argv) {
  using namespace psens;
  constexpr int kSlots = 20;
  const int threads = argc > 1 ? std::atoi(argv[1]) : 1;
  // Only spawn workers when parallelism was requested.
  std::unique_ptr<ThreadPool> pool;
  if (threads != 1) pool = std::make_unique<ThreadPool>(threads);

  // Mobility: synthetic city trace (Nokia-campaign substitute).
  SyntheticNokiaConfig city;
  city.num_slots = kSlots;
  city.num_total_sensors = 300;
  city.num_base_users = 120;
  city.seed = 2024;
  const Trace trace = GenerateSyntheticNokia(city);
  const Rect downtown = NokiaWorkingRegion(city);

  // Historical CO2-like series for the monitoring valuation.
  OzoneTraceConfig history_config;
  history_config.num_days = 1;
  history_config.slots_per_day = kSlots;
  const OzoneTrace history = GenerateOzoneTrace(history_config);

  // Participants' devices.
  Rng rng(7);
  SensorPopulationConfig population;
  population.count = trace.NumSensors();
  population.random_privacy = true;  // citizens care about location privacy
  population.linear_energy = true;
  population.lifetime = kSlots;
  std::vector<Sensor> sensors_alg5 = GenerateSensors(population, rng);
  std::vector<Sensor> sensors_base = sensors_alg5;

  LocationMonitoringManager::Config lm_config;
  LocationMonitoringManager monitors_alg5(history.times, history.values, lm_config);
  lm_config.desired_times_only = true;
  LocationMonitoringManager monitors_base(history.times, history.values, lm_config);

  Rng workload_rng(99);
  double welfare_alg5 = 0.0, welfare_base = 0.0;
  double alg5_turnover_ms = 0.0;
  std::printf("slot  alg5_utility  baseline_utility  alg5_cum  baseline_cum\n");
  for (int t = 0; t < kSlots; ++t) {
    // This slot's demand.
    Rng slot_rng = workload_rng.Fork(t);
    const auto points = GeneratePointQueries(
        120, downtown, BudgetScheme{15.0, false, 0.0}, 0.2, t * 1000, slot_rng);
    const auto aggregates = GenerateAggregateQueries(8, downtown, 10.0, 15.0,
                                                     t * 100, slot_rng);
    if (t % 3 == 0) {
      const auto q = GenerateLocationMonitoringQuery(
          t, downtown, t, kSlots, history.times, history.values, 15.0, slot_rng);
      monitors_alg5.AddQuery(q);
      monitors_base.AddQuery(q);
    }

    auto run = [&](std::vector<Sensor>& sensors, LocationMonitoringManager& lm,
                   bool greedy) {
      ApplyTraceSlot(trace, t, &sensors);
      const auto start = std::chrono::steady_clock::now();
      SlotContext slot = BuildSlotContext(sensors, downtown, t, 10.0);
      slot.pool = pool.get();  // intra-slot parallel selection (null = serial)
      QueryMixOptions options;
      options.use_greedy = greedy;
      const QueryMixSlotResult r =
          RunQueryMixSlot(slot, points, aggregates, &lm, nullptr, options);
      if (greedy) {
        alg5_turnover_ms += std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
      }
      for (int si : r.selected_sensors) {
        sensors[slot.sensors[si].sensor_id].RecordReading(t);
      }
      lm.RemoveExpired(t + 1);
      return r.Utility();
    };
    const double u5 = run(sensors_alg5, monitors_alg5, /*greedy=*/true);
    const double ub = run(sensors_base, monitors_base, /*greedy=*/false);
    welfare_alg5 += u5;
    welfare_base += ub;
    std::printf("%4d  %12.1f  %16.1f  %8.1f  %12.1f\n", t, u5, ub, welfare_alg5,
                welfare_base);
  }
  std::printf("\nday total: Alg5 %.1f vs baseline %.1f (%.0f%% improvement)\n",
              welfare_alg5, welfare_base,
              welfare_base > 0 ? 100.0 * (welfare_alg5 - welfare_base) / welfare_base
                               : 100.0);
  std::printf("Alg5 slot turnover (%d thread%s): %.2f ms/slot mean — the "
              "welfare numbers above are bit-identical for any thread count\n",
              threads, threads == 1 ? "" : "s", alg5_turnover_ms / kSlots);
  return 0;
}
