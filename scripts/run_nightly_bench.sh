#!/usr/bin/env bash
# Runs the full (non --quick) fig02-fig18 benchmark suite and bundles the
# machine-readable outputs into one BENCH_nightly.json. Used by the
# scheduled nightly workflow (.github/workflows/nightly.yml) so the
# PR-path bench gate can stay on the fast --quick settings; also runnable
# locally: scripts/run_nightly_bench.sh [build-dir] [out.json] [log-dir].
#
# Every binary's stdout is captured under the log directory. A failing
# binary fails the script (after the remaining binaries have run), so one
# broken figure doesn't hide the others' results.

set -u

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_nightly.json}
LOG_DIR=${3:-bench_nightly_logs}
mkdir -p "$LOG_DIR"

status=0
run() {
  local name=$1
  shift
  echo "=== $name $* ==="
  if ! "$BUILD_DIR/$name" "$@" >"$LOG_DIR/$name.log" 2>&1; then
    echo "FAIL: $name (see $LOG_DIR/$name.log)"
    status=1
  fi
}

# Paper-figure reproductions: full 50-slot settings, console tables only.
run fig02_point_rwm
run fig03_point_rnc
run fig04_uniform_budget
run fig05_query_scaling
run fig06_privacy_energy
run fig07_aggregate
run fig08_location_monitoring
run fig09_region_monitoring
run fig10_query_mix

# Scale/streaming/approximation/replay sweeps: full populations, JSON
# captured. fig14 keeps its recorded traces under the log directory so
# the nightly workflow can upload them as artifacts — a nightly-fresh
# corpus of real serving traces for offline replay and debugging.
# --huge extends fig11/fig15 with a 10M-sensor point (nightly-only: the
# brute-force reference and the shard fan-out at that scale are far too
# heavy for the PR-path --quick gate).
run fig11_scale_sweep --huge --json "$LOG_DIR/fig11_nightly.json"
run fig12_streaming --json "$LOG_DIR/fig12_nightly.json"
run fig13_approx_quality --json "$LOG_DIR/fig13_nightly.json"
mkdir -p "$LOG_DIR/traces"
run fig14_replay --json "$LOG_DIR/fig14_nightly.json" \
  --trace-dir "$LOG_DIR/traces"
# Sharded serving sweep: full populations up to 1M (plus the --huge 10M
# point) at shard counts {1,2,4,8}. The JSON embeds one monitor record
# per shard per row; the merge step below splits them out into per-row
# monitor files so the nightly artifact exposes per-shard turnover
# latency / index-repair stats without parsing the full sweep JSON.
run fig15_shard_sweep --huge --json "$LOG_DIR/fig15_nightly.json"
# SoA slab-vs-AoS kernel microbench: full populations (10k/100k/1M), one
# row per query type. Exits non-zero by itself if any slab outcome is not
# bit-identical to the scalar reference.
run fig16_kernel_microbench --json "$LOG_DIR/fig16_nightly.json"
# Pipelined slot execution: sequential-vs-pipelined sustained slots/sec
# at 100k/1M under 1% churn, with the fatal bit-equality column. Exits
# non-zero by itself if any pipelined outcome diverges from its
# sequential twin.
run fig17_pipeline_throughput --json "$LOG_DIR/fig17_nightly.json"
# Adaptive SLO scheduling: base -> spike -> recover loops at the full
# population, static-vs-adaptive hit rates plus the fatal
# replay-identity column. Exits non-zero by itself if any adaptive run
# fails to degrade, recover, or replay bit-identically.
run fig18_adaptive_slo --json "$LOG_DIR/fig18_nightly.json"

python3 - "$OUT" "$LOG_DIR" <<'PY'
import json, os, sys, time

out_path, log_dir = sys.argv[1], sys.argv[2]

def load(name):
    path = os.path.join(log_dir, name)
    try:
        with open(path) as f:
            return json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        return None

fig11 = load("fig11_nightly.json") or {}
fig12 = load("fig12_nightly.json") or {}
fig13 = load("fig13_nightly.json") or {}
fig14 = load("fig14_nightly.json") or {}
fig15 = load("fig15_nightly.json") or {}
fig16 = load("fig16_nightly.json") or {}
fig17 = load("fig17_nightly.json") or {}
fig18 = load("fig18_nightly.json") or {}

# Split the per-shard monitor records (turnover-latency histogram +
# index-repair stats, one JSON object per shard) out of each fig15 row
# into standalone artifact files; the merged doc keeps the throughput
# rows themselves monitor-free.
monitor_dir = os.path.join(log_dir, "shard_monitors")
os.makedirs(monitor_dir, exist_ok=True)
fig15_rows = []
for row in fig15.get("results", []):
    monitors = row.pop("shard_monitors", [])
    if monitors:
        name = f"fig15_n{row.get('sensors', 0)}_s{row.get('shards', 0)}.json"
        with open(os.path.join(monitor_dir, name), "w") as f:
            json.dump({"sensors": row.get("sensors"),
                       "shards": row.get("shards"),
                       "per_shard": monitors}, f, indent=2)
    fig15_rows.append(row)

doc = {
    "suite": "nightly-full",
    "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "cal_ms": fig11.get("cal_ms", 0.0),
    "fig11": fig11.get("results", []),
    "fig12": fig12.get("results", []),
    "fig12_parallel": fig12.get("parallel_results", []),
    "fig13": fig13.get("results", []),
    "fig14": fig14.get("results", []),
    "fig15": fig15_rows,
    "fig16": fig16.get("results", []),
    "fig17": fig17.get("results", []),
    "fig18": fig18.get("results", []),
    "logs": sorted(f for f in os.listdir(log_dir) if f.endswith(".log")),
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
print(f"wrote {out_path}")
PY

exit $status
