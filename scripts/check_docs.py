#!/usr/bin/env python3
"""Documentation lint for the repo's markdown set.

Checked files: README.md, ROADMAP.md, and every docs/*.md. Three checks,
all fatal (exit 1) so the CI docs job fails loudly:

  1. Intra-repo links resolve. Every inline markdown link whose target is
     not external (http/https/mailto) or a pure in-page anchor must point
     at an existing file or directory. Targets resolve relative to the
     linking file; a leading "/" resolves from the repo root. Fragments
     ("FILE.md#section") are stripped before the existence check — anchor
     names are rendering-dependent, file existence is not.

  2. Fenced snippets are sane. Code fences must balance per file (an odd
     count means a snippet swallowed the rest of the document in
     rendering), and no fenced block may be empty — an empty block is
     always an editing accident.

  3. figNN references have bench sources. Any "figNN" token in the docs
     must correspond to a bench/figNN_*.cc file, so the docs cannot
     reference a figure the suite no longer (or never) builds.

Usage: scripts/check_docs.py [repo-root]   (defaults to the script's
parent repo). Pure stdlib; no build required.
"""

import re
import sys
from pathlib import Path

# Inline links: [text](target "optional title"). Reference-style links and
# autolinks are rare in these docs; inline is the contract.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FIG_RE = re.compile(r"\bfig(\d{2})")
FENCE_RE = re.compile(r"^(`{3,})(.*)$")


def doc_files(root: Path):
    files = [root / "README.md", root / "ROADMAP.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(root: Path, path: Path, text: str, errors: list):
    # Links inside code fences are illustrative, not navigational — a
    # snippet showing markdown syntax must not fail the link check.
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue  # in-page anchor
            target = target.split("#", 1)[0]
            if not target:
                continue
            if target.startswith("/"):
                resolved = (root / target.lstrip("/")).resolve()
            else:
                resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: broken link "
                    f"-> {m.group(1)}"
                )


def check_fences(root: Path, path: Path, text: str, errors: list):
    open_line = None
    block_lines = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            if open_line is None:
                open_line = lineno
                block_lines = 0
            else:
                if block_lines == 0:
                    errors.append(
                        f"{path.relative_to(root)}:{open_line}: empty "
                        "fenced code block"
                    )
                open_line = None
        elif open_line is not None and line.strip():
            block_lines += 1
    if open_line is not None:
        errors.append(
            f"{path.relative_to(root)}:{open_line}: unbalanced code fence "
            "(no closing ```)"
        )


def check_fig_refs(root: Path, path: Path, text: str, errors: list):
    benches = {p.name.split("_", 1)[0] for p in (root / "bench").glob("fig*_*.cc")}
    for num in sorted(set(FIG_RE.findall(text))):
        fig = f"fig{num}"
        if fig not in benches:
            errors.append(
                f"{path.relative_to(root)}: references {fig} but no "
                f"bench/{fig}_*.cc exists"
            )


def main():
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent
    )
    errors = []
    files = doc_files(root)
    if not files:
        print(f"check_docs: no markdown files found under {root}", file=sys.stderr)
        return 1
    for path in files:
        text = path.read_text(encoding="utf-8")
        check_links(root, path, text, errors)
        check_fences(root, path, text, errors)
        check_fig_refs(root, path, text, errors)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(
        f"check_docs: {len(files)} files, "
        f"{len(errors)} error(s): {'FAIL' if errors else 'PASS'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
