#!/usr/bin/env python3
"""Benchmark-regression gate for CI (docs/BENCHMARKS.md, "Regression gate").

Merges the machine-readable outputs of the quick benchmark runs into one
BENCH_pr.json artifact and diffs it against the committed baseline
(bench/BENCH_baseline.json). The gate fails (exit 1) on:

  1. any fig11 result where the indexed run was not bit-identical to the
     brute-force run (`identical: false`) — correctness, zero tolerance;
  2. fig11 speedup at the largest population below --min-speedup
     (default 10x) — the asymptotic win must not rot;
  3. deterministic *work* regressions: `pruned_pairs` (candidate pairs the
     indexed path scans; machine-independent and bit-reproducible) more
     than --tolerance (default 20%) above the baseline;
  4. *time* regressions above --tolerance, after normalizing every wall
     time by the run's `cal_ms` calibration (a fixed FP loop timed in the
     same process), which makes the committed baseline comparable across
     hosts of different speeds. Time checks require --strict-time; without
     it they only warn, because shared CI runners jitter more than 20%
     while checks 1-3 stay exact;
  5. when --fig13 is given: the approximation gate — the stochastic-greedy
     row at the gate population (100k sensors) must show a median
     slot-selection speedup of at least --min-fig13-speedup (default 3x)
     over the exact engine AND a realized utility ratio of at least
     --min-fig13-utility (default 0.95); utility ratios are deterministic
     for a fixed seed, so a drop is a real quality regression, not noise.
     The sieve row at the same gate population gates too: its refinement
     pass (core/sieve_streaming.cc) must hold a utility ratio of at least
     --min-sieve-utility (default 0.8) while keeping a median speedup of
     at least --min-sieve-speedup (default 20x) over the exact engine —
     quality without the speedup would mean the refinement re-greedies
     the whole population, speedup without the quality would mean it
     stopped refining. Valuation-call counts diff against the baseline
     like other deterministic work metrics. The same fig13 run also
     carries the SoA
     kernel gate on its exact row: `soa_identical: false` (the slab
     kernels diverged from the AoS scalar reference) fails, zero
     tolerance, on every host, and `soa_speedup` at the gate population
     must reach --min-soa-speedup (default 1.5x; both sides of the ratio
     are measured in the same process, so it is host-normalized by
     construction);
 10. when --fig16 is given: the kernel-microbench gate — any row whose
     slab outcome was not bit-identical to the AoS reference
     (`identical: false`) fails, zero tolerance; and each row's outcome
     digest (an FNV-1a hash of the selection's raw bit patterns,
     deterministic for a fixed seed on every host) must equal the
     committed baseline digest — a changed digest means a kernel changed
     an answer, which requires an explicit --update to bless;
  9. when --fig15 is given: the sharded-serving gate — any row whose
     sharded outcomes were not bit-identical to the unsharded reference
     (`identical: false`) fails, zero tolerance, on every host; and at
     the largest measured population the closed-loop slots/sec must be
     monotone (within 5% timer noise) from 1 shard up to
     --fig15-gate-shards (default 4). The monotonicity check is
     hardware-gated exactly like the fig12 parallel gate: it arms only
     when the host has at least --fig15-gate-shards hardware threads (a
     1-core container cannot exhibit fan-out speedup by construction and
     only warns), and --update refuses to record sharded rows measured
     on such hosts into the baseline. Per-shard monitor records are
     stripped from the merged artifact (the nightly job archives the raw
     JSON instead);
 11. when --fig17 is given: the pipelined-serving gate — any row whose
     pipelined outcomes were not bit-identical to the sequential twin
     (`identical: false`) fails, zero tolerance, on every host; and the
     unsharded pipelined row at the gate population (100k sensors) must
     show a sustained-throughput speedup of at least --min-fig17-speedup
     (default 1.3x) over its sequential twin. The speedup check is
     hardware-gated like the fig12/fig15 fan-out gates: the overlap
     needs a second core for the task-graph worker, so it arms only when
     the host has at least 2 hardware threads (a 1-core container
     time-slices the overlap and only warns), and --update refuses to
     record pipelined rows measured on such hosts into the baseline;
  8. when --fig14 is given: the record/replay gate — any engine row whose
     trace replay was not bit-identical to the live closed-loop run
     (`identical: false`) fails, zero tolerance, on every host; and the
     lazy row at the gate population (100k sensors) must sustain a
     replay_speedup (replayed slots/sec over live closed-loop slots/sec)
     of at least --min-fig14-speedup (default 0.9 — the replayer must
     hold the live slot rate; the floor sits just under 1.0 because the
     two rates are separate wall-clock measurements of the same work and
     jitter a few percent on shared runners). Valuation-call totals diff
     against the baseline like other deterministic work metrics;
  6. when --fig12 is given: any fig12 slot where the incremental engine's
     schedule diverged from the per-slot rebuild (`identical: false`) —
     zero tolerance — and a median slot-turnover speedup below
     --min-fig12-speedup (default 4x; see the flag's help for why the
     floor sits below the typically observed 5-6x) on the gate scenario
     (the "churn" workload at 100k sensors, 1% churn);
  7. when --fig12 is given and it carries `parallel_results` rows
     (intra-slot parallel selection, `fig12_streaming --threads N`): any
     row where the parallel selection diverged from the serial one —
     zero tolerance, on every host — and a median slot-serve speedup
     below --min-parallel-speedup (default 2x) at 100k sensors, enforced
     only when the row requested at least --parallel-gate-threads
     (default 8) workers AND the host has that many hardware threads.
     Hosts without enough hardware threads (or low --threads runs, where
     both passes are close to serial) cannot exhibit the speedup by
     construction, so there the speedup check is *skipped* with a visible
     warning (bit-equality still gates), and --update refuses to record
     such a row into the baseline — it would freeze a misleading ~1x
     speedup measured on hardware that cannot show the win — preserving
     the previously committed row instead;
 12. when --fig18 is given: the adaptive-SLO gate — any adaptive row
     whose recorded version-2 trace did not replay bit-identically
     (`replay_identical: false`) fails, zero tolerance, on every host:
     the replayer pins the recorded engine choices, so divergence is a
     determinism bug, never timing noise. The deadline checks are
     hardware-gated at >= 2 hardware threads (a 1-core container's
     wall-clock jitter makes hit/miss classification meaningless): the
     medium-SLO adaptive run must hit at least --min-fig18-hit-rate
     (default 0.95) of its deadlines while the medium-SLO *static* run
     misses at least half its spike-phase deadlines (otherwise the
     workload no longer stresses the SLO and the adaptive hit rate is
     vacuous), the medium-SLO adaptive run must recover (the
     post-spike phase back on the lazy ceiling), and the loose-SLO
     adaptive run must stay undegraded (all slots on lazy — the policy
     must not give away quality it has budget for).

Usage:
  check_bench_regression.py --fig11 fig11.json [--fig12 fig12.json]
      [--fig13 fig13.json] [--fig14 fig14.json] [--fig15 fig15.json]
      [--fig16 fig16.json] [--fig17 fig17.json] [--fig18 fig18.json]
      [--schedulers sched.json]
      --baseline bench/BENCH_baseline.json --out BENCH_pr.json
      [--min-speedup 10] [--min-fig12-speedup 4]
      [--min-fig13-speedup 3] [--min-fig13-utility 0.95]
      [--min-sieve-utility 0.8] [--min-sieve-speedup 20]
      [--min-fig14-speedup 0.9] [--fig15-gate-shards 4]
      [--min-soa-speedup 1.5] [--min-fig17-speedup 1.3]
      [--min-fig18-hit-rate 0.95]
      [--tolerance 0.2] [--strict-time] [--update]

--update rewrites the baseline from the current run instead of checking.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def google_benchmark_times(doc):
    """name -> real_time in ms from a google-benchmark JSON report."""
    out = {}
    for b in (doc or {}).get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
        if scale is None:
            continue
        out[b["name"]] = b["real_time"] * scale
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fig11", required=True, help="fig11_scale_sweep --json output")
    ap.add_argument("--fig12", help="fig12_streaming --json output")
    ap.add_argument("--fig13", help="fig13_approx_quality --json output")
    ap.add_argument("--fig14", help="fig14_replay --json output")
    ap.add_argument("--fig15", help="fig15_shard_sweep --json output")
    ap.add_argument("--fig16", help="fig16_kernel_microbench --json output")
    ap.add_argument("--fig17", help="fig17_pipeline_throughput --json output")
    ap.add_argument("--fig18", help="fig18_adaptive_slo --json output")
    ap.add_argument("--schedulers", help="bench_schedulers --benchmark_out JSON")
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--out", default="BENCH_pr.json")
    ap.add_argument("--min-speedup", type=float, default=10.0)
    # 4x, not the 5-6x typically observed: the incremental/rebuild
    # turnover *ratio* swings with the host's allocator and page-cache
    # behaviour (the rebuild side varies ~2x between otherwise identical
    # runs of the same binary), so the floor is set at what any capable
    # host clears rather than at a lucky measurement.
    ap.add_argument("--min-fig12-speedup", type=float, default=4.0)
    # 3x, down from the 5x the gate held before the SoA slab kernels:
    # the ratio's denominator is the *exact* engine's slot time, and the
    # slab + coverage-memo work made that engine ~2.4x faster, shrinking
    # the stochastic engine's relative advantage (both engines select
    # the same sensors; only the exact side got cheaper). The floor
    # guards the approximate scheduler's asymptotic win, not the exact
    # engine's slowness — ~4x is what the gate scenario now measures.
    ap.add_argument("--min-fig13-speedup", type=float, default=3.0)
    ap.add_argument("--min-fig13-utility", type=float, default=0.95)
    # The sieve refinement pass re-greedies only the buckets' member
    # union (population-independent), so it buys back most of the
    # one-pass threshold loss without surrendering the asymptotic win:
    # ~0.9 utility at ~40x is what the gate scenario measures, floored
    # with headroom at 0.8 / 20x.
    ap.add_argument("--min-sieve-utility", type=float, default=0.8)
    ap.add_argument("--min-sieve-speedup", type=float, default=20.0)
    # Just under 1.0: the gate asserts the replayer holds the live
    # closed-loop slot rate, but live and replay rates are two separate
    # wall-clock measurements of the same selection work and jitter a few
    # percent against each other on shared runners.
    ap.add_argument("--min-fig14-speedup", type=float, default=0.9)
    ap.add_argument("--min-parallel-speedup", type=float, default=2.0)
    ap.add_argument("--fig15-gate-shards", type=int, default=4,
                    help="largest shard count the fig15 monotone-throughput "
                         "check covers; also the hardware-thread floor for "
                         "that check to arm")
    # 1.3x, well under the ~1.6-1.8x a full turnover/selection overlap
    # can reach: the pipelined win is bounded by the *shorter* of the two
    # overlapped phases (Amdahl over the slot cycle), and the gate
    # scenario's turnover/selection split shifts with allocator and cache
    # behaviour across hosts. The floor asserts the overlap is real, not
    # that it is perfectly balanced.
    ap.add_argument("--min-fig17-speedup", type=float, default=1.3)
    # Same-process ratio (the AoS pass and the slab pass are timed in one
    # binary run), so the floor is host-normalized by construction;
    # 1.5x sits well under the ~2x measured on the gate scenario.
    ap.add_argument("--min-soa-speedup", type=float, default=1.5)
    # 0.95 over a 48+-slot run allows the policy's two optimistic trial
    # slots (the first stochastic and the first sieve entry during the
    # spike) to overrun while every modeled slot must hit.
    ap.add_argument("--min-fig18-hit-rate", type=float, default=0.95)
    ap.add_argument("--parallel-gate-threads", type=int, default=8,
                    help="minimum requested thread count (and hardware "
                         "threads) for the parallel speedup gate to arm")
    ap.add_argument("--tolerance", type=float, default=0.20)
    ap.add_argument("--strict-time", action="store_true",
                    help="make normalized-time regressions fatal, not warnings")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run")
    args = ap.parse_args()

    fig11 = load(args.fig11)
    fig12 = load(args.fig12) if args.fig12 else None
    fig13 = load(args.fig13) if args.fig13 else None
    fig14 = load(args.fig14) if args.fig14 else None
    fig15 = load(args.fig15) if args.fig15 else None
    fig16 = load(args.fig16) if args.fig16 else None
    fig17 = load(args.fig17) if args.fig17 else None
    fig18 = load(args.fig18) if args.fig18 else None
    schedulers = load(args.schedulers) if args.schedulers else None

    # Per-shard monitor records are observability artifacts, not
    # regression metrics — strip them so the committed baseline stays
    # readable (the nightly job archives the raw fig15 JSON instead).
    fig15_rows = [{k: v for k, v in r.items() if k != "shard_monitors"}
                  for r in (fig15 or {}).get("results", [])]

    pr = {
        "cal_ms": fig11.get("cal_ms", 0.0),
        "fig11": fig11.get("results", []),
        "fig12": (fig12 or {}).get("results", []),
        "fig12_parallel": (fig12 or {}).get("parallel_results", []),
        "fig13": (fig13 or {}).get("results", []),
        "fig14": (fig14 or {}).get("results", []),
        "fig15": fig15_rows,
        "fig16": (fig16 or {}).get("results", []),
        "fig17": (fig17 or {}).get("results", []),
        "fig18": (fig18 or {}).get("results", []),
        "scheduler_times_ms": google_benchmark_times(schedulers),
    }
    with open(args.out, "w") as f:
        json.dump(pr, f, indent=2)
    print(f"wrote {args.out}")

    if args.update:
        # Preserve baseline sections the current invocation did not
        # re-measure: a fig11-only refresh must not silently wipe the
        # fig12 (or scheduler) rows and degrade their gates to "not in
        # baseline" warnings.
        updated = dict(pr)
        try:
            old = load(args.baseline)
        except FileNotFoundError:
            old = {}
        if fig12 is None and old.get("fig12"):
            updated["fig12"] = old["fig12"]
        if fig12 is None and old.get("fig12_parallel"):
            updated["fig12_parallel"] = old["fig12_parallel"]
        if fig13 is None and old.get("fig13"):
            updated["fig13"] = old["fig13"]
        if fig14 is None and old.get("fig14"):
            updated["fig14"] = old["fig14"]
        if fig15 is None and old.get("fig15"):
            updated["fig15"] = old["fig15"]
        if fig16 is None and old.get("fig16"):
            updated["fig16"] = old["fig16"]
        if fig17 is None and old.get("fig17"):
            updated["fig17"] = old["fig17"]
        if fig18 is None and old.get("fig18"):
            updated["fig18"] = old["fig18"]
        if schedulers is None and old.get("scheduler_times_ms"):
            updated["scheduler_times_ms"] = old["scheduler_times_ms"]
        if fig12 is not None:
            # A parallel row measured on a host without the hardware to
            # exhibit the speedup (hardware_threads < requested threads,
            # e.g. a 1-core container) records a meaningless ~1x ratio;
            # freezing it into the baseline would mislead every later
            # diff. Keep the previously committed row for that population
            # instead, and say so.
            old_parallel = {r["sensors"]: r
                            for r in (old.get("fig12_parallel") or [])}
            kept = []
            for r in pr["fig12_parallel"]:
                hardware = r.get("hardware_threads", 0)
                threads = r.get("threads", 1)
                if hardware >= threads and threads > 1:
                    kept.append(r)
                    continue
                prev = old_parallel.get(r["sensors"])
                if prev is not None and not (
                        prev.get("hardware_threads", 0)
                        >= prev.get("threads", 1) > 1):
                    prev = None  # the committed row is itself misleading
                print(f"warning: fig12 parallel n={r['sensors']}: host has "
                      f"{hardware} hardware threads for a {threads}-thread "
                      "row; NOT recording its speedup into the baseline"
                      + (" (keeping previous row)" if prev else ""))
                if prev is not None:
                    kept.append(prev)
            updated["fig12_parallel"] = kept
        if fig15 is not None:
            # Same hardware rule as the fig12 parallel rows: a sharded
            # row measured on a host without the threads to run the
            # fan-out records a meaningless ~1x speedup; keep the
            # previously committed row for that shape instead.
            def fig15_key(r):
                return (r["sensors"], r["shards"], r.get("slots", 0),
                        r.get("queries", 0))

            old_fig15 = {fig15_key(r): r for r in (old.get("fig15") or [])}
            kept15 = []
            for r in pr["fig15"]:
                hardware = r.get("hardware_threads", 0)
                threads = r.get("threads", 1)
                if r.get("shards", 1) == 1 or hardware >= threads:
                    kept15.append(r)
                    continue
                prev = old_fig15.get(fig15_key(r))
                if prev is not None and not (
                        prev.get("hardware_threads", 0)
                        >= prev.get("threads", 1)):
                    prev = None  # the committed row is itself misleading
                print(f"warning: fig15 n={r['sensors']} "
                      f"shards={r['shards']}: host has {hardware} hardware "
                      f"thread(s) for a {threads}-thread fan-out; NOT "
                      "recording its throughput into the baseline"
                      + (" (keeping previous row)" if prev else ""))
                if prev is not None:
                    kept15.append(prev)
            updated["fig15"] = kept15
        if fig17 is not None:
            # Same hardware rule as the fig12/fig15 fan-out rows: the
            # pipelined overlap needs a core for the task-graph worker on
            # top of the serving (and shard fan-out) threads; a row
            # measured without them records a meaningless ~1x speedup.
            def fig17_key(r):
                return (r["sensors"], r.get("pipeline", 0),
                        r.get("shards", 1), r.get("slots", 0),
                        r.get("queries", 0))

            old_fig17 = {fig17_key(r): r for r in (old.get("fig17") or [])}

            def fig17_needed(r):
                return (max(1, r.get("shards", 1))
                        + (1 if r.get("pipeline", 0) == 2 else 0))

            kept17 = []
            for r in pr["fig17"]:
                hardware = r.get("hardware_threads", 0)
                needed = fig17_needed(r)
                if needed == 1 or hardware >= needed:
                    kept17.append(r)
                    continue
                prev = old_fig17.get(fig17_key(r))
                if prev is not None and (
                        prev.get("hardware_threads", 0) < fig17_needed(prev)):
                    prev = None  # the committed row is itself misleading
                print(f"warning: fig17 n={r['sensors']} "
                      f"pipeline={r.get('pipeline', 0)} "
                      f"shards={r.get('shards', 1)}: host has {hardware} "
                      f"hardware thread(s), row needs {needed}; NOT "
                      "recording its throughput into the baseline"
                      + (" (keeping previous row)" if prev else ""))
                if prev is not None:
                    kept17.append(prev)
            updated["fig17"] = kept17
        with open(args.baseline, "w") as f:
            json.dump(updated, f, indent=2)
        print(f"baseline updated: {args.baseline}")
        return 0

    failures = []
    warnings = []

    # 1. bit-identical selections, always fatal.
    for r in pr["fig11"]:
        if not r.get("identical", False):
            failures.append(f"fig11 {r['name']} n={r['sensors']}: indexed run "
                            "diverged from brute force")

    # 2. speedup at the largest population.
    if pr["fig11"]:
        largest = max(r["sensors"] for r in pr["fig11"])
        for r in pr["fig11"]:
            if r["sensors"] != largest:
                continue
            if r["speedup"] < args.min_speedup:
                failures.append(
                    f"fig11 {r['name']} n={r['sensors']}: speedup "
                    f"{r['speedup']:.1f}x < required {args.min_speedup:.1f}x")
            else:
                print(f"ok: fig11 {r['name']} n={r['sensors']} speedup "
                      f"{r['speedup']:.1f}x (>= {args.min_speedup:.1f}x)")
    else:
        failures.append("fig11 produced no results")

    # 6. fig12 streaming-engine gate (only when the run provided it).
    if fig12 is not None:
        gate_rows = 0
        for r in pr["fig12"]:
            if not r.get("identical", False):
                failures.append(
                    f"fig12 {r.get('workload', '?')} n={r['sensors']}: "
                    "incremental engine diverged from per-slot rebuild")
            if r.get("workload") == "churn" and r["sensors"] == 100_000:
                gate_rows += 1
                if r["turnover_speedup"] < args.min_fig12_speedup:
                    failures.append(
                        f"fig12 churn n={r['sensors']}: turnover speedup "
                        f"{r['turnover_speedup']:.1f}x < required "
                        f"{args.min_fig12_speedup:.1f}x")
                else:
                    print(f"ok: fig12 churn n={r['sensors']} turnover speedup "
                          f"{r['turnover_speedup']:.1f}x "
                          f"(>= {args.min_fig12_speedup:.1f}x)")
        if gate_rows == 0:
            failures.append("fig12 produced no gate row (churn @ 100k sensors)")

        # 7. intra-slot parallel selection gate. Bit-equality is enforced
        # on every host; the speedup bar is the ISSUE's literal "2x at 8
        # threads", so it arms only when the run actually requested at
        # least --parallel-gate-threads workers AND the host has that many
        # hardware threads — a 1/2/4-core host (or a --threads 1 run,
        # where both passes are serial) cannot exhibit the speedup by
        # construction and only warns.
        parallel_gate_rows = 0
        for r in pr["fig12_parallel"]:
            if not r.get("identical", False):
                failures.append(
                    f"fig12 parallel n={r['sensors']}: parallel selection "
                    "diverged from serial")
            if r["sensors"] != 100_000:
                continue
            parallel_gate_rows += 1
            threads = r.get("threads", 1)
            hardware = r.get("hardware_threads", 0)
            eligible = (threads >= args.parallel_gate_threads
                        and hardware >= threads)
            if not eligible:
                # Hardware-gated check: a host without enough threads (a
                # 1-core runner, or a low --threads run) cannot exhibit
                # the speedup by construction — skip loudly rather than
                # report a meaningless ~1x ratio as a near-failure.
                warnings.append(
                    f"fig12 parallel n={r['sensors']}: speedup check "
                    f"SKIPPED — ran {threads} thread(s) on {hardware} "
                    f"hardware thread(s), gate needs >= "
                    f"{args.parallel_gate_threads} of each "
                    "(bit-equality still enforced)")
            elif r["serve_speedup"] < args.min_parallel_speedup:
                failures.append(
                    f"fig12 parallel n={r['sensors']}: serve speedup "
                    f"{r['serve_speedup']:.2f}x < required "
                    f"{args.min_parallel_speedup:.1f}x at {threads} threads")
            else:
                print(f"ok: fig12 parallel n={r['sensors']} serve speedup "
                      f"{r['serve_speedup']:.2f}x "
                      f"(>= {args.min_parallel_speedup:.1f}x)")
        if pr["fig12_parallel"] and parallel_gate_rows == 0:
            failures.append(
                "fig12 produced no parallel gate row (parallel @ 100k "
                "sensors) — was the population capped?")

    # 8. fig14 record/replay gate (only when the run provided it).
    if fig14 is not None:
        fig14_gate_rows = 0
        for r in pr["fig14"]:
            if not r.get("identical", False):
                failures.append(
                    f"fig14 {r.get('engine', '?')} n={r['sensors']}: trace "
                    "replay diverged from the live closed-loop run")
            if r["sensors"] != 100_000 or r.get("engine") != "lazy":
                continue
            fig14_gate_rows += 1
            if r["replay_speedup"] < args.min_fig14_speedup:
                failures.append(
                    f"fig14 lazy n={r['sensors']}: replay sustained only "
                    f"{r['replay_speedup']:.2f}x the live closed-loop slot "
                    f"rate < required {args.min_fig14_speedup:.2f}x")
            else:
                print(f"ok: fig14 lazy n={r['sensors']} replay rate "
                      f"{r['replay_speedup']:.2f}x live "
                      f"(>= {args.min_fig14_speedup:.2f}x)")
        if fig14_gate_rows == 0:
            failures.append(
                "fig14 produced no gate row (lazy @ 100k sensors)")

    # 9. fig15 sharded-serving gate (only when the run provided it).
    if fig15 is not None:
        for r in pr["fig15"]:
            # Bit-equality against the unsharded engine: fatal on every
            # host, every population, every shard count.
            if not r.get("identical", False):
                failures.append(
                    f"fig15 n={r['sensors']} shards={r['shards']}: sharded "
                    "outcomes diverged from the unsharded engine")
        if not pr["fig15"]:
            failures.append("fig15 produced no results")
        else:
            top = max(r["sensors"] for r in pr["fig15"])
            by_shards = {r["shards"]: r
                         for r in pr["fig15"] if r["sensors"] == top}
            hardware = max(r.get("hardware_threads", 0)
                           for r in pr["fig15"])
            gate_shards = args.fig15_gate_shards
            ladder = sorted(s for s in by_shards if s <= gate_shards)
            if hardware < gate_shards:
                warnings.append(
                    f"fig15 n={top}: throughput-monotonicity check SKIPPED "
                    f"— host has {hardware} hardware thread(s), gate needs "
                    f">= {gate_shards} (bit-equality still enforced)")
            elif len(ladder) < 2 or 1 not in by_shards:
                failures.append(
                    f"fig15 n={top}: no shard ladder to gate (need shard "
                    f"counts 1..{gate_shards}, got {sorted(by_shards)})")
            else:
                # Monotone within 5% timer noise: each step up the ladder
                # must hold at least 95% of the previous rate; sharding
                # that *loses* throughput on a capable host is a real
                # regression in the fan-out or the reconcile.
                ok = True
                for prev_s, s in zip(ladder, ladder[1:]):
                    prev_rate = by_shards[prev_s]["slots_per_sec"]
                    rate = by_shards[s]["slots_per_sec"]
                    if prev_rate > 0 and rate < 0.95 * prev_rate:
                        ok = False
                        failures.append(
                            f"fig15 n={top}: slots/sec dropped from "
                            f"{prev_rate:.2f} at {prev_s} shard(s) to "
                            f"{rate:.2f} at {s} — not monotone")
                if ok:
                    print(f"ok: fig15 n={top} slots/sec monotone over "
                          f"shards {ladder} "
                          f"({by_shards[ladder[0]]['slots_per_sec']:.2f} -> "
                          f"{by_shards[ladder[-1]]['slots_per_sec']:.2f})")

    # 11. fig17 pipelined-serving gate (only when the run provided it).
    if fig17 is not None:
        for r in pr["fig17"]:
            # Bit-equality against the sequential twin: fatal on every
            # host, every population, every shard count.
            if not r.get("identical", False):
                failures.append(
                    f"fig17 n={r['sensors']} pipeline={r.get('pipeline', 0)} "
                    f"shards={r.get('shards', 1)}: pipelined outcomes "
                    "diverged from the sequential schedule")
        gate = [r for r in pr["fig17"]
                if r["sensors"] == 100_000 and r.get("pipeline", 0) == 2
                and r.get("shards", 1) == 1]
        if not gate:
            failures.append(
                "fig17 produced no gate row (pipelined unsharded @ 100k "
                "sensors) — was the population capped?")
        for r in gate:
            hardware = r.get("hardware_threads", 0)
            if hardware < 2:
                # The overlap needs a second core for the task-graph
                # worker; a 1-core host time-slices the two phases and
                # cannot exhibit the speedup by construction.
                warnings.append(
                    f"fig17 n={r['sensors']}: pipelined speedup check "
                    f"SKIPPED — host has {hardware} hardware thread(s), "
                    "gate needs >= 2 (bit-equality still enforced)")
            elif r["speedup_vs_sequential"] < args.min_fig17_speedup:
                failures.append(
                    f"fig17 n={r['sensors']}: pipelined sustained "
                    f"throughput {r['speedup_vs_sequential']:.2f}x "
                    f"sequential < required {args.min_fig17_speedup:.2f}x")
            else:
                print(f"ok: fig17 n={r['sensors']} pipelined throughput "
                      f"{r['speedup_vs_sequential']:.2f}x sequential "
                      f"(>= {args.min_fig17_speedup:.2f}x)")

    # 12. fig18 adaptive-SLO gate (only when the run provided it).
    if fig18 is not None:
        if not pr["fig18"]:
            failures.append("fig18 produced no results")

        def fig18_row(mode, label):
            for r in pr["fig18"]:
                if r.get("mode") == mode and r.get("slo_label") == label:
                    return r
            return None

        # Replay bit-identity of every recorded adaptive trace: fatal on
        # every host. The replayer pins the recorded engine choices, so a
        # divergence is a determinism bug, never timing noise.
        for r in pr["fig18"]:
            if (r.get("mode") == "adaptive"
                    and not r.get("replay_identical", False)):
                failures.append(
                    f"fig18 adaptive slo={r.get('slo_label', '?')}: recorded "
                    "trace did not replay bit-identically")

        med_ad = fig18_row("adaptive", "medium")
        med_st = fig18_row("static", "medium")
        loose_ad = fig18_row("adaptive", "loose")
        if med_ad is None or med_st is None or loose_ad is None:
            failures.append(
                "fig18 missing gate rows (medium static/adaptive and loose "
                "adaptive)")
        else:
            hardware = med_ad.get("hardware_threads", 0)
            if hardware < 2:
                warnings.append(
                    "fig18 deadline checks SKIPPED — host has "
                    f"{hardware} hardware thread(s), wall-clock hit/miss "
                    "classification needs >= 2 (replay bit-identity still "
                    "enforced)")
            else:
                if med_st["spike_hit_rate"] > 0.5:
                    failures.append(
                        "fig18 static medium SLO: spike hit rate "
                        f"{med_st['spike_hit_rate']:.2f} > 0.5 — the spike "
                        "no longer stresses the SLO, so the adaptive hit "
                        "rate proves nothing")
                else:
                    print(f"ok: fig18 static medium SLO misses the spike "
                          f"(spike hit rate {med_st['spike_hit_rate']:.2f})")
                if med_ad["hit_rate"] < args.min_fig18_hit_rate:
                    failures.append(
                        f"fig18 adaptive medium SLO: hit rate "
                        f"{med_ad['hit_rate']:.3f} < required "
                        f"{args.min_fig18_hit_rate:.2f}")
                else:
                    print(f"ok: fig18 adaptive medium SLO hit rate "
                          f"{med_ad['hit_rate']:.3f} "
                          f"(>= {args.min_fig18_hit_rate:.2f})")
                if not med_ad.get("recovered", False):
                    failures.append(
                        "fig18 adaptive medium SLO: recover phase did not "
                        "return to the lazy ceiling after the spike")
                else:
                    print("ok: fig18 adaptive medium SLO recovered to the "
                          "lazy ceiling after the spike")
                if loose_ad.get("lazy_slots", 0) != loose_ad.get("slots", -1):
                    failures.append(
                        f"fig18 adaptive loose SLO: degraded "
                        f"({loose_ad.get('lazy_slots', 0)}/"
                        f"{loose_ad.get('slots', 0)} slots on lazy) with "
                        "budget to spare — the policy gives away quality")
                else:
                    print("ok: fig18 adaptive loose SLO stayed undegraded "
                          f"({loose_ad['lazy_slots']}/{loose_ad['slots']} "
                          "slots on lazy)")

    # 5. fig13 approximation gate (only when the run provided it). The
    # utility ratio is deterministic for a fixed seed — below-bar quality
    # is a real regression in the scheduler, not measurement noise.
    if fig13 is not None:
        fig13_gate_rows = 0
        soa_gate_rows = 0
        sieve_gate_rows = 0
        for r in pr["fig13"]:
            # SoA bit-equality is fatal on every row that carries the
            # flag, not just the gate scenario: a divergence is a kernel
            # bug regardless of population.
            if r.get("engine") == "exact" and not r.get("soa_identical", True):
                failures.append(
                    f"fig13 exact n={r['sensors']}: slab kernels diverged "
                    "from the AoS scalar reference")
            # Gate only the canonical scenario (100k sensors, 1% churn);
            # full runs add churn-rate sweep rows that are informational.
            if r["sensors"] != 100_000 or r.get("churn", 0.01) != 0.01:
                continue
            if r.get("engine") == "exact":
                soa_gate_rows += 1
                if r.get("soa_speedup", 0.0) < args.min_soa_speedup:
                    failures.append(
                        f"fig13 exact n={r['sensors']}: SoA kernel speedup "
                        f"{r.get('soa_speedup', 0.0):.2f}x vs AoS scalar < "
                        f"required {args.min_soa_speedup:.1f}x")
                else:
                    print(f"ok: fig13 exact n={r['sensors']} SoA kernel "
                          f"speedup {r['soa_speedup']:.2f}x vs AoS scalar "
                          f"(>= {args.min_soa_speedup:.1f}x)")
            if r.get("engine") == "stochastic":
                fig13_gate_rows += 1
                if r["speedup_vs_exact"] < args.min_fig13_speedup:
                    failures.append(
                        f"fig13 stochastic n={r['sensors']}: speedup "
                        f"{r['speedup_vs_exact']:.1f}x vs exact < required "
                        f"{args.min_fig13_speedup:.1f}x")
                else:
                    print(f"ok: fig13 stochastic n={r['sensors']} speedup "
                          f"{r['speedup_vs_exact']:.1f}x vs exact "
                          f"(>= {args.min_fig13_speedup:.1f}x)")
                if r["utility_ratio"] < args.min_fig13_utility:
                    failures.append(
                        f"fig13 stochastic n={r['sensors']}: utility ratio "
                        f"{r['utility_ratio']:.4f} < required "
                        f"{args.min_fig13_utility:.2f}")
                else:
                    print(f"ok: fig13 stochastic n={r['sensors']} utility "
                          f"ratio {r['utility_ratio']:.4f} "
                          f"(>= {args.min_fig13_utility:.2f})")
            if r.get("engine") == "sieve":
                # The refinement pass (core/sieve_streaming.cc) closed the
                # one-pass quality gap; both sides of the trade gate:
                # utility without the speedup would mean the refinement
                # re-greedies the population, speedup without the utility
                # would mean it stopped refining.
                sieve_gate_rows += 1
                if r["utility_ratio"] < args.min_sieve_utility:
                    failures.append(
                        f"fig13 sieve n={r['sensors']}: utility ratio "
                        f"{r['utility_ratio']:.4f} < required "
                        f"{args.min_sieve_utility:.2f}")
                else:
                    print(f"ok: fig13 sieve n={r['sensors']} utility ratio "
                          f"{r['utility_ratio']:.4f} "
                          f"(>= {args.min_sieve_utility:.2f})")
                if r["speedup_vs_exact"] < args.min_sieve_speedup:
                    failures.append(
                        f"fig13 sieve n={r['sensors']}: speedup "
                        f"{r['speedup_vs_exact']:.1f}x vs exact < required "
                        f"{args.min_sieve_speedup:.1f}x")
                else:
                    print(f"ok: fig13 sieve n={r['sensors']} speedup "
                          f"{r['speedup_vs_exact']:.1f}x vs exact "
                          f"(>= {args.min_sieve_speedup:.1f}x)")
        if fig13_gate_rows == 0:
            failures.append(
                "fig13 produced no gate row (stochastic @ 100k sensors)")
        if soa_gate_rows == 0:
            failures.append(
                "fig13 produced no SoA gate row (exact @ 100k sensors)")
        if sieve_gate_rows == 0:
            failures.append(
                "fig13 produced no sieve gate row (sieve @ 100k sensors)")

    # 10. fig16 kernel-microbench gate (only when the run provided it).
    # Bit-equality is fatal everywhere; digest equality against the
    # committed baseline is checked further down with the other
    # baseline diffs.
    if fig16 is not None:
        if not pr["fig16"]:
            failures.append("fig16 produced no results")
        for r in pr["fig16"]:
            if not r.get("identical", False):
                failures.append(
                    f"fig16 {r.get('query', '?')} n={r['sensors']}: slab "
                    "kernels diverged from the AoS scalar reference")

    try:
        base = load(args.baseline)
    except FileNotFoundError:
        warnings.append(f"no baseline at {args.baseline}; deterministic and "
                        "time diffs skipped (run with --update to create it)")
        base = None

    if base is not None:
        limit = 1.0 + args.tolerance
        base_fig11 = {(r["name"], r["sensors"]): r for r in base.get("fig11", [])}
        for r in pr["fig11"]:
            b = base_fig11.get((r["name"], r["sensors"]))
            if b is None:
                warnings.append(f"fig11 {r['name']} n={r['sensors']}: "
                                "not in baseline (new benchmark?)")
                continue
            # 3. deterministic work metric — fatal.
            if b["pruned_pairs"] > 0 and r["pruned_pairs"] > b["pruned_pairs"] * limit:
                failures.append(
                    f"fig11 {r['name']} n={r['sensors']}: pruned_pairs "
                    f"{r['pruned_pairs']} > {limit:.2f}x baseline {b['pruned_pairs']}")
            # 4. normalized wall clock.
            if pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0 and b["pruned_ms"] > 0:
                norm_pr = r["pruned_ms"] / pr["cal_ms"]
                norm_base = b["pruned_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig11 {r['name']} n={r['sensors']}: normalized "
                           f"pruned time {norm_pr:.3f} > {limit:.2f}x baseline "
                           f"{norm_base:.3f}")
                    (failures if args.strict_time else warnings).append(msg)

        # Like fig13 below, the key carries the workload shape: a nightly
        # full run (256 queries/slot) must not be time-diffed against the
        # committed --quick rows (128 queries/slot).
        def fig12_key(r):
            return (r.get("workload"), r["sensors"], r.get("slots", 0),
                    r.get("queries", 0))

        base_fig12 = {fig12_key(r): r for r in base.get("fig12", [])}
        for r in pr["fig12"]:
            b = base_fig12.get(fig12_key(r))
            if b is None:
                warnings.append(f"fig12 {r.get('workload', '?')} "
                                f"n={r['sensors']}: not in baseline")
                continue
            if (pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0
                    and b["incremental_turnover_ms"] > 0):
                norm_pr = r["incremental_turnover_ms"] / pr["cal_ms"]
                norm_base = b["incremental_turnover_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig12 {r.get('workload', '?')} n={r['sensors']}: "
                           f"normalized incremental turnover {norm_pr:.4f} > "
                           f"{limit:.2f}x baseline {norm_base:.4f}")
                    (failures if args.strict_time else warnings).append(msg)

        # Keyed by the full workload shape: valuation_calls are summed over
        # slots, so a nightly full run (50 slots, 256 queries) must not be
        # diffed against the committed --quick rows (10 slots, 128
        # queries) at the same population — it falls through to the
        # "not in baseline" warning instead.
        def fig13_key(r):
            return (r.get("engine"), r["sensors"], r.get("churn", 0.01),
                    r.get("slots", 0), r.get("queries", 0),
                    r.get("epsilon", 0.1))

        base_fig13 = {fig13_key(r): r for r in base.get("fig13", [])}
        for r in pr["fig13"]:
            b = base_fig13.get(fig13_key(r))
            if b is None:
                warnings.append(f"fig13 {r.get('engine', '?')} "
                                f"n={r['sensors']}: not in baseline")
                continue
            # Deterministic work metric — fatal, like fig11 pruned_pairs.
            if (b.get("valuation_calls", 0) > 0
                    and r["valuation_calls"] > b["valuation_calls"] * limit):
                failures.append(
                    f"fig13 {r['engine']} n={r['sensors']}: valuation_calls "
                    f"{r['valuation_calls']} > {limit:.2f}x baseline "
                    f"{b['valuation_calls']}")
            if pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0 \
                    and b.get("median_ms", 0) > 0:
                norm_pr = r["median_ms"] / pr["cal_ms"]
                norm_base = b["median_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig13 {r['engine']} n={r['sensors']}: normalized "
                           f"median time {norm_pr:.4f} > {limit:.2f}x "
                           f"baseline {norm_base:.4f}")
                    (failures if args.strict_time else warnings).append(msg)

        # fig14: valuation_calls are deterministic per workload shape;
        # replay wall time diffs normalized like every other time metric.
        def fig14_key(r):
            return (r.get("engine"), r["sensors"], r.get("slots", 0),
                    r.get("queries", 0))

        base_fig14 = {fig14_key(r): r for r in base.get("fig14", [])}
        for r in pr["fig14"]:
            b = base_fig14.get(fig14_key(r))
            if b is None:
                warnings.append(f"fig14 {r.get('engine', '?')} "
                                f"n={r['sensors']}: not in baseline")
                continue
            if (b.get("valuation_calls", 0) > 0
                    and r["valuation_calls"] > b["valuation_calls"] * limit):
                failures.append(
                    f"fig14 {r['engine']} n={r['sensors']}: valuation_calls "
                    f"{r['valuation_calls']} > {limit:.2f}x baseline "
                    f"{b['valuation_calls']}")
            if pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0 \
                    and b.get("replay_wall_ms", 0) > 0:
                norm_pr = r["replay_wall_ms"] / pr["cal_ms"]
                norm_base = b["replay_wall_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig14 {r['engine']} n={r['sensors']}: normalized "
                           f"replay time {norm_pr:.4f} > {limit:.2f}x "
                           f"baseline {norm_base:.4f}")
                    (failures if args.strict_time else warnings).append(msg)

        # fig15: normalized closed-loop wall time per (population, shard
        # count). Skipped for rows the current host could not run at full
        # fan-out (hardware < threads) — their wall time says nothing
        # about the sharded path and the baseline only holds eligible
        # rows anyway.
        def fig15_base_key(r):
            return (r["sensors"], r["shards"], r.get("slots", 0),
                    r.get("queries", 0))

        base_fig15 = {fig15_base_key(r): r for r in base.get("fig15", [])}
        for r in pr["fig15"]:
            if (r.get("shards", 1) > 1
                    and r.get("hardware_threads", 0) < r.get("threads", 1)):
                continue
            b = base_fig15.get(fig15_base_key(r))
            if b is None:
                warnings.append(f"fig15 n={r['sensors']} "
                                f"shards={r['shards']}: not in baseline")
                continue
            if pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0 \
                    and b.get("wall_ms", 0) > 0:
                norm_pr = r["wall_ms"] / pr["cal_ms"]
                norm_base = b["wall_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig15 n={r['sensors']} shards={r['shards']}: "
                           f"normalized closed-loop time {norm_pr:.4f} > "
                           f"{limit:.2f}x baseline {norm_base:.4f}")
                    (failures if args.strict_time else warnings).append(msg)

        # fig16: the outcome digest is an FNV-1a hash over the selection's
        # raw bit patterns, deterministic for a fixed seed on every host —
        # a changed digest means a kernel changed an answer, which is
        # fatal until blessed with --update. Slab kernel time diffs
        # normalized like every other time metric.
        def fig16_key(r):
            return (r.get("query"), r["sensors"], r.get("queries", 0))

        base_fig16 = {fig16_key(r): r for r in base.get("fig16", [])}
        for r in pr["fig16"]:
            b = base_fig16.get(fig16_key(r))
            if b is None:
                warnings.append(f"fig16 {r.get('query', '?')} "
                                f"n={r['sensors']}: not in baseline")
                continue
            if b.get("digest") and r.get("digest") != b["digest"]:
                failures.append(
                    f"fig16 {r['query']} n={r['sensors']}: outcome digest "
                    f"{r.get('digest')} != baseline {b['digest']} — a kernel "
                    "changed an answer (re-bless with --update if intended)")
            if pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0 \
                    and b.get("soa_median_ms", 0) > 0:
                norm_pr = r["soa_median_ms"] / pr["cal_ms"]
                norm_base = b["soa_median_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig16 {r['query']} n={r['sensors']}: normalized "
                           f"slab kernel time {norm_pr:.4f} > {limit:.2f}x "
                           f"baseline {norm_base:.4f}")
                    (failures if args.strict_time else warnings).append(msg)

        # fig17: normalized closed-loop wall time per (population,
        # pipeline, shard) shape. Skipped for rows the current host could
        # not overlap at full width (hardware below the row's thread
        # need) — their wall time says nothing about the pipelined path.
        def fig17_diff_key(r):
            return (r["sensors"], r.get("pipeline", 0), r.get("shards", 1),
                    r.get("slots", 0), r.get("queries", 0))

        base_fig17 = {fig17_diff_key(r): r for r in base.get("fig17", [])}
        for r in pr["fig17"]:
            needed = (max(1, r.get("shards", 1))
                      + (1 if r.get("pipeline", 0) == 2 else 0))
            if needed > 1 and r.get("hardware_threads", 0) < needed:
                continue
            b = base_fig17.get(fig17_diff_key(r))
            if b is None:
                warnings.append(f"fig17 n={r['sensors']} "
                                f"pipeline={r.get('pipeline', 0)} "
                                f"shards={r.get('shards', 1)}: "
                                "not in baseline")
                continue
            if pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0 \
                    and b.get("wall_ms", 0) > 0:
                norm_pr = r["wall_ms"] / pr["cal_ms"]
                norm_base = b["wall_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig17 n={r['sensors']} "
                           f"pipeline={r.get('pipeline', 0)} "
                           f"shards={r.get('shards', 1)}: normalized "
                           f"closed-loop time {norm_pr:.4f} > {limit:.2f}x "
                           f"baseline {norm_base:.4f}")
                    (failures if args.strict_time else warnings).append(msg)

        base_times = base.get("scheduler_times_ms", {})
        for name, t in pr["scheduler_times_ms"].items():
            bt = base_times.get(name)
            if bt is None or bt <= 0 or pr["cal_ms"] <= 0 or base.get("cal_ms", 0) <= 0:
                continue
            norm_pr = t / pr["cal_ms"]
            norm_base = bt / base["cal_ms"]
            if norm_pr > norm_base * limit:
                msg = (f"bench_schedulers {name}: normalized time {norm_pr:.3f} "
                       f"> {limit:.2f}x baseline {norm_base:.3f}")
                (failures if args.strict_time else warnings).append(msg)

    for w in warnings:
        print(f"warning: {w}")
    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        return 1
    print("benchmark-regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
