#!/usr/bin/env python3
"""Benchmark-regression gate for CI (docs/BENCHMARKS.md, "Regression gate").

Merges the machine-readable outputs of the quick benchmark runs into one
BENCH_pr.json artifact and diffs it against the committed baseline
(bench/BENCH_baseline.json). The gate fails (exit 1) on:

  1. any fig11 result where the indexed run was not bit-identical to the
     brute-force run (`identical: false`) — correctness, zero tolerance;
  2. fig11 speedup at the largest population below --min-speedup
     (default 10x) — the asymptotic win must not rot;
  3. deterministic *work* regressions: `pruned_pairs` (candidate pairs the
     indexed path scans; machine-independent and bit-reproducible) more
     than --tolerance (default 20%) above the baseline;
  4. *time* regressions above --tolerance, after normalizing every wall
     time by the run's `cal_ms` calibration (a fixed FP loop timed in the
     same process), which makes the committed baseline comparable across
     hosts of different speeds. Time checks require --strict-time; without
     it they only warn, because shared CI runners jitter more than 20%
     while checks 1-3 stay exact;
  5. when --fig12 is given: any fig12 slot where the incremental engine's
     schedule diverged from the per-slot rebuild (`identical: false`) —
     zero tolerance — and a median slot-turnover speedup below
     --min-fig12-speedup (default 5x) on the gate scenario (the "churn"
     workload at 100k sensors, 1% churn);
  6. when --fig12 is given and it carries `parallel_results` rows
     (intra-slot parallel selection, `fig12_streaming --threads N`): any
     row where the parallel selection diverged from the serial one —
     zero tolerance, on every host — and a median slot-serve speedup
     below --min-parallel-speedup (default 2x) at 100k sensors, enforced
     only when the row requested at least --parallel-gate-threads
     (default 8) workers AND the host has that many hardware threads.
     Low-core hosts (or low --threads runs, where both passes are close
     to serial) cannot exhibit the speedup by construction, so there the
     speedup check only warns (bit-equality still gates).

Usage:
  check_bench_regression.py --fig11 fig11.json [--fig12 fig12.json]
      [--schedulers sched.json]
      --baseline bench/BENCH_baseline.json --out BENCH_pr.json
      [--min-speedup 10] [--min-fig12-speedup 5] [--tolerance 0.2]
      [--strict-time] [--update]

--update rewrites the baseline from the current run instead of checking.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def google_benchmark_times(doc):
    """name -> real_time in ms from a google-benchmark JSON report."""
    out = {}
    for b in (doc or {}).get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
        if scale is None:
            continue
        out[b["name"]] = b["real_time"] * scale
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fig11", required=True, help="fig11_scale_sweep --json output")
    ap.add_argument("--fig12", help="fig12_streaming --json output")
    ap.add_argument("--schedulers", help="bench_schedulers --benchmark_out JSON")
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--out", default="BENCH_pr.json")
    ap.add_argument("--min-speedup", type=float, default=10.0)
    ap.add_argument("--min-fig12-speedup", type=float, default=5.0)
    ap.add_argument("--min-parallel-speedup", type=float, default=2.0)
    ap.add_argument("--parallel-gate-threads", type=int, default=8,
                    help="minimum requested thread count (and hardware "
                         "threads) for the parallel speedup gate to arm")
    ap.add_argument("--tolerance", type=float, default=0.20)
    ap.add_argument("--strict-time", action="store_true",
                    help="make normalized-time regressions fatal, not warnings")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run")
    args = ap.parse_args()

    fig11 = load(args.fig11)
    fig12 = load(args.fig12) if args.fig12 else None
    schedulers = load(args.schedulers) if args.schedulers else None

    pr = {
        "cal_ms": fig11.get("cal_ms", 0.0),
        "fig11": fig11.get("results", []),
        "fig12": (fig12 or {}).get("results", []),
        "fig12_parallel": (fig12 or {}).get("parallel_results", []),
        "scheduler_times_ms": google_benchmark_times(schedulers),
    }
    with open(args.out, "w") as f:
        json.dump(pr, f, indent=2)
    print(f"wrote {args.out}")

    if args.update:
        # Preserve baseline sections the current invocation did not
        # re-measure: a fig11-only refresh must not silently wipe the
        # fig12 (or scheduler) rows and degrade their gates to "not in
        # baseline" warnings.
        updated = dict(pr)
        try:
            old = load(args.baseline)
        except FileNotFoundError:
            old = {}
        if fig12 is None and old.get("fig12"):
            updated["fig12"] = old["fig12"]
        if fig12 is None and old.get("fig12_parallel"):
            updated["fig12_parallel"] = old["fig12_parallel"]
        if schedulers is None and old.get("scheduler_times_ms"):
            updated["scheduler_times_ms"] = old["scheduler_times_ms"]
        with open(args.baseline, "w") as f:
            json.dump(updated, f, indent=2)
        print(f"baseline updated: {args.baseline}")
        return 0

    failures = []
    warnings = []

    # 1. bit-identical selections, always fatal.
    for r in pr["fig11"]:
        if not r.get("identical", False):
            failures.append(f"fig11 {r['name']} n={r['sensors']}: indexed run "
                            "diverged from brute force")

    # 2. speedup at the largest population.
    if pr["fig11"]:
        largest = max(r["sensors"] for r in pr["fig11"])
        for r in pr["fig11"]:
            if r["sensors"] != largest:
                continue
            if r["speedup"] < args.min_speedup:
                failures.append(
                    f"fig11 {r['name']} n={r['sensors']}: speedup "
                    f"{r['speedup']:.1f}x < required {args.min_speedup:.1f}x")
            else:
                print(f"ok: fig11 {r['name']} n={r['sensors']} speedup "
                      f"{r['speedup']:.1f}x (>= {args.min_speedup:.1f}x)")
    else:
        failures.append("fig11 produced no results")

    # 5. fig12 streaming-engine gate (only when the run provided it).
    if fig12 is not None:
        gate_rows = 0
        for r in pr["fig12"]:
            if not r.get("identical", False):
                failures.append(
                    f"fig12 {r.get('workload', '?')} n={r['sensors']}: "
                    "incremental engine diverged from per-slot rebuild")
            if r.get("workload") == "churn" and r["sensors"] == 100_000:
                gate_rows += 1
                if r["turnover_speedup"] < args.min_fig12_speedup:
                    failures.append(
                        f"fig12 churn n={r['sensors']}: turnover speedup "
                        f"{r['turnover_speedup']:.1f}x < required "
                        f"{args.min_fig12_speedup:.1f}x")
                else:
                    print(f"ok: fig12 churn n={r['sensors']} turnover speedup "
                          f"{r['turnover_speedup']:.1f}x "
                          f"(>= {args.min_fig12_speedup:.1f}x)")
        if gate_rows == 0:
            failures.append("fig12 produced no gate row (churn @ 100k sensors)")

        # 6. intra-slot parallel selection gate. Bit-equality is enforced
        # on every host; the speedup bar is the ISSUE's literal "2x at 8
        # threads", so it arms only when the run actually requested at
        # least --parallel-gate-threads workers AND the host has that many
        # hardware threads — a 1/2/4-core host (or a --threads 1 run,
        # where both passes are serial) cannot exhibit the speedup by
        # construction and only warns.
        parallel_gate_rows = 0
        for r in pr["fig12_parallel"]:
            if not r.get("identical", False):
                failures.append(
                    f"fig12 parallel n={r['sensors']}: parallel selection "
                    "diverged from serial")
            if r["sensors"] != 100_000:
                continue
            parallel_gate_rows += 1
            threads = r.get("threads", 1)
            hardware = r.get("hardware_threads", 0)
            eligible = (threads >= args.parallel_gate_threads
                        and hardware >= threads)
            if r["serve_speedup"] < args.min_parallel_speedup:
                msg = (f"fig12 parallel n={r['sensors']}: serve speedup "
                       f"{r['serve_speedup']:.2f}x < required "
                       f"{args.min_parallel_speedup:.1f}x at "
                       f"{threads} threads")
                if eligible:
                    failures.append(msg)
                else:
                    warnings.append(
                        msg + f" (gate needs a >= {args.parallel_gate_threads}"
                        f"-thread run on >= {args.parallel_gate_threads} "
                        f"hardware threads; this row ran {threads} threads "
                        f"on {hardware}; speedup gate skipped, bit-equality "
                        "still enforced)")
            else:
                print(f"ok: fig12 parallel n={r['sensors']} serve speedup "
                      f"{r['serve_speedup']:.2f}x "
                      f"(>= {args.min_parallel_speedup:.1f}x)")
        if pr["fig12_parallel"] and parallel_gate_rows == 0:
            failures.append(
                "fig12 produced no parallel gate row (parallel @ 100k "
                "sensors) — was the population capped?")

    try:
        base = load(args.baseline)
    except FileNotFoundError:
        warnings.append(f"no baseline at {args.baseline}; deterministic and "
                        "time diffs skipped (run with --update to create it)")
        base = None

    if base is not None:
        limit = 1.0 + args.tolerance
        base_fig11 = {(r["name"], r["sensors"]): r for r in base.get("fig11", [])}
        for r in pr["fig11"]:
            b = base_fig11.get((r["name"], r["sensors"]))
            if b is None:
                warnings.append(f"fig11 {r['name']} n={r['sensors']}: "
                                "not in baseline (new benchmark?)")
                continue
            # 3. deterministic work metric — fatal.
            if b["pruned_pairs"] > 0 and r["pruned_pairs"] > b["pruned_pairs"] * limit:
                failures.append(
                    f"fig11 {r['name']} n={r['sensors']}: pruned_pairs "
                    f"{r['pruned_pairs']} > {limit:.2f}x baseline {b['pruned_pairs']}")
            # 4. normalized wall clock.
            if pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0 and b["pruned_ms"] > 0:
                norm_pr = r["pruned_ms"] / pr["cal_ms"]
                norm_base = b["pruned_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig11 {r['name']} n={r['sensors']}: normalized "
                           f"pruned time {norm_pr:.3f} > {limit:.2f}x baseline "
                           f"{norm_base:.3f}")
                    (failures if args.strict_time else warnings).append(msg)

        base_fig12 = {(r.get("workload"), r["sensors"]): r
                      for r in base.get("fig12", [])}
        for r in pr["fig12"]:
            b = base_fig12.get((r.get("workload"), r["sensors"]))
            if b is None:
                warnings.append(f"fig12 {r.get('workload', '?')} "
                                f"n={r['sensors']}: not in baseline")
                continue
            if (pr["cal_ms"] > 0 and base.get("cal_ms", 0) > 0
                    and b["incremental_turnover_ms"] > 0):
                norm_pr = r["incremental_turnover_ms"] / pr["cal_ms"]
                norm_base = b["incremental_turnover_ms"] / base["cal_ms"]
                if norm_base > 0 and norm_pr > norm_base * limit:
                    msg = (f"fig12 {r.get('workload', '?')} n={r['sensors']}: "
                           f"normalized incremental turnover {norm_pr:.4f} > "
                           f"{limit:.2f}x baseline {norm_base:.4f}")
                    (failures if args.strict_time else warnings).append(msg)

        base_times = base.get("scheduler_times_ms", {})
        for name, t in pr["scheduler_times_ms"].items():
            bt = base_times.get(name)
            if bt is None or bt <= 0 or pr["cal_ms"] <= 0 or base.get("cal_ms", 0) <= 0:
                continue
            norm_pr = t / pr["cal_ms"]
            norm_base = bt / base["cal_ms"]
            if norm_pr > norm_base * limit:
                msg = (f"bench_schedulers {name}: normalized time {norm_pr:.3f} "
                       f"> {limit:.2f}x baseline {norm_base:.3f}")
                (failures if args.strict_time else warnings).append(msg)

    for w in warnings:
        print(f"warning: {w}")
    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        return 1
    print("benchmark-regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
