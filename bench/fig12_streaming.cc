// Fig. 12 (beyond the paper): slot turnover of the streaming acquisition
// engine under sensor churn.
//
// The paper's aggregator is a long-running service: sensors announce
// prices each slot, queries arrive continuously. fig11 showed that the
// spatial index makes one slot's *scheduling* cheap; this sweep measures
// the other half of the loop — getting from slot t to slot t+1. The
// rebuild-from-scratch discipline (what the batch harness did before the
// engine layer) pays O(n) per slot to reconstruct the SlotContext and the
// spatial index from the full registry even when only 1% of the
// population changed. The incremental engine (src/engine/) repairs both
// from the delta, paying O(churn).
//
// Per population size, the incremental and the rebuild-reference
// engines consume the *same* deterministic churn delta and query
// streams. Two serving passes (one per mode, full query load) establish
// bit-equality — every slot's schedule is recorded in the first pass and
// compared field by field in the second; any divergence (a selection, a
// payment, a quality) fails the run — and sustained slots/sec. A
// separate pair of turnover-only passes, interleaved in 10-slot blocks,
// measures the gated slot-turnover latency (ApplyDelta + BeginSlot);
// see docs/BENCHMARKS.md for the methodology rationale.
//
// `--json PATH` emits the record consumed by
// scripts/check_bench_regression.py, which gates on bit-equality and on a
// >=4x turnover speedup at 100k sensors / 1% churn (docs/BENCHMARKS.md).

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/point_scheduling.h"
#include "core/slot.h"
#include "engine/acquisition_engine.h"
#include "sim/workload.h"

namespace psens {
namespace {

struct StreamResult {
  std::string workload;
  int sensors = 0;
  int slots = 0;
  int queries_per_slot = 0;
  double churn_fraction = 0.0;
  double rebuild_turnover_ms = 0.0;      // median per slot
  double incremental_turnover_ms = 0.0;  // median per slot
  double turnover_speedup = 0.0;         // median rebuild / median incremental
  double slots_per_sec_rebuild = 0.0;
  double slots_per_sec_incremental = 0.0;
  bool identical = false;
  std::string index_kind;
};

StreamResult RunOne(const char* workload, int n, int slots,
                    double churn_fraction, bool with_mobility,
                    const bench::BenchArgs& args) {
  StreamResult r;
  r.workload = workload;
  r.sensors = n;
  r.slots = slots;
  r.churn_fraction = churn_fraction;
  // The gate workload is the ISSUE's literal scenario — 1% membership
  // churn per slot over the shared city-scale geometry
  // (MakeChurnScenario, also fig13's). The "mixed" row layers
  // relocation and price-jitter streams on top for a fuller
  // announce-stream shape (not gated).
  const ChurnScenarioSetup setup =
      MakeChurnScenario(n, churn_fraction, args.seed, with_mobility);
  const double dmax = setup.dmax;
  const Rect& field = setup.field;
  const ClusteredPopulationConfig& config = setup.config;
  const ScaleScenario& scenario = setup.scenario;
  const ChurnConfig& churn = setup.churn;
  const Rng& rng = setup.rng_after_generation;

  r.queries_per_slot = args.quick ? 128 : 256;

  // One pass of the serving loop in the given mode over the deterministic
  // delta/query streams. `reference` holds pass 1's per-slot schedules;
  // pass 2 verifies against them.
  struct PassTotals {
    std::vector<double> turnover_samples_ms;  // one per steady-state slot
    double turnover_ms = 0.0;
    double sched_ms = 0.0;
    std::string index_kind;

    /// Median per-slot turnover: the reported latency — robust against
    /// one-off spikes (allocator growth, index re-probes, CI-runner
    /// preemption) that a mean would smear into every run.
    double MedianTurnoverMs() const { return bench::MedianMs(turnover_samples_ms); }
  };
  const auto run_pass = [&](bool incremental,
                            std::vector<PointScheduleResult>* reference,
                            bool* identical) {
    ServingConfig ecfg;
    ecfg.working_region = field;
    ecfg.dmax = dmax;
    ecfg.index_policy = args.index_policy;
    ecfg.index_auto_threshold = args.index_threshold;
    ecfg.incremental = incremental;
    AcquisitionEngine engine(scenario.sensors, ecfg);
    ChurnStream stream(churn, scenario.sensors, field);
    stream.SetClusteredPlacement(&scenario, &config);
    // Fork from a pass-local copy: Fork advances its parent, and both
    // passes must consume identical delta/query streams.
    Rng fork_base = rng;
    Rng churn_rng = fork_base.Fork(7);
    Rng query_rng = fork_base.Fork(8);
    PointSchedulingOptions options;
    options.scheduler = PointScheduler::kLocalSearch;
    // Slot 0 is the O(n) cold build in either mode; steady-state slots
    // are what the sweep times.
    engine.BeginSlot(0);
    PassTotals totals;
    for (int t = 1; t <= slots; ++t) {
      const SensorDelta delta = stream.Next(churn_rng);
      const SlotContext* slot = nullptr;
      const double turnover = bench::TimeMs([&] {
        engine.ApplyDelta(delta);
        slot = &engine.BeginSlot(t);
      });
      totals.turnover_samples_ms.push_back(turnover);
      totals.turnover_ms += turnover;
      const std::vector<PointQuery> queries = GenerateClusteredPointQueries(
          r.queries_per_slot, scenario, config, BudgetScheme{15.0, false, 0.0},
          /*theta_min=*/0.2, /*id_base=*/t * r.queries_per_slot, query_rng);
      options.seed = args.seed + static_cast<uint64_t>(t);
      PointScheduleResult result;
      totals.sched_ms += bench::TimeMs(
          [&] { result = SchedulePointQueries(queries, *slot, options); });
      if (identical == nullptr) {
        reference->push_back(std::move(result));
      } else if (!bench::SameSchedule(result, (*reference)[static_cast<size_t>(t - 1)])) {
        *identical = false;
      }
    }
    totals.index_kind = engine.IndexBackendName();
    return totals;
  };

  // Turnover-only passes: the same engines + delta streams, no queries.
  // The gated latency is measured here so it reflects the cost of the
  // slot transition itself, not how much of the engine's working set the
  // previous slot's scheduling happened to evict — that pollution is
  // charged (for both modes alike) to the serving passes' slots/sec.
  // The two modes advance in alternating 10-slot blocks so both sample
  // the same machine conditions (frequency scaling, noisy neighbours on
  // shared runners) — two long back-to-back passes would let a few
  // seconds of drift skew the gated ratio.
  const auto run_turnover_passes = [&](PassTotals* inc_totals,
                                       PassTotals* reb_totals) {
    const auto make_engine = [&](bool incremental) {
      ServingConfig ecfg;
      ecfg.working_region = field;
      ecfg.dmax = dmax;
      ecfg.index_policy = args.index_policy;
      ecfg.index_auto_threshold = args.index_threshold;
      ecfg.incremental = incremental;
      return std::make_unique<AcquisitionEngine>(scenario.sensors, ecfg);
    };
    struct ModeState {
      std::unique_ptr<AcquisitionEngine> engine;
      ChurnStream stream;
      Rng churn_rng;
      int next_slot = 1;
      PassTotals* totals;
    };
    Rng fork_base_inc = rng;
    Rng fork_base_reb = rng;
    ModeState modes[2] = {
        {make_engine(true), ChurnStream(churn, scenario.sensors, field),
         fork_base_inc.Fork(7), 1, inc_totals},
        {make_engine(false), ChurnStream(churn, scenario.sensors, field),
         fork_base_reb.Fork(7), 1, reb_totals},
    };
    for (ModeState& m : modes) {
      m.stream.SetClusteredPlacement(&scenario, &config);
      m.engine->BeginSlot(0);
    }
    constexpr int kBlock = 10;
    while (modes[0].next_slot <= slots || modes[1].next_slot <= slots) {
      for (ModeState& m : modes) {
        for (int b = 0; b < kBlock && m.next_slot <= slots; ++b) {
          const int t = m.next_slot++;
          const SensorDelta delta = m.stream.Next(m.churn_rng);
          const double turnover = bench::TimeMs([&] {
            m.engine->ApplyDelta(delta);
            m.engine->BeginSlot(t);
          });
          m.totals->turnover_samples_ms.push_back(turnover);
          m.totals->turnover_ms += turnover;
        }
      }
    }
  };

  std::vector<PointScheduleResult> reference;
  reference.reserve(static_cast<size_t>(slots));
  r.identical = true;
  const PassTotals inc = run_pass(/*incremental=*/true, &reference, nullptr);
  const PassTotals reb =
      run_pass(/*incremental=*/false, &reference, &r.identical);
  PassTotals inc_turnover;
  PassTotals reb_turnover;
  run_turnover_passes(&inc_turnover, &reb_turnover);

  // The gated speedup is the ratio of the two medians: 50 interleaved,
  // query-free samples per mode make each median stable to a few
  // percent, where a min-vs-min ratio would swing on one lucky slot.
  r.rebuild_turnover_ms = reb_turnover.MedianTurnoverMs();
  r.incremental_turnover_ms = inc_turnover.MedianTurnoverMs();
  r.turnover_speedup =
      r.incremental_turnover_ms > 0.0
          ? r.rebuild_turnover_ms / r.incremental_turnover_ms
          : 0.0;
  r.slots_per_sec_rebuild = 1000.0 * slots / (reb.turnover_ms + reb.sched_ms);
  r.slots_per_sec_incremental =
      1000.0 * slots / (inc.turnover_ms + inc.sched_ms);
  r.index_kind = inc.index_kind;
  return r;
}

// ---------------------------------------------------------------------------
// Intra-slot parallel selection row (--threads): the same incremental
// engine and churn stream as the gate row, but each slot's work is the
// paper's joint greedy selection (Algorithm 1, eager engine) over a mixed
// point + aggregate query set, run twice — ServingConfig::threads = 1 vs
// --threads — over identical pregenerated delta and query streams. The
// measured "serve" latency is ApplyDelta + BeginSlot + joint selection
// (query-object binding is query-arrival work and excluded; it is
// identical in both modes anyway). Bit-equality of the two modes'
// schedules, payments, and ValuationCalls is checked slot by slot; see
// docs/BENCHMARKS.md for the gate contract.
// ---------------------------------------------------------------------------

struct ParallelResult {
  int sensors = 0;
  int slots = 0;
  int queries_per_slot = 0;
  int aggregates_per_slot = 0;
  int threads = 1;
  int hardware_threads = 0;
  double churn_fraction = 0.0;
  double serial_serve_ms = 0.0;    // median per slot, threads = 1
  double parallel_serve_ms = 0.0;  // median per slot, threads = N
  double serve_speedup = 0.0;
  bool identical = false;
  std::string index_kind;
};

ParallelResult RunParallelRow(int n, int slots, double churn_fraction,
                              const bench::BenchArgs& args) {
  ParallelResult r;
  r.sensors = n;
  r.slots = slots;
  r.churn_fraction = churn_fraction;
  r.threads = args.threads >= 1 ? args.threads : ThreadPool::ResolveParallelism(0);
  r.hardware_threads = ThreadPool::ResolveParallelism(0);

  const ChurnScenarioSetup setup = MakeChurnScenario(
      n, churn_fraction, args.seed, /*with_mobility=*/false);
  const double side = setup.side;
  const double dmax = setup.dmax;
  const Rect& field = setup.field;
  const ClusteredPopulationConfig& config = setup.config;
  const ScaleScenario& scenario = setup.scenario;
  const ChurnConfig& churn = setup.churn;
  const Rng& rng = setup.rng_after_generation;

  r.queries_per_slot = args.quick ? 128 : 256;
  r.aggregates_per_slot = args.quick ? 16 : 24;

  // Pregenerated streams shared verbatim by both modes: per-slot churn
  // deltas and per-slot query sets (clustered point queries plus
  // fixed-size aggregate monitoring regions at hotspot locations).
  Rng fork_base = rng;
  Rng churn_rng = fork_base.Fork(7);
  Rng query_rng = fork_base.Fork(8);
  ChurnStream stream(churn, scenario.sensors, field);
  stream.SetClusteredPlacement(&scenario, &config);
  std::vector<SensorDelta> deltas;
  struct SlotQueries {
    std::vector<PointQuery> points;
    std::vector<AggregateQuery::Params> aggregates;
  };
  std::vector<SlotQueries> slot_queries;
  const double agg_half = 25.0;  // 50x50 monitoring regions
  const double agg_range = 10.0;
  for (int t = 1; t <= slots; ++t) {
    deltas.push_back(stream.Next(churn_rng));
    SlotQueries q;
    q.points = GenerateClusteredPointQueries(
        r.queries_per_slot, scenario, config, BudgetScheme{15.0, false, 0.0},
        /*theta_min=*/0.2, /*id_base=*/t * r.queries_per_slot, query_rng);
    for (int i = 0; i < r.aggregates_per_slot; ++i) {
      const Point c = DrawScenarioLocation(scenario, config, query_rng);
      AggregateQuery::Params params;
      params.id = t * 1000 + i;
      params.region = Rect{std::max(0.0, c.x - agg_half), std::max(0.0, c.y - agg_half),
                           std::min(side, c.x + agg_half), std::min(side, c.y + agg_half)};
      // Paper-shaped budget (Section 4.4) at a factor keeping selections
      // per region in the tens, so a slot stays interactive.
      params.budget =
          params.region.Width() * params.region.Height() / (1.5 * agg_range) * 2.0;
      params.sensing_range = agg_range;
      params.cell_size = 5.0;
      q.aggregates.push_back(params);
    }
    slot_queries.push_back(std::move(q));
  }

  // Everything the two modes must agree on, recorded per slot.
  struct Schedule {
    std::vector<int> selected;
    double total_value = 0.0;
    double total_cost = 0.0;
    int64_t valuation_calls = 0;
    std::vector<double> payments;
  };
  struct ModeState {
    std::unique_ptr<AcquisitionEngine> engine;
    int next_slot = 1;
    std::vector<double> serve_ms;
    std::vector<Schedule> schedules;
  };
  const auto make_engine = [&](int threads) {
    ServingConfig ecfg;
    ecfg.working_region = field;
    ecfg.dmax = dmax;
    ecfg.index_policy = args.index_policy;
    ecfg.index_auto_threshold = args.index_threshold;
    ecfg.incremental = true;
    ecfg.threads = threads;
    return std::make_unique<AcquisitionEngine>(scenario.sensors, ecfg);
  };
  ModeState modes[2];
  modes[0].engine = make_engine(1);
  modes[1].engine = make_engine(r.threads);
  for (ModeState& m : modes) m.engine->BeginSlot(0);

  const auto serve_slot = [&](ModeState& m, int t) {
    const SlotQueries& q = slot_queries[static_cast<size_t>(t - 1)];
    const SlotContext* slot = nullptr;
    double turnover_ms = bench::TimeMs([&] {
      m.engine->ApplyDelta(deltas[static_cast<size_t>(t - 1)]);
      slot = &m.engine->BeginSlot(t);
    });
    // Query binding (coverage masks, candidate probes) happens on
    // arrival, outside the gated serve metric — identically for both
    // modes.
    std::vector<std::unique_ptr<AggregateQuery>> aggregates;
    std::vector<std::unique_ptr<PointMultiQuery>> points;
    std::vector<MultiQuery*> all;
    for (const AggregateQuery::Params& params : q.aggregates) {
      aggregates.push_back(std::make_unique<AggregateQuery>(params, *slot));
      all.push_back(aggregates.back().get());
    }
    for (const PointQuery& spec : q.points) {
      points.push_back(std::make_unique<PointMultiQuery>(spec, slot));
      all.push_back(points.back().get());
    }
    SelectionResult selection;
    const double selection_ms = bench::TimeMs([&] {
      selection = GreedySensorSelection(all, *slot, nullptr, GreedyEngine::kEager);
    });
    m.serve_ms.push_back(turnover_ms + selection_ms);
    Schedule schedule;
    schedule.selected = std::move(selection.selected_sensors);
    schedule.total_value = selection.total_value;
    schedule.total_cost = selection.total_cost;
    schedule.valuation_calls = selection.valuation_calls;
    for (const MultiQuery* query : all) {
      schedule.payments.push_back(query->TotalPayment());
    }
    m.schedules.push_back(std::move(schedule));
  };

  // Alternating 10-slot blocks, same rationale as the turnover passes:
  // both modes sample the same machine conditions.
  constexpr int kBlock = 10;
  while (modes[0].next_slot <= slots || modes[1].next_slot <= slots) {
    for (ModeState& m : modes) {
      for (int b = 0; b < kBlock && m.next_slot <= slots; ++b) {
        serve_slot(m, m.next_slot++);
      }
    }
  }

  r.identical = true;
  for (int t = 0; t < slots; ++t) {
    const Schedule& a = modes[0].schedules[static_cast<size_t>(t)];
    const Schedule& b = modes[1].schedules[static_cast<size_t>(t)];
    if (a.selected != b.selected || a.total_value != b.total_value ||
        a.total_cost != b.total_cost ||
        a.valuation_calls != b.valuation_calls || a.payments != b.payments) {
      r.identical = false;
    }
  }
  r.serial_serve_ms = bench::MedianMs(modes[0].serve_ms);
  r.parallel_serve_ms = bench::MedianMs(modes[1].serve_ms);
  r.serve_speedup = r.parallel_serve_ms > 0.0
                        ? r.serial_serve_ms / r.parallel_serve_ms
                        : 0.0;
  r.index_kind = modes[1].engine->IndexBackendName();
  return r;
}

void WriteJson(const std::string& path, double cal_ms,
               const std::vector<StreamResult>& results,
               const std::vector<ParallelResult>& parallel_results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig12_streaming\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n  \"results\": [\n", cal_ms);
  for (size_t i = 0; i < results.size(); ++i) {
    const StreamResult& r = results[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"sensors\": %d, \"slots\": %d, "
                 "\"queries\": %d, "
                 "\"churn\": %.4f, \"rebuild_turnover_ms\": %.4f, "
                 "\"incremental_turnover_ms\": %.4f, "
                 "\"turnover_speedup\": %.3f, "
                 "\"slots_per_sec_rebuild\": %.2f, "
                 "\"slots_per_sec_incremental\": %.2f, "
                 "\"identical\": %s, \"index\": \"%s\"}%s\n",
                 r.workload.c_str(), r.sensors, r.slots, r.queries_per_slot,
                 r.churn_fraction,
                 r.rebuild_turnover_ms, r.incremental_turnover_ms,
                 r.turnover_speedup, r.slots_per_sec_rebuild,
                 r.slots_per_sec_incremental, r.identical ? "true" : "false",
                 r.index_kind.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"parallel_results\": [\n");
  for (size_t i = 0; i < parallel_results.size(); ++i) {
    const ParallelResult& r = parallel_results[i];
    std::fprintf(f,
                 "    {\"workload\": \"parallel\", \"sensors\": %d, "
                 "\"slots\": %d, \"queries\": %d, \"aggregates\": %d, "
                 "\"churn\": %.4f, \"threads\": %d, \"hardware_threads\": %d, "
                 "\"serial_serve_ms\": %.4f, \"parallel_serve_ms\": %.4f, "
                 "\"serve_speedup\": %.3f, \"identical\": %s, "
                 "\"index\": \"%s\"}%s\n",
                 r.sensors, r.slots, r.queries_per_slot, r.aggregates_per_slot,
                 r.churn_fraction, r.threads, r.hardware_threads,
                 r.serial_serve_ms, r.parallel_serve_ms, r.serve_speedup,
                 r.identical ? "true" : "false", r.index_kind.c_str(),
                 i + 1 < parallel_results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Steady-state slots per pass (--slots; --quick's 10 is enough for a
  // stable median, the CI gate passes --quick --slots 50 so the gated
  // min-turnover sees a long interference-free window).
  const int slots = std::max(args.slots, 3);
  const double churn_fraction = 0.01;  // 1% of the population per slot

  std::vector<int> populations =
      args.quick ? std::vector<int>{100'000}
                 : std::vector<int>{100'000, 300'000, 1'000'000};
  if (args.max_sensors > 0) {
    std::vector<int> capped;
    for (int n : populations) {
      if (n <= args.max_sensors) capped.push_back(n);
    }
    if (capped.empty()) capped.push_back(args.max_sensors);
    populations = capped;
  }

  bench::PrintHeader(
      "fig12: streaming slot turnover, incremental engine vs rebuild");
  std::printf("%-7s %9s %6s %6s %13s %13s %8s %11s %11s %s\n", "workload",
              "sensors", "slots", "churn", "rebuild_ms", "increment_ms",
              "speedup", "slots/s(reb)", "slots/s(inc)", "identical");

  const double cal_ms = bench::CalibrationMs();
  std::vector<StreamResult> results;
  bool all_identical = true;
  const auto report = [&](StreamResult r) {
    all_identical = all_identical && r.identical;
    std::printf(
        "%-7s %9d %6d %5.1f%% %13.3f %13.3f %7.1fx %11.1f %11.1f %s [%s]\n",
        r.workload.c_str(), r.sensors, r.slots, 100.0 * r.churn_fraction,
        r.rebuild_turnover_ms, r.incremental_turnover_ms, r.turnover_speedup,
        r.slots_per_sec_rebuild, r.slots_per_sec_incremental,
        r.identical ? "yes" : "NO", r.index_kind.c_str());
    results.push_back(std::move(r));
  };
  for (int n : populations) {
    report(RunOne("churn", n, slots, churn_fraction, /*with_mobility=*/false,
                  args));
  }
  // One mixed-stream row (relocations + price jitter on top of the churn)
  // at the smallest population for workload colour; not part of the gate.
  report(RunOne("mixed", populations.front(), slots, churn_fraction,
                /*with_mobility=*/true, args));

  // Intra-slot parallel selection: 1 thread vs --threads (default:
  // hardware concurrency) over the joint greedy mix, at the gate
  // population.
  std::printf("\n%-8s %9s %6s %7s %14s %14s %8s %s\n", "workload", "sensors",
              "slots", "threads", "serial_ms", "parallel_ms", "speedup",
              "identical");
  std::vector<ParallelResult> parallel_results;
  {
    ParallelResult pr =
        RunParallelRow(populations.front(), slots, churn_fraction, args);
    all_identical = all_identical && pr.identical;
    std::printf("%-8s %9d %6d %4dx%-2d %14.3f %14.3f %7.2fx %s [%s]\n",
                "parallel", pr.sensors, pr.slots, pr.threads,
                pr.hardware_threads, pr.serial_serve_ms, pr.parallel_serve_ms,
                pr.serve_speedup, pr.identical ? "yes" : "NO",
                pr.index_kind.c_str());
    parallel_results.push_back(std::move(pr));
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (!args.json_path.empty()) {
    WriteJson(args.json_path, cal_ms, results, parallel_results);
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: an equivalence pass diverged (incremental vs rebuild, "
                 "or parallel vs serial selection)\n");
    return 1;
  }
  std::printf("all incremental slots bit-identical to per-slot rebuild; "
              "parallel selection bit-identical to serial\n");
  return 0;
}
