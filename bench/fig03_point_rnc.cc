// Reproduces Figure 3 (EDBT'13): single-sensor point queries on the RNC
// trace (synthetic Nokia-campaign substitute, see DESIGN.md): 635 sensors
// over a 237x300 grid with a 100x100 working subregion (~120 sensors per
// slot inside it), dmax = 10. Utilities and satisfaction are lower than
// Fig. 2 because sensors are sparser — the shape the paper reports.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  const std::vector<double> budgets = {7, 10, 15, 20, 25, 30, 35};
  psens::Table utility({"budget", "Optimal", "LocalSearch", "Baseline"});
  psens::Table satisfaction({"budget", "Optimal", "LocalSearch", "Baseline"});

  for (double budget : budgets) {
    std::vector<double> util_row = {budget};
    std::vector<double> sat_row = {budget};
    for (const psens::PointScheduler scheduler :
         {psens::PointScheduler::kOptimal, psens::PointScheduler::kLocalSearch,
          psens::PointScheduler::kBaseline}) {
      psens::PointExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.dmax = 10.0;
      config.num_slots = args.slots;
      config.queries_per_slot = 300;
      config.budget = psens::BudgetScheme{budget, false, 0.0};
      config.scheduler = scheduler;
      config.sensors.lifetime = args.slots;
      config.seed = args.seed;
      const psens::ExperimentResult r = psens::RunPointExperiment(config);
      util_row.push_back(r.avg_utility);
      sat_row.push_back(r.satisfaction);
    }
    utility.AddRow(util_row);
    satisfaction.AddRow(sat_row, 3);
  }

  psens::bench::PrintHeader("Fig 3(a): point queries, RNC - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader("Fig 3(b): point queries, RNC - query satisfaction ratio");
  satisfaction.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
