// Ablation (DESIGN.md): the budget-pacing parameter alpha of Algorithms
// 2/3 — the fraction of a continuous query's accrued surplus spendable on
// an opportunistic sample. The paper fixes alpha = 0.5 and suggests
// adapting it; this sweep quantifies its effect on location-monitoring
// utility and quality.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "data/ozone_trace.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  psens::OzoneTraceConfig ozone;
  ozone.num_days = 2;
  ozone.slots_per_day = args.slots;
  ozone.seed = args.seed + 5;
  const psens::OzoneTrace history = psens::GenerateOzoneTrace(ozone);
  std::vector<double> hist_times;
  std::vector<double> hist_values;
  history.DaySlice(0, &hist_times, &hist_values);

  // Sweep points are independent runs (the monitoring simulation itself is
  // sequential in its slots): shard them over the pool, report in order.
  const std::vector<double> alphas = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<psens::ExperimentResult> results(alphas.size());
  psens::ThreadPool pool(psens::ThreadPool::ResolveParallelism(args.threads));
  pool.ParallelFor(static_cast<int>(alphas.size()), [&](int i) {
    psens::LocationMonitoringExperimentConfig config;
    config.trace = &trace;
    config.working_region = working;
    config.dmax = 10.0;
    config.num_slots = args.slots;
    config.budget_factor = 15.0;
    config.point_scheduler = psens::PointScheduler::kOptimal;
    config.alpha = alphas[i];
    config.history_times = hist_times;
    config.history_values = hist_values;
    config.sensors.lifetime = args.slots;
    config.seed = args.seed;
    results[i] = psens::RunLocationMonitoringExperiment(config);
  });
  psens::Table table({"alpha", "avg_utility", "avg_quality"});
  for (size_t i = 0; i < alphas.size(); ++i) {
    table.AddRow({alphas[i], results[i].avg_utility, results[i].avg_quality});
  }
  psens::bench::PrintHeader(
      "Ablation: alpha sweep (location monitoring, budget factor 15)");
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
