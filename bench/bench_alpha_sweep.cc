// Ablation (DESIGN.md): the budget-pacing parameter alpha of Algorithms
// 2/3 — the fraction of a continuous query's accrued surplus spendable on
// an opportunistic sample. The paper fixes alpha = 0.5 and suggests
// adapting it; this sweep quantifies its effect on location-monitoring
// utility and quality.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "data/ozone_trace.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  psens::OzoneTraceConfig ozone;
  ozone.num_days = 2;
  ozone.slots_per_day = args.slots;
  ozone.seed = args.seed + 5;
  const psens::OzoneTrace history = psens::GenerateOzoneTrace(ozone);
  std::vector<double> hist_times;
  std::vector<double> hist_values;
  history.DaySlice(0, &hist_times, &hist_values);

  const std::vector<double> alphas = {0.0, 0.25, 0.5, 0.75, 1.0};
  psens::Table table({"alpha", "avg_utility", "avg_quality"});
  for (double alpha : alphas) {
    psens::LocationMonitoringExperimentConfig config;
    config.trace = &trace;
    config.working_region = working;
    config.dmax = 10.0;
    config.num_slots = args.slots;
    config.budget_factor = 15.0;
    config.point_scheduler = psens::PointScheduler::kOptimal;
    config.alpha = alpha;
    config.history_times = hist_times;
    config.history_values = hist_values;
    config.sensors.lifetime = args.slots;
    config.seed = args.seed;
    const psens::ExperimentResult r = psens::RunLocationMonitoringExperiment(config);
    table.AddRow({alpha, r.avg_utility, r.avg_quality});
  }
  psens::bench::PrintHeader(
      "Ablation: alpha sweep (location monitoring, budget factor 15)");
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
