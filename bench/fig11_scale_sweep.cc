// Fig. 11 (beyond the paper): scheduling throughput at city scale.
//
// The paper's evaluation stops at a few hundred sensors because every
// scheme values every sensor against every query. This sweep generates
// clustered populations of 10k-1M sensors (sim/workload.h's
// ClusteredPopulationConfig), runs the point-query slot schedulers once
// with the spatial index (SlotIndexPolicy::kAuto) and once with the
// reference full scans (kNone), verifies the two produce *bit-identical*
// assignments and payments, and reports the wall-clock speedup. The
// brute-force path is O(|Q| * |S|) valuations per slot; the indexed path
// valuates only the sensors inside each query's dmax disk, so the speedup
// grows with the population (the asymptotic win candidate pruning buys).
//
// `--json PATH` emits the machine-readable record consumed by
// scripts/check_bench_regression.py (the CI benchmark-regression gate);
// the process exits nonzero if any indexed run diverges from its
// brute-force twin, so the gate doubles as an equivalence check.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/point_scheduling.h"
#include "core/slot.h"
#include "index/spatial_index.h"
#include "sim/workload.h"

namespace psens {
namespace {

struct SweepResult {
  std::string name;
  int sensors = 0;
  int queries = 0;
  double brute_ms = 0.0;
  double pruned_ms = 0.0;       // scheduling only, on the indexed slot
  double index_build_ms = 0.0;  // one-time, amortized over the slot
  double speedup = 0.0;         // brute / (pruned + index build)
  int64_t brute_pairs = 0;      // (query location, sensor) pairs scanned
  int64_t pruned_pairs = 0;
  bool identical = false;
  std::string index_kind;
};

SlotContext MakeSlot(const ScaleScenario& scenario, double dmax,
                     SlotIndexPolicy policy,
                     int threshold = kSlotIndexAutoThreshold) {
  return BuildSlotContext(scenario.sensors, scenario.field, /*time=*/0, dmax,
                          policy, threshold);
}

/// Candidate pairs actually scanned by the indexed path (deterministic —
/// the regression gate tracks this as a machine-independent work metric).
int64_t CountCandidatePairs(const SlotContext& slot,
                            const std::vector<PointQuery>& queries) {
  if (slot.index == nullptr) {
    return static_cast<int64_t>(slot.sensors.size()) *
           static_cast<int64_t>(queries.size());
  }
  int64_t total = 0;
  std::vector<int> candidates;
  for (const PointQuery& q : queries) {
    slot.index->RangeQuery(q.location, slot.dmax, &candidates);
    total += static_cast<int64_t>(candidates.size());
  }
  return total;
}

SweepResult RunOne(const char* name, PointScheduler scheduler,
                   const ScaleScenario& scenario,
                   const std::vector<PointQuery>& queries, double dmax,
                   int reps, uint64_t seed, SlotIndexPolicy index_policy,
                   int index_threshold) {
  SweepResult r;
  r.name = name;
  r.sensors = static_cast<int>(scenario.sensors.size());
  r.queries = static_cast<int>(queries.size());

  SlotContext brute_slot = MakeSlot(scenario, dmax, SlotIndexPolicy::kNone);
  // Build the indexed slot cold: start unindexed, flip the policy, and
  // time the one real AttachSlotIndex (BuildSlotContext with kAuto would
  // already have built it once, wasting a build and warming the caches
  // the timed build is charged for).
  SlotContext pruned_slot =
      MakeSlot(scenario, dmax, SlotIndexPolicy::kNone, index_threshold);
  pruned_slot.index_policy = index_policy;
  r.index_build_ms = bench::TimeMs([&] { AttachSlotIndex(pruned_slot); });
  r.index_kind = pruned_slot.index != nullptr ? pruned_slot.index->Name() : "none";

  PointSchedulingOptions options;
  options.scheduler = scheduler;
  options.seed = seed;

  PointScheduleResult brute_result;
  PointScheduleResult pruned_result;
  r.brute_ms = 1e300;
  r.pruned_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const double bm = bench::TimeMs(
        [&] { brute_result = SchedulePointQueries(queries, brute_slot, options); });
    const double pm = bench::TimeMs([&] {
      pruned_result = SchedulePointQueries(queries, pruned_slot, options);
    });
    if (bm < r.brute_ms) r.brute_ms = bm;
    if (pm < r.pruned_ms) r.pruned_ms = pm;
  }
  r.identical = bench::SameSchedule(brute_result, pruned_result);
  r.speedup = r.brute_ms / (r.pruned_ms + r.index_build_ms);
  r.brute_pairs = static_cast<int64_t>(r.sensors) * r.queries;
  r.pruned_pairs = CountCandidatePairs(pruned_slot, queries);
  return r;
}

void WriteJson(const std::string& path, double cal_ms,
               const std::vector<SweepResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig11_scale_sweep\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n  \"results\": [\n", cal_ms);
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"sensors\": %d, \"queries\": %d, "
                 "\"brute_ms\": %.3f, \"pruned_ms\": %.3f, "
                 "\"index_build_ms\": %.3f, \"speedup\": %.3f, "
                 "\"brute_pairs\": %" PRId64 ", \"pruned_pairs\": %" PRId64 ", "
                 "\"identical\": %s, \"index\": \"%s\"}%s\n",
                 r.name.c_str(), r.sensors, r.queries, r.brute_ms, r.pruned_ms,
                 r.index_build_ms, r.speedup, r.brute_pairs, r.pruned_pairs,
                 r.identical ? "true" : "false", r.index_kind.c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const double dmax = 5.0;
  // Heavy-traffic slot: the per-slot index build amortizes over the whole
  // query load, exactly as in the production pipeline.
  const int num_queries = 512;
  // Min-of-3 timing: the CI gate's >=10x check keys off these numbers,
  // and a single preempted ~10ms measurement on a shared runner would
  // otherwise fail an innocent PR.
  const int reps = 3;

  std::vector<int> populations =
      args.quick ? std::vector<int>{10'000, 100'000}
                 : std::vector<int>{10'000, 100'000, 300'000, 1'000'000};
  // The nightly 10M point: full mode only (a --quick 10M brute-force
  // reference would blow the PR-path budget for no extra signal).
  if (args.huge && !args.quick) populations.push_back(10'000'000);
  if (args.max_sensors > 0) {
    std::vector<int> capped;
    for (int n : populations) {
      if (n <= args.max_sensors) capped.push_back(n);
    }
    if (capped.empty()) capped.push_back(args.max_sensors);
    populations = capped;
  }

  bench::PrintHeader("fig11: point-workload scaling, spatial index vs brute force");
  std::printf("%-18s %9s %8s %10s %10s %9s %8s %10s %s\n", "workload", "sensors",
              "queries", "brute_ms", "pruned_ms", "index_ms", "speedup",
              "pair_ratio", "identical");

  const double cal_ms = bench::CalibrationMs();
  std::vector<SweepResult> results;
  bool all_identical = true;
  for (int n : populations) {
    // Constant ~0.25 sensors/unit^2 density (city-scale spread): the
    // field grows with the population, so per-query candidate counts stay
    // roughly flat (~100 per dmax disk, more in cluster cores) while the
    // brute-force scan grows linearly — the asymptotic gap under test.
    const double side = 2.0 * std::sqrt(static_cast<double>(n));
    ClusteredPopulationConfig config;
    config.count = n;
    config.num_clusters = 32;
    config.cluster_sigma = side / 12.0;
    config.density_skew = 1.0;
    config.background_fraction = 0.1;
    Rng rng(args.seed);
    const ScaleScenario scenario =
        GenerateClusteredSensors(config, Rect{0, 0, side, side}, rng);
    const std::vector<PointQuery> queries = GenerateClusteredPointQueries(
        num_queries, scenario, config, BudgetScheme{15.0, false, 0.0},
        /*theta_min=*/0.2, /*id_base=*/0, rng);

    const struct {
      const char* name;
      PointScheduler scheduler;
    } workloads[] = {
        {"point_local_search", PointScheduler::kLocalSearch},
        {"point_baseline", PointScheduler::kBaseline},
    };
    for (const auto& w : workloads) {
      SweepResult r = RunOne(w.name, w.scheduler, scenario, queries, dmax, reps,
                             args.seed, args.index_policy, args.index_threshold);
      all_identical = all_identical && r.identical;
      std::printf("%-18s %9d %8d %10.2f %10.2f %9.2f %7.1fx %9.1fx %s\n",
                  r.name.c_str(), r.sensors, r.queries, r.brute_ms, r.pruned_ms,
                  r.index_build_ms, r.speedup,
                  static_cast<double>(r.brute_pairs) /
                      static_cast<double>(std::max<int64_t>(r.pruned_pairs, 1)),
                  r.identical ? "yes" : "NO");
      results.push_back(std::move(r));
    }
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (!args.json_path.empty()) WriteJson(args.json_path, cal_ms, results);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: indexed scheduling diverged from brute force\n");
    return 1;
  }
  std::printf("all indexed runs bit-identical to brute force\n");
  return 0;
}
