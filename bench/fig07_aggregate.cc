// Reproduces Figure 7 (EDBT'13): spatial-aggregate queries on the RNC
// trace. ~30 queries per slot (uniform count with mean 30), random regions
// inside the working subregion, sensing range 10, B_q = A(r)/(1.5 r_s) * b.
//   (a) average utility per time slot vs. budget factor b
//   (b) average quality of results (value achieved / B_q) for answered
//       queries vs. budget factor b
// Series: Greedy (Algorithm 1) vs. sequential Baseline.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  const std::vector<double> budget_factors = {7, 10, 15, 20, 25, 30, 35};
  psens::Table utility({"budget_factor", "Greedy", "Baseline"});
  psens::Table quality({"budget_factor", "Greedy", "Baseline"});

  for (double b : budget_factors) {
    std::vector<double> util_row = {b};
    std::vector<double> quality_row = {b};
    for (bool greedy : {true, false}) {
      psens::AggregateExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.sensing_range = 10.0;
      config.num_slots = args.slots;
      config.mean_queries_per_slot = 30;
      config.budget_factor = b;
      config.greedy = greedy;
      config.sensors.lifetime = args.slots;
      config.seed = args.seed;
      const psens::ExperimentResult r = psens::RunAggregateExperiment(config);
      util_row.push_back(r.avg_utility);
      quality_row.push_back(r.avg_quality);
    }
    utility.AddRow(util_row);
    quality.AddRow(quality_row, 3);
  }

  psens::bench::PrintHeader("Fig 7(a): aggregate queries - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader("Fig 7(b): aggregate queries - average quality of results");
  quality.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
