// Reproduces Figure 10 (EDBT'13): a mix of point, spatial-aggregate and
// location-monitoring queries on the RNC trace (region monitoring is
// excluded, as in the paper, for lack of complete measurement data).
// Sensor lifetime 25, random privacy sensitivity levels, linear energy
// cost with beta U[0,4]. Workload sizes per type match Figs. 3/7/8.
//   (a) average utility per time slot vs. budget factor b
//   (b) average quality of results for point queries
//   (c) average quality of results for aggregate queries
//   (d) average quality of results for location-monitoring queries
// Series: Alg5 (joint greedy selection) vs. Baseline (sequential).

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "data/ozone_trace.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  psens::OzoneTraceConfig ozone;
  ozone.num_days = 2;
  ozone.slots_per_day = args.slots;
  ozone.seed = args.seed + 5;
  const psens::OzoneTrace history = psens::GenerateOzoneTrace(ozone);
  std::vector<double> hist_times;
  std::vector<double> hist_values;
  history.DaySlice(0, &hist_times, &hist_values);

  const std::vector<double> budget_factors = {7, 10, 15, 20, 25};
  psens::Table utility({"budget_factor", "Alg5", "Baseline"});
  psens::Table point_quality({"budget_factor", "Alg5", "Baseline"});
  psens::Table aggregate_quality({"budget_factor", "Alg5", "Baseline"});
  psens::Table monitoring_quality({"budget_factor", "Alg5", "Baseline"});

  for (double b : budget_factors) {
    std::vector<double> util_row = {b};
    std::vector<double> pq_row = {b};
    std::vector<double> aq_row = {b};
    std::vector<double> mq_row = {b};
    for (bool alg5 : {true, false}) {
      psens::QueryMixExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.dmax = 10.0;
      config.num_slots = args.slots;
      config.budget_factor = b;
      config.point_queries_per_slot = 300;
      config.mean_aggregate_queries = 30;
      config.use_alg5 = alg5;
      config.history_times = hist_times;
      config.history_values = hist_values;
      config.sensors.lifetime = 25;
      config.sensors.random_privacy = true;
      config.sensors.linear_energy = true;
      config.sensors.beta_max = 4.0;
      config.seed = args.seed;
      const psens::QueryMixResultSummary r = psens::RunQueryMixExperiment(config);
      util_row.push_back(r.avg_utility);
      pq_row.push_back(r.point_quality);
      aq_row.push_back(r.aggregate_quality);
      mq_row.push_back(r.monitoring_quality);
    }
    utility.AddRow(util_row);
    point_quality.AddRow(pq_row, 3);
    aggregate_quality.AddRow(aq_row, 3);
    monitoring_quality.AddRow(mq_row, 3);
  }

  psens::bench::PrintHeader("Fig 10(a): query mix - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader("Fig 10(b): query mix - point query quality");
  point_quality.Print();
  psens::bench::PrintHeader("Fig 10(c): query mix - aggregate query quality");
  aggregate_quality.Print();
  psens::bench::PrintHeader("Fig 10(d): query mix - location monitoring quality");
  monitoring_quality.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
