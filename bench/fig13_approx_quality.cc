// Fig. 13 (beyond the paper): quality/cost frontier of the approximate
// acquisition schedulers under churn.
//
// Every engine before this sweep — eager Algorithm 1, CELF, spatial
// pruning, batched parallel valuation — preserves bit-identical
// selections, so per-slot cost still scales with exact greedy's probe
// count. The approximate schedulers trade a bounded utility loss for
// per-slot cost that no longer does: stochastic greedy
// (core/stochastic_greedy.h) evaluates a seeded random sample per round,
// sieve streaming (core/sieve_streaming.h) absorbs churn deltas into
// threshold buckets without re-streaming the population. In the
// replication-report spirit, the loss is *measured*, not assumed: per
// population the sweep serves the same deterministic churn + query
// streams with four engines —
//
//   exact       GreedyEngine::kEager, the paper's literal Algorithm 1
//               (the reference "exact" of the reported speedups)
//   lazy        GreedyEngine::kLazy, exact CELF (the production default)
//   stochastic  GreedyEngine::kStochastic at --epsilon
//   sieve       SieveStreamingScheduler fed each slot's SensorDelta
//
// — on identical slot contexts, and reports each engine's median
// slot-selection latency, speedup over exact (and over lazy), realized
// utility ratio vs exact, and valuation-call totals.
//
// `--json PATH` emits the record consumed by
// scripts/check_bench_regression.py, which gates the stochastic row at
// the 100k population: >= 5x median speedup vs exact AND utility ratio
// >= 0.95 (docs/BENCHMARKS.md, "fig13 approximation gate").

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/sieve_streaming.h"
#include "core/stochastic_greedy.h"
#include "engine/acquisition_engine.h"
#include "sim/workload.h"

namespace psens {
namespace {

struct EngineRow {
  std::string engine;
  int sensors = 0;
  int slots = 0;
  int queries_per_slot = 0;
  int aggregates_per_slot = 0;
  double churn_fraction = 0.0;
  double epsilon = 0.0;
  double median_ms = 0.0;
  double exact_median_ms = 0.0;
  double lazy_median_ms = 0.0;
  double speedup_vs_exact = 0.0;
  double speedup_vs_lazy = 0.0;
  double utility = 0.0;       // summed over slots
  double utility_ratio = 0.0; // vs exact
  int64_t valuation_calls = 0;
  int64_t exact_valuation_calls = 0;
  // SoA kernel ablation, populated on the exact row only: the same exact
  // selection re-run against an AoS copy of each slot context
  // (use_soa = false, arena = nullptr → every valuation takes the legacy
  // scalar path). soa_speedup = AoS median / slab median;
  // soa_identical = the two paths agreed bit-for-bit on every slot's
  // selections, values, costs, payments, and ValuationCalls.
  double soa_speedup = 0.0;
  bool soa_identical = true;
};

std::vector<EngineRow> RunOne(int n, int slots, double churn_fraction,
                              const bench::BenchArgs& args) {
  // Same city-scale geometry and churn shape as fig12's gate row, by
  // construction: both figures call MakeChurnScenario (sim/workload.h).
  const ChurnScenarioSetup setup = MakeChurnScenario(
      n, churn_fraction, args.seed, /*with_mobility=*/false);
  const double side = setup.side;
  const double dmax = setup.dmax;
  const Rect& field = setup.field;
  const ClusteredPopulationConfig& config = setup.config;
  const ScaleScenario& scenario = setup.scenario;
  const ChurnConfig& churn = setup.churn;
  const Rng& rng = setup.rng_after_generation;

  const int queries_per_slot = args.quick ? 128 : 256;
  const int aggregates_per_slot = args.quick ? 16 : 24;
  const double agg_half = 25.0;  // 50x50 overlapping monitoring regions
  const double agg_range = 10.0;

  ServingConfig ecfg;
  ecfg.working_region = field;
  ecfg.dmax = dmax;
  ecfg.index_policy = args.index_policy;
  ecfg.index_auto_threshold = args.index_threshold;
  ecfg.incremental = true;
  ecfg.approx.epsilon = args.epsilon;
  ecfg.approx.seed = args.seed;
  AcquisitionEngine engine(scenario.sensors, ecfg);
  ChurnStream stream(churn, scenario.sensors, field);
  stream.SetClusteredPlacement(&scenario, &config);
  Rng fork_base = rng;
  Rng churn_rng = fork_base.Fork(7);
  Rng query_rng = fork_base.Fork(8);

  engine.BeginSlot(0);  // cold build, not measured

  struct EngineState {
    const char* name;
    std::vector<double> ms;
    double utility = 0.0;
    int64_t calls = 0;
  };
  EngineState exact{"exact", {}, 0.0, 0};
  EngineState lazy{"lazy", {}, 0.0, 0};
  EngineState stochastic{"stochastic", {}, 0.0, 0};
  EngineState sieve{"sieve", {}, 0.0, 0};
  // SoA ablation reference: exact greedy re-run against an AoS copy of
  // the slot context (scalar valuation paths, no arena).
  EngineState exact_aos{"exact_aos", {}, 0.0, 0};
  bool soa_identical = true;
  SieveStreamingScheduler sieve_scheduler(ecfg.approx);

  for (int t = 1; t <= slots; ++t) {
    const SensorDelta delta = stream.Next(churn_rng);
    engine.ApplyDelta(delta);
    const SlotContext& slot = engine.BeginSlot(t);

    // Query binding (coverage masks, candidate probes) is query-arrival
    // work, identical for every engine, and excluded from the timed
    // selection. All engines reuse the same bound objects via
    // ResetSelection, so utilities are directly comparable.
    const std::vector<PointQuery> points = GenerateClusteredPointQueries(
        queries_per_slot, scenario, config, BudgetScheme{15.0, false, 0.0},
        /*theta_min=*/0.2, /*id_base=*/t * queries_per_slot, query_rng);
    std::vector<std::unique_ptr<AggregateQuery>> aggregates;
    std::vector<std::unique_ptr<PointMultiQuery>> point_queries;
    std::vector<MultiQuery*> all;
    for (int i = 0; i < aggregates_per_slot; ++i) {
      const Point c = DrawScenarioLocation(scenario, config, query_rng);
      AggregateQuery::Params params;
      params.id = t * 1000 + i;
      params.region =
          Rect{std::max(0.0, c.x - agg_half), std::max(0.0, c.y - agg_half),
               std::min(side, c.x + agg_half), std::min(side, c.y + agg_half)};
      params.budget = params.region.Width() * params.region.Height() /
                      (1.5 * agg_range) * 2.0;
      params.sensing_range = agg_range;
      params.cell_size = 5.0;
      aggregates.push_back(std::make_unique<AggregateQuery>(params, slot));
      all.push_back(aggregates.back().get());
    }
    for (const PointQuery& spec : points) {
      point_queries.push_back(std::make_unique<PointMultiQuery>(spec, &slot));
      all.push_back(point_queries.back().get());
    }

    const auto run_engine = [&](EngineState& state, GreedyEngine kind) {
      for (MultiQuery* q : all) q->ResetSelection();
      SelectionResult result;
      state.ms.push_back(bench::TimeMs(
          [&] { result = GreedySensorSelection(all, slot, nullptr, kind); }));
      state.utility += result.Utility();
      state.calls += result.valuation_calls;
      return result;
    };
    const SelectionResult exact_result = run_engine(exact, GreedyEngine::kEager);
    {
      // SoA ablation: the identical batch, re-bound against an AoS copy
      // of this slot (use_soa off routes every kernel to the scalar
      // path), selected with the same exact engine. Binding is untimed,
      // like the slab run's. A single diverging bit in the observable
      // outcome flips soa_identical, which the regression gate treats as
      // fatal.
      SlotContext scalar = slot;
      scalar.use_soa = false;
      scalar.arena = nullptr;
      std::vector<std::unique_ptr<AggregateQuery>> aos_aggregates;
      std::vector<std::unique_ptr<PointMultiQuery>> aos_points;
      std::vector<MultiQuery*> aos_all;
      for (const auto& q : aggregates) {
        aos_aggregates.push_back(
            std::make_unique<AggregateQuery>(q->params(), scalar));
        aos_all.push_back(aos_aggregates.back().get());
      }
      for (const PointQuery& spec : points) {
        aos_points.push_back(std::make_unique<PointMultiQuery>(spec, &scalar));
        aos_all.push_back(aos_points.back().get());
      }
      SelectionResult aos_result;
      exact_aos.ms.push_back(bench::TimeMs([&] {
        aos_result =
            GreedySensorSelection(aos_all, scalar, nullptr, GreedyEngine::kEager);
      }));
      exact_aos.utility += aos_result.Utility();
      exact_aos.calls += aos_result.valuation_calls;
      if (aos_result.selected_sensors != exact_result.selected_sensors ||
          aos_result.total_value != exact_result.total_value ||
          aos_result.total_cost != exact_result.total_cost ||
          aos_result.valuation_calls != exact_result.valuation_calls) {
        soa_identical = false;
      }
      for (size_t i = 0; i < all.size(); ++i) {
        if (all[i]->TotalPayment() != aos_all[i]->TotalPayment() ||
            all[i]->CurrentValue() != aos_all[i]->CurrentValue() ||
            all[i]->ValuationCalls() != aos_all[i]->ValuationCalls()) {
          soa_identical = false;
        }
      }
    }
    run_engine(lazy, GreedyEngine::kLazy);
    run_engine(stochastic, GreedyEngine::kStochastic);
    {
      // The sieve absorbs the slot's churn delta into its carried bucket
      // state; its timed cost is the whole absorb + commit step.
      for (MultiQuery* q : all) q->ResetSelection();
      SelectionResult result;
      sieve.ms.push_back(bench::TimeMs(
          [&] { result = sieve_scheduler.SelectDelta(all, slot, delta); }));
      sieve.utility += result.Utility();
      sieve.calls += result.valuation_calls;
    }
  }

  const double exact_median = bench::MedianMs(exact.ms);
  const double lazy_median = bench::MedianMs(lazy.ms);
  const double exact_aos_median = bench::MedianMs(exact_aos.ms);
  std::vector<EngineRow> rows;
  for (const EngineState* state : {&exact, &lazy, &stochastic, &sieve}) {
    EngineRow row;
    row.engine = state->name;
    row.sensors = n;
    row.slots = slots;
    row.queries_per_slot = queries_per_slot;
    row.aggregates_per_slot = aggregates_per_slot;
    row.churn_fraction = churn_fraction;
    row.epsilon = args.epsilon;
    row.median_ms = bench::MedianMs(state->ms);
    row.exact_median_ms = exact_median;
    row.lazy_median_ms = lazy_median;
    row.speedup_vs_exact =
        row.median_ms > 0.0 ? exact_median / row.median_ms : 0.0;
    row.speedup_vs_lazy =
        row.median_ms > 0.0 ? lazy_median / row.median_ms : 0.0;
    row.utility = state->utility;
    row.utility_ratio =
        exact.utility != 0.0 ? state->utility / exact.utility : 0.0;
    row.valuation_calls = state->calls;
    row.exact_valuation_calls = exact.calls;
    if (state == &exact) {
      row.soa_speedup =
          exact_median > 0.0 ? exact_aos_median / exact_median : 0.0;
      row.soa_identical = soa_identical;
    }
    rows.push_back(row);
  }
  return rows;
}

void WriteJson(const std::string& path, double cal_ms,
               const std::vector<EngineRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig13_approx_quality\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n  \"results\": [\n", cal_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"engine\": \"%s\", \"sensors\": %d, \"slots\": %d, "
        "\"queries\": %d, \"aggregates\": %d, \"churn\": %.4f, "
        "\"epsilon\": %.4f, \"median_ms\": %.4f, "
        "\"exact_median_ms\": %.4f, \"lazy_median_ms\": %.4f, "
        "\"speedup_vs_exact\": %.3f, \"speedup_vs_lazy\": %.3f, "
        "\"utility_ratio\": %.5f, \"valuation_calls\": %" PRId64 ", "
        "\"exact_valuation_calls\": %" PRId64 ", "
        "\"soa_speedup\": %.3f, \"soa_identical\": %s}%s\n",
        r.engine.c_str(), r.sensors, r.slots, r.queries_per_slot,
        r.aggregates_per_slot, r.churn_fraction, r.epsilon, r.median_ms,
        r.exact_median_ms, r.lazy_median_ms, r.speedup_vs_exact,
        r.speedup_vs_lazy, r.utility_ratio, r.valuation_calls,
        r.exact_valuation_calls, r.soa_speedup,
        r.soa_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const int slots = std::max(args.slots, 3);
  const double churn_fraction = 0.01;

  std::vector<int> populations =
      args.quick ? std::vector<int>{100'000}
                 : std::vector<int>{10'000, 100'000, 300'000, 1'000'000};
  if (args.max_sensors > 0) {
    std::vector<int> capped;
    for (int n : populations) {
      if (n <= args.max_sensors) capped.push_back(n);
    }
    if (capped.empty()) capped.push_back(args.max_sensors);
    populations = capped;
  }

  bench::PrintHeader(
      "fig13: approximate schedulers, quality/cost vs exact Algorithm 1");
  std::printf("%-11s %9s %6s %6s %5s %11s %9s %9s %9s %14s\n", "engine",
              "sensors", "slots", "churn", "eps", "median_ms", "vs_exact",
              "vs_lazy", "utility", "val_calls");

  const double cal_ms = bench::CalibrationMs();
  std::vector<EngineRow> rows;
  const auto report = [&](int n, double churn) {
    for (const EngineRow& r : RunOne(n, slots, churn, args)) {
      std::printf("%-11s %9d %6d %5.1f%% %5.2f %11.3f %8.1fx %8.1fx %9.4f "
                  "%14" PRId64 "\n",
                  r.engine.c_str(), r.sensors, r.slots,
                  100.0 * r.churn_fraction, r.epsilon, r.median_ms,
                  r.speedup_vs_exact, r.speedup_vs_lazy, r.utility_ratio,
                  r.valuation_calls);
      if (r.engine == "exact") {
        std::printf("  soa kernels: %.2fx vs AoS scalar, outcomes %s\n",
                    r.soa_speedup,
                    r.soa_identical ? "bit-identical" : "DIVERGED");
      }
      rows.push_back(r);
    }
  };
  for (int n : populations) report(n, churn_fraction);
  if (!args.quick) {
    // Churn-rate dimension at the gate population: how the sieve's
    // delta-absorption cost (and everyone's quality) scales when the
    // population turns over 5x slower or 5x faster than the gate row.
    int gate_n = populations.back();
    for (int n : populations) {
      if (n == 100'000) gate_n = n;
    }
    for (double churn : {0.002, 0.05}) report(gate_n, churn);
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (!args.json_path.empty()) WriteJson(args.json_path, cal_ms, rows);
  return 0;
}
