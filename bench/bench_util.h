#ifndef PSENS_BENCH_BENCH_UTIL_H_
#define PSENS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace psens::bench {

/// Shared command-line handling for the figure binaries:
///   --slots N    simulate N time slots (default 50, the paper's setting)
///   --seed S     base RNG seed
///   --quick      shorthand for a fast smoke run (--slots 10)
///   --threads N  worker threads for independent sweep points / slots
///                (default 0 = hardware concurrency; results are
///                bit-identical for any value)
struct BenchArgs {
  int slots = 50;
  uint64_t seed = 123;
  bool quick = false;
  bool ablation = false;
  int threads = 0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
        args.slots = 10;
      } else if (std::strcmp(argv[i], "--ablation") == 0) {
        args.ablation = true;
      } else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc) {
        args.slots = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = std::atoi(argv[++i]);
      }
    }
    return args;
  }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace psens::bench

#endif  // PSENS_BENCH_BENCH_UTIL_H_
