#ifndef PSENS_BENCH_BENCH_UTIL_H_
#define PSENS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/point_scheduling.h"
#include "core/slot.h"
#include "sim/workload.h"

namespace psens::bench {

/// Bit-exact equality of two schedule outcomes (selections, assignments,
/// payments, totals). Any drift means an "equivalent" execution path
/// changed an answer — both the fig11 (indexed vs. brute force) and
/// fig12 (incremental vs. rebuild) gates rest on this one comparator.
inline bool SameSchedule(const PointScheduleResult& a,
                         const PointScheduleResult& b) {
  if (a.selected_sensors != b.selected_sensors) return false;
  if (a.total_value != b.total_value || a.total_cost != b.total_cost) {
    return false;
  }
  if (a.assignments.size() != b.assignments.size()) return false;
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    const PointAssignment& x = a.assignments[i];
    const PointAssignment& y = b.assignments[i];
    if (x.sensor != y.sensor || x.value != y.value || x.quality != y.quality ||
        x.payment != y.payment) {
      return false;
    }
  }
  return true;
}

/// Shared command-line handling for the figure binaries:
///   --slots N        simulate N time slots (default 50, the paper's setting)
///   --seed S         base RNG seed
///   --quick          shorthand for a fast smoke run (--slots 10)
///   --threads N      worker threads for independent sweep points / slots,
///                    and for fig12's intra-slot parallel selection row
///                    (ServingConfig::threads; default 0 = hardware
///                    concurrency; results are bit-identical for any value)
///   --json PATH      also write machine-readable results to PATH (only
///                    binaries that support it; fig11/fig12 do)
///   --max-sensors N  cap the population sweep (fig11/fig12)
///   --index-policy P spatial-index policy for the indexed runs: auto
///                    (default), grid, kd, none — ablates the kAuto
///                    density heuristic in the fig11/fig12 sweeps
///   --index-threshold N
///                    minimum population for which kAuto builds an index
///                    (default kSlotIndexAutoThreshold = 32)
///   --epsilon E      quality knob of the approximate schedulers
///                    (fig13_approx_quality; default 0.1)
///   --huge           extend the full-mode population sweep with a
///                    10M-sensor point (nightly runs; ignored in --quick)
struct BenchArgs {
  int slots = 50;
  uint64_t seed = 123;
  bool quick = false;
  bool huge = false;
  bool ablation = false;
  int threads = 0;
  std::string json_path;
  int max_sensors = 0;
  SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto;
  int index_threshold = kSlotIndexAutoThreshold;
  double epsilon = 0.1;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
        args.slots = 10;
      } else if (std::strcmp(argv[i], "--huge") == 0) {
        args.huge = true;
      } else if (std::strcmp(argv[i], "--ablation") == 0) {
        args.ablation = true;
      } else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc) {
        args.slots = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--max-sensors") == 0 && i + 1 < argc) {
        args.max_sensors = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--index-policy") == 0 && i + 1 < argc) {
        args.index_policy = ParseIndexPolicy(argv[++i]);
      } else if (std::strcmp(argv[i], "--index-threshold") == 0 && i + 1 < argc) {
        args.index_threshold = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--epsilon") == 0 && i + 1 < argc) {
        args.epsilon = std::atof(argv[++i]);
      }
    }
    return args;
  }

  static SlotIndexPolicy ParseIndexPolicy(const char* name) {
    if (std::strcmp(name, "none") == 0) return SlotIndexPolicy::kNone;
    if (std::strcmp(name, "grid") == 0) return SlotIndexPolicy::kGrid;
    if (std::strcmp(name, "kd") == 0 || std::strcmp(name, "kd-tree") == 0) {
      return SlotIndexPolicy::kKdTree;
    }
    if (std::strcmp(name, "auto") != 0) {
      std::fprintf(stderr, "unknown --index-policy '%s'; using auto\n", name);
    }
    return SlotIndexPolicy::kAuto;
  }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Median of a set of per-slot latency samples.
inline double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

/// Wall-clock of one call of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Host-speed calibration: wall-clock (ms) of a fixed floating-point loop.
/// The benchmark-regression gate divides measured times by this value so a
/// committed baseline from one machine remains comparable on another (see
/// docs/BENCHMARKS.md, "Regression gate contract").
inline double CalibrationMs() {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const double ms = TimeMs([] {
      double acc = 1.0;
      for (int i = 1; i <= 20'000'000; ++i) {
        acc = acc * 0.999999 + 1.0 / static_cast<double>(i);
      }
      // Defeat dead-code elimination; the branch is never taken.
      if (acc == 0.12345) std::printf("never\n");
    });
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace psens::bench

#endif  // PSENS_BENCH_BENCH_UTIL_H_
