#ifndef PSENS_BENCH_BENCH_UTIL_H_
#define PSENS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace psens::bench {

/// Shared command-line handling for the figure binaries:
///   --slots N        simulate N time slots (default 50, the paper's setting)
///   --seed S         base RNG seed
///   --quick          shorthand for a fast smoke run (--slots 10)
///   --threads N      worker threads for independent sweep points / slots
///                    (default 0 = hardware concurrency; results are
///                    bit-identical for any value)
///   --json PATH      also write machine-readable results to PATH (only
///                    binaries that support it; fig11_scale_sweep does)
///   --max-sensors N  cap the population sweep (fig11_scale_sweep)
struct BenchArgs {
  int slots = 50;
  uint64_t seed = 123;
  bool quick = false;
  bool ablation = false;
  int threads = 0;
  std::string json_path;
  int max_sensors = 0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
        args.slots = 10;
      } else if (std::strcmp(argv[i], "--ablation") == 0) {
        args.ablation = true;
      } else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc) {
        args.slots = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--max-sensors") == 0 && i + 1 < argc) {
        args.max_sensors = std::atoi(argv[++i]);
      }
    }
    return args;
  }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Wall-clock of one call of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Host-speed calibration: wall-clock (ms) of a fixed floating-point loop.
/// The benchmark-regression gate divides measured times by this value so a
/// committed baseline from one machine remains comparable on another (see
/// docs/BENCHMARKS.md, "Regression gate contract").
inline double CalibrationMs() {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const double ms = TimeMs([] {
      double acc = 1.0;
      for (int i = 1; i <= 20'000'000; ++i) {
        acc = acc * 0.999999 + 1.0 / static_cast<double>(i);
      }
      // Defeat dead-code elimination; the branch is never taken.
      if (acc == 0.12345) std::printf("never\n");
    });
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace psens::bench

#endif  // PSENS_BENCH_BENCH_UTIL_H_
