// Reproduces Figure 2 (EDBT'13): single-sensor point queries on the RWM
// dataset. 300 point queries per slot with locations uniform over the
// central 50x50 working subregion of an 80x80 region roamed by 200
// sensors; quality per Eq. (4) with dmax = 5, theta_min = 0.2, C_s = 10.
//   (a) average utility per time slot vs. query budget
//   (b) query satisfaction ratio vs. query budget
// Series: Optimal (BILP), LocalSearch (Feige et al.), Baseline.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "mobility/random_waypoint.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::RandomWaypointConfig mobility;
  mobility.num_sensors = 200;
  mobility.num_slots = args.slots;
  mobility.seed = args.seed;
  const psens::Trace trace = psens::GenerateRandomWaypoint(mobility);
  const psens::Rect working = psens::CentralSubregion(80.0, 50.0);

  const std::vector<double> budgets = {7, 10, 15, 20, 25, 30, 35};
  psens::Table utility({"budget", "Optimal", "LocalSearch", "Baseline"});
  psens::Table satisfaction({"budget", "Optimal", "LocalSearch", "Baseline"});

  for (double budget : budgets) {
    std::vector<double> util_row = {budget};
    std::vector<double> sat_row = {budget};
    for (const psens::PointScheduler scheduler :
         {psens::PointScheduler::kOptimal, psens::PointScheduler::kLocalSearch,
          psens::PointScheduler::kBaseline}) {
      psens::PointExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.dmax = 5.0;
      config.num_slots = args.slots;
      config.queries_per_slot = 300;
      config.budget = psens::BudgetScheme{budget, false, 0.0};
      config.scheduler = scheduler;
      config.sensors.lifetime = args.slots;
      config.seed = args.seed;
      const psens::ExperimentResult r = psens::RunPointExperiment(config);
      util_row.push_back(r.avg_utility);
      sat_row.push_back(r.satisfaction);
    }
    utility.AddRow(util_row);
    satisfaction.AddRow(sat_row, 3);
  }

  psens::bench::PrintHeader("Fig 2(a): point queries, RWM - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader("Fig 2(b): point queries, RWM - query satisfaction ratio");
  satisfaction.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
