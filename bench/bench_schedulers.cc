// Micro-benchmarks of the slot schedulers (google-benchmark): how the
// exact BILP branch-and-bound, the local search, and greedy Algorithm 1
// scale with the number of sensors and queries. These back the paper's
// complexity discussion (Sections 3.1-3.2) and DESIGN.md's ablations.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/point_scheduling.h"
#include "mobility/random_waypoint.h"
#include "sim/experiments.h"
#include "sim/workload.h"

namespace psens {
namespace {

SlotContext MakeSlot(int num_sensors, uint64_t seed) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    s.cost = 10.0;
    s.inaccuracy = rng.Uniform(0.0, 0.2);
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

std::vector<PointQuery> MakeQueries(int count, uint64_t seed) {
  Rng rng(seed);
  const Rect region{0, 0, 50, 50};
  return GeneratePointQueries(count, region, BudgetScheme{15.0, false, 0.0}, 0.2,
                              0, rng);
}

void BM_PointOptimal(benchmark::State& state) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  const std::vector<PointQuery> queries =
      MakeQueries(static_cast<int>(state.range(1)), 8);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kOptimal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchedulePointQueries(queries, slot, options));
  }
}
BENCHMARK(BM_PointOptimal)->Args({50, 100})->Args({100, 300})->Args({200, 300});

void BM_PointLocalSearch(benchmark::State& state) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  const std::vector<PointQuery> queries =
      MakeQueries(static_cast<int>(state.range(1)), 8);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kLocalSearch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchedulePointQueries(queries, slot, options));
  }
}
BENCHMARK(BM_PointLocalSearch)
    ->Args({50, 100})
    ->Args({100, 300})
    ->Args({200, 300})
    ->Args({400, 1000});

void BM_PointBaseline(benchmark::State& state) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  const std::vector<PointQuery> queries =
      MakeQueries(static_cast<int>(state.range(1)), 8);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kBaseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchedulePointQueries(queries, slot, options));
  }
}
BENCHMARK(BM_PointBaseline)->Args({100, 300})->Args({200, 300});

void RunGreedyAggregate(benchmark::State& state, GreedyEngine engine) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  Rng rng(9);
  const std::vector<AggregateQuery::Params> params = GenerateAggregateQueries(
      static_cast<int>(state.range(1)), Rect{0, 0, 50, 50}, 10.0, 15.0, 0, rng);
  int64_t valuation_calls = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<AggregateQuery>> queries;
    for (const auto& p : params) {
      queries.push_back(std::make_unique<AggregateQuery>(p, slot));
    }
    std::vector<MultiQuery*> ptrs;
    for (auto& q : queries) ptrs.push_back(q.get());
    const SelectionResult result = GreedySensorSelection(ptrs, slot, nullptr, engine);
    valuation_calls = result.valuation_calls;
    benchmark::DoNotOptimize(result);
  }
  state.counters["valuation_calls"] = static_cast<double>(valuation_calls);
}

void BM_GreedyAggregateEager(benchmark::State& state) {
  RunGreedyAggregate(state, GreedyEngine::kEager);
}
BENCHMARK(BM_GreedyAggregateEager)->Args({100, 30})->Args({200, 30});

void BM_GreedyAggregateLazy(benchmark::State& state) {
  RunGreedyAggregate(state, GreedyEngine::kLazy);
}
BENCHMARK(BM_GreedyAggregateLazy)->Args({100, 30})->Args({200, 30});

// Slot-throughput scaling of the parallel experiment runner: a fixed
// 16-slot point-query simulation sharded over range(0) worker threads.
// items_per_second reports slots/s; on a multi-core host the curve should
// track the thread count until it exhausts physical cores.
void BM_PointExperimentParallel(benchmark::State& state) {
  RandomWaypointConfig mobility;
  mobility.num_sensors = 120;
  mobility.num_slots = 16;
  mobility.seed = 11;
  const Trace trace = GenerateRandomWaypoint(mobility);
  PointExperimentConfig config;
  config.trace = &trace;
  config.working_region = Rect{0, 0, mobility.region_size, mobility.region_size};
  config.dmax = 10.0;
  config.num_slots = 16;
  config.queries_per_slot = 200;
  config.budget = BudgetScheme{15.0, false, 0.0};
  config.scheduler = PointScheduler::kLocalSearch;
  config.sensors.lifetime = config.num_slots;
  config.parallelism = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPointExperiment(config));
  }
  state.SetItemsProcessed(state.iterations() * config.num_slots);
}
// UseRealTime: the work runs on pool workers, so wall clock — not the
// main thread's CPU time — is the meaningful rate base.
BENCHMARK(BM_PointExperimentParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace psens

BENCHMARK_MAIN();
