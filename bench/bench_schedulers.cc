// Micro-benchmarks of the slot schedulers (google-benchmark): how the
// exact BILP branch-and-bound, the local search, and greedy Algorithm 1
// scale with the number of sensors and queries. These back the paper's
// complexity discussion (Sections 3.1-3.2) and DESIGN.md's ablations.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/point_scheduling.h"
#include "sim/workload.h"

namespace psens {
namespace {

SlotContext MakeSlot(int num_sensors, uint64_t seed) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    s.cost = 10.0;
    s.inaccuracy = rng.Uniform(0.0, 0.2);
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

std::vector<PointQuery> MakeQueries(int count, uint64_t seed) {
  Rng rng(seed);
  const Rect region{0, 0, 50, 50};
  return GeneratePointQueries(count, region, BudgetScheme{15.0, false, 0.0}, 0.2,
                              0, rng);
}

void BM_PointOptimal(benchmark::State& state) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  const std::vector<PointQuery> queries =
      MakeQueries(static_cast<int>(state.range(1)), 8);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kOptimal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchedulePointQueries(queries, slot, options));
  }
}
BENCHMARK(BM_PointOptimal)->Args({50, 100})->Args({100, 300})->Args({200, 300});

void BM_PointLocalSearch(benchmark::State& state) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  const std::vector<PointQuery> queries =
      MakeQueries(static_cast<int>(state.range(1)), 8);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kLocalSearch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchedulePointQueries(queries, slot, options));
  }
}
BENCHMARK(BM_PointLocalSearch)
    ->Args({50, 100})
    ->Args({100, 300})
    ->Args({200, 300})
    ->Args({400, 1000});

void BM_PointBaseline(benchmark::State& state) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  const std::vector<PointQuery> queries =
      MakeQueries(static_cast<int>(state.range(1)), 8);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kBaseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchedulePointQueries(queries, slot, options));
  }
}
BENCHMARK(BM_PointBaseline)->Args({100, 300})->Args({200, 300});

void BM_GreedyAggregate(benchmark::State& state) {
  const SlotContext slot = MakeSlot(static_cast<int>(state.range(0)), 7);
  Rng rng(9);
  const std::vector<AggregateQuery::Params> params = GenerateAggregateQueries(
      static_cast<int>(state.range(1)), Rect{0, 0, 50, 50}, 10.0, 15.0, 0, rng);
  for (auto _ : state) {
    std::vector<std::unique_ptr<AggregateQuery>> queries;
    for (const auto& p : params) {
      queries.push_back(std::make_unique<AggregateQuery>(p, slot));
    }
    std::vector<MultiQuery*> ptrs;
    for (auto& q : queries) ptrs.push_back(q.get());
    benchmark::DoNotOptimize(GreedySensorSelection(ptrs, slot));
  }
}
BENCHMARK(BM_GreedyAggregate)->Args({100, 30})->Args({200, 30});

}  // namespace
}  // namespace psens

BENCHMARK_MAIN();
