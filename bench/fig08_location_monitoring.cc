// Reproduces Figure 8 (EDBT'13): continuous location-monitoring queries
// (Algorithm 2) on the RNC trace, valued per Eq. (16)-(17) against a
// historical ozone series (synthetic OpenSense-Zurich substitute). Up to
// 100 live queries, duration U[5,20], |T| = duration/3 desired sampling
// times picked by the OptiMoS-style selector, B_q = duration * b,
// alpha = 0.5.
//   (a) average utility per time slot vs. budget factor b
//   (b) average quality of results vs. budget factor b
// Series: Alg2-O (optimal point scheduling), Alg2-LS (local search),
// Baseline (desired-time-only point queries, arrival-order scheduling).

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "data/ozone_trace.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

struct Variant {
  const char* name;
  psens::PointScheduler scheduler;
  bool desired_only;
};

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  // Historical day: the ozone trace of the previous day at the same slot
  // granularity (Section 4.5's periodicity assumption).
  psens::OzoneTraceConfig ozone;
  ozone.num_days = 2;
  ozone.slots_per_day = args.slots;
  ozone.seed = args.seed + 5;
  const psens::OzoneTrace history = psens::GenerateOzoneTrace(ozone);
  std::vector<double> hist_times;
  std::vector<double> hist_values;
  history.DaySlice(0, &hist_times, &hist_values);

  const std::vector<Variant> variants = {
      {"Alg2-O", psens::PointScheduler::kOptimal, false},
      {"Alg2-LS", psens::PointScheduler::kLocalSearch, false},
      {"Baseline", psens::PointScheduler::kBaseline, true},
  };
  const std::vector<double> budget_factors = {7, 10, 15, 20, 25};
  psens::Table utility({"budget_factor", "Alg2-O", "Alg2-LS", "Baseline"});
  psens::Table quality({"budget_factor", "Alg2-O", "Alg2-LS", "Baseline"});

  for (double b : budget_factors) {
    std::vector<double> util_row = {b};
    std::vector<double> quality_row = {b};
    for (const Variant& variant : variants) {
      psens::LocationMonitoringExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.dmax = 10.0;
      config.num_slots = args.slots;
      config.budget_factor = b;
      config.point_scheduler = variant.scheduler;
      config.desired_times_only = variant.desired_only;
      config.history_times = hist_times;
      config.history_values = hist_values;
      config.sensors.lifetime = args.slots;
      config.seed = args.seed;
      const psens::ExperimentResult r =
          psens::RunLocationMonitoringExperiment(config);
      util_row.push_back(r.avg_utility);
      quality_row.push_back(r.avg_quality);
    }
    utility.AddRow(util_row);
    quality.AddRow(quality_row, 3);
  }

  psens::bench::PrintHeader(
      "Fig 8(a): location monitoring - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader(
      "Fig 8(b): location monitoring - average quality of results");
  quality.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
