// Reproduces Figure 4 (EDBT'13): single-sensor point queries on the RNC
// trace with per-query budgets drawn uniformly at random in
// [mean - 10, mean + 10] instead of a fixed budget. The paper's finding:
// results are very similar to the fixed-budget scheme (Fig. 3).

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  const std::vector<double> budgets = {7, 10, 15, 20, 25, 30, 35};
  psens::Table utility({"mean_budget", "Optimal", "LocalSearch", "Baseline"});
  psens::Table satisfaction({"mean_budget", "Optimal", "LocalSearch", "Baseline"});

  for (double budget : budgets) {
    std::vector<double> util_row = {budget};
    std::vector<double> sat_row = {budget};
    for (const psens::PointScheduler scheduler :
         {psens::PointScheduler::kOptimal, psens::PointScheduler::kLocalSearch,
          psens::PointScheduler::kBaseline}) {
      psens::PointExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.dmax = 10.0;
      config.num_slots = args.slots;
      config.queries_per_slot = 300;
      config.budget = psens::BudgetScheme{budget, /*uniform=*/true, 10.0};
      config.scheduler = scheduler;
      config.sensors.lifetime = args.slots;
      config.seed = args.seed;
      const psens::ExperimentResult r = psens::RunPointExperiment(config);
      util_row.push_back(r.avg_utility);
      sat_row.push_back(r.satisfaction);
    }
    utility.AddRow(util_row);
    satisfaction.AddRow(sat_row, 3);
  }

  psens::bench::PrintHeader(
      "Fig 4(a): uniformly distributed budget - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader(
      "Fig 4(b): uniformly distributed budget - query satisfaction ratio");
  satisfaction.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
