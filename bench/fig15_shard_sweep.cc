// Fig. 15 (beyond the paper): sharded serving front end — aggregate
// slot throughput vs shard count, with a fatal bit-equality column.
//
// The ShardRouter (src/shard/) partitions the sensor registry across N
// geo-binned AcquisitionEngine shards and fans each slot's turnover
// (delta bookkeeping, membership repair, cost refresh, dynamic-index
// maintenance) out over a thread pool, then reconciles a merged global
// slot context and runs selection once — so every outcome is
// bit-identical to the unsharded engine by construction. This sweep
// measures what that buys: sustained closed-loop slots/sec at shard
// counts {1, 2, 4, 8} (fan-out threads = shard count) over the fig12
// churn scenario at 100k (and, full mode, 1M) sensors.
//
// Every row's outcomes are compared slot-by-slot against the unsharded
// reference via SameOutcome(); a single diverging field prints
// identical=NO and fails the run — scripts/check_bench_regression.py
// treats any non-identical row as fatal regardless of host. The
// throughput shape (slots/sec monotone from 1 to 4 shards at the top
// population) is hardware-gated: it is only meaningful when the host
// actually has cores to fan out to, so the JSON carries
// hardware_threads and the gate arms itself accordingly.
//
// Per-shard observability: each shard engine gets its own MonitorSet
// (latency histogram + index-repair timer) fed with that shard's own
// turnover latency each slot; `--json` embeds one monitor record per
// shard per row (the nightly job uploads them as artifacts).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "engine/serving_engine.h"
#include "shard/shard_router.h"
#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/monitor.h"
#include "trace/slot_server.h"

namespace psens {
namespace {

struct ShardRow {
  int sensors = 0;
  int slots = 0;
  int queries_per_slot = 0;
  int aggregates_per_slot = 0;
  double churn_fraction = 0.0;
  int shards = 1;
  int threads = 1;
  int hardware_threads = 0;
  double wall_ms = 0.0;
  double slots_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
  bool identical = false;
  std::string index_kind;
  std::vector<std::string> shard_monitor_json;  // one record per shard
};

/// One closed-loop pass at the given shard count. When `reference` is
/// null this is the reference pass and `out_reference` receives the
/// outcomes; otherwise every slot is compared against it.
ShardRow RunOne(const ChurnScenarioSetup& setup, int n, int slots,
                double churn_fraction, int shards,
                const ChurnQueryConfig& queries, uint64_t seed,
                const std::vector<SlotOutcome>* reference,
                std::vector<SlotOutcome>* out_reference) {
  ShardRow row;
  row.sensors = n;
  row.slots = slots;
  row.queries_per_slot = queries.queries_per_slot;
  row.aggregates_per_slot = queries.aggregates_per_slot;
  row.churn_fraction = churn_fraction;
  row.shards = shards;
  row.threads = std::max(1, shards);
  row.hardware_threads = ThreadPool::ResolveParallelism(0);

  ServingConfig scfg = ServingConfig()
                           .WithRegion(setup.field)
                           .WithDmax(setup.dmax)
                           .WithShards(shards)
                           .WithThreads(std::max(1, shards))
                           .WithApproxSeed(seed);
  std::unique_ptr<ServingEngine> engine =
      MakeServingEngine(setup.scenario.sensors, scfg);

  // Per-shard monitor sets (router deployments only).
  auto* router = dynamic_cast<ShardRouter*>(engine.get());
  std::vector<std::unique_ptr<LatencyHistogramMonitor>> latency;
  std::vector<std::unique_ptr<IndexRepairMonitor>> repair;
  std::vector<std::unique_ptr<MonitorSet>> sets;
  if (router != nullptr) {
    for (int s = 0; s < router->shard_count(); ++s) {
      latency.push_back(std::make_unique<LatencyHistogramMonitor>());
      repair.push_back(std::make_unique<IndexRepairMonitor>());
      sets.push_back(std::make_unique<MonitorSet>());
      sets.back()->Attach(latency.back().get());
      sets.back()->Attach(repair.back().get());
      sets.back()->StartAll();
      router->set_shard_monitors(s, sets.back().get());
    }
  }

  ChurnWorkload workload(&setup, queries);
  SlotServer server(engine.get());
  std::vector<SlotOutcome> outcomes;
  outcomes.reserve(static_cast<size_t>(slots) + 1);
  // Slot 0 is the cold build (outcomes[0] is trivial); the timed window
  // covers the steady-state served slots only, like fig12's passes.
  outcomes.push_back(server.ServeSlot(0, SensorDelta{}, SlotQueryBatch{}));
  const double wall_ms = bench::TimeMs([&] {
    for (int t = 1; t <= slots; ++t) {
      const SensorDelta delta = workload.NextDelta();
      const SlotQueryBatch batch = workload.NextQueries(t);
      outcomes.push_back(server.ServeSlot(t, delta, batch));
    }
  });
  row.wall_ms = wall_ms;
  row.slots_per_sec = wall_ms > 0.0 ? 1000.0 * slots / wall_ms : 0.0;
  row.index_kind = engine->IndexBackendName();

  row.identical = true;
  if (reference != nullptr) {
    if (outcomes.size() != reference->size()) {
      row.identical = false;
    } else {
      for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!SameOutcome((*reference)[i], outcomes[i])) {
          row.identical = false;
          std::fprintf(stderr,
                       "fig15 n=%d shards=%d: slot %d diverged from the "
                       "unsharded reference\n",
                       n, shards, outcomes[i].time);
          break;
        }
      }
    }
  }
  for (auto& set : sets) {
    set->StopAll();
    std::string json;
    set->AppendJson(&json);
    row.shard_monitor_json.push_back(std::move(json));
  }
  if (out_reference != nullptr) *out_reference = std::move(outcomes);
  return row;
}

void WriteJson(const std::string& path, double cal_ms,
               const std::vector<ShardRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig15_shard_sweep\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n  \"results\": [\n", cal_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    std::fprintf(f,
                 "    {\"sensors\": %d, \"slots\": %d, \"queries\": %d, "
                 "\"aggregates\": %d, \"churn\": %.4f, \"shards\": %d, "
                 "\"threads\": %d, \"hardware_threads\": %d, "
                 "\"wall_ms\": %.4f, \"slots_per_sec\": %.3f, "
                 "\"speedup_vs_1\": %.3f, \"identical\": %s, "
                 "\"index\": \"%s\", \"shard_monitors\": [",
                 r.sensors, r.slots, r.queries_per_slot,
                 r.aggregates_per_slot, r.churn_fraction, r.shards, r.threads,
                 r.hardware_threads, r.wall_ms, r.slots_per_sec,
                 r.speedup_vs_1, r.identical ? "true" : "false",
                 r.index_kind.c_str());
    for (size_t s = 0; s < r.shard_monitor_json.size(); ++s) {
      std::fprintf(f, "%s%s", r.shard_monitor_json[s].c_str(),
                   s + 1 < r.shard_monitor_json.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const int slots = std::max(args.slots, 3);
  const double churn_fraction = 0.01;

  std::vector<int> populations = args.quick
                                     ? std::vector<int>{100'000}
                                     : std::vector<int>{100'000, 1'000'000};
  // The nightly 10M point: full mode only. check_bench_regression.py's
  // --update path applies the same hardware-eligibility rule to these
  // rows as to every other sharded row.
  if (args.huge && !args.quick) populations.push_back(10'000'000);
  if (args.max_sensors > 0) {
    std::vector<int> capped;
    for (int n : populations) {
      if (n <= args.max_sensors) capped.push_back(n);
    }
    if (capped.empty()) capped.push_back(args.max_sensors);
    populations = capped;
  }
  const std::vector<int> shard_counts{1, 2, 4, 8};

  ChurnQueryConfig queries;
  queries.queries_per_slot = args.quick ? 32 : 64;
  queries.aggregates_per_slot = args.quick ? 4 : 8;

  bench::PrintHeader(
      "fig15: sharded serving front end, slots/sec vs shard count");
  std::printf("%9s %6s %7s %8s %10s %12s %9s %s\n", "sensors", "slots",
              "shards", "threads", "wall_ms", "slots/sec", "speedup",
              "identical");

  const double cal_ms = bench::CalibrationMs();
  std::vector<ShardRow> rows;
  bool all_identical = true;
  for (int n : populations) {
    const ChurnScenarioSetup setup = MakeChurnScenario(
        n, churn_fraction, args.seed, /*with_mobility=*/false);
    std::vector<SlotOutcome> reference;
    double base_slots_per_sec = 0.0;
    for (int shards : shard_counts) {
      ShardRow row =
          shards == 1
              ? RunOne(setup, n, slots, churn_fraction, shards, queries,
                       args.seed, nullptr, &reference)
              : RunOne(setup, n, slots, churn_fraction, shards, queries,
                       args.seed, &reference, nullptr);
      if (shards == 1) base_slots_per_sec = row.slots_per_sec;
      row.speedup_vs_1 = base_slots_per_sec > 0.0
                             ? row.slots_per_sec / base_slots_per_sec
                             : 0.0;
      all_identical = all_identical && row.identical;
      std::printf("%9d %6d %7d %8d %10.1f %12.2f %8.2fx %s [%s]\n", row.sensors,
                  row.slots, row.shards, row.threads, row.wall_ms,
                  row.slots_per_sec, row.speedup_vs_1,
                  row.identical ? "yes" : "NO", row.index_kind.c_str());
      rows.push_back(std::move(row));
    }
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (!args.json_path.empty()) WriteJson(args.json_path, cal_ms, rows);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a sharded run diverged from the unsharded reference "
                 "(bit-equality is a fatal gate)\n");
    return 1;
  }
  std::printf("all sharded outcomes bit-identical to the unsharded engine\n");
  return 0;
}
