// Fig. 16 (beyond the paper): slab-vs-AoS valuation kernel microbench.
//
// The SoA slot slabs (core/slot.h, SlotSlabs) rewire the per-query delta
// loops of all four query families — PointMultiQuery,
// MultiSensorPointQuery, AggregateQuery, TrajectoryQuery — as branch-light
// sweeps over contiguous columns. This sweep isolates that change: per
// population (10k..1M) and per query family it runs the identical
// exact-greedy selection against (a) the engine's slab-synced slot
// context and (b) a copy with `use_soa = false, arena = nullptr`, which
// routes every valuation through the legacy AoS scalar path. Reported per
// row: median selection latency of both paths, the speedup, and a
// bit-identity verdict over the full observable outcome (selections,
// values, costs, payments, ValuationCalls).
//
// Divergence is fatal (exit 1): the slab kernels are a pure layout
// change, so a single differing bit means a kernel reordered or
// re-associated a reduction.
//
// `--json PATH` emits the record scripts/check_bench_regression.py
// consumes (the fig16 gate re-checks the `identical` flags). `--digest
// PATH` writes one line per row with an FNV-1a hash of the outcome's raw
// bit patterns; the CI portable-flags job diffs digest files between the
// default -O3 build and a plain -O2 build to prove the kernels are
// flag-invariant (docs/BENCHMARKS.md, "fig16 SoA kernel gate").

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/arena.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/multi_sensor_point_query.h"
#include "core/slot.h"
#include "engine/acquisition_engine.h"
#include "sim/workload.h"

namespace psens {
namespace {

/// Everything an observer can see from one selection run; the digest and
/// the bit-identity verdict both hash/compare exactly these fields.
struct Outcome {
  SelectionResult selection;
  std::vector<double> payments;
  std::vector<double> values;
  std::vector<int64_t> calls;
};

bool SameOutcome(const Outcome& a, const Outcome& b) {
  return a.selection.selected_sensors == b.selection.selected_sensors &&
         a.selection.total_value == b.selection.total_value &&
         a.selection.total_cost == b.selection.total_cost &&
         a.selection.valuation_calls == b.selection.valuation_calls &&
         a.payments == b.payments && a.values == b.values &&
         a.calls == b.calls;
}

/// FNV-1a over the outcome's raw bit patterns. Doubles are hashed by
/// their byte representation, so the digest is a bit-equality witness,
/// not an approximate one.
class Fnv1a {
 public:
  void Bytes(const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void Double(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Bytes(&bits, sizeof(bits));
  }
  void Int64(int64_t v) { Bytes(&v, sizeof(v)); }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

uint64_t DigestOutcome(const Outcome& out) {
  Fnv1a h;
  for (int id : out.selection.selected_sensors) h.Int64(id);
  h.Double(out.selection.total_value);
  h.Double(out.selection.total_cost);
  h.Int64(out.selection.valuation_calls);
  for (double p : out.payments) h.Double(p);
  for (double v : out.values) h.Double(v);
  for (int64_t c : out.calls) h.Int64(c);
  return h.value();
}

/// One homogeneous query batch bound against `slot`. The batch owns its
/// query objects; `all` is the selection view.
struct Batch {
  std::vector<std::unique_ptr<PointMultiQuery>> points;
  std::vector<std::unique_ptr<MultiSensorPointQuery>> multi_points;
  std::vector<std::unique_ptr<AggregateQuery>> aggregates;
  std::vector<std::unique_ptr<TrajectoryQuery>> trajectories;
  std::vector<MultiQuery*> all;
};

enum class QueryKind { kPoint, kMultiPoint, kAggregate, kTrajectory };

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPoint: return "point";
    case QueryKind::kMultiPoint: return "multi_point";
    case QueryKind::kAggregate: return "aggregate";
    case QueryKind::kTrajectory: return "trajectory";
  }
  return "?";
}

/// Binding is untimed and identical for both contexts: queries are
/// regenerated from the same seed, so the slab and AoS runs bind the
/// same batch against their respective views of the same slot.
Batch MakeBatch(QueryKind kind, const SlotContext& slot, const Rect& field,
                uint64_t seed, bool quick) {
  Batch batch;
  Rng rng(seed);
  const double side = field.x_max;
  switch (kind) {
    case QueryKind::kPoint: {
      const int count = quick ? 48 : 96;
      const std::vector<PointQuery> specs = GeneratePointQueries(
          count, field, BudgetScheme{15.0, false, 0.0}, 0.2, 100, rng);
      for (const PointQuery& p : specs) {
        batch.points.push_back(std::make_unique<PointMultiQuery>(p, &slot));
        batch.all.push_back(batch.points.back().get());
      }
      break;
    }
    case QueryKind::kMultiPoint: {
      const int count = quick ? 16 : 32;
      for (int k = 0; k < count; ++k) {
        MultiSensorPointQuery::Params mp;
        mp.id = 500 + k;
        mp.location = Point{rng.Uniform(0.0, field.x_max),
                            rng.Uniform(0.0, field.y_max)};
        mp.budget = 20.0;
        mp.theta_min = 0.2;
        mp.redundancy = 1 + k % 3;
        batch.multi_points.push_back(
            std::make_unique<MultiSensorPointQuery>(mp, &slot));
        batch.all.push_back(batch.multi_points.back().get());
      }
      break;
    }
    case QueryKind::kAggregate: {
      // fig13-scale monitoring regions (50x50, cell 5, range 10): bounded
      // mask slabs at any population, unlike RandomRect over the whole
      // field which goes quadratic in the field side.
      const int count = quick ? 8 : 16;
      const double agg_half = 25.0;
      const double agg_range = 10.0;
      for (int k = 0; k < count; ++k) {
        const Point c = {rng.Uniform(0.0, field.x_max),
                         rng.Uniform(0.0, field.y_max)};
        AggregateQuery::Params p;
        p.id = 400 + k;
        p.region =
            Rect{std::max(0.0, c.x - agg_half), std::max(0.0, c.y - agg_half),
                 std::min(side, c.x + agg_half), std::min(side, c.y + agg_half)};
        p.budget = p.region.Width() * p.region.Height() / (1.5 * agg_range) *
                   2.0;
        p.sensing_range = agg_range;
        p.cell_size = 5.0;
        batch.aggregates.push_back(std::make_unique<AggregateQuery>(p, slot));
        batch.all.push_back(batch.aggregates.back().get());
      }
      break;
    }
    case QueryKind::kTrajectory: {
      const int count = quick ? 4 : 8;
      for (int k = 0; k < count; ++k) {
        TrajectoryQuery::Params tp;
        tp.id = 700 + k;
        const double y = rng.Uniform(0.0, field.y_max);
        tp.trajectory.waypoints = {Point{0.0, y}, Point{side / 2, y},
                                   Point{side, rng.Uniform(0.0, field.y_max)}};
        tp.budget = 30.0;
        tp.sensing_range = 12.0;
        tp.cell_size = 4.0;
        tp.corridor = 4.0;
        batch.trajectories.push_back(
            std::make_unique<TrajectoryQuery>(tp, slot));
        batch.all.push_back(batch.trajectories.back().get());
      }
      break;
    }
  }
  return batch;
}

/// Selection-only timing, fig13-style: the batch is bound once, every
/// rep resets selection state and re-runs exact greedy. The first rep
/// warms any per-query candidate caches (symmetrically on both paths)
/// and is excluded from the median.
Outcome TimeSelection(Batch* batch, const SlotContext& slot, int reps,
                      std::vector<double>* ms_out) {
  Outcome out;
  for (int rep = 0; rep <= reps; ++rep) {
    // In production a slot runs one selection and the next BeginSlot
    // resets the arena. Reps that skip the reset would bump-allocate
    // each rep's scratch onto fresh cold pages — a page-fault tax no
    // real slot pays. Reset re-creates the slot-scoped lifetime (the
    // prior rep's scratch is already dead: nothing arena-backed
    // survives GreedySensorSelection).
    if (slot.arena != nullptr) slot.arena->Reset();
    for (MultiQuery* q : batch->all) q->ResetSelection();
    SelectionResult result;
    const double ms = bench::TimeMs([&] {
      result = GreedySensorSelection(batch->all, slot, nullptr,
                                     GreedyEngine::kEager);
    });
    if (rep > 0) ms_out->push_back(ms);
    out.selection = std::move(result);
  }
  out.payments.clear();
  out.values.clear();
  out.calls.clear();
  for (const MultiQuery* q : batch->all) {
    out.payments.push_back(q->TotalPayment());
    out.values.push_back(q->CurrentValue());
    out.calls.push_back(q->ValuationCalls());
  }
  return out;
}

struct KernelRow {
  std::string query;
  int sensors = 0;
  int queries = 0;
  double soa_median_ms = 0.0;
  double aos_median_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;
  uint64_t digest = 0;
};

std::vector<KernelRow> RunOne(int n, const bench::BenchArgs& args,
                              bool* all_identical) {
  // Same city-scale geometry/churn generator as the fig12/fig13 gates;
  // a few warm slots of churn so the slabs being measured went through
  // the O(churn) repair path, not just the cold build.
  const ChurnScenarioSetup setup =
      MakeChurnScenario(n, /*churn_fraction=*/0.01, args.seed,
                        /*with_mobility=*/false);
  ServingConfig ecfg;
  ecfg.working_region = setup.field;
  ecfg.dmax = setup.dmax;
  ecfg.index_policy = args.index_policy;
  ecfg.index_auto_threshold = args.index_threshold;
  ecfg.incremental = true;
  AcquisitionEngine engine(setup.scenario.sensors, ecfg);
  ChurnStream stream(setup.churn, setup.scenario.sensors, setup.field);
  stream.SetClusteredPlacement(&setup.scenario, &setup.config);
  Rng fork_base = setup.rng_after_generation;
  Rng churn_rng = fork_base.Fork(7);
  engine.BeginSlot(0);
  const int warm_slots = 3;
  for (int t = 1; t <= warm_slots; ++t) {
    engine.ApplyDelta(stream.Next(churn_rng));
    engine.BeginSlot(t);
  }
  const SlotContext& slot = engine.BeginSlot(warm_slots + 1);

  // AoS reference: same membership, same index, same everything — only
  // the kernels and the arena disabled. SlabsSynced() goes false and
  // every valuation runs the legacy scalar path.
  SlotContext scalar = slot;
  scalar.use_soa = false;
  scalar.arena = nullptr;

  const int reps = args.quick ? 3 : 7;
  std::vector<KernelRow> rows;
  for (QueryKind kind :
       {QueryKind::kPoint, QueryKind::kMultiPoint, QueryKind::kAggregate,
        QueryKind::kTrajectory}) {
    const uint64_t seed = args.seed + 1000 + static_cast<uint64_t>(kind);
    Batch soa_batch = MakeBatch(kind, slot, setup.field, seed, args.quick);
    Batch aos_batch = MakeBatch(kind, scalar, setup.field, seed, args.quick);
    std::vector<double> soa_ms, aos_ms;
    const Outcome soa = TimeSelection(&soa_batch, slot, reps, &soa_ms);
    const Outcome aos = TimeSelection(&aos_batch, scalar, reps, &aos_ms);

    KernelRow row;
    row.query = KindName(kind);
    row.sensors = n;
    row.queries = static_cast<int>(soa_batch.all.size());
    row.soa_median_ms = bench::MedianMs(soa_ms);
    row.aos_median_ms = bench::MedianMs(aos_ms);
    row.speedup =
        row.soa_median_ms > 0.0 ? row.aos_median_ms / row.soa_median_ms : 0.0;
    row.identical = SameOutcome(soa, aos);
    row.digest = DigestOutcome(soa);
    if (!row.identical) *all_identical = false;
    rows.push_back(row);
  }
  return rows;
}

void WriteJson(const std::string& path, double cal_ms,
               const std::vector<KernelRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig16_kernel_microbench\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n  \"results\": [\n", cal_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"query\": \"%s\", \"sensors\": %d, \"queries\": %d, "
                 "\"soa_median_ms\": %.4f, \"aos_median_ms\": %.4f, "
                 "\"speedup\": %.3f, \"identical\": %s, "
                 "\"digest\": \"%016" PRIx64 "\"}%s\n",
                 r.query.c_str(), r.sensors, r.queries, r.soa_median_ms,
                 r.aos_median_ms, r.speedup, r.identical ? "true" : "false",
                 r.digest, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Digest file: one line per row, no timings — everything in it is a
/// deterministic function of the input stream, so two builds of the same
/// source at different optimization levels must produce byte-identical
/// files (the CI portable-flags job literally diffs them).
void WriteDigests(const std::string& path, const std::vector<KernelRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  for (const KernelRow& r : rows) {
    std::fprintf(f, "fig16 %s %d %016" PRIx64 "\n", r.query.c_str(), r.sensors,
                 r.digest);
  }
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  std::string digest_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--digest") == 0 && i + 1 < argc) {
      digest_path = argv[i + 1];
    }
  }

  std::vector<int> populations = args.quick
                                     ? std::vector<int>{10'000}
                                     : std::vector<int>{10'000, 100'000,
                                                        1'000'000};
  if (args.max_sensors > 0) {
    std::vector<int> capped;
    for (int n : populations) {
      if (n <= args.max_sensors) capped.push_back(n);
    }
    if (capped.empty()) capped.push_back(args.max_sensors);
    populations = capped;
  }

  bench::PrintHeader("fig16: SoA slab kernels vs AoS scalar reference");
  std::printf("%-12s %9s %8s %12s %12s %9s %10s\n", "query", "sensors",
              "queries", "soa_ms", "aos_ms", "speedup", "identical");

  const double cal_ms = bench::CalibrationMs();
  bool all_identical = true;
  std::vector<KernelRow> rows;
  for (int n : populations) {
    for (const KernelRow& r : RunOne(n, args, &all_identical)) {
      std::printf("%-12s %9d %8d %12.3f %12.3f %8.2fx %10s\n",
                  r.query.c_str(), r.sensors, r.queries, r.soa_median_ms,
                  r.aos_median_ms, r.speedup, r.identical ? "yes" : "NO");
      rows.push_back(r);
    }
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (!args.json_path.empty()) WriteJson(args.json_path, cal_ms, rows);
  if (!digest_path.empty()) WriteDigests(digest_path, rows);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: slab kernels diverged from the AoS reference\n");
    return 1;
  }
  return 0;
}
