// Reproduces Figure 6 (EDBT'13): single-sensor point queries on the RNC
// trace with randomized privacy sensitivity levels (Eq. 14/15) and the
// linear energy cost model c_e = C_s (1 + beta (1 - E)) with beta uniform
// in [0, 4], for sensor lifetimes 50 (a, b) and 25 (c, d). Utility and
// satisfaction drop versus Fig. 3; the lifetime-25 results stay close to
// lifetime-50 because mobility prevents sensors from being exhausted.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void RunForLifetime(const BenchArgs& args, const psens::Trace& trace,
                    const psens::Rect& working, int lifetime, char panel_a,
                    char panel_b) {
  const std::vector<double> budgets = {7, 10, 15, 20, 25, 30, 35};
  psens::Table utility({"budget", "Optimal", "LocalSearch", "Baseline"});
  psens::Table satisfaction({"budget", "Optimal", "LocalSearch", "Baseline"});

  for (double budget : budgets) {
    std::vector<double> util_row = {budget};
    std::vector<double> sat_row = {budget};
    for (const psens::PointScheduler scheduler :
         {psens::PointScheduler::kOptimal, psens::PointScheduler::kLocalSearch,
          psens::PointScheduler::kBaseline}) {
      psens::PointExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.dmax = 10.0;
      config.num_slots = args.slots;
      config.queries_per_slot = 300;
      config.budget = psens::BudgetScheme{budget, false, 0.0};
      config.scheduler = scheduler;
      config.sensors.random_privacy = true;
      config.sensors.linear_energy = true;
      config.sensors.beta_max = 4.0;
      config.sensors.lifetime = lifetime;
      config.seed = args.seed;
      const psens::ExperimentResult r = psens::RunPointExperiment(config);
      util_row.push_back(r.avg_utility);
      sat_row.push_back(r.satisfaction);
    }
    utility.AddRow(util_row);
    satisfaction.AddRow(sat_row, 3);
  }

  char title[160];
  std::snprintf(title, sizeof(title),
                "Fig 6(%c): random PSL + linear energy, lifetime %d - avg utility",
                panel_a, lifetime);
  psens::bench::PrintHeader(title);
  utility.Print();
  std::snprintf(title, sizeof(title),
                "Fig 6(%c): random PSL + linear energy, lifetime %d - satisfaction",
                panel_b, lifetime);
  psens::bench::PrintHeader(title);
  satisfaction.Print();
}

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);
  RunForLifetime(args, trace, working, /*lifetime=*/50, 'a', 'b');
  RunForLifetime(args, trace, working, /*lifetime=*/25, 'c', 'd');
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
