// Fig. 14 (beyond the paper): trace record/replay fidelity and replay
// throughput.
//
// A serving run of the acquisition engine is fully determined by its
// inputs — the initial registry, each slot's SensorDelta, each slot's
// query batch, and the per-slot approximate-scheduler seed. The trace
// layer (src/trace/) records exactly that input stream; this bench
// closes the loop on the claim: per engine it
//
//   1. runs the live closed-loop fig12-style churn scenario
//      (sim/workload.h MakeChurnScenario — the same constructor as the
//      fig12/fig13 gate rows) with recording on,
//   2. replays the recorded trace through a fresh engine with the
//      monitor set attached (latency histogram, valuation counters,
//      index-repair timing), and
//   3. checks every slot's schedule, payments, and valuation-call count
//      replayed *bit-identically* — for the exact-eager, lazy,
//      stochastic, and sieve engines alike — and reports the replayer's
//      sustained slot rate next to the live closed loop's.
//
// `--json PATH` emits the record consumed by
// scripts/check_bench_regression.py, which fails on any `identical:
// false` row and gates the lazy row's replay_speedup at 100k sensors
// (>= --min-fig14-speedup; the replayer must sustain at least the live
// closed-loop slot rate, within timer noise). `--trace-dir DIR` keeps
// the recorded traces (the nightly job uploads them as artifacts);
// without it traces live in a temp directory and are deleted.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/monitor.h"
#include "trace/trace_replayer.h"

namespace psens {
namespace {

struct ReplayRow {
  std::string engine;
  int sensors = 0;
  int slots = 0;
  int queries_per_slot = 0;
  int aggregates_per_slot = 0;
  double churn_fraction = 0.0;
  bool identical = false;
  double live_wall_ms = 0.0;
  double live_slots_per_sec = 0.0;
  double replay_wall_ms = 0.0;
  double replay_slots_per_sec = 0.0;
  double replay_speedup = 0.0;
  double total_payment = 0.0;
  int64_t valuation_calls = 0;
  int decode_threads = 1;
  std::string monitors_json;
};

struct GreedyEngineCase {
  const char* name;
  GreedyEngine engine;
};

constexpr GreedyEngineCase kEngines[] = {
    {"exact", GreedyEngine::kEager},
    {"lazy", GreedyEngine::kLazy},
    {"stochastic", GreedyEngine::kStochastic},
    {"sieve", GreedyEngine::kSieve},
};

std::vector<ReplayRow> RunOne(int n, int slots, double churn_fraction,
                              const bench::BenchArgs& args,
                              const std::string& trace_dir,
                              int decode_threads) {
  const ChurnScenarioSetup setup = MakeChurnScenario(
      n, churn_fraction, args.seed, /*with_mobility=*/false);

  ChurnQueryConfig queries;
  queries.queries_per_slot = args.quick ? 64 : 128;
  queries.aggregates_per_slot = args.quick ? 8 : 16;

  std::vector<ReplayRow> rows;
  for (const GreedyEngineCase& c : kEngines) {
    char path[512];
    std::snprintf(path, sizeof(path), "%s/fig14_%s_%d.trace",
                  trace_dir.c_str(), c.name, n);

    ClosedLoopConfig lcfg;
    lcfg.slots = slots;
    lcfg.queries = queries;
    lcfg.serving.scheduler = c.engine;
    lcfg.serving.trace_path = path;
    lcfg.serving.approx.epsilon = args.epsilon;
    lcfg.serving.approx.seed = args.seed;
    const ClosedLoopResult live = RunChurnClosedLoop(setup, lcfg);

    LatencyHistogramMonitor latency;
    ValuationCounterMonitor calls;
    IndexRepairMonitor repair;
    MonitorSet monitors;
    monitors.Attach(&latency);
    monitors.Attach(&calls);
    monitors.Attach(&repair);
    monitors.StartAll();
    ReplayConfig rcfg;
    rcfg.serving.scheduler = c.engine;
    rcfg.decode_threads = decode_threads;
    const ReplayResult replayed = TraceReplayer(rcfg).Replay(
        path, setup.scenario.sensors, &monitors);
    monitors.StopAll();
    if (!replayed.ok) {
      std::fprintf(stderr, "fig14 %s n=%d: replay failed: %s\n", c.name, n,
                   replayed.error.c_str());
    }

    ReplayRow row;
    row.engine = c.name;
    row.sensors = n;
    row.slots = slots;
    row.queries_per_slot = queries.queries_per_slot;
    row.aggregates_per_slot = queries.aggregates_per_slot;
    row.churn_fraction = churn_fraction;
    row.identical =
        replayed.ok && replayed.outcomes.size() == live.outcomes.size();
    if (row.identical) {
      for (size_t i = 0; i < live.outcomes.size(); ++i) {
        if (!SameOutcome(live.outcomes[i], replayed.outcomes[i])) {
          row.identical = false;
          std::fprintf(stderr,
                       "fig14 %s n=%d: slot %d replay diverged from live\n",
                       c.name, n, live.outcomes[i].time);
          break;
        }
      }
    }
    row.live_wall_ms = live.wall_ms;
    row.live_slots_per_sec =
        live.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(live.outcomes.size()) / live.wall_ms
            : 0.0;
    row.replay_wall_ms = replayed.wall_ms;
    row.replay_slots_per_sec = replayed.slots_per_sec;
    row.replay_speedup = row.live_slots_per_sec > 0.0
                             ? row.replay_slots_per_sec / row.live_slots_per_sec
                             : 0.0;
    row.total_payment = live.total_payment;
    row.valuation_calls = live.valuation_calls;
    row.decode_threads = decode_threads;
    monitors.AppendJson(&row.monitors_json);
    rows.push_back(row);
  }
  return rows;
}

void WriteJson(const std::string& path, double cal_ms,
               const std::vector<ReplayRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig14_replay\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n  \"results\": [\n", cal_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ReplayRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"engine\": \"%s\", \"sensors\": %d, \"slots\": %d, "
        "\"queries\": %d, \"aggregates\": %d, \"churn\": %.4f, "
        "\"identical\": %s, \"live_wall_ms\": %.4f, "
        "\"live_slots_per_sec\": %.3f, \"replay_wall_ms\": %.4f, "
        "\"replay_slots_per_sec\": %.3f, \"replay_speedup\": %.3f, "
        "\"total_payment\": %.6f, \"valuation_calls\": %" PRId64 ", "
        "\"decode_threads\": %d, \"monitors\": %s}%s\n",
        r.engine.c_str(), r.sensors, r.slots, r.queries_per_slot,
        r.aggregates_per_slot, r.churn_fraction,
        r.identical ? "true" : "false", r.live_wall_ms, r.live_slots_per_sec,
        r.replay_wall_ms, r.replay_slots_per_sec, r.replay_speedup,
        r.total_payment, r.valuation_calls, r.decode_threads,
        r.monitors_json.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // fig14-specific flags (BenchArgs ignores what it does not know):
  //   --trace-dir DIR      keep recorded traces under DIR
  //   --decode-threads N   replayer decode workers (default 4)
  std::string trace_dir;
  int decode_threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--decode-threads") == 0 && i + 1 < argc) {
      decode_threads = std::atoi(argv[++i]);
    }
  }
  const bool keep_traces = !trace_dir.empty();
  if (!keep_traces) {
    const char* tmp = std::getenv("TMPDIR");
    trace_dir = tmp != nullptr ? tmp : "/tmp";
  }

  const int slots = std::max(args.slots, 3);
  const double churn_fraction = 0.01;
  std::vector<int> populations = args.quick
                                     ? std::vector<int>{100'000}
                                     : std::vector<int>{10'000, 100'000};
  if (args.max_sensors > 0) {
    std::vector<int> capped;
    for (int n : populations) {
      if (n <= args.max_sensors) capped.push_back(n);
    }
    if (capped.empty()) capped.push_back(args.max_sensors);
    populations = capped;
  }

  bench::PrintHeader("fig14: trace record/replay fidelity and throughput");
  std::printf("%-11s %9s %6s %10s %12s %14s %9s %9s\n", "engine", "sensors",
              "slots", "identical", "live_sl/s", "replay_sl/s", "speedup",
              "val_calls");

  const double cal_ms = bench::CalibrationMs();
  std::vector<ReplayRow> rows;
  for (int n : populations) {
    for (const ReplayRow& r :
         RunOne(n, slots, churn_fraction, args, trace_dir, decode_threads)) {
      std::printf("%-11s %9d %6d %10s %12.2f %14.2f %8.2fx %9" PRId64 "\n",
                  r.engine.c_str(), r.sensors, r.slots,
                  r.identical ? "yes" : "NO", r.live_slots_per_sec,
                  r.replay_slots_per_sec, r.replay_speedup, r.valuation_calls);
      rows.push_back(r);
      if (!keep_traces) {
        char path[512];
        std::snprintf(path, sizeof(path), "%s/fig14_%s_%d.trace",
                      trace_dir.c_str(), r.engine.c_str(), r.sensors);
        std::remove(path);
      }
    }
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (keep_traces) {
    std::printf("traces kept under %s\n", trace_dir.c_str());
  }
  if (!args.json_path.empty()) WriteJson(args.json_path, cal_ms, rows);

  bool all_identical = true;
  for (const ReplayRow& r : rows) all_identical = all_identical && r.identical;
  return all_identical ? 0 : 1;
}
