// Reproduces Figure 9 (EDBT'13): continuous region-monitoring queries
// (Algorithms 3 + 4) over the Intel-lab substitute: a 20x15 Gaussian
// random field sampled by 30 imaginary mobile sensors (random waypoint).
// One new query per slot, duration U[5,20], B_q = A(r)/(3 pi r_s^2) * b
// per slot with r_s = 2, alpha = 0.5, Eq. (18) cost weighting.
//   (a) average utility per time slot vs. budget factor b
//   (b) average quality of results (achieved / requested; can exceed 1
//       thanks to sensor sharing) vs. budget factor b
// Series: Alg3 (with optimal point scheduling) vs. Baseline (no weighting,
// no sharing, arrival-order point scheduling).
//
// --ablation additionally reports Alg3 with cost weighting disabled and
// with sharing disabled (the design choices DESIGN.md calls out).

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "data/gaussian_field.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

struct Variant {
  const char* name;
  bool use_alg3;
  bool cost_weighting;
  bool sharing;
};

void Run(const BenchArgs& args) {
  // The kernel "learned from a fraction of the readings": here, exactly the
  // generator's kernel (see DESIGN.md substitutions).
  psens::GaussianField::Config field_config;
  field_config.num_slots = args.slots;
  field_config.seed = args.seed + 3;
  const psens::GaussianField field(field_config);

  std::vector<Variant> variants = {
      {"Alg3", true, true, true},
      {"Baseline", false, true, true},
  };
  if (args.ablation) {
    variants.push_back({"Alg3-noW", true, false, true});
    variants.push_back({"Alg3-noShare", true, true, false});
  }

  std::vector<std::string> header = {"budget_factor"};
  for (const Variant& v : variants) header.push_back(v.name);
  const std::vector<double> budget_factors = {7, 10, 15, 20, 25};
  psens::Table utility(header);
  psens::Table quality(header);

  for (double b : budget_factors) {
    std::vector<double> util_row = {b};
    std::vector<double> quality_row = {b};
    for (const Variant& variant : variants) {
      psens::RegionMonitoringExperimentConfig config;
      config.field = psens::Rect{0, 0, static_cast<double>(field.width()),
                                 static_cast<double>(field.height())};
      config.kernel = field.SpatialKernel();
      config.num_sensors = 30;
      config.num_slots = args.slots;
      config.budget_factor = b;
      config.sensing_radius = 2.0;
      config.use_alg3 = variant.use_alg3;
      config.cost_weighting = variant.cost_weighting;
      config.share_extra_sensors = variant.sharing;
      config.sensors.lifetime = args.slots;
      config.seed = args.seed;
      const psens::ExperimentResult r =
          psens::RunRegionMonitoringExperiment(config);
      util_row.push_back(r.avg_utility);
      quality_row.push_back(r.avg_quality);
    }
    utility.AddRow(util_row);
    quality.AddRow(quality_row, 3);
  }

  psens::bench::PrintHeader(
      "Fig 9(a): region monitoring - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader(
      "Fig 9(b): region monitoring - average quality of results");
  quality.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
