// Fig. 18 (beyond the paper): latency-SLO adaptive scheduling under a
// load spike.
//
// ServingConfig::slo_ms arms the AdaptivePolicy
// (src/engine/adaptive_policy.h): each slot, Select predicts every
// engine's cost from the slot's features (members, churn, query batch)
// with an online per-engine cost model and runs the best engine whose
// prediction fits the remaining budget, degrading down the quality
// ladder (lazy -> stochastic -> sieve) when the configured scheduler
// would blow the deadline and climbing back when load drops. This bench
// measures exactly that story on a three-phase workload over the
// fig12/fig13 churn scenario:
//
//   base     slots 1..P        the steady query rate
//   spike    slots P+1..2P     spike_queries per slot (6x base)
//   recover  slots 2P+1..3P    back to the base rate
//
// The SLO is self-calibrated — a static-lazy run is measured first and
// its base-phase median per-slot latency (turnover + selection) becomes
// the unit — so the classification is host-independent: the spike costs
// ~6x base under lazy, the "medium" SLO is 3x base, and a static
// scheduler therefore misses every spike deadline on any machine while
// the adaptive engine degrades and keeps hitting. Three SLO levels are
// swept (tight 0.6x, medium 3x, loose 50x base median) and for each the
// static run's hit rates are re-scored next to a live adaptive run.
//
// Every adaptive run records a version-2 trace (per-slot engine choices)
// and is replayed through TraceReplayer; the replay must reproduce every
// slot's schedule, payments, and valuation-call count bit for bit even
// though the live choices came from wall-clock observations — the
// recorded choices are pinned, not re-derived.
//
// `--json PATH` emits the record consumed by
// scripts/check_bench_regression.py (--fig18), which fails on any
// `replay_identical: false` adaptive row (always fatal) and, on hosts
// with >= 2 hardware threads, gates the medium-SLO adaptive hit_rate
// >= 0.95, the medium-SLO static spike_hit_rate <= 0.5, the loose-SLO
// adaptive run staying undegraded (all-lazy), and recovery (the recover
// phase back on lazy) — see docs/BENCHMARKS.md, "fig18 adaptive SLO
// gate". `--trace-dir DIR` keeps the recorded traces.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "engine/serving_engine.h"
#include "sim/workload.h"
#include "trace/slot_server.h"
#include "trace/trace_replayer.h"

namespace psens {
namespace {

struct PhasePlan {
  int slots = 0;          // total slots after the cold slot 0
  int phase = 0;          // slots per phase (base / spike / recover)
  int base_points = 0;
  int base_aggregates = 0;
  int spike_points = 0;
  int spike_aggregates = 0;

  bool IsSpike(int t) const { return t > phase && t <= 2 * phase; }
  bool IsRecover(int t) const { return t > 2 * phase; }
  int PointsAt(int t) const { return IsSpike(t) ? spike_points : base_points; }
  int AggregatesAt(int t) const {
    return IsSpike(t) ? spike_aggregates : base_aggregates;
  }
};

/// One served run over the scenario: every slot's outcome plus the
/// engine Select actually ran (from ServingEngine::last_select_engines).
struct RunStats {
  std::vector<SlotOutcome> outcomes;   // slots 1..plan.slots
  std::vector<GreedyEngine> engines;   // parallel to outcomes
  double utility = 0.0;
};

/// Serves the three-phase workload once. Inputs are regenerated from the
/// same scenario forks every call, so every run (static, each adaptive
/// level, and — through the trace — each replay) sees the identical
/// delta and query streams.
RunStats ServeRun(const ChurnScenarioSetup& setup, const PhasePlan& plan,
                  const bench::BenchArgs& args, double slo_ms,
                  const std::string& trace_path) {
  ServingConfig cfg;
  cfg.working_region = setup.field;
  cfg.dmax = setup.dmax;
  cfg.scheduler = GreedyEngine::kLazy;
  cfg.index_policy = args.index_policy;
  cfg.index_auto_threshold = args.index_threshold;
  cfg.approx.epsilon = args.epsilon;
  cfg.approx.seed = args.seed;
  cfg.slo_ms = slo_ms;
  cfg.trace_path = trace_path;
  std::unique_ptr<ServingEngine> engine =
      MakeServingEngine(setup.scenario.sensors, cfg);
  SlotServer server(engine.get());

  ChurnStream stream(setup.churn, setup.scenario.sensors, setup.field);
  stream.SetClusteredPlacement(&setup.scenario, &setup.config);
  Rng fork_base = setup.rng_after_generation;
  Rng churn_rng = fork_base.Fork(7);
  Rng query_rng = fork_base.Fork(8);

  const double side = setup.side;
  const double agg_half = 25.0;
  const double agg_range = 10.0;

  // Cold build, query-free — excluded from hit rates (its "turnover" is
  // the full registry build).
  server.ServeSlot(0, SensorDelta{}, SlotQueryBatch{});

  RunStats stats;
  for (int t = 1; t <= plan.slots; ++t) {
    const SensorDelta delta = stream.Next(churn_rng);
    SlotQueryBatch batch;
    batch.points = GenerateClusteredPointQueries(
        plan.PointsAt(t), setup.scenario, setup.config,
        BudgetScheme{15.0, false, 0.0},
        /*theta_min=*/0.2, /*id_base=*/t * 10'000, query_rng);
    const int aggs = plan.AggregatesAt(t);
    for (int i = 0; i < aggs; ++i) {
      const Point c = DrawScenarioLocation(setup.scenario, setup.config,
                                           query_rng);
      AggregateQuery::Params params;
      params.id = t * 1000 + i;
      params.region =
          Rect{std::max(0.0, c.x - agg_half), std::max(0.0, c.y - agg_half),
               std::min(side, c.x + agg_half), std::min(side, c.y + agg_half)};
      params.budget = params.region.Width() * params.region.Height() /
                      (1.5 * agg_range) * 2.0;
      params.sensing_range = agg_range;
      params.cell_size = 5.0;
      batch.aggregates.push_back(params);
    }
    SlotOutcome out = server.ServeSlot(t, delta, batch);
    stats.utility += out.selection.Utility();
    stats.outcomes.push_back(std::move(out));
    stats.engines.push_back(engine->last_select_engines().empty()
                                ? cfg.scheduler
                                : engine->last_select_engines()[0]);
  }
  if (!trace_path.empty()) engine->FinishTrace();
  return stats;
}

struct SloRow {
  std::string mode;       // "static" | "adaptive"
  std::string slo_label;  // "tight" | "medium" | "loose"
  double slo_ms = 0.0;
  int sensors = 0;
  int slots = 0;
  int base_queries = 0;
  int spike_queries = 0;
  int hardware_threads = 0;
  double hit_rate = 0.0;
  double spike_hit_rate = 0.0;
  int lazy_slots = 0;
  int eager_slots = 0;
  int stochastic_slots = 0;
  int sieve_slots = 0;
  double utility_ratio_vs_static = 0.0;
  bool replay_identical = true;
  bool recovered = true;
};

/// A slot hits its deadline when the stages the SLO governs — turnover
/// plus selection — fit the budget. Binding/payment bookkeeping is
/// query-arrival work outside the scheduler's control and is excluded,
/// the same split the policy itself budgets with.
bool Hit(const SlotOutcome& out, double slo_ms) {
  return out.turnover_ms + out.selection_ms <= slo_ms;
}

SloRow ScoreRun(const RunStats& run, const PhasePlan& plan, double slo_ms) {
  SloRow row;
  row.slo_ms = slo_ms;
  int hits = 0;
  int spike_hits = 0;
  int recover_lazy = 0;
  for (size_t i = 0; i < run.outcomes.size(); ++i) {
    const int t = run.outcomes[i].time;
    const bool hit = Hit(run.outcomes[i], slo_ms);
    hits += hit ? 1 : 0;
    if (plan.IsSpike(t)) spike_hits += hit ? 1 : 0;
    switch (run.engines[i]) {
      case GreedyEngine::kLazy: ++row.lazy_slots; break;
      case GreedyEngine::kEager: ++row.eager_slots; break;
      case GreedyEngine::kStochastic: ++row.stochastic_slots; break;
      case GreedyEngine::kSieve: ++row.sieve_slots; break;
    }
    if (plan.IsRecover(t) && run.engines[i] == GreedyEngine::kLazy) {
      ++recover_lazy;
    }
  }
  const int n = static_cast<int>(run.outcomes.size());
  row.slots = n;
  row.hit_rate = n > 0 ? static_cast<double>(hits) / n : 0.0;
  row.spike_hit_rate =
      plan.phase > 0 ? static_cast<double>(spike_hits) / plan.phase : 0.0;
  // "Recovered" = the recover phase is (mostly) back on the quality
  // ceiling; the one-slot tail of a sieve re-entry is tolerated.
  row.recovered = plan.phase > 0 &&
                  recover_lazy >= (8 * plan.phase + 9) / 10;  // ceil(0.8 P)
  return row;
}

void WriteJson(const std::string& path, double cal_ms, double base_median_ms,
               const std::vector<SloRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig18_adaptive_slo\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n", cal_ms);
  std::fprintf(f, "  \"base_median_ms\": %.4f,\n  \"results\": [\n",
               base_median_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SloRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"slo_label\": \"%s\", \"slo_ms\": %.4f, "
        "\"sensors\": %d, \"slots\": %d, \"base_queries\": %d, "
        "\"spike_queries\": %d, \"hardware_threads\": %d, "
        "\"hit_rate\": %.4f, \"spike_hit_rate\": %.4f, "
        "\"lazy_slots\": %d, \"eager_slots\": %d, \"stochastic_slots\": %d, "
        "\"sieve_slots\": %d, \"utility_ratio_vs_static\": %.5f, "
        "\"replay_identical\": %s, \"recovered\": %s}%s\n",
        r.mode.c_str(), r.slo_label.c_str(), r.slo_ms, r.sensors, r.slots,
        r.base_queries, r.spike_queries, r.hardware_threads, r.hit_rate,
        r.spike_hit_rate, r.lazy_slots, r.eager_slots, r.stochastic_slots,
        r.sieve_slots, r.utility_ratio_vs_static,
        r.replay_identical ? "true" : "false",
        r.recovered ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // fig18-specific flag (BenchArgs ignores what it does not know):
  //   --trace-dir DIR   keep the recorded adaptive traces under DIR
  std::string trace_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    }
  }
  const bool keep_traces = !trace_dir.empty();
  if (!keep_traces) {
    const char* tmp = std::getenv("TMPDIR");
    trace_dir = tmp != nullptr ? tmp : "/tmp";
  }

  // The phase structure is the experiment — fixed per mode rather than
  // taken from --slots, so the gate workload is reproducible.
  PhasePlan plan;
  plan.phase = args.quick ? 16 : 20;
  plan.slots = 3 * plan.phase;
  plan.base_points = args.quick ? 24 : 32;
  plan.base_aggregates = args.quick ? 3 : 4;
  plan.spike_points = 6 * plan.base_points;
  plan.spike_aggregates = 6 * plan.base_aggregates;

  int sensors = args.quick ? 40'000 : 100'000;
  if (args.max_sensors > 0) sensors = std::min(sensors, args.max_sensors);
  const double churn_fraction = 0.01;
  const ChurnScenarioSetup setup = MakeChurnScenario(
      sensors, churn_fraction, args.seed, /*with_mobility=*/false);

  bench::PrintHeader("fig18: latency-SLO adaptive scheduling under load spike");
  const double cal_ms = bench::CalibrationMs();
  const int hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  // Static reference run (lazy, no SLO): the baseline utility, the hit
  // rates every SLO level is re-scored against, and the calibration
  // unit — the base-phase median of turnover + selection.
  const RunStats st = ServeRun(setup, plan, args, /*slo_ms=*/0.0,
                               /*trace_path=*/std::string());
  std::vector<double> base_ms;
  for (const SlotOutcome& out : st.outcomes) {
    if (out.time <= plan.phase) {
      base_ms.push_back(out.turnover_ms + out.selection_ms);
    }
  }
  const double base_median_ms = bench::MedianMs(base_ms);
  std::printf("static lazy base-phase median: %.3f ms "
              "(turnover + selection; the SLO unit)\n\n", base_median_ms);

  struct SloLevel {
    const char* label;
    double factor;
  };
  const SloLevel levels[] = {{"tight", 0.6}, {"medium", 3.0}, {"loose", 50.0}};

  std::printf("%-9s %-7s %10s %9s %10s %6s %6s %6s %6s %8s %8s\n", "mode",
              "slo", "slo_ms", "hit_rate", "spike_hit", "lazy", "eager",
              "stoch", "sieve", "replay", "recov");
  std::vector<SloRow> rows;
  bool all_identical = true;
  for (const SloLevel& level : levels) {
    const double slo_ms = level.factor * base_median_ms;

    SloRow srow = ScoreRun(st, plan, slo_ms);
    srow.mode = "static";
    srow.slo_label = level.label;
    srow.sensors = sensors;
    srow.base_queries = plan.base_points + plan.base_aggregates;
    srow.spike_queries = plan.spike_points + plan.spike_aggregates;
    srow.hardware_threads = hardware_threads;
    srow.utility_ratio_vs_static = 1.0;

    char path[512];
    std::snprintf(path, sizeof(path), "%s/fig18_adaptive_%s.trace",
                  trace_dir.c_str(), level.label);
    const RunStats ad = ServeRun(setup, plan, args, slo_ms, path);

    // Replay the recorded adaptive trace: the choices were made from
    // wall-clock observations, yet the replay must be bit-identical
    // because the trace pins them.
    ReplayConfig rcfg;
    rcfg.serving.scheduler = GreedyEngine::kLazy;
    rcfg.serving.index_policy = args.index_policy;
    rcfg.serving.index_auto_threshold = args.index_threshold;
    const ReplayResult replayed =
        TraceReplayer(rcfg).Replay(path, setup.scenario.sensors, nullptr);
    bool identical = replayed.ok &&
                     replayed.outcomes.size() == ad.outcomes.size() + 1;
    if (!replayed.ok) {
      std::fprintf(stderr, "fig18 %s: replay failed: %s\n", level.label,
                   replayed.error.c_str());
    }
    if (identical) {
      // Replay outcome 0 is the recorded cold slot; live outcomes start
      // at slot 1.
      for (size_t i = 0; i < ad.outcomes.size(); ++i) {
        if (!SameOutcome(ad.outcomes[i], replayed.outcomes[i + 1])) {
          identical = false;
          std::fprintf(stderr,
                       "fig18 %s: slot %d replay diverged from live\n",
                       level.label, ad.outcomes[i].time);
          break;
        }
      }
    }
    all_identical = all_identical && identical;
    if (!keep_traces) std::remove(path);

    SloRow arow = ScoreRun(ad, plan, slo_ms);
    arow.mode = "adaptive";
    arow.slo_label = level.label;
    arow.sensors = sensors;
    arow.base_queries = srow.base_queries;
    arow.spike_queries = srow.spike_queries;
    arow.hardware_threads = hardware_threads;
    arow.utility_ratio_vs_static =
        st.utility != 0.0 ? ad.utility / st.utility : 0.0;
    arow.replay_identical = identical;

    for (const SloRow* r : {&srow, &arow}) {
      std::printf("%-9s %-7s %10.3f %8.1f%% %9.1f%% %6d %6d %6d %6d %8s %8s\n",
                  r->mode.c_str(), r->slo_label.c_str(), r->slo_ms,
                  100.0 * r->hit_rate, 100.0 * r->spike_hit_rate,
                  r->lazy_slots, r->eager_slots, r->stochastic_slots,
                  r->sieve_slots, r->replay_identical ? "yes" : "NO",
                  r->recovered ? "yes" : "no");
      rows.push_back(*r);
    }
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (keep_traces) std::printf("traces kept under %s\n", trace_dir.c_str());
  if (!args.json_path.empty()) {
    WriteJson(args.json_path, cal_ms, base_median_ms, rows);
  }
  return all_identical ? 0 : 1;
}
