// Ablation (DESIGN.md): solution quality of the point-query schedulers
// relative to the exact optimum on RNC-style slots — how much utility the
// 1/3-approximation local search actually leaves on the table (the paper
// observes "solutions close to the optimal ones"), and what the randomized
// restart variant buys.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/point_scheduling.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"
#include "sim/workload.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  psens::Rng rng(args.seed);
  psens::Rng sensor_rng = rng.Fork(1);
  psens::Rng query_rng = rng.Fork(2);
  psens::SensorPopulationConfig population;
  population.count = trace.NumSensors();
  population.lifetime = args.slots;
  std::vector<psens::Sensor> sensors = psens::GenerateSensors(population, sensor_rng);

  psens::RunningStat ls_ratio, rls_ratio, baseline_ratio;
  int proven = 0, total = 0;
  for (int t = 0; t < args.slots; ++t) {
    psens::ApplyTraceSlot(trace, t, &sensors);
    const psens::SlotContext slot =
        psens::BuildSlotContext(sensors, working, t, 10.0);
    const auto queries = psens::GeneratePointQueries(
        300, working, psens::BudgetScheme{15.0, false, 0.0}, 0.2, 0, query_rng);

    psens::PointSchedulingOptions options;
    options.scheduler = psens::PointScheduler::kOptimal;
    const auto optimal = psens::SchedulePointQueries(queries, slot, options);
    options.scheduler = psens::PointScheduler::kLocalSearch;
    const auto ls = psens::SchedulePointQueries(queries, slot, options);
    options.scheduler = psens::PointScheduler::kRandomizedLocalSearch;
    options.restarts = 5;
    const auto rls = psens::SchedulePointQueries(queries, slot, options);
    options.scheduler = psens::PointScheduler::kBaseline;
    const auto baseline = psens::SchedulePointQueries(queries, slot, options);

    ++total;
    if (optimal.proven_optimal) ++proven;
    if (optimal.Utility() > 1e-9) {
      ls_ratio.Add(ls.Utility() / optimal.Utility());
      rls_ratio.Add(rls.Utility() / optimal.Utility());
      baseline_ratio.Add(baseline.Utility() / optimal.Utility());
    }
  }

  psens::bench::PrintHeader("Ablation: scheduler quality relative to exact optimum");
  psens::Table table({"scheduler", "mean_ratio", "min_ratio"});
  table.AddRow({std::string("LocalSearch"),
                psens::FormatDouble(ls_ratio.Mean(), 4),
                psens::FormatDouble(ls_ratio.Min(), 4)});
  table.AddRow({std::string("RandomizedLS(5)"),
                psens::FormatDouble(rls_ratio.Mean(), 4),
                psens::FormatDouble(rls_ratio.Min(), 4)});
  table.AddRow({std::string("Baseline"),
                psens::FormatDouble(baseline_ratio.Mean(), 4),
                psens::FormatDouble(baseline_ratio.Min(), 4)});
  table.Print();
  std::printf("optimality proven on %d/%d slots (within the node budget)\n",
              proven, total);
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
