// Ablation (DESIGN.md): solution quality of the point-query schedulers
// relative to the exact optimum on RNC-style slots — how much utility the
// 1/3-approximation local search actually leaves on the table (the paper
// observes "solutions close to the optimal ones"), and what the randomized
// restart variant buys.

#include <cstdio>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/point_scheduling.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"
#include "sim/workload.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  psens::Rng rng(args.seed);
  psens::Rng sensor_rng = rng.Fork(1);
  psens::Rng query_rng = rng.Fork(2);
  psens::SensorPopulationConfig population;
  population.count = trace.NumSensors();
  population.lifetime = args.slots;
  std::vector<psens::Sensor> sensors = psens::GenerateSensors(population, sensor_rng);

  psens::RunningStat ls_ratio, rls_ratio, baseline_ratio;
  int proven = 0, total = 0;
  for (int t = 0; t < args.slots; ++t) {
    psens::ApplyTraceSlot(trace, t, &sensors);
    const psens::SlotContext slot =
        psens::BuildSlotContext(sensors, working, t, 10.0);
    const auto queries = psens::GeneratePointQueries(
        300, working, psens::BudgetScheme{15.0, false, 0.0}, 0.2, 0, query_rng);

    psens::PointSchedulingOptions options;
    options.scheduler = psens::PointScheduler::kOptimal;
    const auto optimal = psens::SchedulePointQueries(queries, slot, options);
    options.scheduler = psens::PointScheduler::kLocalSearch;
    const auto ls = psens::SchedulePointQueries(queries, slot, options);
    options.scheduler = psens::PointScheduler::kRandomizedLocalSearch;
    options.restarts = 5;
    const auto rls = psens::SchedulePointQueries(queries, slot, options);
    options.scheduler = psens::PointScheduler::kBaseline;
    const auto baseline = psens::SchedulePointQueries(queries, slot, options);

    ++total;
    if (optimal.proven_optimal) ++proven;
    if (optimal.Utility() > 1e-9) {
      ls_ratio.Add(ls.Utility() / optimal.Utility());
      rls_ratio.Add(rls.Utility() / optimal.Utility());
      baseline_ratio.Add(baseline.Utility() / optimal.Utility());
    }
  }

  psens::bench::PrintHeader("Ablation: scheduler quality relative to exact optimum");
  psens::Table table({"scheduler", "mean_ratio", "min_ratio"});
  table.AddRow({std::string("LocalSearch"),
                psens::FormatDouble(ls_ratio.Mean(), 4),
                psens::FormatDouble(ls_ratio.Min(), 4)});
  table.AddRow({std::string("RandomizedLS(5)"),
                psens::FormatDouble(rls_ratio.Mean(), 4),
                psens::FormatDouble(rls_ratio.Min(), 4)});
  table.AddRow({std::string("Baseline"),
                psens::FormatDouble(baseline_ratio.Mean(), 4),
                psens::FormatDouble(baseline_ratio.Min(), 4)});
  table.Print();
  std::printf("optimality proven on %d/%d slots (within the node budget)\n",
              proven, total);
}

/// Second ablation: the CELF lazy-greedy engine vs the literal eager
/// rescan of Algorithm 1 on aggregate-query slots — identical selection
/// rule, how many valuation calls does laziness save and does the realized
/// utility move at all (it can only differ where Eq. 5's mean-quality
/// factor breaks submodularity)?
void RunGreedyEngineAblation(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  psens::Rng rng(args.seed + 17);
  psens::Rng sensor_rng = rng.Fork(1);
  psens::Rng query_rng = rng.Fork(2);
  psens::SensorPopulationConfig population;
  population.count = trace.NumSensors();
  population.lifetime = args.slots;
  std::vector<psens::Sensor> sensors = psens::GenerateSensors(population, sensor_rng);

  int64_t eager_calls = 0, lazy_calls = 0;
  double eager_utility = 0.0, lazy_utility = 0.0;
  int identical_slots = 0;
  for (int t = 0; t < args.slots; ++t) {
    psens::ApplyTraceSlot(trace, t, &sensors);
    const psens::SlotContext slot =
        psens::BuildSlotContext(sensors, working, t, 10.0);
    const auto params = psens::GenerateAggregateQueries(30, working, 10.0, 15.0,
                                                        t * 100, query_rng);
    // Fresh query objects per engine: selection state is stored on them.
    const auto run = [&](psens::GreedyEngine engine) {
      std::vector<std::unique_ptr<psens::AggregateQuery>> queries;
      for (const auto& p : params) {
        queries.push_back(std::make_unique<psens::AggregateQuery>(p, slot));
      }
      std::vector<psens::MultiQuery*> ptrs;
      for (auto& q : queries) ptrs.push_back(q.get());
      return psens::GreedySensorSelection(ptrs, slot, nullptr, engine);
    };
    const psens::SelectionResult eager = run(psens::GreedyEngine::kEager);
    const psens::SelectionResult lazy = run(psens::GreedyEngine::kLazy);
    eager_calls += eager.valuation_calls;
    lazy_calls += lazy.valuation_calls;
    eager_utility += eager.Utility();
    lazy_utility += lazy.Utility();
    if (eager.selected_sensors == lazy.selected_sensors) ++identical_slots;
  }

  psens::bench::PrintHeader(
      "Ablation: lazy (CELF) vs eager greedy on aggregate slots");
  psens::Table table({"engine", "valuation_calls", "mean_utility"});
  table.AddRow({std::string("Eager"), psens::FormatDouble(eager_calls, 0),
                psens::FormatDouble(eager_utility / args.slots, 2)});
  table.AddRow({std::string("Lazy"), psens::FormatDouble(lazy_calls, 0),
                psens::FormatDouble(lazy_utility / args.slots, 2)});
  table.Print();
  std::printf("valuation-call reduction: %.2fx; identical selections on %d/%d slots\n",
              lazy_calls > 0 ? static_cast<double>(eager_calls) / lazy_calls : 0.0,
              identical_slots, args.slots);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Run(args);
  RunGreedyEngineAblation(args);
  return 0;
}
