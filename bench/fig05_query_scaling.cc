// Reproduces Figure 5 (EDBT'13): varying the number of point queries per
// slot in {250, 500, 750, 1000} with the query budget fixed to 15 (RNC
// trace). More queries -> more sharing opportunities -> higher utility and
// slightly higher satisfaction.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  const std::vector<int> query_counts = {250, 500, 750, 1000};
  psens::Table utility({"num_queries", "Optimal", "LocalSearch", "Baseline"});
  psens::Table satisfaction({"num_queries", "Optimal", "LocalSearch", "Baseline"});

  for (int count : query_counts) {
    std::vector<double> util_row = {static_cast<double>(count)};
    std::vector<double> sat_row = {static_cast<double>(count)};
    for (const psens::PointScheduler scheduler :
         {psens::PointScheduler::kOptimal, psens::PointScheduler::kLocalSearch,
          psens::PointScheduler::kBaseline}) {
      psens::PointExperimentConfig config;
      config.trace = &trace;
      config.working_region = working;
      config.dmax = 10.0;
      config.num_slots = args.slots;
      config.queries_per_slot = count;
      config.budget = psens::BudgetScheme{15.0, false, 0.0};
      config.scheduler = scheduler;
      config.sensors.lifetime = args.slots;
      config.seed = args.seed;
      const psens::ExperimentResult r = psens::RunPointExperiment(config);
      util_row.push_back(r.avg_utility);
      sat_row.push_back(r.satisfaction);
    }
    utility.AddRow(util_row);
    satisfaction.AddRow(sat_row, 3);
  }

  psens::bench::PrintHeader(
      "Fig 5(a): varying #queries (budget 15) - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader(
      "Fig 5(b): varying #queries (budget 15) - query satisfaction ratio");
  satisfaction.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
