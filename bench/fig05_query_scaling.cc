// Reproduces Figure 5 (EDBT'13): varying the number of point queries per
// slot in {250, 500, 750, 1000} with the query budget fixed to 15 (RNC
// trace). More queries -> more sharing opportunities -> higher utility and
// slightly higher satisfaction.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"

namespace {

using psens::bench::BenchArgs;

void Run(const BenchArgs& args) {
  psens::SyntheticNokiaConfig nokia;
  nokia.num_slots = args.slots;
  nokia.seed = args.seed;
  const psens::Trace trace = psens::GenerateSyntheticNokia(nokia);
  const psens::Rect working = psens::NokiaWorkingRegion(nokia);

  const std::vector<int> query_counts = {250, 500, 750, 1000};
  const std::vector<psens::PointScheduler> schedulers = {
      psens::PointScheduler::kOptimal, psens::PointScheduler::kLocalSearch,
      psens::PointScheduler::kBaseline};
  psens::Table utility({"num_queries", "Optimal", "LocalSearch", "Baseline"});
  psens::Table satisfaction({"num_queries", "Optimal", "LocalSearch", "Baseline"});

  // Every (query count, scheduler) sweep point is an independent
  // simulation: shard them over the pool and assemble the tables in sweep
  // order afterwards. Slot-level parallelism inside RunPointExperiment is
  // disabled (parallelism = 1) — the sweep grid is the coarser, better
  // grain.
  const int points = static_cast<int>(query_counts.size() * schedulers.size());
  std::vector<psens::ExperimentResult> results(points);
  psens::ThreadPool pool(psens::ThreadPool::ResolveParallelism(args.threads));
  pool.ParallelFor(points, [&](int i) {
    psens::PointExperimentConfig config;
    config.trace = &trace;
    config.working_region = working;
    config.dmax = 10.0;
    config.num_slots = args.slots;
    config.queries_per_slot = query_counts[i / schedulers.size()];
    config.budget = psens::BudgetScheme{15.0, false, 0.0};
    config.scheduler = schedulers[i % schedulers.size()];
    config.sensors.lifetime = args.slots;
    config.seed = args.seed;
    config.parallelism = 1;
    results[i] = psens::RunPointExperiment(config);
  });

  for (size_t c = 0; c < query_counts.size(); ++c) {
    std::vector<double> util_row = {static_cast<double>(query_counts[c])};
    std::vector<double> sat_row = {static_cast<double>(query_counts[c])};
    for (size_t s = 0; s < schedulers.size(); ++s) {
      const psens::ExperimentResult& r = results[c * schedulers.size() + s];
      util_row.push_back(r.avg_utility);
      sat_row.push_back(r.satisfaction);
    }
    utility.AddRow(util_row);
    satisfaction.AddRow(sat_row, 3);
  }

  psens::bench::PrintHeader(
      "Fig 5(a): varying #queries (budget 15) - average utility per time slot");
  utility.Print();
  psens::bench::PrintHeader(
      "Fig 5(b): varying #queries (budget 15) - query satisfaction ratio");
  satisfaction.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Run(BenchArgs::Parse(argc, argv));
  return 0;
}
