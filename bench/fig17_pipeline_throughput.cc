// Fig. 17 (beyond the paper): pipelined slot execution — sustained
// closed-loop slots/sec, sequential vs pipelined, with a fatal
// bit-equality column.
//
// ServingConfig::pipeline == 2 re-architects the per-slot cycle on the
// work-stealing task-graph executor (src/common/task_graph.h): slot
// t+1's staged turnover — delta ingestion, membership repair, SlotSlabs
// refresh, dynamic-index maintenance — runs on a graph worker while the
// serving thread binds, selects, and commits slot t. The commit barrier
// (ActivateStagedSlot) sequences cross-slot feedback exactly as the
// sequential schedule, so outcomes are bit-identical by construction;
// the overlap only buys sustained throughput. This sweep measures that
// buy: closed-loop slots/sec over the fig15 churn scenario (1% churn)
// at 100k (and, full mode, 1M) sensors, sequential vs pipelined, plus a
// 4-shard pair showing the overlap composes with the shard fan-out.
//
// Every pipelined row's outcomes are compared slot-by-slot against its
// sequential twin via SameOutcome(); a single diverging field prints
// identical=NO and exits 1 — scripts/check_bench_regression.py treats
// any non-identical row as fatal regardless of host. The throughput
// shape (pipelined >= 1.3x sequential at 100k, unsharded) only means
// anything when the host has a core for the graph worker to overlap
// onto, so the JSON carries hardware_threads and the gate arms itself
// accordingly.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/slot_server.h"

namespace psens {
namespace {

struct PipelineRow {
  int sensors = 0;
  int slots = 0;
  int queries_per_slot = 0;
  int aggregates_per_slot = 0;
  double churn_fraction = 0.0;
  int pipeline = 0;
  int shards = 1;
  int hardware_threads = 0;
  double wall_ms = 0.0;
  double slots_per_sec = 0.0;
  double speedup_vs_sequential = 0.0;
  bool identical = false;
};

/// One closed-loop pass. When `reference` is null this is the sequential
/// reference pass and `out_reference` receives the outcomes; otherwise
/// every slot is compared against it.
PipelineRow RunOne(const ChurnScenarioSetup& setup, int n, int slots,
                   double churn_fraction, int pipeline, int shards,
                   const ChurnQueryConfig& queries, uint64_t seed,
                   const std::vector<SlotOutcome>* reference,
                   std::vector<SlotOutcome>* out_reference) {
  PipelineRow row;
  row.sensors = n;
  row.slots = slots;
  row.queries_per_slot = queries.queries_per_slot;
  row.aggregates_per_slot = queries.aggregates_per_slot;
  row.churn_fraction = churn_fraction;
  row.pipeline = pipeline;
  row.shards = shards;
  row.hardware_threads = ThreadPool::ResolveParallelism(0);

  ClosedLoopConfig config;
  config.slots = slots;
  config.queries = queries;
  config.serving = ServingConfig()
                       .WithShards(shards)
                       .WithThreads(std::max(1, shards))
                       .WithPipeline(pipeline)
                       .WithApproxSeed(seed);
  const ClosedLoopResult result = RunChurnClosedLoop(setup, config);
  row.wall_ms = result.wall_ms;
  row.slots_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * slots / result.wall_ms : 0.0;

  row.identical = true;
  if (reference != nullptr) {
    if (result.outcomes.size() != reference->size()) {
      row.identical = false;
    } else {
      for (size_t i = 0; i < result.outcomes.size(); ++i) {
        if (!SameOutcome((*reference)[i], result.outcomes[i])) {
          row.identical = false;
          std::fprintf(stderr,
                       "fig17 n=%d pipeline=%d shards=%d: slot %d diverged "
                       "from the sequential reference\n",
                       n, pipeline, shards, result.outcomes[i].time);
          break;
        }
      }
    }
  }
  if (out_reference != nullptr) *out_reference = result.outcomes;
  return row;
}

void WriteJson(const std::string& path, double cal_ms,
               const std::vector<PipelineRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig17_pipeline_throughput\",\n");
  std::fprintf(f, "  \"cal_ms\": %.6f,\n  \"results\": [\n", cal_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const PipelineRow& r = rows[i];
    std::fprintf(f,
                 "    {\"sensors\": %d, \"slots\": %d, \"queries\": %d, "
                 "\"aggregates\": %d, \"churn\": %.4f, \"pipeline\": %d, "
                 "\"shards\": %d, \"hardware_threads\": %d, "
                 "\"wall_ms\": %.4f, \"slots_per_sec\": %.3f, "
                 "\"speedup_vs_sequential\": %.3f, \"identical\": %s}%s\n",
                 r.sensors, r.slots, r.queries_per_slot,
                 r.aggregates_per_slot, r.churn_fraction, r.pipeline,
                 r.shards, r.hardware_threads, r.wall_ms, r.slots_per_sec,
                 r.speedup_vs_sequential, r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace psens

int main(int argc, char** argv) {
  using namespace psens;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const int slots = std::max(args.slots, 3);
  const double churn_fraction = 0.01;

  std::vector<int> populations = args.quick
                                     ? std::vector<int>{100'000}
                                     : std::vector<int>{100'000, 1'000'000};
  if (args.max_sensors > 0) {
    std::vector<int> capped;
    for (int n : populations) {
      if (n <= args.max_sensors) capped.push_back(n);
    }
    if (capped.empty()) capped.push_back(args.max_sensors);
    populations = capped;
  }
  // Sequential/pipelined twins, unsharded and composed with the 4-shard
  // fan-out (the pipelined router overlaps per-shard repair with the
  // merged selection pass).
  const std::vector<std::pair<int, int>> variants{
      {0, 1}, {2, 1}, {0, 4}, {2, 4}};

  ChurnQueryConfig queries;
  queries.queries_per_slot = args.quick ? 32 : 64;
  queries.aggregates_per_slot = args.quick ? 4 : 8;

  bench::PrintHeader(
      "fig17: pipelined slot execution, sequential vs pipelined slots/sec");
  std::printf("%9s %6s %9s %7s %10s %12s %9s %s\n", "sensors", "slots",
              "pipeline", "shards", "wall_ms", "slots/sec", "speedup",
              "identical");

  const double cal_ms = bench::CalibrationMs();
  std::vector<PipelineRow> rows;
  bool all_identical = true;
  for (int n : populations) {
    const ChurnScenarioSetup setup = MakeChurnScenario(
        n, churn_fraction, args.seed, /*with_mobility=*/false);
    // One reference per shard count: the pipelined row must match its
    // sequential twin bit for bit (fig15 already pins shards vs
    // unsharded).
    std::vector<SlotOutcome> reference;
    double sequential_slots_per_sec = 0.0;
    for (const auto& [pipeline, shards] : variants) {
      PipelineRow row =
          pipeline == 0
              ? RunOne(setup, n, slots, churn_fraction, pipeline, shards,
                       queries, args.seed, nullptr, &reference)
              : RunOne(setup, n, slots, churn_fraction, pipeline, shards,
                       queries, args.seed, &reference, nullptr);
      if (pipeline == 0) sequential_slots_per_sec = row.slots_per_sec;
      row.speedup_vs_sequential =
          sequential_slots_per_sec > 0.0
              ? row.slots_per_sec / sequential_slots_per_sec
              : 0.0;
      all_identical = all_identical && row.identical;
      std::printf("%9d %6d %9s %7d %10.1f %12.2f %8.2fx %s\n", row.sensors,
                  row.slots, row.pipeline == 2 ? "yes" : "no", row.shards,
                  row.wall_ms, row.slots_per_sec, row.speedup_vs_sequential,
                  row.identical ? "yes" : "NO");
      rows.push_back(row);
    }
  }

  std::printf("\ncalibration: %.2f ms (fixed FP loop; regression-gate time "
              "normalizer)\n", cal_ms);
  if (!args.json_path.empty()) WriteJson(args.json_path, cal_ms, rows);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a pipelined run diverged from its sequential twin "
                 "(bit-equality is a fatal gate)\n");
    return 1;
  }
  std::printf(
      "all pipelined outcomes bit-identical to the sequential schedule\n");
  return 0;
}
