#include "la/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/matrix.h"

namespace psens {
namespace {

Matrix RandomSpd(size_t n, Rng& rng) {
  // A = B B^T + n * I is SPD.
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) b(r, c) = rng.Uniform(-1.0, 1.0);
  }
  Matrix a = b.Multiply(b.Transpose());
  for (size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(CholeskyTest, FactorizationReconstructs) {
  Rng rng(3);
  const Matrix a = RandomSpd(6, rng);
  Cholesky chol(a);
  ASSERT_TRUE(chol.Ok());
  const Matrix reconstructed = chol.L().Multiply(chol.L().Transpose());
  EXPECT_LT(reconstructed.MaxAbsDiff(a), 1e-9);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Rng rng(5);
  const Matrix a = RandomSpd(8, rng);
  std::vector<double> x_true(8);
  for (double& v : x_true) v = rng.Uniform(-2.0, 2.0);
  const std::vector<double> b = a.MultiplyVector(x_true);
  Cholesky chol(a);
  ASSERT_TRUE(chol.Ok());
  const std::vector<double> x = chol.Solve(b);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, SolveLowerIsForwardSubstitution) {
  Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 2.0; a(1, 0) = 2.0; a(1, 1) = 5.0;
  Cholesky chol(a);
  ASSERT_TRUE(chol.Ok());
  // L = [[2, 0], [1, 2]]. Solve L y = [2, 5] -> y = [1, 2].
  const std::vector<double> y = chol.SolveLower({2.0, 5.0});
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 2.0, 1e-12);
}

TEST(CholeskyTest, LogDeterminantMatchesKnownMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 0.0; a(1, 0) = 0.0; a(1, 1) = 9.0;
  Cholesky chol(a);
  ASSERT_TRUE(chol.Ok());
  EXPECT_NEAR(chol.LogDeterminant(), std::log(36.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigenvalue -1
  Cholesky chol(a);
  EXPECT_FALSE(chol.Ok());
}

TEST(CholeskyTest, RejectsEmptyOrNonSquare) {
  EXPECT_FALSE(Cholesky(Matrix(0, 0)).Ok());
  EXPECT_FALSE(Cholesky(Matrix(2, 3)).Ok());
}

TEST(CholeskyTest, JitterRescuesNearSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0; a(1, 0) = 1.0; a(1, 1) = 1.0;  // singular
  EXPECT_FALSE(Cholesky(a).Ok());
  EXPECT_TRUE(Cholesky(a, 1e-6).Ok());
}

TEST(LeastSquaresTest, ExactOnConsistentSystem) {
  // y = 2 + 3 t sampled without noise.
  Matrix x(5, 2);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = static_cast<double>(i);
    y[i] = 2.0 + 3.0 * i;
  }
  const std::vector<double> beta = SolveLeastSquares(x, y);
  ASSERT_EQ(beta.size(), 2u);
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
  EXPECT_NEAR(beta[1], 3.0, 1e-6);
}

TEST(LeastSquaresTest, MinimizesResidualVersusPerturbations) {
  Rng rng(11);
  Matrix x(20, 3);
  std::vector<double> y(20);
  for (int i = 0; i < 20; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(-1, 1);
    x(i, 2) = rng.Uniform(-1, 1);
    y[i] = 0.5 - 2.0 * x(i, 1) + 0.3 * x(i, 2) + rng.Normal(0, 0.1);
  }
  const std::vector<double> beta = SolveLeastSquares(x, y);
  auto ssr = [&](const std::vector<double>& coef) {
    double total = 0.0;
    for (int i = 0; i < 20; ++i) {
      const double pred = coef[0] * x(i, 0) + coef[1] * x(i, 1) + coef[2] * x(i, 2);
      total += (y[i] - pred) * (y[i] - pred);
    }
    return total;
  };
  const double base = ssr(beta);
  for (size_t j = 0; j < beta.size(); ++j) {
    std::vector<double> perturbed = beta;
    perturbed[j] += 0.05;
    EXPECT_GE(ssr(perturbed), base);
    perturbed[j] -= 0.10;
    EXPECT_GE(ssr(perturbed), base);
  }
}

}  // namespace
}  // namespace psens
