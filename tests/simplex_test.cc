#include "solver/simplex.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace psens {
namespace {

TEST(SimplexTest, SimpleTwoVariableLp) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2, y <= 3 -> x=2, y=2, obj=10.
  Matrix a(3, 2);
  a(0, 0) = 1; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  a(2, 0) = 0; a(2, 1) = 1;
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, {4, 2, 3}, {3, 2});
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x with only x - y <= 1: increase both without bound.
  Matrix a(1, 2);
  a(0, 0) = 1; a(0, 1) = -1;
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, {1}, {1, 0});
  EXPECT_EQ(s.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= -1 with x >= 0 is infeasible.
  Matrix a(1, 1);
  a(0, 0) = 1;
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, {-1}, {1});
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, NegativeRhsFeasible) {
  // max x + y s.t. -x <= -1 (x >= 1), x + y <= 3 -> obj = 3.
  Matrix a(2, 2);
  a(0, 0) = -1; a(0, 1) = 0;
  a(1, 0) = 1; a(1, 1) = 1;
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, {-1, 3}, {1, 1});
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_GE(s.x[0], 1.0 - 1e-9);
}

TEST(SimplexTest, ZeroObjectiveFeasible) {
  Matrix a(1, 2);
  a(0, 0) = 1; a(0, 1) = 1;
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, {5}, {0, 0});
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(SimplexTest, DegenerateConstraintsTerminate) {
  // Redundant constraints (classic cycling risk); Bland fallback must
  // terminate with the right answer: max x, x <= 1 three times.
  Matrix a(3, 1);
  a(0, 0) = 1; a(1, 0) = 1; a(2, 0) = 1;
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, {1, 1, 1}, {1});
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
}

TEST(SimplexTest, SolutionAlwaysFeasibleOnRandomLps) {
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t m = 4, n = 3;
    Matrix a(m, n);
    std::vector<double> b(m), c(n);
    for (size_t r = 0; r < m; ++r) {
      for (size_t col = 0; col < n; ++col) a(r, col) = rng.Uniform(0.0, 2.0);
      b[r] = rng.Uniform(0.5, 5.0);  // positive rhs: origin feasible
    }
    for (size_t col = 0; col < n; ++col) c[col] = rng.Uniform(-1.0, 3.0);
    SimplexSolver solver;
    const LpSolution s = solver.Maximize(a, b, c);
    ASSERT_EQ(s.status, LpStatus::kOptimal) << "trial " << trial;
    // Check primal feasibility of the returned point.
    for (size_t r = 0; r < m; ++r) {
      double lhs = 0.0;
      for (size_t col = 0; col < n; ++col) lhs += a(r, col) * s.x[col];
      EXPECT_LE(lhs, b[r] + 1e-7);
    }
    for (double xi : s.x) EXPECT_GE(xi, -1e-9);
    // Objective must match c^T x.
    double obj = 0.0;
    for (size_t col = 0; col < n; ++col) obj += c[col] * s.x[col];
    EXPECT_NEAR(obj, s.objective, 1e-7);
  }
}

TEST(SimplexTest, MatchesBruteForceVertexEnumerationOnBoxLps) {
  // max c^T x over 0 <= x <= u (axis box): optimum picks u_i when c_i > 0.
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 4;
    Matrix a(n, n, 0.0);
    std::vector<double> u(n), c(n);
    for (size_t i = 0; i < n; ++i) {
      a(i, i) = 1.0;
      u[i] = rng.Uniform(0.1, 3.0);
      c[i] = rng.Uniform(-2.0, 2.0);
    }
    SimplexSolver solver;
    const LpSolution s = solver.Maximize(a, u, c);
    ASSERT_EQ(s.status, LpStatus::kOptimal);
    double expected = 0.0;
    for (size_t i = 0; i < n; ++i) expected += c[i] > 0 ? c[i] * u[i] : 0.0;
    EXPECT_NEAR(s.objective, expected, 1e-8) << "trial " << trial;
  }
}

TEST(SimplexTest, RejectsDimensionMismatch) {
  Matrix a(2, 2);
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, {1.0}, {1.0, 1.0});
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, LpRelaxationUpperBoundsFacilityInstances) {
  // The LP relaxation of the Eq. (9) BILP upper-bounds the integer
  // optimum. Small instance: 2 sensors, 2 locations.
  //   max v11 Y11 + v21 Y21 + v12 Y12 + v22 Y22 - c1 X1 - c2 X2
  // rewritten for the solver as variables [Y11 Y21 Y12 Y22 X1 X2].
  Matrix a(6, 6, 0.0);
  // Y_li <= X_i.
  a(0, 0) = 1; a(0, 4) = -1;  // Y11 - X1 <= 0
  a(1, 1) = 1; a(1, 5) = -1;  // Y21 - X2 <= 0
  a(2, 2) = 1; a(2, 4) = -1;  // Y12 - X1 <= 0
  a(3, 3) = 1; a(3, 5) = -1;  // Y22 - X2 <= 0
  // Per-location assignment: Y11 + Y21 <= 1, Y12 + Y22 <= 1.
  a(4, 0) = 1; a(4, 1) = 1;
  a(5, 2) = 1; a(5, 3) = 1;
  const std::vector<double> b = {0, 0, 0, 0, 1, 1};
  const std::vector<double> c = {8, 7, 6, 9, -10, -10};
  SimplexSolver solver;
  const LpSolution s = solver.Maximize(a, b, c);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Integer optimum: open sensor 2 only (values 7 + 9 - 10 = 6) or sensor
  // 1 only (8 + 6 - 10 = 4) or both (8 + 9 - 20 = -3) -> 6.
  EXPECT_GE(s.objective, 6.0 - 1e-9);
}

}  // namespace
}  // namespace psens
