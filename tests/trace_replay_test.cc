// Replay-based differential suite (the record/replay harness's reason to
// exist): a live closed-loop churn run records itself, the replayer
// re-drives the trace through a fresh engine, and every schedule,
// payment, and valuation-call count must match bit for bit — for all
// four selection engines, for any replayer decode-thread count, and for
// a stochastic replay whose base seed differs from the recorded run's
// (the per-slot seeds persisted in the trace carry reproduction).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/trace_reader.h"
#include "trace/trace_replayer.h"

namespace psens {
namespace {

constexpr int kSensors = 400;
constexpr int kSlots = 20;
constexpr uint64_t kSeed = 20260807;

ChurnScenarioSetup MakeSetup() {
  // Energy + privacy feedback on, so RecordSlotReadings actually changes
  // later slots' announcements and the replayed feedback path is load-
  // bearing, not a no-op.
  SensorPopulationConfig profile;
  profile.linear_energy = true;
  profile.random_privacy = true;
  return MakeChurnScenario(kSensors, /*churn_fraction=*/0.05, kSeed,
                           /*with_mobility=*/true, profile);
}

ClosedLoopConfig MakeLoopConfig(GreedyEngine engine,
                                const std::string& trace_path) {
  ClosedLoopConfig config;
  config.slots = kSlots;
  config.serving.scheduler = engine;
  config.queries.queries_per_slot = 24;
  config.queries.aggregates_per_slot = 4;
  config.serving.trace_path = trace_path;
  config.serving.approx.seed = kSeed;
  return config;
}

std::string TracePath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void ExpectSameOutcomes(const std::vector<SlotOutcome>& live,
                        const std::vector<SlotOutcome>& replayed) {
  ASSERT_EQ(live.size(), replayed.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_TRUE(SameOutcome(live[i], replayed[i]))
        << "slot " << live[i].time << " diverged: live selected "
        << live[i].selection.selected_sensors.size() << " sensors (value "
        << live[i].selection.total_value << ", payment "
        << live[i].total_payment << "), replay selected "
        << replayed[i].selection.selected_sensors.size() << " (value "
        << replayed[i].selection.total_value << ", payment "
        << replayed[i].total_payment << ")";
  }
}

struct EngineCase {
  const char* name;
  GreedyEngine engine;
};

class TraceReplayEngineTest : public testing::TestWithParam<EngineCase> {};

TEST_P(TraceReplayEngineTest, ReplayReproducesLiveRunBitForBit) {
  const EngineCase& c = GetParam();
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath(std::string("replay_") + c.name + ".trc");
  const ClosedLoopResult live =
      RunChurnClosedLoop(setup, MakeLoopConfig(c.engine, path));
  ASSERT_EQ(static_cast<int>(live.outcomes.size()), kSlots + 1);

  ReplayConfig rcfg;
  rcfg.serving.scheduler = c.engine;
  TraceReplayer replayer(rcfg);
  const ReplayResult replayed = replayer.Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  ExpectSameOutcomes(live.outcomes, replayed.outcomes);
  // The run did real work; a trivially empty schedule would vacuously
  // pass the bit-equality above.
  EXPECT_GT(live.total_payment, 0.0);
  EXPECT_GT(live.valuation_calls, 0);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, TraceReplayEngineTest,
    testing::Values(EngineCase{"exact", GreedyEngine::kEager},
                    EngineCase{"lazy", GreedyEngine::kLazy},
                    EngineCase{"stochastic", GreedyEngine::kStochastic},
                    EngineCase{"sieve", GreedyEngine::kSieve}),
    [](const testing::TestParamInfo<EngineCase>& info) {
      return info.param.name;
    });

TEST(TraceReplayTest, DecodeThreadCountDoesNotChangeOutcomes) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("replay_threads.trc");
  const ClosedLoopResult live =
      RunChurnClosedLoop(setup, MakeLoopConfig(GreedyEngine::kLazy, path));

  ReplayConfig serial_cfg;
  serial_cfg.decode_threads = 1;
  ReplayConfig parallel_cfg;
  parallel_cfg.decode_threads = 8;
  const ReplayResult serial =
      TraceReplayer(serial_cfg).Replay(path, setup.scenario.sensors);
  const ReplayResult parallel =
      TraceReplayer(parallel_cfg).Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(serial.ok) << serial.error;
  ASSERT_TRUE(parallel.ok) << parallel.error;
  ExpectSameOutcomes(live.outcomes, serial.outcomes);
  ExpectSameOutcomes(serial.outcomes, parallel.outcomes);
  std::remove(path.c_str());
}

// Pipelined replay (ServingConfig::pipeline == 2) routes through
// SlotServer::ServeLoop, overlapping slot t+1's staged turnover with
// slot t's selection; outcomes must still reproduce the live sequential
// run bit for bit, for any decode-thread count.
TEST(TraceReplayTest, PipelinedReplayReproducesSequentialLiveRun) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("replay_pipelined.trc");
  const ClosedLoopResult live =
      RunChurnClosedLoop(setup, MakeLoopConfig(GreedyEngine::kStochastic, path));
  EXPECT_GT(live.total_payment, 0.0);

  for (int decode_threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "decode_threads=" << decode_threads);
    ReplayConfig rcfg;
    rcfg.serving.scheduler = GreedyEngine::kStochastic;
    rcfg.serving.pipeline = 2;
    rcfg.decode_threads = decode_threads;
    const ReplayResult replayed =
        TraceReplayer(rcfg).Replay(path, setup.scenario.sensors);
    ASSERT_TRUE(replayed.ok) << replayed.error;
    ExpectSameOutcomes(live.outcomes, replayed.outcomes);
  }
  std::remove(path.c_str());
}

// A trace recorded under pipelined serving is interchangeable with a
// sequentially recorded one: the overlapped schedule stages the trace
// writer's records in the sequential statement order (BeginSlot t ->
// queries t -> StageDelta t+1), so a sequential replay of a pipelined
// recording reproduces the pipelined live run.
TEST(TraceReplayTest, PipelinedRecordingReplaysSequentially) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("replay_pipelined_rec.trc");
  ClosedLoopConfig lcfg = MakeLoopConfig(GreedyEngine::kLazy, path);
  lcfg.serving.pipeline = 2;
  const ClosedLoopResult live = RunChurnClosedLoop(setup, lcfg);
  EXPECT_GT(live.total_payment, 0.0);

  ReplayConfig rcfg;
  rcfg.serving.scheduler = GreedyEngine::kLazy;
  const ReplayResult replayed =
      TraceReplayer(rcfg).Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  ExpectSameOutcomes(live.outcomes, replayed.outcomes);
  std::remove(path.c_str());
}

// The ApproxSlotSeed persistence regression (the satellite fix): every
// slot record carries the seed the recording engine stamped, and the
// replayer pins it, so a stochastic replay reproduces the live
// selections even when the replaying config's base seed is different.
// With pinning disabled the mismatched base seed must actually show —
// otherwise this test would pass vacuously on a workload too small for
// sampling to matter.
TEST(TraceReplayTest, StochasticReplayReproducesAcrossBaseSeeds) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("replay_seed.trc");
  const ClosedLoopResult live =
      RunChurnClosedLoop(setup, MakeLoopConfig(GreedyEngine::kStochastic, path));

  ReplayConfig pinned_cfg;
  pinned_cfg.serving.scheduler = GreedyEngine::kStochastic;
  pinned_cfg.override_approx_seed = true;
  pinned_cfg.serving.approx.seed = kSeed ^ 0xDEADBEEF;
  pinned_cfg.pin_slot_seeds = true;
  const ReplayResult pinned =
      TraceReplayer(pinned_cfg).Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(pinned.ok) << pinned.error;
  ExpectSameOutcomes(live.outcomes, pinned.outcomes);

  ReplayConfig unpinned_cfg = pinned_cfg;
  unpinned_cfg.pin_slot_seeds = false;
  const ReplayResult unpinned =
      TraceReplayer(unpinned_cfg).Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(unpinned.ok) << unpinned.error;
  ASSERT_EQ(unpinned.outcomes.size(), live.outcomes.size());
  bool any_diverged = false;
  for (size_t i = 0; i < live.outcomes.size(); ++i) {
    if (!SameOutcome(live.outcomes[i], unpinned.outcomes[i])) {
      any_diverged = true;
      break;
    }
  }
  EXPECT_TRUE(any_diverged)
      << "replay with a different base seed and no per-slot pinning "
         "reproduced the live run anyway — the seed-persistence test has "
         "lost its teeth";
  std::remove(path.c_str());
}

TEST(TraceReplayTest, MismatchedRegistryIsRefused) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("replay_registry.trc");
  RunChurnClosedLoop(setup, MakeLoopConfig(GreedyEngine::kLazy, path));

  std::vector<Sensor> tampered = setup.scenario.sensors;
  tampered[7].SetBasePrice(tampered[7].profile().base_price + 1.0);
  const ReplayResult result =
      TraceReplayer(ReplayConfig{}).Replay(path, tampered);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("registry mismatch"), std::string::npos)
      << result.error;

  std::vector<Sensor> short_registry = setup.scenario.sensors;
  short_registry.pop_back();
  const ReplayResult short_result =
      TraceReplayer(ReplayConfig{}).Replay(path, short_registry);
  EXPECT_FALSE(short_result.ok);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, RecordedTraceHasOneRecordPerServedSlot) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("replay_shape.trc");
  RunChurnClosedLoop(setup, MakeLoopConfig(GreedyEngine::kLazy, path));
  TraceFile trace;
  std::string error;
  ASSERT_TRUE(trace.Load(path, &error)) << error;
  EXPECT_EQ(trace.num_slots(), kSlots + 1);
  EXPECT_EQ(trace.header().registry_count,
            static_cast<uint32_t>(setup.scenario.sensors.size()));
  EXPECT_EQ(trace.header().registry_checksum,
            RegistryChecksum(setup.scenario.sensors));
  // Steady-state records carry real churn and the slot's query batch.
  TraceSlotRecord record;
  ASSERT_TRUE(trace.DecodeSlot(1, &record, &error)) << error;
  EXPECT_EQ(record.time, 1);
  EXPECT_EQ(static_cast<int>(record.point_queries.size()), 24);
  EXPECT_EQ(static_cast<int>(record.aggregate_queries.size()), 4);
  EXPECT_FALSE(record.delta.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psens
