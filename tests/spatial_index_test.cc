// Tests of the spatial index subsystem (src/index/): the uniform grid and
// the k-d tree must return *exactly* the brute-force result set — same
// predicate, ascending order — on random, clustered, and adversarial
// (collinear, duplicate-point, degenerate) inputs, and the auto factory
// must pick the right structure by density.

#include "index/spatial_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/slot.h"
#include "index/dynamic_index.h"
#include "index/kd_tree.h"
#include "index/uniform_grid.h"

namespace psens {
namespace {

std::vector<int> BruteRange(const std::vector<Point>& points, const Point& center,
                            double radius) {
  std::vector<int> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (Distance(points[i], center) <= radius) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> BruteRect(const std::vector<Point>& points, const Rect& rect) {
  std::vector<int> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (rect.Contains(points[i])) out.push_back(static_cast<int>(i));
  }
  return out;
}

int BruteNearest(const std::vector<Point>& points, const Point& p) {
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.size(); ++i) {
    const double dx = points[i].x - p.x;
    const double dy = points[i].y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(i);
    }
  }
  return best;
}

/// Exercises every query type of `index` against brute force on `points`.
void CheckIndexAgainstBruteForce(const SpatialIndex& index,
                                 const std::vector<Point>& points,
                                 uint64_t seed) {
  ASSERT_EQ(index.size(), static_cast<int>(points.size()));
  Rng rng(seed);
  std::vector<int> got;
  for (int probe = 0; probe < 30; ++probe) {
    const Point center{rng.Uniform(-5.0, 55.0), rng.Uniform(-5.0, 55.0)};
    for (double radius : {0.0, 0.8, 4.0, 12.0, 200.0}) {
      index.RangeQuery(center, radius, &got);
      EXPECT_EQ(got, BruteRange(points, center, radius))
          << "range probe " << probe << " r=" << radius;
    }
    const double x0 = rng.Uniform(-5.0, 55.0), x1 = rng.Uniform(-5.0, 55.0);
    const double y0 = rng.Uniform(-5.0, 55.0), y1 = rng.Uniform(-5.0, 55.0);
    const Rect rect{std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                    std::max(y0, y1)};
    index.RectQuery(rect, &got);
    EXPECT_EQ(got, BruteRect(points, rect)) << "rect probe " << probe;
    EXPECT_EQ(index.Nearest(center), BruteNearest(points, center))
        << "nearest probe " << probe;
  }
  // Degenerate rects: zero width/height lines and a point rect through an
  // actual data point must still honor inclusive Contains semantics.
  if (!points.empty()) {
    const Point& p = points[points.size() / 2];
    const Rect point_rect{p.x, p.y, p.x, p.y};
    index.RectQuery(point_rect, &got);
    EXPECT_EQ(got, BruteRect(points, point_rect));
    const Rect vline{p.x, -100.0, p.x, 100.0};
    index.RectQuery(vline, &got);
    EXPECT_EQ(got, BruteRect(points, vline));
    // Range query centered exactly on a data point with radius 0.
    index.RangeQuery(p, 0.0, &got);
    EXPECT_EQ(got, BruteRange(points, p, 0.0));
  }
  // Far-away probes (everything out of range / out of rect).
  index.RangeQuery(Point{1e6, 1e6}, 1.0, &got);
  EXPECT_TRUE(got.empty());
  index.RectQuery(Rect{1e6, 1e6, 1e6 + 1, 1e6 + 1}, &got);
  EXPECT_TRUE(got.empty());
}

std::vector<Point> UniformPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(Point{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)});
  }
  return points;
}

std::vector<Point> ClusteredPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  const Point centers[] = {{5, 5}, {45, 45}, {5, 45}};
  for (int i = 0; i < n; ++i) {
    const Point& c = centers[i % 3];
    points.push_back(Point{rng.Normal(c.x, 0.7), rng.Normal(c.y, 0.7)});
  }
  return points;
}

struct NamedPoints {
  const char* name;
  std::vector<Point> points;
};

std::vector<NamedPoints> AdversarialSets() {
  std::vector<NamedPoints> sets;
  sets.push_back({"empty", {}});
  sets.push_back({"single", {Point{3.0, 4.0}}});
  std::vector<Point> dup(40, Point{10.0, 20.0});
  sets.push_back({"all-duplicates", dup});
  std::vector<Point> collinear_x;
  for (int i = 0; i < 50; ++i) collinear_x.push_back(Point{i * 1.0, 7.0});
  sets.push_back({"collinear-x", collinear_x});
  std::vector<Point> collinear_y;
  for (int i = 0; i < 50; ++i) collinear_y.push_back(Point{-3.0, i * 0.5});
  sets.push_back({"collinear-y", collinear_y});
  std::vector<Point> diagonal;
  for (int i = 0; i < 50; ++i) diagonal.push_back(Point{i * 1.0, i * 1.0});
  sets.push_back({"diagonal", diagonal});
  // Duplicates mixed with distinct points: nearest must tie-break to the
  // lowest index.
  std::vector<Point> mixed = dup;
  mixed.push_back(Point{10.0, 21.0});
  mixed.insert(mixed.begin(), Point{10.0, 19.0});
  sets.push_back({"duplicates-plus", mixed});
  return sets;
}

TEST(SpatialIndexTest, GridMatchesBruteForceOnRandomInputs) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::vector<Point> points = UniformPoints(400, seed);
    UniformGridIndex grid(points);
    CheckIndexAgainstBruteForce(grid, points, 100 + seed);
  }
}

TEST(SpatialIndexTest, KdTreeMatchesBruteForceOnRandomInputs) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::vector<Point> points = UniformPoints(400, seed);
    KdTreeIndex tree(points);
    CheckIndexAgainstBruteForce(tree, points, 100 + seed);
  }
}

TEST(SpatialIndexTest, BothMatchBruteForceOnClusteredInputs) {
  const std::vector<Point> points = ClusteredPoints(300, 7);
  UniformGridIndex grid(points);
  KdTreeIndex tree(points);
  CheckIndexAgainstBruteForce(grid, points, 11);
  CheckIndexAgainstBruteForce(tree, points, 11);
}

TEST(SpatialIndexTest, AdversarialInputs) {
  for (const NamedPoints& set : AdversarialSets()) {
    SCOPED_TRACE(set.name);
    UniformGridIndex grid(set.points);
    KdTreeIndex tree(set.points);
    CheckIndexAgainstBruteForce(grid, set.points, 23);
    CheckIndexAgainstBruteForce(tree, set.points, 23);
    if (set.points.empty()) {
      EXPECT_EQ(grid.Nearest(Point{0, 0}), -1);
      EXPECT_EQ(tree.Nearest(Point{0, 0}), -1);
    }
  }
}

TEST(SpatialIndexTest, NearestTieBreaksToLowestIndex) {
  // Two points equidistant from the probe; the lower index must win in
  // both implementations (matching the ascending brute-force scan).
  const std::vector<Point> points{Point{0.0, 1.0}, Point{0.0, -1.0},
                                  Point{0.0, 1.0}};
  UniformGridIndex grid(points);
  KdTreeIndex tree(points);
  EXPECT_EQ(grid.Nearest(Point{0.0, 0.0}), 0);
  EXPECT_EQ(tree.Nearest(Point{0.0, 0.0}), 0);
}

TEST(SpatialIndexTest, AutoFactoryPicksGridForDenseUniformPopulations) {
  const std::vector<Point> points = UniformPoints(2000, 9);
  const auto index = BuildSpatialIndexAuto(points);
  EXPECT_STREQ(index->Name(), "uniform-grid");
  CheckIndexAgainstBruteForce(*index, points, 31);
}

TEST(SpatialIndexTest, AutoFactoryPicksKdTreeForHeavilyClusteredPopulations) {
  // Three tight clusters in a huge otherwise-empty bounding box: the
  // auto-sized grid is almost entirely empty cells.
  Rng rng(13);
  std::vector<Point> points;
  const Point centers[] = {{0, 0}, {1000, 1000}, {0, 1000}};
  for (int i = 0; i < 600; ++i) {
    const Point& c = centers[i % 3];
    points.push_back(Point{rng.Normal(c.x, 0.5), rng.Normal(c.y, 0.5)});
  }
  const auto index = BuildSpatialIndexAuto(points);
  EXPECT_STREQ(index->Name(), "kd-tree");
  std::vector<int> got;
  index->RangeQuery(Point{0, 0}, 3.0, &got);
  EXPECT_EQ(got, BruteRange(points, Point{0, 0}, 3.0));
}

// ---------------------------------------------------------------------------
// Dynamic indexes (src/index/dynamic_index.h): Insert/Remove/Move must keep
// every probe exactly equal to a brute-force scan of the live set — and to
// a freshly built static index — through arbitrary churn histories.
// ---------------------------------------------------------------------------

/// Mirror of a dynamic index's live set, with brute-force probes.
class LiveSet {
 public:
  void Insert(int id, const Point& p) { points_[id] = p; }
  void Remove(int id) { points_.erase(id); }

  std::vector<int> Range(const Point& center, double radius) const {
    std::vector<int> out;
    for (const auto& [id, p] : points_) {
      if (Distance(p, center) <= radius) out.push_back(id);
    }
    return out;
  }
  std::vector<int> InRect(const Rect& rect) const {
    std::vector<int> out;
    for (const auto& [id, p] : points_) {
      if (rect.Contains(p)) out.push_back(id);
    }
    return out;
  }
  int Nearest(const Point& q) const {
    int best = -1;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (const auto& [id, p] : points_) {
      const double dx = p.x - q.x;
      const double dy = p.y - q.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best_d2) {
        best_d2 = d2;
        best = id;
      }
    }
    return best;
  }
  int size() const { return static_cast<int>(points_.size()); }
  const std::map<int, Point>& points() const { return points_; }

 private:
  std::map<int, Point> points_;  // ordered: brute results ascend by id
};

void CheckDynamicAgainstLiveSet(const SpatialIndex& index, const LiveSet& live,
                                uint64_t seed) {
  ASSERT_EQ(index.size(), live.size());
  Rng rng(seed);
  std::vector<int> got;
  for (int probe = 0; probe < 10; ++probe) {
    const Point center{rng.Uniform(-5.0, 55.0), rng.Uniform(-5.0, 55.0)};
    for (double radius : {0.0, 2.0, 9.0, 100.0}) {
      index.RangeQuery(center, radius, &got);
      EXPECT_EQ(got, live.Range(center, radius)) << "r=" << radius;
    }
    const double x0 = rng.Uniform(-5.0, 55.0), x1 = rng.Uniform(-5.0, 55.0);
    const double y0 = rng.Uniform(-5.0, 55.0), y1 = rng.Uniform(-5.0, 55.0);
    const Rect rect{std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                    std::max(y0, y1)};
    index.RectQuery(rect, &got);
    EXPECT_EQ(got, live.InRect(rect)) << "rect probe " << probe;
    EXPECT_EQ(index.Nearest(center), live.Nearest(center)) << "probe " << probe;
  }
}

/// Random interleaving of inserts, removes, and moves over a sparse id
/// space, verified against the live set after every batch.
void ChurnAndVerify(SpatialIndex* index, uint64_t seed) {
  Rng rng(seed);
  LiveSet live;
  std::vector<int> ids;
  for (int batch = 0; batch < 12; ++batch) {
    for (int op = 0; op < 40; ++op) {
      const int roll = static_cast<int>(rng.UniformInt(0, 99));
      if (roll < 45 || ids.empty()) {
        const int id = static_cast<int>(rng.UniformInt(0, 999));
        const Point p{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
        if (live.points().count(id) == 0) {
          ids.push_back(id);
          EXPECT_TRUE(index->Insert(id, p));
          live.Insert(id, p);
        }
      } else if (roll < 70) {
        const size_t k = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1));
        const int id = ids[k];
        ids[k] = ids.back();
        ids.pop_back();
        EXPECT_TRUE(index->Remove(id));
        live.Remove(id);
      } else {
        const size_t k = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1));
        const Point p{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
        EXPECT_TRUE(index->Move(ids[k], p));
        live.Insert(ids[k], p);  // overwrite position
      }
    }
    CheckDynamicAgainstLiveSet(*index, live, seed + batch);
  }
}

TEST(DynamicIndexTest, GridMatchesBruteForceUnderChurn) {
  DynamicGridIndex grid(Rect{0, 0, 50, 50}, 400);
  ChurnAndVerify(&grid, 101);
}

TEST(DynamicIndexTest, BufferedKdTreeMatchesBruteForceUnderChurn) {
  // The churn equilibrium stays under RebuildThreshold(), so this
  // exercises the tombstone/buffer delta paths; the snapshot-rebuild
  // crossing is pinned by BufferedKdTreeRebuildPreservesResults below.
  BufferedKdTreeIndex tree;
  ChurnAndVerify(&tree, 202);
}

TEST(DynamicIndexTest, AutoPolicyMatchesBruteForceUnderChurn) {
  DynamicSpatialIndex index(Rect{0, 0, 50, 50}, SlotIndexPolicy::kAuto, 400);
  ChurnAndVerify(&index, 303);
}

TEST(DynamicIndexTest, BufferedKdTreeRebuildPreservesResults) {
  // Deterministic crossing of the rebuild threshold: results before and
  // after the snapshot fold must be identical for the same probes.
  std::vector<std::pair<int, Point>> initial;
  Rng rng(17);
  LiveSet live;
  for (int id = 0; id < 300; ++id) {
    const Point p{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    initial.emplace_back(id, p);
    live.Insert(id, p);
  }
  BufferedKdTreeIndex tree(initial);
  const int64_t rebuilds_at_start = tree.rebuilds();
  // Delete and insert until the delta crosses RebuildThreshold().
  for (int id = 0; id < 200; ++id) {
    tree.Remove(id);
    live.Remove(id);
    const int fresh = 1000 + id;
    const Point p{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    tree.Insert(fresh, p);
    live.Insert(fresh, p);
  }
  EXPECT_GT(tree.rebuilds(), rebuilds_at_start);
  CheckDynamicAgainstLiveSet(tree, live, 404);
}

TEST(DynamicIndexTest, AutoPolicyRechoosesBackendWhenDensityDrifts) {
  // Dense uniform load → grid. Collapse to three tight clusters in a huge
  // empty box → after enough churn the auto policy must migrate to the
  // buffered k-d tree, preserving exact results throughout.
  const Rect bounds{0, 0, 1000, 1000};
  DynamicSpatialIndex index(bounds, SlotIndexPolicy::kAuto, 2000);
  Rng rng(23);
  LiveSet live;
  for (int id = 0; id < 2000; ++id) {
    const Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    index.Insert(id, p);
    live.Insert(id, p);
  }
  EXPECT_STREQ(index.Name(), "dynamic-grid");

  for (int id = 0; id < 2000; ++id) {
    index.Remove(id);
    live.Remove(id);
  }
  const Point centers[] = {{1, 1}, {999, 999}, {1, 999}};
  for (int id = 3000; id < 3600; ++id) {
    const Point& c = centers[id % 3];
    const Point p = bounds.Clamp(
        Point{rng.Normal(c.x, 0.5), rng.Normal(c.y, 0.5)});
    index.Insert(id, p);
    live.Insert(id, p);
  }
  EXPECT_STREQ(index.Name(), "kd-buffered");
  CheckDynamicAgainstLiveSet(index, live, 505);
}

TEST(DynamicIndexTest, StaticIndexesRejectDynamicOps) {
  const std::vector<Point> points{{1, 1}, {2, 2}};
  UniformGridIndex grid(points);
  KdTreeIndex tree(points);
  EXPECT_FALSE(grid.Insert(5, Point{3, 3}));
  EXPECT_FALSE(grid.Remove(0));
  EXPECT_FALSE(grid.Move(0, Point{4, 4}));
  EXPECT_FALSE(tree.Insert(5, Point{3, 3}));
  EXPECT_FALSE(tree.Remove(0));
  EXPECT_FALSE(tree.Move(0, Point{4, 4}));
}

TEST(SpatialIndexTest, AttachSlotIndexHonorsPolicy) {
  Rng rng(17);
  SlotContext slot;
  slot.dmax = 5.0;
  for (int i = 0; i < 64; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
    slot.sensors.push_back(s);
  }

  slot.index_policy = SlotIndexPolicy::kNone;
  AttachSlotIndex(slot);
  EXPECT_EQ(slot.index, nullptr);

  slot.index_policy = SlotIndexPolicy::kAuto;
  AttachSlotIndex(slot);
  ASSERT_NE(slot.index, nullptr);
  EXPECT_EQ(slot.index->size(), 64);

  slot.index_policy = SlotIndexPolicy::kGrid;
  AttachSlotIndex(slot);
  EXPECT_STREQ(slot.index->Name(), "uniform-grid");

  slot.index_policy = SlotIndexPolicy::kKdTree;
  AttachSlotIndex(slot);
  EXPECT_STREQ(slot.index->Name(), "kd-tree");

  // kAuto skips tiny populations (below kSlotIndexAutoThreshold).
  SlotContext tiny;
  tiny.sensors.resize(kSlotIndexAutoThreshold - 1);
  for (int i = 0; i < static_cast<int>(tiny.sensors.size()); ++i) {
    tiny.sensors[i].index = i;
    tiny.sensors[i].location = Point{static_cast<double>(i), 0.0};
  }
  tiny.index_policy = SlotIndexPolicy::kAuto;
  AttachSlotIndex(tiny);
  EXPECT_EQ(tiny.index, nullptr);
}

}  // namespace
}  // namespace psens
