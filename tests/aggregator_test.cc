#include "core/aggregator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mobility/random_waypoint.h"
#include "sim/workload.h"

namespace psens {
namespace {

Trace SmallTrace(int slots) {
  RandomWaypointConfig config;
  config.num_sensors = 40;
  config.num_slots = slots;
  config.region_size = 30.0;
  config.seed = 3;
  return GenerateRandomWaypoint(config);
}

Aggregator MakeAggregator(int slots, bool greedy = true) {
  Rng rng(9);
  SensorPopulationConfig population;
  population.count = 40;
  population.lifetime = slots;
  Aggregator::Config config;
  config.working_region = Rect{0, 0, 30, 30};
  config.dmax = 5.0;
  config.use_greedy = greedy;
  return Aggregator(GenerateSensors(population, rng), config);
}

TEST(AggregatorTest, AnswersSubmittedPointQueries) {
  const Trace trace = SmallTrace(3);
  Aggregator aggregator = MakeAggregator(3);
  Rng rng(5);
  for (const PointQuery& q :
       GeneratePointQueries(20, Rect{0, 0, 30, 30},
                            BudgetScheme{20.0, false, 0.0}, 0.2, 0, rng)) {
    aggregator.SubmitPointQuery(q);
  }
  const QueryMixSlotResult r = aggregator.RunSlot(trace, 0);
  EXPECT_EQ(r.point.total, 20);
  EXPECT_GT(r.point.answered, 0);
  EXPECT_GT(aggregator.TotalWelfare(), 0.0);
  EXPECT_EQ(aggregator.SlotsRun(), 1);
}

TEST(AggregatorTest, QueuesClearAfterSlot) {
  const Trace trace = SmallTrace(3);
  Aggregator aggregator = MakeAggregator(3);
  PointQuery q;
  q.location = Point{10, 10};
  q.budget = 20.0;
  aggregator.SubmitPointQuery(q);
  (void)aggregator.RunSlot(trace, 0);
  // Next slot has no queries: nothing scheduled, no cost.
  const QueryMixSlotResult empty = aggregator.RunSlot(trace, 1);
  EXPECT_EQ(empty.point.total, 0);
  EXPECT_DOUBLE_EQ(empty.total_cost, 0.0);
}

TEST(AggregatorTest, SelectedSensorsConsumeReadings) {
  const Trace trace = SmallTrace(3);
  Aggregator aggregator = MakeAggregator(3);
  Rng rng(7);
  for (const PointQuery& q :
       GeneratePointQueries(30, Rect{0, 0, 30, 30},
                            BudgetScheme{25.0, false, 0.0}, 0.2, 0, rng)) {
    aggregator.SubmitPointQuery(q);
  }
  const QueryMixSlotResult r = aggregator.RunSlot(trace, 0);
  ASSERT_FALSE(r.selected_sensors.empty());
  int consumed = 0;
  for (const Sensor& s : aggregator.sensors()) consumed += s.readings_taken();
  EXPECT_EQ(consumed, static_cast<int>(r.selected_sensors.size()));
}

TEST(AggregatorTest, AggregateQueriesFlowThrough) {
  const Trace trace = SmallTrace(2);
  Aggregator aggregator = MakeAggregator(2);
  AggregateQuery::Params params;
  params.id = 1;
  params.region = Rect{5, 5, 25, 25};
  params.budget = 200.0;
  params.sensing_range = 10.0;
  aggregator.SubmitAggregateQuery(params);
  const QueryMixSlotResult r = aggregator.RunSlot(trace, 0);
  EXPECT_EQ(r.aggregate.total, 1);
  EXPECT_GT(r.aggregate.value, 0.0);
}

TEST(AggregatorTest, MonitoringManagerDrivenAcrossSlots) {
  const Trace trace = SmallTrace(6);
  Aggregator aggregator = MakeAggregator(6);
  std::vector<double> hist_times, hist_values;
  for (int i = 0; i < 6; ++i) {
    hist_times.push_back(i);
    hist_values.push_back(10.0 + i * 3.0);
  }
  LocationMonitoringManager manager(hist_times, hist_values,
                                    LocationMonitoringManager::Config{});
  LocationMonitoringQuery q;
  q.id = 1;
  q.location = Point{15, 15};
  q.t1 = 0;
  q.t2 = 4;
  q.budget = 100.0;
  q.desired = {1, 3};
  manager.AddQuery(q);
  aggregator.AttachLocationMonitoring(&manager);
  for (int t = 0; t < 6; ++t) (void)aggregator.RunSlot(trace, t);
  // The query expired inside the run and was folded into the statistics.
  EXPECT_TRUE(manager.queries().empty());
  EXPECT_EQ(manager.num_completed(), 1);
}

TEST(AggregatorTest, GreedyWelfareAtLeastBaseline) {
  const Trace trace = SmallTrace(4);
  Aggregator greedy = MakeAggregator(4, /*greedy=*/true);
  Aggregator baseline = MakeAggregator(4, /*greedy=*/false);
  Rng rng(11);
  const auto queries = GeneratePointQueries(
      40, Rect{0, 0, 30, 30}, BudgetScheme{8.0, false, 0.0}, 0.2, 0, rng);
  for (int t = 0; t < 4; ++t) {
    for (const PointQuery& q : queries) {
      greedy.SubmitPointQuery(q);
      baseline.SubmitPointQuery(q);
    }
    (void)greedy.RunSlot(trace, t);
    (void)baseline.RunSlot(trace, t);
  }
  EXPECT_GE(greedy.TotalWelfare(), baseline.TotalWelfare());
}

}  // namespace
}  // namespace psens
