#include "core/point_scheduling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/workload.h"

namespace psens {
namespace {

SlotContext MakeSlot(int num_sensors, uint64_t seed, double dmax = 5.0,
                     double extent = 30.0) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = dmax;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = 100 + i;
    s.location = Point{rng.Uniform(0.0, extent), rng.Uniform(0.0, extent)};
    s.cost = 10.0;
    s.inaccuracy = rng.Uniform(0.0, 0.2);
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

std::vector<PointQuery> MakeQueries(int count, uint64_t seed, double budget = 15.0,
                                    double extent = 30.0) {
  Rng rng(seed);
  return GeneratePointQueries(count, Rect{0, 0, extent, extent},
                              BudgetScheme{budget, false, 0.0}, 0.2, 0, rng);
}

TEST(BuildPointProblemTest, GroupsQueriesByLocation) {
  SlotContext slot = MakeSlot(3, 1);
  std::vector<PointQuery> queries = MakeQueries(2, 2);
  queries.push_back(queries[0]);  // duplicate location
  std::vector<int> loc_of_query;
  const FacilityLocationProblem p = BuildPointProblem(queries, slot, &loc_of_query);
  EXPECT_EQ(p.num_locations, 2);
  EXPECT_EQ(loc_of_query[0], loc_of_query[2]);
  EXPECT_NE(loc_of_query[0], loc_of_query[1]);
}

TEST(BuildPointProblemTest, ValuesAreSumsOfColocatedQueryValues) {
  SlotContext slot = MakeSlot(1, 3);
  slot.sensors[0].location = Point{5, 5};
  slot.sensors[0].inaccuracy = 0.0;
  PointQuery q;
  q.location = Point{5, 5};
  q.budget = 10.0;
  q.theta_min = 0.2;
  std::vector<PointQuery> queries = {q, q};
  std::vector<int> loc_of_query;
  const FacilityLocationProblem p = BuildPointProblem(queries, slot, &loc_of_query);
  ASSERT_EQ(p.value[0].size(), 1u);
  EXPECT_DOUBLE_EQ(p.value[0][0].second, 20.0);  // two queries, theta = 1
}

TEST(BuildPointProblemTest, DropsBelowThresholdValues) {
  SlotContext slot = MakeSlot(1, 4);
  slot.sensors[0].location = Point{0, 0};
  PointQuery q;
  q.location = Point{4.5, 0};  // theta = 0.1 < theta_min
  q.budget = 10.0;
  q.theta_min = 0.2;
  std::vector<int> loc_of_query;
  const FacilityLocationProblem p = BuildPointProblem({q}, slot, &loc_of_query);
  EXPECT_TRUE(p.value[0].empty());
}

class SchedulerComparisonTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerComparisonTest, OptimalDominatesHeuristics) {
  const SlotContext slot = MakeSlot(12, 10 + GetParam());
  const std::vector<PointQuery> queries = MakeQueries(20, 20 + GetParam());
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kOptimal;
  const PointScheduleResult optimal = SchedulePointQueries(queries, slot, options);
  options.scheduler = PointScheduler::kLocalSearch;
  const PointScheduleResult ls = SchedulePointQueries(queries, slot, options);
  options.scheduler = PointScheduler::kBaseline;
  const PointScheduleResult baseline = SchedulePointQueries(queries, slot, options);
  ASSERT_TRUE(optimal.proven_optimal);
  EXPECT_GE(optimal.Utility() + 1e-9, ls.Utility());
  EXPECT_GE(optimal.Utility() + 1e-9, baseline.Utility());
}

INSTANTIATE_TEST_SUITE_P(RandomSlots, SchedulerComparisonTest,
                         ::testing::Range(0, 15));

class PaymentPropertiesTest : public ::testing::TestWithParam<int> {};

TEST_P(PaymentPropertiesTest, Equation11PaymentsCoverCostsExactly) {
  const SlotContext slot = MakeSlot(15, 30 + GetParam());
  const std::vector<PointQuery> queries = MakeQueries(25, 40 + GetParam());
  PointSchedulingOptions options;
  options.scheduler =
      GetParam() % 2 == 0 ? PointScheduler::kOptimal : PointScheduler::kLocalSearch;
  const PointScheduleResult result = SchedulePointQueries(queries, slot, options);

  // For each selected sensor: payments of the queries it serves sum to its
  // cost (Eq. 11), and each query's payment is below its value (individual
  // rationality, Section 3.1.1).
  std::vector<double> collected(slot.sensors.size(), 0.0);
  for (const PointAssignment& a : result.assignments) {
    if (!a.satisfied()) continue;
    collected[a.sensor] += a.payment;
    EXPECT_LT(a.payment, a.value + 1e-9);
    EXPECT_GE(a.payment, 0.0);
  }
  for (int si : result.selected_sensors) {
    EXPECT_NEAR(collected[si], slot.sensors[si].cost, 1e-6) << "sensor " << si;
  }
  // Total utility equals total value minus total cost.
  EXPECT_NEAR(result.Utility(), result.total_value - result.total_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSlots, PaymentPropertiesTest,
                         ::testing::Range(0, 12));

TEST(PointSchedulingTest, NoSensorsMeansNothingScheduled) {
  SlotContext slot;
  slot.dmax = 5.0;
  const std::vector<PointQuery> queries = MakeQueries(5, 50);
  for (const PointScheduler scheduler :
       {PointScheduler::kOptimal, PointScheduler::kLocalSearch,
        PointScheduler::kBaseline}) {
    PointSchedulingOptions options;
    options.scheduler = scheduler;
    const PointScheduleResult r = SchedulePointQueries(queries, slot, options);
    EXPECT_EQ(r.NumSatisfied(), 0);
    EXPECT_DOUBLE_EQ(r.Utility(), 0.0);
  }
}

TEST(PointSchedulingTest, NoQueriesMeansNoCost) {
  const SlotContext slot = MakeSlot(10, 60);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kOptimal;
  const PointScheduleResult r = SchedulePointQueries({}, slot, options);
  EXPECT_TRUE(r.selected_sensors.empty());
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

TEST(PointSchedulingTest, BaselineZeroWhenBudgetBelowCost) {
  // Budget 7, perfect sensor: value <= 7 < cost 10, so the baseline (which
  // needs a single query to cover the full sensor price) answers nothing.
  SlotContext slot = MakeSlot(5, 70);
  const std::vector<PointQuery> queries = MakeQueries(10, 71, /*budget=*/7.0);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kBaseline;
  const PointScheduleResult r = SchedulePointQueries(queries, slot, options);
  EXPECT_EQ(r.NumSatisfied(), 0);
  EXPECT_DOUBLE_EQ(r.Utility(), 0.0);
}

TEST(PointSchedulingTest, SharingAnswersWhatBaselineCannot) {
  // Many co-located queries of budget 7 jointly exceed the sensor cost:
  // the optimizing schedulers answer them, the baseline cannot.
  SlotContext slot = MakeSlot(1, 80);
  slot.sensors[0].location = Point{10, 10};
  slot.sensors[0].inaccuracy = 0.0;
  PointQuery q;
  q.location = Point{10, 10};
  q.budget = 7.0;
  q.theta_min = 0.2;
  const std::vector<PointQuery> queries(4, q);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kOptimal;
  const PointScheduleResult optimal = SchedulePointQueries(queries, slot, options);
  EXPECT_EQ(optimal.NumSatisfied(), 4);
  EXPECT_NEAR(optimal.Utility(), 4 * 7.0 - 10.0, 1e-9);
  options.scheduler = PointScheduler::kBaseline;
  const PointScheduleResult baseline = SchedulePointQueries(queries, slot, options);
  EXPECT_EQ(baseline.NumSatisfied(), 0);
}

TEST(PointSchedulingTest, AssignmentQualityMatchesEquation4) {
  SlotContext slot = MakeSlot(1, 90);
  slot.sensors[0].location = Point{10, 10};
  slot.sensors[0].inaccuracy = 0.1;
  PointQuery q;
  q.location = Point{12, 10};  // distance 2, dmax 5
  q.budget = 30.0;
  q.theta_min = 0.2;
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kOptimal;
  const PointScheduleResult r = SchedulePointQueries({q}, slot, options);
  ASSERT_EQ(r.NumSatisfied(), 1);
  EXPECT_NEAR(r.assignments[0].quality, 0.9 * (1.0 - 2.0 / 5.0), 1e-12);
  EXPECT_NEAR(r.assignments[0].value, 30.0 * r.assignments[0].quality, 1e-12);
}

TEST(PointSchedulingTest, RandomizedLocalSearchRuns) {
  const SlotContext slot = MakeSlot(15, 91);
  const std::vector<PointQuery> queries = MakeQueries(30, 92);
  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kRandomizedLocalSearch;
  options.restarts = 4;
  const PointScheduleResult r = SchedulePointQueries(queries, slot, options);
  EXPECT_GE(r.Utility(), 0.0);
}

}  // namespace
}  // namespace psens
