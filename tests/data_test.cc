#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/gaussian_field.h"
#include "data/ozone_trace.h"

namespace psens {
namespace {

TEST(GaussianFieldTest, DimensionsMatchConfig) {
  GaussianField::Config config;
  config.width = 10;
  config.height = 8;
  config.num_slots = 5;
  const GaussianField field(config);
  EXPECT_EQ(field.width(), 10);
  EXPECT_EQ(field.height(), 8);
  EXPECT_EQ(field.num_slots(), 5);
}

TEST(GaussianFieldTest, ValueLooksUpContainingCell) {
  GaussianField::Config config;
  config.width = 4;
  config.height = 4;
  config.num_slots = 2;
  const GaussianField field(config);
  EXPECT_DOUBLE_EQ(field.Value(0, Point{1.5, 2.5}), field.CellValue(0, 1, 2));
  // Out-of-grid points clamp.
  EXPECT_DOUBLE_EQ(field.Value(0, Point{-5, 100}), field.CellValue(0, 0, 3));
}

TEST(GaussianFieldTest, ValuesCenteredAroundMean) {
  GaussianField::Config config;
  config.mean = 20.0;
  config.variance = 4.0;
  const GaussianField field(config);
  RunningStat stat;
  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) stat.Add(field.CellValue(0, x, y));
  }
  EXPECT_NEAR(stat.Mean(), 20.0, 4.0);  // within ~2 sigma of the field mean
}

TEST(GaussianFieldTest, NearbyCellsCorrelateMoreThanFarCells) {
  GaussianField::Config config;
  config.width = 20;
  config.height = 15;
  config.num_slots = 40;
  config.length_scale = 4.0;
  const GaussianField field(config);
  // Correlate time series of neighboring vs distant cells.
  auto correlation = [&](int x1, int y1, int x2, int y2) {
    RunningStat a, b;
    double cross = 0.0;
    for (int t = 0; t < config.num_slots; ++t) {
      a.Add(field.CellValue(t, x1, y1));
      b.Add(field.CellValue(t, x2, y2));
    }
    for (int t = 0; t < config.num_slots; ++t) {
      cross += (field.CellValue(t, x1, y1) - a.Mean()) *
               (field.CellValue(t, x2, y2) - b.Mean());
    }
    return cross / (config.num_slots * a.StdDev() * b.StdDev() + 1e-12);
  };
  EXPECT_GT(correlation(5, 5, 6, 5), correlation(5, 5, 19, 14));
}

TEST(GaussianFieldTest, TemporalEvolutionIsSmooth) {
  GaussianField::Config config;
  config.temporal_rho = 0.9;
  const GaussianField field(config);
  // Consecutive-slot differences should be far smaller than the field's
  // spatial spread.
  RunningStat diff, spread;
  for (int t = 1; t < config.num_slots; ++t) {
    diff.Add(std::abs(field.CellValue(t, 5, 5) - field.CellValue(t - 1, 5, 5)));
  }
  for (int x = 0; x < config.width; ++x) {
    spread.Add(field.CellValue(0, x, 7));
  }
  EXPECT_LT(diff.Mean(), 2.0 * spread.StdDev() + 1.0);
}

TEST(GaussianFieldTest, KernelExposedForValuation) {
  const GaussianField field(GaussianField::Config{});
  ASSERT_NE(field.SpatialKernel(), nullptr);
  EXPECT_GT(field.SpatialKernel()->Variance(), 0.0);
}

TEST(OzoneTraceTest, LengthAndTimesSequential) {
  OzoneTraceConfig config;
  config.num_days = 3;
  config.slots_per_day = 40;
  const OzoneTrace trace = GenerateOzoneTrace(config);
  ASSERT_EQ(trace.times.size(), 120u);
  for (size_t i = 1; i < trace.times.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace.times[i] - trace.times[i - 1], 1.0);
  }
}

TEST(OzoneTraceTest, DiurnalShapeAfternoonAboveNight) {
  OzoneTraceConfig config;
  config.num_days = 1;
  config.slots_per_day = 50;
  config.noise_std = 0.5;
  const OzoneTrace trace = GenerateOzoneTrace(config);
  // Midday (around slot 25) must exceed the first slot (pre-sunrise).
  EXPECT_GT(trace.values[25], trace.values[0] + 10.0);
}

TEST(OzoneTraceTest, DaySliceRebasesTimes) {
  OzoneTraceConfig config;
  config.num_days = 2;
  config.slots_per_day = 10;
  const OzoneTrace trace = GenerateOzoneTrace(config);
  std::vector<double> t, v;
  trace.DaySlice(1, &t, &v);
  ASSERT_EQ(t.size(), 10u);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[9], 9.0);
  EXPECT_DOUBLE_EQ(v[3], trace.values[13]);
}

TEST(OzoneTraceTest, DeterministicForSeed) {
  OzoneTraceConfig config;
  const OzoneTrace a = GenerateOzoneTrace(config);
  const OzoneTrace b = GenerateOzoneTrace(config);
  EXPECT_EQ(a.values, b.values);
}

}  // namespace
}  // namespace psens
