#include "sim/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace psens {
namespace {

TEST(BudgetSchemeTest, FixedBudgetConstant) {
  Rng rng(1);
  const BudgetScheme scheme{15.0, false, 10.0};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(scheme.Draw(rng), 15.0);
}

TEST(BudgetSchemeTest, UniformBudgetWithinHalfwidth) {
  Rng rng(2);
  const BudgetScheme scheme{20.0, true, 10.0};
  for (int i = 0; i < 200; ++i) {
    const double b = scheme.Draw(rng);
    EXPECT_GE(b, 10.0);
    EXPECT_LT(b, 30.0);
  }
}

TEST(GeneratePointQueriesTest, CountLocationsAndIds) {
  Rng rng(3);
  const Rect region{10, 20, 30, 40};
  const auto queries =
      GeneratePointQueries(25, region, BudgetScheme{15, false, 0}, 0.2, 100, rng);
  ASSERT_EQ(queries.size(), 25u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].id, 100 + static_cast<int>(i));
    EXPECT_TRUE(region.Contains(queries[i].location));
    EXPECT_DOUBLE_EQ(queries[i].theta_min, 0.2);
    EXPECT_EQ(queries[i].parent, -1);
  }
}

TEST(RandomRectTest, AlwaysInsideBoundsWithMinExtent) {
  Rng rng(4);
  const Rect bounds{0, 0, 50, 30};
  for (int i = 0; i < 100; ++i) {
    const Rect r = RandomRect(bounds, 5.0, rng);
    EXPECT_GE(r.x_min, bounds.x_min);
    EXPECT_LE(r.x_max, bounds.x_max);
    EXPECT_GE(r.y_min, bounds.y_min);
    EXPECT_LE(r.y_max, bounds.y_max);
    EXPECT_GT(r.Area(), 0.0);
  }
}

TEST(GenerateAggregateQueriesTest, BudgetProportionalToAreaAndFactor) {
  Rng rng(5);
  const auto queries =
      GenerateAggregateQueries(10, Rect{0, 0, 100, 100}, 10.0, 20.0, 0, rng);
  ASSERT_FALSE(queries.empty());
  EXPECT_LE(queries.size(), 19u);  // uniform in [1, 2*mean-1]
  for (const auto& q : queries) {
    const double expected =
        q.region.Area() / (M_PI * 10.0 * 10.0) * 20.0;
    EXPECT_NEAR(q.budget, expected, 1e-9);
    EXPECT_DOUBLE_EQ(q.sensing_range, 10.0);
  }
}

TEST(GenerateSensorsTest, ProfilesWithinConfiguredRanges) {
  Rng rng(6);
  SensorPopulationConfig config;
  config.count = 100;
  config.random_privacy = true;
  config.linear_energy = true;
  config.beta_max = 4.0;
  config.lifetime = 25;
  const auto sensors = GenerateSensors(config, rng);
  ASSERT_EQ(sensors.size(), 100u);
  bool any_nonzero_privacy = false;
  for (const Sensor& s : sensors) {
    EXPECT_GE(s.profile().inaccuracy, 0.0);
    EXPECT_LE(s.profile().inaccuracy, 0.2);
    EXPECT_EQ(s.profile().lifetime, 25);
    EXPECT_EQ(s.profile().energy_model, EnergyCostModel::kLinear);
    EXPECT_GE(s.profile().energy_beta, 0.0);
    EXPECT_LE(s.profile().energy_beta, 4.0);
    if (s.profile().privacy != PrivacySensitivity::kZero) any_nonzero_privacy = true;
  }
  EXPECT_TRUE(any_nonzero_privacy);
}

TEST(GenerateSensorsTest, DefaultsAreFullyTrustedFixedCost) {
  Rng rng(7);
  SensorPopulationConfig config;
  config.count = 10;
  const auto sensors = GenerateSensors(config, rng);
  for (const Sensor& s : sensors) {
    EXPECT_DOUBLE_EQ(s.profile().trust, 1.0);
    EXPECT_EQ(s.profile().energy_model, EnergyCostModel::kFixed);
    EXPECT_EQ(s.profile().privacy, PrivacySensitivity::kZero);
    EXPECT_DOUBLE_EQ(s.Cost(0), 10.0);
  }
}

TEST(GenerateLocationMonitoringQueryTest, ValidWindowAndDesiredTimes) {
  Rng rng(8);
  std::vector<double> t, v;
  for (int i = 0; i < 50; ++i) {
    t.push_back(i);
    v.push_back(i % 7);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const LocationMonitoringQuery q = GenerateLocationMonitoringQuery(
        trial, Rect{0, 0, 100, 100}, 10, 50, t, v, 15.0, rng);
    EXPECT_EQ(q.t1, 10);
    EXPECT_GE(q.t2, q.t1);
    EXPECT_LT(q.t2, 50);
    EXPECT_GT(q.budget, 0.0);
    ASSERT_FALSE(q.desired.empty());
    for (int d : q.desired) {
      EXPECT_GE(d, q.t1);
      EXPECT_LE(d, q.t2);
    }
  }
}

TEST(GenerateRegionMonitoringQueryTest, BudgetScalesWithAreaAndDuration) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const RegionMonitoringQuery q = GenerateRegionMonitoringQuery(
        trial, Rect{0, 0, 20, 15}, 5, 50, 2.0, 10.0, rng);
    EXPECT_GE(q.t1, 0);
    EXPECT_GE(q.t2, q.t1);
    EXPECT_GT(q.budget, 0.0);
    EXPECT_GT(q.region.Area(), 0.0);
    EXPECT_LE(q.region.x_max, 20.0);
    EXPECT_LE(q.region.y_max, 15.0);
  }
}

TEST(ChurnStreamTest, TracksMembershipAndStaysDeterministic) {
  SensorPopulationConfig population;
  population.count = 200;
  Rng rng(4);
  std::vector<Sensor> sensors = GenerateSensors(population, rng);
  const Rect field{0, 0, 30, 30};
  for (Sensor& s : sensors) {
    s.SetPosition(Point{rng.Uniform(0.0, 30.0), rng.Uniform(0.0, 30.0)}, true);
  }

  ChurnConfig config;
  config.arrival_rate = 10;
  config.departure_rate = 10;
  config.move_fraction = 0.05;
  config.price_jitter_fraction = 0.05;
  ChurnStream a(config, sensors, field);
  ChurnStream b(config, sensors, field);
  Rng rng_a(77);
  Rng rng_b(77);
  std::vector<char> live(sensors.size(), 1);
  for (int t = 0; t < 20; ++t) {
    const SensorDelta da = a.Next(rng_a);
    const SensorDelta db = b.Next(rng_b);
    // Identically constructed streams fed identical Rngs emit identical
    // deltas — every field of every event (the property the fig12
    // two-pass methodology rests on).
    ASSERT_EQ(da.departures, db.departures);
    ASSERT_EQ(da.arrivals.size(), db.arrivals.size());
    for (size_t i = 0; i < da.arrivals.size(); ++i) {
      ASSERT_EQ(da.arrivals[i].sensor_id, db.arrivals[i].sensor_id);
      ASSERT_EQ(da.arrivals[i].position.x, db.arrivals[i].position.x);
      ASSERT_EQ(da.arrivals[i].position.y, db.arrivals[i].position.y);
    }
    ASSERT_EQ(da.moves.size(), db.moves.size());
    for (size_t i = 0; i < da.moves.size(); ++i) {
      ASSERT_EQ(da.moves[i].sensor_id, db.moves[i].sensor_id);
      ASSERT_EQ(da.moves[i].position.x, db.moves[i].position.x);
      ASSERT_EQ(da.moves[i].position.y, db.moves[i].position.y);
    }
    ASSERT_EQ(da.price_changes.size(), db.price_changes.size());
    for (size_t i = 0; i < da.price_changes.size(); ++i) {
      ASSERT_EQ(da.price_changes[i].sensor_id, db.price_changes[i].sensor_id);
      ASSERT_EQ(da.price_changes[i].base_price, db.price_changes[i].base_price);
    }
    // Arrivals resurrect only parked sensors; departures only live ones
    // (a sensor arriving this slot may depart the same slot). Locations
    // stay inside the field.
    for (const SensorDelta::Placement& p : da.arrivals) {
      EXPECT_FALSE(live[p.sensor_id]) << "slot " << t;
      live[p.sensor_id] = 1;
      EXPECT_TRUE(field.Contains(p.position));
    }
    for (int id : da.departures) {
      EXPECT_TRUE(live[id]) << "slot " << t;
      live[id] = 0;
    }
    for (const SensorDelta::Placement& p : da.moves) {
      EXPECT_TRUE(live[p.sensor_id]) << "slot " << t;
      EXPECT_TRUE(field.Contains(p.position));
    }
    for (const SensorDelta::PriceChange& pc : da.price_changes) {
      EXPECT_TRUE(live[pc.sensor_id]) << "slot " << t;
      EXPECT_GT(pc.base_price, 0.0);
    }
  }
  const int expected_live = static_cast<int>(
      std::count(live.begin(), live.end(), static_cast<char>(1)));
  EXPECT_EQ(a.num_live(), expected_live);
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  Rng a(10), b(10);
  const auto qa = GeneratePointQueries(5, Rect{0, 0, 10, 10},
                                       BudgetScheme{15, true, 5}, 0.2, 0, a);
  const auto qb = GeneratePointQueries(5, Rect{0, 0, 10, 10},
                                       BudgetScheme{15, true, 5}, 0.2, 0, b);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(qa[i].location.x, qb[i].location.x);
    EXPECT_EQ(qa[i].budget, qb[i].budget);
  }
}

}  // namespace
}  // namespace psens
