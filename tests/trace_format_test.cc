// Trace-format pinning and decoder hardening. The golden trace under
// tests/data/ is a committed byte-for-byte fixture: encoding is defined
// little-endian with fixed-width fields, so the writer must reproduce it
// on every platform, and any format change must bump kTraceVersion and
// regenerate the fixture deliberately (see MakeGoldenData). The
// corruption tests feed the decoder truncated, magic-less, version-
// skewed, and count-overflowing inputs; every one must come back as a
// clean error — no crash, no out-of-bounds read (the CI sanitizer jobs
// run this file under ASan/UBSan).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "trace/trace_format.h"
#include "trace/trace_reader.h"
#include "trace/trace_writer.h"

namespace psens {
namespace {

std::string GoldenPath() {
  return std::string(PSENS_TEST_DATA_DIR) + "/golden_v1.trace";
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, got);
  }
  std::fclose(f);
  return true;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

/// The fixture's content — every field type and every record section
/// exercised, all values fixed literals so the encoding is identical on
/// any host. Regenerate the committed file by flipping
/// kRegenerateGolden below and running this test once from the repo.
TraceData MakeGoldenData() {
  TraceData data;
  data.header.registry_count = 64;
  data.header.registry_checksum = 0x0123456789ABCDEFull;
  data.header.dmax = 5.0;
  data.header.working_region = Rect{0.0, 0.0, 40.0, 40.0};
  data.header.approx_seed = 0x5EEDC0DE5EEDC0DEull;
  data.header.epsilon = 0.1;
  data.header.min_sample = 32;
  data.header.sample_hint = 0;

  TraceSlotRecord s0;
  s0.time = 0;
  s0.slot_seed = 0x1111111111111111ull;
  data.slots.push_back(s0);  // empty cold-build slot

  TraceSlotRecord s1;
  s1.time = 1;
  s1.slot_seed = 0x2222222222222222ull;
  s1.delta.arrivals.push_back(SensorDelta::Placement{3, Point{1.5, 2.5}});
  s1.delta.arrivals.push_back(SensorDelta::Placement{9, Point{10.0, 0.25}});
  s1.delta.departures.push_back(12);
  s1.delta.moves.push_back(SensorDelta::Placement{5, Point{7.75, 31.5}});
  s1.delta.price_changes.push_back(SensorDelta::PriceChange{8, 11.5});
  PointQuery q;
  q.id = 1001;
  q.location = Point{20.0, 21.0};
  q.budget = 15.0;
  q.theta_min = 0.2;
  q.parent = -1;
  s1.point_queries.push_back(q);
  q.id = 1002;
  q.location = Point{3.5, 38.0};
  q.parent = 77;
  s1.point_queries.push_back(q);
  AggregateQuery::Params a;
  a.id = 2001;
  a.region = Rect{5.0, 5.0, 30.0, 35.0};
  a.budget = 100.0;
  a.sensing_range = 10.0;
  a.cell_size = 5.0;
  s1.aggregate_queries.push_back(a);
  data.slots.push_back(s1);

  TraceSlotRecord s2;
  s2.time = 2;
  s2.slot_seed = 0x3333333333333333ull;
  s2.delta.departures.push_back(3);
  data.slots.push_back(s2);
  return data;
}

constexpr bool kRegenerateGolden = false;

void ExpectSameData(const TraceData& a, const TraceData& b) {
  EXPECT_EQ(a.header.registry_count, b.header.registry_count);
  EXPECT_EQ(a.header.registry_checksum, b.header.registry_checksum);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (size_t i = 0; i < a.slots.size(); ++i) {
    const TraceSlotRecord& x = a.slots[i];
    const TraceSlotRecord& y = b.slots[i];
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.slot_seed, y.slot_seed);
    EXPECT_EQ(x.delta.arrivals.size(), y.delta.arrivals.size());
    EXPECT_EQ(x.delta.departures, y.delta.departures);
    EXPECT_EQ(x.point_queries.size(), y.point_queries.size());
    EXPECT_EQ(x.aggregate_queries.size(), y.aggregate_queries.size());
  }
}

TEST(TraceFormatTest, WriterReproducesCommittedGoldenBytes) {
  if (kRegenerateGolden) {
    ASSERT_TRUE(WriteTraceFile(GoldenPath(), MakeGoldenData()));
  }
  const std::string tmp = TempPath("golden_rewrite.trace");
  ASSERT_TRUE(WriteTraceFile(tmp, MakeGoldenData()));
  std::string golden_bytes;
  std::string written_bytes;
  ASSERT_TRUE(ReadFileBytes(GoldenPath(), &golden_bytes))
      << "missing fixture " << GoldenPath();
  ASSERT_TRUE(ReadFileBytes(tmp, &written_bytes));
  EXPECT_EQ(golden_bytes.size(), written_bytes.size());
  EXPECT_TRUE(golden_bytes == written_bytes)
      << "the encoder no longer reproduces the committed v1 fixture — a "
         "format change must bump kTraceVersion and regenerate the golden "
         "trace deliberately";
  std::remove(tmp.c_str());
}

TEST(TraceFormatTest, GoldenReadRewriteRoundTripIsByteIdentical) {
  TraceData decoded;
  std::string error;
  ASSERT_TRUE(ReadTraceFile(GoldenPath(), &decoded, &error)) << error;
  ExpectSameData(MakeGoldenData(), decoded);

  const std::string tmp = TempPath("golden_roundtrip.trace");
  ASSERT_TRUE(WriteTraceFile(tmp, decoded));
  std::string golden_bytes;
  std::string rewritten_bytes;
  ASSERT_TRUE(ReadFileBytes(GoldenPath(), &golden_bytes));
  ASSERT_TRUE(ReadFileBytes(tmp, &rewritten_bytes));
  EXPECT_TRUE(golden_bytes == rewritten_bytes);
  std::remove(tmp.c_str());
}

TEST(TraceFormatTest, LiveWriterMatchesBatchWriter) {
  // TraceWriter (streaming, Finish-patched slot count) and WriteTraceFile
  // (batch) must agree byte for byte on the same content.
  const TraceData data = MakeGoldenData();
  const std::string tmp = TempPath("golden_live.trace");
  {
    auto writer = TraceWriter::Open(tmp, data.header);
    ASSERT_NE(writer, nullptr);
    for (const TraceSlotRecord& slot : data.slots) {
      writer->StageDelta(slot.delta);
      writer->BeginSlot(slot.time, slot.slot_seed);
      writer->StagePointQueries(slot.point_queries);
      writer->StageAggregateQueries(slot.aggregate_queries);
    }
    ASSERT_TRUE(writer->Finish());
    EXPECT_EQ(writer->slots_written(), static_cast<int>(data.slots.size()));
  }
  std::string golden_bytes;
  std::string live_bytes;
  ASSERT_TRUE(ReadFileBytes(GoldenPath(), &golden_bytes));
  ASSERT_TRUE(ReadFileBytes(tmp, &live_bytes));
  EXPECT_TRUE(golden_bytes == live_bytes);
  std::remove(tmp.c_str());
}

// ---------------------------------------------------------------------------
// Decoder hardening
// ---------------------------------------------------------------------------

class TraceCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ReadFileBytes(GoldenPath(), &bytes_));
    ASSERT_GT(bytes_.size(), kTraceHeaderBytes);
  }

  /// Writes `bytes` to a temp file and expects Load to fail cleanly with
  /// a message containing `expect_substr`.
  void ExpectLoadError(const std::string& bytes,
                       const std::string& expect_substr) {
    const std::string tmp = TempPath("corrupt.trace");
    ASSERT_TRUE(WriteFileBytes(tmp, bytes));
    TraceFile trace;
    std::string error;
    EXPECT_FALSE(trace.Load(tmp, &error));
    EXPECT_FALSE(error.empty());
    if (!expect_substr.empty()) {
      EXPECT_NE(error.find(expect_substr), std::string::npos)
          << "error was: " << error;
    }
    std::remove(tmp.c_str());
  }

  void PatchU32(std::string* bytes, size_t offset, uint32_t value) {
    std::string enc;
    AppendU32LE(value, &enc);
    std::memcpy(bytes->data() + offset, enc.data(), sizeof(uint32_t));
  }

  std::string bytes_;
};

TEST_F(TraceCorruptionTest, TruncatedAtEveryHeaderLength) {
  for (size_t len = 0; len < kTraceHeaderBytes; len += 7) {
    ExpectLoadError(bytes_.substr(0, len), "");
  }
}

TEST_F(TraceCorruptionTest, TruncatedInsideRecordStream) {
  // Cut mid-length-prefix: the header's slot-count bound check already
  // rejects it (3 claimed slots cannot fit in 2 bytes).
  ExpectLoadError(bytes_.substr(0, kTraceHeaderBytes + 2), "slot count");
  // Cut mid-record: reported as truncation, never read past the end.
  ExpectLoadError(bytes_.substr(0, bytes_.size() - 5), "truncated");
}

TEST_F(TraceCorruptionTest, BadMagicRejected) {
  std::string bad = bytes_;
  bad[0] = 'X';
  ExpectLoadError(bad, "magic");
}

TEST_F(TraceCorruptionTest, VersionSkewRejectedWithClearMessage) {
  std::string bad = bytes_;
  PatchU32(&bad, 8, kTraceVersionMax + 1);
  ExpectLoadError(bad, "version");
}

TEST_F(TraceCorruptionTest, OutOfRangeSlotCountRejected) {
  // A finalized header claiming more slots than any record stream of
  // this file size could hold.
  std::string bad = bytes_;
  PatchU32(&bad, 20, 0x10000000u);
  ExpectLoadError(bad, "slot");
}

TEST_F(TraceCorruptionTest, SlotCountRecordMismatchRejected) {
  std::string bad = bytes_;
  PatchU32(&bad, 20, 2);  // file holds 3 records
  ExpectLoadError(bad, "");
}

TEST_F(TraceCorruptionTest, BadSlotMagicRejected) {
  std::string bad = bytes_;
  PatchU32(&bad, kTraceHeaderBytes + 4, 0x41414141u);
  const std::string tmp = TempPath("corrupt_slotmagic.trace");
  ASSERT_TRUE(WriteFileBytes(tmp, bad));
  TraceFile trace;
  std::string error;
  // The frame chain is intact, so Load succeeds; decoding the record
  // reports the bad magic.
  ASSERT_TRUE(trace.Load(tmp, &error)) << error;
  TraceSlotRecord record;
  EXPECT_FALSE(trace.DecodeSlot(0, &record, &error));
  EXPECT_NE(error.find("slot 0"), std::string::npos) << error;
  std::remove(tmp.c_str());
}

TEST_F(TraceCorruptionTest, CountOverflowInsideRecordRejected) {
  // Patch the first record's arrival count to a value whose byte size
  // overflows 32 bits — the decoder's 64-bit bound check must catch it
  // without allocating or reading out of bounds.
  std::string bad = bytes_;
  PatchU32(&bad, kTraceHeaderBytes + 4 + 4 + 4 + 8, 0xFFFFFFFFu);
  const std::string tmp = TempPath("corrupt_count.trace");
  ASSERT_TRUE(WriteFileBytes(tmp, bad));
  TraceFile trace;
  std::string error;
  ASSERT_TRUE(trace.Load(tmp, &error)) << error;
  TraceSlotRecord record;
  EXPECT_FALSE(trace.DecodeSlot(0, &record, &error));
  EXPECT_FALSE(error.empty());
  std::remove(tmp.c_str());
}

TEST_F(TraceCorruptionTest, UnfinalizedTraceIsAcceptedWithCountedRecords) {
  // A writer that crashed before Finish leaves slot_count = kSlotCountOpen;
  // the reader must accept the trace and count the records itself.
  std::string unfinalized = bytes_;
  PatchU32(&unfinalized, 20, kSlotCountOpen);
  const std::string tmp = TempPath("unfinalized.trace");
  ASSERT_TRUE(WriteFileBytes(tmp, unfinalized));
  TraceFile trace;
  std::string error;
  ASSERT_TRUE(trace.Load(tmp, &error)) << error;
  EXPECT_EQ(trace.num_slots(), 3);
  std::remove(tmp.c_str());
}

TEST_F(TraceCorruptionTest, HeaderOnlyTraceHasZeroSlots) {
  std::string header_only = bytes_.substr(0, kTraceHeaderBytes);
  PatchU32(&header_only, 20, 0);
  const std::string tmp = TempPath("empty.trace");
  ASSERT_TRUE(WriteFileBytes(tmp, header_only));
  TraceFile trace;
  std::string error;
  ASSERT_TRUE(trace.Load(tmp, &error)) << error;
  EXPECT_EQ(trace.num_slots(), 0);
  TraceData data;
  ASSERT_TRUE(ReadTraceFile(tmp, &data, &error)) << error;
  EXPECT_TRUE(data.slots.empty());
  std::remove(tmp.c_str());
}

TEST(TraceFormatStandaloneTest, MissingFileIsACleanError) {
  TraceFile trace;
  std::string error;
  EXPECT_FALSE(trace.Load(TempPath("does_not_exist.trace"), &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

}  // namespace
}  // namespace psens
