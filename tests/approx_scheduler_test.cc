// Tests of the approximate schedulers (src/core/stochastic_greedy.h,
// src/core/sieve_streaming.h): guarantee-band checks against the exact
// engines on seeded submodular instances, sieve bucket-state correctness
// across churn slots, determinism under a fixed seed at 1/4/8 worker
// threads, and the Theorem 1 payment properties both engines inherit from
// Algorithm 1's proportional commit rule.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/sieve_streaming.h"
#include "core/stochastic_greedy.h"
#include "engine/acquisition_engine.h"
#include "mobility/random_waypoint.h"
#include "sim/experiments.h"
#include "sim/workload.h"

namespace psens {
namespace {

/// Slot with perfectly accurate, fully trusted sensors: every theta is 1,
/// so the Eq. 5 aggregate valuation degenerates to budget * coverage —
/// monotone submodular, the regime the approximation guarantees address.
SlotContext MakeUniformThetaSlot(int num_sensors, uint64_t seed) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 10.0;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
    s.cost = rng.Uniform(1.0, 4.0);
    s.inaccuracy = 0.0;
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

std::vector<std::unique_ptr<AggregateQuery>> MakeCoverageQueries(
    const SlotContext& slot, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<AggregateQuery>> queries;
  for (int i = 0; i < count; ++i) {
    AggregateQuery::Params params;
    params.id = i;
    params.region = RandomRect(Rect{0, 0, 40, 40}, 10.0, rng);
    params.budget = rng.Uniform(60.0, 120.0);
    params.sensing_range = 10.0;
    queries.push_back(std::make_unique<AggregateQuery>(params, slot));
  }
  return queries;
}

struct EngineRun {
  SelectionResult result;
  std::vector<double> payments;
  std::vector<double> values;
};

EngineRun RunEngine(const SlotContext& slot, int num_queries, uint64_t seed,
                    GreedyEngine engine) {
  auto queries = MakeCoverageQueries(slot, num_queries, seed);
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  EngineRun run;
  run.result = GreedySensorSelection(ptrs, slot, nullptr, engine);
  for (const auto& q : queries) {
    run.payments.push_back(q->TotalPayment());
    run.values.push_back(q->CurrentValue());
  }
  return run;
}

// ---------------------------------------------------------------------------
// Guarantee band
// ---------------------------------------------------------------------------

TEST(StochasticGreedyTest, UtilityWithinGuaranteeBandOfExact) {
  // On monotone submodular instances the stochastic engine's expected
  // utility is at least (1 - 1/e - epsilon) of exact greedy's; these
  // seeded instances must clear that band deterministically.
  const double epsilon = 0.1;
  const double band = 1.0 - 1.0 / 2.718281828459045 - epsilon;
  for (int trial = 0; trial < 12; ++trial) {
    SlotContext slot = MakeUniformThetaSlot(60, 500 + trial);
    slot.approx.epsilon = epsilon;
    const EngineRun exact =
        RunEngine(slot, 10, 900 + trial, GreedyEngine::kEager);
    const EngineRun stochastic =
        RunEngine(slot, 10, 900 + trial, GreedyEngine::kStochastic);
    ASSERT_GT(exact.result.Utility(), 0.0) << "degenerate trial " << trial;
    EXPECT_GE(stochastic.result.Utility(), band * exact.result.Utility())
        << "trial " << trial;
  }
}

TEST(SieveStreamingTest, UtilityWithinBandOfExact) {
  // Sieve streaming carries a (1/2 - epsilon) worst-case factor; the
  // floor bucket (single-pass accept-any-positive greedy) keeps seeded
  // coverage instances comfortably above it.
  for (int trial = 0; trial < 12; ++trial) {
    SlotContext slot = MakeUniformThetaSlot(60, 1500 + trial);
    const EngineRun exact =
        RunEngine(slot, 10, 1900 + trial, GreedyEngine::kEager);
    const EngineRun sieve =
        RunEngine(slot, 10, 1900 + trial, GreedyEngine::kSieve);
    ASSERT_GT(exact.result.Utility(), 0.0) << "degenerate trial " << trial;
    EXPECT_GE(sieve.result.Utility(), 0.4 * exact.result.Utility())
        << "trial " << trial;
  }
}

TEST(ApproxSchedulerTest, PaymentsCoverCostAndIndividualRationalityHolds) {
  // Theorem 1 properties depend only on committing positive-net sensors
  // with proportional payments, which both approximate engines share.
  for (GreedyEngine engine :
       {GreedyEngine::kStochastic, GreedyEngine::kSieve}) {
    for (int trial = 0; trial < 6; ++trial) {
      const SlotContext slot = MakeUniformThetaSlot(40, 300 + trial);
      auto queries = MakeCoverageQueries(slot, 8, 400 + trial);
      std::vector<MultiQuery*> ptrs;
      for (auto& q : queries) ptrs.push_back(q.get());
      const SelectionResult result =
          GreedySensorSelection(ptrs, slot, nullptr, engine);
      if (!result.selected_sensors.empty()) {
        EXPECT_GT(result.Utility(), 0.0);
      }
      double total_payment = 0.0;
      for (const auto& q : queries) {
        EXPECT_GE(q->CurrentValue() + 1e-9, q->TotalPayment());
        total_payment += q->TotalPayment();
      }
      EXPECT_NEAR(total_payment, result.total_cost, 1e-6);
    }
  }
}

TEST(StochasticGreedyTest, EvaluatesFarFewerCandidatesThanEagerOnLargeSlots) {
  const SlotContext slot = MakeUniformThetaSlot(400, 42);
  const EngineRun exact = RunEngine(slot, 12, 43, GreedyEngine::kEager);
  const EngineRun stochastic =
      RunEngine(slot, 12, 43, GreedyEngine::kStochastic);
  EXPECT_LT(stochastic.result.valuation_calls,
            exact.result.valuation_calls / 2);
}

// ---------------------------------------------------------------------------
// Determinism: fixed seed, any thread count, reproducible sample stream
// ---------------------------------------------------------------------------

void ExpectSameRun(const EngineRun& a, const EngineRun& b,
                   const char* context) {
  EXPECT_EQ(a.result.selected_sensors, b.result.selected_sensors) << context;
  EXPECT_EQ(a.result.total_value, b.result.total_value) << context;
  EXPECT_EQ(a.result.total_cost, b.result.total_cost) << context;
  EXPECT_EQ(a.result.valuation_calls, b.result.valuation_calls) << context;
  ASSERT_EQ(a.payments.size(), b.payments.size()) << context;
  for (size_t i = 0; i < a.payments.size(); ++i) {
    EXPECT_EQ(a.payments[i], b.payments[i]) << context << " query " << i;
    EXPECT_EQ(a.values[i], b.values[i]) << context << " query " << i;
  }
}

TEST(ApproxSchedulerTest, DeterministicUnderFixedSeedAtOneFourEightThreads) {
  for (GreedyEngine engine :
       {GreedyEngine::kStochastic, GreedyEngine::kSieve}) {
    SlotContext slot = MakeUniformThetaSlot(120, 77);
    slot.approx.seed = 2024;
    const EngineRun serial = RunEngine(slot, 12, 88, engine);
    for (int threads : {4, 8}) {
      ThreadPool pool(threads);
      slot.pool = &pool;
      const EngineRun parallel = RunEngine(slot, 12, 88, engine);
      ExpectSameRun(serial, parallel,
                    engine == GreedyEngine::kStochastic ? "stochastic"
                                                        : "sieve");
    }
    slot.pool = nullptr;
  }
}

TEST(StochasticGreedyTest, SlotSeedDerivationIsStableAndPinnable) {
  ApproxParams params;
  params.seed = 7;
  const uint64_t s5 = ApproxSlotSeed(params, 5);
  EXPECT_EQ(s5, ApproxSlotSeed(params, 5));
  EXPECT_NE(s5, ApproxSlotSeed(params, 6));
  params.slot_seed = 1234;
  EXPECT_EQ(ApproxSlotSeed(params, 5), 1234u);

  // Same slot, same seed: identical selection. Different slot time:
  // an independent sample stream (the selections may or may not differ,
  // but the derivation must be reproducible for each).
  SlotContext slot = MakeUniformThetaSlot(80, 11);
  slot.approx.seed = 99;
  const EngineRun a = RunEngine(slot, 8, 12, GreedyEngine::kStochastic);
  const EngineRun b = RunEngine(slot, 8, 12, GreedyEngine::kStochastic);
  ExpectSameRun(a, b, "same slot seed");
}

TEST(ApproxSchedulerTest, EngineStampsDerivedSlotSeedInBothModes) {
  SensorPopulationConfig population;
  population.count = 16;
  Rng rng(5);
  std::vector<Sensor> sensors = GenerateSensors(population, rng);
  for (size_t i = 0; i < sensors.size(); ++i) {
    sensors[i].SetPosition(Point{static_cast<double>(i), 1.0}, true);
  }
  for (bool incremental : {true, false}) {
    ServingConfig config;
    config.working_region = Rect{0, 0, 100, 100};
    config.incremental = incremental;
    config.approx.seed = 321;
    AcquisitionEngine engine(sensors, config);
    const SlotContext& slot = engine.BeginSlot(3);
    EXPECT_EQ(slot.approx.slot_seed, ApproxSlotSeed(config.approx, 3));
    EXPECT_EQ(slot.approx.epsilon, config.approx.epsilon);
  }
}

// ---------------------------------------------------------------------------
// Sieve bucket state across churn slots
// ---------------------------------------------------------------------------

/// Rebinds fresh coverage queries to `slot` and runs one scheduler call.
struct SieveSlotRun {
  SelectionResult result;
  std::vector<int> selected_ids;
};

SieveSlotRun RunSieveSlot(SieveStreamingScheduler& sieve,
                          const SlotContext& slot, int num_queries,
                          uint64_t query_seed,
                          const std::vector<int>* arrivals) {
  auto queries = MakeCoverageQueries(slot, num_queries, query_seed);
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  SieveSlotRun run;
  run.result = arrivals == nullptr
                   ? sieve.SelectFull(ptrs, slot)
                   : sieve.SelectArrivals(ptrs, slot, *arrivals);
  for (int idx : run.result.selected_sensors) {
    run.selected_ids.push_back(slot.sensors[static_cast<size_t>(idx)].sensor_id);
  }
  return run;
}

/// Slot restricted to the given global ids (ascending), reindexed.
SlotContext RestrictSlot(const SlotContext& base,
                         const std::vector<int>& departed_ids) {
  SlotContext slot;
  slot.time = base.time + 1;
  slot.dmax = base.dmax;
  slot.approx = base.approx;
  for (const SlotSensor& s : base.sensors) {
    if (std::find(departed_ids.begin(), departed_ids.end(), s.sensor_id) !=
        departed_ids.end()) {
      continue;
    }
    SlotSensor copy = s;
    copy.index = static_cast<int>(slot.sensors.size());
    slot.sensors.push_back(copy);
  }
  return slot;
}

TEST(SieveStreamingTest, ZeroChurnSlotsReproduceTheInitialSelection) {
  const SlotContext slot = MakeUniformThetaSlot(60, 21);
  SieveStreamingScheduler sieve;
  const SieveSlotRun first = RunSieveSlot(sieve, slot, 8, 22, nullptr);
  ASSERT_FALSE(first.result.selected_sensors.empty());
  const std::vector<int> no_arrivals;
  for (int t = 0; t < 3; ++t) {
    const SieveSlotRun next = RunSieveSlot(sieve, slot, 8, 22, &no_arrivals);
    EXPECT_EQ(first.selected_ids, next.selected_ids) << "slot " << t;
    EXPECT_EQ(first.result.total_value, next.result.total_value);
    EXPECT_EQ(first.result.total_cost, next.result.total_cost);
  }
}

TEST(SieveStreamingTest, DeparturesEvictMembersAcrossSlots) {
  const SlotContext slot = MakeUniformThetaSlot(60, 31);
  SieveStreamingScheduler sieve;
  const SieveSlotRun first = RunSieveSlot(sieve, slot, 8, 32, nullptr);
  ASSERT_GE(first.selected_ids.size(), 2u);
  // Depart the first two selected sensors.
  const std::vector<int> departed{first.selected_ids[0], first.selected_ids[1]};
  const SlotContext next_slot = RestrictSlot(slot, departed);
  const std::vector<int> no_arrivals;
  const SieveSlotRun next = RunSieveSlot(sieve, next_slot, 8, 32, &no_arrivals);
  for (int id : departed) {
    EXPECT_EQ(std::find(next.selected_ids.begin(), next.selected_ids.end(), id),
              next.selected_ids.end())
        << "departed sensor " << id << " still selected";
    for (int gid : sieve.winner_members()) EXPECT_NE(gid, id);
  }
  // The remaining population still produces a viable selection.
  EXPECT_GT(next.result.Utility(), 0.0);
}

TEST(SieveStreamingTest, DominantArrivalIsAbsorbedWithoutRestreaming) {
  // Sensors populate only the left half of the field, so an arrival on
  // the right side covers query cells nothing else can reach — a
  // genuinely dominant candidate rather than a redundant one.
  SlotContext slot = MakeUniformThetaSlot(50, 41);
  for (SlotSensor& s : slot.sensors) s.location.x *= 0.45;
  SieveStreamingScheduler sieve;
  const SieveSlotRun first = RunSieveSlot(sieve, slot, 6, 42, nullptr);
  const int64_t calls_full = first.result.valuation_calls;

  // A nearly free, perfectly placed sensor arrives (id above the existing
  // range keeps the slot array ascending).
  SlotSensor arrival;
  arrival.index = static_cast<int>(slot.sensors.size());
  arrival.sensor_id = 1000;
  arrival.location = Point{32.0, 20.0};
  arrival.cost = 0.01;
  arrival.inaccuracy = 0.0;
  arrival.trust = 1.0;
  SlotContext next_slot = slot;
  next_slot.time = slot.time + 1;
  next_slot.sensors.push_back(arrival);

  const std::vector<int> arrivals{1000};
  const SieveSlotRun next =
      RunSieveSlot(sieve, next_slot, 6, 42, &arrivals);
  EXPECT_NE(std::find(next.selected_ids.begin(), next.selected_ids.end(), 1000),
            next.selected_ids.end())
      << "dominant arrival not absorbed";
  // Absorbing one arrival must not re-stream the population: the slot's
  // valuation work stays well below the full-stream initialization.
  EXPECT_LT(next.result.valuation_calls, calls_full / 2);
}

TEST(SieveStreamingTest, SelectDeltaMatchesSelectArrivals) {
  const SlotContext slot = MakeUniformThetaSlot(40, 51);
  SieveStreamingScheduler a;
  SieveStreamingScheduler b;
  (void)RunSieveSlot(a, slot, 6, 52, nullptr);
  (void)RunSieveSlot(b, slot, 6, 52, nullptr);

  SlotSensor arrival;
  arrival.index = static_cast<int>(slot.sensors.size());
  arrival.sensor_id = 500;
  arrival.location = Point{10.0, 10.0};
  arrival.cost = 0.5;
  arrival.inaccuracy = 0.0;
  arrival.trust = 1.0;
  SlotContext next_slot = slot;
  next_slot.time = slot.time + 1;
  next_slot.sensors.push_back(arrival);

  SensorDelta delta;
  delta.arrivals.push_back({500, arrival.location});
  auto queries_a = MakeCoverageQueries(next_slot, 6, 52);
  std::vector<MultiQuery*> ptrs_a;
  for (auto& q : queries_a) ptrs_a.push_back(q.get());
  const SelectionResult via_delta = a.SelectDelta(ptrs_a, next_slot, delta);

  const std::vector<int> arrivals{500};
  const SieveSlotRun via_ids = RunSieveSlot(b, next_slot, 6, 52, &arrivals);
  EXPECT_EQ(via_delta.selected_sensors, via_ids.result.selected_sensors);
  EXPECT_EQ(via_delta.total_value, via_ids.result.total_value);
  EXPECT_EQ(via_delta.total_cost, via_ids.result.total_cost);
}

TEST(ApproxSchedulerTest, ExperimentPlumbingDrivesApproxEngines) {
  // The sim-layer path: AggregateExperimentConfig::serving.scheduler
  // selects the approximate schedulers and serving.approx reaches the
  // slot contexts through the engine. A run must complete, answer
  // queries, and — for the seeded stochastic engine — be exactly
  // repeatable.
  RandomWaypointConfig rwm;
  rwm.num_sensors = 60;
  rwm.num_slots = 4;
  rwm.seed = 9;
  const Trace trace = GenerateRandomWaypoint(rwm);
  AggregateExperimentConfig config;
  config.trace = &trace;
  config.working_region = Rect{0, 0, 80, 80};
  config.num_slots = 4;
  config.mean_queries_per_slot = 6;
  config.sensors.lifetime = 4;
  config.seed = 31;
  config.serving.approx.seed = 77;

  config.serving.scheduler = GreedyEngine::kLazy;
  const ExperimentResult exact = RunAggregateExperiment(config);
  ASSERT_GT(exact.avg_utility, 0.0);

  config.serving.scheduler = GreedyEngine::kStochastic;
  const ExperimentResult stochastic_a = RunAggregateExperiment(config);
  const ExperimentResult stochastic_b = RunAggregateExperiment(config);
  EXPECT_GT(stochastic_a.avg_utility, 0.0);
  EXPECT_EQ(stochastic_a.avg_utility, stochastic_b.avg_utility)
      << "seeded stochastic run not repeatable";
  EXPECT_GE(stochastic_a.avg_utility, 0.4 * exact.avg_utility);

  config.serving.scheduler = GreedyEngine::kSieve;
  const ExperimentResult sieve = RunAggregateExperiment(config);
  EXPECT_GT(sieve.avg_utility, 0.0);
}

TEST(ApproxSchedulerTest, EmptySlotAndEmptyQueriesAreNoOps) {
  SlotContext empty_slot;
  empty_slot.time = 0;
  empty_slot.dmax = 5.0;
  auto queries = MakeCoverageQueries(empty_slot, 2, 3);
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  for (GreedyEngine engine :
       {GreedyEngine::kStochastic, GreedyEngine::kSieve}) {
    const SelectionResult no_sensors =
        GreedySensorSelection(ptrs, empty_slot, nullptr, engine);
    EXPECT_TRUE(no_sensors.selected_sensors.empty());
  }

  const SlotContext slot = MakeUniformThetaSlot(5, 4);
  std::vector<MultiQuery*> none;
  for (GreedyEngine engine :
       {GreedyEngine::kStochastic, GreedyEngine::kSieve}) {
    const SelectionResult no_queries =
        GreedySensorSelection(none, slot, nullptr, engine);
    EXPECT_TRUE(no_queries.selected_sensors.empty());
    EXPECT_EQ(no_queries.valuation_calls, 0);
  }
}

}  // namespace
}  // namespace psens
