#include "src/common/task_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace psens {
namespace {

TEST(TaskGraphTest, RunsAllIndependentTasks) {
  TaskGraphExecutor exec(4);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  for (int i = 0; i < kTasks; ++i) {
    exec.AddTask([&hits, i] { hits[i].fetch_add(1); });
  }
  exec.Launch();
  exec.Join();
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskGraphTest, DependenciesOrderExecution) {
  TaskGraphExecutor exec(4);
  // A chain interleaved with fan-out: every task appends its id to a log
  // guarded by the dependency structure itself (each task's parents must
  // have logged before it runs).
  constexpr int kChain = 40;
  std::vector<std::atomic<int>> done(kChain);
  for (auto& d : done) d.store(0);
  std::atomic<bool> order_ok{true};
  std::vector<TaskGraphExecutor::TaskId> ids;
  for (int i = 0; i < kChain; ++i) {
    std::vector<TaskGraphExecutor::TaskId> deps;
    if (i > 0) deps.push_back(ids[i - 1]);
    if (i > 5) deps.push_back(ids[i - 5]);
    ids.push_back(exec.AddTask(
        [&done, &order_ok, i] {
          if (i > 0 && done[i - 1].load() != 1) order_ok.store(false);
          if (i > 5 && done[i - 5].load() != 1) order_ok.store(false);
          done[i].store(1);
        },
        deps));
  }
  exec.Launch();
  exec.Join();
  EXPECT_TRUE(order_ok.load());
  for (int i = 0; i < kChain; ++i) EXPECT_EQ(done[i].load(), 1) << i;
}

TEST(TaskGraphTest, DiamondJoinSeesBothBranches) {
  TaskGraphExecutor exec(2);
  int a = 0, b = 0, c = 0, d = 0;
  auto ta = exec.AddTask([&] { a = 1; });
  auto tb = exec.AddTask([&] { b = a + 1; }, {ta});
  auto tc = exec.AddTask([&] { c = a + 2; }, {ta});
  exec.AddTask([&] { d = b + c; }, {tb, tc});
  exec.Launch();
  exec.Join();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(c, 3);
  EXPECT_EQ(d, 5);
}

TEST(TaskGraphTest, StealHeavyStress) {
  // All roots seeded round-robin, then a cascade of tiny dependents:
  // with more workers than seed queues get hot, completion requires
  // stealing. Repeated waves also exercise executor reuse.
  TaskGraphExecutor exec(8);
  for (int wave = 0; wave < 20; ++wave) {
    constexpr int kRoots = 16;
    constexpr int kPerRoot = 50;
    std::atomic<int> count{0};
    for (int r = 0; r < kRoots; ++r) {
      auto prev = exec.AddTask([&count] { count.fetch_add(1); });
      for (int i = 1; i < kPerRoot; ++i) {
        prev = exec.AddTask([&count] { count.fetch_add(1); }, {prev});
      }
    }
    exec.Launch();
    exec.Join();
    EXPECT_EQ(count.load(), kRoots * kPerRoot) << "wave " << wave;
  }
}

TEST(TaskGraphTest, ExceptionPropagatesToJoin) {
  TaskGraphExecutor exec(4);
  std::atomic<int> ran{0};
  auto bad = exec.AddTask([] { throw std::runtime_error("task boom"); });
  // Dependents of a failed task must still be released (and run), so the
  // wave drains rather than deadlocking.
  exec.AddTask([&ran] { ran.fetch_add(1); }, {bad});
  exec.AddTask([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(exec.Launch(); exec.Join(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);

  // The executor must be reusable after a failed wave.
  std::atomic<int> again{0};
  exec.AddTask([&again] { again.fetch_add(1); });
  exec.Launch();
  exec.Join();
  EXPECT_EQ(again.load(), 1);
}

// A reduction DAG whose result must be bitwise identical for any worker
// count: leaves produce values, interior tasks combine fixed pairs in a
// fixed order. Worker count changes the schedule, never the dataflow.
std::uint64_t RunReductionDag(int workers) {
  TaskGraphExecutor exec(workers);
  constexpr int kLeaves = 64;
  std::vector<std::uint64_t> vals(2 * kLeaves - 1, 0);
  std::vector<TaskGraphExecutor::TaskId> ids(2 * kLeaves - 1);
  for (int i = 0; i < kLeaves; ++i) {
    ids[i] = exec.AddTask([&vals, i] {
      std::uint64_t v = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
      v ^= v >> 29;
      vals[i] = v;
    });
  }
  int next = kLeaves;
  std::vector<int> level(kLeaves);
  std::iota(level.begin(), level.end(), 0);
  while (level.size() > 1) {
    std::vector<int> up;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      int lhs = level[i], rhs = level[i + 1], out = next++;
      ids[out] = exec.AddTask(
          [&vals, lhs, rhs, out] {
            vals[out] = vals[lhs] * 31 + (vals[rhs] ^ (vals[lhs] << 7));
          },
          {ids[lhs], ids[rhs]});
      up.push_back(out);
    }
    if (level.size() % 2 == 1) up.push_back(level.back());
    level = std::move(up);
  }
  exec.Launch();
  exec.Join();
  return vals[level[0]];
}

TEST(TaskGraphTest, ReductionDagBitDeterministicAcrossWorkerCounts) {
  const std::uint64_t one = RunReductionDag(1);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(RunReductionDag(1), one);
    EXPECT_EQ(RunReductionDag(4), one);
    EXPECT_EQ(RunReductionDag(8), one);
  }
}

TEST(TaskGraphTest, EmptyWaveIsNoop) {
  TaskGraphExecutor exec(2);
  exec.Launch();
  exec.Join();
  int x = 0;
  exec.AddTask([&x] { x = 7; });
  exec.Launch();
  exec.Join();
  EXPECT_EQ(x, 7);
}

}  // namespace
}  // namespace psens
