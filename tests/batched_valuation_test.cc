// The batched valuation contract (core/multi_query.h): for every concrete
// MultiQuery type, MarginalValues(sensors, out) must produce bit-identical
// values to per-sensor MarginalValue probes — including negative-marginal
// and pruned/zero-candidate sensors — and must account exactly the same
// number of valuation calls. Also pins the deferred-accounting split
// (MarginalValuesUncounted + AddValuationCalls) the parallel engines rely
// on.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/multi_query.h"
#include "core/multi_sensor_point_query.h"
#include "core/slot.h"
#include "sim/workload.h"

namespace psens {
namespace {

SlotContext MakeSlot(int num_sensors, uint64_t seed, bool indexed,
                     double region_side = 40.0) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 8.0;
  slot.index_policy = indexed ? SlotIndexPolicy::kGrid : SlotIndexPolicy::kNone;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, region_side), rng.Uniform(0.0, region_side)};
    s.cost = rng.Uniform(5.0, 15.0);
    s.inaccuracy = rng.Uniform(0.0, 0.3);
    s.trust = rng.Uniform(0.6, 1.0);
    slot.sensors.push_back(s);
  }
  AttachSlotIndex(slot);
  return slot;
}

std::vector<int> AllSensors(const SlotContext& slot) {
  std::vector<int> all;
  for (int s = 0; s < static_cast<int>(slot.sensors.size()); ++s) all.push_back(s);
  return all;
}

/// The contract check: batched == scalar, bit for bit, with identical
/// valuation-call accounting, against the query's *current* selection
/// state.
void ExpectBatchedMatchesScalar(const MultiQuery& query,
                                const std::vector<int>& sensors,
                                const char* label) {
  std::vector<double> scalar(sensors.size());
  const int64_t calls_before_scalar = query.ValuationCalls();
  for (size_t i = 0; i < sensors.size(); ++i) {
    scalar[i] = query.MarginalValue(sensors[i]);
  }
  const int64_t scalar_calls = query.ValuationCalls() - calls_before_scalar;

  std::vector<double> batched(sensors.size());
  const int64_t calls_before_batch = query.ValuationCalls();
  query.MarginalValues(std::span<const int>(sensors.data(), sensors.size()),
                       std::span<double>(batched.data(), batched.size()));
  const int64_t batch_calls = query.ValuationCalls() - calls_before_batch;

  ASSERT_EQ(scalar_calls, static_cast<int64_t>(sensors.size())) << label;
  EXPECT_EQ(batch_calls, scalar_calls) << label;
  for (size_t i = 0; i < sensors.size(); ++i) {
    // EXPECT_EQ, not NEAR: the batch API promises bit equality.
    EXPECT_EQ(batched[i], scalar[i]) << label << " sensor " << sensors[i];
  }
}

TEST(BatchedValuationTest, PointMultiQueryMatchesScalar) {
  for (bool indexed : {false, true}) {
    const SlotContext slot = MakeSlot(120, 11, indexed, 30.0);
    PointQuery spec;
    spec.id = 1;
    // Anchor the query on a real sensor so in-range candidates exist.
    spec.location = slot.sensors[40].location;
    spec.budget = 15.0;
    spec.theta_min = 0.2;
    PointMultiQuery query(spec, &slot);
    const std::vector<int> all = AllSensors(slot);
    // Empty selection: marginals are raw values (out-of-range sensors 0).
    ExpectBatchedMatchesScalar(query, all, "point/empty");
    // Commit the best in-range sensor so later probes include *negative*
    // marginals (a worse sensor's value minus the committed best).
    int best = -1;
    double best_value = 0.0;
    for (int s : all) {
      const double v = PointQueryValue(spec, slot.sensors[s], slot.dmax);
      if (v > best_value) {
        best_value = v;
        best = s;
      }
    }
    ASSERT_GE(best, 0);
    query.Commit(best, 1.0);
    bool saw_negative = false;
    for (int s : all) {
      if (query.MarginalValue(s) < 0.0) saw_negative = true;
    }
    EXPECT_TRUE(saw_negative) << "test instance should exercise negative marginals";
    ExpectBatchedMatchesScalar(query, all, "point/committed");
    // Pruned-candidate case: the indexed slot's candidate list excludes
    // far sensors, whose marginal must evaluate to a non-positive value
    // through both entry points.
    if (indexed) {
      ASSERT_NE(query.CandidateSensors(), nullptr);
    }
  }
}

TEST(BatchedValuationTest, MultiSensorPointQueryMatchesScalar) {
  for (bool indexed : {false, true}) {
    const SlotContext slot = MakeSlot(150, 13, indexed, 30.0);
    MultiSensorPointQuery::Params params;
    params.id = 2;
    params.location = slot.sensors[50].location;
    params.budget = 20.0;
    params.theta_min = 0.1;
    params.redundancy = 3;
    MultiSensorPointQuery query(params, &slot);
    const std::vector<int> all = AllSensors(slot);
    ExpectBatchedMatchesScalar(query, all, "topk/empty");
    // Fill the redundancy quota one commit at a time, re-checking the
    // batch against the scalar at every selection depth (the top-k merge
    // is where the batched fast path could diverge).
    const std::vector<int>* candidates = query.CandidateSensors();
    const std::vector<int>& commit_from = candidates != nullptr ? *candidates : all;
    int committed = 0;
    for (int s : commit_from) {
      if (committed >= params.redundancy + 1) break;
      query.Commit(s, 0.5);
      ++committed;
      ExpectBatchedMatchesScalar(query, all, "topk/committed");
    }
    ASSERT_GT(committed, params.redundancy) << "quota should overflow top-k";
  }
}

TEST(BatchedValuationTest, MultiSensorPointQueryZeroRedundancy) {
  const SlotContext slot = MakeSlot(20, 17, false);
  MultiSensorPointQuery::Params params;
  params.id = 3;
  params.location = Point{10.0, 10.0};
  params.budget = 20.0;
  params.redundancy = 0;  // degenerate: valuation identically zero
  MultiSensorPointQuery query(params, &slot);
  ExpectBatchedMatchesScalar(query, AllSensors(slot), "topk/zero-redundancy");
}

TEST(BatchedValuationTest, AggregateQueryMatchesScalarIncludingNegative) {
  for (bool indexed : {false, true}) {
    const SlotContext slot = MakeSlot(80, 19, indexed);
    AggregateQuery::Params params;
    params.id = 4;
    params.region = Rect{10.0, 10.0, 30.0, 30.0};
    params.budget = 50.0;
    params.sensing_range = 10.0;
    params.cell_size = 2.0;
    AggregateQuery query(params, slot);
    const std::vector<int> all = AllSensors(slot);
    ExpectBatchedMatchesScalar(query, all, "aggregate/empty");
    // Commit the highest-theta covering sensor; Eq. 5's mean-quality
    // factor then makes low-theta additions *negative* marginals, and
    // non-covering sensors stay exactly 0 (the pruned-candidate case).
    int best = -1;
    double best_theta = -1.0;
    for (int s : all) {
      const double theta = (1.0 - slot.sensors[s].inaccuracy) * slot.sensors[s].trust;
      if (query.MarginalValue(s) > 0.0 && theta > best_theta) {
        best_theta = theta;
        best = s;
      }
    }
    ASSERT_GE(best, 0);
    query.Commit(best, 1.0);
    bool saw_negative = false;
    bool saw_zero = false;
    for (int s : all) {
      const double delta = query.MarginalValue(s);
      if (delta < 0.0) saw_negative = true;
      if (delta == 0.0) saw_zero = true;
    }
    EXPECT_TRUE(saw_negative) << "Eq. 5 non-monotonicity should appear";
    EXPECT_TRUE(saw_zero) << "non-covering sensors should stay exactly zero";
    ExpectBatchedMatchesScalar(query, all, "aggregate/committed");
  }
}

TEST(BatchedValuationTest, TrajectoryQueryMatchesScalar) {
  for (bool indexed : {false, true}) {
    const SlotContext slot = MakeSlot(80, 23, indexed);
    TrajectoryQuery::Params params;
    params.id = 5;
    params.trajectory.waypoints = {Point{5.0, 5.0}, Point{20.0, 25.0},
                                   Point{35.0, 30.0}};
    params.budget = 40.0;
    params.sensing_range = 8.0;
    params.cell_size = 2.0;
    params.corridor = 3.0;
    TrajectoryQuery query(params, slot);
    const std::vector<int> all = AllSensors(slot);
    ExpectBatchedMatchesScalar(query, all, "trajectory/empty");
    for (int s : all) {
      if (query.MarginalValue(s) > 0.0) {
        query.Commit(s, 1.0);
        break;
      }
    }
    ExpectBatchedMatchesScalar(query, all, "trajectory/committed");
  }
}

TEST(BatchedValuationTest, CallbackMultiQueryMatchesScalar) {
  const SlotContext slot = MakeSlot(12, 29, false);
  // Deliberately non-submodular, non-monotone set valuation.
  const auto valuation = [](const std::vector<int>& set) {
    double v = 0.0;
    for (int s : set) v += (s % 3 == 0) ? -2.0 : 5.0 + 0.25 * s;
    if (set.size() >= 2) v += 3.0;  // complementarity
    return v;
  };
  CallbackMultiQuery query(6, valuation, 100.0);
  const std::vector<int> all = AllSensors(slot);
  ExpectBatchedMatchesScalar(query, all, "callback/empty");
  query.Commit(4, 1.0);
  query.Commit(7, 1.0);
  ExpectBatchedMatchesScalar(query, all, "callback/committed");
}

TEST(BatchedValuationTest, DeferredAccountingMergesExactly) {
  // The parallel engines call MarginalValuesUncounted from workers and
  // merge counts via AddValuationCalls at batch end; the sum must equal
  // the counted entry point exactly.
  const SlotContext slot = MakeSlot(30, 31, true);
  PointQuery spec;
  spec.id = 7;
  spec.location = Point{15.0, 15.0};
  spec.budget = 15.0;
  PointMultiQuery query(spec, &slot);
  const std::vector<int> all = AllSensors(slot);
  std::vector<double> out(all.size());

  const int64_t before = query.ValuationCalls();
  query.MarginalValuesUncounted(std::span<const int>(all.data(), all.size()),
                                std::span<double>(out.data(), out.size()));
  EXPECT_EQ(query.ValuationCalls(), before) << "uncounted probe must not count";
  query.AddValuationCalls(static_cast<int64_t>(all.size()));
  EXPECT_EQ(query.ValuationCalls(),
            before + static_cast<int64_t>(all.size()));

  // Empty batches are no-ops on values and accounting.
  const int64_t before_empty = query.ValuationCalls();
  query.MarginalValues(std::span<const int>(), std::span<double>());
  EXPECT_EQ(query.ValuationCalls(), before_empty);
}

}  // namespace
}  // namespace psens
