#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/point_scheduling.h"
#include "solver/facility_location.h"

namespace psens {
namespace {

FacilityLocationProblem RandomProblem(int sensors, int locations, double cover_p,
                                      Rng& rng) {
  FacilityLocationProblem p;
  p.num_locations = locations;
  p.open_cost.resize(sensors);
  p.value.resize(sensors);
  for (int i = 0; i < sensors; ++i) {
    p.open_cost[i] = rng.Uniform(5.0, 15.0);
    for (int l = 0; l < locations; ++l) {
      if (rng.Bernoulli(cover_p)) {
        p.value[i].emplace_back(l, rng.Uniform(1.0, 12.0));
      }
    }
  }
  return p;
}

TEST(LocalSearchTest, EmptyProblemReturnsEmpty) {
  FacilityLocationProblem p;
  p.num_locations = 0;
  const FacilityLocationSolution s = LocalSearchFacility(p);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(LocalSearchTest, SolutionIsConsistentlyEvaluated) {
  Rng rng(3);
  const FacilityLocationProblem p = RandomProblem(15, 20, 0.3, rng);
  const FacilityLocationSolution s = LocalSearchFacility(p);
  EXPECT_NEAR(s.objective, EvaluateOpenSet(p, s.open), 1e-9);
}

TEST(LocalSearchTest, NeverNegativeObjective) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const FacilityLocationProblem p = RandomProblem(12, 10, 0.5, rng);
    const FacilityLocationSolution s = LocalSearchFacility(p, 1e-6, false, trial);
    EXPECT_GE(s.objective, 0.0);
  }
}

class LocalSearchApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(LocalSearchApproximationTest, WithinOneThirdOfOptimum) {
  // Feige et al.'s deterministic local search guarantees u(W) >= 1/3 OPT
  // for non-negative non-monotone submodular functions; our u can dip
  // negative only through costs, and in practice the bound holds on these
  // instances. Verify against brute force.
  Rng rng(400 + GetParam());
  const int sensors = 4 + GetParam() % 9;
  const FacilityLocationProblem p =
      RandomProblem(sensors, 3 + GetParam() % 8, 0.5, rng);
  const FacilityLocationSolution opt = SolveByBruteForce(p);
  const FacilityLocationSolution ls = LocalSearchFacility(p);
  EXPECT_GE(ls.objective + 1e-9, opt.objective / 3.0)
      << "LS " << ls.objective << " vs OPT " << opt.objective;
  EXPECT_LE(ls.objective, opt.objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LocalSearchApproximationTest,
                         ::testing::Range(0, 30));

TEST(LocalSearchTest, LocalOptimumHasNoImprovingSingleMove) {
  Rng rng(7);
  const FacilityLocationProblem p = RandomProblem(12, 15, 0.4, rng);
  const FacilityLocationSolution s = LocalSearchFacility(p);
  const double base = s.objective;
  // Flipping any single sensor must not improve the objective beyond eps.
  for (int i = 0; i < p.NumSensors(); ++i) {
    std::vector<char> flipped = s.open;
    flipped[i] = flipped[i] ? 0 : 1;
    EXPECT_LE(EvaluateOpenSet(p, flipped), base + 1e-6) << "sensor " << i;
  }
}

TEST(LocalSearchTest, RandomizedRestartsNeverWorseThanZero) {
  Rng rng(9);
  const FacilityLocationProblem p = RandomProblem(20, 25, 0.3, rng);
  const FacilityLocationSolution deterministic = LocalSearchFacility(p);
  const FacilityLocationSolution randomized =
      LocalSearchFacility(p, 1e-6, /*randomized=*/true, /*seed=*/42, /*restarts=*/5);
  EXPECT_GE(randomized.objective, 0.0);
  // Both are local optima of the same landscape; neither dominates in
  // general, but both must be consistent evaluations.
  EXPECT_NEAR(randomized.objective, EvaluateOpenSet(p, randomized.open), 1e-9);
  EXPECT_NEAR(deterministic.objective, EvaluateOpenSet(p, deterministic.open), 1e-9);
}

TEST(LocalSearchTest, DeterministicGivenSeed) {
  Rng rng(11);
  const FacilityLocationProblem p = RandomProblem(15, 15, 0.4, rng);
  const FacilityLocationSolution a = LocalSearchFacility(p, 1e-6, true, 123, 3);
  const FacilityLocationSolution b = LocalSearchFacility(p, 1e-6, true, 123, 3);
  EXPECT_EQ(a.open, b.open);
}

}  // namespace
}  // namespace psens
