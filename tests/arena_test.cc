#include "core/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace psens {
namespace {

bool AlignedTo(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(SlotArenaTest, AllocationsAreAlignedAndDisjoint) {
  SlotArena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(1, 64);
  void* d = arena.Allocate(16);  // default max_align_t
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(AlignedTo(b, 8));
  EXPECT_TRUE(AlignedTo(c, 64));
  EXPECT_TRUE(AlignedTo(d, alignof(std::max_align_t)));
  // Writing every byte of each allocation must not clobber the others
  // (ASan/UBSan runs make overlap or out-of-bounds fatal).
  std::memset(a, 0xA1, 3);
  std::memset(b, 0xB2, 8);
  std::memset(c, 0xC3, 1);
  std::memset(d, 0xD4, 16);
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xA1);
  EXPECT_EQ(static_cast<unsigned char*>(b)[7], 0xB2);
  EXPECT_EQ(static_cast<unsigned char*>(c)[0], 0xC3);
  EXPECT_EQ(static_cast<unsigned char*>(d)[15], 0xD4);
}

TEST(SlotArenaTest, ZeroByteAllocationIsNonNull) {
  SlotArena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
  EXPECT_NE(arena.AllocateArray<double>(0), nullptr);
}

TEST(SlotArenaTest, ResetReusesTheSameStorage) {
  SlotArena arena(1 << 12);  // 4 KiB chunks
  void* first = arena.Allocate(256, 8);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Single-chunk arena: the first post-Reset allocation of the same shape
  // lands on the same bump pointer — no new chunk, no heap traffic.
  void* again = arena.Allocate(256, 8);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(SlotArenaTest, LargeAllocationSpillsThenCoalesces) {
  SlotArena arena(1 << 12);  // 4 KiB chunks
  arena.Allocate(1 << 10);
  // Far larger than the chunk size: must spill into a dedicated chunk
  // rather than fail or truncate.
  void* big = arena.AllocateArray<double>(1 << 14);  // 128 KiB
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, (size_t{1} << 14) * sizeof(double));
  EXPECT_GE(arena.chunk_count(), 2u);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, (size_t{1} << 14) * sizeof(double));
  // Reset coalesces to one high-water chunk, so the next slot's identical
  // workload fits without spilling again.
  arena.Reset();
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), reserved);
  arena.Allocate(1 << 10);
  void* big2 = arena.AllocateArray<double>(1 << 14);
  ASSERT_NE(big2, nullptr);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(SlotArenaTest, GrowthTracksBytesAllocated) {
  SlotArena arena(1 << 12);
  size_t total = 0;
  for (int i = 0; i < 64; ++i) {
    arena.Allocate(100, 4);
    total += 100;
  }
  EXPECT_GE(arena.bytes_allocated(), total);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaBufferTest, ArenaBackedAndOwnedBehaveAlike) {
  SlotArena arena;
  ArenaBuffer<int> with_arena;
  with_arena.Acquire(&arena, 100);
  ArenaBuffer<int> without;
  without.Acquire(nullptr, 100);
  ASSERT_EQ(with_arena.size(), 100u);
  ASSERT_EQ(without.size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    with_arena[i] = static_cast<int>(i);
    without[i] = static_cast<int>(i);
  }
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(with_arena[i], without[i]);
  }
}

TEST(ArenaBufferTest, ReacquireAfterResetIsUsable) {
  SlotArena arena;
  ArenaBuffer<double> buf;
  buf.Acquire(&arena, 1000);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = 1.0;
  arena.Reset();
  buf.Acquire(&arena, 2000);
  ASSERT_EQ(buf.size(), 2000u);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = 2.0;
  double sum = 0.0;
  for (double v : buf) sum += v;
  EXPECT_DOUBLE_EQ(sum, 4000.0);
}

}  // namespace
}  // namespace psens
