#include "core/multi_sensor_point_query.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/greedy.h"

namespace psens {
namespace {

SlotContext MakeSlot(std::vector<Point> positions) {
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  for (size_t i = 0; i < positions.size(); ++i) {
    SlotSensor s;
    s.index = static_cast<int>(i);
    s.sensor_id = static_cast<int>(i);
    s.location = positions[i];
    s.cost = 10.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

MultiSensorPointQuery::Params BaseParams(int redundancy = 2) {
  MultiSensorPointQuery::Params params;
  params.id = 1;
  params.location = Point{0, 0};
  params.budget = 60.0;
  params.theta_min = 0.2;
  params.redundancy = redundancy;
  return params;
}

TEST(MultiSensorPointQueryTest, FirstReadingWorthItsShare) {
  const SlotContext slot = MakeSlot({Point{0, 0}});
  MultiSensorPointQuery q(BaseParams(2), &slot);
  // One perfect reading fills half the k=2 target: B * 1/2.
  EXPECT_DOUBLE_EQ(q.MarginalValue(0), 30.0);
  q.Commit(0, 5.0);
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 30.0);
  EXPECT_EQ(q.RemainingReadings(), 1);
}

TEST(MultiSensorPointQueryTest, ReachesFullValueAtRedundancy) {
  const SlotContext slot = MakeSlot({Point{0, 0}, Point{0, 0}});
  MultiSensorPointQuery q(BaseParams(2), &slot);
  q.Commit(0, 0.0);
  q.Commit(1, 0.0);
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 60.0);
  EXPECT_EQ(q.RemainingReadings(), 0);
}

TEST(MultiSensorPointQueryTest, ExtraReadingBeyondKOnlyHelpsIfBetter) {
  SlotContext slot = MakeSlot({Point{0, 0}, Point{2.5, 0}, Point{1, 0}});
  MultiSensorPointQuery q(BaseParams(2), &slot);
  q.Commit(0, 0.0);  // theta 1.0
  q.Commit(1, 0.0);  // theta 0.5
  const double before = q.CurrentValue();
  // theta of sensor 2 = 0.8 > 0.5: replaces the weaker reading in top-k.
  const double marginal = q.MarginalValue(2);
  EXPECT_NEAR(marginal, 60.0 * (0.8 - 0.5) / 2.0, 1e-9);
  q.Commit(2, 0.0);
  EXPECT_GT(q.CurrentValue(), before);
  // A fourth reading weaker than the current top-2 adds nothing.
  EXPECT_DOUBLE_EQ(q.MarginalValue(1), 0.0);
}

TEST(MultiSensorPointQueryTest, BelowThresholdReadingsIgnored) {
  const SlotContext slot = MakeSlot({Point{4.5, 0}});  // theta 0.1 < 0.2
  MultiSensorPointQuery q(BaseParams(2), &slot);
  EXPECT_DOUBLE_EQ(q.MarginalValue(0), 0.0);
  q.Commit(0, 0.0);
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 0.0);
  EXPECT_EQ(q.RemainingReadings(), 2);
}

TEST(MultiSensorPointQueryTest, MarginalsAreDiminishing) {
  // Submodularity spot check: marginal of the same sensor never grows as
  // the selection expands.
  Rng rng(3);
  std::vector<Point> positions;
  for (int i = 0; i < 6; ++i) {
    positions.push_back(Point{rng.Uniform(0, 4), rng.Uniform(0, 4)});
  }
  const SlotContext slot = MakeSlot(positions);
  MultiSensorPointQuery::Params params = BaseParams(3);
  params.location = Point{2, 2};
  MultiSensorPointQuery q(params, &slot);
  const double first = q.MarginalValue(5);
  q.Commit(0, 0.0);
  const double second = q.MarginalValue(5);
  q.Commit(1, 0.0);
  const double third = q.MarginalValue(5);
  EXPECT_GE(first + 1e-12, second);
  EXPECT_GE(second + 1e-12, third);
}

TEST(MultiSensorPointQueryTest, WorksWithGreedySelection) {
  const SlotContext slot = MakeSlot({Point{0, 0}, Point{1, 0}, Point{2, 0}});
  MultiSensorPointQuery q(BaseParams(2), &slot);
  std::vector<MultiQuery*> ptrs = {&q};
  const SelectionResult result = GreedySensorSelection(ptrs, slot);
  // Two readings are worth buying (30 and ~24 vs cost 10 each); a third
  // adds nothing.
  EXPECT_EQ(result.selected_sensors.size(), 2u);
  EXPECT_GT(result.Utility(), 0.0);
  EXPECT_GE(q.CurrentValue() + 1e-9, q.TotalPayment());
}

TEST(MultiSensorPointQueryTest, ResetClearsQualities) {
  const SlotContext slot = MakeSlot({Point{0, 0}});
  MultiSensorPointQuery q(BaseParams(2), &slot);
  q.Commit(0, 1.0);
  q.ResetSelection();
  EXPECT_TRUE(q.qualities().empty());
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 0.0);
  EXPECT_EQ(q.RemainingReadings(), 2);
}

}  // namespace
}  // namespace psens
