// Shard-invariance suite: the ShardRouter (src/shard/) must be
// indistinguishable — bit for bit — from the single AcquisitionEngine it
// fronts. For a fixed input stream, every shard count produces the same
// selections, payments, and valuation-call counts, for all four
// schedulers, under churn with cross-slot feedback (linear energy,
// privacy decay) and mobility. SameOutcome() is the comparator; a single
// diverging field fails. Also covered here: the ServingConfig::Validate
// contract, the ShardMap partition property (every point has exactly one
// owner), trace interchangeability across shard counts, and the
// per-shard monitor plumbing.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/serving_config.h"
#include "engine/serving_engine.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/monitor.h"
#include "trace/trace_replayer.h"

namespace psens {
namespace {

constexpr int kSensors = 600;
constexpr int kSlots = 12;
constexpr uint64_t kSeed = 77;

ChurnScenarioSetup MakeSetup() {
  // Cross-slot feedback on, so a shard losing a sensor's energy or
  // privacy history would actually change later selections.
  SensorPopulationConfig profile;
  profile.linear_energy = true;
  profile.random_privacy = true;
  return MakeChurnScenario(kSensors, /*churn_fraction=*/0.05, kSeed,
                           /*with_mobility=*/true, profile);
}

ClosedLoopConfig MakeLoopConfig(GreedyEngine scheduler, int shards) {
  ClosedLoopConfig config;
  config.slots = kSlots;
  config.queries.queries_per_slot = 24;
  config.queries.aggregates_per_slot = 4;
  config.serving.scheduler = scheduler;
  config.serving.shards = shards;
  config.serving.approx.seed = kSeed;
  return config;
}

void ExpectSameOutcomes(const std::vector<SlotOutcome>& reference,
                        const std::vector<SlotOutcome>& sharded) {
  ASSERT_EQ(reference.size(), sharded.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(SameOutcome(reference[i], sharded[i]))
        << "slot " << reference[i].time << " diverged: unsharded selected "
        << reference[i].selection.selected_sensors.size()
        << " sensors (value " << reference[i].selection.total_value
        << ", payment " << reference[i].total_payment
        << "), sharded selected "
        << sharded[i].selection.selected_sensors.size() << " (value "
        << sharded[i].selection.total_value << ", payment "
        << sharded[i].total_payment << ")";
  }
}

struct SchedulerCase {
  const char* name;
  GreedyEngine scheduler;
};

class ShardInvarianceTest : public testing::TestWithParam<SchedulerCase> {};

TEST_P(ShardInvarianceTest, ShardCountDoesNotChangeOutcomes) {
  const ChurnScenarioSetup setup = MakeSetup();
  const ClosedLoopResult reference =
      RunChurnClosedLoop(setup, MakeLoopConfig(GetParam().scheduler, 1));
  // The run did real work; empty schedules would pass vacuously.
  EXPECT_GT(reference.total_payment, 0.0);
  EXPECT_GT(reference.valuation_calls, 0);
  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    const ClosedLoopResult sharded = RunChurnClosedLoop(
        setup, MakeLoopConfig(GetParam().scheduler, shards));
    ExpectSameOutcomes(reference.outcomes, sharded.outcomes);
    EXPECT_EQ(reference.total_payment, sharded.total_payment);
    EXPECT_EQ(reference.valuation_calls, sharded.valuation_calls);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ShardInvarianceTest,
    testing::Values(SchedulerCase{"exact", GreedyEngine::kEager},
                    SchedulerCase{"lazy", GreedyEngine::kLazy},
                    SchedulerCase{"stochastic", GreedyEngine::kStochastic},
                    SchedulerCase{"sieve", GreedyEngine::kSieve}),
    [](const testing::TestParamInfo<SchedulerCase>& info) {
      return info.param.name;
    });

// Pipelined serving (pipeline == 2) overlaps the next slot's per-shard
// repair with the current slot's merged selection. The commit barrier
// must keep every shard count bit-identical to the unsharded sequential
// reference — the shard-invariance and pipeline-invisibility contracts
// composed.
class PipelinedShardInvarianceTest
    : public testing::TestWithParam<SchedulerCase> {};

TEST_P(PipelinedShardInvarianceTest, PipelinedMatchesSequentialReference) {
  const ChurnScenarioSetup setup = MakeSetup();
  const ClosedLoopResult reference =
      RunChurnClosedLoop(setup, MakeLoopConfig(GetParam().scheduler, 1));
  EXPECT_GT(reference.total_payment, 0.0);
  EXPECT_GT(reference.valuation_calls, 0);
  for (int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ClosedLoopConfig pipelined = MakeLoopConfig(GetParam().scheduler, shards);
    pipelined.serving.pipeline = 2;
    ASSERT_TRUE(pipelined.serving.Validate().empty())
        << pipelined.serving.Validate();
    const ClosedLoopResult overlapped = RunChurnClosedLoop(setup, pipelined);
    ExpectSameOutcomes(reference.outcomes, overlapped.outcomes);
    EXPECT_EQ(reference.total_payment, overlapped.total_payment);
    EXPECT_EQ(reference.valuation_calls, overlapped.valuation_calls);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, PipelinedShardInvarianceTest,
    testing::Values(SchedulerCase{"exact", GreedyEngine::kEager},
                    SchedulerCase{"lazy", GreedyEngine::kLazy},
                    SchedulerCase{"stochastic", GreedyEngine::kStochastic},
                    SchedulerCase{"sieve", GreedyEngine::kSieve}),
    [](const testing::TestParamInfo<SchedulerCase>& info) {
      return info.param.name;
    });

// Pipelined + pooled fan-out: the router's task graph sizes itself from
// ServingConfig::threads; neither the graph's worker count nor the
// selection pool may leak into outcomes.
TEST(PipelinedShardThreadsTest, ThreadCountDoesNotChangePipelinedOutcomes) {
  const ChurnScenarioSetup setup = MakeSetup();
  const ClosedLoopResult reference =
      RunChurnClosedLoop(setup, MakeLoopConfig(GreedyEngine::kLazy, 1));
  for (int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ClosedLoopConfig pipelined = MakeLoopConfig(GreedyEngine::kLazy, 4);
    pipelined.serving.pipeline = 2;
    pipelined.serving.threads = threads;
    const ClosedLoopResult overlapped = RunChurnClosedLoop(setup, pipelined);
    ExpectSameOutcomes(reference.outcomes, overlapped.outcomes);
  }
}

// Fanning the per-shard turnover across worker threads must not change
// anything either (the shard engines only touch disjoint slices; the
// merge is deterministic regardless of completion order).
TEST(ShardInvarianceThreadsTest, FanOutThreadCountDoesNotChangeOutcomes) {
  const ChurnScenarioSetup setup = MakeSetup();
  ClosedLoopConfig serial = MakeLoopConfig(GreedyEngine::kLazy, 4);
  serial.serving.threads = 1;
  ClosedLoopConfig pooled = MakeLoopConfig(GreedyEngine::kLazy, 4);
  pooled.serving.threads = 4;
  const ClosedLoopResult a = RunChurnClosedLoop(setup, serial);
  const ClosedLoopResult b = RunChurnClosedLoop(setup, pooled);
  ExpectSameOutcomes(a.outcomes, b.outcomes);
}

// Heterogeneous per-shard scheduling (ServingConfig::shard_schedulers)
// trades the bit-identical-to-unsharded guarantee for per-shard policy
// freedom, but keeps the determinism half of the contract: for a fixed
// input stream the merged outcome is bit-identical across repeat runs
// and across thread counts (the passes are sequential in ascending
// shard order; threads only parallelize turnover and intra-pass
// valuation batches).
TEST(HeterogeneousShardSchedulersTest, MergedOutcomeIsDeterministic) {
  const ChurnScenarioSetup setup = MakeSetup();
  ClosedLoopConfig base = MakeLoopConfig(GreedyEngine::kLazy, 4);
  base.serving.shard_schedulers = {GreedyEngine::kLazy,
                                   GreedyEngine::kStochastic,
                                   GreedyEngine::kEager, GreedyEngine::kLazy};
  ASSERT_TRUE(base.serving.Validate().empty()) << base.serving.Validate();

  const ClosedLoopResult reference = RunChurnClosedLoop(setup, base);
  // The run did real work; empty schedules would pass vacuously.
  EXPECT_GT(reference.total_payment, 0.0);
  EXPECT_GT(reference.valuation_calls, 0);

  // Repeat-run invariance: same config, fresh engine, same stream.
  const ClosedLoopResult repeat = RunChurnClosedLoop(setup, base);
  ExpectSameOutcomes(reference.outcomes, repeat.outcomes);
  EXPECT_EQ(reference.total_payment, repeat.total_payment);
  EXPECT_EQ(reference.valuation_calls, repeat.valuation_calls);

  // Thread-count invariance.
  for (int threads : {2, 4}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ClosedLoopConfig pooled = base;
    pooled.serving.threads = threads;
    const ClosedLoopResult t = RunChurnClosedLoop(setup, pooled);
    ExpectSameOutcomes(reference.outcomes, t.outcomes);
    EXPECT_EQ(reference.total_payment, t.total_payment);
    EXPECT_EQ(reference.valuation_calls, t.valuation_calls);
  }
}

// A trace recorded under one shard count replays bit-identically under
// any other: recording happens at the router (pre-split) level with the
// single engine's header format.
TEST(ShardReplayTest, TracesInterchangeAcrossShardCounts) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = testing::TempDir() + "/shard_replay.trc";

  // Record unsharded, replay sharded.
  ClosedLoopConfig lcfg = MakeLoopConfig(GreedyEngine::kStochastic, 1);
  lcfg.serving.trace_path = path;
  const ClosedLoopResult live = RunChurnClosedLoop(setup, lcfg);
  ReplayConfig rcfg;
  rcfg.serving.scheduler = GreedyEngine::kStochastic;
  rcfg.serving.shards = 4;
  const ReplayResult sharded_replay =
      TraceReplayer(rcfg).Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(sharded_replay.ok) << sharded_replay.error;
  ExpectSameOutcomes(live.outcomes, sharded_replay.outcomes);
  std::remove(path.c_str());

  // Record sharded, replay unsharded.
  ClosedLoopConfig scfg = MakeLoopConfig(GreedyEngine::kStochastic, 4);
  scfg.serving.trace_path = path;
  const ClosedLoopResult sharded_live = RunChurnClosedLoop(setup, scfg);
  ExpectSameOutcomes(live.outcomes, sharded_live.outcomes);
  ReplayConfig ucfg;
  ucfg.serving.scheduler = GreedyEngine::kStochastic;
  const ReplayResult unsharded_replay =
      TraceReplayer(ucfg).Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(unsharded_replay.ok) << unsharded_replay.error;
  ExpectSameOutcomes(sharded_live.outcomes, unsharded_replay.outcomes);
  std::remove(path.c_str());
}

TEST(ServingConfigTest, ValidateAcceptsDefaultsAndBuilderChains) {
  EXPECT_TRUE(ServingConfig().Validate().empty());
  const ServingConfig built = ServingConfig()
                                  .WithRegion(Rect{0, 0, 100, 100})
                                  .WithDmax(8.0)
                                  .WithScheduler(GreedyEngine::kSieve)
                                  .WithThreads(0)
                                  .WithShards(4)
                                  .WithEpsilon(0.2)
                                  .WithApproxSeed(9)
                                  .WithRecordReadings(false);
  EXPECT_TRUE(built.Validate().empty()) << built.Validate();
  EXPECT_EQ(built.scheduler, GreedyEngine::kSieve);
  EXPECT_EQ(built.shards, 4);
  EXPECT_EQ(built.approx.epsilon, 0.2);
  EXPECT_FALSE(built.record_readings);
}

TEST(ServingConfigTest, ValidateRejectsBrokenConfigs) {
  EXPECT_FALSE(ServingConfig().WithDmax(0.0).Validate().empty());
  EXPECT_FALSE(
      ServingConfig().WithRegion(Rect{10, 0, 0, 10}).Validate().empty());
  EXPECT_FALSE(ServingConfig().WithThreads(-1).Validate().empty());
  EXPECT_FALSE(ServingConfig().WithShards(0).Validate().empty());
  // Sharded serving requires incremental mode: the rebuild reference
  // path has no ownership filter.
  EXPECT_FALSE(ServingConfig()
                   .WithShards(2)
                   .WithIncremental(false)
                   .Validate()
                   .empty());
  EXPECT_TRUE(
      ServingConfig().WithShards(2).WithIncremental(true).Validate().empty());
  EXPECT_FALSE(ServingConfig().WithEpsilon(0.0).Validate().empty());
}

TEST(ServingConfigTest, ValidateChecksPipelineDepth) {
  // 0/1 mean sequential; 2 is the double-buffered overlap.
  EXPECT_TRUE(ServingConfig().WithPipeline(0).Validate().empty());
  EXPECT_TRUE(ServingConfig().WithPipeline(1).Validate().empty());
  EXPECT_TRUE(ServingConfig().WithPipeline(2).Validate().empty());
  EXPECT_FALSE(ServingConfig().WithPipeline(-1).Validate().empty());
  // Depth > 2 would freeze slot t+2's announcements before slot t's
  // readings land — rejected, not silently clamped.
  EXPECT_FALSE(ServingConfig().WithPipeline(3).Validate().empty());
  EXPECT_FALSE(ServingConfig().WithPipeline(4).Validate().empty());
}

TEST(ServingConfigTest, ValidateRejectsPipelinedReadingsInRebuildMode) {
  // The rebuild reference path re-announces every sensor in the early
  // (overlapped) phase, before the current slot's readings commit; the
  // reordering combo is rejected. Dropping either side is fine.
  EXPECT_FALSE(ServingConfig()
                   .WithPipeline(2)
                   .WithIncremental(false)
                   .Validate()
                   .empty());
  EXPECT_TRUE(ServingConfig()
                  .WithPipeline(2)
                  .WithIncremental(false)
                  .WithRecordReadings(false)
                  .Validate()
                  .empty());
  EXPECT_TRUE(ServingConfig()
                  .WithPipeline(2)
                  .WithIncremental(true)
                  .Validate()
                  .empty());
}

TEST(ServingConfigTest, ValidateChecksShardSchedulerShapes) {
  using G = GreedyEngine;
  // Well-formed: one entry per shard, no sieve.
  EXPECT_TRUE(ServingConfig()
                  .WithShards(3)
                  .WithShardSchedulers({G::kLazy, G::kEager, G::kStochastic})
                  .Validate()
                  .empty());
  // Per-shard schedulers need an actual shard split.
  EXPECT_FALSE(
      ServingConfig().WithShardSchedulers({G::kLazy}).Validate().empty());
  // Size must match the shard count exactly.
  EXPECT_FALSE(ServingConfig()
                   .WithShards(4)
                   .WithShardSchedulers({G::kLazy, G::kEager})
                   .Validate()
                   .empty());
  // The sieve's cross-slot bucket state has no per-pass home.
  EXPECT_FALSE(ServingConfig()
                   .WithShards(2)
                   .WithShardSchedulers({G::kLazy, G::kSieve})
                   .Validate()
                   .empty());
}

TEST(ShardMapTest, EveryPointHasExactlyOneOwner) {
  const Rect region{0, 0, 120, 90};
  Rng rng(11);
  for (int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    const ShardMap map = ShardMap::Layout(region, shards, 2000);
    for (int i = 0; i < 500; ++i) {
      // Include positions outside the region: outliers clamp into edge
      // cells and must still have exactly one owner.
      const Point p{rng.Uniform(-20.0, 140.0), rng.Uniform(-20.0, 110.0)};
      const int owner = map.ShardOf(p);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, shards);
      int owners = 0;
      for (int s = 0; s < shards; ++s) {
        if (ShardSlice{map, s}.Owns(p)) ++owners;
      }
      EXPECT_EQ(owners, 1) << "point (" << p.x << ", " << p.y << ")";
    }
  }
}

TEST(ShardMapTest, DefaultSliceOwnsEverything) {
  const ShardSlice slice;
  EXPECT_FALSE(slice.sharded());
  EXPECT_TRUE(slice.Owns(Point{1e9, -1e9}));
}

// Per-shard monitor plumbing: each shard's monitor set sees exactly one
// turnover (and one slot end) per BeginSlot, with its own shard's
// latency — the observability surface the nightly fig15 sweep exports.
TEST(ShardRouterTest, PerShardMonitorsObserveEveryTurnover) {
  const ChurnScenarioSetup setup = MakeSetup();
  ServingConfig config = ServingConfig()
                             .WithRegion(setup.field)
                             .WithDmax(setup.dmax)
                             .WithShards(4)
                             .WithApproxSeed(kSeed);
  ShardRouter router(setup.scenario.sensors, config);
  ASSERT_EQ(router.shard_count(), 4);
  EXPECT_EQ(router.sensors().size(), setup.scenario.sensors.size());

  constexpr int kShards = 4;
  LatencyHistogramMonitor latency[kShards];
  IndexRepairMonitor repair[kShards];
  MonitorSet sets[kShards];
  for (int s = 0; s < kShards; ++s) {
    sets[s].Attach(&latency[s]);
    sets[s].Attach(&repair[s]);
    sets[s].StartAll();
    router.set_shard_monitors(s, &sets[s]);
  }

  ChurnWorkload workload(&setup, ChurnQueryConfig{});
  router.BeginSlot(0);
  for (int t = 1; t <= kSlots; ++t) {
    router.ApplyDelta(workload.NextDelta());
    router.BeginSlot(t);
  }
  for (int s = 0; s < kShards; ++s) {
    sets[s].StopAll();
    EXPECT_EQ(latency[s].count(), kSlots + 1) << "shard " << s;
    EXPECT_EQ(repair[s].count(), kSlots + 1) << "shard " << s;
  }
}

// The partition actually splits the registry: with 4 shards over the
// clustered city population, every shard owns a non-trivial slice.
TEST(ShardRouterTest, PartitionBalancesClusteredPopulation) {
  const ChurnScenarioSetup setup = MakeSetup();
  ServingConfig config = ServingConfig()
                             .WithRegion(setup.field)
                             .WithDmax(setup.dmax)
                             .WithShards(4);
  ShardRouter router(setup.scenario.sensors, config);
  const SlotContext& merged = router.BeginSlot(0);
  ASSERT_GT(merged.sensors.size(), 0u);
  std::vector<size_t> owned(4, 0);
  for (const SlotSensor& s : merged.sensors) {
    ++owned[static_cast<size_t>(router.shard_map().ShardOf(s.location))];
  }
  size_t shard_total = 0;
  for (int s = 0; s < router.shard_count(); ++s) {
    EXPECT_GT(owned[static_cast<size_t>(s)], merged.sensors.size() / 16)
        << "shard " << s << " owns a degenerate slice";
    shard_total += owned[static_cast<size_t>(s)];
  }
  EXPECT_EQ(shard_total, merged.sensors.size());
}

}  // namespace
}  // namespace psens
