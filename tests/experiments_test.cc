// Integration tests: small end-to-end simulation runs exercising the full
// pipeline (mobility -> slot -> scheduling -> accounting), asserting the
// qualitative relationships the paper's evaluation is built on.

#include "sim/experiments.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/gaussian_field.h"
#include "data/ozone_trace.h"
#include "mobility/random_waypoint.h"
#include "mobility/synthetic_nokia.h"

namespace psens {
namespace {

Trace SmallRwm(int slots) {
  RandomWaypointConfig config;
  config.num_sensors = 80;
  config.num_slots = slots;
  config.seed = 5;
  return GenerateRandomWaypoint(config);
}

PointExperimentConfig BasePointConfig(const Trace& trace, int slots) {
  PointExperimentConfig config;
  config.trace = &trace;
  config.working_region = CentralSubregion(80, 50);
  config.dmax = 5.0;
  config.num_slots = slots;
  config.queries_per_slot = 80;
  config.budget = BudgetScheme{15.0, false, 0.0};
  config.sensors.lifetime = slots;
  config.seed = 17;
  return config;
}

TEST(PointExperimentTest, SchedulerOrderingHolds) {
  const Trace trace = SmallRwm(8);
  PointExperimentConfig config = BasePointConfig(trace, 8);
  config.scheduler = PointScheduler::kOptimal;
  const ExperimentResult optimal = RunPointExperiment(config);
  config.scheduler = PointScheduler::kLocalSearch;
  const ExperimentResult ls = RunPointExperiment(config);
  config.scheduler = PointScheduler::kBaseline;
  const ExperimentResult baseline = RunPointExperiment(config);
  // Same seed -> identical workload; optimal dominates per slot.
  EXPECT_GE(optimal.avg_utility + 1e-6, ls.avg_utility);
  EXPECT_GE(optimal.avg_utility + 1e-6, baseline.avg_utility);
  EXPECT_GT(optimal.avg_utility, 0.0);
  EXPECT_GT(optimal.satisfaction, 0.0);
  EXPECT_LE(optimal.satisfaction, 1.0);
  EXPECT_GT(optimal.avg_quality, 0.0);
  EXPECT_LE(optimal.avg_quality, 1.0);
}

TEST(PointExperimentTest, BaselineZeroAtBudgetBelowCost) {
  const Trace trace = SmallRwm(5);
  PointExperimentConfig config = BasePointConfig(trace, 5);
  config.budget = BudgetScheme{7.0, false, 0.0};
  config.scheduler = PointScheduler::kBaseline;
  const ExperimentResult baseline = RunPointExperiment(config);
  EXPECT_DOUBLE_EQ(baseline.avg_utility, 0.0);
  EXPECT_DOUBLE_EQ(baseline.satisfaction, 0.0);
  config.scheduler = PointScheduler::kLocalSearch;
  const ExperimentResult ls = RunPointExperiment(config);
  EXPECT_GT(ls.avg_utility, 0.0);  // sharing answers what baseline cannot
}

TEST(PointExperimentTest, UtilityIncreasesWithBudget) {
  const Trace trace = SmallRwm(5);
  PointExperimentConfig config = BasePointConfig(trace, 5);
  config.scheduler = PointScheduler::kLocalSearch;
  config.budget = BudgetScheme{10.0, false, 0.0};
  const double low = RunPointExperiment(config).avg_utility;
  config.budget = BudgetScheme{30.0, false, 0.0};
  const double high = RunPointExperiment(config).avg_utility;
  EXPECT_GT(high, low);
}

TEST(PointExperimentTest, PrivacyAndEnergyCostsReduceUtility) {
  const Trace trace = SmallRwm(6);
  PointExperimentConfig config = BasePointConfig(trace, 6);
  config.scheduler = PointScheduler::kLocalSearch;
  const double plain = RunPointExperiment(config).avg_utility;
  config.sensors.random_privacy = true;
  config.sensors.linear_energy = true;
  const double burdened = RunPointExperiment(config).avg_utility;
  EXPECT_LT(burdened, plain);
}

TEST(PointExperimentTest, ShortLifetimeWearsSensorsOut) {
  const Trace trace = SmallRwm(10);
  PointExperimentConfig config = BasePointConfig(trace, 10);
  config.scheduler = PointScheduler::kLocalSearch;
  config.sensors.lifetime = 2;  // drastic: most sensors die early
  const ExperimentResult short_life = RunPointExperiment(config);
  config.sensors.lifetime = 10;
  const ExperimentResult long_life = RunPointExperiment(config);
  EXPECT_LT(short_life.avg_utility, long_life.avg_utility);
}

TEST(AggregateExperimentTest, GreedyBeatsBaseline) {
  SyntheticNokiaConfig nokia;
  nokia.num_slots = 6;
  nokia.num_total_sensors = 300;
  nokia.num_base_users = 100;
  const Trace trace = GenerateSyntheticNokia(nokia);
  AggregateExperimentConfig config;
  config.trace = &trace;
  config.working_region = NokiaWorkingRegion(nokia);
  config.num_slots = 6;
  config.budget_factor = 10.0;
  config.sensors.lifetime = 6;
  config.greedy = true;
  const ExperimentResult greedy = RunAggregateExperiment(config);
  config.greedy = false;
  const ExperimentResult baseline = RunAggregateExperiment(config);
  EXPECT_GT(greedy.avg_utility, baseline.avg_utility);
  EXPECT_GE(greedy.avg_quality, 0.0);
  EXPECT_LE(greedy.avg_quality, 1.0);
}

TEST(LocationMonitoringExperimentTest, Alg2BeatsDesiredOnlyBaseline) {
  SyntheticNokiaConfig nokia;
  nokia.num_slots = 15;
  const Trace trace = GenerateSyntheticNokia(nokia);
  OzoneTraceConfig ozone;
  ozone.num_days = 1;
  ozone.slots_per_day = 15;
  const OzoneTrace history = GenerateOzoneTrace(ozone);

  LocationMonitoringExperimentConfig config;
  config.trace = &trace;
  config.working_region = NokiaWorkingRegion(nokia);
  config.num_slots = 15;
  config.budget_factor = 15.0;
  config.history_times = history.times;
  config.history_values = history.values;
  config.sensors.lifetime = 15;
  config.point_scheduler = PointScheduler::kOptimal;
  const ExperimentResult alg2 = RunLocationMonitoringExperiment(config);
  config.point_scheduler = PointScheduler::kBaseline;
  config.desired_times_only = true;
  const ExperimentResult baseline = RunLocationMonitoringExperiment(config);
  EXPECT_GE(alg2.avg_utility, baseline.avg_utility);
  EXPECT_GT(alg2.avg_quality, 0.0);
}

TEST(RegionMonitoringExperimentTest, Alg3BeatsBaselineInQuality) {
  GaussianField::Config field_config;
  field_config.num_slots = 12;
  const GaussianField field(field_config);
  RegionMonitoringExperimentConfig config;
  config.kernel = field.SpatialKernel();
  config.num_slots = 12;
  config.budget_factor = 15.0;
  config.sensors.lifetime = 12;
  config.use_alg3 = true;
  const ExperimentResult alg3 = RunRegionMonitoringExperiment(config);
  config.use_alg3 = false;
  const ExperimentResult baseline = RunRegionMonitoringExperiment(config);
  EXPECT_GE(alg3.avg_quality, baseline.avg_quality);
  EXPECT_GT(alg3.avg_value, 0.0);
}

TEST(QueryMixExperimentTest, Alg5BeatsBaseline) {
  SyntheticNokiaConfig nokia;
  nokia.num_slots = 8;
  nokia.num_total_sensors = 300;
  nokia.num_base_users = 100;
  const Trace trace = GenerateSyntheticNokia(nokia);
  OzoneTraceConfig ozone;
  ozone.num_days = 1;
  ozone.slots_per_day = 8;
  const OzoneTrace history = GenerateOzoneTrace(ozone);

  QueryMixExperimentConfig config;
  config.trace = &trace;
  config.working_region = NokiaWorkingRegion(nokia);
  config.num_slots = 8;
  config.budget_factor = 15.0;
  config.point_queries_per_slot = 100;
  config.mean_aggregate_queries = 10;
  config.history_times = history.times;
  config.history_values = history.values;
  config.sensors.lifetime = 8;
  config.use_alg5 = true;
  const QueryMixResultSummary alg5 = RunQueryMixExperiment(config);
  config.use_alg5 = false;
  const QueryMixResultSummary baseline = RunQueryMixExperiment(config);
  EXPECT_GT(alg5.avg_utility, baseline.avg_utility);
  EXPECT_GE(alg5.point_satisfaction, 0.0);
  EXPECT_LE(alg5.point_satisfaction, 1.0);
}

TEST(ApplyTraceSlotTest, PositionsAndPresencePropagate) {
  Trace trace(2, 2);
  trace.Set(0, 0, Point{1, 2});
  std::vector<Sensor> sensors;
  sensors.emplace_back(0, SensorProfile{});
  sensors.emplace_back(1, SensorProfile{});
  ApplyTraceSlot(trace, 0, &sensors);
  EXPECT_TRUE(sensors[0].available());
  EXPECT_DOUBLE_EQ(sensors[0].position().x, 1.0);
  EXPECT_FALSE(sensors[1].available());
}

}  // namespace
}  // namespace psens
