#include "core/event_detection.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace psens {
namespace {

TEST(DetectionConfidenceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DetectionConfidence({}), 0.0);
  EXPECT_DOUBLE_EQ(DetectionConfidence({1.0}), 1.0);
  EXPECT_DOUBLE_EQ(DetectionConfidence({0.5}), 0.5);
  EXPECT_DOUBLE_EQ(DetectionConfidence({0.5, 0.5}), 0.75);
  EXPECT_NEAR(DetectionConfidence({0.7, 0.7, 0.7}), 1.0 - 0.027, 1e-12);
}

TEST(DetectionConfidenceTest, MonotoneInReadings) {
  std::vector<double> qualities;
  double previous = 0.0;
  for (int i = 0; i < 5; ++i) {
    qualities.push_back(0.4);
    const double c = DetectionConfidence(qualities);
    EXPECT_GT(c, previous);
    previous = c;
  }
}

TEST(RequiredRedundancyTest, KnownValues) {
  // theta 0.7: one reading gives 0.7, two give 0.91, three 0.973.
  EXPECT_EQ(RequiredRedundancy(0.7, 0.7), 1);
  EXPECT_EQ(RequiredRedundancy(0.9, 0.7), 2);
  EXPECT_EQ(RequiredRedundancy(0.95, 0.7), 3);
  EXPECT_EQ(RequiredRedundancy(0.5, 0.9), 1);
}

TEST(RequiredRedundancyTest, CappedAtMax) {
  EXPECT_EQ(RequiredRedundancy(0.999999, 0.1, 5), 5);
  EXPECT_GE(RequiredRedundancy(0.0, 0.5), 1);
}

EventDetectionQuery MakeQuery() {
  EventDetectionQuery q;
  q.id = 1;
  q.location = Point{10, 10};
  q.t1 = 0;
  q.t2 = 5;
  q.threshold = 50.0;
  q.confidence = 0.9;
  q.budget_per_slot = 40.0;
  return q;
}

TEST(EventDetectionManagerTest, CreatesRedundantPointQueries) {
  EventDetectionManager manager(EventDetectionManager::Config{0.7, 8});
  manager.AddQuery(MakeQuery());
  const std::vector<PointQuery> created = manager.CreatePointQueries(0);
  // confidence 0.9 at expected theta 0.7 -> 2 redundant readings.
  ASSERT_EQ(created.size(), 2u);
  EXPECT_DOUBLE_EQ(created[0].budget, 20.0);
  EXPECT_EQ(created[0].parent, 0);
  // Readings are placed on a small ring, at distinct locations.
  EXPECT_FALSE(created[0].location == created[1].location);
  EXPECT_NEAR(Distance(created[0].location, Point{10, 10}), 0.5, 1e-9);
}

TEST(EventDetectionManagerTest, InactiveQueryCreatesNothing) {
  EventDetectionManager manager(EventDetectionManager::Config{});
  manager.AddQuery(MakeQuery());
  EXPECT_TRUE(manager.CreatePointQueries(99).empty());
}

TEST(EventDetectionManagerTest, FiresOnlyWithConfidenceAndThreshold) {
  EventDetectionManager manager(EventDetectionManager::Config{0.7, 8});
  manager.AddQuery(MakeQuery());
  const std::vector<PointQuery> created = manager.CreatePointQueries(0);
  ASSERT_EQ(created.size(), 2u);
  // Two distinct sensors with quality 0.7 each: confidence 0.91 >= 0.9.
  std::vector<PointAssignment> assignments(2);
  for (int i = 0; i < 2; ++i) {
    assignments[i].sensor = i;
    assignments[i].value = 1.0;
    assignments[i].quality = 0.7;
    assignments[i].payment = 1.0;
  }
  // Reading above the threshold on one sensor.
  const int fired = manager.ApplyResults(0, created, assignments, {60.0, 40.0});
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(manager.queries()[0].triggered);
  EXPECT_GT(manager.DetectionRate(), 0.0);
}

TEST(EventDetectionManagerTest, DuplicateSensorDoesNotDoubleCount) {
  EventDetectionManager manager(EventDetectionManager::Config{0.7, 8});
  manager.AddQuery(MakeQuery());
  const std::vector<PointQuery> created = manager.CreatePointQueries(0);
  ASSERT_EQ(created.size(), 2u);
  // The SAME sensor answers both ring queries: only one reading counts,
  // confidence 0.7 < 0.9 -> no detection even with a threshold crossing.
  std::vector<PointAssignment> assignments(2);
  for (int i = 0; i < 2; ++i) {
    assignments[i].sensor = 7;
    assignments[i].value = 1.0;
    assignments[i].quality = 0.7;
    assignments[i].payment = 1.0;
  }
  const int fired = manager.ApplyResults(0, created, assignments, {60.0, 60.0});
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(manager.queries()[0].triggered);
}

TEST(EventDetectionManagerTest, BelowThresholdReadingsDoNotFire) {
  EventDetectionManager manager(EventDetectionManager::Config{0.7, 8});
  manager.AddQuery(MakeQuery());
  const std::vector<PointQuery> created = manager.CreatePointQueries(0);
  std::vector<PointAssignment> assignments(created.size());
  for (size_t i = 0; i < created.size(); ++i) {
    assignments[i].sensor = static_cast<int>(i);
    assignments[i].value = 1.0;
    assignments[i].quality = 0.8;
    assignments[i].payment = 1.0;
  }
  const int fired =
      manager.ApplyResults(0, created, assignments, {10.0, 20.0});
  EXPECT_EQ(fired, 0);
  // Confidence was met, though: detection capability without an event.
  EXPECT_GT(manager.DetectionRate(), 0.0);
}

TEST(EventDetectionManagerTest, RemoveExpiredDropsFinishedQueries) {
  EventDetectionManager manager(EventDetectionManager::Config{});
  manager.AddQuery(MakeQuery());  // t2 = 5
  manager.RemoveExpired(5);
  EXPECT_EQ(manager.queries().size(), 1u);
  manager.RemoveExpired(6);
  EXPECT_TRUE(manager.queries().empty());
}

}  // namespace
}  // namespace psens
