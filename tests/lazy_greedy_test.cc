// Tests of the CELF lazy-greedy engine (src/core/lazy_greedy.h): on
// submodular instances the lazy run must select the identical sensor
// sequence — with identical payments and accounting — as the eager
// Algorithm 1 rescan, while making strictly fewer valuation calls, and it
// must inherit the Theorem 1 properties on arbitrary (non-submodular)
// instances.

#include "core/lazy_greedy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "sim/workload.h"

namespace psens {
namespace {

/// Slot with perfectly accurate, fully trusted sensors: every theta is 1,
/// so the Eq. 5 mean-quality factor is constant and the aggregate
/// valuation degenerates to budget * coverage — monotone submodular.
SlotContext MakeUniformThetaSlot(int num_sensors, uint64_t seed) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 10.0;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
    s.cost = rng.Uniform(5.0, 15.0);
    s.inaccuracy = 0.0;
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

std::vector<std::unique_ptr<AggregateQuery>> MakeCoverageQueries(
    const SlotContext& slot, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<AggregateQuery>> queries;
  for (int i = 0; i < count; ++i) {
    AggregateQuery::Params params;
    params.id = i;
    params.region = RandomRect(Rect{0, 0, 40, 40}, 8.0, rng);
    params.budget = rng.Uniform(30.0, 80.0);
    params.sensing_range = 10.0;
    queries.push_back(std::make_unique<AggregateQuery>(params, slot));
  }
  return queries;
}

struct EngineRun {
  SelectionResult result;
  std::vector<double> payments;
  std::vector<double> values;
};

EngineRun RunEngine(const SlotContext& slot, int num_queries, uint64_t seed,
                    GreedyEngine engine) {
  auto queries = MakeCoverageQueries(slot, num_queries, seed);
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  EngineRun run;
  run.result = GreedySensorSelection(ptrs, slot, nullptr, engine);
  for (const auto& q : queries) {
    run.payments.push_back(q->TotalPayment());
    run.values.push_back(q->CurrentValue());
  }
  return run;
}

TEST(LazyGreedyTest, MatchesEagerOnSubmodularCoverageInstances) {
  for (int trial = 0; trial < 20; ++trial) {
    const SlotContext slot = MakeUniformThetaSlot(20, 500 + trial);
    const EngineRun eager = RunEngine(slot, 8, 900 + trial, GreedyEngine::kEager);
    const EngineRun lazy = RunEngine(slot, 8, 900 + trial, GreedyEngine::kLazy);
    // Identical selection *sequence*, not just set: tie-breaking matches.
    EXPECT_EQ(eager.result.selected_sensors, lazy.result.selected_sensors)
        << "trial " << trial;
    EXPECT_DOUBLE_EQ(eager.result.total_value, lazy.result.total_value);
    EXPECT_DOUBLE_EQ(eager.result.total_cost, lazy.result.total_cost);
    ASSERT_EQ(eager.payments.size(), lazy.payments.size());
    for (size_t i = 0; i < eager.payments.size(); ++i) {
      EXPECT_DOUBLE_EQ(eager.payments[i], lazy.payments[i]) << "query " << i;
      EXPECT_DOUBLE_EQ(eager.values[i], lazy.values[i]) << "query " << i;
    }
  }
}

TEST(LazyGreedyTest, MakesFewerValuationCallsWhenSelectingSeveralSensors) {
  int64_t eager_total = 0, lazy_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const SlotContext slot = MakeUniformThetaSlot(30, 700 + trial);
    const EngineRun eager = RunEngine(slot, 10, 800 + trial, GreedyEngine::kEager);
    const EngineRun lazy = RunEngine(slot, 10, 800 + trial, GreedyEngine::kLazy);
    EXPECT_LE(lazy.result.valuation_calls, eager.result.valuation_calls);
    eager_total += eager.result.valuation_calls;
    lazy_total += lazy.result.valuation_calls;
  }
  // Aggregate speedup over the trials; individual degenerate slots (no
  // selection) cost both engines the same single sweep.
  EXPECT_LT(lazy_total, eager_total);
}

TEST(LazyGreedyTest, MatchesEagerWithPointQueriesAndCostScale) {
  // Point multi-queries (max-of-selected valuation) are submodular; also
  // exercise the Eq. 18 cost-scale path.
  for (int trial = 0; trial < 10; ++trial) {
    SlotContext slot = MakeUniformThetaSlot(15, 300 + trial);
    Rng rng(400 + trial);
    std::vector<PointQuery> specs;
    for (int i = 0; i < 10; ++i) {
      PointQuery q;
      q.id = i;
      q.location = Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
      q.budget = rng.Uniform(10.0, 25.0);
      specs.push_back(q);
    }
    std::vector<double> scale;
    for (size_t s = 0; s < slot.sensors.size(); ++s) {
      scale.push_back(rng.Uniform(0.5, 1.5));
    }

    const auto run = [&](GreedyEngine engine) {
      std::vector<std::unique_ptr<PointMultiQuery>> queries;
      for (const PointQuery& q : specs) {
        queries.push_back(std::make_unique<PointMultiQuery>(q, &slot));
      }
      std::vector<MultiQuery*> ptrs;
      for (auto& q : queries) ptrs.push_back(q.get());
      return GreedySensorSelection(ptrs, slot, &scale, engine);
    };
    const SelectionResult eager = run(GreedyEngine::kEager);
    const SelectionResult lazy = run(GreedyEngine::kLazy);
    EXPECT_EQ(eager.selected_sensors, lazy.selected_sensors) << "trial " << trial;
    EXPECT_DOUBLE_EQ(eager.total_value, lazy.total_value);
    EXPECT_DOUBLE_EQ(eager.total_cost, lazy.total_cost);
  }
}

TEST(LazyGreedyTest, Theorem1PropertiesHoldOnNonSubmodularInstances) {
  // Random thetas re-activate Eq. 5's non-submodular mean-quality factor;
  // the lazy engine may legitimately diverge from eager there, but the
  // Theorem 1 guarantees must survive.
  for (int trial = 0; trial < 15; ++trial) {
    Rng rng(600 + trial);
    SlotContext slot = MakeUniformThetaSlot(15, 100 + trial);
    for (SlotSensor& s : slot.sensors) s.inaccuracy = rng.Uniform(0.0, 0.3);

    auto queries = MakeCoverageQueries(slot, 6, 200 + trial);
    std::vector<MultiQuery*> ptrs;
    for (auto& q : queries) ptrs.push_back(q.get());
    const SelectionResult result = LazyGreedySensorSelection(ptrs, slot);

    if (!result.selected_sensors.empty()) {
      EXPECT_GT(result.Utility(), 0.0) << "trial " << trial;
    }
    double total_payment = 0.0;
    for (const auto& q : queries) {
      EXPECT_GE(q->CurrentValue() + 1e-9, q->TotalPayment());
      total_payment += q->TotalPayment();
    }
    EXPECT_NEAR(total_payment, result.total_cost, 1e-6);
  }
}

TEST(LazyGreedyTest, SelectsNothingWhenCostsDominate) {
  SlotContext slot = MakeUniformThetaSlot(8, 1);
  for (SlotSensor& s : slot.sensors) s.cost = 1e7;
  auto queries = MakeCoverageQueries(slot, 4, 2);
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  const SelectionResult result = LazyGreedySensorSelection(ptrs, slot);
  EXPECT_TRUE(result.selected_sensors.empty());
  EXPECT_DOUBLE_EQ(result.total_value, 0.0);
  // One full initial sweep is the price of finding out nothing pays.
  EXPECT_EQ(result.valuation_calls,
            static_cast<int64_t>(slot.sensors.size() * queries.size()));
}

TEST(LazyGreedyTest, EmptySlotAndEmptyQueriesAreNoOps) {
  SlotContext empty_slot;
  empty_slot.time = 0;
  empty_slot.dmax = 5.0;
  auto queries = MakeCoverageQueries(empty_slot, 2, 3);
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  const SelectionResult no_sensors = LazyGreedySensorSelection(ptrs, empty_slot);
  EXPECT_TRUE(no_sensors.selected_sensors.empty());

  const SlotContext slot = MakeUniformThetaSlot(5, 4);
  std::vector<MultiQuery*> none;
  const SelectionResult no_queries = LazyGreedySensorSelection(none, slot);
  EXPECT_TRUE(no_queries.selected_sensors.empty());
  EXPECT_EQ(no_queries.valuation_calls, 0);
}

}  // namespace
}  // namespace psens
