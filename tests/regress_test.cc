#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "regress/linear_model.h"
#include "regress/sampling_time_selector.h"

namespace psens {
namespace {

TEST(LinearModelTest, ExactFitOnLinearData) {
  LinearModel model(1);
  const std::vector<double> t = {0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double ti : t) y.push_back(2.0 + 3.0 * ti);
  ASSERT_TRUE(model.Fit(t, y));
  EXPECT_NEAR(model.Predict(10.0), 32.0, 1e-6);
  EXPECT_NEAR(model.SumSquaredResiduals(t, y), 0.0, 1e-9);
}

TEST(LinearModelTest, QuadraticDegreeFitsParabola) {
  LinearModel model(2);
  const std::vector<double> t = {-2, -1, 0, 1, 2};
  std::vector<double> y;
  for (double ti : t) y.push_back(1.0 - ti + 0.5 * ti * ti);
  ASSERT_TRUE(model.Fit(t, y));
  EXPECT_NEAR(model.Predict(3.0), 1.0 - 3.0 + 4.5, 1e-6);
}

TEST(LinearModelTest, RejectsEmptyOrMismatched) {
  LinearModel model(1);
  EXPECT_FALSE(model.Fit({}, {}));
  EXPECT_FALSE(model.Fit({1.0, 2.0}, {1.0}));
  EXPECT_FALSE(model.fitted());
}

TEST(LinearModelTest, ResidualsAreValueMinusPrediction) {
  LinearModel model(1);
  const std::vector<double> t = {0, 1, 2};
  const std::vector<double> y = {0, 2, 3};
  ASSERT_TRUE(model.Fit(t, y));
  const std::vector<double> r = model.Residuals(t, y);
  ASSERT_EQ(r.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(r[i], y[i] - model.Predict(t[i]), 1e-12);
  }
}

TEST(SubsetModelSsrTest, EmptySubsetIsTotalSumOfSquares) {
  const std::vector<double> t = {0, 1, 2};
  const std::vector<double> y = {1, 2, 2};
  EXPECT_DOUBLE_EQ(SubsetModelSsr(t, y, {}), 1 + 4 + 4);
}

TEST(SubsetModelSsrTest, FullSubsetMatchesFullFit) {
  Rng rng(3);
  std::vector<double> t, y;
  for (int i = 0; i < 20; ++i) {
    t.push_back(i);
    y.push_back(0.5 * i + rng.Normal(0, 1.0));
  }
  std::vector<int> all(20);
  for (int i = 0; i < 20; ++i) all[i] = i;
  LinearModel model(1);
  model.Fit(t, y);
  EXPECT_NEAR(SubsetModelSsr(t, y, all), model.SumSquaredResiduals(t, y), 1e-9);
}

TEST(SubsetModelSsrTest, IgnoresOutOfRangeIndices) {
  const std::vector<double> t = {0, 1, 2};
  const std::vector<double> y = {0, 1, 2};
  EXPECT_NEAR(SubsetModelSsr(t, y, {0, 2, 99, -1}), 0.0, 1e-9);
}

TEST(SelectSamplingTimesTest, ReturnsRequestedCount) {
  Rng rng(7);
  std::vector<double> t, y;
  for (int i = 0; i < 30; ++i) {
    t.push_back(i);
    y.push_back(std::sin(0.3 * i) * 10 + rng.Normal(0, 0.5));
  }
  const std::vector<int> picked = SelectSamplingTimes(t, y, 5);
  EXPECT_EQ(picked.size(), 5u);
  // Sorted and unique.
  for (size_t i = 1; i < picked.size(); ++i) EXPECT_LT(picked[i - 1], picked[i]);
}

TEST(SelectSamplingTimesTest, ClampsKToSeriesLength) {
  const std::vector<double> t = {0, 1, 2};
  const std::vector<double> y = {0, 1, 2};
  EXPECT_EQ(SelectSamplingTimes(t, y, 10).size(), 3u);
  EXPECT_TRUE(SelectSamplingTimes(t, y, 0).empty());
  EXPECT_TRUE(SelectSamplingTimes({}, {}, 3).empty());
}

TEST(SelectSamplingTimesTest, GreedySelectionImprovesSsrOverPrefix) {
  Rng rng(9);
  std::vector<double> t, y;
  for (int i = 0; i < 25; ++i) {
    t.push_back(i);
    y.push_back(20.0 + 40.0 * std::sin(0.25 * i) + rng.Normal(0, 1.0));
  }
  const std::vector<int> picked = SelectSamplingTimes(t, y, 4);
  std::vector<int> prefix = {0, 1, 2, 3};  // naive: first four slots
  EXPECT_LE(SubsetModelSsr(t, y, picked), SubsetModelSsr(t, y, prefix) + 1e-9);
}

TEST(ResidualRatioTest, SampledEqualsDesiredGivesOne) {
  Rng rng(11);
  std::vector<double> t, y;
  for (int i = 0; i < 20; ++i) {
    t.push_back(i);
    y.push_back(std::cos(0.4 * i) * 5 + rng.Normal(0, 0.3));
  }
  const std::vector<int> desired = SelectSamplingTimes(t, y, 5);
  EXPECT_NEAR(ResidualRatio(t, y, desired, desired), 1.0, 1e-9);
}

TEST(ResidualRatioTest, NoSamplesIsZero) {
  const std::vector<double> t = {0, 1, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ResidualRatio(t, y, {0, 1}, {}), 0.0);
}

TEST(ResidualRatioTest, WorseSamplingTimesScoreBelowOne) {
  Rng rng(13);
  std::vector<double> t, y;
  for (int i = 0; i < 30; ++i) {
    t.push_back(i);
    y.push_back(10.0 + 30.0 * std::sin(0.2 * i) + rng.Normal(0, 0.5));
  }
  const std::vector<int> desired = SelectSamplingTimes(t, y, 5);
  // Clumped early samples explain the series worse than the chosen spread.
  const std::vector<int> clumped = {0, 1, 2, 3, 4};
  EXPECT_LT(ResidualRatio(t, y, desired, clumped), 1.0 + 1e-9);
}

}  // namespace
}  // namespace psens
