#include "common/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psens {
namespace {

TEST(PointTest, DistanceZeroForSamePoint) {
  const Point p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(p, p), 0.0);
}

TEST(PointTest, DistancePythagorean) {
  EXPECT_DOUBLE_EQ(Distance(Point{0, 0}, Point{3, 4}), 5.0);
}

TEST(PointTest, DistanceSymmetric) {
  const Point a{1.5, -2.0}, b{-3.0, 7.25};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(RectTest, AreaAndExtent) {
  const Rect r{1, 2, 4, 8};
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 6.0);
  EXPECT_DOUBLE_EQ(r.Area(), 18.0);
}

TEST(RectTest, DegenerateRectHasZeroArea) {
  EXPECT_DOUBLE_EQ((Rect{5, 5, 5, 9}).Area(), 0.0);
}

TEST(RectTest, ContainsInteriorAndBoundary) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.Contains(Point{5, 5}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(r.Contains(Point{10, 10}));
  EXPECT_FALSE(r.Contains(Point{10.001, 5}));
  EXPECT_FALSE(r.Contains(Point{-0.001, 5}));
}

TEST(RectTest, IntersectOverlapping) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 15, 15};
  const Rect i = a.Intersect(b);
  EXPECT_DOUBLE_EQ(i.x_min, 5.0);
  EXPECT_DOUBLE_EQ(i.y_min, 5.0);
  EXPECT_DOUBLE_EQ(i.x_max, 10.0);
  EXPECT_DOUBLE_EQ(i.y_max, 10.0);
  EXPECT_TRUE(a.Overlaps(b));
}

TEST(RectTest, IntersectDisjointIsEmpty) {
  const Rect a{0, 0, 1, 1};
  const Rect b{2, 2, 3, 3};
  EXPECT_DOUBLE_EQ(a.Intersect(b).Area(), 0.0);
  EXPECT_FALSE(a.Overlaps(b));
}

TEST(RectTest, ClampPullsPointsInside) {
  const Rect r{0, 0, 10, 10};
  const Point c = r.Clamp(Point{-5, 20});
  EXPECT_DOUBLE_EQ(c.x, 0.0);
  EXPECT_DOUBLE_EQ(c.y, 10.0);
}

TEST(TrajectoryTest, LengthOfPolyline) {
  Trajectory t;
  t.waypoints = {{0, 0}, {3, 4}, {3, 10}};
  EXPECT_DOUBLE_EQ(t.Length(), 11.0);
}

TEST(TrajectoryTest, LengthOfSingleOrEmpty) {
  Trajectory t;
  EXPECT_DOUBLE_EQ(t.Length(), 0.0);
  t.waypoints = {{1, 1}};
  EXPECT_DOUBLE_EQ(t.Length(), 0.0);
}

TEST(TrajectoryTest, BoundingBoxCoversWaypoints) {
  Trajectory t;
  t.waypoints = {{1, 5}, {-2, 3}, {4, -1}};
  const Rect box = t.BoundingBox();
  EXPECT_DOUBLE_EQ(box.x_min, -2.0);
  EXPECT_DOUBLE_EQ(box.y_min, -1.0);
  EXPECT_DOUBLE_EQ(box.x_max, 4.0);
  EXPECT_DOUBLE_EQ(box.y_max, 5.0);
}

TEST(TrajectoryTest, PointSegmentDistanceEndpointsAndInterior) {
  // Perpendicular projection inside the segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{5, 5}, Point{0, 0}, Point{10, 0}),
                   5.0);
  // Projection falls outside: distance to nearest endpoint.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{-3, 4}, Point{0, 0}, Point{10, 0}),
                   5.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{3, 4}, Point{0, 0}, Point{0, 0}),
                   5.0);
}

TEST(TrajectoryTest, DistanceToPicksClosestSegment) {
  Trajectory t;
  t.waypoints = {{0, 0}, {10, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(t.DistanceTo(Point{5, 2}), 2.0);
  EXPECT_DOUBLE_EQ(t.DistanceTo(Point{12, 5}), 2.0);
}

TEST(TrajectoryTest, DistanceToEmptyIsInfinite) {
  Trajectory t;
  EXPECT_TRUE(std::isinf(t.DistanceTo(Point{0, 0})));
}

}  // namespace
}  // namespace psens
