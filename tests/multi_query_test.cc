#include "core/multi_query.h"

#include <gtest/gtest.h>

namespace psens {
namespace {

SlotContext OneSensorSlot(const Point& p, double cost = 10.0) {
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  SlotSensor s;
  s.index = 0;
  s.sensor_id = 7;
  s.location = p;
  s.cost = cost;
  slot.sensors.push_back(s);
  return slot;
}

TEST(PointMultiQueryTest, MarginalEqualsEquation3Value) {
  const SlotContext slot = OneSensorSlot(Point{0, 0});
  PointQuery q;
  q.id = 3;
  q.location = Point{2.5, 0};  // theta 0.5
  q.budget = 20.0;
  PointMultiQuery m(q, &slot);
  EXPECT_DOUBLE_EQ(m.MarginalValue(0), 10.0);
  EXPECT_EQ(m.id(), 3);
  EXPECT_DOUBLE_EQ(m.MaxValue(), 20.0);
}

TEST(PointMultiQueryTest, SecondWorseSensorHasNonPositiveMarginal) {
  SlotContext slot = OneSensorSlot(Point{0, 0});
  SlotSensor far;
  far.index = 1;
  far.sensor_id = 8;
  far.location = Point{4, 0};  // theta 0.2 for a query at origin
  far.cost = 10.0;
  slot.sensors.push_back(far);
  PointQuery q;
  q.location = Point{0, 0};
  q.budget = 10.0;
  PointMultiQuery m(q, &slot);
  m.Commit(0, 1.0);
  EXPECT_DOUBLE_EQ(m.CurrentValue(), 10.0);
  EXPECT_LE(m.MarginalValue(1), 0.0);
  EXPECT_EQ(m.BestSensor(), 0);
}

TEST(PointMultiQueryTest, BetterSensorImprovesBest) {
  SlotContext slot = OneSensorSlot(Point{4, 0});  // theta 0.2
  SlotSensor close;
  close.index = 1;
  close.sensor_id = 9;
  close.location = Point{0, 0};  // theta 1.0
  close.cost = 10.0;
  slot.sensors.push_back(close);
  PointQuery q;
  q.location = Point{0, 0};
  q.budget = 10.0;
  q.theta_min = 0.1;  // keep the theta = 0.2 sensor clear of the cutoff
  PointMultiQuery m(q, &slot);
  m.Commit(0, 1.0);
  EXPECT_DOUBLE_EQ(m.MarginalValue(1), 10.0 - 2.0);
  m.Commit(1, 2.0);
  EXPECT_EQ(m.BestSensor(), 1);
  EXPECT_DOUBLE_EQ(m.CurrentValue(), 10.0);
  EXPECT_DOUBLE_EQ(m.BestQuality(), 1.0);
  EXPECT_DOUBLE_EQ(m.TotalPayment(), 3.0);
}

TEST(PointMultiQueryTest, BelowThresholdHasZeroValue) {
  const SlotContext slot = OneSensorSlot(Point{4.5, 0});  // theta 0.1 < 0.2
  PointQuery q;
  q.location = Point{0, 0};
  q.budget = 10.0;
  q.theta_min = 0.2;
  PointMultiQuery m(q, &slot);
  EXPECT_DOUBLE_EQ(m.MarginalValue(0), 0.0);
}

TEST(PointMultiQueryTest, ResetClearsBestSensor) {
  const SlotContext slot = OneSensorSlot(Point{0, 0});
  PointQuery q;
  q.location = Point{0, 0};
  q.budget = 10.0;
  PointMultiQuery m(q, &slot);
  m.Commit(0, 1.0);
  m.ResetSelection();
  EXPECT_EQ(m.BestSensor(), -1);
  EXPECT_DOUBLE_EQ(m.CurrentValue(), 0.0);
  EXPECT_DOUBLE_EQ(m.BestQuality(), 0.0);
}

TEST(CallbackMultiQueryTest, UsesCallbackForValues) {
  CallbackMultiQuery q(5,
                       [](const std::vector<int>& set) {
                         return 3.0 * static_cast<double>(set.size());
                       },
                       100.0);
  EXPECT_DOUBLE_EQ(q.MarginalValue(0), 3.0);
  q.Commit(0, 1.0);
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 3.0);
  EXPECT_DOUBLE_EQ(q.MarginalValue(4), 3.0);
  q.Commit(4, 1.0);
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 6.0);
  EXPECT_DOUBLE_EQ(q.TotalPayment(), 2.0);
  EXPECT_EQ(q.SelectedSensors().size(), 2u);
}

TEST(CallbackMultiQueryTest, CountsValuationCalls) {
  CallbackMultiQuery q(1, [](const std::vector<int>&) { return 1.0; }, 1.0);
  const int64_t before = q.ValuationCalls();
  (void)q.MarginalValue(0);
  (void)q.MarginalValue(1);
  EXPECT_EQ(q.ValuationCalls() - before, 2);
}

}  // namespace
}  // namespace psens
