// The spatial-index pruning contract: indexed and unindexed runs of every
// scheduler must produce *bit-identical* selections, payments, and
// accounting — pruning only skips work whose result is exactly zero.
// Covers the slot schedulers directly and every fig02-fig10 experiment
// runner end to end (SlotIndexPolicy::kAuto vs kNone).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/multi_sensor_point_query.h"
#include "core/point_scheduling.h"
#include "core/slot.h"
#include "data/gaussian_field.h"
#include "data/ozone_trace.h"
#include "mobility/random_waypoint.h"
#include "mobility/synthetic_nokia.h"
#include "sim/experiments.h"
#include "sim/workload.h"

namespace psens {
namespace {

SlotContext MakeSlot(int num_sensors, uint64_t seed, SlotIndexPolicy policy) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  slot.index_policy = policy;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    // Two clusters plus background, so candidate pruning actually bites.
    const double cx = (i % 3 == 0) ? 10.0 : 40.0;
    s.location = i % 5 == 4
                     ? Point{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)}
                     : Point{rng.Normal(cx, 4.0), rng.Normal(cx, 4.0)};
    s.cost = rng.Uniform(5.0, 15.0);
    s.inaccuracy = rng.Uniform(0.0, 0.2);
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  AttachSlotIndex(slot);
  return slot;
}

std::vector<PointQuery> MakeQueries(int count, uint64_t seed) {
  Rng rng(seed);
  return GeneratePointQueries(count, Rect{0, 0, 50, 50},
                              BudgetScheme{15.0, false, 0.0}, 0.2, 0, rng);
}

void ExpectSameSchedule(const PointScheduleResult& a, const PointScheduleResult& b) {
  EXPECT_EQ(a.selected_sensors, b.selected_sensors);
  EXPECT_EQ(a.total_value, b.total_value);
  EXPECT_EQ(a.total_cost, b.total_cost);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].sensor, b.assignments[i].sensor) << "query " << i;
    EXPECT_EQ(a.assignments[i].value, b.assignments[i].value) << "query " << i;
    EXPECT_EQ(a.assignments[i].quality, b.assignments[i].quality) << "query " << i;
    EXPECT_EQ(a.assignments[i].payment, b.assignments[i].payment) << "query " << i;
  }
}

TEST(PruningEquivalenceTest, PointSchedulersMatchUnprunedBitForBit) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::vector<PointQuery> queries = MakeQueries(120, 900 + seed);
    const SlotContext indexed = MakeSlot(200, seed, SlotIndexPolicy::kAuto);
    SlotContext plain = MakeSlot(200, seed, SlotIndexPolicy::kNone);
    ASSERT_NE(indexed.index, nullptr);
    ASSERT_EQ(plain.index, nullptr);
    for (PointScheduler scheduler :
         {PointScheduler::kLocalSearch, PointScheduler::kRandomizedLocalSearch,
          PointScheduler::kBaseline, PointScheduler::kOptimal}) {
      SCOPED_TRACE(static_cast<int>(scheduler));
      PointSchedulingOptions options;
      options.scheduler = scheduler;
      options.seed = 42 + seed;
      options.node_limit = 200'000;
      ExpectSameSchedule(SchedulePointQueries(queries, indexed, options),
                         SchedulePointQueries(queries, plain, options));
    }
  }
}

TEST(PruningEquivalenceTest, BothIndexKindsMatchUnpruned) {
  const std::vector<PointQuery> queries = MakeQueries(100, 5);
  SlotContext plain = MakeSlot(150, 4, SlotIndexPolicy::kNone);
  PointSchedulingOptions options;
  const PointScheduleResult reference = SchedulePointQueries(queries, plain, options);
  for (SlotIndexPolicy policy : {SlotIndexPolicy::kGrid, SlotIndexPolicy::kKdTree}) {
    const SlotContext slot = MakeSlot(150, 4, policy);
    ASSERT_NE(slot.index, nullptr);
    ExpectSameSchedule(SchedulePointQueries(queries, slot, options), reference);
  }
}

struct GreedyRun {
  SelectionResult result;
  std::vector<double> payments;
  std::vector<double> values;
};

GreedyRun RunMixedGreedy(const SlotContext& slot, uint64_t seed,
                         GreedyEngine engine, bool baseline = false) {
  Rng rng(seed);
  std::vector<std::unique_ptr<MultiQuery>> owned;
  for (int i = 0; i < 12; ++i) {
    PointQuery q;
    q.id = i;
    q.location = Point{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    q.budget = rng.Uniform(10.0, 25.0);
    owned.push_back(std::make_unique<PointMultiQuery>(q, &slot));
  }
  for (int i = 0; i < 6; ++i) {
    MultiSensorPointQuery::Params params;
    params.id = 100 + i;
    params.location = Point{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    params.budget = rng.Uniform(20.0, 50.0);
    params.redundancy = 3;
    owned.push_back(std::make_unique<MultiSensorPointQuery>(params, &slot));
  }
  for (int i = 0; i < 5; ++i) {
    AggregateQuery::Params params;
    params.id = 200 + i;
    params.region = RandomRect(Rect{0, 0, 50, 50}, 8.0, rng);
    params.budget = rng.Uniform(40.0, 90.0);
    params.sensing_range = 10.0;
    owned.push_back(std::make_unique<AggregateQuery>(params, slot));
  }
  std::vector<MultiQuery*> ptrs;
  for (auto& q : owned) ptrs.push_back(q.get());

  GreedyRun run;
  run.result = baseline ? BaselineSequentialSelection(ptrs, slot)
                        : GreedySensorSelection(ptrs, slot, nullptr, engine);
  for (const auto& q : owned) {
    run.payments.push_back(q->TotalPayment());
    run.values.push_back(q->CurrentValue());
  }
  return run;
}

void ExpectSameGreedy(const GreedyRun& a, const GreedyRun& b) {
  EXPECT_EQ(a.result.selected_sensors, b.result.selected_sensors);
  EXPECT_EQ(a.result.total_value, b.result.total_value);
  EXPECT_EQ(a.result.total_cost, b.result.total_cost);
  ASSERT_EQ(a.payments.size(), b.payments.size());
  for (size_t i = 0; i < a.payments.size(); ++i) {
    EXPECT_EQ(a.payments[i], b.payments[i]) << "query " << i;
    EXPECT_EQ(a.values[i], b.values[i]) << "query " << i;
  }
}

TEST(PruningEquivalenceTest, GreedyEnginesMatchUnprunedOnMixedQueries) {
  for (uint64_t seed : {10ull, 11ull, 12ull}) {
    const SlotContext indexed = MakeSlot(180, seed, SlotIndexPolicy::kAuto);
    const SlotContext plain = MakeSlot(180, seed, SlotIndexPolicy::kNone);
    ASSERT_NE(indexed.index, nullptr);
    for (GreedyEngine engine : {GreedyEngine::kEager, GreedyEngine::kLazy}) {
      SCOPED_TRACE(static_cast<int>(engine));
      const GreedyRun pruned = RunMixedGreedy(indexed, 700 + seed, engine);
      const GreedyRun reference = RunMixedGreedy(plain, 700 + seed, engine);
      ExpectSameGreedy(pruned, reference);
      // Pruning must reduce (never increase) the valuation work.
      EXPECT_LE(pruned.result.valuation_calls, reference.result.valuation_calls);
    }
    ExpectSameGreedy(RunMixedGreedy(indexed, 800 + seed, GreedyEngine::kLazy, true),
                     RunMixedGreedy(plain, 800 + seed, GreedyEngine::kLazy, true));
  }
}

// ---------------------------------------------------------------------------
// End-to-end: every fig02-fig10 experiment runner, kAuto vs kNone.
// ---------------------------------------------------------------------------

void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.avg_utility, b.avg_utility);
  EXPECT_EQ(a.satisfaction, b.satisfaction);
  EXPECT_EQ(a.avg_quality, b.avg_quality);
  EXPECT_EQ(a.avg_cost, b.avg_cost);
  EXPECT_EQ(a.avg_value, b.avg_value);
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.answered_queries, b.answered_queries);
}

TEST(PruningEquivalenceTest, PointExperimentMatches) {
  RandomWaypointConfig mobility;
  mobility.num_sensors = 120;
  mobility.num_slots = 6;
  mobility.seed = 5;
  const Trace trace = GenerateRandomWaypoint(mobility);
  PointExperimentConfig config;
  config.trace = &trace;
  config.working_region = CentralSubregion(80, 60);
  config.num_slots = 6;
  config.queries_per_slot = 80;
  config.budget = BudgetScheme{15.0, false, 0.0};
  config.sensors.lifetime = 6;
  config.seed = 17;
  for (PointScheduler scheduler : {PointScheduler::kLocalSearch,
                                   PointScheduler::kBaseline}) {
    SCOPED_TRACE(static_cast<int>(scheduler));
    config.scheduler = scheduler;
    config.index_policy = SlotIndexPolicy::kAuto;
    const ExperimentResult pruned = RunPointExperiment(config);
    config.index_policy = SlotIndexPolicy::kNone;
    const ExperimentResult plain = RunPointExperiment(config);
    ExpectSameResult(pruned, plain);
    EXPECT_GT(pruned.total_queries, 0);
  }
}

TEST(PruningEquivalenceTest, AggregateExperimentMatches) {
  SyntheticNokiaConfig nokia;
  nokia.num_slots = 5;
  nokia.num_total_sensors = 300;
  nokia.num_base_users = 100;
  const Trace trace = GenerateSyntheticNokia(nokia);
  AggregateExperimentConfig config;
  config.trace = &trace;
  config.working_region = NokiaWorkingRegion(nokia);
  config.num_slots = 5;
  config.budget_factor = 10.0;
  config.sensors.lifetime = 5;
  for (bool greedy : {true, false}) {
    SCOPED_TRACE(greedy);
    config.greedy = greedy;
    config.serving.index_policy = SlotIndexPolicy::kAuto;
    const ExperimentResult pruned = RunAggregateExperiment(config);
    config.serving.index_policy = SlotIndexPolicy::kNone;
    const ExperimentResult plain = RunAggregateExperiment(config);
    ExpectSameResult(pruned, plain);
  }
}

TEST(PruningEquivalenceTest, LocationMonitoringExperimentMatches) {
  SyntheticNokiaConfig nokia;
  nokia.num_slots = 10;
  const Trace trace = GenerateSyntheticNokia(nokia);
  OzoneTraceConfig ozone;
  ozone.num_days = 1;
  ozone.slots_per_day = 10;
  const OzoneTrace history = GenerateOzoneTrace(ozone);
  LocationMonitoringExperimentConfig config;
  config.trace = &trace;
  config.working_region = NokiaWorkingRegion(nokia);
  config.num_slots = 10;
  config.budget_factor = 15.0;
  config.history_times = history.times;
  config.history_values = history.values;
  config.sensors.lifetime = 10;
  config.point_scheduler = PointScheduler::kOptimal;
  config.index_policy = SlotIndexPolicy::kAuto;
  const ExperimentResult pruned = RunLocationMonitoringExperiment(config);
  config.index_policy = SlotIndexPolicy::kNone;
  const ExperimentResult plain = RunLocationMonitoringExperiment(config);
  ExpectSameResult(pruned, plain);
}

TEST(PruningEquivalenceTest, RegionMonitoringExperimentMatches) {
  GaussianField::Config field_config;
  field_config.num_slots = 8;
  const GaussianField field(field_config);
  RegionMonitoringExperimentConfig config;
  config.kernel = field.SpatialKernel();
  config.num_slots = 8;
  config.num_sensors = 40;  // above the kAuto threshold so pruning engages
  config.budget_factor = 15.0;
  config.sensors.lifetime = 8;
  config.index_policy = SlotIndexPolicy::kAuto;
  const ExperimentResult pruned = RunRegionMonitoringExperiment(config);
  config.index_policy = SlotIndexPolicy::kNone;
  const ExperimentResult plain = RunRegionMonitoringExperiment(config);
  ExpectSameResult(pruned, plain);
}

TEST(PruningEquivalenceTest, QueryMixExperimentMatches) {
  SyntheticNokiaConfig nokia;
  nokia.num_slots = 6;
  nokia.num_total_sensors = 300;
  nokia.num_base_users = 100;
  const Trace trace = GenerateSyntheticNokia(nokia);
  OzoneTraceConfig ozone;
  ozone.num_days = 1;
  ozone.slots_per_day = 6;
  const OzoneTrace history = GenerateOzoneTrace(ozone);
  QueryMixExperimentConfig config;
  config.trace = &trace;
  config.working_region = NokiaWorkingRegion(nokia);
  config.num_slots = 6;
  config.budget_factor = 15.0;
  config.point_queries_per_slot = 80;
  config.mean_aggregate_queries = 8;
  config.history_times = history.times;
  config.history_values = history.values;
  config.sensors.lifetime = 6;
  for (bool alg5 : {true, false}) {
    SCOPED_TRACE(alg5);
    config.use_alg5 = alg5;
    config.serving.index_policy = SlotIndexPolicy::kAuto;
    const QueryMixResultSummary pruned = RunQueryMixExperiment(config);
    config.serving.index_policy = SlotIndexPolicy::kNone;
    const QueryMixResultSummary plain = RunQueryMixExperiment(config);
    EXPECT_EQ(pruned.avg_utility, plain.avg_utility);
    EXPECT_EQ(pruned.point_quality, plain.point_quality);
    EXPECT_EQ(pruned.point_satisfaction, plain.point_satisfaction);
    EXPECT_EQ(pruned.aggregate_quality, plain.aggregate_quality);
    EXPECT_EQ(pruned.monitoring_quality, plain.monitoring_quality);
    EXPECT_EQ(pruned.avg_cost, plain.avg_cost);
    EXPECT_EQ(pruned.avg_value, plain.avg_value);
  }
}

TEST(PruningEquivalenceTest, LargeClusteredWorkloadMatches) {
  // The fig11 scenario shape at test-friendly scale: clustered population,
  // clustered queries, both schedulers.
  ClusteredPopulationConfig config;
  config.count = 3000;
  config.num_clusters = 8;
  config.cluster_sigma = 6.0;
  config.density_skew = 1.2;
  Rng rng(99);
  const ScaleScenario scenario =
      GenerateClusteredSensors(config, Rect{0, 0, 80, 80}, rng);
  const std::vector<PointQuery> queries = GenerateClusteredPointQueries(
      150, scenario, config, BudgetScheme{15.0, false, 0.0}, 0.2, 0, rng);
  const SlotContext indexed = BuildSlotContext(
      scenario.sensors, scenario.field, 0, 5.0, SlotIndexPolicy::kAuto);
  const SlotContext plain = BuildSlotContext(
      scenario.sensors, scenario.field, 0, 5.0, SlotIndexPolicy::kNone);
  ASSERT_NE(indexed.index, nullptr);
  for (PointScheduler scheduler :
       {PointScheduler::kLocalSearch, PointScheduler::kBaseline}) {
    PointSchedulingOptions options;
    options.scheduler = scheduler;
    ExpectSameSchedule(SchedulePointQueries(queries, indexed, options),
                       SchedulePointQueries(queries, plain, options));
  }
}

}  // namespace
}  // namespace psens
