#include "core/location_monitoring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace psens {
namespace {

/// A simple sinusoidal history over 50 slots.
void MakeHistory(std::vector<double>* times, std::vector<double>* values) {
  times->clear();
  values->clear();
  for (int i = 0; i < 50; ++i) {
    times->push_back(i);
    values->push_back(20.0 + 30.0 * std::sin(0.15 * i));
  }
}

LocationMonitoringQuery MakeQuery(int id = 1) {
  LocationMonitoringQuery q;
  q.id = id;
  q.location = Point{5, 5};
  q.t1 = 10;
  q.t2 = 25;
  q.budget = 100.0;
  q.desired = {12, 18, 24};
  return q;
}

LocationMonitoringManager::Config DefaultConfig() {
  LocationMonitoringManager::Config config;
  config.alpha = 0.5;
  return config;
}

PointAssignment Satisfied(double quality, double payment) {
  PointAssignment a;
  a.sensor = 0;
  a.value = quality;  // value>0 marks satisfaction
  a.quality = quality;
  a.payment = payment;
  return a;
}

TEST(LocationMonitoringTest, NoQueriesNoPointQueries) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  EXPECT_TRUE(manager.CreatePointQueries(5).empty());
}

TEST(LocationMonitoringTest, InactiveQueryCreatesNothing) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery());
  EXPECT_TRUE(manager.CreatePointQueries(5).empty());   // before t1
  EXPECT_TRUE(manager.CreatePointQueries(30).empty());  // after t2
}

TEST(LocationMonitoringTest, DesiredSlotGetsFullValuePointQuery) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery());
  const std::vector<PointQuery> created = manager.CreatePointQueries(12);
  ASSERT_EQ(created.size(), 1u);
  EXPECT_GT(created[0].budget, 0.0);
  EXPECT_EQ(created[0].parent, 0);
  EXPECT_DOUBLE_EQ(created[0].location.x, 5.0);
}

TEST(LocationMonitoringTest, OpportunisticBudgetCappedByAlphaSurplus) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery());
  // Satisfy the first desired slot for free -> surplus accrues.
  auto at12 = manager.CreatePointQueries(12);
  ASSERT_EQ(at12.size(), 1u);
  manager.ApplyResults(12, at12, {Satisfied(1.0, 0.0)});
  const LocationMonitoringQuery& q = manager.queries()[0];
  const double surplus = q.value - q.spent;
  ASSERT_GT(surplus, 0.0);
  // Slot 13 is not desired (next desired 18 still ahead): opportunistic.
  const auto at13 = manager.CreatePointQueries(13);
  ASSERT_EQ(at13.size(), 1u);
  EXPECT_LE(at13[0].budget, 0.5 * surplus + 1e-9);
}

TEST(LocationMonitoringTest, MissedDesiredSlotTriggersCatchUp) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery());
  // Desired slot 12 fails (unsatisfied).
  auto at12 = manager.CreatePointQueries(12);
  manager.ApplyResults(12, at12, {PointAssignment{}});
  // Slot 13: catch-up -> full-value point query (not alpha-capped); with
  // zero accrued value the opportunistic cap would have been 0.
  const auto at13 = manager.CreatePointQueries(13);
  ASSERT_EQ(at13.size(), 1u);
  EXPECT_GT(at13[0].budget, 0.0);
}

TEST(LocationMonitoringTest, SuccessfulCatchUpReturnsToOpportunisticMode) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery());
  auto at12 = manager.CreatePointQueries(12);
  manager.ApplyResults(12, at12, {PointAssignment{}});  // miss
  auto at13 = manager.CreatePointQueries(13);
  manager.ApplyResults(13, at13, {Satisfied(0.9, 2.0)});  // catch up
  const LocationMonitoringQuery& q = manager.queries()[0];
  EXPECT_EQ(q.last_satisfied, 12);
  EXPECT_EQ(q.desired[q.next_desired], 18);
}

TEST(LocationMonitoringTest, BaselineModeOnlyDesiredSlots) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager::Config config = DefaultConfig();
  config.desired_times_only = true;
  LocationMonitoringManager manager(t, v, config);
  manager.AddQuery(MakeQuery());
  EXPECT_EQ(manager.CreatePointQueries(12).size(), 1u);
  EXPECT_TRUE(manager.CreatePointQueries(13).empty());
  EXPECT_TRUE(manager.CreatePointQueries(14).empty());
}

TEST(LocationMonitoringTest, ApplyResultsAccumulatesStateAndValue) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery());
  auto created = manager.CreatePointQueries(12);
  const double realized = manager.ApplyResults(12, created, {Satisfied(0.8, 3.0)});
  EXPECT_GT(realized, 0.0);
  const LocationMonitoringQuery& q = manager.queries()[0];
  ASSERT_EQ(q.sampled.size(), 1u);
  EXPECT_EQ(q.sampled[0], 12);
  EXPECT_DOUBLE_EQ(q.qualities[0], 0.8);
  EXPECT_DOUBLE_EQ(q.spent, 3.0);
  EXPECT_NEAR(q.value, realized, 1e-12);
}

TEST(LocationMonitoringTest, ValuationZeroWithoutSamples) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  const LocationMonitoringQuery q = MakeQuery();
  EXPECT_DOUBLE_EQ(manager.Valuation(q, {}, {}), 0.0);
}

TEST(LocationMonitoringTest, ValuationScalesWithQuality) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  const LocationMonitoringQuery q = MakeQuery();
  const double high = manager.Valuation(q, q.desired, {1.0, 1.0, 1.0});
  const double low = manager.Valuation(q, q.desired, {0.5, 0.5, 0.5});
  EXPECT_NEAR(low, high / 2.0, 1e-9);
  // Sampling exactly the desired times at quality 1 yields G = 1: value =
  // budget.
  EXPECT_NEAR(high, q.budget, 1e-6);
}

TEST(LocationMonitoringTest, RemoveExpiredTracksCompletedQuality) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery());
  auto created = manager.CreatePointQueries(12);
  manager.ApplyResults(12, created, {Satisfied(1.0, 2.0)});
  manager.RemoveExpired(26);  // t2 = 25 < 26
  EXPECT_TRUE(manager.queries().empty());
  EXPECT_EQ(manager.num_completed(), 1);
  EXPECT_GT(manager.MeanCompletedQuality(), 0.0);
  EXPECT_LE(manager.MeanCompletedQuality(), 1.5);
}

TEST(LocationMonitoringTest, RemoveExpiredKeepsActiveQueries) {
  std::vector<double> t, v;
  MakeHistory(&t, &v);
  LocationMonitoringManager manager(t, v, DefaultConfig());
  manager.AddQuery(MakeQuery(1));
  LocationMonitoringQuery late = MakeQuery(2);
  late.t1 = 30;
  late.t2 = 45;
  manager.AddQuery(late);
  manager.RemoveExpired(26);
  ASSERT_EQ(manager.queries().size(), 1u);
  EXPECT_EQ(manager.queries()[0].id, 2);
}

}  // namespace
}  // namespace psens
