#include "core/query_mix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "sim/workload.h"

namespace psens {
namespace {

SlotContext MakeSlot(int num_sensors, uint64_t seed, int time = 12) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = time;
  slot.dmax = 10.0;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
    s.cost = 10.0;
    s.inaccuracy = rng.Uniform(0.0, 0.2);
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

void MakeHistory(std::vector<double>* times, std::vector<double>* values) {
  times->clear();
  values->clear();
  for (int i = 0; i < 50; ++i) {
    times->push_back(i);
    values->push_back(20.0 + 30.0 * std::sin(0.15 * i));
  }
}

struct MixFixture {
  SlotContext slot;
  std::vector<PointQuery> points;
  std::vector<AggregateQuery::Params> aggregates;
  std::vector<double> hist_times, hist_values;

  explicit MixFixture(uint64_t seed) : slot(MakeSlot(20, seed)) {
    Rng rng(seed + 1);
    points = GeneratePointQueries(15, Rect{0, 0, 40, 40},
                                  BudgetScheme{15.0, false, 0.0}, 0.2, 0, rng);
    aggregates = GenerateAggregateQueries(5, Rect{0, 0, 40, 40}, 10.0, 15.0,
                                          1000, rng);
    MakeHistory(&hist_times, &hist_values);
  }
};

TEST(QueryMixTest, GreedyAccountingIsConsistent) {
  MixFixture f(7);
  QueryMixOptions options;
  options.use_greedy = true;
  const QueryMixSlotResult r =
      RunQueryMixSlot(f.slot, f.points, f.aggregates, nullptr, nullptr, options);
  EXPECT_NEAR(r.total_value, r.point.value + r.aggregate.value, 1e-9);
  EXPECT_NEAR(r.Utility(), r.total_value - r.total_cost, 1e-12);
  EXPECT_EQ(r.point.total, 15);
  EXPECT_GE(r.point.answered, 0);
  EXPECT_LE(r.point.answered, r.point.total);
  // Selected sensors are unique and each contributes exactly one cost.
  std::set<int> unique(r.selected_sensors.begin(), r.selected_sensors.end());
  EXPECT_EQ(unique.size(), r.selected_sensors.size());
  EXPECT_NEAR(r.total_cost, 10.0 * r.selected_sensors.size(), 1e-9);
}

TEST(QueryMixTest, BaselineAccountingIsConsistent) {
  MixFixture f(9);
  QueryMixOptions options;
  options.use_greedy = false;
  const QueryMixSlotResult r =
      RunQueryMixSlot(f.slot, f.points, f.aggregates, nullptr, nullptr, options);
  EXPECT_NEAR(r.total_value, r.point.value + r.aggregate.value, 1e-9);
  std::set<int> unique(r.selected_sensors.begin(), r.selected_sensors.end());
  EXPECT_EQ(unique.size(), r.selected_sensors.size());
}

TEST(QueryMixTest, GreedyBeatsBaselineOnPooledWorkload) {
  double greedy_total = 0.0, baseline_total = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    MixFixture f(100 + trial);
    QueryMixOptions options;
    options.use_greedy = true;
    greedy_total +=
        RunQueryMixSlot(f.slot, f.points, f.aggregates, nullptr, nullptr, options)
            .Utility();
    options.use_greedy = false;
    baseline_total +=
        RunQueryMixSlot(f.slot, f.points, f.aggregates, nullptr, nullptr, options)
            .Utility();
  }
  EXPECT_GE(greedy_total, baseline_total);
}

TEST(QueryMixTest, LocationMonitoringQueriesParticipate) {
  MixFixture f(11);
  LocationMonitoringManager::Config config;
  LocationMonitoringManager manager(f.hist_times, f.hist_values, config);
  LocationMonitoringQuery q;
  q.id = 1;
  q.location = Point{20, 20};
  q.t1 = 10;
  q.t2 = 20;
  q.budget = 100.0;
  q.desired = {12, 15, 18};  // slot.time = 12 is a desired slot
  manager.AddQuery(q);
  QueryMixOptions options;
  options.use_greedy = true;
  const QueryMixSlotResult r =
      RunQueryMixSlot(f.slot, f.points, f.aggregates, &manager, nullptr, options);
  // The monitoring query should have been offered a sample at slot 12;
  // whether it was satisfied depends on sensor proximity, but accounting
  // must include any realized gain.
  EXPECT_NEAR(r.total_value,
              r.point.value + r.aggregate.value + r.location_value_gain, 1e-9);
  EXPECT_GE(r.location_value_gain, 0.0);
}

TEST(QueryMixTest, EmptyWorkloadYieldsZero) {
  const SlotContext slot = MakeSlot(10, 13);
  for (bool greedy : {true, false}) {
    QueryMixOptions options;
    options.use_greedy = greedy;
    const QueryMixSlotResult r =
        RunQueryMixSlot(slot, {}, {}, nullptr, nullptr, options);
    EXPECT_DOUBLE_EQ(r.total_value, 0.0);
    EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
    EXPECT_TRUE(r.selected_sensors.empty());
  }
}

TEST(QueryMixTest, NoSensorsYieldsZero) {
  SlotContext slot;
  slot.time = 12;
  slot.dmax = 10.0;
  MixFixture f(15);
  QueryMixOptions options;
  options.use_greedy = true;
  const QueryMixSlotResult r =
      RunQueryMixSlot(slot, f.points, f.aggregates, nullptr, nullptr, options);
  EXPECT_DOUBLE_EQ(r.total_value, 0.0);
  EXPECT_EQ(r.point.answered, 0);
}

}  // namespace
}  // namespace psens
