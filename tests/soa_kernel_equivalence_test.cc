// The SoA valuation contract (docs/ARCHITECTURE.md, "Valuation kernels"):
// the slab kernels behind PointMultiQuery, MultiSensorPointQuery,
// AggregateQuery, and TrajectoryQuery — plus the per-query candidate value
// caches they enable — produce *bit-identical* selections, payments,
// values, and ValuationCalls to the scalar AoS reference paths, for every
// scheduler, under churn, with the slab columns repaired incrementally in
// lockstep with the member array. SlotContext::use_soa is the ablation
// switch: flipping it off on a copied context routes every kernel to its
// scalar path (SlotSlabs doc in core/slot.h).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/multi_sensor_point_query.h"
#include "core/slot.h"
#include "engine/acquisition_engine.h"
#include "sim/workload.h"

namespace psens {
namespace {

/// The slab invariant: every column entry equals the corresponding
/// SlotSensor field. This is what the engines' O(churn) repair must
/// maintain; a single drifted row would silently change valuations.
void ExpectSlabsInLockstep(const SlotContext& slot, int t) {
  ASSERT_TRUE(slot.SlabsSynced()) << "slot " << t;
  for (size_t i = 0; i < slot.sensors.size(); ++i) {
    const SlotSensor& s = slot.sensors[i];
    ASSERT_EQ(slot.slabs.x[i], s.location.x) << "slot " << t << " row " << i;
    ASSERT_EQ(slot.slabs.y[i], s.location.y) << "slot " << t << " row " << i;
    ASSERT_EQ(slot.slabs.cost[i], s.cost) << "slot " << t << " row " << i;
    ASSERT_EQ(slot.slabs.inaccuracy[i], s.inaccuracy)
        << "slot " << t << " row " << i;
    ASSERT_EQ(slot.slabs.trust[i], s.trust) << "slot " << t << " row " << i;
  }
}

/// Everything an observer can see from one joint selection.
struct Outcome {
  SelectionResult selection;
  std::vector<double> payments;
  std::vector<double> values;
  std::vector<int64_t> calls;
};

/// Binds a mixed query batch (point, multi-sensor point, aggregate,
/// trajectory) against `slot` and runs `engine` over it. The batch is
/// regenerated per call from `seed`, so SoA and scalar runs bind
/// identical queries against their respective contexts.
Outcome RunMixedSelection(const SlotContext& slot, const Rect& field,
                          GreedyEngine engine, uint64_t seed) {
  Rng query_rng(seed);
  const std::vector<PointQuery> point_specs = GeneratePointQueries(
      25, field, BudgetScheme{15.0, false, 0.0}, 0.2, 100, query_rng);
  const std::vector<AggregateQuery::Params> agg_params =
      GenerateAggregateQueries(5, field, 8.0, 15.0, 400, query_rng);

  std::vector<std::unique_ptr<PointMultiQuery>> points;
  std::vector<std::unique_ptr<MultiSensorPointQuery>> multi_points;
  std::vector<std::unique_ptr<AggregateQuery>> aggregates;
  std::vector<std::unique_ptr<TrajectoryQuery>> trajectories;
  std::vector<MultiQuery*> all;
  for (const PointQuery& p : point_specs) {
    points.push_back(std::make_unique<PointMultiQuery>(p, &slot));
    all.push_back(points.back().get());
  }
  for (int k = 0; k < 6; ++k) {
    MultiSensorPointQuery::Params mp;
    mp.id = 500 + k;
    mp.location = Point{query_rng.Uniform(0.0, field.x_max),
                        query_rng.Uniform(0.0, field.y_max)};
    mp.budget = 20.0;
    mp.theta_min = 0.2;
    mp.redundancy = 1 + k % 3;
    multi_points.push_back(std::make_unique<MultiSensorPointQuery>(mp, &slot));
    all.push_back(multi_points.back().get());
  }
  for (const AggregateQuery::Params& p : agg_params) {
    aggregates.push_back(std::make_unique<AggregateQuery>(p, slot));
    all.push_back(aggregates.back().get());
  }
  for (int k = 0; k < 3; ++k) {
    TrajectoryQuery::Params tp;
    tp.id = 700 + k;
    const double y = query_rng.Uniform(0.0, field.y_max);
    tp.trajectory.waypoints = {Point{0.0, y}, Point{field.x_max / 2, y},
                               Point{field.x_max, query_rng.Uniform(0.0, field.y_max)}};
    tp.budget = 25.0;
    tp.sensing_range = 12.0;
    tp.cell_size = 2.0;
    tp.corridor = 3.0;
    trajectories.push_back(std::make_unique<TrajectoryQuery>(tp, slot));
    all.push_back(trajectories.back().get());
  }

  Outcome out;
  out.selection = GreedySensorSelection(all, slot, nullptr, engine);
  for (const MultiQuery* q : all) {
    out.payments.push_back(q->TotalPayment());
    out.values.push_back(q->CurrentValue());
    out.calls.push_back(q->ValuationCalls());
  }
  return out;
}

void ExpectSameOutcome(const Outcome& soa, const Outcome& aos,
                       const char* label, int t) {
  ASSERT_EQ(soa.selection.selected_sensors, aos.selection.selected_sensors)
      << label << " slot " << t;
  ASSERT_EQ(soa.selection.total_value, aos.selection.total_value)
      << label << " slot " << t;
  ASSERT_EQ(soa.selection.total_cost, aos.selection.total_cost)
      << label << " slot " << t;
  ASSERT_EQ(soa.selection.valuation_calls, aos.selection.valuation_calls)
      << label << " slot " << t;
  ASSERT_EQ(soa.payments, aos.payments) << label << " slot " << t;
  ASSERT_EQ(soa.values, aos.values) << label << " slot " << t;
  ASSERT_EQ(soa.calls, aos.calls) << label << " slot " << t;
}

TEST(SoaKernelEquivalenceTest, AllEnginesMatchScalarUnderChurn) {
  const int count = 800;
  const Rect field{0, 0, 60, 60};
  ClusteredPopulationConfig config;
  config.count = count;
  config.num_clusters = 6;
  config.cluster_sigma = 5.0;
  Rng rng(17);
  const ScaleScenario scenario = GenerateClusteredSensors(config, field, rng);

  ChurnConfig churn;
  churn.arrival_rate = 25;
  churn.departure_rate = 25;
  churn.move_fraction = 0.04;
  churn.price_jitter_fraction = 0.01;

  ServingConfig engine_config;
  engine_config.working_region = field;
  engine_config.dmax = 8.0;
  engine_config.incremental = true;
  AcquisitionEngine engine(scenario.sensors, engine_config);
  ChurnStream stream(churn, scenario.sensors, field);
  stream.SetClusteredPlacement(&scenario, &config);
  Rng churn_rng(5);

  const GreedyEngine engines[] = {GreedyEngine::kEager, GreedyEngine::kLazy,
                                  GreedyEngine::kStochastic,
                                  GreedyEngine::kSieve};
  const char* labels[] = {"eager", "lazy", "stochastic", "sieve"};
  for (int t = 0; t < 8; ++t) {
    engine.ApplyDelta(stream.Next(churn_rng));
    const SlotContext& slot = engine.BeginSlot(t);
    ExpectSlabsInLockstep(slot, t);

    // Scalar reference: same context with the kernels and the arena
    // disabled — SlabsSynced() goes false, every valuation runs the
    // legacy AoS path, and scratch falls back to owned heap buffers.
    SlotContext scalar = slot;
    scalar.use_soa = false;
    scalar.arena = nullptr;

    for (size_t e = 0; e < 4; ++e) {
      const uint64_t seed = 900 + static_cast<uint64_t>(t);
      const Outcome soa = RunMixedSelection(slot, field, engines[e], seed);
      const Outcome aos = RunMixedSelection(scalar, field, engines[e], seed);
      ExpectSameOutcome(soa, aos, labels[e], t);
    }
    // Feed readings back so announced costs drift (privacy decay, energy)
    // and the slab repair has real cost churn to track.
    const Outcome feedback =
        RunMixedSelection(slot, field, GreedyEngine::kLazy, 7000 + t);
    engine.RecordSlotReadings(feedback.selection.selected_sensors, t);
  }
}

TEST(SoaKernelEquivalenceTest, RebuildModeMatchesScalarToo) {
  const Rect field{0, 0, 40, 40};
  SensorPopulationConfig population;
  population.count = 300;
  population.random_privacy = true;
  Rng rng(23);
  std::vector<Sensor> sensors = GenerateSensors(population, rng);
  for (Sensor& s : sensors) {
    s.SetPosition(Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)}, true);
  }
  const SlotContext slot = BuildSlotContext(sensors, field, 3, 6.0);
  ExpectSlabsInLockstep(slot, 3);
  SlotContext scalar = slot;
  scalar.use_soa = false;
  scalar.arena = nullptr;
  for (GreedyEngine e : {GreedyEngine::kEager, GreedyEngine::kLazy}) {
    const Outcome soa = RunMixedSelection(slot, field, e, 42);
    const Outcome aos = RunMixedSelection(scalar, field, e, 42);
    ExpectSameOutcome(soa, aos, "rebuild", 3);
  }
}

// Unindexed slots exercise the dense-plan kernels (no candidate lists, so
// the caches never arm and the slab sweeps run over every sensor).
TEST(SoaKernelEquivalenceTest, UnindexedDensePlansMatchScalar) {
  const Rect field{0, 0, 30, 30};
  SensorPopulationConfig population;
  population.count = 150;
  Rng rng(29);
  std::vector<Sensor> sensors = GenerateSensors(population, rng);
  for (Sensor& s : sensors) {
    s.SetPosition(Point{rng.Uniform(0.0, 30.0), rng.Uniform(0.0, 30.0)}, true);
  }
  const SlotContext slot =
      BuildSlotContext(sensors, field, 0, 6.0, SlotIndexPolicy::kNone);
  ASSERT_EQ(slot.index, nullptr);
  SlotContext scalar = slot;
  scalar.use_soa = false;
  scalar.arena = nullptr;
  for (GreedyEngine e : {GreedyEngine::kEager, GreedyEngine::kLazy}) {
    const Outcome soa = RunMixedSelection(slot, field, e, 314);
    const Outcome aos = RunMixedSelection(scalar, field, e, 314);
    ExpectSameOutcome(soa, aos, "dense", 0);
  }
}

}  // namespace
}  // namespace psens
