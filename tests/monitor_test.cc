// Monitor hook contract: bucket math of the latency histogram, merge
// semantics, the Start/Pause/Resume/Stop/Reset lifecycle (including
// pause and reset mid-run), guarded MonitorSet dispatch, a zero-slot
// trace replayed under monitors, and the substrate's core passivity
// promise — a monitored replay schedules bit-identically to an
// unmonitored one.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/monitor.h"
#include "trace/trace_replayer.h"
#include "trace/trace_writer.h"

namespace psens {
namespace {

TEST(LatencyHistogramTest, BucketBoundaries) {
  using M = LatencyHistogramMonitor;
  // Bucket i spans [2^i, 2^(i+1)) microseconds; sub-microsecond samples
  // clamp into bucket 0, overflows into the last bucket.
  EXPECT_EQ(M::BucketIndex(0.0), 0);
  EXPECT_EQ(M::BucketIndex(0.0005), 0);   // 0.5 us
  EXPECT_EQ(M::BucketIndex(0.001), 0);    // exactly 1 us
  EXPECT_EQ(M::BucketIndex(0.0019), 0);   // 1.9 us
  EXPECT_EQ(M::BucketIndex(0.002), 1);    // exactly 2 us
  EXPECT_EQ(M::BucketIndex(0.003), 1);
  EXPECT_EQ(M::BucketIndex(0.004), 2);    // exactly 4 us
  EXPECT_EQ(M::BucketIndex(1.0), 9);      // 1000 us in [512, 1024)
  EXPECT_EQ(M::BucketIndex(1.024), 10);   // exactly 1024 us
  EXPECT_EQ(M::BucketIndex(1e12), M::kNumBuckets - 1);

  EXPECT_DOUBLE_EQ(M::BucketLowMs(0), 0.0);
  EXPECT_DOUBLE_EQ(M::BucketLowMs(1), 0.002);
  EXPECT_DOUBLE_EQ(M::BucketLowMs(10), 1.024);
  // Every sample lands in the bucket whose range contains it.
  for (int i = 1; i < M::kNumBuckets; ++i) {
    EXPECT_EQ(M::BucketIndex(M::BucketLowMs(i)), i);
  }
}

TEST(LatencyHistogramTest, AccumulateAndMerge) {
  LatencyHistogramMonitor a;
  a.Start();
  a.OnSlotEnd(0, 0.5);
  a.OnSlotEnd(1, 1.5);
  a.OnSlotEnd(2, 0.003);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.total_ms(), 2.003);
  EXPECT_DOUBLE_EQ(a.min_ms(), 0.003);
  EXPECT_DOUBLE_EQ(a.max_ms(), 1.5);

  LatencyHistogramMonitor b;
  b.Start();
  b.OnSlotEnd(0, 10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.max_ms(), 10.0);
  EXPECT_DOUBLE_EQ(a.min_ms(), 0.003);
  EXPECT_EQ(a.bucket_count(LatencyHistogramMonitor::BucketIndex(10.0)), 1);

  // Merging an empty histogram changes nothing.
  LatencyHistogramMonitor empty;
  const int64_t before = a.count();
  a.Merge(empty);
  EXPECT_EQ(a.count(), before);

  std::string json;
  a.AppendJson(&json);
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos) << json;
}

TEST(MonitorLifecycleTest, PauseAndResetMidRun) {
  ValuationCounterMonitor m;
  SelectionResult result;
  result.valuation_calls = 100;
  result.selected_sensors = {1, 2, 3};

  // Idle: events must not be delivered through a MonitorSet.
  MonitorSet set;
  set.Attach(&m);
  set.NotifySelection(0, result, 1.0);
  EXPECT_EQ(m.total_calls(), 0);

  m.Start();
  set.NotifySelection(1, result, 1.0);
  set.NotifySlotEnd(1, 2.0);
  EXPECT_EQ(m.total_calls(), 100);
  EXPECT_EQ(m.slots(), 1);

  // Paused mid-run: deliveries stop, accumulated data survives.
  m.Pause();
  EXPECT_EQ(m.state(), MonitorBase::State::kPaused);
  set.NotifySelection(2, result, 1.0);
  EXPECT_EQ(m.total_calls(), 100);

  m.Resume();
  set.NotifySelection(3, result, 1.0);
  EXPECT_EQ(m.total_calls(), 200);
  EXPECT_EQ(m.selected_sensors(), 6);

  // Reset mid-run: data cleared, state (running) kept, counting resumes.
  m.Reset();
  EXPECT_EQ(m.total_calls(), 0);
  EXPECT_TRUE(m.running());
  set.NotifySelection(4, result, 1.0);
  EXPECT_EQ(m.total_calls(), 100);

  m.Stop();
  set.NotifySelection(5, result, 1.0);
  EXPECT_EQ(m.total_calls(), 100);
  EXPECT_EQ(m.state(), MonitorBase::State::kStopped);

  // Resume is only legal from paused; a stopped monitor stays stopped.
  m.Resume();
  EXPECT_EQ(m.state(), MonitorBase::State::kStopped);
}

TEST(MonitorLifecycleTest, IndexRepairStats) {
  IndexRepairMonitor m;
  m.Start();
  m.OnTurnover(1, 2.0);
  m.OnTurnover(2, 4.0);
  m.OnTurnover(3, 0.5);
  EXPECT_EQ(m.count(), 3);
  EXPECT_DOUBLE_EQ(m.min_ms(), 0.5);
  EXPECT_DOUBLE_EQ(m.max_ms(), 4.0);
  EXPECT_DOUBLE_EQ(m.mean_ms(), 6.5 / 3.0);
  m.Reset();
  EXPECT_EQ(m.count(), 0);
  EXPECT_DOUBLE_EQ(m.min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_ms(), 0.0);
}

TEST(MonitorSetTest, JsonIsKeyedByMonitorName) {
  LatencyHistogramMonitor latency;
  ValuationCounterMonitor calls;
  IndexRepairMonitor repair;
  MonitorSet set;
  set.Attach(&latency);
  set.Attach(&calls);
  set.Attach(&repair);
  set.StartAll();
  set.NotifyTurnover(0, 1.0);
  set.NotifySlotEnd(0, 3.0);
  set.StopAll();
  std::string json;
  set.AppendJson(&json);
  EXPECT_NE(json.find("\"latency_histogram\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"valuation_counters\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"index_repair\": {"), std::string::npos) << json;
}

TEST(MonitorReplayTest, ZeroSlotTraceUnderMonitors) {
  const std::string path = testing::TempDir() + "/zero_slot.trace";
  const int n = 16;
  SensorPopulationConfig profile;
  profile.count = n;
  Rng rng(7);
  const std::vector<Sensor> sensors = GenerateSensors(profile, rng);
  {
    TraceHeader header;
    header.registry_count = n;
    header.registry_checksum = RegistryChecksum(sensors);
    header.working_region = Rect{0, 0, 10, 10};
    auto writer = TraceWriter::Open(path, header);
    ASSERT_NE(writer, nullptr);
    ASSERT_TRUE(writer->Finish());
    EXPECT_EQ(writer->slots_written(), 0);
  }
  LatencyHistogramMonitor latency;
  MonitorSet set;
  set.Attach(&latency);
  set.StartAll();
  const ReplayResult result =
      TraceReplayer(ReplayConfig{}).Replay(path, sensors, &set);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_EQ(latency.count(), 0);
  std::string json;
  latency.AppendJson(&json);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
  std::remove(path.c_str());
}

TEST(MonitorReplayTest, MonitoredReplayEqualsUnmonitoredReplay) {
  const ChurnScenarioSetup setup =
      MakeChurnScenario(300, 0.05, 42, /*with_mobility=*/true);
  const std::string path = testing::TempDir() + "/monitored.trace";
  ClosedLoopConfig config;
  config.slots = 8;
  config.queries.queries_per_slot = 16;
  config.queries.aggregates_per_slot = 2;
  config.serving.trace_path = path;
  config.serving.approx.seed = 42;
  RunChurnClosedLoop(setup, config);

  const ReplayResult bare =
      TraceReplayer(ReplayConfig{}).Replay(path, setup.scenario.sensors);
  ASSERT_TRUE(bare.ok) << bare.error;

  LatencyHistogramMonitor latency;
  ValuationCounterMonitor calls;
  IndexRepairMonitor repair;
  MonitorSet set;
  set.Attach(&latency);
  set.Attach(&calls);
  set.Attach(&repair);
  set.StartAll();
  const ReplayResult monitored =
      TraceReplayer(ReplayConfig{}).Replay(path, setup.scenario.sensors, &set);
  ASSERT_TRUE(monitored.ok) << monitored.error;
  set.StopAll();

  ASSERT_EQ(bare.outcomes.size(), monitored.outcomes.size());
  for (size_t i = 0; i < bare.outcomes.size(); ++i) {
    EXPECT_TRUE(SameOutcome(bare.outcomes[i], monitored.outcomes[i]))
        << "attaching monitors changed slot " << bare.outcomes[i].time;
  }
  // The monitors saw every served slot and the real work totals.
  EXPECT_EQ(latency.count(), static_cast<int64_t>(monitored.outcomes.size()));
  EXPECT_EQ(repair.count(), static_cast<int64_t>(monitored.outcomes.size()));
  int64_t total_calls = 0;
  for (const SlotOutcome& o : monitored.outcomes) {
    total_calls += o.selection.valuation_calls;
  }
  EXPECT_EQ(calls.total_calls(), total_calls);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psens
