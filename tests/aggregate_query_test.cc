#include "core/aggregate_query.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace psens {
namespace {

SlotContext MakeSlot(std::vector<Point> positions, double cost = 10.0) {
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 10.0;
  for (size_t i = 0; i < positions.size(); ++i) {
    SlotSensor s;
    s.index = static_cast<int>(i);
    s.sensor_id = static_cast<int>(i);
    s.location = positions[i];
    s.cost = cost;
    s.inaccuracy = 0.0;
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

AggregateQuery::Params BaseParams() {
  AggregateQuery::Params params;
  params.id = 1;
  params.region = Rect{0, 0, 20, 20};
  params.budget = 100.0;
  params.sensing_range = 10.0;
  params.cell_size = 2.0;
  return params;
}

TEST(AggregateQueryTest, CenteredSensorCoversWholeSmallRegion) {
  const SlotContext slot = MakeSlot({Point{10, 10}});
  AggregateQuery::Params params = BaseParams();
  params.region = Rect{5, 5, 15, 15};  // all cells within range 10 of center
  AggregateQuery q(params, slot);
  q.Commit(0, 0.0);
  EXPECT_DOUBLE_EQ(q.CurrentCoverage(), 1.0);
  // Value = B * G * theta = 100 * 1 * 1.
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 100.0);
}

TEST(AggregateQueryTest, FarSensorContributesNothing) {
  const SlotContext slot = MakeSlot({Point{200, 200}});
  AggregateQuery q(BaseParams(), slot);
  EXPECT_DOUBLE_EQ(q.MarginalValue(0), 0.0);
}

TEST(AggregateQueryTest, MarginalMatchesValueDifference) {
  Rng rng(3);
  std::vector<Point> positions;
  for (int i = 0; i < 6; ++i) {
    positions.push_back(Point{rng.Uniform(0, 20), rng.Uniform(0, 20)});
  }
  const SlotContext slot = MakeSlot(positions);
  AggregateQuery q(BaseParams(), slot);
  double value = 0.0;
  std::vector<int> committed;
  for (int i = 0; i < 6; ++i) {
    const double marginal = q.MarginalValue(i);
    committed.push_back(i);
    const double direct = q.ValueOf(committed);
    EXPECT_NEAR(value + marginal, direct, 1e-9) << "sensor " << i;
    q.Commit(i, 0.0);
    value = q.CurrentValue();
    EXPECT_NEAR(value, direct, 1e-9);
  }
}

TEST(AggregateQueryTest, ValuationIsNonMonotone) {
  // Adding a low-quality sensor that covers nothing new drags the mean
  // theta down: the Eq. (5) valuation is non-monotone (Section 3.2).
  SlotContext slot = MakeSlot({Point{10, 10}, Point{10, 10}});
  slot.sensors[1].inaccuracy = 0.9;  // theta = 0.1
  AggregateQuery::Params params = BaseParams();
  params.region = Rect{5, 5, 15, 15};
  AggregateQuery q(params, slot);
  q.Commit(0, 0.0);
  const double before = q.CurrentValue();
  EXPECT_LT(q.MarginalValue(1), 0.0);
  q.Commit(1, 0.0);
  EXPECT_LT(q.CurrentValue(), before);
}

TEST(AggregateQueryTest, CoverageGrowsWithDisjointSensors) {
  AggregateQuery::Params params = BaseParams();
  params.region = Rect{0, 0, 40, 10};
  params.sensing_range = 5.0;
  const SlotContext slot = MakeSlot({Point{5, 5}, Point{35, 5}});
  AggregateQuery q(params, slot);
  q.Commit(0, 0.0);
  const double one = q.CurrentCoverage();
  q.Commit(1, 0.0);
  EXPECT_GT(q.CurrentCoverage(), one);
}

TEST(AggregateQueryTest, ResetSelectionClearsState) {
  const SlotContext slot = MakeSlot({Point{10, 10}});
  AggregateQuery q(BaseParams(), slot);
  q.Commit(0, 5.0);
  EXPECT_GT(q.CurrentValue(), 0.0);
  q.ResetSelection();
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 0.0);
  EXPECT_DOUBLE_EQ(q.TotalPayment(), 0.0);
  EXPECT_DOUBLE_EQ(q.CurrentCoverage(), 0.0);
  EXPECT_TRUE(q.SelectedSensors().empty());
}

TEST(AggregateQueryTest, MaxValueIsBudget) {
  const SlotContext slot = MakeSlot({Point{10, 10}});
  AggregateQuery q(BaseParams(), slot);
  EXPECT_DOUBLE_EQ(q.MaxValue(), 100.0);
}

TEST(TrajectoryQueryTest, SensorOnTrajectoryCovers) {
  TrajectoryQuery::Params params;
  params.id = 1;
  params.trajectory.waypoints = {{0, 0}, {20, 0}};
  params.budget = 50.0;
  params.sensing_range = 30.0;
  params.corridor = 2.0;
  const SlotContext slot = MakeSlot({Point{10, 0}});
  TrajectoryQuery q(params, slot);
  EXPECT_GT(q.MarginalValue(0), 0.0);
  q.Commit(0, 0.0);
  EXPECT_DOUBLE_EQ(q.CurrentCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(q.CurrentValue(), 50.0);
}

TEST(TrajectoryQueryTest, SensorFarFromTrajectoryDoesNot) {
  TrajectoryQuery::Params params;
  params.id = 1;
  params.trajectory.waypoints = {{0, 0}, {20, 0}};
  params.budget = 50.0;
  params.sensing_range = 5.0;
  params.corridor = 2.0;
  const SlotContext slot = MakeSlot({Point{10, 50}});
  TrajectoryQuery q(params, slot);
  EXPECT_DOUBLE_EQ(q.MarginalValue(0), 0.0);
}

TEST(TrajectoryQueryTest, PartialCoverageAlongLongRoute) {
  TrajectoryQuery::Params params;
  params.id = 1;
  params.trajectory.waypoints = {{0, 0}, {100, 0}};
  params.budget = 50.0;
  params.sensing_range = 10.0;
  params.corridor = 2.0;
  const SlotContext slot = MakeSlot({Point{0, 0}});
  TrajectoryQuery q(params, slot);
  q.Commit(0, 0.0);
  EXPECT_GT(q.CurrentCoverage(), 0.0);
  EXPECT_LT(q.CurrentCoverage(), 0.5);
}

TEST(TrajectoryQueryTest, MarginalConsistentWithValueOf) {
  Rng rng(5);
  TrajectoryQuery::Params params;
  params.id = 1;
  params.trajectory.waypoints = {{0, 0}, {15, 5}, {30, 0}};
  params.budget = 80.0;
  params.sensing_range = 8.0;
  std::vector<Point> positions;
  for (int i = 0; i < 5; ++i) {
    positions.push_back(Point{rng.Uniform(0, 30), rng.Uniform(-5, 10)});
  }
  const SlotContext slot = MakeSlot(positions);
  TrajectoryQuery q(params, slot);
  std::vector<int> committed;
  double value = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double marginal = q.MarginalValue(i);
    committed.push_back(i);
    EXPECT_NEAR(value + marginal, q.ValueOf(committed), 1e-9);
    q.Commit(i, 0.0);
    value = q.CurrentValue();
  }
}

TEST(TrajectoryQueryTest, EmptyTrajectoryDoesNotCrash) {
  TrajectoryQuery::Params params;
  params.budget = 10.0;
  const SlotContext slot = MakeSlot({Point{0, 0}});
  TrajectoryQuery q(params, slot);
  (void)q.MarginalValue(0);
}

}  // namespace
}  // namespace psens
