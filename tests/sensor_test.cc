#include "core/sensor.h"

#include <gtest/gtest.h>

namespace psens {
namespace {

SensorProfile BaseProfile() {
  SensorProfile p;
  p.base_price = 10.0;
  p.lifetime = 10;
  p.privacy_window = 5;
  return p;
}

TEST(PrivacyLevelTest, MapsToPaperValues) {
  EXPECT_DOUBLE_EQ(PrivacyLevelValue(PrivacySensitivity::kZero), 0.0);
  EXPECT_DOUBLE_EQ(PrivacyLevelValue(PrivacySensitivity::kLow), 0.25);
  EXPECT_DOUBLE_EQ(PrivacyLevelValue(PrivacySensitivity::kModerate), 0.5);
  EXPECT_DOUBLE_EQ(PrivacyLevelValue(PrivacySensitivity::kHigh), 0.75);
  EXPECT_DOUBLE_EQ(PrivacyLevelValue(PrivacySensitivity::kVeryHigh), 1.0);
}

TEST(SensorTest, FixedEnergyCostIsBasePrice) {
  Sensor s(0, BaseProfile());
  EXPECT_DOUBLE_EQ(s.EnergyCost(), 10.0);
  s.RecordReading(0);
  EXPECT_DOUBLE_EQ(s.EnergyCost(), 10.0);  // fixed model ignores energy
}

TEST(SensorTest, LinearEnergyCostGrowsWithConsumption) {
  SensorProfile p = BaseProfile();
  p.energy_model = EnergyCostModel::kLinear;
  p.energy_beta = 2.0;
  Sensor s(0, p);
  EXPECT_DOUBLE_EQ(s.EnergyCost(), 10.0);  // full energy
  s.RecordReading(0);                      // E = 0.9
  EXPECT_NEAR(s.EnergyCost(), 10.0 * (1.0 + 2.0 * 0.1), 1e-12);
  for (int t = 1; t < 10; ++t) s.RecordReading(t);  // E = 0
  EXPECT_NEAR(s.EnergyCost(), 30.0, 1e-12);
}

TEST(SensorTest, RemainingEnergyTracksLifetime) {
  Sensor s(0, BaseProfile());
  EXPECT_DOUBLE_EQ(s.RemainingEnergy(), 1.0);
  for (int t = 0; t < 5; ++t) s.RecordReading(t);
  EXPECT_DOUBLE_EQ(s.RemainingEnergy(), 0.5);
}

TEST(SensorTest, WearsOutAfterLifetimeReadings) {
  SensorProfile p = BaseProfile();
  p.lifetime = 3;
  Sensor s(0, p);
  s.SetPosition(Point{0, 0}, true);
  EXPECT_TRUE(s.available());
  for (int t = 0; t < 3; ++t) s.RecordReading(t);
  EXPECT_TRUE(s.WornOut());
  EXPECT_FALSE(s.available());
}

TEST(SensorTest, AvailabilityRequiresPresence) {
  Sensor s(0, BaseProfile());
  EXPECT_FALSE(s.available());  // never placed
  s.SetPosition(Point{1, 1}, true);
  EXPECT_TRUE(s.available());
  s.SetPosition(Point{1, 1}, false);
  EXPECT_FALSE(s.available());
}

TEST(SensorTest, PrivacyLossWithEmptyHistoryIsBaseline) {
  Sensor s(0, BaseProfile());
  // Eq. (14) with empty H: w / (w(w+1)/2) = 2/(w+1) = 1/3 for w = 5.
  EXPECT_NEAR(s.PrivacyLoss(10), 2.0 / 6.0, 1e-12);
}

TEST(SensorTest, PrivacyLossHighestRightAfterReporting) {
  Sensor s(0, BaseProfile());
  s.RecordReading(10);
  const double just_after = s.PrivacyLoss(10);   // age 0: weight w
  const double later = s.PrivacyLoss(14);        // age 4: weight 1
  EXPECT_GT(just_after, later);
  // Eq. (14) exactly: (w + (w - 0)) / (w(w+1)/2) with w=5 -> 10/15.
  EXPECT_NEAR(just_after, 10.0 / 15.0, 1e-12);
  EXPECT_NEAR(later, 6.0 / 15.0, 1e-12);
}

TEST(SensorTest, PrivacyLossIgnoresReportsOutsideWindow) {
  Sensor s(0, BaseProfile());
  s.RecordReading(0);
  EXPECT_NEAR(s.PrivacyLoss(100), s.PrivacyLoss(1000), 1e-12);
}

TEST(SensorTest, ConsecutiveReportingCostsMoreThanSpread) {
  SensorProfile p = BaseProfile();
  Sensor consecutive(0, p), spread(1, p);
  consecutive.RecordReading(8);
  consecutive.RecordReading(9);
  spread.RecordReading(2);
  spread.RecordReading(9);
  // Reporting in consecutive slots reveals the trajectory: higher loss.
  EXPECT_GT(consecutive.PrivacyLoss(10), spread.PrivacyLoss(10));
}

TEST(SensorTest, PrivacyCostScalesWithSensitivity) {
  SensorProfile zero = BaseProfile();
  SensorProfile high = BaseProfile();
  high.privacy = PrivacySensitivity::kVeryHigh;
  Sensor a(0, zero), b(1, high);
  a.RecordReading(5);
  b.RecordReading(5);
  EXPECT_DOUBLE_EQ(a.PrivacyCost(6), 0.0);
  EXPECT_GT(b.PrivacyCost(6), 0.0);
  // Eq. (15): PSL * p_s * C_s.
  EXPECT_NEAR(b.PrivacyCost(6), 1.0 * b.PrivacyLoss(6) * 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(b.Cost(6), b.EnergyCost() + b.PrivacyCost(6));
}

TEST(SensorTest, HistoryBoundedByPrivacyWindow) {
  Sensor s(0, BaseProfile());
  for (int t = 0; t < 20; ++t) s.RecordReading(t);
  EXPECT_LE(s.report_history().size(), 5u);
  EXPECT_EQ(s.report_history().back(), 19);
}

TEST(ReadingQualityTest, Equation4Cases) {
  // theta = (1 - gamma)(1 - d/dmax) tau.
  EXPECT_DOUBLE_EQ(ReadingQuality(0.0, 1.0, 0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(ReadingQuality(0.2, 1.0, 0.0, 5.0), 0.8);
  EXPECT_DOUBLE_EQ(ReadingQuality(0.0, 0.5, 2.5, 5.0), 0.25);
  EXPECT_DOUBLE_EQ(ReadingQuality(0.0, 1.0, 5.0, 5.0), 0.0);   // at dmax
  EXPECT_DOUBLE_EQ(ReadingQuality(0.0, 1.0, 5.01, 5.0), 0.0);  // beyond
  EXPECT_DOUBLE_EQ(ReadingQuality(0.0, 1.0, 1.0, 0.0), 0.0);   // degenerate
}

TEST(ReadingQualityTest, SensorOverloadUsesPositionAndProfile) {
  SensorProfile p = BaseProfile();
  p.inaccuracy = 0.1;
  p.trust = 0.9;
  Sensor s(0, p);
  s.SetPosition(Point{3, 4}, true);  // distance 5 from origin
  EXPECT_DOUBLE_EQ(ReadingQuality(s, Point{0, 0}, 10.0), 0.9 * 0.5 * 0.9);
}

}  // namespace
}  // namespace psens
