// The streaming engine's contract (docs/ARCHITECTURE.md, "Engine layer"):
// an AcquisitionEngine repairing its slot context and dynamic index from
// deltas is *bit-identical* — same SlotContext, same selections, payments
// and ValuationCalls — to one that rebuilds everything from the registry
// every slot, across schedulers, under zero churn (mobility trace only)
// and under full churn streams, including feedback populations whose
// announced costs drift with readings (privacy decay, linear energy,
// wear-out).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/point_scheduling.h"
#include "core/slot.h"
#include "engine/acquisition_engine.h"
#include "mobility/random_waypoint.h"
#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/slot_server.h"

namespace psens {
namespace {

/// Field-exact SlotContext equality (announcements, order, index
/// presence). The index *structures* may differ internally — exactness of
/// their result sets is pinned by spatial_index_test — but indexed-ness
/// must agree so schedulers take identical code paths.
void ExpectSameContext(const SlotContext& a, const SlotContext& b, int slot) {
  ASSERT_EQ(a.time, b.time) << "slot " << slot;
  ASSERT_EQ(a.dmax, b.dmax) << "slot " << slot;
  ASSERT_EQ(a.sensors.size(), b.sensors.size()) << "slot " << slot;
  ASSERT_EQ(a.index == nullptr, b.index == nullptr) << "slot " << slot;
  for (size_t i = 0; i < a.sensors.size(); ++i) {
    const SlotSensor& x = a.sensors[i];
    const SlotSensor& y = b.sensors[i];
    ASSERT_EQ(x.index, y.index) << "slot " << slot << " sensor " << i;
    ASSERT_EQ(x.sensor_id, y.sensor_id) << "slot " << slot << " sensor " << i;
    ASSERT_EQ(x.location.x, y.location.x) << "slot " << slot << " sensor " << i;
    ASSERT_EQ(x.location.y, y.location.y) << "slot " << slot << " sensor " << i;
    ASSERT_EQ(x.cost, y.cost) << "slot " << slot << " sensor " << i;
    ASSERT_EQ(x.inaccuracy, y.inaccuracy) << "slot " << slot << " sensor " << i;
    ASSERT_EQ(x.trust, y.trust) << "slot " << slot << " sensor " << i;
  }
}

void ExpectSameSchedule(const PointScheduleResult& a,
                        const PointScheduleResult& b, int slot) {
  ASSERT_EQ(a.selected_sensors, b.selected_sensors) << "slot " << slot;
  ASSERT_EQ(a.total_value, b.total_value) << "slot " << slot;
  ASSERT_EQ(a.total_cost, b.total_cost) << "slot " << slot;
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << "slot " << slot;
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    ASSERT_EQ(a.assignments[i].sensor, b.assignments[i].sensor) << "slot " << slot;
    ASSERT_EQ(a.assignments[i].value, b.assignments[i].value) << "slot " << slot;
    ASSERT_EQ(a.assignments[i].payment, b.assignments[i].payment)
        << "slot " << slot;
  }
}

ServingConfig MakeConfig(const Rect& region, double dmax, bool incremental) {
  ServingConfig config;
  config.working_region = region;
  config.dmax = dmax;
  config.incremental = incremental;
  return config;
}

/// Sensor populations covering every announced-cost regime: fixed price,
/// privacy decay, linear energy with short lifetimes (wear-out).
std::vector<SensorPopulationConfig> Populations(int count) {
  SensorPopulationConfig fixed;
  fixed.count = count;
  SensorPopulationConfig privacy = fixed;
  privacy.random_privacy = true;
  SensorPopulationConfig energy = fixed;
  energy.linear_energy = true;
  energy.lifetime = 6;  // wears sensors out mid-run
  return {fixed, privacy, energy};
}

TEST(StreamingEquivalenceTest, TraceDrivenSlotsMatchRebuildAcrossSchedulers) {
  const Rect region{0, 0, 40, 40};
  RandomWaypointConfig mobility;
  mobility.num_sensors = 120;
  mobility.num_slots = 10;
  mobility.region_size = 40;
  mobility.region_height = 40;
  mobility.seed = 11;
  const Trace trace = GenerateRandomWaypoint(mobility);

  const PointScheduler schedulers[] = {
      PointScheduler::kLocalSearch, PointScheduler::kBaseline,
      PointScheduler::kRandomizedLocalSearch, PointScheduler::kOptimal};
  for (const SensorPopulationConfig& population : Populations(120)) {
    Rng rng(7);
    const std::vector<Sensor> sensors = GenerateSensors(population, rng);
    AcquisitionEngine incremental(sensors, MakeConfig(region, 5.0, true));
    AcquisitionEngine rebuild(sensors, MakeConfig(region, 5.0, false));
    Rng query_rng(99);
    for (int t = 0; t < trace.NumSlots(); ++t) {
      incremental.ApplyTrace(trace, t);
      rebuild.ApplyTrace(trace, t);
      const SlotContext& inc_slot = incremental.BeginSlot(t);
      const SlotContext& reb_slot = rebuild.BeginSlot(t);
      ExpectSameContext(inc_slot, reb_slot, t);

      const std::vector<PointQuery> queries = GeneratePointQueries(
          30, region, BudgetScheme{15.0, false, 0.0}, 0.2, t * 30, query_rng);
      PointSchedulingOptions options;
      options.scheduler = schedulers[t % 4];
      options.seed = 1234 + static_cast<uint64_t>(t);
      const PointScheduleResult inc_result =
          SchedulePointQueries(queries, inc_slot, options);
      const PointScheduleResult reb_result =
          SchedulePointQueries(queries, reb_slot, options);
      ExpectSameSchedule(inc_result, reb_result, t);

      // Feed identical readings back so cost/wear state stays aligned.
      incremental.RecordSlotReadings(inc_result.selected_sensors, t);
      rebuild.RecordSlotReadings(reb_result.selected_sensors, t);
    }
  }
}

TEST(StreamingEquivalenceTest, ChurnStreamsMatchRebuild) {
  const int count = 1500;
  const Rect field{0, 0, 80, 80};
  ClusteredPopulationConfig cluster;
  cluster.count = count;
  cluster.num_clusters = 8;
  cluster.cluster_sigma = 6.0;
  for (SensorPopulationConfig population : Populations(count)) {
    ClusteredPopulationConfig config = cluster;
    config.profile = population;
    Rng rng(21);
    const ScaleScenario scenario = GenerateClusteredSensors(config, field, rng);

    ChurnConfig churn;
    churn.arrival_rate = 30;
    churn.departure_rate = 30;
    churn.move_fraction = 0.02;
    churn.price_jitter_fraction = 0.01;
    AcquisitionEngine incremental(scenario.sensors, MakeConfig(field, 5.0, true));
    AcquisitionEngine rebuild(scenario.sensors, MakeConfig(field, 5.0, false));
    // Identical delta sequences via two identically-seeded streams.
    ChurnStream inc_stream(churn, scenario.sensors, field);
    ChurnStream reb_stream(churn, scenario.sensors, field);
    inc_stream.SetClusteredPlacement(&scenario, &config);
    reb_stream.SetClusteredPlacement(&scenario, &config);
    Rng inc_rng(5);
    Rng reb_rng(5);
    Rng query_rng(77);
    for (int t = 0; t < 15; ++t) {
      incremental.ApplyDelta(inc_stream.Next(inc_rng));
      rebuild.ApplyDelta(reb_stream.Next(reb_rng));
      const SlotContext& inc_slot = incremental.BeginSlot(t);
      const SlotContext& reb_slot = rebuild.BeginSlot(t);
      ExpectSameContext(inc_slot, reb_slot, t);

      const std::vector<PointQuery> queries = GeneratePointQueries(
          40, field, BudgetScheme{15.0, false, 0.0}, 0.2, t * 40, query_rng);
      PointSchedulingOptions options;
      options.scheduler =
          t % 2 == 0 ? PointScheduler::kLocalSearch : PointScheduler::kBaseline;
      options.seed = 4321 + static_cast<uint64_t>(t);
      const PointScheduleResult inc_result =
          SchedulePointQueries(queries, inc_slot, options);
      const PointScheduleResult reb_result =
          SchedulePointQueries(queries, reb_slot, options);
      ExpectSameSchedule(inc_result, reb_result, t);
      incremental.RecordSlotReadings(inc_result.selected_sensors, t);
      rebuild.RecordSlotReadings(reb_result.selected_sensors, t);
    }
  }
}

TEST(StreamingEquivalenceTest, GreedyEnginesMatchIncludingValuationCalls) {
  const int count = 600;
  const Rect field{0, 0, 60, 60};
  ClusteredPopulationConfig config;
  config.count = count;
  config.num_clusters = 5;
  config.cluster_sigma = 5.0;
  Rng rng(31);
  const ScaleScenario scenario = GenerateClusteredSensors(config, field, rng);

  ChurnConfig churn;
  churn.arrival_rate = 20;
  churn.departure_rate = 20;
  churn.move_fraction = 0.05;
  AcquisitionEngine incremental(scenario.sensors, MakeConfig(field, 8.0, true));
  AcquisitionEngine rebuild(scenario.sensors, MakeConfig(field, 8.0, false));
  ChurnStream inc_stream(churn, scenario.sensors, field);
  ChurnStream reb_stream(churn, scenario.sensors, field);
  Rng inc_rng(9);
  Rng reb_rng(9);
  Rng query_rng(55);
  for (int t = 0; t < 8; ++t) {
    incremental.ApplyDelta(inc_stream.Next(inc_rng));
    rebuild.ApplyDelta(reb_stream.Next(reb_rng));
    const SlotContext& inc_slot = incremental.BeginSlot(t);
    const SlotContext& reb_slot = rebuild.BeginSlot(t);
    ExpectSameContext(inc_slot, reb_slot, t);

    Rng reb_query_rng = query_rng;  // aggregate params drawn twice, identically
    const std::vector<AggregateQuery::Params> inc_params =
        GenerateAggregateQueries(8, field, 8.0, 15.0, t * 100, query_rng);
    const std::vector<AggregateQuery::Params> reb_params =
        GenerateAggregateQueries(8, field, 8.0, 15.0, t * 100, reb_query_rng);
    for (GreedyEngine engine : {GreedyEngine::kLazy, GreedyEngine::kEager}) {
      std::vector<std::unique_ptr<AggregateQuery>> inc_queries;
      std::vector<std::unique_ptr<AggregateQuery>> reb_queries;
      std::vector<MultiQuery*> inc_ptrs;
      std::vector<MultiQuery*> reb_ptrs;
      for (const AggregateQuery::Params& p : inc_params) {
        inc_queries.push_back(std::make_unique<AggregateQuery>(p, inc_slot));
        inc_ptrs.push_back(inc_queries.back().get());
      }
      for (const AggregateQuery::Params& p : reb_params) {
        reb_queries.push_back(std::make_unique<AggregateQuery>(p, reb_slot));
        reb_ptrs.push_back(reb_queries.back().get());
      }
      const SelectionResult inc_sel =
          GreedySensorSelection(inc_ptrs, inc_slot, nullptr, engine);
      const SelectionResult reb_sel =
          GreedySensorSelection(reb_ptrs, reb_slot, nullptr, engine);
      ASSERT_EQ(inc_sel.selected_sensors, reb_sel.selected_sensors) << t;
      ASSERT_EQ(inc_sel.total_value, reb_sel.total_value) << t;
      ASSERT_EQ(inc_sel.total_cost, reb_sel.total_cost) << t;
      ASSERT_EQ(inc_sel.valuation_calls, reb_sel.valuation_calls) << t;
      for (size_t q = 0; q < inc_queries.size(); ++q) {
        ASSERT_EQ(inc_queries[q]->TotalPayment(), reb_queries[q]->TotalPayment())
            << t;
      }
    }
  }
}

/// One joint greedy selection over aggregate + point queries on `slot`;
/// returns everything an observer can see (selection sequence, totals,
/// per-query payments/values, per-query ValuationCalls).
struct JointRun {
  SelectionResult selection;
  std::vector<double> payments;
  std::vector<double> values;
  std::vector<int64_t> calls;
};

JointRun RunJointSelection(const SlotContext& slot, const Rect& field,
                           GreedyEngine engine, uint64_t seed) {
  Rng query_rng(seed);
  const std::vector<AggregateQuery::Params> agg_params =
      GenerateAggregateQueries(6, field, 8.0, 15.0, 100, query_rng);
  const std::vector<PointQuery> point_specs = GeneratePointQueries(
      40, field, BudgetScheme{15.0, false, 0.0}, 0.2, 500, query_rng);
  std::vector<std::unique_ptr<AggregateQuery>> aggregates;
  std::vector<std::unique_ptr<PointMultiQuery>> points;
  std::vector<MultiQuery*> all;
  for (const AggregateQuery::Params& p : agg_params) {
    aggregates.push_back(std::make_unique<AggregateQuery>(p, slot));
    all.push_back(aggregates.back().get());
  }
  for (const PointQuery& p : point_specs) {
    points.push_back(std::make_unique<PointMultiQuery>(p, &slot));
    all.push_back(points.back().get());
  }
  JointRun run;
  run.selection = GreedySensorSelection(all, slot, nullptr, engine);
  for (const MultiQuery* q : all) {
    run.payments.push_back(q->TotalPayment());
    run.values.push_back(q->CurrentValue());
    run.calls.push_back(q->ValuationCalls());
  }
  return run;
}

// Intra-slot parallel selection (SlotContext::pool, ServingConfig::threads)
// must be bit-identical to the serial path for both greedy engines: same
// selection sequence, payments, values, and per-query ValuationCalls()
// totals at 1, 4, and 8 worker threads.
TEST(StreamingEquivalenceTest, ParallelSelectionMatchesSerialAcrossThreadCounts) {
  const int count = 700;
  const Rect field{0, 0, 60, 60};
  ClusteredPopulationConfig config;
  config.count = count;
  config.num_clusters = 6;
  config.cluster_sigma = 5.0;
  Rng rng(41);
  const ScaleScenario scenario = GenerateClusteredSensors(config, field, rng);

  for (GreedyEngine engine : {GreedyEngine::kEager, GreedyEngine::kLazy}) {
    // Serial reference: engine without a pool (threads = 1).
    ServingConfig serial_config = MakeConfig(field, 8.0, true);
    AcquisitionEngine serial_engine(scenario.sensors, serial_config);
    const SlotContext& serial_slot = serial_engine.BeginSlot(0);
    ASSERT_EQ(serial_slot.pool, nullptr);
    const JointRun reference = RunJointSelection(serial_slot, field, engine, 77);

    for (int threads : {1, 4, 8}) {
      ServingConfig parallel_config = MakeConfig(field, 8.0, true);
      parallel_config.threads = threads;
      AcquisitionEngine parallel_engine(scenario.sensors, parallel_config);
      const SlotContext& parallel_slot = parallel_engine.BeginSlot(0);
      if (threads > 1) {
        ASSERT_NE(parallel_slot.pool, nullptr);
      }
      const JointRun run = RunJointSelection(parallel_slot, field, engine, 77);
      ASSERT_EQ(run.selection.selected_sensors,
                reference.selection.selected_sensors)
          << threads << " threads";
      ASSERT_EQ(run.selection.total_value, reference.selection.total_value)
          << threads << " threads";
      ASSERT_EQ(run.selection.total_cost, reference.selection.total_cost)
          << threads << " threads";
      ASSERT_EQ(run.selection.valuation_calls,
                reference.selection.valuation_calls)
          << threads << " threads";
      ASSERT_EQ(run.payments, reference.payments) << threads << " threads";
      ASSERT_EQ(run.values, reference.values) << threads << " threads";
      ASSERT_EQ(run.calls, reference.calls) << threads << " threads";
    }
  }
}

// Forces the one remaining concurrency path the mixed suites above never
// reach: the CELF stale-front re-evaluation's sharded per-query delta
// batch, which only arms when a single sensor interests >= 256 queries.
// A dense plan (unindexed slot, so PointMultiQuery exposes no candidate
// list) with 300 queries makes every sensor interest every query; the
// parallel run must match the serial run bit for bit, ValuationCalls
// included.
TEST(StreamingEquivalenceTest, ParallelStaleFrontBatchMatchesSerialOnDensePlans) {
  const Rect field{0, 0, 40, 40};
  const int num_sensors = 90;
  const int num_queries = 300;  // above the sharding threshold

  const auto run = [&](int threads) {
    Rng rng(61);
    SensorPopulationConfig population;
    population.count = num_sensors;
    std::vector<Sensor> sensors = GenerateSensors(population, rng);
    for (Sensor& s : sensors) {
      s.SetPosition(Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)}, true);
    }
    ServingConfig config = MakeConfig(field, 8.0, true);
    config.index_policy = SlotIndexPolicy::kNone;  // dense candidate plan
    config.threads = threads;
    AcquisitionEngine engine(sensors, config);
    const SlotContext& slot = engine.BeginSlot(0);
    EXPECT_EQ(slot.index, nullptr);

    Rng query_rng(62);
    const std::vector<PointQuery> specs = GeneratePointQueries(
        num_queries, field, BudgetScheme{15.0, false, 0.0}, 0.2, 0, query_rng);
    std::vector<std::unique_ptr<PointMultiQuery>> queries;
    std::vector<MultiQuery*> ptrs;
    for (const PointQuery& q : specs) {
      queries.push_back(std::make_unique<PointMultiQuery>(q, &slot));
      ptrs.push_back(queries.back().get());
    }
    JointRun result;
    // The lazy engine is the one with stale-front re-evaluations.
    result.selection = GreedySensorSelection(ptrs, slot, nullptr, GreedyEngine::kLazy);
    for (const MultiQuery* q : ptrs) {
      result.payments.push_back(q->TotalPayment());
      result.values.push_back(q->CurrentValue());
      result.calls.push_back(q->ValuationCalls());
    }
    return result;
  };

  const JointRun serial = run(1);
  ASSERT_FALSE(serial.selection.selected_sensors.empty());
  for (int threads : {4, 8}) {
    const JointRun parallel = run(threads);
    ASSERT_EQ(parallel.selection.selected_sensors,
              serial.selection.selected_sensors)
        << threads << " threads";
    ASSERT_EQ(parallel.selection.total_value, serial.selection.total_value);
    ASSERT_EQ(parallel.selection.total_cost, serial.selection.total_cost);
    ASSERT_EQ(parallel.selection.valuation_calls,
              serial.selection.valuation_calls);
    ASSERT_EQ(parallel.payments, serial.payments) << threads << " threads";
    ASSERT_EQ(parallel.values, serial.values) << threads << " threads";
    ASSERT_EQ(parallel.calls, serial.calls) << threads << " threads";
  }
}

// The same guarantee end to end through the streaming loop: an engine
// serving slots with an intra-slot pool under churn must reproduce the
// serial engine's schedules and ValuationCalls exactly.
TEST(StreamingEquivalenceTest, ParallelEngineMatchesSerialUnderChurn) {
  const int count = 900;
  const Rect field{0, 0, 70, 70};
  ClusteredPopulationConfig config;
  config.count = count;
  config.num_clusters = 7;
  config.cluster_sigma = 6.0;
  Rng rng(43);
  const ScaleScenario scenario = GenerateClusteredSensors(config, field, rng);

  ChurnConfig churn;
  churn.arrival_rate = 25;
  churn.departure_rate = 25;
  churn.move_fraction = 0.03;

  ServingConfig serial_config = MakeConfig(field, 8.0, true);
  ServingConfig parallel_config = MakeConfig(field, 8.0, true);
  parallel_config.threads = 4;
  AcquisitionEngine serial_engine(scenario.sensors, serial_config);
  AcquisitionEngine parallel_engine(scenario.sensors, parallel_config);
  ChurnStream serial_stream(churn, scenario.sensors, field);
  ChurnStream parallel_stream(churn, scenario.sensors, field);
  serial_stream.SetClusteredPlacement(&scenario, &config);
  parallel_stream.SetClusteredPlacement(&scenario, &config);
  Rng serial_rng(3);
  Rng parallel_rng(3);
  for (int t = 0; t < 6; ++t) {
    serial_engine.ApplyDelta(serial_stream.Next(serial_rng));
    parallel_engine.ApplyDelta(parallel_stream.Next(parallel_rng));
    const SlotContext& serial_slot = serial_engine.BeginSlot(t);
    const SlotContext& parallel_slot = parallel_engine.BeginSlot(t);
    ExpectSameContext(serial_slot, parallel_slot, t);
    const GreedyEngine engine =
        t % 2 == 0 ? GreedyEngine::kLazy : GreedyEngine::kEager;
    const JointRun serial_run =
        RunJointSelection(serial_slot, field, engine, 1000 + t);
    const JointRun parallel_run =
        RunJointSelection(parallel_slot, field, engine, 1000 + t);
    ASSERT_EQ(serial_run.selection.selected_sensors,
              parallel_run.selection.selected_sensors)
        << "slot " << t;
    ASSERT_EQ(serial_run.payments, parallel_run.payments) << "slot " << t;
    ASSERT_EQ(serial_run.calls, parallel_run.calls) << "slot " << t;
    serial_engine.RecordSlotReadings(serial_run.selection.selected_sensors, t);
    parallel_engine.RecordSlotReadings(parallel_run.selection.selected_sensors, t);
  }
}

TEST(StreamingEquivalenceTest, RebuildModeMatchesBuildSlotContext) {
  SensorPopulationConfig population;
  population.count = 80;
  Rng rng(3);
  std::vector<Sensor> sensors = GenerateSensors(population, rng);
  for (Sensor& s : sensors) {
    s.SetPosition(Point{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)}, true);
  }
  const Rect region{0, 0, 20, 20};
  AcquisitionEngine engine(sensors, MakeConfig(region, 5.0, false));
  const SlotContext& from_engine = engine.BeginSlot(4);
  const SlotContext direct = BuildSlotContext(sensors, region, 4, 5.0);
  ExpectSameContext(from_engine, direct, 4);
}

TEST(StreamingEquivalenceTest, DepartedSensorsLeaveTheSlot) {
  SensorPopulationConfig population;
  population.count = 50;
  Rng rng(13);
  std::vector<Sensor> sensors = GenerateSensors(population, rng);
  for (Sensor& s : sensors) {
    s.SetPosition(Point{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)}, true);
  }
  AcquisitionEngine engine(sensors, MakeConfig(Rect{0, 0, 20, 20}, 5.0, true));
  ASSERT_EQ(engine.BeginSlot(0).sensors.size(), 50u);

  SensorDelta delta;
  delta.departures = {7, 30, 49};
  engine.ApplyDelta(delta);
  const SlotContext& after = engine.BeginSlot(1);
  EXPECT_EQ(after.sensors.size(), 47u);
  for (const SlotSensor& s : after.sensors) {
    EXPECT_NE(s.sensor_id, 7);
    EXPECT_NE(s.sensor_id, 30);
    EXPECT_NE(s.sensor_id, 49);
    EXPECT_EQ(after.sensors[static_cast<size_t>(s.index)].sensor_id, s.sensor_id);
  }

  // Re-arrival restores membership at the announced location.
  SensorDelta back;
  back.arrivals.push_back(SensorDelta::Placement{30, Point{3.0, 4.0}});
  engine.ApplyDelta(back);
  const SlotContext& restored = engine.BeginSlot(2);
  EXPECT_EQ(restored.sensors.size(), 48u);
  bool found = false;
  for (const SlotSensor& s : restored.sensors) {
    if (s.sensor_id == 30) {
      found = true;
      EXPECT_EQ(s.location.x, 3.0);
      EXPECT_EQ(s.location.y, 4.0);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Pipelined serving (ServingConfig::pipeline == 2) overlaps slot t+1's
// staged turnover — delta apply, membership repair, slab rebuild, index
// maintenance — with slot t's selection on a task-graph worker. The
// commit barrier must make the overlap invisible: every outcome field
// (selections, values, costs, valuation-call counts, payments) is
// bit-identical to the sequential schedule.

void ExpectPipelinedMatchesSequential(const ChurnScenarioSetup& setup,
                                      const ClosedLoopConfig& base) {
  const ClosedLoopResult sequential = RunChurnClosedLoop(setup, base);
  // The run did real work; empty schedules would pass vacuously.
  EXPECT_GT(sequential.total_payment, 0.0);
  EXPECT_GT(sequential.valuation_calls, 0);

  ClosedLoopConfig overlapped = base;
  overlapped.serving.pipeline = 2;
  ASSERT_TRUE(overlapped.serving.Validate().empty())
      << overlapped.serving.Validate();
  const ClosedLoopResult pipelined = RunChurnClosedLoop(setup, overlapped);
  ASSERT_EQ(sequential.outcomes.size(), pipelined.outcomes.size());
  for (size_t i = 0; i < sequential.outcomes.size(); ++i) {
    EXPECT_TRUE(SameOutcome(sequential.outcomes[i], pipelined.outcomes[i]))
        << "slot " << sequential.outcomes[i].time
        << " diverged: sequential selected "
        << sequential.outcomes[i].selection.selected_sensors.size()
        << " sensors (value "
        << sequential.outcomes[i].selection.total_value << ", payment "
        << sequential.outcomes[i].total_payment << "), pipelined selected "
        << pipelined.outcomes[i].selection.selected_sensors.size()
        << " (value " << pipelined.outcomes[i].selection.total_value
        << ", payment " << pipelined.outcomes[i].total_payment << ")";
  }
  EXPECT_EQ(sequential.total_payment, pipelined.total_payment);
  EXPECT_EQ(sequential.valuation_calls, pipelined.valuation_calls);
}

ClosedLoopConfig PipelineLoopConfig(GreedyEngine scheduler, uint64_t seed) {
  ClosedLoopConfig config;
  config.slots = 12;
  config.queries.queries_per_slot = 24;
  config.queries.aggregates_per_slot = 4;
  config.serving.scheduler = scheduler;
  config.serving.approx.seed = seed;
  return config;
}

TEST(PipelinedEquivalenceTest, MatchesSequentialAcrossSchedulers) {
  // Cross-slot feedback on (energy drain + privacy decay), so the late
  // reading-commit phase actually changes later announcements; mobility
  // and churn exercise the staged membership repair and index ops.
  SensorPopulationConfig profile;
  profile.linear_energy = true;
  profile.random_privacy = true;
  const ChurnScenarioSetup setup = MakeChurnScenario(
      600, /*churn_fraction=*/0.05, /*seed=*/91, /*with_mobility=*/true,
      profile);
  for (GreedyEngine scheduler :
       {GreedyEngine::kLazy, GreedyEngine::kEager, GreedyEngine::kStochastic,
        GreedyEngine::kSieve}) {
    SCOPED_TRACE(testing::Message()
                 << "scheduler=" << static_cast<int>(scheduler));
    ExpectPipelinedMatchesSequential(setup,
                                     PipelineLoopConfig(scheduler, 91));
  }
}

TEST(PipelinedEquivalenceTest, MatchesSequentialOnPlainChurnPopulation) {
  // Fixed announced costs, churn only: the staged repair path with no
  // feedback patches (the zero-readings early-return) must still merge
  // membership identically.
  const ChurnScenarioSetup setup = MakeChurnScenario(
      500, /*churn_fraction=*/0.08, /*seed=*/17, /*with_mobility=*/true);
  ExpectPipelinedMatchesSequential(setup,
                                   PipelineLoopConfig(GreedyEngine::kLazy, 17));
}

TEST(PipelinedEquivalenceTest, MatchesSequentialInRebuildMode) {
  // Rebuild mode stages a full BuildSlotContext on the worker. Readings
  // are off (Validate rejects the pipeline+readings+rebuild combo), so
  // this pins the announce-everything early phase.
  const ChurnScenarioSetup setup = MakeChurnScenario(
      400, /*churn_fraction=*/0.05, /*seed=*/29, /*with_mobility=*/true);
  ClosedLoopConfig config = PipelineLoopConfig(GreedyEngine::kEager, 29);
  config.serving.incremental = false;
  config.serving.record_readings = false;
  ExpectPipelinedMatchesSequential(setup, config);
}

TEST(PipelinedEquivalenceTest, MatchesSequentialAcrossThreadCounts) {
  // The selection thread pool and the turnover task graph share nothing
  // but the barrier; worker count must not leak into outcomes.
  SensorPopulationConfig profile;
  profile.linear_energy = true;
  const ChurnScenarioSetup setup = MakeChurnScenario(
      500, /*churn_fraction=*/0.05, /*seed=*/53, /*with_mobility=*/true,
      profile);
  for (int threads : {2, 4}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ClosedLoopConfig config = PipelineLoopConfig(GreedyEngine::kStochastic, 53);
    config.serving.threads = threads;
    ExpectPipelinedMatchesSequential(setup, config);
  }
}

}  // namespace
}  // namespace psens
