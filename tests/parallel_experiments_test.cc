// Tests of the thread pool and the parallel slot execution of the
// experiment runners: sharding independent slots over workers must be a
// pure performance knob — any parallelism value yields the bit-identical
// ExperimentResult for the same seed.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "mobility/random_waypoint.h"
#include "sim/experiments.h"
#include "sim/workload.h"

namespace psens {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(257, [&](int i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SubmitWaitRunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ResolveParallelism) {
  EXPECT_EQ(ThreadPool::ResolveParallelism(3), 3);
  EXPECT_EQ(ThreadPool::ResolveParallelism(1), 1);
  EXPECT_GE(ThreadPool::ResolveParallelism(0), 1);
  EXPECT_GE(ThreadPool::ResolveParallelism(-2), 1);
}

TEST(HasCrossSlotFeedbackTest, DetectsFeedbackSources) {
  SensorPopulationConfig config;
  config.lifetime = 20;
  EXPECT_FALSE(HasCrossSlotFeedback(config, 20));
  EXPECT_TRUE(HasCrossSlotFeedback(config, 21));  // wear-out mid-run
  config.lifetime = 50;
  config.linear_energy = true;
  EXPECT_TRUE(HasCrossSlotFeedback(config, 20));
  config.linear_energy = false;
  config.random_privacy = true;
  EXPECT_TRUE(HasCrossSlotFeedback(config, 20));
}

Trace SmallRwm(int slots) {
  RandomWaypointConfig config;
  config.num_sensors = 60;
  config.num_slots = slots;
  config.seed = 21;
  return GenerateRandomWaypoint(config);
}

PointExperimentConfig BasePointConfig(const Trace& trace, int slots) {
  PointExperimentConfig config;
  config.trace = &trace;
  config.working_region = Rect{10, 10, 70, 70};
  config.dmax = 8.0;
  config.num_slots = slots;
  config.queries_per_slot = 60;
  config.budget = BudgetScheme{15.0, false, 0.0};
  config.scheduler = PointScheduler::kLocalSearch;
  config.sensors.lifetime = slots;
  config.seed = 99;
  return config;
}

void ExpectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  // Bit-identical, not merely close: the parallel runner promises the
  // exact sequential result (ordered reduction over per-slot streams).
  EXPECT_EQ(a.avg_utility, b.avg_utility);
  EXPECT_EQ(a.satisfaction, b.satisfaction);
  EXPECT_EQ(a.avg_quality, b.avg_quality);
  EXPECT_EQ(a.avg_cost, b.avg_cost);
  EXPECT_EQ(a.avg_value, b.avg_value);
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.answered_queries, b.answered_queries);
}

TEST(ParallelExperimentTest, PointExperimentDeterministicAcrossThreadCounts) {
  const Trace trace = SmallRwm(8);
  PointExperimentConfig config = BasePointConfig(trace, 8);
  config.parallelism = 1;
  const ExperimentResult sequential = RunPointExperiment(config);
  EXPECT_GT(sequential.total_queries, 0);
  for (int threads : {2, 4, 7}) {
    config.parallelism = threads;
    ExpectIdentical(sequential, RunPointExperiment(config));
  }
  config.parallelism = 0;  // auto = hardware concurrency
  ExpectIdentical(sequential, RunPointExperiment(config));
}

TEST(ParallelExperimentTest, AggregateExperimentDeterministicAcrossThreadCounts) {
  const Trace trace = SmallRwm(6);
  AggregateExperimentConfig config;
  config.trace = &trace;
  config.working_region = Rect{10, 10, 70, 70};
  config.num_slots = 6;
  config.budget_factor = 12.0;
  config.sensors.lifetime = 6;
  config.seed = 7;
  config.parallelism = 1;
  const ExperimentResult sequential = RunAggregateExperiment(config);
  config.parallelism = 4;
  ExpectIdentical(sequential, RunAggregateExperiment(config));
}

TEST(ParallelExperimentTest, FeedbackConfigsIgnoreParallelismSafely) {
  // Linear energy costs couple slots; the runner must fall back to the
  // sequential feedback path and still give identical results for any
  // requested parallelism.
  const Trace trace = SmallRwm(6);
  PointExperimentConfig config = BasePointConfig(trace, 6);
  config.sensors.linear_energy = true;
  config.parallelism = 1;
  const ExperimentResult sequential = RunPointExperiment(config);
  config.parallelism = 4;
  ExpectIdentical(sequential, RunPointExperiment(config));
}

TEST(ParallelExperimentTest, WearOutStillBitesOnTheSequentialPath) {
  // Guard for the HasCrossSlotFeedback contract: short lifetimes must
  // still wear sensors out (the parallel fast path would lose that).
  const Trace trace = SmallRwm(10);
  PointExperimentConfig config = BasePointConfig(trace, 10);
  config.sensors.lifetime = 2;
  const ExperimentResult short_life = RunPointExperiment(config);
  config.sensors.lifetime = 10;
  const ExperimentResult long_life = RunPointExperiment(config);
  EXPECT_LT(short_life.avg_utility, long_life.avg_utility);
}

}  // namespace
}  // namespace psens
