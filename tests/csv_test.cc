#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace psens {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = TempPath("roundtrip.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.Ok());
    writer.WriteRow(std::vector<std::string>{"a", "b", "c"});
    writer.WriteRow(std::vector<double>{1.5, -2.0, 3.0});
  }
  bool ok = false;
  const auto rows = ReadCsv(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1][0], "1.5");
  EXPECT_EQ(rows[1][1], "-2");
}

TEST(CsvTest, QuotedFieldsRoundTrip) {
  const std::string path = TempPath("quoted.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.Ok());
    writer.WriteRow(std::vector<std::string>{"has,comma", "has\"quote", "plain"});
  }
  bool ok = false;
  const auto rows = ReadCsv(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "has,comma");
  EXPECT_EQ(rows[0][1], "has\"quote");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST(CsvTest, ParseLineBasic) {
  const auto fields = ParseCsvLine("1,2,3");
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, ParseLineEmptyFields) {
  const auto fields = ParseCsvLine("a,,c,");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvTest, ParseLineQuotedComma) {
  const auto fields = ParseCsvLine("\"a,b\",c");
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvTest, ParseLineEscapedQuote) {
  const auto fields = ParseCsvLine("\"he said \"\"hi\"\"\",x");
  EXPECT_EQ(fields[0], "he said \"hi\"");
  EXPECT_EQ(fields[1], "x");
}

TEST(CsvTest, ReadMissingFileFails) {
  bool ok = true;
  const auto rows = ReadCsv("/nonexistent/definitely/not/here.csv", &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(rows.empty());
}

TEST(CsvTest, WriterToInvalidPathNotOk) {
  CsvWriter writer("/nonexistent/dir/file.csv");
  EXPECT_FALSE(writer.Ok());
  writer.WriteRow(std::vector<std::string>{"ignored"});  // must not crash
}

}  // namespace
}  // namespace psens
