#include "core/slot.h"

#include <gtest/gtest.h>

namespace psens {
namespace {

std::vector<Sensor> ThreeSensors() {
  std::vector<Sensor> sensors;
  SensorProfile profile;
  profile.base_price = 10.0;
  profile.lifetime = 5;
  for (int i = 0; i < 3; ++i) sensors.emplace_back(i, profile);
  sensors[0].SetPosition(Point{5, 5}, true);    // inside
  sensors[1].SetPosition(Point{50, 50}, true);  // outside region
  sensors[2].SetPosition(Point{6, 6}, false);   // absent
  return sensors;
}

TEST(BuildSlotContextTest, FiltersByRegionAndAvailability) {
  const std::vector<Sensor> sensors = ThreeSensors();
  const SlotContext slot =
      BuildSlotContext(sensors, Rect{0, 0, 10, 10}, /*time=*/3, /*dmax=*/5.0);
  ASSERT_EQ(slot.sensors.size(), 1u);
  EXPECT_EQ(slot.sensors[0].sensor_id, 0);
  EXPECT_EQ(slot.sensors[0].index, 0);
  EXPECT_EQ(slot.time, 3);
  EXPECT_DOUBLE_EQ(slot.dmax, 5.0);
}

TEST(BuildSlotContextTest, AnnouncedCostComesFromSensorModel) {
  std::vector<Sensor> sensors = ThreeSensors();
  // Burn readings so the linear model would matter; with the fixed model
  // the announced price stays at base.
  sensors[0].RecordReading(0);
  const SlotContext slot =
      BuildSlotContext(sensors, Rect{0, 0, 10, 10}, 1, 5.0);
  ASSERT_EQ(slot.sensors.size(), 1u);
  EXPECT_DOUBLE_EQ(slot.sensors[0].cost, sensors[0].Cost(1));
}

TEST(BuildSlotContextTest, WornOutSensorExcluded) {
  std::vector<Sensor> sensors = ThreeSensors();
  for (int t = 0; t < 5; ++t) sensors[0].RecordReading(t);  // lifetime 5
  const SlotContext slot =
      BuildSlotContext(sensors, Rect{0, 0, 10, 10}, 6, 5.0);
  EXPECT_TRUE(slot.sensors.empty());
}

TEST(BuildSlotContextTest, IndicesAreDense) {
  std::vector<Sensor> sensors = ThreeSensors();
  sensors[1].SetPosition(Point{7, 7}, true);  // now also inside
  const SlotContext slot =
      BuildSlotContext(sensors, Rect{0, 0, 10, 10}, 0, 5.0);
  ASSERT_EQ(slot.sensors.size(), 2u);
  EXPECT_EQ(slot.sensors[0].index, 0);
  EXPECT_EQ(slot.sensors[1].index, 1);
  EXPECT_EQ(slot.sensors[1].sensor_id, 1);
}

TEST(SlotQualityTest, MatchesReadingQuality) {
  SlotSensor s;
  s.location = Point{3, 4};
  s.inaccuracy = 0.1;
  s.trust = 0.8;
  // distance 5 from origin, dmax 10.
  EXPECT_DOUBLE_EQ(SlotQuality(s, Point{0, 0}, 10.0), 0.9 * 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(SlotQuality(s, Point{0, 0}, 4.0), 0.0);
}

}  // namespace
}  // namespace psens
