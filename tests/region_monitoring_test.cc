#include "core/region_monitoring.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "gp/kernel.h"

namespace psens {
namespace {

std::shared_ptr<const Kernel> Se() {
  return std::make_shared<SquaredExponentialKernel>(2.0, 3.0);
}

SlotContext MakeSlot(std::vector<Point> positions, int time = 10) {
  SlotContext slot;
  slot.time = time;
  slot.dmax = 2.0;
  for (size_t i = 0; i < positions.size(); ++i) {
    SlotSensor s;
    s.index = static_cast<int>(i);
    s.sensor_id = static_cast<int>(i);
    s.location = positions[i];
    s.cost = 10.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

RegionMonitoringQuery MakeQuery(int id = 1) {
  RegionMonitoringQuery q;
  q.id = id;
  q.region = Rect{0, 0, 10, 8};
  q.t1 = 10;
  q.t2 = 20;
  q.budget = 400.0;
  return q;
}

RegionMonitoringManager::Config DefaultConfig() {
  return RegionMonitoringManager::Config{};
}

TEST(SharingWeightTest, Equation18Values) {
  EXPECT_DOUBLE_EQ(SharingWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(SharingWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(SharingWeight(2), 0.9);
  EXPECT_DOUBLE_EQ(SharingWeight(9), 0.2);
  EXPECT_DOUBLE_EQ(SharingWeight(10), 0.1);
  EXPECT_DOUBLE_EQ(SharingWeight(50), 0.1);
}

TEST(RegionMonitoringTest, KernelSupportPruningDropsOnlyZeroGainCandidates) {
  // SelectSamplingPoints prunes candidates farther from the target region
  // than the kernel's support radius. In-region candidates sit at
  // distance 0 and must all survive; a candidate far beyond the support
  // radius has (numerically) zero variance-reduction gain and must never
  // be chosen even when offered. The debug build additionally asserts
  // the dropped candidates' MarginalGain is ~0 (the satellite
  // cross-check); this test pins the behavioural half in all builds.
  RegionMonitoringManager manager(Se(), DefaultConfig());
  const RegionMonitoringQuery query = MakeQuery(1);
  // Two useful in-region sensors plus one far outside any plausible
  // support radius (SE kernel, length 3: support < 25 for tol 1e-12*var).
  SlotContext slot = MakeSlot({Point{2, 2}, Point{8, 6}, Point{500, 500}});
  const std::vector<int> candidates{0, 1, 2};
  const std::vector<double> cost_scale(slot.sensors.size(), 1.0);
  const std::vector<int> chosen =
      manager.SelectSamplingPoints(query, slot, candidates, cost_scale, 100.0);
  EXPECT_FALSE(chosen.empty());
  for (int si : chosen) EXPECT_NE(si, 2) << "far-away sensor must be pruned";
  // Pruning must not change what gets chosen from the viable candidates.
  const std::vector<int> viable{0, 1};
  EXPECT_EQ(chosen,
            manager.SelectSamplingPoints(query, slot, viable, cost_scale, 100.0));
}

TEST(RegionMonitoringTest, CostScaleReflectsOverlappingQueries) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  manager.AddQuery(MakeQuery(1));
  RegionMonitoringQuery q2 = MakeQuery(2);
  q2.region = Rect{0, 0, 5, 5};
  manager.AddQuery(q2);
  // Sensor inside both regions vs inside one vs outside all.
  const SlotContext slot =
      MakeSlot({Point{2, 2}, Point{8, 6}, Point{50, 50}});
  const std::vector<double> scale = manager.CostScale(slot);
  EXPECT_DOUBLE_EQ(scale[0], 0.9);  // k = 2
  EXPECT_DOUBLE_EQ(scale[1], 1.0);  // k = 1
  EXPECT_DOUBLE_EQ(scale[2], 1.0);  // k = 0
}

TEST(RegionMonitoringTest, CostScaleDisabledIsAllOnes) {
  RegionMonitoringManager::Config config = DefaultConfig();
  config.cost_weighting = false;
  RegionMonitoringManager manager(Se(), config);
  manager.AddQuery(MakeQuery(1));
  manager.AddQuery(MakeQuery(2));
  const SlotContext slot = MakeSlot({Point{2, 2}});
  EXPECT_DOUBLE_EQ(manager.CostScale(slot)[0], 1.0);
}

TEST(RegionMonitoringTest, SelectSamplingPointsRespectsBudget) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  const RegionMonitoringQuery q = MakeQuery();
  std::vector<Point> positions;
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    positions.push_back(Point{rng.Uniform(0, 10), rng.Uniform(0, 8)});
  }
  const SlotContext slot = MakeSlot(positions);
  std::vector<int> in_region;
  for (int i = 0; i < 8; ++i) in_region.push_back(i);
  const std::vector<double> scale(8, 1.0);
  // Budget 25 affords at most 2 sensor-selections over the whole horizon
  // before the C < B loop stops (costs are 10)... the loop adds while
  // C < B, so cost can reach at most B + one sensor.
  const std::vector<int> chosen =
      manager.SelectSamplingPoints(q, slot, in_region, scale, 25.0);
  EXPECT_LE(chosen.size(), 3u);
}

TEST(RegionMonitoringTest, SelectSamplingPointsEmptyWhenNoSensorsOrBudget) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  const RegionMonitoringQuery q = MakeQuery();
  const SlotContext slot = MakeSlot({Point{1, 1}});
  EXPECT_TRUE(manager.SelectSamplingPoints(q, slot, {}, {1.0}, 100.0).empty());
  EXPECT_TRUE(manager.SelectSamplingPoints(q, slot, {0}, {1.0}, 0.0).empty());
}

TEST(RegionMonitoringTest, CreatePointQueriesValuesMarginals) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  manager.AddQuery(MakeQuery());
  const SlotContext slot = MakeSlot({Point{2, 2}, Point{7, 5}});
  const std::vector<PointQuery> created = manager.CreatePointQueries(slot);
  for (const PointQuery& pq : created) {
    EXPECT_GT(pq.budget, 0.0);
    EXPECT_EQ(pq.parent, 0);
    EXPECT_TRUE(MakeQuery().region.Contains(pq.location));
  }
}

TEST(RegionMonitoringTest, InactiveOrExhaustedQueriesCreateNothing) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  RegionMonitoringQuery q = MakeQuery();
  q.spent = q.budget + 1.0;  // exhausted
  manager.AddQuery(q);
  // AddQuery resets spent; simulate exhaustion through the slot time
  // instead: slot before t1.
  const SlotContext early = MakeSlot({Point{2, 2}}, /*time=*/5);
  EXPECT_TRUE(manager.CreatePointQueries(early).empty());
}

TEST(RegionMonitoringTest, ApplyResultsAccumulatesSamplesAndValue) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  manager.AddQuery(MakeQuery());
  const SlotContext slot = MakeSlot({Point{2, 2}, Point{7, 5}});
  const std::vector<PointQuery> created = manager.CreatePointQueries(slot);
  ASSERT_FALSE(created.empty());
  std::vector<PointAssignment> assignments(created.size());
  for (size_t i = 0; i < created.size(); ++i) {
    assignments[i].sensor = 0;
    assignments[i].value = created[i].budget;
    assignments[i].quality = 0.9;
    assignments[i].payment = 2.0;
  }
  const RegionMonitoringManager::SlotOutcome outcome =
      manager.ApplyResults(slot, created, assignments, {});
  EXPECT_GT(outcome.value_gain, 0.0);
  const RegionMonitoringQuery& q = manager.queries()[0];
  EXPECT_EQ(q.samples.size(), created.size());
  EXPECT_GT(q.spent, 0.0);
  EXPECT_GT(q.requested, 0.0);
}

TEST(RegionMonitoringTest, SharingAddsExtraSamplesWithinAllowance) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  manager.AddQuery(MakeQuery());
  const SlotContext slot = MakeSlot({Point{2, 2}, Point{8, 6}});
  const std::vector<PointQuery> created = manager.CreatePointQueries(slot);
  // All planned samples fail, but another query selected sensor 1 inside
  // the region; with alpha * C_t allowance the query shares it.
  std::vector<PointAssignment> failed(created.size());
  const RegionMonitoringManager::SlotOutcome outcome =
      manager.ApplyResults(slot, created, failed, {1});
  if (!created.empty()) {
    EXPECT_GT(outcome.contribution, 0.0);
    EXPECT_GT(outcome.value_gain, 0.0);
    EXPECT_EQ(manager.queries()[0].samples.size(), 1u);
  }
}

TEST(RegionMonitoringTest, SharingDisabledAddsNothing) {
  RegionMonitoringManager::Config config = DefaultConfig();
  config.share_extra_sensors = false;
  RegionMonitoringManager manager(Se(), config);
  manager.AddQuery(MakeQuery());
  const SlotContext slot = MakeSlot({Point{2, 2}, Point{8, 6}});
  const std::vector<PointQuery> created = manager.CreatePointQueries(slot);
  std::vector<PointAssignment> failed(created.size());
  const RegionMonitoringManager::SlotOutcome outcome =
      manager.ApplyResults(slot, created, failed, {1});
  EXPECT_DOUBLE_EQ(outcome.contribution, 0.0);
  EXPECT_TRUE(manager.queries()[0].samples.empty());
}

TEST(RegionMonitoringTest, RemoveExpiredComputesQualityRatio) {
  RegionMonitoringManager manager(Se(), DefaultConfig());
  manager.AddQuery(MakeQuery());
  const SlotContext slot = MakeSlot({Point{2, 2}});
  const std::vector<PointQuery> created = manager.CreatePointQueries(slot);
  std::vector<PointAssignment> assignments(created.size());
  for (size_t i = 0; i < created.size(); ++i) {
    assignments[i].sensor = 0;
    assignments[i].value = 1.0;
    assignments[i].quality = 1.0;
    assignments[i].payment = 1.0;
  }
  manager.ApplyResults(slot, created, assignments, {});
  manager.RemoveExpired(21);
  EXPECT_EQ(manager.num_completed(), 1);
  EXPECT_GT(manager.MeanCompletedQuality(), 0.0);
}

}  // namespace
}  // namespace psens
