#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "gp/gaussian_process.h"
#include "gp/gp_selector.h"
#include "gp/kernel.h"
#include "gp/spatio_temporal.h"
#include "la/cholesky.h"

namespace psens {
namespace {

std::shared_ptr<const Kernel> Se(double variance = 2.0, double length = 3.0) {
  return std::make_shared<SquaredExponentialKernel>(variance, length);
}

TEST(KernelTest, VarianceAtZeroDistance) {
  const SquaredExponentialKernel se(2.0, 3.0);
  EXPECT_DOUBLE_EQ(se(Point{1, 1}, Point{1, 1}), 2.0);
  const Matern32Kernel m(1.5, 2.0);
  EXPECT_DOUBLE_EQ(m(Point{0, 0}, Point{0, 0}), 1.5);
}

TEST(KernelTest, SymmetricAndDecaying) {
  const SquaredExponentialKernel se(1.0, 2.0);
  const Point a{0, 0}, b{1, 2}, c{5, 5};
  EXPECT_DOUBLE_EQ(se(a, b), se(b, a));
  EXPECT_GT(se(a, b), se(a, c));
  EXPECT_GT(se(a, b), 0.0);
}

TEST(KernelTest, Matern32DecaysSlowerThanSeAtLargeDistance) {
  const SquaredExponentialKernel se(1.0, 2.0);
  const Matern32Kernel m(1.0, 2.0);
  const Point a{0, 0}, far{10, 0};
  EXPECT_GT(m(a, far), se(a, far));
}

TEST(KernelTest, CovarianceMatrixIsPsd) {
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(Point{rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const auto kernel = Se();
  Matrix k = CovarianceMatrix(*kernel, pts, pts);
  // PSD check via Cholesky with tiny jitter.
  EXPECT_TRUE(Cholesky(k, 1e-8).Ok());
}

TEST(GaussianProcessTest, PriorVarianceScalesWithTargets) {
  GaussianProcess gp(Se(2.0), 0.1);
  const std::vector<Point> targets = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_DOUBLE_EQ(gp.PriorVariance(targets), 6.0);
}

TEST(GaussianProcessTest, NoObservationsMeansNoReduction) {
  GaussianProcess gp(Se(), 0.1);
  const std::vector<Point> targets = {{0, 0}, {5, 5}};
  EXPECT_DOUBLE_EQ(gp.VarianceReduction(targets, {}), 0.0);
}

TEST(GaussianProcessTest, ObservationAtTargetRemovesMostVariance) {
  GaussianProcess gp(Se(2.0, 3.0), 1e-4);
  const std::vector<Point> targets = {{0, 0}};
  const double reduction = gp.VarianceReduction(targets, {{0, 0}});
  EXPECT_GT(reduction, 1.9);  // nearly all of the prior 2.0
  EXPECT_LE(reduction, 2.0);
}

TEST(GaussianProcessTest, ReductionMonotoneInObservations) {
  GaussianProcess gp(Se(), 0.1);
  const std::vector<Point> targets = {{0, 0}, {4, 0}, {8, 0}};
  const double one = gp.VarianceReduction(targets, {{1, 0}});
  const double two = gp.VarianceReduction(targets, {{1, 0}, {7, 0}});
  EXPECT_GT(two, one);
  EXPECT_LE(two, gp.PriorVariance(targets) + 1e-9);
}

TEST(GaussianProcessTest, FarObservationReducesLittle) {
  GaussianProcess gp(Se(1.0, 1.0), 0.1);
  const std::vector<Point> targets = {{0, 0}};
  EXPECT_LT(gp.VarianceReduction(targets, {{100, 100}}), 1e-6);
}

TEST(GridTargetsTest, CoversRegionAtStep) {
  const std::vector<Point> targets = GridTargets(Rect{0, 0, 4, 2}, 2.0);
  EXPECT_EQ(targets.size(), 2u * 1u);
  for (const Point& p : targets) {
    EXPECT_TRUE((Rect{0, 0, 4, 2}).Contains(p));
  }
  EXPECT_TRUE(GridTargets(Rect{0, 0, 4, 2}, 0.0).empty());
}

TEST(IncrementalGpSelectorTest, MatchesDirectVarianceReduction) {
  Rng rng(5);
  const auto kernel = Se(2.0, 2.5);
  const double noise = 0.2;
  std::vector<Point> targets;
  for (int i = 0; i < 12; ++i) {
    targets.push_back(Point{rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  GaussianProcess gp(kernel, noise);
  IncrementalGpSelector selector(kernel, noise, targets);
  std::vector<Point> observed;
  for (int i = 0; i < 6; ++i) {
    const Point s{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const double before = selector.TotalReduction();
    const double gain = selector.MarginalGain(s);
    selector.Add(s);
    observed.push_back(s);
    EXPECT_NEAR(selector.TotalReduction(), before + gain, 1e-8);
    EXPECT_NEAR(selector.TotalReduction(), gp.VarianceReduction(targets, observed),
                1e-6)
        << "after " << i + 1 << " observations";
  }
  EXPECT_EQ(selector.NumObservations(), 6);
  EXPECT_LE(selector.TotalReduction(), selector.PriorVariance() + 1e-9);
}

TEST(IncrementalGpSelectorTest, MarginalGainsNonNegativeAndDiminishing) {
  const auto kernel = Se();
  IncrementalGpSelector selector(kernel, 0.1, {{0, 0}, {2, 0}});
  const Point s{1, 0};
  const double first = selector.MarginalGain(s);
  EXPECT_GE(first, 0.0);
  selector.Add(s);
  const double second = selector.MarginalGain(s);
  EXPECT_GE(second, 0.0);
  EXPECT_LT(second, first);  // re-observing the same spot is nearly useless
}

TEST(SpatioTemporalTest, ReducesToSpatialAtEqualTimes) {
  const auto spatial = Se(2.0, 3.0);
  const SpatioTemporalKernel st(spatial, 2.0);
  const STPoint a{{0, 0}, 5.0}, b{{1, 2}, 5.0};
  EXPECT_DOUBLE_EQ(st(a, b), (*spatial)(a.location, b.location));
}

TEST(SpatioTemporalTest, DecaysOverTime) {
  const SpatioTemporalKernel st(Se(1.0, 3.0), 2.0);
  const STPoint now{{0, 0}, 0.0};
  const STPoint later{{0, 0}, 4.0};
  EXPECT_LT(st(now, later), st(now, now));
  EXPECT_GT(st(now, later), 0.0);
}

TEST(SpatioTemporalTest, StaleObservationReducesLess) {
  const SpatioTemporalKernel st(Se(2.0, 3.0), 1.5);
  std::vector<STPoint> targets = {{{0, 0}, 10.0}, {{2, 0}, 10.0}};
  const double fresh =
      VarianceReductionST(st, 0.1, targets, {{{1, 0}, 10.0}});
  const double stale = VarianceReductionST(st, 0.1, targets, {{{1, 0}, 2.0}});
  EXPECT_GT(fresh, stale);
}

TEST(SpatioTemporalTest, EmptyObservationsZero) {
  const SpatioTemporalKernel st(Se(), 2.0);
  EXPECT_DOUBLE_EQ(VarianceReductionST(st, 0.1, {{{0, 0}, 0.0}}, {}), 0.0);
}

}  // namespace
}  // namespace psens
