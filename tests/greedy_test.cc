// Tests of Algorithm 1 ("Greedy Sensor Selection") and its Theorem 1
// properties:
//   1. telescoping: sum of committed marginals equals v_q(S_q);
//   2. positive total utility whenever anything is selected;
//   3. individual rationality: v_q(S_q) >= sum of payments;
//   4. O(|Q| |S|^2) valuation calls.

#include "core/greedy.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/multi_query.h"
#include "sim/workload.h"

namespace psens {
namespace {

SlotContext MakeSlot(int num_sensors, uint64_t seed) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 10.0;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
    s.cost = rng.Uniform(5.0, 15.0);
    s.inaccuracy = rng.Uniform(0.0, 0.2);
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

std::vector<std::unique_ptr<AggregateQuery>> MakeAggregates(const SlotContext& slot,
                                                            int count,
                                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<AggregateQuery>> queries;
  for (int i = 0; i < count; ++i) {
    AggregateQuery::Params params;
    params.id = i;
    params.region = RandomRect(Rect{0, 0, 40, 40}, 5.0, rng);
    params.budget = rng.Uniform(20.0, 60.0);
    params.sensing_range = 10.0;
    queries.push_back(std::make_unique<AggregateQuery>(params, slot));
  }
  return queries;
}

class Theorem1Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Test, AllFourProperties) {
  const SlotContext slot = MakeSlot(12, 100 + GetParam());
  auto queries = MakeAggregates(slot, 6, 200 + GetParam());
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());

  const SelectionResult result = GreedySensorSelection(ptrs, slot);

  // Property 2: positive total utility if any sensor was selected.
  if (!result.selected_sensors.empty()) {
    EXPECT_GT(result.Utility(), 0.0);
  }
  double total_payment = 0.0;
  for (const auto& q : queries) {
    // Property 1+3: value of the selection covers the payments.
    EXPECT_GE(q->CurrentValue() + 1e-9, q->TotalPayment());
    total_payment += q->TotalPayment();
  }
  // Payments exactly cover the cost of all selected sensors.
  EXPECT_NEAR(total_payment, result.total_cost, 1e-6);
  // Property 4: O(|Q| |S|^2) valuation calls.
  const int64_t bound = static_cast<int64_t>(ptrs.size()) * 12 * 12 +
                        static_cast<int64_t>(ptrs.size()) * 12;
  EXPECT_LE(result.valuation_calls, bound);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem1Test, ::testing::Range(0, 15));

TEST(GreedyTest, SelectsNothingWhenCostsDominate) {
  SlotContext slot = MakeSlot(5, 1);
  for (SlotSensor& s : slot.sensors) s.cost = 1e6;
  auto queries = MakeAggregates(slot, 3, 2);
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  const SelectionResult result = GreedySensorSelection(ptrs, slot);
  EXPECT_TRUE(result.selected_sensors.empty());
  EXPECT_DOUBLE_EQ(result.total_value, 0.0);
}

TEST(GreedyTest, SharedSensorPaidOnceSplitProportionally) {
  // One sensor covering two point queries: both benefit, payments split
  // proportionally to marginals and sum to the cost (line 10).
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  SlotSensor s;
  s.index = 0;
  s.sensor_id = 0;
  s.location = Point{0, 0};
  s.cost = 10.0;
  slot.sensors.push_back(s);

  PointQuery q1;
  q1.id = 1;
  q1.location = Point{0, 0};  // theta 1.0
  q1.budget = 20.0;
  PointQuery q2;
  q2.id = 2;
  q2.location = Point{2.5, 0};  // theta 0.5
  q2.budget = 20.0;
  PointMultiQuery m1(q1, &slot), m2(q2, &slot);
  std::vector<MultiQuery*> ptrs = {&m1, &m2};
  const SelectionResult result = GreedySensorSelection(ptrs, slot);
  ASSERT_EQ(result.selected_sensors.size(), 1u);
  // Marginals: 20 and 10 -> payments 20/30*10 and 10/30*10.
  EXPECT_NEAR(m1.TotalPayment(), 10.0 * 20.0 / 30.0, 1e-9);
  EXPECT_NEAR(m2.TotalPayment(), 10.0 * 10.0 / 30.0, 1e-9);
  EXPECT_NEAR(m1.TotalPayment() + m2.TotalPayment(), 10.0, 1e-9);
}

TEST(GreedyTest, CostScaleBiasesSelectionButChargesTrueCost) {
  // Two identical sensors; scaling one's cost to near zero makes greedy
  // prefer it, yet the query still pays the true cost.
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  for (int i = 0; i < 2; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{static_cast<double>(i) * 0.1, 0};
    s.cost = 10.0;
    slot.sensors.push_back(s);
  }
  PointQuery q;
  q.id = 1;
  q.location = Point{0.05, 0};
  q.budget = 20.0;
  PointMultiQuery m(q, &slot);
  std::vector<MultiQuery*> ptrs = {&m};
  const std::vector<double> scale = {1.0, 0.01};
  const SelectionResult result = GreedySensorSelection(ptrs, slot, &scale);
  ASSERT_EQ(result.selected_sensors.size(), 1u);
  EXPECT_EQ(result.selected_sensors[0], 1);
  EXPECT_NEAR(result.total_cost, 10.0, 1e-9);
  EXPECT_NEAR(m.TotalPayment(), 10.0, 1e-9);
}

TEST(BaselineSequentialTest, EarlierQueriesPayLaterQueriesFreeRide) {
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  SlotSensor s;
  s.index = 0;
  s.sensor_id = 0;
  s.location = Point{0, 0};
  s.cost = 10.0;
  slot.sensors.push_back(s);
  PointQuery q;
  q.location = Point{0, 0};
  q.budget = 20.0;
  q.id = 1;
  PointMultiQuery first(q, &slot), second(q, &slot);
  std::vector<MultiQuery*> ptrs = {&first, &second};
  const SelectionResult result = BaselineSequentialSelection(ptrs, slot);
  EXPECT_NEAR(first.TotalPayment(), 10.0, 1e-9);
  EXPECT_NEAR(second.TotalPayment(), 0.0, 1e-9);
  EXPECT_EQ(result.selected_sensors.size(), 1u);
  EXPECT_NEAR(result.total_value, 40.0, 1e-9);
}

TEST(BaselineSequentialTest, QueryAloneCannotAffordSensor) {
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 5.0;
  SlotSensor s;
  s.index = 0;
  s.sensor_id = 0;
  s.location = Point{0, 0};
  s.cost = 10.0;
  slot.sensors.push_back(s);
  PointQuery q;
  q.location = Point{0, 0};
  q.budget = 7.0;  // value 7 < cost 10
  PointMultiQuery a(q, &slot), b(q, &slot), c(q, &slot);
  std::vector<MultiQuery*> ptrs = {&a, &b, &c};
  const SelectionResult baseline = BaselineSequentialSelection(ptrs, slot);
  EXPECT_TRUE(baseline.selected_sensors.empty());
  // Greedy pools the three budgets: 21 > 10.
  a.ResetSelection();
  b.ResetSelection();
  c.ResetSelection();
  const SelectionResult greedy = GreedySensorSelection(ptrs, slot);
  EXPECT_EQ(greedy.selected_sensors.size(), 1u);
  EXPECT_NEAR(greedy.Utility(), 21.0 - 10.0, 1e-9);
}

TEST(GreedyTest, GreedyAtLeastMatchesBaselineOnRandomAggregates) {
  for (int trial = 0; trial < 10; ++trial) {
    const SlotContext slot = MakeSlot(15, 300 + trial);
    auto q1 = MakeAggregates(slot, 5, 400 + trial);
    auto q2 = MakeAggregates(slot, 5, 400 + trial);
    std::vector<MultiQuery*> p1, p2;
    for (auto& q : q1) p1.push_back(q.get());
    for (auto& q : q2) p2.push_back(q.get());
    const SelectionResult greedy = GreedySensorSelection(p1, slot);
    const SelectionResult baseline = BaselineSequentialSelection(p2, slot);
    // Not a theorem, but on pooled-value instances greedy should not lose
    // by much; assert it never loses the slot entirely when baseline wins.
    if (baseline.Utility() > 0.0) {
      EXPECT_GT(greedy.Utility(), 0.0) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace psens
