#include "la/matrix.h"

#include <gtest/gtest.h>

namespace psens {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.Rows(), 2u);
  EXPECT_EQ(m.Cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -4.0);
}

TEST(MatrixTest, IdentityMultiplicationIsNoOp) {
  Matrix m(3, 3);
  int k = 0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) m(r, c) = ++k;
  }
  const Matrix prod = m.Multiply(Matrix::Identity(3));
  EXPECT_DOUBLE_EQ(prod.MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, TransposeSwapsIndices) {
  Matrix m(2, 3);
  m(0, 2) = 7.0;
  m(1, 0) = -2.0;
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.Rows(), 3u);
  EXPECT_EQ(t.Cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const std::vector<double> out = m.MultiplyVector({1.0, 1.0, 1.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a(1, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  Matrix b(1, 2);
  b(0, 0) = 0.5; b(0, 1) = -1.0;
  const Matrix sum = a.Add(b);
  EXPECT_DOUBLE_EQ(sum(0, 0), 1.5);
  const Matrix diff = a.Subtract(b);
  EXPECT_DOUBLE_EQ(diff(0, 1), 3.0);
  const Matrix scaled = a.Scale(2.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 4.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0; m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

}  // namespace
}  // namespace psens
