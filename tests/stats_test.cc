#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psens {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdError(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 42.0);
  EXPECT_DOUBLE_EQ(s.Max(), 42.0);
}

TEST(RunningStatTest, MeanAndVarianceMatchDirectFormulas) {
  RunningStat s;
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatTest, MinMaxTracked) {
  RunningStat s;
  for (double v : {3.0, -1.0, 7.0, 2.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Min(), -1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 7.0);
}

TEST(RunningStatTest, StdErrorShrinksWithSamples) {
  RunningStat small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 2);
  for (int i = 0; i < 1000; ++i) large.Add(i % 2);
  EXPECT_GT(small.StdError(), large.StdError());
}

TEST(VectorStatsTest, MeanOfVector) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VectorStatsTest, StdDevOfVector) {
  EXPECT_DOUBLE_EQ(StdDev({5.0, 5.0, 5.0}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 3.0}), 1.0, 1e-12);  // population std-dev
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
}

TEST(VectorStatsTest, QuantileEndpointsAndMedian) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
}

TEST(VectorStatsTest, QuantileClampsOutOfRangeQ) {
  std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 2.0);
}

TEST(VectorStatsTest, QuantileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace psens
