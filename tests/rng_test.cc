#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace psens {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all 4 values hit in 1000 draws
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end()), b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace psens
