#include "solver/facility_location.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace psens {
namespace {

FacilityLocationProblem RandomProblem(int sensors, int locations, double cover_p,
                                      Rng& rng) {
  FacilityLocationProblem p;
  p.num_locations = locations;
  p.open_cost.resize(sensors);
  p.value.resize(sensors);
  for (int i = 0; i < sensors; ++i) {
    p.open_cost[i] = rng.Uniform(5.0, 15.0);
    for (int l = 0; l < locations; ++l) {
      if (rng.Bernoulli(cover_p)) {
        p.value[i].emplace_back(l, rng.Uniform(1.0, 12.0));
      }
    }
  }
  return p;
}

TEST(EvaluateOpenSetTest, EmptySetHasZeroObjective) {
  Rng rng(1);
  const FacilityLocationProblem p = RandomProblem(5, 8, 0.5, rng);
  std::vector<char> open(5, 0);
  EXPECT_DOUBLE_EQ(EvaluateOpenSet(p, open), 0.0);
}

TEST(EvaluateOpenSetTest, SingleSensorObjective) {
  FacilityLocationProblem p;
  p.num_locations = 3;
  p.open_cost = {4.0};
  p.value = {{{0, 3.0}, {2, 5.0}}};
  std::vector<int> assignment;
  const double obj = EvaluateOpenSet(p, {1}, &assignment);
  EXPECT_DOUBLE_EQ(obj, 3.0 + 5.0 - 4.0);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[1], -1);
  EXPECT_EQ(assignment[2], 0);
}

TEST(EvaluateOpenSetTest, LocationTakesBestOpenSensor) {
  FacilityLocationProblem p;
  p.num_locations = 1;
  p.open_cost = {1.0, 1.0};
  p.value = {{{0, 3.0}}, {{0, 7.0}}};
  std::vector<int> assignment;
  const double obj = EvaluateOpenSet(p, {1, 1}, &assignment);
  EXPECT_DOUBLE_EQ(obj, 7.0 - 2.0);
  EXPECT_EQ(assignment[0], 1);
}

TEST(FacilityLocationSolverTest, EmptyProblem) {
  FacilityLocationProblem p;
  p.num_locations = 0;
  FacilityLocationSolver solver;
  const FacilityLocationSolution s = solver.Solve(p);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
  EXPECT_TRUE(s.proven_optimal);
}

TEST(FacilityLocationSolverTest, AllSensorsUnprofitable) {
  FacilityLocationProblem p;
  p.num_locations = 2;
  p.open_cost = {10.0, 10.0};
  p.value = {{{0, 3.0}}, {{1, 4.0}}};  // every value below its cost
  FacilityLocationSolver solver;
  const FacilityLocationSolution s = solver.Solve(p);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
  EXPECT_EQ(s.assignment[0], -1);
  EXPECT_EQ(s.assignment[1], -1);
}

TEST(FacilityLocationSolverTest, PicksClearWinner) {
  FacilityLocationProblem p;
  p.num_locations = 2;
  p.open_cost = {10.0, 10.0};
  p.value = {{{0, 8.0}, {1, 8.0}}, {{0, 6.0}}};
  FacilityLocationSolver solver;
  const FacilityLocationSolution s = solver.Solve(p);
  EXPECT_DOUBLE_EQ(s.objective, 6.0);  // open sensor 0 only
  EXPECT_EQ(s.open[0], 1);
  EXPECT_EQ(s.open[1], 0);
}

class FacilityBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(FacilityBruteForceTest, BranchAndBoundMatchesBruteForce) {
  Rng rng(100 + GetParam());
  const int sensors = 3 + GetParam() % 10;
  const int locations = 2 + GetParam() % 7;
  const FacilityLocationProblem p =
      RandomProblem(sensors, locations, 0.4 + 0.05 * (GetParam() % 5), rng);
  FacilityLocationSolver solver;
  const FacilityLocationSolution exact = solver.Solve(p);
  const FacilityLocationSolution brute = SolveByBruteForce(p);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_NEAR(exact.objective, brute.objective, 1e-9)
      << "sensors=" << sensors << " locations=" << locations;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FacilityBruteForceTest,
                         ::testing::Range(0, 40));

TEST(FacilityLocationSolverTest, WarmStartDoesNotChangeOptimum) {
  Rng rng(7);
  const FacilityLocationProblem p = RandomProblem(10, 12, 0.4, rng);
  FacilityLocationSolver solver;
  const FacilityLocationSolution cold = solver.Solve(p);
  std::vector<char> warm(10, 1);  // everything open (bad but valid)
  const FacilityLocationSolution warmed = solver.Solve(p, &warm);
  EXPECT_NEAR(cold.objective, warmed.objective, 1e-9);
}

TEST(FacilityLocationSolverTest, NodeLimitReturnsHonestFlagAndDecentSolution) {
  Rng rng(9);
  // Dense, contested instance with a tiny node budget.
  const FacilityLocationProblem p = RandomProblem(30, 20, 0.8, rng);
  FacilityLocationSolver tight(1);
  const FacilityLocationSolution truncated = tight.Solve(p);
  FacilityLocationSolver loose(100'000'000);
  const FacilityLocationSolution full = loose.Solve(p);
  EXPECT_LE(truncated.objective, full.objective + 1e-9);
  // Even truncated, the greedy incumbent guarantees a positive objective
  // whenever one exists.
  if (full.objective > 1.0) EXPECT_GT(truncated.objective, 0.0);
}

TEST(FacilityLocationSolverTest, DominatedTwinIsNeverNeeded) {
  // Sensor 1 is pointwise dominated by sensor 0 (same coverage, lower
  // values, higher cost): optimum must not need it.
  FacilityLocationProblem p;
  p.num_locations = 2;
  p.open_cost = {5.0, 6.0};
  p.value = {{{0, 8.0}, {1, 4.0}}, {{0, 7.0}, {1, 3.0}}};
  FacilityLocationSolver solver;
  const FacilityLocationSolution s = solver.Solve(p);
  EXPECT_DOUBLE_EQ(s.objective, 7.0);
  EXPECT_EQ(s.open[1], 0);
}

TEST(FacilityLocationSolverTest, ExactTwinsKeepExactlyOne) {
  FacilityLocationProblem p;
  p.num_locations = 1;
  p.open_cost = {5.0, 5.0};
  p.value = {{{0, 9.0}}, {{0, 9.0}}};
  FacilityLocationSolver solver;
  const FacilityLocationSolution s = solver.Solve(p);
  EXPECT_DOUBLE_EQ(s.objective, 4.0);
  EXPECT_EQ(s.open[0] + s.open[1], 1);
}

TEST(FacilityLocationSolverTest, ScalesToClusteredInstance) {
  // Clustered sensors (near-identical columns) are the hard case the
  // dominance + persistency preprocessing is built for.
  Rng rng(17);
  FacilityLocationProblem p;
  p.num_locations = 60;
  const int clusters = 8, per_cluster = 8;
  for (int c = 0; c < clusters; ++c) {
    std::vector<std::pair<int, double>> base;
    for (int l = 0; l < 60; ++l) {
      if (rng.Bernoulli(0.15)) base.emplace_back(l, rng.Uniform(2.0, 10.0));
    }
    for (int k = 0; k < per_cluster; ++k) {
      p.open_cost.push_back(10.0);
      std::vector<std::pair<int, double>> v = base;
      const double scale = rng.Uniform(0.9, 1.0);
      for (auto& [l, value] : v) value *= scale;
      p.value.push_back(std::move(v));
    }
  }
  FacilityLocationSolver solver(5'000'000);
  const FacilityLocationSolution s = solver.Solve(p);
  EXPECT_TRUE(s.proven_optimal);
  EXPECT_GE(s.objective, 0.0);
}

TEST(BruteForceTest, KnownTinyInstance) {
  FacilityLocationProblem p;
  p.num_locations = 2;
  p.open_cost = {2.0, 2.0};
  p.value = {{{0, 5.0}}, {{1, 1.0}}};
  const FacilityLocationSolution s = SolveByBruteForce(p);
  EXPECT_DOUBLE_EQ(s.objective, 3.0);  // only sensor 0 profitable
  EXPECT_EQ(s.open[0], 1);
  EXPECT_EQ(s.open[1], 0);
}

}  // namespace
}  // namespace psens
