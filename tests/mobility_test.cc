#include <gtest/gtest.h>

#include <string>

#include "mobility/random_waypoint.h"
#include "mobility/synthetic_nokia.h"
#include "mobility/trace.h"

namespace psens {
namespace {

TEST(TraceTest, SetAndGetPositions) {
  Trace trace(3, 2);
  EXPECT_EQ(trace.NumSlots(), 3);
  EXPECT_EQ(trace.NumSensors(), 2);
  EXPECT_FALSE(trace.Present(0, 0));
  trace.Set(1, 0, Point{2, 3});
  EXPECT_TRUE(trace.Present(1, 0));
  EXPECT_DOUBLE_EQ(trace.Position(1, 0).x, 2.0);
}

TEST(TraceTest, SensorsInFiltersByRegionAndPresence) {
  Trace trace(1, 3);
  trace.Set(0, 0, Point{1, 1});
  trace.Set(0, 1, Point{9, 9});
  // sensor 2 absent.
  const Rect region{0, 0, 5, 5};
  const std::vector<int> in = trace.SensorsIn(0, region);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], 0);
  EXPECT_EQ(trace.CountIn(0, region), 1);
}

TEST(TraceTest, CsvRoundTrip) {
  Trace trace(2, 2);
  trace.Set(0, 0, Point{1.5, 2.5});
  trace.Set(1, 1, Point{3.25, 4.75});
  const std::string path = std::string(::testing::TempDir()) + "/trace.csv";
  ASSERT_TRUE(trace.ToCsv(path));
  bool ok = false;
  const Trace loaded = Trace::FromCsv(path, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(loaded.NumSlots(), 2);
  EXPECT_EQ(loaded.NumSensors(), 2);
  EXPECT_TRUE(loaded.Present(0, 0));
  EXPECT_FALSE(loaded.Present(1, 0));
  EXPECT_DOUBLE_EQ(loaded.Position(1, 1).x, 3.25);
}

TEST(TraceTest, FromCsvMissingFileFails) {
  bool ok = true;
  const Trace t = Trace::FromCsv("/no/such/file.csv", &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(t.NumSlots(), 0);
}

TEST(RandomWaypointTest, AllPositionsInsideRegion) {
  RandomWaypointConfig config;
  config.num_sensors = 50;
  config.num_slots = 30;
  config.region_size = 80.0;
  const Trace trace = GenerateRandomWaypoint(config);
  for (int t = 0; t < 30; ++t) {
    for (int s = 0; s < 50; ++s) {
      ASSERT_TRUE(trace.Present(t, s));
      const Point& p = trace.Position(t, s);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 80.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 80.0);
    }
  }
}

TEST(RandomWaypointTest, RectangularRegionRespectsHeight) {
  RandomWaypointConfig config;
  config.num_sensors = 20;
  config.num_slots = 20;
  config.region_size = 20.0;
  config.region_height = 10.0;
  const Trace trace = GenerateRandomWaypoint(config);
  for (int t = 0; t < 20; ++t) {
    for (int s = 0; s < 20; ++s) {
      EXPECT_LE(trace.Position(t, s).y, 10.0);
      EXPECT_LE(trace.Position(t, s).x, 20.0);
    }
  }
}

TEST(RandomWaypointTest, MovementBoundedByMaxSpeed) {
  RandomWaypointConfig config;
  config.num_sensors = 30;
  config.num_slots = 20;
  const Trace trace = GenerateRandomWaypoint(config);
  for (int t = 1; t < 20; ++t) {
    for (int s = 0; s < 30; ++s) {
      const double moved = Distance(trace.Position(t - 1, s), trace.Position(t, s));
      EXPECT_LE(moved, config.max_max_speed + 1e-9);
    }
  }
}

TEST(RandomWaypointTest, DeterministicForSeed) {
  RandomWaypointConfig config;
  config.num_sensors = 10;
  config.num_slots = 5;
  config.seed = 99;
  const Trace a = GenerateRandomWaypoint(config);
  const Trace b = GenerateRandomWaypoint(config);
  for (int t = 0; t < 5; ++t) {
    for (int s = 0; s < 10; ++s) {
      EXPECT_EQ(a.Position(t, s).x, b.Position(t, s).x);
      EXPECT_EQ(a.Position(t, s).y, b.Position(t, s).y);
    }
  }
}

TEST(CentralSubregionTest, CenteredWithRequestedSize) {
  const Rect r = CentralSubregion(80.0, 50.0);
  EXPECT_DOUBLE_EQ(r.Width(), 50.0);
  EXPECT_DOUBLE_EQ(r.Height(), 50.0);
  EXPECT_DOUBLE_EQ(r.x_min, 15.0);
  EXPECT_DOUBLE_EQ(r.x_max, 65.0);
}

TEST(SyntheticNokiaTest, MatchesPaperPopulationCounts) {
  SyntheticNokiaConfig config;
  config.num_slots = 50;
  const Trace trace = GenerateSyntheticNokia(config);
  EXPECT_EQ(trace.NumSensors(), 635);
  const Rect working = NokiaWorkingRegion(config);
  EXPECT_DOUBLE_EQ(working.Width(), 100.0);
  // Average in-region population should sit in the paper's ~120 band.
  double total = 0.0;
  for (int t = 0; t < 50; ++t) total += trace.CountIn(t, working);
  // Seed-to-seed variance of the generator is substantial; accept a wide
  // band around the paper's ~120.
  const double avg = total / 50.0;
  EXPECT_GT(avg, 50.0);
  EXPECT_LT(avg, 200.0);
}

TEST(SyntheticNokiaTest, PositionsInsideFullRegion) {
  SyntheticNokiaConfig config;
  config.num_slots = 20;
  config.num_total_sensors = 100;
  config.num_base_users = 40;
  const Trace trace = GenerateSyntheticNokia(config);
  for (int t = 0; t < 20; ++t) {
    for (int s = 0; s < 100; ++s) {
      if (!trace.Present(t, s)) continue;
      const Point& p = trace.Position(t, s);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, config.region_width);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, config.region_height);
    }
  }
}

TEST(SyntheticNokiaTest, SensorsAppearAndDisappear) {
  SyntheticNokiaConfig config;
  config.num_slots = 50;
  const Trace trace = GenerateSyntheticNokia(config);
  // Sparsity: not everyone is present all the time.
  int present = 0, total = 0;
  for (int t = 0; t < 50; ++t) {
    for (int s = 0; s < trace.NumSensors(); ++s) {
      ++total;
      if (trace.Present(t, s)) ++present;
    }
  }
  EXPECT_GT(present, 0);
  EXPECT_LT(present, total);  // strictly sparse
}

}  // namespace
}  // namespace psens
