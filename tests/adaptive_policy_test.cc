// Tests of the latency-SLO adaptive scheduler (src/engine/adaptive_policy.h,
// ServingConfig::slo_ms): the policy's deterministic choice function, its
// degrade-under-spike / recover-after-spike ladder walk, the optimistic
// first trial that seeds each engine's cost coefficient, version-2 trace
// recording of the per-slot engine choices, bit-identical replay of an
// adaptive run through a static engine, and the sieve refinement pass's
// utility floor against exact greedy on submodular coverage instances.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/multi_query.h"
#include "engine/adaptive_policy.h"
#include "sim/experiments.h"
#include "sim/workload.h"
#include "trace/closed_loop.h"
#include "trace/trace_format.h"
#include "trace/trace_reader.h"
#include "trace/trace_replayer.h"

namespace psens {
namespace {

using Features = AdaptivePolicy::SlotFeatures;

// ---------------------------------------------------------------------------
// Policy unit tests
// ---------------------------------------------------------------------------

TEST(AdaptivePolicyTest, ChoiceIsDeterministicGivenObservationHistory) {
  // Choose is a pure function of (features, turnover, observation
  // history): two policies fed the same history agree everywhere. This
  // is the property the trace-pinned replay path rests on.
  const auto feed = [](AdaptivePolicy& p) {
    p.Observe(GreedyEngine::kLazy, Features{1000, 10, 20}, 8.0);
    p.Observe(GreedyEngine::kStochastic, Features{1000, 10, 20}, 5.0);
    p.Observe(GreedyEngine::kSieve, Features{1000, 10, 20}, 0.5);
    p.Observe(GreedyEngine::kLazy, Features{2000, 30, 40}, 21.0);
  };
  AdaptivePolicy a(10.0, GreedyEngine::kLazy);
  AdaptivePolicy b(10.0, GreedyEngine::kLazy);
  feed(a);
  feed(b);
  for (int members : {100, 1000, 5000}) {
    for (double turnover : {0.0, 2.0, 9.0}) {
      const Features f{members, members / 100, 20};
      EXPECT_EQ(a.Choose(f, turnover), b.Choose(f, turnover))
          << members << " members, turnover " << turnover;
    }
  }
}

TEST(AdaptivePolicyTest, UnobservedEngineGetsOneOptimisticTrial) {
  // Each ladder rung is trialed once before its predicted cost can
  // disqualify it — otherwise an engine could never be costed at all.
  AdaptivePolicy p(1.0, GreedyEngine::kLazy);
  const Features f{4000, 40, 32};
  EXPECT_EQ(p.Choose(f, 0.0), GreedyEngine::kLazy);
  p.Observe(GreedyEngine::kLazy, f, 50.0);  // 50 ms against a 1 ms SLO
  EXPECT_EQ(p.Choose(f, 0.0), GreedyEngine::kStochastic);
  p.Observe(GreedyEngine::kStochastic, f, 30.0);
  EXPECT_EQ(p.Choose(f, 0.0), GreedyEngine::kSieve);
  // The floor runs even once it is known to blow the budget: the SLO
  // degrades quality, never correctness.
  p.Observe(GreedyEngine::kSieve, f, 20.0);
  EXPECT_EQ(p.Choose(f, 0.0), GreedyEngine::kSieve);
}

TEST(AdaptivePolicyTest, DegradesUnderSpikeAndRecovers) {
  AdaptivePolicy p(10.0, GreedyEngine::kLazy);
  const Features base{1000, 10, 16};
  const Features spike{1000, 10, 96};  // 6x query fan-out
  p.Observe(GreedyEngine::kLazy, base, 4.0);
  p.Observe(GreedyEngine::kStochastic, base, 3.0);
  p.Observe(GreedyEngine::kSieve, base, 0.2);
  // Base load: lazy fits (4 ms <= 0.9 * 10 ms).
  EXPECT_EQ(p.Choose(base, 0.0), GreedyEngine::kLazy);
  // Spike: the full-sweep engines' predicted cost scales with the 6x
  // query count past the budget; the sieve's churn-scaled cost still
  // fits.
  EXPECT_EQ(p.Choose(spike, 0.0), GreedyEngine::kSieve);
  // Turnover spends the same budget selection has to fit into.
  EXPECT_EQ(p.Choose(base, 9.9), GreedyEngine::kSieve);
  // Recovery is symmetric: the spike passed, nothing to un-learn.
  EXPECT_EQ(p.Choose(base, 0.0), GreedyEngine::kLazy);
}

TEST(AdaptivePolicyTest, SieveCostIsPopulationIndependent) {
  // The sieve's delta path scales with churn x queries, not population —
  // the reason it is the ladder's floor.
  const Features small{100, 5, 8};
  const Features large{100000, 5, 8};
  EXPECT_EQ(AdaptivePolicy::WorkUnits(GreedyEngine::kSieve, small),
            AdaptivePolicy::WorkUnits(GreedyEngine::kSieve, large));
  EXPECT_GT(AdaptivePolicy::WorkUnits(GreedyEngine::kLazy, large),
            AdaptivePolicy::WorkUnits(GreedyEngine::kLazy, small));
}

TEST(AdaptivePolicyTest, EwmaTracksDrift) {
  AdaptivePolicy p(100.0, GreedyEngine::kLazy);
  const Features f{100, 0, 1};
  p.Observe(GreedyEngine::kLazy, f, 10.0);
  // The first observation seeds the coefficient exactly.
  EXPECT_NEAR(p.PredictMs(GreedyEngine::kLazy, f), 10.0, 1e-9);
  // A sustained 2x slowdown (contention, thermal) is absorbed.
  for (int i = 0; i < 50; ++i) p.Observe(GreedyEngine::kLazy, f, 20.0);
  EXPECT_NEAR(p.PredictMs(GreedyEngine::kLazy, f), 20.0, 0.1);
}

// ---------------------------------------------------------------------------
// Adaptive trace recording + replay bit-identity
// ---------------------------------------------------------------------------

constexpr uint64_t kSeed = 20260807;

ChurnScenarioSetup MakeSetup() {
  SensorPopulationConfig profile;
  profile.linear_energy = true;
  profile.random_privacy = true;
  return MakeChurnScenario(400, /*churn_fraction=*/0.05, kSeed,
                           /*with_mobility=*/true, profile);
}

ClosedLoopConfig MakeAdaptiveLoopConfig(double slo_ms,
                                        const std::string& trace_path) {
  ClosedLoopConfig config;
  config.slots = 12;
  config.serving.scheduler = GreedyEngine::kLazy;
  config.serving.slo_ms = slo_ms;
  config.serving.trace_path = trace_path;
  config.serving.approx.seed = kSeed;
  config.queries.queries_per_slot = 16;
  config.queries.aggregates_per_slot = 2;
  return config;
}

std::string TracePath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void ExpectSameOutcomes(const std::vector<SlotOutcome>& live,
                        const std::vector<SlotOutcome>& replayed) {
  ASSERT_EQ(live.size(), replayed.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_TRUE(SameOutcome(live[i], replayed[i]))
        << "slot " << live[i].time << " diverged: live selected "
        << live[i].selection.selected_sensors.size() << " sensors (value "
        << live[i].selection.total_value << "), replay selected "
        << replayed[i].selection.selected_sensors.size() << " (value "
        << replayed[i].selection.total_value << ")";
  }
}

TEST(AdaptiveTraceTest, AdaptiveRunRecordsVersion2WithPerSlotChoices) {
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("adaptive_v2.trc");
  RunChurnClosedLoop(setup, MakeAdaptiveLoopConfig(1e9, path));

  TraceFile trace;
  std::string error;
  ASSERT_TRUE(trace.Load(path, &error)) << error;
  EXPECT_EQ(trace.header().version, kTraceVersionAdaptive);
  ASSERT_EQ(trace.num_slots(), 13);  // cold slot 0 + 12 served
  for (int i = 0; i < trace.num_slots(); ++i) {
    TraceSlotRecord record;
    ASSERT_TRUE(trace.DecodeSlot(i, &record, &error)) << error;
    if (i == 0) {
      // The cold build binds no queries, so no engine ran.
      EXPECT_TRUE(record.engine_choices.empty());
    } else {
      ASSERT_EQ(record.engine_choices.size(), 1u) << "slot " << i;
      // A generous SLO never leaves the configured ceiling.
      EXPECT_EQ(record.engine_choices[0], GreedyEngine::kLazy)
          << "slot " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(AdaptiveTraceTest, StaticRunStillRecordsVersion1) {
  // slo_ms == 0 must keep emitting version-1 bytes — the golden-trace
  // compatibility contract.
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("static_v1.trc");
  ClosedLoopConfig config = MakeAdaptiveLoopConfig(0.0, path);
  RunChurnClosedLoop(setup, config);

  TraceFile trace;
  std::string error;
  ASSERT_TRUE(trace.Load(path, &error)) << error;
  EXPECT_EQ(trace.header().version, kTraceVersion);
  TraceSlotRecord record;
  ASSERT_TRUE(trace.DecodeSlot(1, &record, &error)) << error;
  EXPECT_TRUE(record.engine_choices.empty());
  std::remove(path.c_str());
}

TEST(AdaptiveTraceTest, ReplayReproducesAdaptiveRunBitForBit) {
  // A tight SLO walks the ladder (trial, trial, floor) mid-run; a
  // generous one never degrades. Either way the recorded choices pin the
  // replay to the live schedule — through a replayer whose own engine is
  // static (slo_ms == 0), since choices are replayed, not re-derived.
  const ChurnScenarioSetup setup = MakeSetup();
  for (const double slo_ms : {1e-3, 1e9}) {
    const std::string path = TracePath("adaptive_replay.trc");
    const ClosedLoopResult live =
        RunChurnClosedLoop(setup, MakeAdaptiveLoopConfig(slo_ms, path));

    ReplayConfig rcfg;
    rcfg.serving.scheduler = GreedyEngine::kLazy;
    rcfg.serving.approx.seed = kSeed;
    const ReplayResult replayed =
        TraceReplayer(rcfg).Replay(path, setup.scenario.sensors);
    ASSERT_TRUE(replayed.ok) << replayed.error;
    ExpectSameOutcomes(live.outcomes, replayed.outcomes);
    std::remove(path.c_str());
  }
}

TEST(AdaptiveTraceTest, TightSloDegradesToTheSieveFloor) {
  // With a microsecond SLO every engine over-budgets after its one
  // optimistic trial, so the run must settle on the sieve.
  const ChurnScenarioSetup setup = MakeSetup();
  const std::string path = TracePath("adaptive_tight.trc");
  RunChurnClosedLoop(setup, MakeAdaptiveLoopConfig(1e-3, path));

  TraceFile trace;
  std::string error;
  ASSERT_TRUE(trace.Load(path, &error)) << error;
  TraceSlotRecord record;
  ASSERT_TRUE(
      trace.DecodeSlot(trace.num_slots() - 1, &record, &error))
      << error;
  ASSERT_EQ(record.engine_choices.size(), 1u);
  EXPECT_EQ(record.engine_choices[0], GreedyEngine::kSieve);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sieve refinement utility floor
// ---------------------------------------------------------------------------

/// Uniform-theta coverage slot (see approx_scheduler_test.cc): theta = 1
/// everywhere makes the Eq. 5 valuation monotone submodular, the regime
/// the refinement floor is stated for.
SlotContext MakeUniformThetaSlot(int num_sensors, uint64_t seed) {
  Rng rng(seed);
  SlotContext slot;
  slot.time = 0;
  slot.dmax = 10.0;
  for (int i = 0; i < num_sensors; ++i) {
    SlotSensor s;
    s.index = i;
    s.sensor_id = i;
    s.location = Point{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
    s.cost = rng.Uniform(1.0, 4.0);
    s.inaccuracy = 0.0;
    s.trust = 1.0;
    slot.sensors.push_back(s);
  }
  return slot;
}

double RunUtility(const SlotContext& slot, int num_queries, uint64_t seed,
                  GreedyEngine engine) {
  Rng rng(seed);
  std::vector<std::unique_ptr<AggregateQuery>> queries;
  for (int i = 0; i < num_queries; ++i) {
    AggregateQuery::Params params;
    params.id = i;
    params.region = RandomRect(Rect{0, 0, 40, 40}, 10.0, rng);
    params.budget = rng.Uniform(60.0, 120.0);
    params.sensing_range = 10.0;
    queries.push_back(std::make_unique<AggregateQuery>(params, slot));
  }
  std::vector<MultiQuery*> ptrs;
  for (auto& q : queries) ptrs.push_back(q.get());
  return GreedySensorSelection(ptrs, slot, nullptr, engine).Utility();
}

TEST(SieveRefinementTest, RefinementNeverLowersUtilityAndClearsTheFloor) {
  double sum_refined = 0.0;
  double sum_exact = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    SlotContext slot = MakeUniformThetaSlot(60, 2500 + trial);
    const double exact =
        RunUtility(slot, 10, 2900 + trial, GreedyEngine::kEager);
    ASSERT_GT(exact, 0.0) << "degenerate trial " << trial;
    const double refined =
        RunUtility(slot, 10, 2900 + trial, GreedyEngine::kSieve);
    SlotContext raw = slot;
    raw.approx.sieve_refine = false;
    const double unrefined =
        RunUtility(raw, 10, 2900 + trial, GreedyEngine::kSieve);
    // The pass only commits strictly positive-net additions, so it can
    // never lose utility against the unrefined sieve.
    EXPECT_GE(refined, unrefined) << "trial " << trial;
    // Per-instance floor, below the 0.8 fig13 aggregate gate to absorb
    // single-instance variance.
    EXPECT_GE(refined, 0.7 * exact) << "trial " << trial;
    sum_refined += refined;
    sum_exact += exact;
  }
  // The fig13 quality gate's target, averaged over the trials.
  EXPECT_GE(sum_refined, 0.8 * sum_exact);
}

}  // namespace
}  // namespace psens
