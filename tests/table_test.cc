#include "common/table.h"

#include <gtest/gtest.h>

namespace psens {
namespace {

TEST(TableTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.5, 3), "-1.500");
}

TEST(TableTest, RendersHeaderSeparatorAndRows) {
  Table t({"x", "value"});
  t.AddRow({std::string("1"), std::string("10")});
  t.AddRow(std::vector<double>{2.0, 20.5});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("20.50"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({std::string("only")});
  const std::string out = t.ToString();
  // Must render without crashing and contain the single field.
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TableTest, ColumnsAlignedToWidestCell) {
  Table t({"h", "col"});
  t.AddRow({std::string("longvalue"), std::string("x")});
  const std::string out = t.ToString();
  // The header row must be padded to at least the width of "longvalue".
  const size_t header_end = out.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string separator_line = out.substr(
      header_end + 1, out.find('\n', header_end + 1) - header_end - 1);
  EXPECT_GE(separator_line.size(), std::string("longvalue  col").size());
}

}  // namespace
}  // namespace psens
