#include "la/matrix.h"

#include <algorithm>
#include <cmath>

namespace psens {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += v * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * factor;
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace psens
