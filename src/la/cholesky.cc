#include "la/cholesky.h"

#include <cmath>

namespace psens {

Cholesky::Cholesky(const Matrix& a, double jitter) {
  const size_t n = a.Rows();
  if (n == 0 || a.Cols() != n) return;
  l_ = Matrix(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return;  // not SPD
    l_(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / l_(j, j);
    }
  }
  ok_ = true;
}

std::vector<double> Cholesky::SolveLower(const std::vector<double>& b) const {
  const size_t n = l_.Rows();
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  const size_t n = l_.Rows();
  std::vector<double> y = SolveLower(b);
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * x[k];
    x[i] = sum / l_(i, i);
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double sum = 0.0;
  for (size_t i = 0; i < l_.Rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

std::vector<double> SolveLeastSquares(const Matrix& x,
                                      const std::vector<double>& y,
                                      double lambda) {
  const size_t p = x.Cols();
  const Matrix xt = x.Transpose();
  Matrix xtx = xt.Multiply(x);
  for (size_t i = 0; i < p; ++i) xtx(i, i) += lambda;
  const std::vector<double> xty = xt.MultiplyVector(y);
  Cholesky chol(xtx);
  if (!chol.Ok()) return {};
  return chol.Solve(xty);
}

}  // namespace psens
