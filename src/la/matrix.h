#ifndef PSENS_LA_MATRIX_H_
#define PSENS_LA_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace psens {

/// Dense row-major matrix of doubles. Small and purpose-built for the
/// Gaussian-process and regression substrates (tens to a few hundreds of
/// rows); no attempt at BLAS-level performance.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t Rows() const { return rows_; }
  size_t Cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix Transpose() const;

  /// Returns this * other. Dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Returns this * v (v.size() must equal Cols()).
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double factor) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute element-wise difference to `other` (must be same shape).
  double MaxAbsDiff(const Matrix& other) const;

  const std::vector<double>& Data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equally sized vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace psens

#endif  // PSENS_LA_MATRIX_H_
