#ifndef PSENS_LA_CHOLESKY_H_
#define PSENS_LA_CHOLESKY_H_

#include <vector>

#include "la/matrix.h"

namespace psens {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Used by the Gaussian-process posterior and the least-squares solver.
class Cholesky {
 public:
  /// Factorizes `a`. If `a` is not (numerically) positive definite the
  /// factorization fails and Ok() returns false. A small `jitter` is added
  /// to the diagonal, the standard trick for near-singular GP kernels.
  explicit Cholesky(const Matrix& a, double jitter = 0.0);

  bool Ok() const { return ok_; }
  const Matrix& L() const { return l_; }

  /// Solves A x = b via forward/back substitution. Requires Ok().
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves L y = b (forward substitution). Requires Ok().
  std::vector<double> SolveLower(const std::vector<double>& b) const;

  /// log(det(A)) = 2 * sum(log(L_ii)). Requires Ok().
  double LogDeterminant() const;

 private:
  Matrix l_;
  bool ok_ = false;
};

/// Solves the ordinary least squares problem min ||X beta - y||^2 via the
/// normal equations with ridge `lambda` (lambda > 0 guarantees solvability).
/// Returns an empty vector if the system cannot be factorized.
std::vector<double> SolveLeastSquares(const Matrix& x,
                                      const std::vector<double>& y,
                                      double lambda = 1e-9);

}  // namespace psens

#endif  // PSENS_LA_CHOLESKY_H_
