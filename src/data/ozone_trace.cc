#include "data/ozone_trace.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace psens {

void OzoneTrace::DaySlice(int day, std::vector<double>* times_out,
                          std::vector<double>* values_out) const {
  times_out->clear();
  values_out->clear();
  const int start = day * slots_per_day;
  const int end = std::min(start + slots_per_day, static_cast<int>(times.size()));
  for (int i = start; i < end; ++i) {
    // Re-base times to the start of the day so consecutive days align.
    times_out->push_back(times[i] - static_cast<double>(start));
    values_out->push_back(values[i]);
  }
}

OzoneTrace GenerateOzoneTrace(const OzoneTraceConfig& config) {
  OzoneTrace trace;
  trace.slots_per_day = config.slots_per_day;
  Rng rng(config.seed);
  const int total = config.num_days * config.slots_per_day;
  trace.times.reserve(total);
  trace.values.reserve(total);
  double noise = 0.0;
  const double innovation =
      config.noise_std * std::sqrt(std::max(0.0, 1.0 - config.ar_rho * config.ar_rho));
  for (int t = 0; t < total; ++t) {
    const int slot_of_day = t % config.slots_per_day;
    // Daylight covers the middle 70% of the day's slots.
    const double day_frac =
        static_cast<double>(slot_of_day) / static_cast<double>(config.slots_per_day);
    const double sunrise = 0.15;
    const double daylight = 0.7;
    double solar = 0.0;
    if (day_frac >= sunrise && day_frac <= sunrise + daylight) {
      solar = std::sin(M_PI * (day_frac - sunrise) / daylight);
    }
    noise = config.ar_rho * noise + innovation * rng.Normal();
    trace.times.push_back(static_cast<double>(t));
    trace.values.push_back(config.base + config.amplitude * solar + noise);
  }
  return trace;
}

}  // namespace psens
