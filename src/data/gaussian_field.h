#ifndef PSENS_DATA_GAUSSIAN_FIELD_H_
#define PSENS_DATA_GAUSSIAN_FIELD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "gp/kernel.h"

namespace psens {

/// Stationary Gaussian random field sampled on a W x H unit grid; the
/// substitute for the Intel Lab sensor readings (see DESIGN.md). Readings
/// are exactly a draw from the GP whose kernel the paper learns from a
/// fraction of the real readings, so the region-monitoring valuation
/// (Eq. 6/7) sees the same covariance structure it was trained on.
///
/// The field evolves over time slots with an AR(1) temporal component so
/// that monitoring over 50 slots is non-trivial.
class GaussianField {
 public:
  struct Config {
    int width = 20;
    int height = 15;
    int num_slots = 50;
    double mean = 20.0;          // e.g. degrees Celsius
    double variance = 4.0;       // spatial kernel variance
    double length_scale = 4.0;   // spatial kernel length scale
    double temporal_rho = 0.9;   // AR(1) coefficient across slots
    double temporal_noise = 0.3; // innovation std-dev per slot
    uint64_t seed = 13;
  };

  explicit GaussianField(const Config& config);

  int width() const { return config_.width; }
  int height() const { return config_.height; }
  int num_slots() const { return config_.num_slots; }
  const Config& config() const { return config_; }

  /// Reading of the grid cell containing `p` (clamped to the grid) at
  /// `slot`. The paper assigns each stationary mote's reading to its grid
  /// cell and lets imaginary mobile sensors report the value of the cell
  /// they are in; this method implements that lookup.
  double Value(int slot, const Point& p) const;

  /// Reading of grid cell (x, y) at `slot`.
  double CellValue(int slot, int x, int y) const;

  /// The kernel that generated the field (what the paper would have
  /// learned from a fraction of the readings).
  std::shared_ptr<const Kernel> SpatialKernel() const { return kernel_; }

 private:
  Config config_;
  std::shared_ptr<const Kernel> kernel_;
  /// fields_[slot][y * width + x]
  std::vector<std::vector<double>> fields_;
};

}  // namespace psens

#endif  // PSENS_DATA_GAUSSIAN_FIELD_H_
