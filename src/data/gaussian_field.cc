#include "data/gaussian_field.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "la/cholesky.h"
#include "la/matrix.h"

namespace psens {

GaussianField::GaussianField(const Config& config) : config_(config) {
  kernel_ = std::make_shared<SquaredExponentialKernel>(config.variance,
                                                       config.length_scale);
  const int n = config.width * config.height;
  std::vector<Point> cells;
  cells.reserve(n);
  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) {
      cells.push_back(Point{static_cast<double>(x) + 0.5,
                            static_cast<double>(y) + 0.5});
    }
  }
  Matrix k = CovarianceMatrix(*kernel_, cells, cells);
  Cholesky chol(k, 1e-6);
  Rng rng(config.seed);
  auto draw = [&]() {
    // Sample z ~ N(0, I), return L z (a draw from N(0, K)).
    std::vector<double> z(n);
    for (double& v : z) v = rng.Normal();
    std::vector<double> sample(n, 0.0);
    if (!chol.Ok()) return sample;
    const Matrix& l = chol.L();
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j <= i; ++j) sum += l(i, j) * z[j];
      sample[i] = sum;
    }
    return sample;
  };

  fields_.resize(config.num_slots);
  std::vector<double> current = draw();
  const double rho = config.temporal_rho;
  const double innovation = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  for (int t = 0; t < config.num_slots; ++t) {
    fields_[t].resize(n);
    for (int i = 0; i < n; ++i) fields_[t][i] = config.mean + current[i];
    // AR(1) evolution with a fresh spatially correlated innovation keeps
    // the marginal spatial covariance stationary across slots.
    const std::vector<double> fresh = draw();
    for (int i = 0; i < n; ++i) {
      current[i] = rho * current[i] +
                   innovation * fresh[i] +
                   config_.temporal_noise * 0.0;
    }
    if (config_.temporal_noise > 0.0) {
      for (int i = 0; i < n; ++i) current[i] += config_.temporal_noise * rng.Normal() * 0.1;
    }
  }
}

double GaussianField::CellValue(int slot, int x, int y) const {
  slot = std::clamp(slot, 0, config_.num_slots - 1);
  x = std::clamp(x, 0, config_.width - 1);
  y = std::clamp(y, 0, config_.height - 1);
  return fields_[slot][y * config_.width + x];
}

double GaussianField::Value(int slot, const Point& p) const {
  return CellValue(slot, static_cast<int>(std::floor(p.x)),
                   static_cast<int>(std::floor(p.y)));
}

}  // namespace psens
