#ifndef PSENS_DATA_OZONE_TRACE_H_
#define PSENS_DATA_OZONE_TRACE_H_

#include <cstdint>
#include <vector>

namespace psens {

/// Synthetic diurnal ozone series, the substitute for the OpenSense Zurich
/// trace used in the location-monitoring experiments (Section 4.5). Ozone
/// follows a strong daily cycle (photochemical production peaking in the
/// afternoon); we generate `slots_per_day` samples per day as
///
///   y(t) = base + amplitude * max(0, sin(pi (h - sunrise) / daylight))
///          + AR(1) noise,
///
/// which a linear/polynomial model fits imperfectly — exactly the regime
/// the paper describes ("the weak assumption in the technique used in
/// determining the best sampling times").
struct OzoneTraceConfig {
  int num_days = 5;
  int slots_per_day = 50;
  double base = 20.0;       // ppb
  double amplitude = 40.0;  // ppb
  double noise_std = 3.0;
  double ar_rho = 0.8;
  uint64_t seed = 11;
};

struct OzoneTrace {
  /// Time axis in slots (0 .. num_days * slots_per_day - 1).
  std::vector<double> times;
  std::vector<double> values;
  int slots_per_day = 0;

  /// The historical sub-series for one day (day index in [0, num_days)).
  void DaySlice(int day, std::vector<double>* times_out,
                std::vector<double>* values_out) const;
};

OzoneTrace GenerateOzoneTrace(const OzoneTraceConfig& config);

}  // namespace psens

#endif  // PSENS_DATA_OZONE_TRACE_H_
