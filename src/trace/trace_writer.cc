#include "trace/trace_writer.h"

#include <cstring>

namespace psens {
namespace {

void AppendDelta(const SensorDelta& src, SensorDelta* dst) {
  dst->arrivals.insert(dst->arrivals.end(), src.arrivals.begin(),
                       src.arrivals.end());
  dst->departures.insert(dst->departures.end(), src.departures.begin(),
                         src.departures.end());
  dst->moves.insert(dst->moves.end(), src.moves.begin(), src.moves.end());
  dst->price_changes.insert(dst->price_changes.end(),
                            src.price_changes.begin(),
                            src.price_changes.end());
}

void ClearRecord(TraceSlotRecord* record) {
  record->time = 0;
  record->slot_seed = 0;
  record->delta.arrivals.clear();
  record->delta.departures.clear();
  record->delta.moves.clear();
  record->delta.price_changes.clear();
  record->point_queries.clear();
  record->aggregate_queries.clear();
  record->engine_choices.clear();
}

bool WriteRecord(std::FILE* file, const TraceSlotRecord& record,
                 std::string* scratch, uint32_t version) {
  scratch->clear();
  EncodeSlotRecord(record, scratch, version);
  std::string framed;
  framed.reserve(scratch->size() + sizeof(uint32_t));
  // Length prefix first: the reader walks records by it and validates it
  // against the bytes actually present.
  AppendU32LE(static_cast<uint32_t>(scratch->size()), &framed);
  framed.append(*scratch);
  return std::fwrite(framed.data(), 1, framed.size(), file) == framed.size();
}

}  // namespace

std::unique_ptr<TraceWriter> TraceWriter::Open(const std::string& path,
                                               const TraceHeader& header) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "TraceWriter: cannot create %s\n", path.c_str());
    return nullptr;
  }
  TraceHeader open_header = header;
  // Clamp, don't trust: a header assembled with a stray version must not
  // produce a file no reader accepts.
  if (open_header.version < kTraceVersion) open_header.version = kTraceVersion;
  if (open_header.version > kTraceVersionMax) {
    open_header.version = kTraceVersionMax;
  }
  open_header.slot_count = kSlotCountOpen;
  std::string bytes;
  EncodeHeader(open_header, &bytes);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    std::fprintf(stderr, "TraceWriter: header write failed for %s\n",
                 path.c_str());
    std::fclose(file);
    return nullptr;
  }
  return std::unique_ptr<TraceWriter>(
      new TraceWriter(file, path, open_header.version));
}

TraceWriter::TraceWriter(std::FILE* file, std::string path, uint32_t version)
    : file_(file), path_(std::move(path)), version_(version) {}

TraceWriter::~TraceWriter() { Finish(); }

void TraceWriter::StageDelta(const SensorDelta& delta) {
  if (file_ == nullptr) return;
  AppendDelta(delta, &staged_delta_);
}

void TraceWriter::BeginSlot(int time, uint64_t slot_seed) {
  if (file_ == nullptr) return;
  FlushOpenSlot();
  ClearRecord(&open_);
  open_.time = time;
  open_.slot_seed = slot_seed;
  std::swap(open_.delta, staged_delta_);
  staged_delta_ = SensorDelta{};
  slot_open_ = true;
}

void TraceWriter::StagePointQueries(const std::vector<PointQuery>& queries) {
  if (file_ == nullptr) return;
  if (!slot_open_) {
    if (!warned_no_slot_) {
      std::fprintf(stderr,
                   "TraceWriter: queries staged before the first BeginSlot "
                   "are dropped\n");
      warned_no_slot_ = true;
    }
    return;
  }
  open_.point_queries.insert(open_.point_queries.end(), queries.begin(),
                             queries.end());
}

void TraceWriter::StageAggregateQueries(
    const std::vector<AggregateQuery::Params>& queries) {
  if (file_ == nullptr) return;
  if (!slot_open_) {
    if (!warned_no_slot_) {
      std::fprintf(stderr,
                   "TraceWriter: queries staged before the first BeginSlot "
                   "are dropped\n");
      warned_no_slot_ = true;
    }
    return;
  }
  open_.aggregate_queries.insert(open_.aggregate_queries.end(),
                                 queries.begin(), queries.end());
}

void TraceWriter::StageEngineChoices(const std::vector<GreedyEngine>& engines) {
  if (file_ == nullptr) return;
  if (version_ < kTraceVersionAdaptive) return;
  if (!slot_open_) {
    if (!warned_no_slot_) {
      std::fprintf(stderr,
                   "TraceWriter: engine choices staged before the first "
                   "BeginSlot are dropped\n");
      warned_no_slot_ = true;
    }
    return;
  }
  open_.engine_choices = engines;
}

void TraceWriter::FlushOpenSlot() {
  if (!slot_open_) return;
  if (!WriteRecord(file_, open_, &scratch_, version_)) write_failed_ = true;
  slot_open_ = false;
  ++slots_written_;
}

bool TraceWriter::Finish() {
  if (file_ == nullptr) return !write_failed_;
  FlushOpenSlot();
  // Patch the slot count in place (offset: magic + version + header_bytes).
  const long slot_count_offset = 8 + 4 + 4 + 4;
  bool ok = !write_failed_;
  if (std::fseek(file_, slot_count_offset, SEEK_SET) == 0) {
    std::string bytes;
    AppendU32LE(static_cast<uint32_t>(slots_written_), &bytes);
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      ok = false;
    }
  } else {
    ok = false;
  }
  if (std::fclose(file_) != 0) ok = false;
  file_ = nullptr;
  if (!ok) {
    std::fprintf(stderr, "TraceWriter: finalize failed for %s\n",
                 path_.c_str());
  }
  return ok;
}

bool WriteTraceFile(const std::string& path, const TraceData& data) {
  std::unique_ptr<TraceWriter> writer = TraceWriter::Open(path, data.header);
  if (writer == nullptr) return false;
  for (const TraceSlotRecord& slot : data.slots) {
    writer->StageDelta(slot.delta);
    writer->BeginSlot(slot.time, slot.slot_seed);
    writer->StagePointQueries(slot.point_queries);
    writer->StageAggregateQueries(slot.aggregate_queries);
    if (!slot.engine_choices.empty()) {
      writer->StageEngineChoices(slot.engine_choices);
    }
  }
  return writer->Finish();
}

}  // namespace psens
