#include "trace/slot_server.h"

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "core/multi_query.h"
#include "trace/trace_writer.h"

namespace psens {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(const SteadyClock::time_point& start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

}  // namespace

bool SameOutcome(const SlotOutcome& a, const SlotOutcome& b) {
  return a.time == b.time &&
         a.selection.selected_sensors == b.selection.selected_sensors &&
         a.selection.total_value == b.selection.total_value &&
         a.selection.total_cost == b.selection.total_cost &&
         a.selection.valuation_calls == b.selection.valuation_calls &&
         a.total_payment == b.total_payment;
}

SlotServer::SlotServer(ServingEngine* engine) : engine_(engine) {}

SlotOutcome SlotServer::ServeSlot(int time, const SensorDelta& delta,
                                  const SlotQueryBatch& queries) {
  SlotOutcome out;
  out.time = time;
  const SteadyClock::time_point slot_start = SteadyClock::now();

  const SlotContext* slot = nullptr;
  {
    const SteadyClock::time_point start = SteadyClock::now();
    engine_->ApplyDelta(delta);
    slot = &engine_->BeginSlot(time);
    out.turnover_ms = MsSince(start);
  }
  // The adaptive policy budgets Select against slo_ms minus this slot's
  // turnover; a no-op for static (slo_ms == 0) engines.
  engine_->NoteTurnoverMs(out.turnover_ms);
  if (monitors_ != nullptr) monitors_->NotifyTurnover(time, out.turnover_ms);

  // Recording: the delta was journaled by ApplyDelta; the queries attach
  // to the record BeginSlot just opened.
  if (TraceWriter* writer = engine_->trace_writer()) {
    writer->StageAggregateQueries(queries.aggregates);
    writer->StagePointQueries(queries.points);
  }

  // Bind: aggregates first, then points (see SlotQueryBatch).
  std::vector<std::unique_ptr<AggregateQuery>> aggregates;
  std::vector<std::unique_ptr<PointMultiQuery>> points;
  std::vector<MultiQuery*> all;
  aggregates.reserve(queries.aggregates.size());
  points.reserve(queries.points.size());
  all.reserve(queries.aggregates.size() + queries.points.size());
  for (const AggregateQuery::Params& params : queries.aggregates) {
    aggregates.push_back(std::make_unique<AggregateQuery>(params, *slot));
    all.push_back(aggregates.back().get());
  }
  for (const PointQuery& spec : queries.points) {
    points.push_back(std::make_unique<PointMultiQuery>(spec, slot));
    all.push_back(points.back().get());
  }

  if (!all.empty()) {
    // A query-free slot (the slot-0 cold build) selects nothing and, for
    // the sieve, leaves the carried bucket state untouched — identically
    // in live and replayed runs.
    const SteadyClock::time_point start = SteadyClock::now();
    out.selection = engine_->Select(all, *slot, delta);
    out.selection_ms = MsSince(start);
  }
  if (monitors_ != nullptr) {
    monitors_->NotifySelection(time, out.selection, out.selection_ms);
  }

  for (const MultiQuery* q : all) out.total_payment += q->TotalPayment();
  if (engine_->config().record_readings) {
    engine_->RecordSlotReadings(out.selection.selected_sensors, time);
  }

  out.total_ms = MsSince(slot_start);
  if (monitors_ != nullptr) monitors_->NotifySlotEnd(time, out.total_ms);
  return out;
}

ServeLoopResult SlotServer::ServeLoop(SlotInputSource* source,
                                      double target_slots_per_sec) {
  ServeLoopResult result;
  const SteadyClock::time_point loop_start = SteadyClock::now();
  const auto pace = [&](size_t i) {
    if (target_slots_per_sec <= 0.0) return;
    std::this_thread::sleep_until(
        loop_start + std::chrono::duration_cast<SteadyClock::duration>(
                         std::chrono::duration<double>(
                             static_cast<double>(i) / target_slots_per_sec)));
  };
  SlotInput cur;
  if (!source->Next(&cur)) {
    result.wall_ms = MsSince(loop_start);
    return result;
  }
  if (engine_->config().pipeline < 2) {
    size_t i = 0;
    do {
      pace(i++);
      if (cur.pin_seed) engine_->PinNextSlotSeed(cur.slot_seed);
      if (!cur.pin_engines.empty()) {
        engine_->PinNextSelectEngines(cur.pin_engines);
      }
      result.outcomes.push_back(ServeSlot(cur.time, cur.delta, cur.queries));
    } while (source->Next(&cur));
    result.wall_ms = MsSince(loop_start);
    return result;
  }
  // Pipelined schedule: slot t's binding/selection/commit overlap slot
  // t+1's staged turnover. The statement order per slot is the serving
  // contract's: activate (trace BeginSlot t) -> stage slot t's queries ->
  // stage slot t+1 (trace StageDelta t+1) -> bind -> select -> commit —
  // so a recorded trace is byte-identical to the sequential loop's.
  engine_->StageNextSlot(cur.time, cur.delta);
  bool have = true;
  size_t i = 0;
  while (have) {
    pace(i++);
    SlotOutcome out;
    out.time = cur.time;
    const SteadyClock::time_point slot_start = SteadyClock::now();
    const SlotContext* slot = nullptr;
    {
      const SteadyClock::time_point start = SteadyClock::now();
      if (cur.pin_seed) engine_->PinNextSlotSeed(cur.slot_seed);
      if (!cur.pin_engines.empty()) {
        engine_->PinNextSelectEngines(cur.pin_engines);
      }
      slot = &engine_->ActivateStagedSlot();
      out.turnover_ms = MsSince(start);
    }
    engine_->NoteTurnoverMs(out.turnover_ms);
    if (monitors_ != nullptr) {
      monitors_->NotifyTurnover(cur.time, out.turnover_ms);
    }
    if (TraceWriter* writer = engine_->trace_writer()) {
      writer->StageAggregateQueries(cur.queries.aggregates);
      writer->StagePointQueries(cur.queries.points);
    }
    // Pull one ahead and launch the overlapped turnover before the
    // expensive phases of this slot.
    SlotInput next;
    const bool have_next = source->Next(&next);
    if (have_next) engine_->StageNextSlot(next.time, next.delta);

    std::vector<std::unique_ptr<AggregateQuery>> aggregates;
    std::vector<std::unique_ptr<PointMultiQuery>> points;
    std::vector<MultiQuery*> all;
    aggregates.reserve(cur.queries.aggregates.size());
    points.reserve(cur.queries.points.size());
    all.reserve(cur.queries.aggregates.size() + cur.queries.points.size());
    for (const AggregateQuery::Params& params : cur.queries.aggregates) {
      aggregates.push_back(std::make_unique<AggregateQuery>(params, *slot));
      all.push_back(aggregates.back().get());
    }
    for (const PointQuery& spec : cur.queries.points) {
      points.push_back(std::make_unique<PointMultiQuery>(spec, slot));
      all.push_back(points.back().get());
    }
    if (!all.empty()) {
      const SteadyClock::time_point start = SteadyClock::now();
      out.selection = engine_->Select(all, *slot, cur.delta);
      out.selection_ms = MsSince(start);
    }
    if (monitors_ != nullptr) {
      monitors_->NotifySelection(cur.time, out.selection, out.selection_ms);
    }
    for (const MultiQuery* q : all) out.total_payment += q->TotalPayment();
    if (engine_->config().record_readings) {
      engine_->RecordSlotReadings(out.selection.selected_sensors, cur.time);
    }
    out.total_ms = MsSince(slot_start);
    if (monitors_ != nullptr) monitors_->NotifySlotEnd(cur.time, out.total_ms);
    result.outcomes.push_back(std::move(out));
    cur = std::move(next);
    have = have_next;
  }
  result.wall_ms = MsSince(loop_start);
  return result;
}

}  // namespace psens
