#include "trace/slot_server.h"

#include <chrono>
#include <memory>

#include "core/multi_query.h"
#include "trace/trace_writer.h"

namespace psens {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(const SteadyClock::time_point& start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

}  // namespace

bool SameOutcome(const SlotOutcome& a, const SlotOutcome& b) {
  return a.time == b.time &&
         a.selection.selected_sensors == b.selection.selected_sensors &&
         a.selection.total_value == b.selection.total_value &&
         a.selection.total_cost == b.selection.total_cost &&
         a.selection.valuation_calls == b.selection.valuation_calls &&
         a.total_payment == b.total_payment;
}

SlotServer::SlotServer(ServingEngine* engine) : engine_(engine) {}

SlotOutcome SlotServer::ServeSlot(int time, const SensorDelta& delta,
                                  const SlotQueryBatch& queries) {
  SlotOutcome out;
  out.time = time;
  const SteadyClock::time_point slot_start = SteadyClock::now();

  const SlotContext* slot = nullptr;
  {
    const SteadyClock::time_point start = SteadyClock::now();
    engine_->ApplyDelta(delta);
    slot = &engine_->BeginSlot(time);
    out.turnover_ms = MsSince(start);
  }
  if (monitors_ != nullptr) monitors_->NotifyTurnover(time, out.turnover_ms);

  // Recording: the delta was journaled by ApplyDelta; the queries attach
  // to the record BeginSlot just opened.
  if (TraceWriter* writer = engine_->trace_writer()) {
    writer->StageAggregateQueries(queries.aggregates);
    writer->StagePointQueries(queries.points);
  }

  // Bind: aggregates first, then points (see SlotQueryBatch).
  std::vector<std::unique_ptr<AggregateQuery>> aggregates;
  std::vector<std::unique_ptr<PointMultiQuery>> points;
  std::vector<MultiQuery*> all;
  aggregates.reserve(queries.aggregates.size());
  points.reserve(queries.points.size());
  all.reserve(queries.aggregates.size() + queries.points.size());
  for (const AggregateQuery::Params& params : queries.aggregates) {
    aggregates.push_back(std::make_unique<AggregateQuery>(params, *slot));
    all.push_back(aggregates.back().get());
  }
  for (const PointQuery& spec : queries.points) {
    points.push_back(std::make_unique<PointMultiQuery>(spec, slot));
    all.push_back(points.back().get());
  }

  if (!all.empty()) {
    // A query-free slot (the slot-0 cold build) selects nothing and, for
    // the sieve, leaves the carried bucket state untouched — identically
    // in live and replayed runs.
    const SteadyClock::time_point start = SteadyClock::now();
    out.selection = engine_->Select(all, *slot, delta);
    out.selection_ms = MsSince(start);
  }
  if (monitors_ != nullptr) {
    monitors_->NotifySelection(time, out.selection, out.selection_ms);
  }

  for (const MultiQuery* q : all) out.total_payment += q->TotalPayment();
  if (engine_->config().record_readings) {
    engine_->RecordSlotReadings(out.selection.selected_sensors, time);
  }

  out.total_ms = MsSince(slot_start);
  if (monitors_ != nullptr) monitors_->NotifySlotEnd(time, out.total_ms);
  return out;
}

}  // namespace psens
