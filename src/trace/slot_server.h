#ifndef PSENS_TRACE_SLOT_SERVER_H_
#define PSENS_TRACE_SLOT_SERVER_H_

#include <cstdint>
#include <vector>

#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/point_query.h"
#include "core/sensor_delta.h"
#include "engine/serving_engine.h"
#include "trace/monitor.h"

namespace psens {

/// One slot's query arrivals. The server binds aggregates first, then
/// point queries — the binding order is part of the serving contract,
/// because selection outcomes depend on query order and the replay
/// differential tests demand bit-equality with the live run.
struct SlotQueryBatch {
  std::vector<PointQuery> points;
  std::vector<AggregateQuery::Params> aggregates;
};

/// Everything one served slot produced: the selection (slot-sensor
/// indices, value, cost, valuation calls), the payments actually charged
/// across the slot's queries, and the stage timings the monitors see.
struct SlotOutcome {
  int time = 0;
  SelectionResult selection;
  double total_payment = 0.0;
  double turnover_ms = 0.0;
  double selection_ms = 0.0;
  double total_ms = 0.0;
};

/// Bit-exact equality of the deterministic fields of two slot outcomes
/// (selections, values, costs, payments, valuation calls) — timings are
/// measurements, not outcomes, and are ignored. The replay differential
/// suite and the fig14/fig15/fig17 gates both rest on this comparator.
bool SameOutcome(const SlotOutcome& a, const SlotOutcome& b);

/// One slot's full input for a pulled serving loop: the churn delta, the
/// query arrivals, and (replay) the recorded slot seed and adaptive
/// engine choices to pin.
struct SlotInput {
  int time = 0;
  SensorDelta delta;
  SlotQueryBatch queries;
  bool pin_seed = false;
  uint64_t slot_seed = 0;
  /// Non-empty on replay of an adaptive (version-2) trace: the engines
  /// the recorded run chose for this slot, pinned via
  /// ServingEngine::PinNextSelectEngines before the slot is served.
  std::vector<GreedyEngine> pin_engines;
};

/// Pull-style input stream for SlotServer::ServeLoop. Next() fills the
/// next slot's input and returns true, or returns false at end of
/// stream. The loop pulls one slot ahead in pipelined mode, so sources
/// must produce inputs independent of serving results (both drivers'
/// streams are: churn and queries come from dedicated forked RNG
/// streams, replay records from the decoded trace).
class SlotInputSource {
 public:
  virtual ~SlotInputSource() = default;
  virtual bool Next(SlotInput* out) = 0;
};

/// What ServeLoop produced: every slot's outcome plus the loop's wall
/// time (the sustained-throughput numerator fig17 measures).
struct ServeLoopResult {
  std::vector<SlotOutcome> outcomes;
  double wall_ms = 0.0;
};

/// The serving step shared by every consumer of a ServingEngine — the
/// live closed loop (trace/closed_loop.h), the trace replayer
/// (trace/trace_replayer.h), and the fig14/fig15 benches: apply the
/// slot's churn delta, begin the slot, bind the query batch, run the
/// engine's configured scheduler, charge payments, and (when
/// ServingConfig::record_readings) feed the purchased readings back into
/// the engine's energy/privacy state.
///
/// The server is implementation-blind: handed a single AcquisitionEngine
/// or a ShardRouter it executes the identical statements per slot, which
/// is what makes the replay and shard differential tests meaningful —
/// any schedule drift is a real determinism bug, not a harness skew.
///
/// When the engine is recording (ServingConfig::trace_path), the server
/// stages each slot's query batch onto the open trace record; attaching
/// monitors or a recorder changes no selection bit.
class SlotServer {
 public:
  explicit SlotServer(ServingEngine* engine);

  /// Monitors observing this server's slots (may be null). Not owned.
  void set_monitors(MonitorSet* monitors) { monitors_ = monitors; }

  /// Serves one slot end to end. `delta` is the slot's churn; `queries`
  /// the slot's arrivals.
  SlotOutcome ServeSlot(int time, const SensorDelta& delta,
                        const SlotQueryBatch& queries);

  /// Serves an input stream to exhaustion. With the engine configured
  /// sequentially (ServingConfig::pipeline < 2) this is ServeSlot per
  /// input; with pipeline == 2 the loop runs the overlapped schedule —
  /// activate slot t at the commit barrier, stage slot t+1 (pulled one
  /// ahead from the source), then select slot t while the staged
  /// turnover runs on the engine's task graph. Outcomes are bit-identical
  /// between the two schedules. `target_slots_per_sec` > 0 paces slot i
  /// to start no earlier than i/rate seconds into the loop (the replay
  /// harness's pacing, hoisted here so the pipelined path paces the
  /// activation barrier, not the staging).
  ServeLoopResult ServeLoop(SlotInputSource* source,
                            double target_slots_per_sec = 0.0);

 private:
  ServingEngine* engine_;
  MonitorSet* monitors_ = nullptr;
};

}  // namespace psens

#endif  // PSENS_TRACE_SLOT_SERVER_H_
