#include "trace/monitor.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace psens {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(static_cast<size_t>(n), sizeof(buffer) - 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogramMonitor
// ---------------------------------------------------------------------------

int LatencyHistogramMonitor::BucketIndex(double ms) {
  const double us = ms * 1000.0;
  if (!(us >= 1.0)) return 0;  // sub-microsecond and NaN clamp low
  const int i = static_cast<int>(std::floor(std::log2(us)));
  return std::min(i, kNumBuckets - 1);
}

double LatencyHistogramMonitor::BucketLowMs(int i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, i) / 1000.0;
}

void LatencyHistogramMonitor::OnSlotEnd(int /*time*/, double total_ms) {
  ++buckets_[BucketIndex(total_ms)];
  if (count_ == 0 || total_ms < min_ms_) min_ms_ = total_ms;
  if (total_ms > max_ms_) max_ms_ = total_ms;
  ++count_;
  total_ms_ += total_ms;
}

void LatencyHistogramMonitor::Merge(const LatencyHistogramMonitor& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ms_ < min_ms_) min_ms_ = other.min_ms_;
    if (other.max_ms_ > max_ms_) max_ms_ = other.max_ms_;
  }
  count_ += other.count_;
  total_ms_ += other.total_ms_;
}

void LatencyHistogramMonitor::ClearData() {
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
  count_ = 0;
  total_ms_ = 0.0;
  min_ms_ = 0.0;
  max_ms_ = 0.0;
}

void LatencyHistogramMonitor::AppendJson(std::string* out) const {
  AppendF(out,
          "{\"count\": %" PRId64 ", \"total_ms\": %.4f, \"min_ms\": %.4f, "
          "\"max_ms\": %.4f, \"buckets\": [",
          count_, total_ms_, min_ms(), max_ms_);
  // Sparse emission: [bucket_low_ms, count] pairs for occupied buckets
  // only — 32 mostly-zero entries would bloat every bench artifact.
  bool first = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    AppendF(out, "%s[%.4f, %" PRId64 "]", first ? "" : ", ", BucketLowMs(i),
            buckets_[i]);
    first = false;
  }
  out->append("]}");
}

// ---------------------------------------------------------------------------
// ValuationCounterMonitor
// ---------------------------------------------------------------------------

void ValuationCounterMonitor::OnSelection(int /*time*/,
                                          const SelectionResult& result,
                                          double /*ms*/) {
  total_calls_ += result.valuation_calls;
  max_slot_calls_ = std::max(max_slot_calls_, result.valuation_calls);
  ++selections_;
  selected_sensors_ += static_cast<int64_t>(result.selected_sensors.size());
}

void ValuationCounterMonitor::OnSlotEnd(int /*time*/, double /*total_ms*/) {
  ++slots_;
}

void ValuationCounterMonitor::ClearData() {
  total_calls_ = 0;
  max_slot_calls_ = 0;
  selections_ = 0;
  selected_sensors_ = 0;
  slots_ = 0;
}

void ValuationCounterMonitor::AppendJson(std::string* out) const {
  AppendF(out,
          "{\"total_calls\": %" PRId64 ", \"max_slot_calls\": %" PRId64
          ", \"selections\": %" PRId64 ", \"selected_sensors\": %" PRId64
          ", \"slots\": %" PRId64 "}",
          total_calls_, max_slot_calls_, selections_, selected_sensors_,
          slots_);
}

// ---------------------------------------------------------------------------
// IndexRepairMonitor
// ---------------------------------------------------------------------------

void IndexRepairMonitor::OnTurnover(int /*time*/, double ms) {
  if (count_ == 0 || ms < min_ms_) min_ms_ = ms;
  if (ms > max_ms_) max_ms_ = ms;
  ++count_;
  total_ms_ += ms;
}

void IndexRepairMonitor::ClearData() {
  count_ = 0;
  total_ms_ = 0.0;
  min_ms_ = 0.0;
  max_ms_ = 0.0;
}

void IndexRepairMonitor::AppendJson(std::string* out) const {
  AppendF(out,
          "{\"count\": %" PRId64 ", \"total_ms\": %.4f, \"min_ms\": %.4f, "
          "\"max_ms\": %.4f, \"mean_ms\": %.4f}",
          count_, total_ms_, min_ms(), max_ms_, mean_ms());
}

// ---------------------------------------------------------------------------
// MonitorSet
// ---------------------------------------------------------------------------

void MonitorSet::AppendJson(std::string* out) const {
  out->append("{");
  for (size_t i = 0; i < monitors_.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append("\"");
    out->append(monitors_[i]->Name());
    out->append("\": ");
    monitors_[i]->AppendJson(out);
  }
  out->append("}");
}

}  // namespace psens
