#ifndef PSENS_TRACE_TRACE_READER_H_
#define PSENS_TRACE_TRACE_READER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace_format.h"

namespace psens {

/// A loaded-but-not-decoded trace: the validated header plus the byte
/// span of every slot record (offsets into the owned file image). The
/// structural scan — header fields, record length chain, finalized slot
/// count vs records actually present — happens here; per-record field
/// decoding is deferred so the replayer can fan it out across threads
/// (records are independently decodable by construction).
class TraceFile {
 public:
  /// Reads and structurally validates `path`. On failure returns false
  /// and sets `*error` to a one-line diagnosis (bad magic, version skew,
  /// truncation, record-length corruption, slot-count mismatch).
  bool Load(const std::string& path, std::string* error);

  const TraceHeader& header() const { return header_; }
  int num_slots() const { return static_cast<int>(records_.size()); }

  /// Decodes slot record `i`. Thread-safe (reads the immutable image).
  bool DecodeSlot(int i, TraceSlotRecord* record, std::string* error) const;

  /// Total on-disk size, for bench reporting.
  size_t file_bytes() const { return bytes_.size(); }

 private:
  struct RecordSpan {
    size_t offset = 0;
    size_t size = 0;
  };

  std::string bytes_;
  TraceHeader header_;
  std::vector<RecordSpan> records_;
};

/// Loads and fully decodes a trace in one call (tests, tooling). Returns
/// false and sets `*error` on any structural or field-level corruption.
bool ReadTraceFile(const std::string& path, TraceData* data,
                   std::string* error);

}  // namespace psens

#endif  // PSENS_TRACE_TRACE_READER_H_
