#include "trace/trace_reader.h"

#include <cstdio>
#include <cstring>

namespace psens {
namespace {

bool ReadWholeFile(const std::string& path, std::string* out,
                   std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  out->clear();
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) *error = "read error on " + path;
  return ok;
}

uint32_t ReadU32LE(const char* data) {
  uint32_t v;
  std::memcpy(&v, data, sizeof(v));
  const uint32_t probe = 1;
  unsigned char little;
  std::memcpy(&little, &probe, 1);
  if (!little) {
    v = ((v & 0x00FF00FFu) << 8) | ((v >> 8) & 0x00FF00FFu);
    v = (v << 16) | (v >> 16);
  }
  return v;
}

}  // namespace

bool TraceFile::Load(const std::string& path, std::string* error) {
  if (!ReadWholeFile(path, &bytes_, error)) return false;
  if (!DecodeHeader(bytes_.data(), bytes_.size(), bytes_.size(), &header_,
                    error)) {
    return false;
  }
  records_.clear();
  size_t pos = kTraceHeaderBytes;
  while (pos < bytes_.size()) {
    if (bytes_.size() - pos < sizeof(uint32_t)) {
      *error = "trace truncated: dangling record length prefix at byte " +
               std::to_string(pos);
      return false;
    }
    const uint32_t payload = ReadU32LE(bytes_.data() + pos);
    pos += sizeof(uint32_t);
    if (payload > bytes_.size() - pos) {
      *error = "trace truncated: record at byte " + std::to_string(pos) +
               " claims " + std::to_string(payload) + " bytes, " +
               std::to_string(bytes_.size() - pos) + " remain";
      return false;
    }
    records_.push_back(RecordSpan{pos, payload});
    pos += payload;
  }
  if (header_.slot_count == kSlotCountOpen) {
    // Unfinalized trace (writer crashed before Finish). The record chain
    // validated above is still usable; surface the real count.
    header_.slot_count = static_cast<uint32_t>(records_.size());
  } else if (header_.slot_count != records_.size()) {
    *error = "corrupt trace: header says " +
             std::to_string(header_.slot_count) + " slots, file holds " +
             std::to_string(records_.size());
    return false;
  }
  return true;
}

bool TraceFile::DecodeSlot(int i, TraceSlotRecord* record,
                           std::string* error) const {
  const RecordSpan& span = records_[static_cast<size_t>(i)];
  if (!DecodeSlotRecord(bytes_.data() + span.offset, span.size, record,
                        error, header_.version)) {
    *error = "slot " + std::to_string(i) + ": " + *error;
    return false;
  }
  return true;
}

bool ReadTraceFile(const std::string& path, TraceData* data,
                   std::string* error) {
  TraceFile file;
  if (!file.Load(path, error)) return false;
  data->header = file.header();
  data->slots.resize(static_cast<size_t>(file.num_slots()));
  for (int i = 0; i < file.num_slots(); ++i) {
    if (!file.DecodeSlot(i, &data->slots[static_cast<size_t>(i)], error)) {
      return false;
    }
  }
  return true;
}

}  // namespace psens
