#ifndef PSENS_TRACE_TRACE_WRITER_H_
#define PSENS_TRACE_TRACE_WRITER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_format.h"

namespace psens {

/// Appends a serving run's input stream to a trace file. One writer
/// records one run; the engine drives it (ServingConfig::trace_path) and
/// the workload/bench layer stages each slot's query batch through the
/// engine's trace_writer() accessor:
///
///   deltas staged by ApplyDelta/ApplyTrace accumulate until the next
///   BeginSlot, which opens the slot record they belong to; queries
///   staged after BeginSlot attach to that open record; the record is
///   flushed by the following BeginSlot or by Finish().
///
/// The header's slot_count is kSlotCountOpen while recording and patched
/// in place by Finish(), so a crash mid-run leaves a trace the reader
/// recognizes as unfinalized rather than silently short.
class TraceWriter {
 public:
  /// Opens `path` and writes the header. The header's `version` picks
  /// the record layout (kTraceVersion for plain runs, a value up to
  /// kTraceVersionMax for extended layouts; out-of-range versions are
  /// clamped into that range). Returns null (with a message on stderr)
  /// when the file cannot be created.
  static std::unique_ptr<TraceWriter> Open(const std::string& path,
                                           const TraceHeader& header);

  /// Finishes (flushing the open slot record) and closes.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Accumulates a delta onto the not-yet-begun slot.
  void StageDelta(const SensorDelta& delta);

  /// Flushes the open slot record (if any) and opens the record for slot
  /// `time`, adopting the staged deltas and the engine's stamped
  /// per-slot approx seed.
  void BeginSlot(int time, uint64_t slot_seed);

  /// Attach queries to the open slot record. No-ops (with a stderr
  /// warning once) before the first BeginSlot — queries without a slot
  /// are a caller bug, not a reason to corrupt the trace.
  void StagePointQueries(const std::vector<PointQuery>& queries);
  void StageAggregateQueries(
      const std::vector<AggregateQuery::Params>& queries);

  /// Attach the adaptive policy's engine choices to the open slot record
  /// (ServingEngine::Select calls this as it dispatches). Recorded only
  /// when the trace was opened at kTraceVersionAdaptive or later — on a
  /// version-1 writer this is a no-op, keeping v1 bytes choice-free.
  void StageEngineChoices(const std::vector<GreedyEngine>& engines);

  /// Flushes the open record, patches the header's slot count, and
  /// closes the file. Idempotent. Returns false if any write failed.
  bool Finish();

  int slots_written() const { return slots_written_; }
  const std::string& path() const { return path_; }
  uint32_t version() const { return version_; }

 private:
  TraceWriter(std::FILE* file, std::string path, uint32_t version);

  void FlushOpenSlot();

  std::FILE* file_ = nullptr;
  std::string path_;
  uint32_t version_ = kTraceVersion;
  std::string scratch_;
  TraceSlotRecord open_;
  SensorDelta staged_delta_;
  bool slot_open_ = false;
  bool warned_no_slot_ = false;
  bool write_failed_ = false;
  int slots_written_ = 0;
};

/// Writes a fully materialized trace in one call (golden-file tooling and
/// the round-trip tests; live recording goes through TraceWriter).
/// `data.header.slot_count` is ignored — the actual record count is
/// written. Returns false on I/O failure.
bool WriteTraceFile(const std::string& path, const TraceData& data);

}  // namespace psens

#endif  // PSENS_TRACE_TRACE_WRITER_H_
