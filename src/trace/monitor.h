#ifndef PSENS_TRACE_MONITOR_H_
#define PSENS_TRACE_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/greedy.h"

namespace psens {

/// Passive performance probes attachable to a serving loop — live or
/// replayed (trace/slot_server.h invokes the hooks in both). Monitors
/// observe; they never feed back into scheduling, and attaching any set
/// of them changes no selection bit (tests/monitor_test.cc asserts the
/// monitored and unmonitored replays of one trace schedule identically).
///
/// Lifecycle (FlexiCAS-style): a monitor starts idle; Start() arms it,
/// Pause() suspends event delivery without losing state, Resume() re-arms,
/// Stop() ends the observation window, Reset() clears accumulated data
/// (legal in any state, keeps the current state). MonitorSet only
/// forwards events to monitors in the running state.
class MonitorBase {
 public:
  enum class State { kIdle, kRunning, kPaused, kStopped };

  virtual ~MonitorBase() = default;

  virtual const char* Name() const = 0;

  void Start() { state_ = State::kRunning; }
  void Pause() {
    if (state_ == State::kRunning) state_ = State::kPaused;
  }
  void Resume() {
    if (state_ == State::kPaused) state_ = State::kRunning;
  }
  void Stop() { state_ = State::kStopped; }
  void Reset() { ClearData(); }

  State state() const { return state_; }
  bool running() const { return state_ == State::kRunning; }

  // Event hooks, called only while running.
  /// A slot transition (ApplyDelta + BeginSlot) finished: index/context
  /// repair latency.
  virtual void OnTurnover(int time, double ms) { (void)time; (void)ms; }
  /// A slot's selection finished.
  virtual void OnSelection(int time, const SelectionResult& result,
                           double ms) {
    (void)time; (void)result; (void)ms;
  }
  /// A slot fully served (turnover + binding + selection + commit).
  virtual void OnSlotEnd(int time, double total_ms) { (void)time; (void)total_ms; }

  /// Appends this monitor's accumulated data as one JSON object (the
  /// shape bench JSON embeds and scripts/check_bench_regression.py
  /// artifacts carry).
  virtual void AppendJson(std::string* out) const = 0;

 protected:
  /// Drops accumulated observations (Reset).
  virtual void ClearData() = 0;

 private:
  State state_ = State::kIdle;
};

/// Per-slot serve-latency histogram over power-of-two buckets: bucket i
/// spans [2^i, 2^(i+1)) microseconds, with underflows clamped into
/// bucket 0 and overflows into the last bucket. Mergeable across shards
/// or runs.
class LatencyHistogramMonitor : public MonitorBase {
 public:
  static constexpr int kNumBuckets = 32;

  const char* Name() const override { return "latency_histogram"; }

  void OnSlotEnd(int time, double total_ms) override;

  /// Bucket for a latency sample: floor(log2(us)) clamped to
  /// [0, kNumBuckets - 1]; samples below 1 us land in bucket 0.
  static int BucketIndex(double ms);
  /// Inclusive lower edge of bucket `i`, in milliseconds.
  static double BucketLowMs(int i);

  /// Adds another histogram's counts into this one.
  void Merge(const LatencyHistogramMonitor& other);

  int64_t count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double min_ms() const { return count_ > 0 ? min_ms_ : 0.0; }
  double max_ms() const { return max_ms_; }
  int64_t bucket_count(int i) const { return buckets_[i]; }

  void AppendJson(std::string* out) const override;

 protected:
  void ClearData() override;

 private:
  int64_t buckets_[kNumBuckets] = {};
  int64_t count_ = 0;
  double total_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// Per-stage valuation-call counters: total calls, per-slot peak, plus
/// slot/selection/commit tallies — the work-metric view of a run that
/// stays bit-identical across hosts (the same role fig11's pruned_pairs
/// and fig13's valuation_calls play in the regression gate).
class ValuationCounterMonitor : public MonitorBase {
 public:
  const char* Name() const override { return "valuation_counters"; }

  void OnSelection(int time, const SelectionResult& result,
                   double ms) override;
  void OnSlotEnd(int time, double total_ms) override;

  int64_t total_calls() const { return total_calls_; }
  int64_t max_slot_calls() const { return max_slot_calls_; }
  int64_t selections() const { return selections_; }
  int64_t selected_sensors() const { return selected_sensors_; }
  int64_t slots() const { return slots_; }

  void AppendJson(std::string* out) const override;

 protected:
  void ClearData() override;

 private:
  int64_t total_calls_ = 0;
  int64_t max_slot_calls_ = 0;
  int64_t selections_ = 0;
  int64_t selected_sensors_ = 0;
  int64_t slots_ = 0;
};

/// Index/context repair (slot turnover) timing: total, min, max, mean.
class IndexRepairMonitor : public MonitorBase {
 public:
  const char* Name() const override { return "index_repair"; }

  void OnTurnover(int time, double ms) override;

  int64_t count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double min_ms() const { return count_ > 0 ? min_ms_ : 0.0; }
  double max_ms() const { return max_ms_; }
  double mean_ms() const {
    return count_ > 0 ? total_ms_ / static_cast<double>(count_) : 0.0;
  }

  void AppendJson(std::string* out) const override;

 protected:
  void ClearData() override;

 private:
  int64_t count_ = 0;
  double total_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// The attachment point serving loops carry: a non-owning set of
/// monitors with guarded dispatch (events reach only running monitors).
/// An empty or null set is free — the serving substrate checks one
/// pointer per event.
class MonitorSet {
 public:
  void Attach(MonitorBase* monitor) { monitors_.push_back(monitor); }

  void StartAll() {
    for (MonitorBase* m : monitors_) m->Start();
  }
  void StopAll() {
    for (MonitorBase* m : monitors_) m->Stop();
  }
  void ResetAll() {
    for (MonitorBase* m : monitors_) m->Reset();
  }

  void NotifyTurnover(int time, double ms) {
    for (MonitorBase* m : monitors_) {
      if (m->running()) m->OnTurnover(time, ms);
    }
  }
  void NotifySelection(int time, const SelectionResult& result, double ms) {
    for (MonitorBase* m : monitors_) {
      if (m->running()) m->OnSelection(time, result, ms);
    }
  }
  void NotifySlotEnd(int time, double total_ms) {
    for (MonitorBase* m : monitors_) {
      if (m->running()) m->OnSlotEnd(time, total_ms);
    }
  }

  const std::vector<MonitorBase*>& monitors() const { return monitors_; }

  /// JSON object keyed by monitor name.
  void AppendJson(std::string* out) const;

 private:
  std::vector<MonitorBase*> monitors_;
};

}  // namespace psens

#endif  // PSENS_TRACE_MONITOR_H_
