#ifndef PSENS_TRACE_TRACE_FORMAT_H_
#define PSENS_TRACE_TRACE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/point_query.h"
#include "core/sensor.h"
#include "core/sensor_delta.h"
#include "core/slot.h"

namespace psens {

/// Compact versioned binary trace of an acquisition serving run: one
/// header plus one record per time slot carrying everything needed to
/// re-drive an engine — the slot's SensorDelta, its query batch (point
/// queries and aggregate params), and the ApproxSlotSeed the engine
/// stamped. Together with the initial sensor registry (identified by a
/// checksum, not stored), a trace makes a serving run a replayable,
/// diffable artifact: the replayer reproduces every schedule, payment,
/// and valuation-call count bit for bit (tests/trace_replay_test.cc).
///
/// Encoding: little-endian, fixed-width fields, no alignment padding.
/// Layout (docs/ARCHITECTURE.md, "Trace layer", has the full spec table):
///
///   header   magic "PSENSTRC" | u32 version | u32 header_bytes |
///            u32 registry_count | u32 slot_count | u64 registry_checksum |
///            f64 dmax | f64 region{x_min,y_min,x_max,y_max} |
///            u64 approx_seed | f64 epsilon | i32 min_sample |
///            i32 sample_hint
///   slot     u32 payload_bytes | u32 slot_magic | i32 time |
///            u64 slot_seed |
///            u32 n + entries for: arrivals, departures, moves,
///            price_changes, point queries, aggregate queries
///            [version >= 2] u32 n + i32 engine per adaptive engine
///            choice (empty on slots where Select never ran)
///
/// Version 2 (kTraceVersionAdaptive) appends the per-slot engine-choice
/// section so an adaptively scheduled run (ServingConfig::slo_ms) can be
/// replayed bit-identically: live, the choice depends on wall-clock cost
/// observations; replayed, the recorded choice is pinned. Non-adaptive
/// runs keep recording version 1, whose bytes are unchanged (the golden
/// v1 fixture still pins them).
///
/// `slot_count` is written as kSlotCountOpen while the writer is live and
/// patched by Finish(); a reader seeing kSlotCountOpen knows the trace
/// was never finalized (crash mid-record) and counts records itself.
inline constexpr char kTraceMagic[8] = {'P', 'S', 'E', 'N', 'S', 'T', 'R', 'C'};
inline constexpr uint32_t kTraceVersion = 1;
/// Trace version carrying per-slot adaptive engine choices.
inline constexpr uint32_t kTraceVersionAdaptive = 2;
/// Highest version this reader/writer pair supports.
inline constexpr uint32_t kTraceVersionMax = 2;
inline constexpr uint32_t kTraceHeaderBytes = 96;
inline constexpr uint32_t kSlotRecordMagic = 0x544F4C53u;  // "SLOT"
inline constexpr uint32_t kSlotCountOpen = 0xFFFFFFFFu;

/// Decoded trace header.
struct TraceHeader {
  uint32_t version = kTraceVersion;
  uint32_t registry_count = 0;
  uint32_t slot_count = 0;
  /// RegistryChecksum() of the initial sensor registry the trace was
  /// recorded against. Replay refuses a registry whose checksum differs —
  /// the schedules would silently diverge otherwise.
  uint64_t registry_checksum = 0;
  double dmax = 5.0;
  Rect working_region;
  /// ServingConfig::approx at record time (slot_seed excluded: the
  /// *effective* per-slot seed is recorded on every slot record instead).
  uint64_t approx_seed = 0;
  double epsilon = 0.1;
  int32_t min_sample = 32;
  int32_t sample_hint = 0;
};

/// Decoded per-slot record: the full input side of one engine slot.
struct TraceSlotRecord {
  int32_t time = 0;
  /// The ApproxSlotSeed the recording engine stamped onto the slot
  /// context. Replay pins it (AcquisitionEngine::PinNextSlotSeed), so a
  /// stochastic run reproduces even when the replaying config carries a
  /// different base seed.
  uint64_t slot_seed = 0;
  SensorDelta delta;
  std::vector<PointQuery> point_queries;
  std::vector<AggregateQuery::Params> aggregate_queries;
  /// Version >= 2 only: the engines the adaptive policy chose for this
  /// slot's Select — one entry in single-engine mode, one per shard pass
  /// under shard_schedulers, empty when Select never ran (query-free
  /// slots) or the run was not adaptive. Replay pins them
  /// (ServingEngine::PinNextSelectEngines) so the schedule reproduces
  /// bit for bit.
  std::vector<GreedyEngine> engine_choices;
};

/// Fully decoded trace.
struct TraceData {
  TraceHeader header;
  std::vector<TraceSlotRecord> slots;
};

/// Order- and content-sensitive checksum of a sensor registry (FNV-1a
/// over id, position, announced base price, presence, and the static
/// quality profile). Two registries with equal checksums drive a replay
/// to the recorded schedules; mismatch is a hard replay error.
uint64_t RegistryChecksum(const std::vector<Sensor>& sensors);

/// Serializes `record` (without the leading payload_bytes field) onto
/// `out`. Deterministic byte-for-byte: the same record always encodes to
/// the same bytes, which is what the golden round-trip test pins.
/// `version` selects the record layout: 1 omits the engine-choice
/// section (v1 bytes are unchanged by the v2 extension), 2 appends it.
void EncodeSlotRecord(const TraceSlotRecord& record, std::string* out,
                      uint32_t version = kTraceVersion);

/// Decodes one slot-record payload (the bytes after payload_bytes) laid
/// out per `version` (the containing trace header's). Returns false and
/// sets `*error` on any malformed input — bad magic, counts exceeding
/// the payload, trailing bytes — without reading out of bounds.
bool DecodeSlotRecord(const char* data, size_t size, TraceSlotRecord* record,
                      std::string* error, uint32_t version = kTraceVersion);

/// Serializes the 96-byte header.
void EncodeHeader(const TraceHeader& header, std::string* out);

/// Appends one u32 in the trace's on-disk (little-endian) byte order —
/// the framing primitive the writer uses for record length prefixes and
/// the in-place slot-count patch.
void AppendU32LE(uint32_t v, std::string* out);

/// Decodes and validates a header. `file_size` bounds the slot count
/// sanity check: a finalized slot_count no record stream of `file_size`
/// bytes could hold is rejected as corruption.
bool DecodeHeader(const char* data, size_t size, uint64_t file_size,
                  TraceHeader* header, std::string* error);

}  // namespace psens

#endif  // PSENS_TRACE_TRACE_FORMAT_H_
