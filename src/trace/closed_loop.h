#ifndef PSENS_TRACE_CLOSED_LOOP_H_
#define PSENS_TRACE_CLOSED_LOOP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/serving_config.h"
#include "sim/workload.h"
#include "trace/slot_server.h"

namespace psens {

/// Per-slot query-batch shape of the canonical churn workload — the
/// fig13 serving mix (clustered point queries plus overlapping
/// aggregate monitoring regions).
struct ChurnQueryConfig {
  int queries_per_slot = 64;
  int aggregates_per_slot = 8;
  /// Aggregate regions are (2*half)x(2*half) squares clipped to the
  /// field, centered with the population's clustered density.
  double aggregate_half = 25.0;
  double aggregate_range = 10.0;
  double aggregate_cell = 5.0;
  double point_budget = 15.0;
  double theta_min = 0.2;
};

/// Deterministic per-slot input generator over a ChurnScenarioSetup:
/// draws each slot's SensorDelta from the scenario's ChurnStream (fork 7)
/// and its query batch from the query stream (fork 8) — the exact RNG
/// layout of the fig12/fig13 benches, so a trace recorded from this
/// workload captures the same streams those gates measure.
class ChurnWorkload {
 public:
  ChurnWorkload(const ChurnScenarioSetup* setup, const ChurnQueryConfig& config);

  /// The next slot's churn delta (consumes the churn stream).
  SensorDelta NextDelta();
  /// Slot `time`'s query batch (consumes the query stream).
  SlotQueryBatch NextQueries(int time);

 private:
  const ChurnScenarioSetup* setup_;
  ChurnQueryConfig config_;
  ChurnStream stream_;
  Rng churn_rng_;
  Rng query_rng_;
};

/// A live closed-loop churn run: serving-engine construction
/// (MakeServingEngine — single or sharded per ServingConfig::shards),
/// slot 0 cold build, then `slots` served slots through one SlotServer.
struct ClosedLoopConfig {
  int slots = 20;
  ChurnQueryConfig queries;
  /// The serving stack (scheduler, threads, shards, index policy, approx
  /// knobs, trace recording, readings feedback). working_region and dmax
  /// are stamped from the scenario setup by RunChurnClosedLoop. The
  /// approx seed keeps the closed loop's historical default of 123
  /// unless the caller overrides it.
  ServingConfig serving = ServingConfig().WithApproxSeed(123);
};

struct ClosedLoopResult {
  std::vector<SlotOutcome> outcomes;
  double total_utility = 0.0;
  double total_payment = 0.0;
  int64_t valuation_calls = 0;
  /// Wall-clock of the served slots (cold build excluded).
  double wall_ms = 0.0;
};

/// Runs the closed loop over `setup`'s streams. `monitors` (nullable)
/// observes every served slot. The recorded trace, when requested, is
/// finalized before returning.
ClosedLoopResult RunChurnClosedLoop(const ChurnScenarioSetup& setup,
                                    const ClosedLoopConfig& config,
                                    MonitorSet* monitors = nullptr);

}  // namespace psens

#endif  // PSENS_TRACE_CLOSED_LOOP_H_
