#include "trace/trace_replayer.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "engine/serving_engine.h"
#include "trace/trace_format.h"

namespace psens {
namespace {

/// Decodes slot records ahead of the serving loop. Workers claim record
/// indices from one atomic counter; each decoded record is published
/// through a per-record ready flag (release) that the serving thread
/// acquires — the only cross-thread handoff, so serving order (and thus
/// every engine outcome) is independent of worker count and scheduling.
class ParallelDecoder {
 public:
  ParallelDecoder(const TraceFile& trace, int threads)
      : trace_(trace),
        slots_(static_cast<size_t>(trace.num_slots())),
        ready_(std::make_unique<std::atomic<uint8_t>[]>(slots_.size())) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      ready_[i].store(0, std::memory_order_relaxed);
    }
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { DecodeLoop(); });
    }
  }

  ~ParallelDecoder() {
    // Unblock workers still claiming indices, then join.
    next_.store(slots_.size(), std::memory_order_relaxed);
    for (std::thread& w : workers_) w.join();
  }

  /// The serving thread's in-order take. Returns false on decode error.
  bool Wait(size_t i, TraceSlotRecord** record, std::string* error) {
    while (ready_[i].load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_.empty()) {
        *error = error_;
        return false;
      }
    }
    *record = &slots_[i];
    return true;
  }

 private:
  void DecodeLoop() {
    for (;;) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= slots_.size()) return;
      std::string error;
      if (!trace_.DecodeSlot(static_cast<int>(i), &slots_[i], &error)) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (error_.empty()) error_ = error;
      }
      ready_[i].store(1, std::memory_order_release);
    }
  }

  const TraceFile& trace_;
  std::vector<TraceSlotRecord> slots_;
  std::unique_ptr<std::atomic<uint8_t>[]> ready_;
  std::atomic<size_t> next_{0};
  std::mutex error_mutex_;
  std::string error_;
  std::vector<std::thread> workers_;
};

/// Feeds decoded slot records to SlotServer::ServeLoop (the pipelined
/// replay path). Decode errors surface through error() after the loop
/// returns — Next() just ends the stream.
class RecordInputSource : public SlotInputSource {
 public:
  RecordInputSource(const TraceFile& trace, ParallelDecoder* decoder,
                    bool pin_seeds)
      : trace_(trace),
        decoder_(decoder),
        pin_seeds_(pin_seeds),
        n_(static_cast<size_t>(trace.num_slots())) {}

  bool Next(SlotInput* out) override {
    if (i_ >= n_) return false;
    TraceSlotRecord* record = nullptr;
    if (decoder_ != nullptr) {
      if (!decoder_->Wait(i_, &record, &error_)) return false;
    } else {
      if (!trace_.DecodeSlot(static_cast<int>(i_), &inline_record_, &error_)) {
        return false;
      }
      record = &inline_record_;
    }
    out->time = record->time;
    out->delta = record->delta;
    out->queries.points = std::move(record->point_queries);
    out->queries.aggregates = std::move(record->aggregate_queries);
    out->pin_seed = pin_seeds_;
    out->slot_seed = record->slot_seed;
    // Version-2 (adaptive) traces carry the recorded engine choices;
    // ServeLoop pins them so the replayed schedule matches bit for bit.
    out->pin_engines = std::move(record->engine_choices);
    ++i_;
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  const TraceFile& trace_;
  ParallelDecoder* decoder_;
  bool pin_seeds_;
  size_t n_;
  size_t i_ = 0;
  TraceSlotRecord inline_record_;
  std::string error_;
};

}  // namespace

TraceReplayer::TraceReplayer(const ReplayConfig& config) : config_(config) {}

ReplayResult TraceReplayer::Replay(const std::string& path,
                                   const std::vector<Sensor>& registry,
                                   MonitorSet* monitors) {
  ReplayResult result;
  TraceFile trace;
  if (!trace.Load(path, &result.error)) return result;
  return Replay(trace, registry, monitors);
}

ReplayResult TraceReplayer::Replay(const TraceFile& trace,
                                   const std::vector<Sensor>& registry,
                                   MonitorSet* monitors) {
  ReplayResult result;
  const TraceHeader& header = trace.header();
  if (registry.size() != header.registry_count) {
    result.error = "registry mismatch: trace recorded " +
                   std::to_string(header.registry_count) + " sensors, got " +
                   std::to_string(registry.size());
    return result;
  }
  if (RegistryChecksum(registry) != header.registry_checksum) {
    result.error =
        "registry mismatch: checksum differs from the recorded registry "
        "(replaying against a different population would silently diverge)";
    return result;
  }

  ServingConfig scfg = config_.serving;
  scfg.working_region = header.working_region;
  scfg.dmax = header.dmax;
  scfg.approx.epsilon = header.epsilon;
  scfg.approx.min_sample = header.min_sample;
  scfg.approx.sample_hint = header.sample_hint;
  if (!config_.override_approx_seed) scfg.approx.seed = header.approx_seed;
  std::unique_ptr<ServingEngine> engine = MakeServingEngine(registry, scfg);
  SlotServer server(engine.get());
  server.set_monitors(monitors);

  const size_t n = static_cast<size_t>(trace.num_slots());
  result.outcomes.reserve(n);
  const int decode_threads = config_.decode_threads;
  std::unique_ptr<ParallelDecoder> decoder;
  if (decode_threads > 1 && n > 0) {
    decoder = std::make_unique<ParallelDecoder>(trace, decode_threads);
  }

  if (scfg.pipeline == 2) {
    // Pipelined replay: ServeLoop owns the schedule (and the pacing), the
    // source feeds it decoded records one slot ahead.
    RecordInputSource source(trace, decoder.get(), config_.pin_slot_seeds);
    ServeLoopResult loop =
        server.ServeLoop(&source, config_.target_slots_per_sec);
    if (!source.error().empty()) {
      result.error = source.error();
      return result;
    }
    result.outcomes = std::move(loop.outcomes);
    result.wall_ms = loop.wall_ms;
    result.slots_per_sec = result.wall_ms > 0.0
                               ? 1000.0 * static_cast<double>(n) /
                                     result.wall_ms
                               : 0.0;
    result.ok = true;
    return result;
  }

  const auto start = std::chrono::steady_clock::now();
  TraceSlotRecord inline_record;
  for (size_t i = 0; i < n; ++i) {
    TraceSlotRecord* record = nullptr;
    if (decoder != nullptr) {
      if (!decoder->Wait(i, &record, &result.error)) return result;
    } else {
      if (!trace.DecodeSlot(static_cast<int>(i), &inline_record,
                            &result.error)) {
        return result;
      }
      record = &inline_record;
    }
    if (config_.target_slots_per_sec > 0.0) {
      const auto due =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(i) /
                          config_.target_slots_per_sec));
      std::this_thread::sleep_until(due);
    }
    if (config_.pin_slot_seeds) engine->PinNextSlotSeed(record->slot_seed);
    if (!record->engine_choices.empty()) {
      engine->PinNextSelectEngines(std::move(record->engine_choices));
    }
    SlotQueryBatch batch;
    batch.points = std::move(record->point_queries);
    batch.aggregates = std::move(record->aggregate_queries);
    result.outcomes.push_back(
        server.ServeSlot(record->time, record->delta, batch));
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.slots_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * static_cast<double>(n) / result.wall_ms
                           : 0.0;
  result.ok = true;
  return result;
}

}  // namespace psens
