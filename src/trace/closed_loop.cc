#include "trace/closed_loop.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

namespace psens {
namespace {

/// Pulls the closed loop's slot inputs (slot 0 cold build, then the
/// churn/query streams) for SlotServer::ServeLoop. The streams are
/// dedicated RNG forks independent of serving results, so the loop's
/// one-slot-ahead pull in pipelined mode consumes them in the exact
/// per-stream order the sequential loop does.
class ChurnInputSource : public SlotInputSource {
 public:
  ChurnInputSource(ChurnWorkload* workload, int slots)
      : workload_(workload), slots_(slots) {}

  bool Next(SlotInput* out) override {
    if (next_ > slots_) return false;
    out->time = next_;
    if (next_ == 0) {
      out->delta = SensorDelta{};
      out->queries = SlotQueryBatch{};
    } else {
      out->delta = workload_->NextDelta();
      out->queries = workload_->NextQueries(next_);
    }
    out->pin_seed = false;
    ++next_;
    return true;
  }

 private:
  ChurnWorkload* workload_;
  int slots_;
  int next_ = 0;
};

}  // namespace

ChurnWorkload::ChurnWorkload(const ChurnScenarioSetup* setup,
                             const ChurnQueryConfig& config)
    : setup_(setup),
      config_(config),
      stream_(setup->churn, setup->scenario.sensors, setup->field),
      churn_rng_(0),
      query_rng_(0) {
  stream_.SetClusteredPlacement(&setup_->scenario, &setup_->config);
  // The canonical fork layout (see ChurnScenarioSetup): fork from a local
  // copy, because Fork advances its parent and the setup is shared.
  Rng fork_base = setup_->rng_after_generation;
  churn_rng_ = fork_base.Fork(7);
  query_rng_ = fork_base.Fork(8);
}

SensorDelta ChurnWorkload::NextDelta() { return stream_.Next(churn_rng_); }

SlotQueryBatch ChurnWorkload::NextQueries(int time) {
  SlotQueryBatch batch;
  // RNG consumption order is points then aggregates (the fig13 order);
  // binding order is the reverse — SlotQueryBatch fixes it.
  batch.points = GenerateClusteredPointQueries(
      config_.queries_per_slot, setup_->scenario, setup_->config,
      BudgetScheme{config_.point_budget, false, 0.0}, config_.theta_min,
      /*id_base=*/time * config_.queries_per_slot, query_rng_);
  const double side = setup_->side;
  const double half = config_.aggregate_half;
  batch.aggregates.reserve(static_cast<size_t>(config_.aggregates_per_slot));
  for (int i = 0; i < config_.aggregates_per_slot; ++i) {
    const Point c =
        DrawScenarioLocation(setup_->scenario, setup_->config, query_rng_);
    AggregateQuery::Params params;
    params.id = time * 1000 + i;
    params.region = Rect{std::max(0.0, c.x - half), std::max(0.0, c.y - half),
                         std::min(side, c.x + half), std::min(side, c.y + half)};
    params.budget = params.region.Width() * params.region.Height() /
                    (1.5 * config_.aggregate_range) * 2.0;
    params.sensing_range = config_.aggregate_range;
    params.cell_size = config_.aggregate_cell;
    batch.aggregates.push_back(params);
  }
  return batch;
}

ClosedLoopResult RunChurnClosedLoop(const ChurnScenarioSetup& setup,
                                    const ClosedLoopConfig& config,
                                    MonitorSet* monitors) {
  ServingConfig scfg = config.serving;
  scfg.working_region = setup.field;
  scfg.dmax = setup.dmax;
  std::unique_ptr<ServingEngine> engine =
      MakeServingEngine(setup.scenario.sensors, scfg);
  ChurnWorkload workload(&setup, config.queries);
  SlotServer server(engine.get());
  server.set_monitors(monitors);

  ClosedLoopResult result;
  if (scfg.pipeline == 2) {
    // Pipelined serving runs the same inputs through ServeLoop's
    // overlapped schedule (slot 0 cold build included).
    ChurnInputSource source(&workload, config.slots);
    ServeLoopResult loop = server.ServeLoop(&source);
    result.outcomes = std::move(loop.outcomes);
    result.wall_ms = loop.wall_ms;
  } else {
    result.outcomes.reserve(static_cast<size_t>(config.slots) + 1);
    const auto start = std::chrono::steady_clock::now();
    // Slot 0 is the cold build, served uniformly as an empty-input slot
    // so a recorded trace replays it the same way (outcomes[0] is
    // trivial).
    result.outcomes.push_back(
        server.ServeSlot(0, SensorDelta{}, SlotQueryBatch{}));
    for (int t = 1; t <= config.slots; ++t) {
      const SensorDelta delta = workload.NextDelta();
      const SlotQueryBatch queries = workload.NextQueries(t);
      result.outcomes.push_back(server.ServeSlot(t, delta, queries));
    }
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  }
  for (const SlotOutcome& o : result.outcomes) {
    result.total_utility += o.selection.Utility();
    result.total_payment += o.total_payment;
    result.valuation_calls += o.selection.valuation_calls;
  }
  if (!scfg.trace_path.empty()) engine->FinishTrace();
  return result;
}

}  // namespace psens
