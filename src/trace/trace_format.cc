#include "trace/trace_format.h"

#include <cstring>

namespace psens {
namespace {

// ---------------------------------------------------------------------------
// Little-endian primitive encoding. memcpy through fixed-width integers
// keeps every access aligned and UB-free; on big-endian hosts the byte
// swap below makes the on-disk format identical.
// ---------------------------------------------------------------------------

inline bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char byte;
  std::memcpy(&byte, &probe, 1);
  return byte == 1;
}

inline uint64_t ByteSwap64(uint64_t v) {
  v = ((v & 0x00FF00FF00FF00FFULL) << 8) | ((v >> 8) & 0x00FF00FF00FF00FFULL);
  v = ((v & 0x0000FFFF0000FFFFULL) << 16) |
      ((v >> 16) & 0x0000FFFF0000FFFFULL);
  return (v << 32) | (v >> 32);
}

inline uint32_t ByteSwap32(uint32_t v) {
  v = ((v & 0x00FF00FFu) << 8) | ((v >> 8) & 0x00FF00FFu);
  return (v << 16) | (v >> 16);
}

inline uint64_t ToLittle64(uint64_t v) {
  return HostIsLittleEndian() ? v : ByteSwap64(v);
}
inline uint32_t ToLittle32(uint32_t v) {
  return HostIsLittleEndian() ? v : ByteSwap32(v);
}

void PutU32(uint32_t v, std::string* out) {
  v = ToLittle32(v);
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI32(int32_t v, std::string* out) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits, out);
}

void PutU64(uint64_t v, std::string* out) {
  v = ToLittle64(v);
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

/// Bounds-checked sequential reader over a byte span. Every Get* refuses
/// to read past the end, so a truncated or lying record fails with a
/// clean error instead of undefined behaviour.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool GetU32(uint32_t* v) {
    if (remaining() < sizeof(*v)) return false;
    std::memcpy(v, data_ + pos_, sizeof(*v));
    *v = ToLittle32(*v);
    pos_ += sizeof(*v);
    return true;
  }

  bool GetI32(int32_t* v) {
    uint32_t bits;
    if (!GetU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (remaining() < sizeof(*v)) return false;
    std::memcpy(v, data_ + pos_, sizeof(*v));
    *v = ToLittle64(*v);
    pos_ += sizeof(*v);
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// Reads an element count and verifies that `count * element_bytes`
  /// still fits in the remaining payload — the single check that defuses
  /// both hostile counts and integer-overflow tricks (count is 32-bit,
  /// the product is computed in 64 bits).
  bool GetCount(size_t element_bytes, uint32_t* count) {
    if (!GetU32(count)) return false;
    const uint64_t need =
        static_cast<uint64_t>(*count) * static_cast<uint64_t>(element_bytes);
    return need <= remaining();
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

uint64_t Fnv1a(uint64_t hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t Fnv1aF64(uint64_t hash, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits = ToLittle64(bits);
  return Fnv1a(hash, &bits, sizeof(bits));
}

uint64_t Fnv1aI32(uint64_t hash, int32_t v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits = ToLittle32(bits);
  return Fnv1a(hash, &bits, sizeof(bits));
}

// Per-element encoded sizes (used for count validation on decode).
constexpr size_t kPlacementBytes = 4 + 8 + 8;
constexpr size_t kDepartureBytes = 4;
constexpr size_t kPriceChangeBytes = 4 + 8;
constexpr size_t kPointQueryBytes = 4 + 8 + 8 + 8 + 8 + 4;
constexpr size_t kAggregateBytes = 4 + 4 * 8 + 8 + 8 + 8;

}  // namespace

uint64_t RegistryChecksum(const std::vector<Sensor>& sensors) {
  uint64_t hash = 0xCBF29CE484222325ULL;  // FNV offset basis
  hash = Fnv1aI32(hash, static_cast<int32_t>(sensors.size()));
  for (const Sensor& s : sensors) {
    hash = Fnv1aI32(hash, s.id());
    hash = Fnv1aF64(hash, s.position().x);
    hash = Fnv1aF64(hash, s.position().y);
    hash = Fnv1aI32(hash, s.present() ? 1 : 0);
    const SensorProfile& p = s.profile();
    hash = Fnv1aF64(hash, p.base_price);
    hash = Fnv1aF64(hash, p.inaccuracy);
    hash = Fnv1aF64(hash, p.trust);
    hash = Fnv1aF64(hash, p.energy_beta);
    hash = Fnv1aI32(hash, static_cast<int32_t>(p.energy_model));
    hash = Fnv1aI32(hash, static_cast<int32_t>(p.privacy));
    hash = Fnv1aI32(hash, p.privacy_window);
    hash = Fnv1aI32(hash, p.lifetime);
  }
  return hash;
}

void AppendU32LE(uint32_t v, std::string* out) { PutU32(v, out); }

void EncodeHeader(const TraceHeader& header, std::string* out) {
  out->append(kTraceMagic, sizeof(kTraceMagic));
  PutU32(header.version, out);
  PutU32(kTraceHeaderBytes, out);
  PutU32(header.registry_count, out);
  PutU32(header.slot_count, out);
  PutU64(header.registry_checksum, out);
  PutF64(header.dmax, out);
  PutF64(header.working_region.x_min, out);
  PutF64(header.working_region.y_min, out);
  PutF64(header.working_region.x_max, out);
  PutF64(header.working_region.y_max, out);
  PutU64(header.approx_seed, out);
  PutF64(header.epsilon, out);
  PutI32(header.min_sample, out);
  PutI32(header.sample_hint, out);
}

bool DecodeHeader(const char* data, size_t size, uint64_t file_size,
                  TraceHeader* header, std::string* error) {
  if (size < kTraceHeaderBytes) {
    *error = "trace truncated: file shorter than the 96-byte header";
    return false;
  }
  if (std::memcmp(data, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    *error = "bad magic: not a psens trace file";
    return false;
  }
  Cursor c(data + sizeof(kTraceMagic), size - sizeof(kTraceMagic));
  uint32_t header_bytes = 0;
  if (!c.GetU32(&header->version) || !c.GetU32(&header_bytes) ||
      !c.GetU32(&header->registry_count) || !c.GetU32(&header->slot_count) ||
      !c.GetU64(&header->registry_checksum) || !c.GetF64(&header->dmax) ||
      !c.GetF64(&header->working_region.x_min) ||
      !c.GetF64(&header->working_region.y_min) ||
      !c.GetF64(&header->working_region.x_max) ||
      !c.GetF64(&header->working_region.y_max) ||
      !c.GetU64(&header->approx_seed) || !c.GetF64(&header->epsilon) ||
      !c.GetI32(&header->min_sample) || !c.GetI32(&header->sample_hint)) {
    *error = "trace truncated: header fields incomplete";
    return false;
  }
  if (header->version < kTraceVersion || header->version > kTraceVersionMax) {
    *error = "version skew: trace version " + std::to_string(header->version) +
             ", reader supports versions " + std::to_string(kTraceVersion) +
             ".." + std::to_string(kTraceVersionMax);
    return false;
  }
  if (header_bytes != kTraceHeaderBytes) {
    *error = "corrupt header: header_bytes " + std::to_string(header_bytes) +
             " != " + std::to_string(kTraceHeaderBytes);
    return false;
  }
  // The smallest possible slot record is payload_bytes + magic + time +
  // slot_seed + six zero counts; a finalized slot_count claiming more
  // records than the file could physically hold is corruption, not a big
  // trace.
  constexpr uint64_t kMinRecordBytes = 4 + 4 + 4 + 8 + 6 * 4;
  if (header->slot_count != kSlotCountOpen &&
      static_cast<uint64_t>(header->slot_count) * kMinRecordBytes >
          file_size - kTraceHeaderBytes) {
    *error = "out-of-range slot count: header claims " +
             std::to_string(header->slot_count) + " slots, file can hold at "
             "most " +
             std::to_string((file_size - kTraceHeaderBytes) / kMinRecordBytes);
    return false;
  }
  return true;
}

void EncodeSlotRecord(const TraceSlotRecord& record, std::string* out,
                      uint32_t version) {
  PutU32(kSlotRecordMagic, out);
  PutI32(record.time, out);
  PutU64(record.slot_seed, out);
  PutU32(static_cast<uint32_t>(record.delta.arrivals.size()), out);
  for (const SensorDelta::Placement& a : record.delta.arrivals) {
    PutI32(a.sensor_id, out);
    PutF64(a.position.x, out);
    PutF64(a.position.y, out);
  }
  PutU32(static_cast<uint32_t>(record.delta.departures.size()), out);
  for (int id : record.delta.departures) PutI32(id, out);
  PutU32(static_cast<uint32_t>(record.delta.moves.size()), out);
  for (const SensorDelta::Placement& m : record.delta.moves) {
    PutI32(m.sensor_id, out);
    PutF64(m.position.x, out);
    PutF64(m.position.y, out);
  }
  PutU32(static_cast<uint32_t>(record.delta.price_changes.size()), out);
  for (const SensorDelta::PriceChange& pc : record.delta.price_changes) {
    PutI32(pc.sensor_id, out);
    PutF64(pc.base_price, out);
  }
  PutU32(static_cast<uint32_t>(record.point_queries.size()), out);
  for (const PointQuery& q : record.point_queries) {
    PutI32(q.id, out);
    PutF64(q.location.x, out);
    PutF64(q.location.y, out);
    PutF64(q.budget, out);
    PutF64(q.theta_min, out);
    PutI32(q.parent, out);
  }
  PutU32(static_cast<uint32_t>(record.aggregate_queries.size()), out);
  for (const AggregateQuery::Params& p : record.aggregate_queries) {
    PutI32(p.id, out);
    PutF64(p.region.x_min, out);
    PutF64(p.region.y_min, out);
    PutF64(p.region.x_max, out);
    PutF64(p.region.y_max, out);
    PutF64(p.budget, out);
    PutF64(p.sensing_range, out);
    PutF64(p.cell_size, out);
  }
  // Version >= 2: the adaptive engine-choice section. Version-gated so
  // every v1 record byte stays exactly what the golden fixture pins.
  if (version >= kTraceVersionAdaptive) {
    PutU32(static_cast<uint32_t>(record.engine_choices.size()), out);
    for (GreedyEngine e : record.engine_choices) {
      PutI32(static_cast<int32_t>(e), out);
    }
  }
}

bool DecodeSlotRecord(const char* data, size_t size, TraceSlotRecord* record,
                      std::string* error, uint32_t version) {
  Cursor c(data, size);
  uint32_t magic = 0;
  if (!c.GetU32(&magic) || magic != kSlotRecordMagic) {
    *error = "corrupt slot record: bad record magic";
    return false;
  }
  if (!c.GetI32(&record->time) || !c.GetU64(&record->slot_seed)) {
    *error = "trace truncated: slot record header incomplete";
    return false;
  }
  uint32_t n = 0;
  if (!c.GetCount(kPlacementBytes, &n)) {
    *error = "corrupt slot record: arrival count exceeds record payload";
    return false;
  }
  record->delta.arrivals.resize(n);
  for (SensorDelta::Placement& a : record->delta.arrivals) {
    c.GetI32(&a.sensor_id);
    c.GetF64(&a.position.x);
    c.GetF64(&a.position.y);
  }
  if (!c.GetCount(kDepartureBytes, &n)) {
    *error = "corrupt slot record: departure count exceeds record payload";
    return false;
  }
  record->delta.departures.resize(n);
  for (int& id : record->delta.departures) c.GetI32(&id);
  if (!c.GetCount(kPlacementBytes, &n)) {
    *error = "corrupt slot record: move count exceeds record payload";
    return false;
  }
  record->delta.moves.resize(n);
  for (SensorDelta::Placement& m : record->delta.moves) {
    c.GetI32(&m.sensor_id);
    c.GetF64(&m.position.x);
    c.GetF64(&m.position.y);
  }
  if (!c.GetCount(kPriceChangeBytes, &n)) {
    *error = "corrupt slot record: price-change count exceeds record payload";
    return false;
  }
  record->delta.price_changes.resize(n);
  for (SensorDelta::PriceChange& pc : record->delta.price_changes) {
    c.GetI32(&pc.sensor_id);
    c.GetF64(&pc.base_price);
  }
  if (!c.GetCount(kPointQueryBytes, &n)) {
    *error = "corrupt slot record: point-query count exceeds record payload";
    return false;
  }
  record->point_queries.resize(n);
  for (PointQuery& q : record->point_queries) {
    c.GetI32(&q.id);
    c.GetF64(&q.location.x);
    c.GetF64(&q.location.y);
    c.GetF64(&q.budget);
    c.GetF64(&q.theta_min);
    c.GetI32(&q.parent);
  }
  if (!c.GetCount(kAggregateBytes, &n)) {
    *error = "corrupt slot record: aggregate count exceeds record payload";
    return false;
  }
  record->aggregate_queries.resize(n);
  for (AggregateQuery::Params& p : record->aggregate_queries) {
    c.GetI32(&p.id);
    c.GetF64(&p.region.x_min);
    c.GetF64(&p.region.y_min);
    c.GetF64(&p.region.x_max);
    c.GetF64(&p.region.y_max);
    c.GetF64(&p.budget);
    c.GetF64(&p.sensing_range);
    c.GetF64(&p.cell_size);
  }
  record->engine_choices.clear();
  if (version >= kTraceVersionAdaptive) {
    if (!c.GetCount(sizeof(int32_t), &n)) {
      *error = "corrupt slot record: engine-choice count exceeds record "
               "payload";
      return false;
    }
    record->engine_choices.resize(n);
    for (GreedyEngine& e : record->engine_choices) {
      int32_t raw = 0;
      c.GetI32(&raw);
      if (raw < static_cast<int32_t>(GreedyEngine::kLazy) ||
          raw > static_cast<int32_t>(GreedyEngine::kSieve)) {
        *error = "corrupt slot record: engine choice " + std::to_string(raw) +
                 " out of range";
        return false;
      }
      e = static_cast<GreedyEngine>(raw);
    }
  }
  if (!c.AtEnd()) {
    *error = "corrupt slot record: " + std::to_string(c.remaining()) +
             " trailing bytes after the last field";
    return false;
  }
  return true;
}

}  // namespace psens
