#ifndef PSENS_TRACE_TRACE_REPLAYER_H_
#define PSENS_TRACE_TRACE_REPLAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sensor.h"
#include "engine/serving_config.h"
#include "trace/slot_server.h"
#include "trace/trace_reader.h"

namespace psens {

struct ReplayConfig {
  /// Worker threads decoding slot records ahead of the serving loop.
  /// 1 decodes inline; N > 1 spawns N decoders that claim records by
  /// atomic counter while the caller's thread serves them strictly in
  /// recorded order — so schedules, payments, and valuation-call counts
  /// are bit-identical for every thread count (the decode is pure).
  int decode_threads = 1;
  /// Paced replay: serve at most this many slots per second (sleeping
  /// between slots). 0 replays at maximum speed.
  double target_slots_per_sec = 0.0;
  /// Impose each record's slot_seed via PinNextSlotSeed (default). Off,
  /// the replaying engine derives seeds from its own base seed — the
  /// knob the seed-persistence regression test flips.
  bool pin_slot_seeds = true;
  /// Serving stack for the replaying engine (scheduler, threads, shards,
  /// incremental mode, readings feedback). The working region, dmax, and
  /// the approx epsilon/min_sample/sample_hint always come from the
  /// trace header; the base approx seed does too unless
  /// override_approx_seed imposes serving.approx.seed instead (see
  /// pin_slot_seeds). A trace recorded under any shard count replays
  /// under any other — serving.shards only picks the replaying
  /// deployment.
  ServingConfig serving;
  bool override_approx_seed = false;
};

struct ReplayResult {
  bool ok = false;
  std::string error;
  std::vector<SlotOutcome> outcomes;
  /// Wall-clock of the serving loop and the achieved slot rate.
  double wall_ms = 0.0;
  double slots_per_sec = 0.0;
};

/// Re-drives a recorded serving run against a fresh engine: loads the
/// trace, refuses a registry whose checksum differs from the recorded
/// one, then serves every slot record (delta + query batch, recorded
/// per-slot approx seed pinned) through the same SlotServer the live
/// loop used. Monitors attach to replays exactly as to live runs.
class TraceReplayer {
 public:
  explicit TraceReplayer(const ReplayConfig& config);

  /// Replays the trace at `path` over `registry` (the initial sensor
  /// population the trace was recorded against).
  ReplayResult Replay(const std::string& path,
                      const std::vector<Sensor>& registry,
                      MonitorSet* monitors = nullptr);

  /// Same, over an already-loaded trace file.
  ReplayResult Replay(const TraceFile& trace,
                      const std::vector<Sensor>& registry,
                      MonitorSet* monitors = nullptr);

 private:
  ReplayConfig config_;
};

}  // namespace psens

#endif  // PSENS_TRACE_TRACE_REPLAYER_H_
