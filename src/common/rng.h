#ifndef PSENS_COMMON_RNG_H_
#define PSENS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace psens {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component of the library takes an `Rng`
/// (or a seed) explicitly so that simulations are exactly reproducible.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` using splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double UniformDouble();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [lo, hi] (inclusive).
  /// Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a sample from the standard normal distribution
  /// (Box-Muller; one spare value is cached).
  double Normal();

  /// Returns a sample from N(mean, stddev^2).
  double Normal(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a sample from an exponential distribution with rate `lambda`.
  double Exponential(double lambda);

  /// Returns a Poisson(mean) sample (Knuth's product method for small
  /// means; for mean > 64 a rounded normal approximation, which keeps the
  /// draw O(1) — churn streams only need the right scale plus exact
  /// reproducibility, both of which hold).
  int64_t Poisson(double mean);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; `stream` distinguishes
  /// children derived from the same parent state.
  Rng Fork(uint64_t stream);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace psens

#endif  // PSENS_COMMON_RNG_H_
