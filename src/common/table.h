#ifndef PSENS_COMMON_TABLE_H_
#define PSENS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace psens {

/// Column-aligned plain-text table, used by the bench binaries to print the
/// per-figure series the paper plots (one row per x-value, one column per
/// algorithm). Renders with a header row and a separator line.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Convenience: formats doubles with `precision` fractional digits.
  void AddRow(const std::vector<double>& row, int precision = 2);

  /// Renders the whole table to a string.
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (printf "%.*f").
std::string FormatDouble(double value, int precision);

}  // namespace psens

#endif  // PSENS_COMMON_TABLE_H_
