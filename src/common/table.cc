#include "common/table.h"

#include <cstdio>

#include <algorithm>

namespace psens {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) fields.push_back(FormatDouble(v, precision));
  AddRow(std::move(fields));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return out + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c > 0 ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const {
  const std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

}  // namespace psens
