#ifndef PSENS_COMMON_CSV_H_
#define PSENS_COMMON_CSV_H_

#include <string>
#include <vector>

namespace psens {

/// Minimal CSV writer: quotes fields containing separators, writes rows of
/// strings or doubles. Used to export experiment series for plotting.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check Ok() afterwards.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool Ok() const { return ok_; }

  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(const std::vector<double>& values);

 private:
  void* file_ = nullptr;  // FILE*, kept opaque to avoid <cstdio> in the header
  bool ok_ = false;
};

/// Parses one CSV line into fields, honoring double-quote quoting.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Reads an entire CSV file into rows of fields. Returns an empty vector on
/// open failure (distinguishable from an empty file via `ok` if provided).
std::vector<std::vector<std::string>> ReadCsv(const std::string& path,
                                              bool* ok = nullptr);

}  // namespace psens

#endif  // PSENS_COMMON_CSV_H_
