#ifndef PSENS_COMMON_GEOMETRY_H_
#define PSENS_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace psens {

/// A 2-D location on the (continuous) sensing field. The paper discretizes
/// space into unit grid cells; a `Point` holds grid coordinates but is kept
/// continuous so mobility models can move sensors smoothly.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// An axis-aligned rectangular region [x_min, x_max] x [y_min, y_max].
/// Used both for the simulation working region ("hotspot") and for the
/// regions of spatial-aggregate and region-monitoring queries.
struct Rect {
  double x_min = 0.0;
  double y_min = 0.0;
  double x_max = 0.0;
  double y_max = 0.0;

  double Width() const { return x_max - x_min; }
  double Height() const { return y_max - y_min; }
  double Area() const { return std::max(0.0, Width()) * std::max(0.0, Height()); }

  bool Contains(const Point& p) const {
    return p.x >= x_min && p.x <= x_max && p.y >= y_min && p.y <= y_max;
  }

  /// Returns the intersection rectangle (possibly empty: Area() == 0).
  Rect Intersect(const Rect& other) const {
    Rect r;
    r.x_min = std::max(x_min, other.x_min);
    r.y_min = std::max(y_min, other.y_min);
    r.x_max = std::min(x_max, other.x_max);
    r.y_max = std::min(y_max, other.y_max);
    if (r.x_max < r.x_min || r.y_max < r.y_min) return Rect{0, 0, 0, 0};
    return r;
  }

  bool Overlaps(const Rect& other) const { return Intersect(other).Area() > 0; }

  /// Clamps `p` into the rectangle.
  Point Clamp(const Point& p) const {
    return Point{std::clamp(p.x, x_min, x_max), std::clamp(p.y, y_min, y_max)};
  }
};

/// A polyline trajectory (for queries over trajectories). The query asks
/// for the aggregate value of a phenomenon along the waypoints.
struct Trajectory {
  std::vector<Point> waypoints;

  /// Total length of the polyline.
  double Length() const {
    double total = 0.0;
    for (size_t i = 1; i < waypoints.size(); ++i) {
      total += Distance(waypoints[i - 1], waypoints[i]);
    }
    return total;
  }

  /// Bounding box of the waypoints (degenerate if fewer than 1 point).
  Rect BoundingBox() const {
    Rect r;
    if (waypoints.empty()) return r;
    r.x_min = r.x_max = waypoints[0].x;
    r.y_min = r.y_max = waypoints[0].y;
    for (const Point& p : waypoints) {
      r.x_min = std::min(r.x_min, p.x);
      r.x_max = std::max(r.x_max, p.x);
      r.y_min = std::min(r.y_min, p.y);
      r.y_max = std::max(r.y_max, p.y);
    }
    return r;
  }

  /// Minimum distance from `p` to any segment of the trajectory.
  double DistanceTo(const Point& p) const;
};

/// Distance from point `p` to segment [a, b].
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

inline double Trajectory::DistanceTo(const Point& p) const {
  if (waypoints.empty()) return std::numeric_limits<double>::infinity();
  if (waypoints.size() == 1) return Distance(p, waypoints[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < waypoints.size(); ++i) {
    best = std::min(best, PointSegmentDistance(p, waypoints[i - 1], waypoints[i]));
  }
  return best;
}

inline double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  if (len2 == 0.0) return Distance(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, Point{a.x + t * abx, a.y + t * aby});
}

}  // namespace psens

#endif  // PSENS_COMMON_GEOMETRY_H_
