#ifndef PSENS_COMMON_THREAD_POOL_H_
#define PSENS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psens {

/// Fixed-size worker pool used to shard independent units of simulation
/// work (time slots, parameter-sweep points) across threads. Determinism
/// contract: the pool never reorders *results* — callers index results by
/// work item (e.g. `outcomes[slot]`) and reduce them in item order after
/// Wait()/ParallelFor() returns, so any thread count, including 1 or
/// inline execution, produces bit-identical output.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1). A pool of size 1 still runs tasks on its single worker.
  explicit ThreadPool(int num_threads = 0);

  /// Drains outstanding tasks (Wait) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Runs body(0) ... body(n - 1), sharding the index range over the
  /// workers, and blocks until all iterations are done. Iterations must be
  /// independent; each body(i) writes only state owned by item i.
  void ParallelFor(int n, const std::function<void(int)>& body);

  /// Resolves a `parallelism` config knob: values >= 1 are taken as-is,
  /// anything else (0 or negative = "auto") becomes the hardware
  /// concurrency, never less than 1.
  static int ResolveParallelism(int requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  int in_flight_ = 0;  // queued + currently executing tasks
  bool stopping_ = false;
};

}  // namespace psens

#endif  // PSENS_COMMON_THREAD_POOL_H_
