#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace psens {

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double RunningStat::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return std::sqrt(sum / static_cast<double>(values.size()));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace psens
