#include "common/csv.h"

#include <cstdio>

#include <fstream>
#include <sstream>

namespace psens {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  file_ = f;
  ok_ = f != nullptr;
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!ok_) return;
  FILE* f = static_cast<FILE*>(file_);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc(',', f);
    const std::string quoted = QuoteField(fields[i]);
    std::fwrite(quoted.data(), 1, quoted.size(), f);
  }
  std::fputc('\n', f);
}

void CsvWriter::WriteRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.10g", v);
    fields.emplace_back(buffer);
  }
  WriteRow(fields);
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

std::vector<std::vector<std::string>> ReadCsv(const std::string& path, bool* ok) {
  std::vector<std::vector<std::string>> rows;
  std::ifstream in(path);
  if (!in) {
    if (ok != nullptr) *ok = false;
    return rows;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    rows.push_back(ParseCsvLine(line));
  }
  if (ok != nullptr) *ok = true;
  return rows;
}

}  // namespace psens
