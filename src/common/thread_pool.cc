#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace psens {

int ThreadPool::ResolveParallelism(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int num_threads) {
  const int count = ResolveParallelism(num_threads);
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (size() <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  // One task per worker, each draining a shared atomic index: cheap
  // dynamic load balancing without per-item queue traffic.
  auto next = std::make_shared<std::atomic<int>>(0);
  const int tasks = std::min(size(), n);
  for (int w = 0; w < tasks; ++w) {
    Submit([next, n, &body] {
      for (int i = (*next)++; i < n; i = (*next)++) body(i);
    });
  }
  Wait();
}

}  // namespace psens
