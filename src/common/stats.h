#ifndef PSENS_COMMON_STATS_H_
#define PSENS_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace psens {

/// Online accumulator for mean / variance / extrema (Welford's algorithm).
class RunningStat {
 public:
  void Add(double value);

  size_t Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double Variance() const;
  double StdDev() const;
  /// Standard error of the mean.
  double StdError() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& values);

/// Population standard deviation of a vector (0 for empty input).
double StdDev(const std::vector<double>& values);

/// `q`-quantile (0 <= q <= 1) using linear interpolation; 0 for empty input.
double Quantile(std::vector<double> values, double q);

}  // namespace psens

#endif  // PSENS_COMMON_STATS_H_
