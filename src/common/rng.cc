#include "common/rng.h"

#include <cmath>

namespace psens {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // Avoid the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return lo + static_cast<int64_t>(value % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double lambda) {
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double mean) {
  if (!(mean > 0.0)) return 0;
  if (mean > 64.0) {
    const double draw = std::round(Normal(mean, std::sqrt(mean)));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw);
  }
  // Knuth: count uniform factors until the product drops below e^-mean.
  const double limit = std::exp(-mean);
  int64_t k = 0;
  double product = UniformDouble();
  while (product > limit) {
    ++k;
    product *= UniformDouble();
  }
  return k;
}

Rng Rng::Fork(uint64_t stream) {
  return Rng(NextUint64() ^ (stream * 0xD1B54A32D192ED03ULL));
}

}  // namespace psens
