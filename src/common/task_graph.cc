#include "src/common/task_graph.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace psens {

TaskGraphExecutor::TaskGraphExecutor(int workers) {
  const int n = std::max(1, workers);
  deques_.reserve(n);
  for (int i = 0; i < n; ++i) deques_.push_back(std::make_unique<WorkerDeque>());
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) threads_.emplace_back([this, i] { WorkerLoop(i); });
}

TaskGraphExecutor::~TaskGraphExecutor() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

TaskGraphExecutor::TaskId TaskGraphExecutor::AddTask(
    std::function<void()> fn, const std::vector<TaskId>& deps) {
  assert(!active_.load(std::memory_order_relaxed) &&
         "AddTask during a launched wave");
  const TaskId id = static_cast<TaskId>(fns_.size());
  fns_.push_back(std::move(fn));
  dependents_.emplace_back();
  int live_deps = 0;
  for (TaskId d : deps) {
    assert(d >= 0 && d < id && "dependency must be an earlier task id");
    dependents_[d].push_back(id);
    ++live_deps;
  }
  initial_deps_.push_back(live_deps);
  return id;
}

void TaskGraphExecutor::Launch() {
  const int n = static_cast<int>(fns_.size());
  if (n == 0) return;
  pending_ = std::make_unique<std::atomic<int>[]>(n);
  for (int i = 0; i < n; ++i)
    pending_[i].store(initial_deps_[i], std::memory_order_relaxed);
  remaining_.store(n, std::memory_order_relaxed);
  {
    // Publishing the graph under state_mu_ gives workers (which take
    // state_mu_ or a deque mutex before touching the graph) a
    // happens-before edge over the build-phase writes.
    std::lock_guard<std::mutex> lock(state_mu_);
    first_error_ = nullptr;
    active_.store(true, std::memory_order_release);
    int q = next_queue_;
    for (int i = 0; i < n; ++i) {
      if (initial_deps_[i] != 0) continue;
      WorkerDeque& d = *deques_[q % deques_.size()];
      {
        std::lock_guard<std::mutex> dl(d.mu);
        d.tasks.push_back(i);
      }
      ++q;
    }
    next_queue_ = q % static_cast<int>(deques_.size());
  }
  work_cv_.notify_all();
}

void TaskGraphExecutor::Join() {
  if (fns_.empty()) return;
  std::unique_lock<std::mutex> lock(state_mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
  active_.store(false, std::memory_order_release);
  std::exception_ptr err = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  fns_.clear();
  dependents_.clear();
  initial_deps_.clear();
  pending_.reset();
  if (err) std::rethrow_exception(err);
}

void TaskGraphExecutor::PushReady(int self, TaskId id) {
  WorkerDeque& d = *deques_[self];
  std::lock_guard<std::mutex> dl(d.mu);
  d.tasks.push_front(id);
}

void TaskGraphExecutor::RunTask(TaskId id) {
  try {
    fns_[id]();
  } catch (...) {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  // A failed task still releases its dependents so the wave drains and
  // Join() can rethrow instead of deadlocking.
  int newly_ready = 0;
  // Safe to read dependents_ without a lock: the graph is immutable
  // between Launch() and the last task's completion.
  for (TaskId dep : dependents_[id]) {
    if (pending_[dep].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      PushReady(/*self=*/static_cast<int>(dep % deques_.size()), dep);
      ++newly_ready;
    }
  }
  if (newly_ready > 0) work_cv_.notify_all();
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) - 1 == 0) {
    std::lock_guard<std::mutex> lock(state_mu_);
    done_cv_.notify_all();
    work_cv_.notify_all();
  }
}

bool TaskGraphExecutor::TryRunOne(int self) {
  const int n = static_cast<int>(deques_.size());
  // Own queue first (front = LIFO, best locality)...
  {
    WorkerDeque& d = *deques_[self];
    std::unique_lock<std::mutex> dl(d.mu);
    if (!d.tasks.empty()) {
      TaskId id = d.tasks.front();
      d.tasks.pop_front();
      dl.unlock();
      RunTask(id);
      return true;
    }
  }
  // ...then steal from the back of the other workers' deques.
  for (int k = 1; k < n; ++k) {
    WorkerDeque& d = *deques_[(self + k) % n];
    std::unique_lock<std::mutex> dl(d.mu);
    if (!d.tasks.empty()) {
      TaskId id = d.tasks.back();
      d.tasks.pop_back();
      dl.unlock();
      RunTask(id);
      return true;
    }
  }
  return false;
}

void TaskGraphExecutor::WorkerLoop(int self) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mu_);
      work_cv_.wait(lock, [this] {
        return shutdown_ ||
               (active_.load(std::memory_order_acquire) &&
                remaining_.load(std::memory_order_acquire) > 0);
      });
      if (shutdown_) return;
    }
    while (remaining_.load(std::memory_order_acquire) > 0) {
      if (!TryRunOne(self)) {
        // Not-yet-released tasks may land in any deque; a short timed
        // wait sidesteps lost-wakeup races without intricate signaling.
        std::unique_lock<std::mutex> lock(state_mu_);
        if (shutdown_) return;
        work_cv_.wait_for(lock, std::chrono::microseconds(200));
      }
    }
  }
}

}  // namespace psens
