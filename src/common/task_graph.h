#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace psens {

// A small work-stealing task-graph executor (the lego jobqueue pattern,
// upgraded with explicit dependencies). Usage is phased:
//
//   TaskGraphExecutor exec(workers);
//   auto a = exec.AddTask([] { ... });
//   auto b = exec.AddTask([] { ... }, {a});   // b runs after a
//   exec.Launch();
//   exec.Join();                              // blocks; rethrows first error
//
// AddTask/Launch/Join must all be called from one coordinating thread.
// After Join() the graph is reset and the executor can be reused for the
// next wave of tasks. Worker threads are spawned once in the constructor
// and persist across waves; each owns a deque it pushes/pops at the front
// (LIFO, cache-friendly) while idle workers steal from the back of other
// workers' deques. Join() is a deterministic barrier: it returns only
// once every task of the wave has finished, so any memory written by
// tasks is visible to the coordinator afterwards.
class TaskGraphExecutor {
 public:
  using TaskId = int;

  // Spawns max(1, workers) worker threads. Tasks never run inline on the
  // coordinating thread, so a single-worker executor still overlaps its
  // task with whatever the coordinator does between Launch() and Join().
  explicit TaskGraphExecutor(int workers);
  ~TaskGraphExecutor();

  TaskGraphExecutor(const TaskGraphExecutor&) = delete;
  TaskGraphExecutor& operator=(const TaskGraphExecutor&) = delete;

  // Build phase: records a task and its dependencies (ids returned by
  // earlier AddTask calls in the same wave). No task starts until
  // Launch().
  TaskId AddTask(std::function<void()> fn, const std::vector<TaskId>& deps = {});

  // Releases every task whose dependencies are all satisfied and lets the
  // workers run the wave. Must be followed by Join() before the next
  // AddTask().
  void Launch();

  // Blocks until all tasks of the launched wave have completed, then
  // resets the graph for reuse. If any task threw, the first captured
  // exception is rethrown here (all tasks still run to completion —
  // a failed task releases its dependents).
  void Join();

  int workers() const { return static_cast<int>(threads_.size()); }

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<TaskId> tasks;
  };

  void WorkerLoop(int self);
  bool TryRunOne(int self);
  void RunTask(TaskId id);
  void PushReady(int self, TaskId id);

  // Graph (build phase; owned by the coordinator until Launch()).
  std::vector<std::function<void()>> fns_;
  std::vector<std::vector<TaskId>> dependents_;
  std::vector<int> initial_deps_;

  // Wave state.
  std::unique_ptr<std::atomic<int>[]> pending_;
  std::atomic<int> remaining_{0};
  std::atomic<bool> active_{false};

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> threads_;

  std::mutex state_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  int next_queue_ = 0;
};

}  // namespace psens
