#include "core/lazy_greedy.h"

#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "core/batch_eval.h"
#include "core/candidate_pruning.h"

namespace psens {
namespace {

/// Heap entry: a candidate sensor with its net gain as cached at `round`.
struct Candidate {
  double net = 0.0;
  int round = 0;
  int sensor = 0;
};

/// Max-heap order on net gain; ties prefer the lower sensor index so that
/// the lazy run breaks ties exactly like the eager ascending scan.
struct CandidateLess {
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.net != b.net) return a.net < b.net;
    return a.sensor > b.sensor;
  }
};

}  // namespace

SelectionResult LazyGreedySensorSelection(const std::vector<MultiQuery*>& queries,
                                          const SlotContext& slot,
                                          const std::vector<double>* cost_scale) {
  SelectionResult result;
  const int64_t calls_before = TotalValuationCalls(queries);
  const int n = static_cast<int>(slot.sensors.size());

  // Candidate pruning (indexed slots): a sensor no query can value has
  // net gain <= -cost and never enters the heap; a sensor's net sums only
  // over its interested queries. Identical selections and payments, fewer
  // valuation calls (core/candidate_pruning.h).
  const CandidatePlan plan = BuildCandidatePlan(queries, n, slot.arena);
  NetEvaluator evaluator(queries, plan, slot, cost_scale, slot.pool);

  // Initial fill — the dominant cost of a CELF run — as one batched (and,
  // with slot.pool, parallel) sweep: nets for every scan sensor, then heap
  // pushes in the same ascending order the serial loop used, so the heap
  // state, every cached value, and the valuation-call totals are
  // bit-identical to evaluating one sensor at a time. Sensors outside
  // SlotContext::eligible (per-shard scheduler passes) never enter the
  // heap — they may not be selected here, though their valuations and
  // payments are untouched.
  std::priority_queue<Candidate, std::vector<Candidate>, CandidateLess> heap;
  {
    const std::span<const int> scan = plan.ScanSensors();
    ArenaBuffer<double> net;
    net.Acquire(slot.arena, scan.size());
    evaluator.EvaluateNets(scan, net.data());
    for (size_t k = 0; k < scan.size(); ++k) {
      if (slot.eligible != nullptr &&
          !(*slot.eligible)[static_cast<size_t>(scan[k])]) {
        continue;
      }
      heap.push(Candidate{net[k], 0, scan[k]});
    }
  }

  int round = 0;
  while (!heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (top.round != round) {
      // Stale cache: re-evaluate against the current selection and
      // reinsert; only the heap front ever pays this cost. The evaluator
      // shards the per-query delta batch over the pool when the sensor
      // interests enough queries (bit-identical either way).
      top.net = evaluator.EvaluateNet(top.sensor);
      top.round = round;
      heap.push(top);
      continue;
    }
    if (top.net <= 0.0) break;  // fresh maximum without positive net gain
    CheckPrunedMarginals(queries, plan, top.sensor);

    // Commit exactly like the eager loop (Algorithm 1 line 10).
    result.total_cost +=
        CommitWithProportionalPayments(queries, plan, slot, top.sensor);
    result.selected_sensors.push_back(top.sensor);
    ++round;
  }

  for (const MultiQuery* q : queries) result.total_value += q->CurrentValue();
  result.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return result;
}

}  // namespace psens
