#ifndef PSENS_CORE_QUERY_MIX_H_
#define PSENS_CORE_QUERY_MIX_H_

#include <cstdint>
#include <vector>

#include "core/aggregate_query.h"
#include "core/greedy.h"
#include "core/location_monitoring.h"
#include "core/point_query.h"
#include "core/region_monitoring.h"
#include "core/slot.h"

namespace psens {

/// Per-query-type metrics of one slot.
struct TypeMetrics {
  int total = 0;
  int answered = 0;
  double value = 0.0;
  /// Sum over answered queries of achieved value / max value.
  double quality_sum = 0.0;

  double SatisfactionRatio() const {
    return total > 0 ? static_cast<double>(answered) / total : 0.0;
  }
  double MeanQuality() const {
    return answered > 0 ? quality_sum / answered : 0.0;
  }
};

struct QueryMixSlotResult {
  /// Total valuation realized this slot (user point + aggregate values +
  /// monitoring valuation gains; generated point queries are not counted
  /// separately — their value is what they contribute to their parent
  /// continuous query).
  double total_value = 0.0;
  /// Total cost of all selected sensors (each paid once).
  double total_cost = 0.0;
  /// Slot-sensor indices selected for any query.
  std::vector<int> selected_sensors;
  TypeMetrics point;
  TypeMetrics aggregate;
  double location_value_gain = 0.0;
  double region_value_gain = 0.0;
  int64_t valuation_calls = 0;

  double Utility() const { return total_value - total_cost; }
};

struct QueryMixOptions {
  /// True: Algorithm 5 (joint greedy selection, sharing, cost weighting).
  /// False: the Section 4.7 baseline — aggregates first (sequential
  /// baseline), then all point queries with the arrival-order baseline;
  /// continuous queries should then be configured to emit point queries
  /// only at desired times.
  bool use_greedy = true;
  /// Engine executing the Algorithm 1 selection inside Algorithm 5; the
  /// lazy CELF engine is the default, kEager restores the literal rescan.
  GreedyEngine engine = GreedyEngine::kLazy;
  uint64_t seed = 1;
};

/// Algorithm 5 ("Data Acquisition for Query Mix") for one time slot:
///  1. generate point queries for location/region monitoring queries,
///  2. jointly select sensors for everything with Algorithm 1 (with the
///     Eq. 18 cost weights from the region manager),
///  3. apply results back to the continuous-query managers (which may
///     contribute payments for shared sensors),
///  4. account values, costs, and per-type quality.
///
/// `location_manager` / `region_manager` may be null when the mix has no
/// queries of that type (e.g. Fig. 10 excludes region monitoring).
QueryMixSlotResult RunQueryMixSlot(const SlotContext& slot,
                                   const std::vector<PointQuery>& user_point_queries,
                                   const std::vector<AggregateQuery::Params>& aggregates,
                                   LocationMonitoringManager* location_manager,
                                   RegionMonitoringManager* region_manager,
                                   const QueryMixOptions& options);

}  // namespace psens

#endif  // PSENS_CORE_QUERY_MIX_H_
