#include "core/candidate_pruning.h"

#include <cassert>
#include <numeric>

namespace psens {

CandidatePlan BuildCandidatePlan(const std::vector<MultiQuery*>& queries,
                                 int num_sensors) {
  CandidatePlan plan;
  for (const MultiQuery* q : queries) {
    if (q->CandidateSensors() != nullptr) {
      plan.active = true;
      break;
    }
  }
  if (!plan.active) {
    plan.all_sensors.resize(static_cast<size_t>(num_sensors));
    std::iota(plan.all_sensors.begin(), plan.all_sensors.end(), 0);
    plan.all_queries.resize(queries.size());
    std::iota(plan.all_queries.begin(), plan.all_queries.end(), 0);
    // Default-constructed refs resolve to the dense fallback.
    plan.query_candidates.assign(queries.size(), CandidatePlan::QueryCandidateRef{});
    return plan;
  }

  plan.queries_of_sensor.resize(static_cast<size_t>(num_sensors));
  plan.query_candidates.assign(queries.size(), CandidatePlan::QueryCandidateRef{});
  bool any_dense = false;
  // Ascending qi loop keeps every per-sensor query list ascending, which
  // preserves the dense scan's marginal accumulation order exactly.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<int>* candidates = queries[qi]->CandidateSensors();
    if (candidates == nullptr) {
      any_dense = true;
      for (auto& list : plan.queries_of_sensor) list.push_back(static_cast<int>(qi));
    } else {
      bool in_range = true;
      for (int s : *candidates) {
        if (s >= 0 && s < num_sensors) {
          plan.queries_of_sensor[static_cast<size_t>(s)].push_back(
              static_cast<int>(qi));
        } else {
          in_range = false;
        }
      }
      if (in_range) {
        plan.query_candidates[qi].external = candidates;
      } else {
        // Rare defensive path: mirror the in-range filter above so the
        // query-major view scans exactly the pairs the inverted index
        // indexes.
        plan.query_candidates[qi].sanitized_index =
            static_cast<int>(plan.sanitized.size());
        plan.sanitized.emplace_back();
        std::vector<int>& copy = plan.sanitized.back();
        for (int s : *candidates) {
          if (s >= 0 && s < num_sensors) copy.push_back(s);
        }
      }
    }
  }
  if (any_dense) {
    // Dense queries resolve SensorsOf through the all-sensors fallback.
    plan.all_sensors.resize(static_cast<size_t>(num_sensors));
    std::iota(plan.all_sensors.begin(), plan.all_sensors.end(), 0);
  }
  for (int s = 0; s < num_sensors; ++s) {
    if (!plan.queries_of_sensor[static_cast<size_t>(s)].empty()) {
      plan.sensors.push_back(s);
    }
  }
  return plan;
}

void CheckPrunedMarginals(const std::vector<MultiQuery*>& queries,
                          const CandidatePlan& plan, int sensor) {
#ifdef NDEBUG
  (void)queries;
  (void)plan;
  (void)sensor;
#else
  if (!plan.active) return;
  std::vector<char> interested(queries.size(), 0);
  for (int qi : plan.queries_of_sensor[static_cast<size_t>(sensor)]) {
    interested[static_cast<size_t>(qi)] = 1;
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (interested[qi]) continue;
    // The pruning contract: a sensor outside a query's candidate list can
    // never carry positive marginal value for it.
    assert(queries[qi]->MarginalValue(sensor) <= 1e-12 &&
           "candidate pruning dropped a sensor with positive marginal value");
  }
#endif
}

}  // namespace psens
