#include "core/candidate_pruning.h"

#include <cassert>
#include <numeric>

namespace psens {

CandidatePlan BuildCandidatePlan(const std::vector<MultiQuery*>& queries,
                                 int num_sensors, SlotArena* arena) {
  CandidatePlan plan;
  for (const MultiQuery* q : queries) {
    if (q->CandidateSensors() != nullptr) {
      plan.active = true;
      break;
    }
  }
  if (!plan.active) {
    plan.all_sensors.Acquire(arena, static_cast<size_t>(num_sensors));
    std::iota(plan.all_sensors.begin(), plan.all_sensors.end(), 0);
    plan.all_queries.Acquire(arena, queries.size());
    std::iota(plan.all_queries.begin(), plan.all_queries.end(), 0);
    // Default-constructed refs resolve to the dense fallback.
    plan.query_candidates.assign(queries.size(), CandidatePlan::QueryCandidateRef{});
    return plan;
  }

  plan.query_candidates.assign(queries.size(), CandidatePlan::QueryCandidateRef{});
  // Counting pass: per-sensor interested-query tallies. A dense query
  // attaches to every sensor; out-of-range candidate entries are dropped
  // here and mirrored below by the sanitized query-major copies.
  plan.qs_offsets.Acquire(arena, static_cast<size_t>(num_sensors) + 1);
  std::fill(plan.qs_offsets.begin(), plan.qs_offsets.end(), int64_t{0});
  int64_t num_dense = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<int>* candidates = queries[qi]->CandidateSensors();
    if (candidates == nullptr) {
      ++num_dense;
      continue;
    }
    for (int s : *candidates) {
      if (s >= 0 && s < num_sensors) ++plan.qs_offsets[static_cast<size_t>(s) + 1];
    }
  }
  int64_t total = 0;
  int num_scan = 0;
  for (int s = 0; s < num_sensors; ++s) {
    const int64_t count = plan.qs_offsets[static_cast<size_t>(s) + 1] + num_dense;
    if (count > 0) ++num_scan;
    plan.qs_offsets[static_cast<size_t>(s) + 1] = total += count;
  }
  plan.qs_data.Acquire(arena, static_cast<size_t>(total));

  // Fill pass in ascending qi order: every per-sensor query run stays
  // ascending, preserving the dense scan's marginal accumulation order
  // exactly. cursor[s] tracks the next free slot of sensor s's run.
  ArenaBuffer<int64_t> cursor;
  cursor.Acquire(arena, static_cast<size_t>(num_sensors));
  for (int s = 0; s < num_sensors; ++s) {
    cursor[static_cast<size_t>(s)] = plan.qs_offsets[static_cast<size_t>(s)];
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<int>* candidates = queries[qi]->CandidateSensors();
    if (candidates == nullptr) {
      for (int s = 0; s < num_sensors; ++s) {
        plan.qs_data[static_cast<size_t>(cursor[static_cast<size_t>(s)]++)] =
            static_cast<int>(qi);
      }
      continue;
    }
    bool in_range = true;
    for (int s : *candidates) {
      if (s >= 0 && s < num_sensors) {
        plan.qs_data[static_cast<size_t>(cursor[static_cast<size_t>(s)]++)] =
            static_cast<int>(qi);
      } else {
        in_range = false;
      }
    }
    if (in_range) {
      plan.query_candidates[qi].external = candidates;
    } else {
      // Rare defensive path: mirror the in-range filter above so the
      // query-major view scans exactly the pairs the inverted index
      // indexes.
      plan.query_candidates[qi].sanitized_index =
          static_cast<int>(plan.sanitized.size());
      plan.sanitized.emplace_back();
      std::vector<int>& copy = plan.sanitized.back();
      for (int s : *candidates) {
        if (s >= 0 && s < num_sensors) copy.push_back(s);
      }
    }
  }
  if (num_dense > 0) {
    // Dense queries resolve SensorsOf through the all-sensors fallback.
    plan.all_sensors.Acquire(arena, static_cast<size_t>(num_sensors));
    std::iota(plan.all_sensors.begin(), plan.all_sensors.end(), 0);
  }
  plan.sensors.Acquire(arena, static_cast<size_t>(num_scan));
  size_t w = 0;
  for (int s = 0; s < num_sensors; ++s) {
    if (plan.qs_offsets[static_cast<size_t>(s) + 1] >
        plan.qs_offsets[static_cast<size_t>(s)]) {
      plan.sensors[w++] = s;
    }
  }
  return plan;
}

void CheckPrunedMarginals(const std::vector<MultiQuery*>& queries,
                          const CandidatePlan& plan, int sensor) {
#ifdef NDEBUG
  (void)queries;
  (void)plan;
  (void)sensor;
#else
  if (!plan.active) return;
  std::vector<char> interested(queries.size(), 0);
  for (int qi : plan.QueriesOf(sensor)) {
    interested[static_cast<size_t>(qi)] = 1;
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (interested[qi]) continue;
    // The pruning contract: a sensor outside a query's candidate list can
    // never carry positive marginal value for it.
    assert(queries[qi]->MarginalValue(sensor) <= 1e-12 &&
           "candidate pruning dropped a sensor with positive marginal value");
  }
#endif
}

}  // namespace psens
