#include "core/candidate_pruning.h"

#include <cassert>
#include <numeric>

namespace psens {

CandidatePlan BuildCandidatePlan(const std::vector<MultiQuery*>& queries,
                                 int num_sensors) {
  CandidatePlan plan;
  for (const MultiQuery* q : queries) {
    if (q->CandidateSensors() != nullptr) {
      plan.active = true;
      break;
    }
  }
  if (!plan.active) {
    plan.all_sensors.resize(static_cast<size_t>(num_sensors));
    std::iota(plan.all_sensors.begin(), plan.all_sensors.end(), 0);
    plan.all_queries.resize(queries.size());
    std::iota(plan.all_queries.begin(), plan.all_queries.end(), 0);
    return plan;
  }

  plan.queries_of_sensor.resize(static_cast<size_t>(num_sensors));
  // Ascending qi loop keeps every per-sensor query list ascending, which
  // preserves the dense scan's marginal accumulation order exactly.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<int>* candidates = queries[qi]->CandidateSensors();
    if (candidates == nullptr) {
      for (auto& list : plan.queries_of_sensor) list.push_back(static_cast<int>(qi));
    } else {
      for (int s : *candidates) {
        if (s >= 0 && s < num_sensors) {
          plan.queries_of_sensor[static_cast<size_t>(s)].push_back(
              static_cast<int>(qi));
        }
      }
    }
  }
  for (int s = 0; s < num_sensors; ++s) {
    if (!plan.queries_of_sensor[static_cast<size_t>(s)].empty()) {
      plan.sensors.push_back(s);
    }
  }
  return plan;
}

void CheckPrunedMarginals(const std::vector<MultiQuery*>& queries,
                          const CandidatePlan& plan, int sensor) {
#ifdef NDEBUG
  (void)queries;
  (void)plan;
  (void)sensor;
#else
  if (!plan.active) return;
  std::vector<char> interested(queries.size(), 0);
  for (int qi : plan.queries_of_sensor[static_cast<size_t>(sensor)]) {
    interested[static_cast<size_t>(qi)] = 1;
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (interested[qi]) continue;
    // The pruning contract: a sensor outside a query's candidate list can
    // never carry positive marginal value for it.
    assert(queries[qi]->MarginalValue(sensor) <= 1e-12 &&
           "candidate pruning dropped a sensor with positive marginal value");
  }
#endif
}

}  // namespace psens
