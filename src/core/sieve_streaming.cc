#include "core/sieve_streaming.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "core/batch_eval.h"
#include "core/candidate_pruning.h"
#include "core/sensor_delta.h"
#include "core/stochastic_greedy.h"

namespace psens {
namespace {

/// Slot index of a global sensor id, or -1 when the sensor is not a slot
/// member. Slot sensors ascend by sensor_id (BuildSlotContext walks the
/// id-dense registry in order; the engine maintains a sorted member
/// array), so a binary search suffices.
int SlotIndexOf(const SlotContext& slot, int sensor_id) {
  const auto it = std::lower_bound(
      slot.sensors.begin(), slot.sensors.end(), sensor_id,
      [](const SlotSensor& s, int id) { return s.sensor_id < id; });
  if (it == slot.sensors.end() || it->sensor_id != sensor_id) return -1;
  return it->index;
}

double ClampEpsilon(double epsilon) {
  // The lower clamp bounds the threshold-grid size: the graded bucket
  // count is ~ln(1/eps)/ln(1+eps), so 1e-3 caps it at ~6.9e3 before the
  // explicit kMaxGradedBuckets cap below even engages.
  return std::clamp(epsilon, 1e-3, 0.999);
}

/// Hard cap on instantiated graded buckets: per-slot cost scales with the
/// bucket count, and beyond this many thresholds the grid's quality gain
/// is noise. The cap keeps degenerate epsilon values from turning the
/// sieve into an accidental hang (the floor bucket is extra).
constexpr int kMaxGradedBuckets = 64;

/// Refinement-bench capacity: how many of the best-singleton-net
/// candidates stay in refinement contention across slots. Bounds the
/// refinement pool (hence per-slot refinement cost) independent of the
/// population; sized to comfortably exceed the selection sizes the
/// budget-limited workloads produce.
constexpr size_t kRefineBenchSize = 1024;

/// Per-slot exploration sample fed into the refinement pool: a seeded
/// uniform draw from the slot's candidate scan set. Bucket state and the
/// bench only ever grow through the *streamed* sensors (arrivals, after
/// initialization), but the slot's queries move every slot — the sample
/// is how sensors relevant to the current queries enter contention
/// without a population sweep. Clustered workloads re-draw queries from
/// persistent hotspots, so sampled winners accumulate in the bench.
constexpr size_t kRefineSampleSize = 1536;

}  // namespace

SieveStreamingScheduler::SieveStreamingScheduler(const ApproxParams& params)
    : epsilon_(ClampEpsilon(params.epsilon)) {}

double SieveStreamingScheduler::Tau(const Bucket& bucket) const {
  if (bucket.floor) return 0.0;
  return std::pow(1.0 + epsilon_, bucket.exponent);
}

void SieveStreamingScheduler::EnsureBuckets(double m) {
  // The floor bucket (tau = 0, plain accept-any-positive streaming greedy)
  // always exists and always survives grid moves.
  if (buckets_.empty() || !buckets_.back().floor) {
    Bucket floor;
    floor.floor = true;
    buckets_.push_back(floor);
  }
  if (m <= 0.0) return;
  const double log_base = std::log(1.0 + epsilon_);
  const int j_max = static_cast<int>(std::floor(std::log(m) / log_base));
  const int j_min = std::max(
      static_cast<int>(std::ceil(std::log(epsilon_ * m) / log_base)),
      j_max - kMaxGradedBuckets + 1);
  // Drop graded buckets that fell below the classic epsilon * m window
  // (their role is covered by lower-threshold survivors and the floor),
  // then instantiate any missing exponents. Kept sorted descending by
  // threshold, floor last, so winner tie-breaks are deterministic.
  std::vector<Bucket> kept;
  for (Bucket& b : buckets_) {
    if (b.floor || (b.exponent >= j_min && b.exponent <= j_max)) {
      kept.push_back(std::move(b));
    }
  }
  buckets_ = std::move(kept);
  for (int j = j_min; j <= j_max; ++j) {
    bool present = false;
    for (const Bucket& b : buckets_) {
      if (!b.floor && b.exponent == j) present = true;
    }
    if (!present) {
      Bucket bucket;
      bucket.exponent = j;
      buckets_.push_back(bucket);
    }
  }
  std::sort(buckets_.begin(), buckets_.end(),
            [](const Bucket& a, const Bucket& b) {
              if (a.floor != b.floor) return b.floor;  // floor last
              return a.exponent > b.exponent;
            });
}

SelectionResult SieveStreamingScheduler::SelectFull(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<double>* cost_scale) {
  buckets_.clear();
  bench_.clear();
  max_single_net_ = 0.0;
  initialized_ = false;
  return SelectArrivals(queries, slot, {}, cost_scale);
}

SelectionResult SieveStreamingScheduler::SelectDelta(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const SensorDelta& delta, const std::vector<double>* cost_scale) {
  if (!initialized_) return SelectFull(queries, slot, cost_scale);
  std::vector<int> arrival_ids;
  arrival_ids.reserve(delta.arrivals.size() + delta.moves.size());
  for (const SensorDelta::Placement& a : delta.arrivals) {
    arrival_ids.push_back(a.sensor_id);
  }
  // A move can carry a sensor into the working region (or into range of a
  // query), so moved sensors are re-offered like arrivals; moved members
  // are additionally re-validated by the replay pass.
  for (const SensorDelta::Placement& m : delta.moves) {
    arrival_ids.push_back(m.sensor_id);
  }
  return SelectArrivals(queries, slot, arrival_ids, cost_scale);
}

SelectionResult SieveStreamingScheduler::SelectArrivals(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<int>& arrival_ids,
    const std::vector<double>* cost_scale) {
  SelectionResult result;
  const int64_t calls_before = TotalValuationCalls(queries);
  const int n = static_cast<int>(slot.sensors.size());
  const bool full_stream = !initialized_;

  for (MultiQuery* q : queries) q->ResetSelection();
  const CandidatePlan plan = BuildCandidatePlan(queries, n, slot.arena);
  NetEvaluator evaluator(queries, plan, slot, cost_scale, slot.pool);

  // The offered stream, ascending slot indices: the whole candidate set on
  // (re)initialization, only the delta's arrivals afterwards.
  std::vector<int> offered;
  if (full_stream) {
    const std::span<const int> scan = plan.ScanSensors();
    offered.assign(scan.begin(), scan.end());
  } else {
    for (int id : arrival_ids) {
      const int idx = SlotIndexOf(slot, id);
      if (idx >= 0) offered.push_back(idx);
    }
    std::sort(offered.begin(), offered.end());
    offered.erase(std::unique(offered.begin(), offered.end()), offered.end());
  }

  // Single-sensor nets of the offered stream against the empty selection:
  // they seed the threshold grid, and (for submodular valuations) they
  // upper-bound any later marginal, so a bucket only streams sensors whose
  // single net reaches its threshold.
  std::vector<double> net0(offered.size());
  evaluator.EvaluateNets(offered, net0.data());
  for (double v : net0) max_single_net_ = std::max(max_single_net_, v);
  EnsureBuckets(max_single_net_);

  // Bench maintenance (refinement candidate pool): remember the top
  // streamed candidates by singleton net whether or not any bucket
  // accepts them — a high-singleton sensor rejected mid-stream (its
  // marginal had collapsed against that bucket's selection) is exactly
  // what the refinement pass needs back in contention. Re-uses the
  // net0 sweep, so the bench costs no extra valuations; entries whose
  // sensor left the slot are dropped (a returning sensor re-enters via
  // the arrival/move stream).
  if (slot.approx.sieve_refine) {
    std::unordered_map<int, double> merged;
    merged.reserve(bench_.size() + offered.size());
    for (const auto& [net, gid] : bench_) {
      if (SlotIndexOf(slot, gid) >= 0) merged.emplace(gid, net);
    }
    for (size_t k = 0; k < offered.size(); ++k) {
      if (net0[k] <= 0.0) continue;
      const int gid =
          slot.sensors[static_cast<size_t>(offered[k])].sensor_id;
      merged[gid] = net0[k];  // newest observation wins
    }
    bench_.clear();
    bench_.reserve(merged.size());
    for (const auto& [gid, net] : merged) bench_.emplace_back(net, gid);
    // (net desc, gid asc): deterministic regardless of map order.
    std::sort(bench_.begin(), bench_.end(),
              [](const std::pair<double, int>& a,
                 const std::pair<double, int>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    if (bench_.size() > kRefineBenchSize) bench_.resize(kRefineBenchSize);
  }

  double best_utility = 0.0;
  int best_bucket = -1;
  std::vector<std::vector<int>> new_members(buckets_.size());
  std::vector<int> sorted_members;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    const double tau = Tau(bucket);
    for (MultiQuery* q : queries) q->ResetSelection();
    double cost_sum = 0.0;
    std::vector<int>& members = new_members[b];
    // Replay carried members against the new slot: departed sensors have
    // no slot index and drop out; repriced or moved members whose net is
    // no longer positive are evicted (hysteresis: retention only needs a
    // positive net, not the full threshold, so marginal price jitter does
    // not thrash the bucket).
    for (int gid : bucket.members) {
      const int idx = SlotIndexOf(slot, gid);
      if (idx < 0) continue;
      if (evaluator.EvaluateNet(idx) <= 0.0) continue;
      cost_sum += CommitWithProportionalPayments(queries, plan, slot, idx);
      members.push_back(gid);
    }
    sorted_members = members;
    std::sort(sorted_members.begin(), sorted_members.end());
    // Offer the stream in announcement (ascending-index) order.
    for (size_t k = 0; k < offered.size(); ++k) {
      if (net0[k] <= 0.0 || net0[k] < tau) continue;
      const int idx = offered[k];
      const int gid = slot.sensors[static_cast<size_t>(idx)].sensor_id;
      if (std::binary_search(sorted_members.begin(), sorted_members.end(),
                             gid)) {
        continue;
      }
      const double net = evaluator.EvaluateNet(idx);
      if (net <= 0.0 || net < tau) continue;
      cost_sum += CommitWithProportionalPayments(queries, plan, slot, idx);
      members.push_back(gid);
    }
    double value = 0.0;
    for (const MultiQuery* q : queries) value += q->CurrentValue();
    const double utility = value - cost_sum;
    // Strict >: ties go to the higher-threshold (cheaper) bucket.
    if (best_bucket < 0 || utility > best_utility) {
      best_utility = utility;
      best_bucket = static_cast<int>(b);
    }
  }
  for (size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b].members = std::move(new_members[b]);
  }

  // Commit the winning bucket for real: replaying its acceptance sequence
  // reproduces its selection state and payments exactly.
  for (MultiQuery* q : queries) q->ResetSelection();
  winner_members_.clear();
  std::vector<int> winner_sel;
  double winner_cost = 0.0;
  if (best_bucket >= 0) {
    for (int gid : buckets_[static_cast<size_t>(best_bucket)].members) {
      const int idx = SlotIndexOf(slot, gid);
      if (idx < 0) continue;
      winner_cost += CommitWithProportionalPayments(queries, plan, slot, idx);
      winner_sel.push_back(idx);
    }
  }
  double winner_value = 0.0;
  for (const MultiQuery* q : queries) winner_value += q->CurrentValue();

  // Refinement pass (ApproxParams::sieve_refine): the winner's single
  // pass both misses late value (a high threshold rejected a sensor
  // whose marginal is large against the final selection) and
  // over-commits (the mean-quality factor of the aggregate valuation is
  // non-submodular, so accept-any-positive dilutes). An add-only pass
  // on top of the winner cannot fix the second failure, so the
  // refinement runs CELF-style greedy rounds FROM SCRATCH over a
  // population-independent pool — the buckets' members plus the bench
  // of top singleton-net candidates — and keeps whichever selection,
  // winner replay or refined, realizes the higher utility. Realized
  // utility climbs from the single-pass ~0.5x of exact to >= 0.8x at
  // >= 20x speedup (the fig13 gate floors).
  bool use_refined = false;
  std::vector<int> refined_sel;
  double refined_cost = 0.0;
  if (slot.approx.sieve_refine && best_bucket >= 0) {
    std::vector<int> pool;
    for (const Bucket& bucket : buckets_) {
      for (int gid : bucket.members) {
        const int idx = SlotIndexOf(slot, gid);
        if (idx >= 0) pool.push_back(idx);
      }
    }
    for (const auto& [net, gid] : bench_) {
      const int idx = SlotIndexOf(slot, gid);
      if (idx >= 0) pool.push_back(idx);
    }
    {
      // Exploration sample (see kRefineSampleSize). Seeded from the
      // slot seed the engine stamps (pinned on replay), xor-shifted so
      // the stream is independent of stochastic greedy's — the sample,
      // and hence the whole refinement, is bit-reproducible.
      const std::span<const int> scan = plan.ScanSensors();
      const size_t sample = std::min(kRefineSampleSize, scan.size());
      if (sample > 0) {
        Rng rng(ApproxSlotSeed(slot.approx, slot.time) ^
                0x51E7EBE7C4ULL);
        std::vector<int> scratch(scan.begin(), scan.end());
        for (size_t i = 0; i < sample; ++i) {
          const size_t j =
              i + static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(scratch.size() - i) - 1));
          std::swap(scratch[i], scratch[j]);
          pool.push_back(scratch[i]);
        }
      }
    }
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

    for (MultiQuery* q : queries) q->ResetSelection();
    // CELF over the pool: one batched fill, then only stale heap fronts
    // re-evaluate. `stamp` is the round the cached net was computed in;
    // a fresh front commits. Ordering (net desc, idx asc) reproduces
    // the eager loop's strict-> lowest-index tie-break; everything runs
    // on one thread, so the pass is deterministic. The mean-quality
    // factor's mild non-submodularity carries the same caveat as the
    // CELF engine: a stale cache can under-rank a marginal that grew —
    // Theorem 1's payment properties are unaffected.
    struct HeapEntry {
      double net;
      int idx;
      int stamp;
    };
    std::vector<double> fill(pool.size());
    evaluator.EvaluateNets(pool, fill.data());
    // Bench refresh: the fill just computed every pool sensor's
    // singleton net against the CURRENT queries — the ranking the cap
    // eviction should use (the net0-based merge above ranks arrivals by
    // whatever slot they streamed in). Sampled winners earn their seat
    // here; sensors whose relevance moved away with the queries age
    // out.
    bench_.clear();
    bench_.reserve(pool.size());
    for (size_t k = 0; k < pool.size(); ++k) {
      if (fill[k] <= 0.0) continue;
      bench_.emplace_back(
          fill[k], slot.sensors[static_cast<size_t>(pool[k])].sensor_id);
    }
    std::sort(bench_.begin(), bench_.end(),
              [](const std::pair<double, int>& a,
                 const std::pair<double, int>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    if (bench_.size() > kRefineBenchSize) bench_.resize(kRefineBenchSize);
    const auto worse = [](const HeapEntry& a, const HeapEntry& b) {
      if (a.net != b.net) return a.net < b.net;
      return a.idx > b.idx;
    };
    std::vector<HeapEntry> heap;
    heap.reserve(pool.size());
    for (size_t k = 0; k < pool.size(); ++k) {
      if (fill[k] > 0.0) heap.push_back(HeapEntry{fill[k], pool[k], 0});
    }
    std::make_heap(heap.begin(), heap.end(), worse);
    int round = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      HeapEntry top = heap.back();
      heap.pop_back();
      if (top.net <= 0.0) break;
      if (top.stamp == round) {
        refined_cost +=
            CommitWithProportionalPayments(queries, plan, slot, top.idx);
        refined_sel.push_back(top.idx);
        ++round;
        continue;
      }
      top.net = evaluator.EvaluateNet(top.idx);
      top.stamp = round;
      if (top.net <= 0.0) continue;  // marginals only shrink (modulo caveat)
      heap.push_back(top);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
    double refined_value = 0.0;
    for (const MultiQuery* q : queries) refined_value += q->CurrentValue();
    use_refined = refined_value - refined_cost > winner_value - winner_cost;
    if (!use_refined) {
      // Re-commit the winner so the queries' selection/payment state
      // matches the returned result (SlotServer charges TotalPayment
      // from the queries, not from the result).
      for (MultiQuery* q : queries) q->ResetSelection();
      winner_cost = 0.0;
      for (int idx : winner_sel) {
        winner_cost += CommitWithProportionalPayments(queries, plan, slot, idx);
      }
    }
  }
  const std::vector<int>& final_sel = use_refined ? refined_sel : winner_sel;
  result.total_cost = use_refined ? refined_cost : winner_cost;
  result.selected_sensors = final_sel;
  for (int idx : final_sel) {
    winner_members_.push_back(slot.sensors[static_cast<size_t>(idx)].sensor_id);
  }

  for (const MultiQuery* q : queries) result.total_value += q->CurrentValue();
  result.valuation_calls = TotalValuationCalls(queries) - calls_before;
  initialized_ = true;
  return result;
}

SelectionResult SieveStreamingSensorSelection(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<double>* cost_scale) {
  SieveStreamingScheduler scheduler(slot.approx);
  return scheduler.SelectFull(queries, slot, cost_scale);
}

}  // namespace psens
