#include "core/multi_sensor_point_query.h"

#include <algorithm>

#include "index/spatial_index.h"

namespace psens {

const std::vector<int>* MultiSensorPointQuery::CandidateSensors() const {
  if (slot_->index == nullptr) return nullptr;
  if (!candidates_ready_) {
    slot_->index->RangeQuery(params_.location, slot_->dmax, &candidates_);
    candidates_ready_ = true;
    if (slot_->SlabsSynced()) {
      cand_theta_.resize(candidates_.size());
      for (size_t j = 0; j < candidates_.size(); ++j) {
        cand_theta_[j] = QualityFromSlabs(candidates_[j]);
      }
      cand_theta_ready_ = true;
    }
  }
  return &candidates_;
}

double MultiSensorPointQuery::Quality(int sensor) const {
  const double theta = SlotQuality(slot_->sensors[sensor], params_.location,
                                   slot_->dmax);
  return theta >= params_.theta_min ? theta : 0.0;
}

double MultiSensorPointQuery::QualityFromSlabs(int sensor) const {
  const SlotSlabs& sl = slot_->slabs;
  const size_t s = static_cast<size_t>(sensor);
  const double theta = ReadingQuality(
      sl.inaccuracy[s], sl.trust[s],
      Distance(Point{sl.x[s], sl.y[s]}, params_.location), slot_->dmax);
  return theta >= params_.theta_min ? theta : 0.0;
}

double MultiSensorPointQuery::ValueFromQualities(
    std::vector<double> qualities) const {
  if (params_.redundancy <= 0) return 0.0;
  std::sort(qualities.begin(), qualities.end(), std::greater<double>());
  const size_t k = static_cast<size_t>(params_.redundancy);
  double sum = 0.0;
  for (size_t i = 0; i < qualities.size() && i < k; ++i) sum += qualities[i];
  return params_.budget * sum / static_cast<double>(params_.redundancy);
}

double MultiSensorPointQuery::MarginalValue(int sensor) const {
  ++valuation_calls_;
  const double theta = Quality(sensor);
  if (theta <= 0.0) return 0.0;
  std::vector<double> with = qualities_;
  with.push_back(theta);
  return ValueFromQualities(std::move(with)) - current_value_;
}

void MultiSensorPointQuery::MarginalValuesUncounted(
    std::span<const int> sensors, std::span<double> out) const {
  if (sensors.empty()) return;
  // Probe-quality resolver: cached candidate theta when warm (the pruned
  // engines probe ascending subsequences of the candidate list), else the
  // slab kernel, else the scalar reference. All three compute the same
  // ReadingQuality on the same inputs — bit-identical.
  const bool slabs = slot_->SlabsSynced();
  size_t cj = 0;
  const size_t cm = candidates_.size();
  const auto probe_quality = [&](int s) -> double {
    if (cand_theta_ready_) {
      while (cj < cm && candidates_[cj] < s) ++cj;
      if (cj < cm && candidates_[cj] == s) return cand_theta_[cj++];
    }
    return slabs ? QualityFromSlabs(s) : Quality(s);
  };
  if (params_.redundancy <= 0) {
    // ValueFromQualities is identically zero; mirror the scalar branch
    // structure exactly (theta <= 0 probes return a literal 0).
    for (size_t i = 0; i < sensors.size(); ++i) {
      out[i] = probe_quality(sensors[i]) <= 0.0 ? 0.0 : -current_value_;
    }
    return;
  }
  batch_sorted_ = qualities_;
  std::sort(batch_sorted_.begin(), batch_sorted_.end(), std::greater<double>());
  const size_t k = static_cast<size_t>(params_.redundancy);
  for (size_t i = 0; i < sensors.size(); ++i) {
    const double theta = probe_quality(sensors[i]);
    if (theta <= 0.0) {
      out[i] = 0.0;
      continue;
    }
    // Top-k sum of {sorted qualities} + theta, accumulated in descending
    // order — the exact value sequence (ties included: equal values are
    // interchangeable) the scalar path sums after its fresh sort.
    double sum = 0.0;
    size_t taken = 0;
    size_t j = 0;
    bool theta_used = false;
    while (taken < k && (j < batch_sorted_.size() || !theta_used)) {
      if (!theta_used && (j >= batch_sorted_.size() || theta >= batch_sorted_[j])) {
        sum += theta;
        theta_used = true;
      } else {
        sum += batch_sorted_[j++];
      }
      ++taken;
    }
    out[i] = params_.budget * sum / static_cast<double>(params_.redundancy) -
             current_value_;
  }
}

void MultiSensorPointQuery::Commit(int sensor, double payment) {
  const double theta = Quality(sensor);
  if (theta > 0.0) {
    qualities_.push_back(theta);
    current_value_ = ValueFromQualities(qualities_);
  }
  selected_.push_back(sensor);
  total_payment_ += payment;
}

int MultiSensorPointQuery::RemainingReadings() const {
  const int have = static_cast<int>(qualities_.size());
  return std::max(0, params_.redundancy - have);
}

}  // namespace psens
