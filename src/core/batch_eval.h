#ifndef PSENS_CORE_BATCH_EVAL_H_
#define PSENS_CORE_BATCH_EVAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/arena.h"
#include "core/candidate_pruning.h"
#include "core/multi_query.h"
#include "core/slot.h"

namespace psens {

class ThreadPool;

/// Batched, optionally parallel evaluation of Algorithm 1 net gains
///
///   net(s) = sum_{q interested in s, delta_{q,s} > 0} delta_{q,s} - c_s
///
/// for one joint-selection run. Both greedy engines (the eager rescan in
/// greedy.cc and the CELF heap in lazy_greedy.cc) funnel their valuation
/// sweeps through this class, which restructures the reference
/// sensor-major scalar loop into per-query MarginalValuesUncounted sweeps
/// without changing a single observable bit:
///
///   - the (sensor, query) pairs evaluated are exactly the reference
///     loop's pairs, so every query's ValuationCalls() total is unchanged
///     (accounting is deferred per thread and merged once per batch via
///     AddValuationCalls — never mutated from workers);
///   - each sensor's positive-marginal sum accumulates in ascending query
///     order as a single floating-point chain, the reference order, so
///     nets are bit-identical;
///   - parallel runs shard the delta *computation* by query over the
///     slot's ThreadPool (deltas are pure per-pair functions written to
///     disjoint slices) and keep the reduction sequential, so any thread
///     count — including none — produces bit-identical nets, selections,
///     and payments (tests/streaming_equivalence_test.cc pins this).
///
/// Parallel sharding requires every query to declare
/// ThreadSafeBatchValuation(); otherwise the evaluator silently runs the
/// same stages serially.
class NetEvaluator {
 public:
  /// `pool` may be null (serial). All referenced objects must outlive the
  /// evaluator; `cost_scale` may be null (unscaled costs).
  NetEvaluator(const std::vector<MultiQuery*>& queries,
               const CandidatePlan& plan, const SlotContext& slot,
               const std::vector<double>* cost_scale, ThreadPool* pool);

  /// Fills net[k] with the net gain of sensors[k] against the current
  /// selections (`net` must hold sensors.size() entries — callers size
  /// their own, usually arena-backed, storage). `sensors` must be
  /// ascending and duplicate-free (the engines pass remaining scan
  /// sensors). Valuation-call accounting for every evaluated pair is
  /// merged into the queries before returning.
  void EvaluateNets(std::span<const int> sensors, double* net);

  /// Net gain of a single sensor — the CELF stale-front re-evaluation.
  /// Serial reference semantics; when the sensor interests many queries
  /// and a pool is available, the per-query deltas are computed in
  /// parallel and reduced sequentially in ascending query order.
  double EvaluateNet(int sensor);

  /// True when EvaluateNets/EvaluateNet shard work across the pool.
  bool parallel() const { return parallel_; }

 private:
  double ScaledCost(int sensor) const;
  /// Stage 1 kernel: evaluates queries [begin, end) of the window starting
  /// at `window_begin` against the current eval set, writing (sensor,
  /// delta) pairs into each query's slice and the per-query pair count
  /// into counts_.
  void SweepQueries(int window_begin, int begin, int end);

  const std::vector<MultiQuery*>& queries_;
  const CandidatePlan& plan_;
  const SlotContext& slot_;
  const std::vector<double>* cost_scale_;
  ThreadPool* pool_;
  bool parallel_ = false;

  /// Announced-cost column of the slot's SoA slabs when synced (same bits
  /// as the AoS field, contiguous loads in stage 3), else null.
  const double* cost_column_ = nullptr;

  /// Pair buffer in query-major CSR layout: query q's slice starts at
  /// offsets_[q] - offsets_[window begin] within the current window's
  /// buffer and holds counts_[q] live entries per round. Queries are
  /// grouped into windows whose combined slice capacity is bounded
  /// (kMaxPairBufferEntries), so dense plans — every query interested in
  /// every sensor, e.g. unindexed slots — never materialize the full
  /// |Q| x n cross product; windows are swept (and their deltas reduced)
  /// in ascending query order, preserving the reference accumulation
  /// order exactly.
  ///
  /// All slot-lifetime scratch below draws from SlotContext::arena when
  /// the engine attached one (reset at the next BeginSlot — the evaluator
  /// never outlives its slot) and owns heap storage otherwise.
  ArenaBuffer<int64_t> offsets_;
  /// Window boundaries: queries [windows_[w], windows_[w+1]) share one
  /// buffer fill.
  std::vector<int> windows_;
  ArenaBuffer<int> pair_sensor_;
  ArenaBuffer<double> pair_delta_;
  ArenaBuffer<int64_t> counts_;
  /// Eval-set membership (by sensor id) for the current EvaluateNets call.
  ArenaBuffer<char> mark_;
  /// Per-sensor positive-marginal accumulator (zeroed between rounds).
  ArenaBuffer<double> positive_sum_;
  /// Scratch for EvaluateNet's sharded single-sensor path (lazily grown
  /// per call, so it stays an owned vector).
  std::vector<double> single_deltas_;
};

}  // namespace psens

#endif  // PSENS_CORE_BATCH_EVAL_H_
