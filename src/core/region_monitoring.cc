#include "core/region_monitoring.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "gp/gaussian_process.h"
#include "index/spatial_index.h"

namespace psens {

double SharingWeight(int k) {
  if (k <= 1) return 1.0;
  if (k < 10) return (11.0 - static_cast<double>(k)) / 10.0;
  return 0.1;
}

RegionMonitoringManager::RegionMonitoringManager(
    std::shared_ptr<const Kernel> spatial_kernel, const Config& config)
    : spatial_kernel_(spatial_kernel),
      st_kernel_(spatial_kernel, config.temporal_length),
      config_(config) {}

void RegionMonitoringManager::AddQuery(const RegionMonitoringQuery& query) {
  queries_.push_back(query);
  RegionMonitoringQuery& q = queries_.back();
  q.samples.clear();
  q.qualities.clear();
  q.spent = 0.0;
  q.value = 0.0;
  q.requested = 0.0;
}

std::vector<STPoint> RegionMonitoringManager::RecentSamples(
    const RegionMonitoringQuery& query, int t) const {
  std::vector<STPoint> recent;
  for (const STPoint& s : query.samples) {
    if (t - s.time <= static_cast<double>(config_.temporal_window)) {
      recent.push_back(s);
    }
  }
  return recent;
}

double RegionMonitoringManager::SlotValue(const RegionMonitoringQuery& query, int t,
                                          const std::vector<STPoint>& conditioning,
                                          double mean_quality) const {
  std::vector<Point> grid = GridTargets(query.region, config_.target_step);
  if (grid.empty()) return 0.0;
  std::vector<STPoint> targets;
  targets.reserve(grid.size());
  for (const Point& p : grid) targets.push_back(STPoint{p, static_cast<double>(t)});
  const double prior =
      static_cast<double>(targets.size()) * st_kernel_.Variance();
  if (prior <= 0.0) return 0.0;
  const double reduction =
      VarianceReductionST(st_kernel_, config_.noise_variance, targets, conditioning);
  const double share = query.budget / static_cast<double>(query.DurationSlots());
  return share * (reduction / prior) * mean_quality;
}

std::vector<double> RegionMonitoringManager::CostScale(const SlotContext& slot) const {
  std::vector<double> scale(slot.sensors.size(), 1.0);
  if (!config_.cost_weighting) return scale;
  // k = number of active query regions containing each sensor. On indexed
  // slots this is one rect probe per query instead of a sensors x queries
  // scan; the counts — and so the Eq. (18) weights — are identical.
  std::vector<int> counts(slot.sensors.size(), 0);
  if (slot.index != nullptr) {
    std::vector<int> in_region;
    for (const RegionMonitoringQuery& q : queries_) {
      if (!q.ActiveAt(slot.time)) continue;
      slot.index->RectQuery(q.region, &in_region);
      for (int si : in_region) ++counts[si];
    }
  } else if (slot.SlabsSynced()) {
    // Unindexed hot path over the coordinate slabs: a branch-light
    // contains test per (query, sensor) in query-major order. Identical
    // counts to the AoS scan below — Contains is the same comparison
    // chain, only the operand loads changed.
    const size_t n = slot.sensors.size();
    const double* xs = slot.slabs.x.data();
    const double* ys = slot.slabs.y.data();
    for (const RegionMonitoringQuery& q : queries_) {
      if (!q.ActiveAt(slot.time)) continue;
      const Rect r = q.region;
      for (size_t si = 0; si < n; ++si) {
        const bool in = xs[si] >= r.x_min && xs[si] <= r.x_max &&
                        ys[si] >= r.y_min && ys[si] <= r.y_max;
        counts[si] += in ? 1 : 0;
      }
    }
  } else {
    for (const SlotSensor& s : slot.sensors) {
      for (const RegionMonitoringQuery& q : queries_) {
        if (q.ActiveAt(slot.time) && q.region.Contains(s.location)) ++counts[s.index];
      }
    }
  }
  for (size_t si = 0; si < counts.size(); ++si) {
    if (counts[si] > 0) scale[si] = SharingWeight(counts[si]);
  }
  return scale;
}

std::vector<int> RegionMonitoringManager::SelectSamplingPoints(
    const RegionMonitoringQuery& query, const SlotContext& slot,
    const std::vector<int>& in_region, const std::vector<double>& cost_scale,
    double budget) const {
  std::vector<int> chosen;
  if (in_region.empty() || budget <= 0.0) return chosen;
  const int tc = slot.time;
  const int t2 = query.t2;
  const std::vector<Point> targets = GridTargets(query.region, config_.target_step);
  if (targets.empty()) return chosen;

  // Kernel-support candidate pruning: a candidate farther from the target
  // region than the spatial kernel's support radius has (numerically) zero
  // covariance with every target, hence zero variance-reduction gain. The
  // radius is conservative — in-region candidates sit at distance 0 and
  // always survive, so with the in-region lists CreatePointQueries passes
  // this never prunes; it guards callers (tests, future sharing schemes)
  // that offer wider candidate sets — and the debug cross-check below
  // asserts that nothing with nonzero marginal gain is ever dropped.
  const double support =
      spatial_kernel_->SupportRadius(1e-12 * spatial_kernel_->Variance());
  std::vector<int> candidates;
  candidates.reserve(in_region.size());
#ifndef NDEBUG
  std::vector<int> dropped;
#endif
  for (int si : in_region) {
    const Point& loc = slot.sensors[si].location;
    if (Distance(loc, query.region.Clamp(loc)) <= support) {
      candidates.push_back(si);
    } else {
#ifndef NDEBUG
      dropped.push_back(si);
#endif
    }
  }

  // One spatial selector per future slot (Algorithm 4 lines 2, 5-9): the
  // sets S_t grow independently; only S_tc is returned.
  std::vector<IncrementalGpSelector> selectors;
  selectors.reserve(static_cast<size_t>(t2 - tc + 1));
  for (int t = tc; t <= t2; ++t) {
    selectors.emplace_back(spatial_kernel_, config_.noise_variance, targets);
  }
#ifndef NDEBUG
  // Cross-check against the fresh selector (empty conditioning set, where
  // gains are largest): IncrementalGpSelector::MarginalGain must agree
  // that every pruned candidate is worthless.
  for (int si : dropped) {
    assert(selectors[0].MarginalGain(slot.sensors[si].location) <=
               1e-6 * spatial_kernel_->Variance() &&
           "kernel-support pruning dropped a sensor with nonzero marginal gain");
  }
#endif
  // Membership of each (sensor, t) pair.
  std::vector<std::vector<char>> member(selectors.size(),
                                        std::vector<char>(slot.sensors.size(), 0));

  const double denom = static_cast<double>(t2 - query.t1 + 1);
  double cost_so_far = 0.0;
  // Gain table (selector x candidate position) filled by batched sweeps:
  // each selector probes all its non-member candidates through one
  // MarginalGains call — consecutive probes of the *same* selector, so
  // its Cholesky rows and per-target whitened vectors stay cached, where
  // the reference (candidate-outer, selector-inner) loop interleaved
  // selectors per probe — then the argmax below replays the reference
  // comparison order on the precomputed values: the same gains compared
  // in the same order means the identical pick, tie-breaks included.
  // MarginalGain is
  // a pure function of the selector's conditioning set and only the
  // winning slot's selector grows per round, so after the first fill only
  // that selector's row is re-swept — every other row's cached gains are
  // bit-identical to a recomputation.
  std::vector<std::vector<double>> gains(selectors.size(),
                                         std::vector<double>(candidates.size()));
  std::vector<Point> batch_points;
  std::vector<double> batch_gains;
  std::vector<size_t> batch_pos;
  const auto refresh_row = [&](size_t ti) {
    batch_points.clear();
    batch_pos.clear();
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      const int si = candidates[ci];
      if (member[ti][si]) continue;
      batch_points.push_back(slot.sensors[si].location);
      batch_pos.push_back(ci);
    }
    batch_gains.resize(batch_points.size());
    selectors[ti].MarginalGains(batch_points, batch_gains);
    for (size_t j = 0; j < batch_pos.size(); ++j) {
      gains[ti][batch_pos[j]] = batch_gains[j];
    }
  };
  for (size_t ti = 0; ti < selectors.size(); ++ti) refresh_row(ti);
  while (cost_so_far < budget) {
    int best_sensor = -1;
    int best_t = -1;
    double best_delta = 0.0;
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      const int si = candidates[ci];
      const SlotSensor& s = slot.sensors[si];
      const double theta = (1.0 - s.inaccuracy) * s.trust;
      for (size_t ti = 0; ti < selectors.size(); ++ti) {
        if (member[ti][si]) continue;
        const int t = tc + static_cast<int>(ti);
        // Time-preference factor: the paper's (t2 - t)/(t2 - t1) vanishes
        // at t = t2, which would starve the final slot; we use the
        // (t2 - t + 1)/(duration) variant that keeps the same monotone
        // preference for the present.
        const double time_factor = static_cast<double>(t2 - t + 1) / denom;
        const double delta = gains[ti][ci] * theta * time_factor;
        if (delta > best_delta) {
          best_delta = delta;
          best_sensor = si;
          best_t = static_cast<int>(ti);
        }
      }
    }
    if (best_sensor < 0 || best_delta <= 1e-12) break;
    selectors[static_cast<size_t>(best_t)].Add(slot.sensors[best_sensor].location);
    member[static_cast<size_t>(best_t)][best_sensor] = 1;
    cost_so_far += slot.sensors[best_sensor].cost * cost_scale[best_sensor];
    if (best_t == 0) chosen.push_back(best_sensor);
    // Re-sweep the one row whose conditioning set grew — unless the
    // budget is spent and no further round will read it.
    if (cost_so_far < budget) refresh_row(static_cast<size_t>(best_t));
  }
  return chosen;
}

std::vector<PointQuery> RegionMonitoringManager::CreatePointQueries(
    const SlotContext& slot) {
  std::vector<PointQuery> created;
  planned_.assign(queries_.size(), {});
  expected_cost_.assign(queries_.size(), 0.0);
  const std::vector<double> cost_scale = CostScale(slot);

  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    RegionMonitoringQuery& q = queries_[qi];
    if (!q.ActiveAt(slot.time)) continue;
    const double remaining = q.budget - q.spent;
    if (remaining <= 0.0) continue;
    std::vector<int> in_region;
    if (slot.index != nullptr) {
      slot.index->RectQuery(q.region, &in_region);
    } else {
      for (const SlotSensor& s : slot.sensors) {
        if (q.region.Contains(s.location)) in_region.push_back(s.index);
      }
    }
    const std::vector<int> planned =
        SelectSamplingPoints(q, slot, in_region, cost_scale, remaining);
    planned_[qi] = planned;
    double expected = 0.0;
    for (int si : planned) expected += slot.sensors[si].cost;
    expected_cost_[qi] = expected;

    // Point query per planned sensor, valued at its marginal contribution
    // v_pq = v_q(S_t) - v_q(S_t \ {s}) (CreatePointQueries line 6).
    const std::vector<STPoint> recent = RecentSamples(q, slot.time);
    std::vector<STPoint> full = recent;
    for (int si : planned) {
      full.push_back(STPoint{slot.sensors[si].location,
                             static_cast<double>(slot.time)});
    }
    const double full_value = SlotValue(q, slot.time, full, 1.0);
    for (int si : planned) {
      std::vector<STPoint> without = recent;
      for (int sj : planned) {
        if (sj == si) continue;
        without.push_back(STPoint{slot.sensors[sj].location,
                                  static_cast<double>(slot.time)});
      }
      const double marginal = full_value - SlotValue(q, slot.time, without, 1.0);
      if (marginal <= 0.0) continue;
      PointQuery pq;
      pq.id = q.id;
      pq.location = slot.sensors[si].location;
      pq.budget = marginal;
      pq.theta_min = config_.theta_min;
      pq.parent = static_cast<int>(qi);
      created.push_back(pq);
    }
  }
  return created;
}

RegionMonitoringManager::SlotOutcome RegionMonitoringManager::ApplyResults(
    const SlotContext& slot, const std::vector<PointQuery>& created,
    const std::vector<PointAssignment>& assignments,
    const std::vector<int>& other_selected) {
  SlotOutcome outcome;
  const int t = slot.time;

  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    RegionMonitoringQuery& q = queries_[qi];
    if (!q.ActiveAt(t)) continue;

    // Collect this query's satisfied point-query outcomes.
    std::vector<STPoint> new_samples;
    std::vector<double> new_qualities;
    double paid = 0.0;
    for (size_t i = 0; i < created.size() && i < assignments.size(); ++i) {
      if (created[i].parent != static_cast<int>(qi)) continue;
      const PointAssignment& a = assignments[i];
      if (!a.satisfied()) continue;  // unsatisfied planned sample: dropped
      new_samples.push_back(
          STPoint{slot.sensors[a.sensor].location, static_cast<double>(t)});
      new_qualities.push_back(a.quality);
      paid += a.payment;
    }

    const std::vector<STPoint> recent = RecentSamples(q, t);
    const double base_value = SlotValue(q, t, recent, 1.0);

    // Opportunistic sharing (ApplyResults line 4): contribute up to
    // alpha (C_t - C-hat_t) toward sensors selected for other queries that
    // fall inside this region, gaining their samples.
    double allowance = 0.0;
    if (config_.share_extra_sensors) {
      allowance = config_.alpha * std::max(0.0, expected_cost_[qi] - paid);
    }
    if (allowance > 0.0) {
      for (int si : other_selected) {
        if (allowance <= 0.0) break;
        const SlotSensor& s = slot.sensors[si];
        if (!q.region.Contains(s.location)) continue;
        bool duplicate = false;
        for (const STPoint& ns : new_samples) {
          if (ns.location == s.location) duplicate = true;
        }
        if (duplicate) continue;
        // Marginal value of this extra sample given what we have so far.
        std::vector<STPoint> cond = recent;
        cond.insert(cond.end(), new_samples.begin(), new_samples.end());
        const double before = SlotValue(q, t, cond, 1.0);
        cond.push_back(STPoint{s.location, static_cast<double>(t)});
        const double gain = SlotValue(q, t, cond, 1.0) - before;
        if (gain <= 1e-9) continue;
        const double contribution = std::min({allowance, s.cost, gain});
        allowance -= contribution;
        paid += contribution;
        outcome.contribution += contribution;
        new_samples.push_back(STPoint{s.location, static_cast<double>(t)});
        new_qualities.push_back((1.0 - s.inaccuracy) * s.trust);
      }
    }

    // Requested value this slot: what the plan would have delivered with
    // perfect-quality readings (denominator of the quality metric).
    std::vector<STPoint> planned_cond = recent;
    for (int si : planned_[qi]) {
      planned_cond.push_back(
          STPoint{slot.sensors[si].location, static_cast<double>(t)});
    }
    const double requested_gain =
        SlotValue(q, t, planned_cond, 1.0) - base_value;

    double value_gain = 0.0;
    if (!new_samples.empty()) {
      double quality_sum = 0.0;
      for (double quality : new_qualities) quality_sum += quality;
      const double mean_quality =
          quality_sum / static_cast<double>(new_qualities.size());
      std::vector<STPoint> achieved = recent;
      achieved.insert(achieved.end(), new_samples.begin(), new_samples.end());
      value_gain = (SlotValue(q, t, achieved, 1.0) - base_value) * mean_quality;
    }

    q.samples.insert(q.samples.end(), new_samples.begin(), new_samples.end());
    q.qualities.insert(q.qualities.end(), new_qualities.begin(), new_qualities.end());
    q.spent += paid;
    q.value += value_gain;
    q.requested += std::max(0.0, requested_gain);
    outcome.value_gain += value_gain;
  }
  return outcome;
}

void RegionMonitoringManager::RemoveExpired(int t) {
  std::vector<RegionMonitoringQuery> alive;
  alive.reserve(queries_.size());
  for (RegionMonitoringQuery& q : queries_) {
    if (q.t2 < t) {
      ++num_completed_;
      if (q.requested > 0.0) completed_quality_sum_ += q.value / q.requested;
      else if (q.value > 0.0) completed_quality_sum_ += 1.0;
    } else {
      alive.push_back(std::move(q));
    }
  }
  queries_ = std::move(alive);
}

double RegionMonitoringManager::MeanCompletedQuality() const {
  return num_completed_ > 0 ? completed_quality_sum_ / num_completed_ : 0.0;
}

}  // namespace psens
