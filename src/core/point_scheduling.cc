#include "core/point_scheduling.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>

#include "common/rng.h"
#include "index/spatial_index.h"

namespace psens {
namespace {

/// Fills per-query assignment records and Eq. (11) payments given the
/// location -> sensor assignment of a facility-location solution.
PointScheduleResult MakeResult(const std::vector<PointQuery>& queries,
                               const SlotContext& slot,
                               const std::vector<int>& location_of_query,
                               const FacilityLocationSolution& solution) {
  PointScheduleResult result;
  result.assignments.resize(queries.size());
  result.proven_optimal = solution.proven_optimal;

  // Total valuation each selected sensor yields across its assigned
  // locations (the denominator of Eq. 11).
  std::vector<double> sensor_total_value(slot.sensors.size(), 0.0);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const int loc = location_of_query[qi];
    const int sensor = loc >= 0 ? solution.assignment[loc] : -1;
    if (sensor < 0) continue;
    sensor_total_value[sensor] +=
        PointQueryValue(queries[qi], slot.sensors[sensor], slot.dmax);
  }

  for (int i = 0; i < static_cast<int>(slot.sensors.size()); ++i) {
    if (i < static_cast<int>(solution.open.size()) && solution.open[i] &&
        sensor_total_value[i] > 0.0) {
      result.selected_sensors.push_back(i);
      result.total_cost += slot.sensors[i].cost;
    }
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    PointAssignment& a = result.assignments[qi];
    a.query = static_cast<int>(qi);
    const int loc = location_of_query[qi];
    const int sensor = loc >= 0 ? solution.assignment[loc] : -1;
    if (sensor < 0) continue;
    const double value = PointQueryValue(queries[qi], slot.sensors[sensor], slot.dmax);
    if (value <= 0.0) continue;  // co-located query below its theta_min
    a.sensor = sensor;
    a.value = value;
    a.quality = SlotQuality(slot.sensors[sensor], queries[qi].location, slot.dmax);
    // Eq. (11): pi = v_q(s) * c_s / (total valuation yielded by s).
    a.payment = value * slot.sensors[sensor].cost / sensor_total_value[sensor];
    result.total_value += value;
  }
  return result;
}

PointScheduleResult RunBaseline(const std::vector<PointQuery>& queries,
                                const SlotContext& slot) {
  PointScheduleResult result;
  result.assignments.resize(queries.size());
  std::vector<double> remaining_cost(slot.sensors.size());
  for (size_t i = 0; i < slot.sensors.size(); ++i) {
    remaining_cost[i] = slot.sensors[i].cost;
  }
  // A sensor already selected for an earlier query also answers any later
  // query at the same location for free; we implement the more general
  // rule from Section 4.3 (cost of selected sensors drops to zero).
  std::vector<char> selected(slot.sensors.size(), 0);
  // On indexed slots only sensors within dmax of the query can have
  // positive value (Eq. 4); the range probe returns them ascending, so the
  // arg-max tie-breaks exactly like the full ascending scan.
  std::vector<int> all_sensors;
  if (slot.index == nullptr) {
    all_sensors.resize(slot.sensors.size());
    std::iota(all_sensors.begin(), all_sensors.end(), 0);
  }
  std::vector<int> candidates;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    PointAssignment& a = result.assignments[qi];
    a.query = static_cast<int>(qi);
    int best_sensor = -1;
    double best_utility = 0.0;
    double best_value = 0.0;
    if (slot.index != nullptr) {
      slot.index->RangeQuery(queries[qi].location, slot.dmax, &candidates);
    }
    const std::vector<int>& scan = slot.index != nullptr ? candidates : all_sensors;
    for (int si : scan) {
      const SlotSensor& s = slot.sensors[si];
      const double value = PointQueryValue(queries[qi], s, slot.dmax);
      if (value <= 0.0) continue;
      const double utility = value - remaining_cost[s.index];
      if (utility > best_utility) {
        best_utility = utility;
        best_sensor = s.index;
        best_value = value;
      }
    }
    if (best_sensor < 0) continue;
    a.sensor = best_sensor;
    a.value = best_value;
    a.quality = SlotQuality(slot.sensors[best_sensor], queries[qi].location, slot.dmax);
    a.payment = remaining_cost[best_sensor];  // first user pays the full price
    result.total_value += best_value;
    if (!selected[best_sensor]) {
      selected[best_sensor] = 1;
      result.selected_sensors.push_back(best_sensor);
      result.total_cost += slot.sensors[best_sensor].cost;
    }
    remaining_cost[best_sensor] = 0.0;
  }
  return result;
}

/// Local-search engine over a facility-location instance, maintaining
/// per-location best and second-best open coverers so add/remove gains are
/// O(coverage) per candidate.
class FacilityLocalSearch {
 public:
  FacilityLocalSearch(const FacilityLocationProblem& problem, double epsilon)
      : problem_(problem),
        epsilon_(epsilon),
        n_(problem.NumSensors()),
        covers_(problem.num_locations) {
    active_.resize(n_);
    for (int i = 0; i < n_; ++i) {
      for (const auto& [loc, v] : problem_.value[i]) {
        covers_[loc].emplace_back(i, v);
      }
      // A sensor covering nothing has AddGain = -open_cost <= 0 and can
      // never be opened; skipping it in every scan is exact and keeps the
      // search O(candidates) instead of O(population) on pruned problems
      // where most of a large slot covers no queried location.
      active_[i] = !problem_.value[i].empty() || problem_.open_cost[i] < 0.0;
    }
    Reset();
  }

  bool active(int i) const { return active_[i] != 0; }

  void Reset() {
    open_.assign(n_, 0);
    best1_value_.assign(problem_.num_locations, 0.0);
    best1_sensor_.assign(problem_.num_locations, -1);
    best2_value_.assign(problem_.num_locations, 0.0);
    objective_ = 0.0;
  }

  double objective() const { return objective_; }
  const std::vector<char>& open() const { return open_; }

  double AddGain(int i) const {
    double gain = -problem_.open_cost[i];
    for (const auto& [loc, v] : problem_.value[i]) {
      if (v > best1_value_[loc]) gain += v - best1_value_[loc];
    }
    return gain;
  }

  double RemoveGain(int i) const {
    double gain = problem_.open_cost[i];
    for (const auto& [loc, v] : problem_.value[i]) {
      (void)v;
      if (best1_sensor_[loc] == i) gain -= best1_value_[loc] - best2_value_[loc];
    }
    return gain;
  }

  void Open(int i) {
    objective_ += AddGain(i);
    open_[i] = 1;
    for (const auto& [loc, v] : problem_.value[i]) {
      if (v > best1_value_[loc]) {
        best2_value_[loc] = best1_value_[loc];
        best1_value_[loc] = v;
        best1_sensor_[loc] = i;
      } else if (v > best2_value_[loc]) {
        best2_value_[loc] = v;
      }
    }
  }

  void Close(int i) {
    objective_ += RemoveGain(i);
    open_[i] = 0;
    for (const auto& [loc, v] : problem_.value[i]) {
      (void)v;
      RecomputeLocation(loc);
    }
  }

  /// Runs improvement passes (adds then removes) until a local optimum.
  /// `order` is the candidate scan order; inactive sensors are filtered
  /// out once up front (they can never open), keeping each pass
  /// O(candidates) instead of O(population) on pruned problems.
  void RunToLocalOptimum(const std::vector<int>& order) {
    std::vector<int> scan;
    scan.reserve(order.size());
    for (int i : order) {
      if (active_[i]) scan.push_back(i);
    }
    bool improved = true;
    while (improved) {
      improved = false;
      for (int i : scan) {
        if (!open_[i] && AddGain(i) > epsilon_) {
          Open(i);
          improved = true;
        }
      }
      for (int i : scan) {
        if (open_[i] && RemoveGain(i) > epsilon_) {
          Close(i);
          improved = true;
        }
      }
    }
  }

 private:
  void RecomputeLocation(int loc) {
    double b1 = 0.0, b2 = 0.0;
    int s1 = -1;
    for (const auto& [sensor, v] : covers_[loc]) {
      if (!open_[sensor]) continue;
      if (v > b1) {
        b2 = b1;
        b1 = v;
        s1 = sensor;
      } else if (v > b2) {
        b2 = v;
      }
    }
    best1_value_[loc] = b1;
    best1_sensor_[loc] = s1;
    best2_value_[loc] = b2;
  }

  const FacilityLocationProblem& problem_;
  const double epsilon_;
  const int n_;
  std::vector<char> active_;
  std::vector<std::vector<std::pair<int, double>>> covers_;
  std::vector<char> open_;
  std::vector<double> best1_value_;
  std::vector<int> best1_sensor_;
  std::vector<double> best2_value_;
  double objective_ = 0.0;
};

}  // namespace

int PointScheduleResult::NumSatisfied() const {
  int count = 0;
  for (const PointAssignment& a : assignments) {
    if (a.satisfied()) ++count;
  }
  return count;
}

FacilityLocationProblem BuildPointProblem(const std::vector<PointQuery>& queries,
                                          const SlotContext& slot,
                                          std::vector<int>* location_of_query) {
  FacilityLocationProblem problem;
  std::map<std::pair<double, double>, int> location_index;
  std::vector<Point> locations;
  location_of_query->assign(queries.size(), -1);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Point& p = queries[qi].location;
    auto [it, inserted] =
        location_index.try_emplace({p.x, p.y}, static_cast<int>(locations.size()));
    if (inserted) locations.push_back(p);
    (*location_of_query)[qi] = it->second;
  }
  problem.num_locations = static_cast<int>(locations.size());
  problem.open_cost.resize(slot.sensors.size());
  problem.value.resize(slot.sensors.size());
  for (const SlotSensor& s : slot.sensors) problem.open_cost[s.index] = s.cost;

  // Queries grouped per location in arrival order, so each (location,
  // sensor) valuation sum accumulates in exactly the order the dense
  // query-major scan used.
  std::vector<std::vector<int>> queries_at(locations.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    queries_at[static_cast<size_t>((*location_of_query)[qi])].push_back(
        static_cast<int>(qi));
  }

  // v_l(s) = sum over queries at l of v_q(s) (Eq. 10 drops non-positive
  // entries: a sensor is simply never assigned where it yields nothing).
  // Only sensors within dmax of l can contribute (Eq. 4), so on indexed
  // slots each location values its range-probe candidates instead of the
  // whole population; candidates come back ascending, and locations are
  // processed in ascending order, so each sensor's sparse value list keeps
  // the reference (location-ascending) layout bit for bit.
  std::vector<int> all_sensors;
  if (slot.index == nullptr) {
    all_sensors.resize(slot.sensors.size());
    std::iota(all_sensors.begin(), all_sensors.end(), 0);
  }
  std::vector<int> candidates;
  std::vector<double> sums;
  for (size_t l = 0; l < locations.size(); ++l) {
    if (slot.index != nullptr) {
      slot.index->RangeQuery(locations[l], slot.dmax, &candidates);
    }
    const std::vector<int>& scan = slot.index != nullptr ? candidates : all_sensors;
    sums.assign(scan.size(), 0.0);
    for (int qi : queries_at[l]) {
      for (size_t k = 0; k < scan.size(); ++k) {
        const double v =
            PointQueryValue(queries[qi], slot.sensors[scan[k]], slot.dmax);
        if (v > 0.0) sums[k] += v;
      }
    }
    for (size_t k = 0; k < scan.size(); ++k) {
      if (sums[k] > 0.0) {
        problem.value[scan[k]].emplace_back(static_cast<int>(l), sums[k]);
      }
    }
  }
  return problem;
}

FacilityLocationSolution LocalSearchFacility(const FacilityLocationProblem& problem,
                                             double epsilon, bool randomized,
                                             uint64_t seed, int restarts) {
  const int n = problem.NumSensors();
  FacilityLocalSearch search(problem, epsilon);
  Rng rng(seed);

  std::vector<char> best_open(n, 0);
  double best_objective = 0.0;

  const int rounds = randomized ? std::max(1, restarts) : 1;
  for (int round = 0; round < rounds; ++round) {
    search.Reset();
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    if (randomized) {
      rng.Shuffle(order);
      // Random warm start: open a few random sensors with positive gain.
      // The Bernoulli draw stays first so the RNG stream is identical with
      // and without the inactive-sensor shortcut.
      for (int i : order) {
        if (rng.Bernoulli(0.25) && search.active(i) && search.AddGain(i) > 0.0) {
          search.Open(i);
        }
      }
    } else {
      // Deterministic variant starts from the best singleton, per Feige
      // et al.'s Local Search.
      int best_single = -1;
      double best_gain = epsilon;
      for (int i = 0; i < n; ++i) {
        if (!search.active(i)) continue;
        const double g = search.AddGain(i);
        if (g > best_gain) {
          best_gain = g;
          best_single = i;
        }
      }
      if (best_single >= 0) search.Open(best_single);
    }
    search.RunToLocalOptimum(order);

    // The 1/3-approximation returns max(u(W), u(S \ W)); u(empty) = 0 is
    // also a candidate.
    std::vector<char> complement(n, 0);
    for (int i = 0; i < n; ++i) complement[i] = search.open()[i] ? 0 : 1;
    const double complement_objective = EvaluateOpenSet(problem, complement);
    if (search.objective() > best_objective) {
      best_objective = search.objective();
      best_open = search.open();
    }
    if (complement_objective > best_objective) {
      best_objective = complement_objective;
      best_open = complement;
    }
  }

  FacilityLocationSolution solution;
  solution.open = best_open;
  solution.proven_optimal = false;
  solution.objective = EvaluateOpenSet(problem, best_open, &solution.assignment);
  return solution;
}

PointScheduleResult SchedulePointQueries(const std::vector<PointQuery>& queries,
                                         const SlotContext& slot,
                                         const PointSchedulingOptions& options) {
  if (options.scheduler == PointScheduler::kBaseline) {
    return RunBaseline(queries, slot);
  }
  std::vector<int> location_of_query;
  const FacilityLocationProblem problem =
      BuildPointProblem(queries, slot, &location_of_query);
  FacilityLocationSolution solution;
  switch (options.scheduler) {
    case PointScheduler::kOptimal: {
      // Warm-start the branch-and-bound with the local-search solution;
      // a near-optimal incumbent prunes most of the tree.
      const FacilityLocationSolution warm =
          LocalSearchFacility(problem, options.epsilon, false, options.seed, 1);
      FacilityLocationSolver solver(options.node_limit);
      solution = solver.Solve(problem, &warm.open);
      break;
    }
    case PointScheduler::kLocalSearch:
      solution = LocalSearchFacility(problem, options.epsilon, false, options.seed, 1);
      break;
    case PointScheduler::kRandomizedLocalSearch:
      solution = LocalSearchFacility(problem, options.epsilon, true, options.seed,
                                     options.restarts);
      break;
    case PointScheduler::kBaseline:
      break;  // handled above
  }
  return MakeResult(queries, slot, location_of_query, solution);
}

}  // namespace psens
