#include "core/multi_query.h"

#include <algorithm>

#include "index/spatial_index.h"

namespace psens {

void MultiQuery::MarginalValuesUncounted(std::span<const int> sensors,
                                         std::span<double> out) const {
  // Reference fallback: per-sensor scalar probes. MarginalValue performs
  // its own accounting, which this entry point must not — cancel it so the
  // fallback and the tight overrides are observationally identical.
  for (size_t i = 0; i < sensors.size(); ++i) {
    out[i] = MarginalValue(sensors[i]);
  }
  AddValuationCalls(-static_cast<int64_t>(sensors.size()));
}

double PointMultiQuery::MarginalValue(int sensor) const {
  ++valuation_calls_;
  const double v = PointQueryValue(query_, slot_->sensors[sensor], slot_->dmax);
  return v - current_value_;  // current_value_ is the best committed value
}

void PointMultiQuery::MarginalValuesUncounted(std::span<const int> sensors,
                                              std::span<double> out) const {
  const double dmax = slot_->dmax;
  const double current = current_value_;
  if (slot_->SlabsSynced()) {
    const SlotSlabs& sl = slot_->slabs;
    if (cand_values_ready_) {
      // The pruned engines probe ascending subsequences of the candidate
      // list; a two-pointer walk resolves each probe to its cached Eq. 3
      // value (bit-identical: computed once by the same kernel). Probes
      // outside the list (dense sweeps, tests) fall through to the
      // kernel inline.
      size_t j = 0;
      const size_t m = candidates_.size();
      for (size_t i = 0; i < sensors.size(); ++i) {
        const int s = sensors[i];
        while (j < m && candidates_[j] < s) ++j;
        if (j < m && candidates_[j] == s) {
          out[i] = cand_values_[j] - current;
          ++j;
        } else {
          out[i] = PointQueryValueAt(query_, sl.x[s], sl.y[s],
                                     sl.inaccuracy[s], sl.trust[s], dmax) -
                   current;
        }
      }
      return;
    }
    // Column kernel: contiguous 8-byte loads instead of 48-byte records.
    for (size_t i = 0; i < sensors.size(); ++i) {
      const int s = sensors[i];
      out[i] = PointQueryValueAt(query_, sl.x[s], sl.y[s], sl.inaccuracy[s],
                                 sl.trust[s], dmax) -
               current;
    }
    return;
  }
  const std::vector<SlotSensor>& announced = slot_->sensors;
  for (size_t i = 0; i < sensors.size(); ++i) {
    out[i] = PointQueryValue(query_, announced[sensors[i]], dmax) - current;
  }
}

void PointMultiQuery::Commit(int sensor, double payment) {
  const double v = PointQueryValue(query_, slot_->sensors[sensor], slot_->dmax);
  if (v > current_value_) {
    current_value_ = v;
    best_sensor_ = sensor;
  }
  selected_.push_back(sensor);
  total_payment_ += payment;
}

const std::vector<int>* PointMultiQuery::CandidateSensors() const {
  if (slot_->index == nullptr) return nullptr;
  if (!candidates_ready_) {
    slot_->index->RangeQuery(query_.location, slot_->dmax, &candidates_);
    candidates_ready_ = true;
    if (slot_->SlabsSynced()) {
      const SlotSlabs& sl = slot_->slabs;
      cand_values_.resize(candidates_.size());
      for (size_t j = 0; j < candidates_.size(); ++j) {
        const int s = candidates_[j];
        cand_values_[j] = PointQueryValueAt(query_, sl.x[s], sl.y[s],
                                            sl.inaccuracy[s], sl.trust[s],
                                            slot_->dmax);
      }
      cand_values_ready_ = true;
    }
  }
  return &candidates_;
}

double PointMultiQuery::BestQuality() const {
  if (best_sensor_ < 0) return 0.0;
  return SlotQuality(slot_->sensors[best_sensor_], query_.location, slot_->dmax);
}

double CallbackMultiQuery::MarginalValue(int sensor) const {
  ++valuation_calls_;
  std::vector<int> with = selected_;
  with.push_back(sensor);
  return valuation_(with) - current_value_;
}

void CallbackMultiQuery::MarginalValuesUncounted(std::span<const int> sensors,
                                                 std::span<double> out) const {
  if (sensors.empty()) return;
  batch_with_ = selected_;
  batch_with_.push_back(0);
  for (size_t i = 0; i < sensors.size(); ++i) {
    batch_with_.back() = sensors[i];
    out[i] = valuation_(batch_with_) - current_value_;
  }
}

void CallbackMultiQuery::Commit(int sensor, double payment) {
  selected_.push_back(sensor);
  current_value_ = valuation_(selected_);
  total_payment_ += payment;
}

}  // namespace psens
