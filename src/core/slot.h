#ifndef PSENS_CORE_SLOT_H_
#define PSENS_CORE_SLOT_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "core/sensor.h"

namespace psens {

class SlotArena;
class SpatialIndex;
class ThreadPool;

/// How (and whether) a slot's sensor locations are spatially indexed.
/// The index only ever *prunes* candidate scans — every valuation is
/// exactly zero beyond its radius, so indexed and unindexed runs produce
/// bit-identical selections and payments (tests/pruning_equivalence_test).
enum class SlotIndexPolicy {
  /// Build an index for populations of at least kSlotIndexAutoThreshold
  /// sensors, choosing grid vs. k-d tree by density (the default).
  kAuto,
  /// Never index: schedulers scan `sensors` end to end (the reference
  /// path, and the right call for tiny slots).
  kNone,
  kGrid,
  kKdTree,
};

/// Minimum population for which kAuto bothers building an index.
inline constexpr int kSlotIndexAutoThreshold = 32;

/// Knobs for the approximate schedulers (GreedyEngine::kStochastic and
/// kSieve, src/core/stochastic_greedy.h / sieve_streaming.h). Carried on
/// the SlotContext so schedulers see them the same way they see the pool
/// and the index; the exact engines ignore them entirely.
struct ApproxParams {
  /// Quality knob shared by both engines. Stochastic greedy sizes its
  /// per-round sample as ceil(ln(1/epsilon) * |candidates| / k_hint);
  /// sieve streaming spaces its threshold grid by factors of
  /// (1 + epsilon) and keeps buckets down to epsilon * max single net.
  double epsilon = 0.1;
  /// Base seed of the stochastic engine's per-slot RNG stream. The
  /// effective stream is derived from (seed, SlotContext::time) unless
  /// `slot_seed` pins it, so re-running a slot — on any thread count, and
  /// through either the incremental or the rebuild engine mode — samples
  /// identically. Sieve streaming is deterministic and ignores it.
  uint64_t seed = 0x5EEDC0DE5EEDC0DEULL;
  /// Pinned per-slot stream; 0 (default) derives it from seed and time.
  uint64_t slot_seed = 0;
  /// Floor on the stochastic per-round sample size.
  int min_sample = 32;
  /// Expected number of selections k used to size the stochastic sample;
  /// 0 (default) uses the number of participating queries, a natural
  /// proxy in this workload where each query wants at least one sensor.
  int sample_hint = 0;
  /// Sieve-streaming refinement pass (core/sieve_streaming.h): after
  /// the winning bucket commits, CELF-style re-greedy from scratch over
  /// a population-independent pool — bucket members, a persistent bench
  /// of top singleton-net candidates, and a seeded per-slot exploration
  /// sample — keeping the better of the bucket replay and the refined
  /// selection. Lifts the sieve's realized utility from the single-pass
  /// ~0.5x of exact to >= 0.8x while staying >= 20x faster (the pool is
  /// capped, not the population). false restores the single-pass
  /// behaviour (ablations and the valuation-call micro-tests).
  bool sieve_refine = true;
};

/// A sensor as announced to the aggregator at the beginning of a time slot
/// (Section 2.1): its location and its price for providing one measurement
/// now, plus the static quality attributes the aggregator knows.
struct SlotSensor {
  /// Index into the owning SlotContext::sensors (schedulers use this).
  int index = 0;
  /// Global sensor id (index into the aggregator's sensor registry).
  int sensor_id = 0;
  Point location;
  /// Announced cost c_s for this slot (Eq. 8).
  double cost = 0.0;
  double inaccuracy = 0.0;
  double trust = 1.0;
};

/// Structure-of-arrays view of SlotContext::sensors: one contiguous
/// column per hot field, row i mirroring sensors[i] exactly. The delta
/// kernels in the query classes and batch_eval stream these columns
/// instead of chasing 48-byte SlotSensor records, which keeps the fp
/// math loads contiguous and lets the compiler auto-vectorize without
/// intrinsics. privacy_mult and energy mirror the registry-side inputs
/// of the announced cost (Eq. 8) for monitors and diagnostics.
///
/// Invariant: a context with use_soa set and slabs.size() ==
/// sensors.size() has every column entry equal to the corresponding
/// SlotSensor field (x/y == location, cost/inaccuracy/trust verbatim).
/// Contexts built by BuildSlotContext or an engine's BeginSlot always
/// satisfy it; hand-assembled contexts that skip the slabs simply fall
/// back to the scalar AoS paths (SlotContext::SlabsSynced gates every
/// kernel).
struct SlotSlabs {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> cost;
  std::vector<double> inaccuracy;
  std::vector<double> trust;
  std::vector<double> privacy_mult;
  std::vector<double> energy;

  size_t size() const { return x.size(); }

  void Resize(size_t n) {
    x.resize(n);
    y.resize(n);
    cost.resize(n);
    inaccuracy.resize(n);
    trust.resize(n);
    privacy_mult.resize(n);
    energy.resize(n);
  }

  void Clear() { Resize(0); }

  /// Writes row i from a SlotSensor plus the registry-side fields.
  void SetRow(size_t i, const SlotSensor& s, double privacy_multiplier,
              double energy_level) {
    x[i] = s.location.x;
    y[i] = s.location.y;
    cost[i] = s.cost;
    inaccuracy[i] = s.inaccuracy;
    trust[i] = s.trust;
    privacy_mult[i] = privacy_multiplier;
    energy[i] = energy_level;
  }

  /// Row i from the registry sensor backing SlotSensor s.
  void SetRowFrom(size_t i, const SlotSensor& s, const Sensor& reg) {
    SetRow(i, s, PrivacyLevelValue(reg.profile().privacy),
           reg.RemainingEnergy());
  }
};

/// Everything schedulers need about the current time slot.
struct SlotContext {
  int time = 0;
  /// Maximum distance at which a sensor can serve a queried location
  /// (d_max of Eq. 4). Experiment-wide constant in the paper.
  double dmax = 5.0;
  std::vector<SlotSensor> sensors;
  SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto;
  /// Minimum population for which kAuto builds an index (ablation knob;
  /// bench CLIs expose it as --index-threshold).
  int index_auto_threshold = kSlotIndexAutoThreshold;
  /// Spatial index over `sensors` locations (point index i == slot-sensor
  /// index i), or null when the policy/population says brute force.
  /// Schedulers treat null as "scan everything".
  std::shared_ptr<const SpatialIndex> index;
  /// Worker pool for intra-slot parallel selection (non-owning; typically
  /// the AcquisitionEngine's, attached by BeginSlot per
  /// ServingConfig::threads). Null means serial. Schedulers that use it —
  /// the greedy engines via core/batch_eval.h — produce bit-identical
  /// selections, payments, and ValuationCalls() for any pool size,
  /// including none.
  ThreadPool* pool = nullptr;
  /// Approximate-scheduler knobs (ignored by the exact engines).
  ApproxParams approx;
  /// Column view of `sensors` (see SlotSlabs). Kept in lockstep by
  /// BuildSlotContext and the engines' incremental repair; empty on
  /// hand-assembled contexts, which makes SlabsSynced() false and routes
  /// every kernel to its scalar reference path.
  SlotSlabs slabs;
  /// Slot-lifetime scratch arena (non-owning; the engine resets it at
  /// each BeginSlot). Null means scratch consumers fall back to owned
  /// heap buffers.
  SlotArena* arena = nullptr;
  /// Ablation/differential-test switch: false forces the scalar AoS
  /// valuation paths even when the slabs are populated. The two paths
  /// are bit-identical (tests/soa_kernel_equivalence_test).
  bool use_soa = true;
  /// Optional selection-eligibility mask, indexed by slot-sensor index.
  /// Non-null restricts which sensors the greedy engines may *select*
  /// (valuations and payments are unaffected); the per-shard scheduler
  /// passes use it to confine each pass to one shard's members. Null
  /// means everyone is eligible.
  const std::vector<char>* eligible = nullptr;

  /// True when the slab columns mirror `sensors` and kernels may use
  /// them (see SlotSlabs invariant).
  bool SlabsSynced() const {
    return use_soa && slabs.size() == sensors.size();
  }
};

/// (Re)builds `slot.index` from `slot.sensors` per `slot.index_policy`.
/// Defined in src/index/spatial_index.cc.
void AttachSlotIndex(SlotContext& slot);

/// Builds the slot context from the sensor registry: available sensors
/// inside `working_region` announce their location and cost. Attaches the
/// spatial index per `index_policy`.
inline SlotContext BuildSlotContext(const std::vector<Sensor>& sensors,
                                    const Rect& working_region, int time,
                                    double dmax,
                                    SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto,
                                    int index_auto_threshold = kSlotIndexAutoThreshold) {
  SlotContext ctx;
  ctx.time = time;
  ctx.dmax = dmax;
  ctx.index_policy = index_policy;
  ctx.index_auto_threshold = index_auto_threshold;
  for (const Sensor& s : sensors) {
    if (!s.available()) continue;
    if (!working_region.Contains(s.position())) continue;
    SlotSensor slot_sensor;
    slot_sensor.index = static_cast<int>(ctx.sensors.size());
    slot_sensor.sensor_id = s.id();
    slot_sensor.location = s.position();
    slot_sensor.cost = s.Cost(time);
    slot_sensor.inaccuracy = s.profile().inaccuracy;
    slot_sensor.trust = s.profile().trust;
    ctx.sensors.push_back(slot_sensor);
  }
  ctx.slabs.Resize(ctx.sensors.size());
  for (const SlotSensor& ss : ctx.sensors) {
    ctx.slabs.SetRowFrom(static_cast<size_t>(ss.index), ss,
                         sensors[static_cast<size_t>(ss.sensor_id)]);
  }
  AttachSlotIndex(ctx);
  return ctx;
}

/// Quality (Eq. 4) of slot sensor `s` for queried location `lq`.
inline double SlotQuality(const SlotSensor& s, const Point& lq, double dmax) {
  return ReadingQuality(s.inaccuracy, s.trust, Distance(s.location, lq), dmax);
}

}  // namespace psens

#endif  // PSENS_CORE_SLOT_H_
