#ifndef PSENS_CORE_REGION_MONITORING_H_
#define PSENS_CORE_REGION_MONITORING_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "core/point_query.h"
#include "core/point_scheduling.h"
#include "gp/gp_selector.h"
#include "gp/spatio_temporal.h"

namespace psens {

/// A continuous region-monitoring query (Q2 of Section 2.3): monitor a
/// phenomenon over `region` during [t1, t2] with total budget B_q. The
/// valuation is Eq. (7), v_q(S) = B_q * F(S) * mean(theta), with F the
/// expected variance reduction of Eq. (6) under a Gaussian-process model
/// extended with a time dimension (Section 2.3.1's sketched extension;
/// see DESIGN.md): each slot's value is the variance reduction of that
/// slot's field given the samples taken in a recent temporal window,
/// normalized by the slot's prior variance and scaled by the per-slot
/// budget share.
struct RegionMonitoringQuery {
  int id = 0;
  Rect region;
  int t1 = 0;
  int t2 = 0;  // inclusive
  double budget = 0.0;

  // ---- Algorithm 3 state ----
  /// All samples obtained for this query (location + slot), q.S.
  std::vector<STPoint> samples;
  std::vector<double> qualities;
  double spent = 0.0;       // C-hat
  double value = 0.0;       // accumulated valuation
  double requested = 0.0;   // accumulated value of the *planned* samples

  bool ActiveAt(int t) const { return t >= t1 && t <= t2; }
  int DurationSlots() const { return t2 - t1 + 1; }
};

/// The Eq. (18) sharing weight: a sensor inside the regions of k region-
/// monitoring queries has its cost scaled by w(k) during selection
/// (w(1) = 1, decreasing to 0.1 for k >= 10), raising its chance of being
/// picked and shared.
double SharingWeight(int k);

/// Algorithms 3 + 4: per slot, each active query plans its sampling
/// locations with the greedy GP selection of Algorithm 4 (function f_q),
/// emits point queries valued at their marginal variance reduction, and
/// after scheduling folds results back, opportunistically contributing to
/// sensors selected for other queries that happen to fall in its region
/// (bounded by alpha * (C_t - C-hat_t)).
class RegionMonitoringManager {
 public:
  struct Config {
    double alpha = 0.5;
    /// Enables the Eq. (18) cost weighting (ablation toggle; the paper's
    /// baseline disables it).
    bool cost_weighting = true;
    /// Enables opportunistic sharing of sensors selected for other
    /// queries (the paper's baseline disables it).
    bool share_extra_sensors = true;
    /// Observation-noise variance of the GP.
    double noise_variance = 0.1;
    /// Grid step for the region's target locations.
    double target_step = 2.0;
    /// Temporal length scale (slots) of the spatio-temporal kernel.
    double temporal_length = 2.0;
    /// Samples older than this many slots are dropped from the valuation
    /// conditioning set (their temporal covariance is negligible).
    int temporal_window = 3;
    double theta_min = 0.05;
  };

  RegionMonitoringManager(std::shared_ptr<const Kernel> spatial_kernel,
                          const Config& config);

  void AddQuery(const RegionMonitoringQuery& query);

  /// Function CreatePointQueries of Algorithm 3 for all active queries.
  /// Returned point queries carry `parent` = internal query index. Also
  /// records each query's planned sensors and expected cost C_t.
  std::vector<PointQuery> CreatePointQueries(const SlotContext& slot);

  /// Per-sensor cost scale for the slot: prod of Eq. (18) weights (1.0
  /// when cost weighting is disabled). Size = slot.sensors.size().
  std::vector<double> CostScale(const SlotContext& slot) const;

  struct SlotOutcome {
    /// Total valuation increase across queries this slot.
    double value_gain = 0.0;
    /// Extra payments contributed toward shared sensors (Algorithm 3's
    /// ApplyResults line 4); reduces what other queries pay.
    double contribution = 0.0;
  };

  /// Procedure ApplyResults of Algorithm 3. `created`/`assignments` as in
  /// LocationMonitoringManager; `other_selected` lists slot-sensor indices
  /// selected for *other* queries this slot (A_{r,t} candidates).
  SlotOutcome ApplyResults(const SlotContext& slot,
                           const std::vector<PointQuery>& created,
                           const std::vector<PointAssignment>& assignments,
                           const std::vector<int>& other_selected);

  void RemoveExpired(int t);

  const std::vector<RegionMonitoringQuery>& queries() const { return queries_; }
  int num_completed() const { return num_completed_; }
  /// Mean achieved/requested value ratio of completed queries ("average
  /// quality of results"; can exceed 1 through sharing, Fig. 9b).
  double MeanCompletedQuality() const;

  /// Algorithm 4 ("Sampling point selection"): greedily picks sensors for
  /// the current slot, trading variance reduction (discounted by remaining
  /// time) against weighted costs, stopping at the budget. Exposed for
  /// tests. Returns slot-sensor indices chosen for the current slot.
  std::vector<int> SelectSamplingPoints(const RegionMonitoringQuery& query,
                                        const SlotContext& slot,
                                        const std::vector<int>& in_region,
                                        const std::vector<double>& cost_scale,
                                        double budget) const;

 private:
  /// Valuation increment for `query` if `new_samples` (with qualities) are
  /// added at slot t: per-slot budget share * normalized variance
  /// reduction of slot-t targets * mean quality.
  double SlotValue(const RegionMonitoringQuery& query, int t,
                   const std::vector<STPoint>& conditioning,
                   double mean_quality) const;

  /// Conditioning set: query samples within the temporal window of t.
  std::vector<STPoint> RecentSamples(const RegionMonitoringQuery& query, int t) const;

  std::shared_ptr<const Kernel> spatial_kernel_;
  SpatioTemporalKernel st_kernel_;
  Config config_;
  std::vector<RegionMonitoringQuery> queries_;
  /// Planned sensors (slot-sensor indices) and expected costs per query,
  /// refreshed by CreatePointQueries each slot.
  std::vector<std::vector<int>> planned_;
  std::vector<double> expected_cost_;
  int num_completed_ = 0;
  double completed_quality_sum_ = 0.0;
};

}  // namespace psens

#endif  // PSENS_CORE_REGION_MONITORING_H_
