#ifndef PSENS_CORE_STOCHASTIC_GREEDY_H_
#define PSENS_CORE_STOCHASTIC_GREEDY_H_

#include <vector>

#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/slot.h"

namespace psens {

/// Stochastic-greedy ("lazier than lazy greedy", Mirzasoleiman et al.)
/// variant of Algorithm 1. Where the exact engines consider every
/// remaining candidate each round — eagerly (greedy.cc) or through cached
/// upper bounds (lazy_greedy.cc) — this engine draws a uniform random
/// sample of the remaining candidates, evaluates only the sample through
/// the same batched NetEvaluator, and commits the sample's best
/// positive-net sensor with the exact engines' proportional payments
/// (Algorithm 1 line 10).
///
/// Sample size: s = max(min_sample, ceil(ln(1/epsilon) * C / k)) with C
/// the slot's candidate count and k the expected number of selections
/// (ApproxParams::sample_hint, defaulting to the query count). For
/// monotone submodular valuations and a selection of k sensors this is
/// the classic bound under which the expected utility is at least
/// (1 - 1/e - epsilon) of exact greedy's; the per-round cost no longer
/// scales with C, which is what lets slots meet latency deadlines exact
/// greedy cannot (bench/fig13_approx_quality).
///
/// Termination: Algorithm 1 stops when no sensor has positive net gain; a
/// sampled round can miss positive candidates, so an empty round doubles
/// the next round's sample (geometric escalation) and the run only stops
/// once a round that covered *every* remaining candidate found nothing —
/// exact greedy's own termination condition. A productive round resets
/// the sample to its base size, so the escalation's amortized cost is one
/// extra O(C) sweep at the tail of the slot.
///
/// Reproducibility: the sampling RNG is seeded from (ApproxParams::seed,
/// SlotContext::time) — or ApproxParams::slot_seed when pinned — and the
/// batched evaluator is bit-identical for any SlotContext::pool size, so
/// a slot re-run on 1, 4, or 8 threads, or through the incremental vs
/// rebuild engine modes, selects the identical sensors with identical
/// payments (tests/approx_scheduler_test.cc).
SelectionResult StochasticGreedySensorSelection(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<double>* cost_scale = nullptr);

/// The per-slot sampling stream: ApproxParams::slot_seed when set, else a
/// splitmix64-style mix of ApproxParams::seed and `time`. Exposed so the
/// engine layer and tests can reason about (and pin) the stream.
uint64_t ApproxSlotSeed(const ApproxParams& params, int time);

/// The per-round sample size the stochastic engine uses for a slot with
/// `num_candidates` candidates and `num_queries` participating queries
/// (see the class comment for the formula). Exposed for tests and docs.
int StochasticSampleSize(const ApproxParams& params, int num_candidates,
                         int num_queries);

}  // namespace psens

#endif  // PSENS_CORE_STOCHASTIC_GREEDY_H_
