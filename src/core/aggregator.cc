#include "core/aggregator.h"

namespace psens {

Aggregator::Aggregator(std::vector<Sensor> sensors, const Config& config)
    : config_(config), sensors_(std::move(sensors)) {}

void Aggregator::SubmitPointQuery(const PointQuery& query) {
  pending_points_.push_back(query);
}

void Aggregator::SubmitAggregateQuery(const AggregateQuery::Params& params) {
  pending_aggregates_.push_back(params);
}

QueryMixSlotResult Aggregator::RunSlot(const Trace& trace, int time) {
  // Sensors announce their positions for this slot.
  for (Sensor& s : sensors_) {
    if (s.id() < trace.NumSensors()) {
      s.SetPosition(trace.Position(time, s.id()), trace.Present(time, s.id()));
    } else {
      s.SetPosition(Point{0, 0}, false);
    }
  }
  const SlotContext slot =
      BuildSlotContext(sensors_, config_.working_region, time, config_.dmax);

  QueryMixOptions options;
  options.use_greedy = config_.use_greedy;
  options.seed = static_cast<uint64_t>(time) + 1;
  const QueryMixSlotResult result =
      RunQueryMixSlot(slot, pending_points_, pending_aggregates_,
                      location_manager_, region_manager_, options);

  // Selected sensors provide one measurement each: consume energy and
  // extend the privacy history (their next announced price reflects it).
  for (int si : result.selected_sensors) {
    sensors_[slot.sensors[si].sensor_id].RecordReading(time);
  }
  if (location_manager_ != nullptr) location_manager_->RemoveExpired(time + 1);
  if (region_manager_ != nullptr) region_manager_->RemoveExpired(time + 1);

  pending_points_.clear();
  pending_aggregates_.clear();
  total_welfare_ += result.Utility();
  ++slots_run_;
  return result;
}

}  // namespace psens
