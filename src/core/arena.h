#ifndef PSENS_CORE_ARENA_H_
#define PSENS_CORE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace psens {

/// Bump allocator for slot-lifetime scratch (CSR batch slices, candidate
/// lists, per-thread gain buffers). Allocations are O(1) pointer bumps
/// into chunked blocks; nothing is freed individually — Reset() at the
/// next BeginSlot recycles everything at once, so per-round heap churn
/// disappears after the first slot warms the chunks up.
///
/// Not thread-safe: allocate on the coordinating thread only (scheduler
/// setup happens there; workers only *write through* spans handed to
/// them, which is fine). Alignment is per-allocation, default
/// alignof(std::max_align_t).
class SlotArena {
 public:
  static constexpr size_t kDefaultChunkBytes = size_t{1} << 20;  // 1 MiB

  explicit SlotArena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  SlotArena(const SlotArena&) = delete;
  SlotArena& operator=(const SlotArena&) = delete;

  /// Raw aligned allocation. Never returns null for bytes > 0; bytes == 0
  /// returns a distinct aligned non-null pointer (no storage consumed
  /// beyond alignment padding).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed allocation of `count` Ts (uninitialized storage; T must be
  /// trivially destructible since Reset never runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "SlotArena never runs destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Recycles every allocation. Coalesces: if the previous slot spilled
  /// into multiple chunks, they are replaced by one chunk sized to the
  /// high-water mark, so steady state is a single bump range.
  void Reset();

  /// Bytes handed out since construction or the last Reset().
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total backing capacity currently held.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  Chunk& AddChunk(size_t min_bytes);

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

/// A vector-shaped view over arena storage with an owned-vector fallback
/// when no arena is attached (hand-built SlotContexts, tests). T must be
/// trivially copyable; contents start uninitialized either way — callers
/// zero-fill where they need it, exactly as they would after resize() on
/// a fresh vector.
template <typename T>
class ArenaBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaBuffer elements must be trivially copyable");

 public:
  ArenaBuffer() = default;
  // Move-only: a copy's data_ would alias the source's owned storage.
  ArenaBuffer(ArenaBuffer&&) noexcept = default;
  ArenaBuffer& operator=(ArenaBuffer&&) noexcept = default;
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  /// (Re)binds the buffer to `count` elements. With an arena, storage
  /// comes from it (valid until the arena's next Reset); without, the
  /// owned vector is resized.
  void Acquire(SlotArena* arena, size_t count) {
    size_ = count;
    if (arena != nullptr) {
      data_ = arena->AllocateArray<T>(count);
    } else {
      owned_.resize(count);
      data_ = owned_.data();
    }
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
  std::vector<T> owned_;
};

}  // namespace psens

#endif  // PSENS_CORE_ARENA_H_
