#include "core/aggregate_query.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>

#include "index/spatial_index.h"

namespace psens {
namespace {

int PopCount(const std::vector<uint64_t>& mask) {
  int count = 0;
  for (uint64_t word : mask) count += std::popcount(word);
  return count;
}

int PopCountOr(const std::vector<uint64_t>& a, const uint64_t* b) {
  int count = 0;
  for (size_t i = 0; i < a.size(); ++i) count += std::popcount(a[i] | b[i]);
  return count;
}

void OrInto(std::vector<uint64_t>& acc, const uint64_t* mask) {
  for (size_t i = 0; i < acc.size(); ++i) acc[i] |= mask[i];
}

/// Location-independent sensor quality used by the aggregate valuation.
double SensorTheta(double inaccuracy, double trust) {
  return (1.0 - inaccuracy) * trust;
}

/// Shared batched-sweep kernel of the two coverage valuations (Eq. 5 over
/// region cells / trajectory-corridor cells): out[i] = marginal of probing
/// sensors[i] against the accumulated coverage state. Masks live in one
/// flat word slab (`words` per candidate ordinal); `value_from` is the
/// owner's ValueFrom (they differ only in captured params).
///
/// When `cached_at`/`cached_delta` are non-null (slab-synced binds), the
/// kernel memoizes each candidate's delta under `version` — the owner's
/// selection-state version, bumped on every Commit/ResetSelection. A hit
/// replays the exact double computed by this same kernel under identical
/// inputs (acc_mask, theta_sum, count, current_value are all unchanged
/// since the stamp), so served values are bit-identical to recomputation;
/// valuation-call accounting is external (NetEvaluator stage 4) and does
/// not observe hits. In a joint greedy round only the queries the last
/// commit touched recompute — everyone else's sweep becomes two loads.
template <typename ValueFrom>
void CoverageMarginals(std::span<const int> sensors, std::span<double> out,
                       const std::vector<int>& mask_slot,
                       const std::vector<uint64_t>& mask_words, int words,
                       const std::vector<double>& theta,
                       const std::vector<uint64_t>& acc_mask, double theta_sum,
                       int count, double current_value, uint64_t version,
                       uint64_t* cached_at, double* cached_delta,
                       const ValueFrom& value_from) {
  for (size_t i = 0; i < sensors.size(); ++i) {
    const int s = sensors[i];
    const int ord = mask_slot[s];
    if (ord < 0) {
      out[i] = 0.0;
      continue;
    }
    if (cached_at != nullptr && cached_at[ord] == version) {
      out[i] = cached_delta[ord];
      continue;
    }
    const uint64_t* mask =
        mask_words.data() + static_cast<size_t>(ord) * static_cast<size_t>(words);
    const int new_covered = PopCountOr(acc_mask, mask);
    out[i] = value_from(new_covered, theta_sum + theta[s], count) - current_value;
    if (cached_at != nullptr) {
      cached_at[ord] = version;
      cached_delta[ord] = out[i];
    }
  }
}

}  // namespace

AggregateQuery::AggregateQuery(const Params& params, const SlotContext& slot)
    : MultiQueryBase(params.id), params_(params) {
  const double cell = std::max(1e-9, params_.cell_size);
  cells_x_ = std::max(1, static_cast<int>(std::ceil(params_.region.Width() / cell)));
  const int cells_y =
      std::max(1, static_cast<int>(std::ceil(params_.region.Height() / cell)));
  num_cells_ = cells_x_ * cells_y;

  mask_slot_.assign(slot.sensors.size(), -1);
  theta_.assign(slot.sensors.size(), 0.0);
  const double range = params_.sensing_range;
  // Quick reject: a sensing disk touching the region requires the sensor
  // inside the region grown by the range. With a slot index this is one
  // rect probe instead of a full population scan; the probe returns
  // exactly the sensors the brute-force Contains test accepts, ascending.
  const Rect grown{params_.region.x_min - range, params_.region.y_min - range,
                   params_.region.x_max + range, params_.region.y_max + range};
  slot_indexed_ = slot.index != nullptr;
  std::vector<int> coarse;
  if (slot_indexed_) {
    slot.index->RectQuery(grown, &coarse);
  } else {
    for (const SlotSensor& s : slot.sensors) {
      if (grown.Contains(s.location)) coarse.push_back(s.index);
    }
  }
  // Bind loop over the coarse survivors. On a slab-synced slot the
  // location and quality inputs stream from the SoA columns (identical
  // bits, contiguous loads); hand-built contexts read the AoS records.
  const bool slabs = slot.SlabsSynced();
  std::vector<uint64_t> mask(static_cast<size_t>(NumWords()), 0);
  for (int si : coarse) {
    const SlotSensor& s = slot.sensors[si];
    const Point loc = slabs ? Point{slot.slabs.x[si], slot.slabs.y[si]}
                            : s.location;
    std::fill(mask.begin(), mask.end(), 0);
    bool any = false;
    for (int c = 0; c < num_cells_; ++c) {
      const int cx = c % cells_x_;
      const int cy = c / cells_x_;
      const Point center{params_.region.x_min + (cx + 0.5) * cell,
                         params_.region.y_min + (cy + 0.5) * cell};
      if (Distance(center, loc) <= range) {
        mask[c / 64] |= uint64_t{1} << (c % 64);
        any = true;
      }
    }
    if (any) {
      mask_slot_[s.index] = static_cast<int>(candidates_.size());
      mask_words_.insert(mask_words_.end(), mask.begin(), mask.end());
      theta_[s.index] = slabs ? SensorTheta(slot.slabs.inaccuracy[si],
                                            slot.slabs.trust[si])
                              : SensorTheta(s.inaccuracy, s.trust);
      candidates_.push_back(s.index);
    }
  }
  acc_mask_.assign(NumWords(), 0);
  soa_ = slabs;
  if (soa_) {
    cached_at_.assign(candidates_.size(), 0);
    cached_delta_.resize(candidates_.size());
  }
}

const std::vector<int>* AggregateQuery::CandidateSensors() const {
  return slot_indexed_ ? &candidates_ : nullptr;
}

double AggregateQuery::ValueFrom(int covered_cells, double theta_sum,
                                 int count) const {
  if (count == 0) return 0.0;
  const double coverage = static_cast<double>(covered_cells) / num_cells_;
  return params_.budget * coverage * (theta_sum / count);
}

double AggregateQuery::MarginalValue(int sensor) const {
  ++valuation_calls_;
  const int ord = mask_slot_[sensor];
  if (ord < 0) return 0.0;  // not a candidate: no change
  const uint64_t* mask = mask_words_.data() +
                         static_cast<size_t>(ord) * static_cast<size_t>(NumWords());
  const int new_covered = PopCountOr(acc_mask_, mask);
  const double new_value =
      ValueFrom(new_covered, theta_sum_ + theta_[sensor],
                static_cast<int>(selected_.size()) + 1);
  return new_value - current_value_;
}

void AggregateQuery::MarginalValuesUncounted(std::span<const int> sensors,
                                             std::span<double> out) const {
  CoverageMarginals(sensors, out, mask_slot_, mask_words_, NumWords(), theta_,
                    acc_mask_, theta_sum_,
                    static_cast<int>(selected_.size()) + 1, current_value_,
                    state_version_, soa_ ? cached_at_.data() : nullptr,
                    soa_ ? cached_delta_.data() : nullptr,
                    [this](int covered, double ts, int count) {
                      return ValueFrom(covered, ts, count);
                    });
}

void AggregateQuery::Commit(int sensor, double payment) {
  const int ord = mask_slot_[sensor];
  if (ord >= 0) {
    OrInto(acc_mask_, mask_words_.data() +
                          static_cast<size_t>(ord) * static_cast<size_t>(NumWords()));
    covered_cells_ = PopCount(acc_mask_);
    theta_sum_ += theta_[sensor];
  }
  selected_.push_back(sensor);
  current_value_ = ValueFrom(covered_cells_, theta_sum_,
                             static_cast<int>(selected_.size()));
  total_payment_ += payment;
  ++state_version_;  // |S| changed even when ord < 0: every memo is stale
}

void AggregateQuery::ResetSelection() {
  MultiQueryBase::ResetSelection();
  acc_mask_.assign(NumWords(), 0);
  covered_cells_ = 0;
  theta_sum_ = 0.0;
  ++state_version_;
}

double AggregateQuery::CurrentCoverage() const {
  return num_cells_ > 0 ? static_cast<double>(covered_cells_) / num_cells_ : 0.0;
}

double AggregateQuery::ValueOf(const std::vector<int>& sensors) const {
  std::vector<uint64_t> acc(NumWords(), 0);
  double theta_sum = 0.0;
  int count = 0;
  for (int s : sensors) {
    const int ord = mask_slot_[s];
    if (ord >= 0) {
      OrInto(acc, mask_words_.data() +
                      static_cast<size_t>(ord) * static_cast<size_t>(NumWords()));
      theta_sum += theta_[s];
    }
    ++count;
  }
  return ValueFrom(PopCount(acc), theta_sum, count);
}

// ---------------------------------------------------------------------------
// TrajectoryQuery
// ---------------------------------------------------------------------------

TrajectoryQuery::TrajectoryQuery(const Params& params, const SlotContext& slot)
    : MultiQueryBase(params.id), params_(params) {
  // Cells of interest: grid cells of the trajectory's bounding box whose
  // center lies within `corridor` of the polyline.
  const double cell = std::max(1e-9, params_.cell_size);
  const Rect box = params_.trajectory.BoundingBox();
  const int nx = std::max(1, static_cast<int>(std::ceil((box.Width() + 2 * params_.corridor) / cell)));
  const int ny = std::max(1, static_cast<int>(std::ceil((box.Height() + 2 * params_.corridor) / cell)));
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const Point center{box.x_min - params_.corridor + (x + 0.5) * cell,
                         box.y_min - params_.corridor + (y + 0.5) * cell};
      if (params_.trajectory.DistanceTo(center) <= params_.corridor) {
        cell_centers_.push_back(center);
      }
    }
  }
  num_cells_ = static_cast<int>(cell_centers_.size());
  if (num_cells_ == 0) {
    // Degenerate trajectory: treat its first waypoint (if any) as the
    // single cell of interest.
    if (!params_.trajectory.waypoints.empty()) {
      cell_centers_.push_back(params_.trajectory.waypoints.front());
      num_cells_ = 1;
    } else {
      num_cells_ = 1;
      cell_centers_.push_back(Point{0, 0});
    }
  }

  mask_slot_.assign(slot.sensors.size(), -1);
  theta_.assign(slot.sensors.size(), 0.0);
  // Coarse pruning: a sensor covering any corridor cell lies inside the
  // cell centers' bounding box grown by the sensing range.
  slot_indexed_ = slot.index != nullptr;
  std::vector<int> coarse;
  if (slot_indexed_) {
    Rect grown;
    grown.x_min = grown.x_max = cell_centers_[0].x;
    grown.y_min = grown.y_max = cell_centers_[0].y;
    for (const Point& c : cell_centers_) {
      grown.x_min = std::min(grown.x_min, c.x);
      grown.x_max = std::max(grown.x_max, c.x);
      grown.y_min = std::min(grown.y_min, c.y);
      grown.y_max = std::max(grown.y_max, c.y);
    }
    // Grow by the range plus a rounding slack: unlike AggregateQuery's
    // quick reject (where both paths test the same grown rect), the
    // unindexed trajectory path has no coarse filter at all, so a
    // boundary sensor lost to the +-range arithmetic's rounding would
    // break bit-equality with the dense scan. The slack dwarfs that
    // rounding while staying far below any cell size.
    const double slack =
        1e-9 * (1.0 + std::abs(grown.x_max) + std::abs(grown.y_max) +
                std::abs(grown.x_min) + std::abs(grown.y_min) +
                params_.sensing_range);
    grown.x_min -= params_.sensing_range + slack;
    grown.y_min -= params_.sensing_range + slack;
    grown.x_max += params_.sensing_range + slack;
    grown.y_max += params_.sensing_range + slack;
    slot.index->RectQuery(grown, &coarse);
  } else {
    for (const SlotSensor& s : slot.sensors) coarse.push_back(s.index);
  }
  const bool slabs = slot.SlabsSynced();
  std::vector<uint64_t> mask(static_cast<size_t>(NumWords()), 0);
  for (int si : coarse) {
    const SlotSensor& s = slot.sensors[si];
    const Point loc = slabs ? Point{slot.slabs.x[si], slot.slabs.y[si]}
                            : s.location;
    std::fill(mask.begin(), mask.end(), 0);
    bool any = false;
    for (int c = 0; c < num_cells_; ++c) {
      if (Distance(cell_centers_[c], loc) <= params_.sensing_range) {
        mask[c / 64] |= uint64_t{1} << (c % 64);
        any = true;
      }
    }
    if (any) {
      mask_slot_[s.index] = static_cast<int>(candidates_.size());
      mask_words_.insert(mask_words_.end(), mask.begin(), mask.end());
      theta_[s.index] = slabs ? SensorTheta(slot.slabs.inaccuracy[si],
                                            slot.slabs.trust[si])
                              : SensorTheta(s.inaccuracy, s.trust);
      candidates_.push_back(s.index);
    }
  }
  acc_mask_.assign(NumWords(), 0);
  soa_ = slabs;
  if (soa_) {
    cached_at_.assign(candidates_.size(), 0);
    cached_delta_.resize(candidates_.size());
  }
}

const std::vector<int>* TrajectoryQuery::CandidateSensors() const {
  return slot_indexed_ ? &candidates_ : nullptr;
}

double TrajectoryQuery::ValueFrom(int covered_cells, double theta_sum,
                                  int count) const {
  if (count == 0) return 0.0;
  const double coverage = static_cast<double>(covered_cells) / num_cells_;
  return params_.budget * coverage * (theta_sum / count);
}

double TrajectoryQuery::MarginalValue(int sensor) const {
  ++valuation_calls_;
  const int ord = mask_slot_[sensor];
  if (ord < 0) return 0.0;
  const uint64_t* mask = mask_words_.data() +
                         static_cast<size_t>(ord) * static_cast<size_t>(NumWords());
  const int new_covered = PopCountOr(acc_mask_, mask);
  const double new_value =
      ValueFrom(new_covered, theta_sum_ + theta_[sensor],
                static_cast<int>(selected_.size()) + 1);
  return new_value - current_value_;
}

void TrajectoryQuery::MarginalValuesUncounted(std::span<const int> sensors,
                                              std::span<double> out) const {
  CoverageMarginals(sensors, out, mask_slot_, mask_words_, NumWords(), theta_,
                    acc_mask_, theta_sum_,
                    static_cast<int>(selected_.size()) + 1, current_value_,
                    state_version_, soa_ ? cached_at_.data() : nullptr,
                    soa_ ? cached_delta_.data() : nullptr,
                    [this](int covered, double ts, int count) {
                      return ValueFrom(covered, ts, count);
                    });
}

void TrajectoryQuery::Commit(int sensor, double payment) {
  const int ord = mask_slot_[sensor];
  if (ord >= 0) {
    OrInto(acc_mask_, mask_words_.data() +
                          static_cast<size_t>(ord) * static_cast<size_t>(NumWords()));
    covered_cells_ = PopCount(acc_mask_);
    theta_sum_ += theta_[sensor];
  }
  selected_.push_back(sensor);
  current_value_ = ValueFrom(covered_cells_, theta_sum_,
                             static_cast<int>(selected_.size()));
  total_payment_ += payment;
  ++state_version_;  // |S| changed even when ord < 0: every memo is stale
}

void TrajectoryQuery::ResetSelection() {
  MultiQueryBase::ResetSelection();
  acc_mask_.assign(NumWords(), 0);
  covered_cells_ = 0;
  theta_sum_ = 0.0;
  ++state_version_;
}

double TrajectoryQuery::CurrentCoverage() const {
  return num_cells_ > 0 ? static_cast<double>(covered_cells_) / num_cells_ : 0.0;
}

double TrajectoryQuery::ValueOf(const std::vector<int>& sensors) const {
  std::vector<uint64_t> acc(NumWords(), 0);
  double theta_sum = 0.0;
  int count = 0;
  for (int s : sensors) {
    const int ord = mask_slot_[s];
    if (ord >= 0) {
      OrInto(acc, mask_words_.data() +
                      static_cast<size_t>(ord) * static_cast<size_t>(NumWords()));
      theta_sum += theta_[s];
    }
    ++count;
  }
  return ValueFrom(PopCount(acc), theta_sum, count);
}

}  // namespace psens
