#include "core/aggregate_query.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>

#include "index/spatial_index.h"

namespace psens {
namespace {

int PopCount(const std::vector<uint64_t>& mask) {
  int count = 0;
  for (uint64_t word : mask) count += std::popcount(word);
  return count;
}

int PopCountOr(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  int count = 0;
  for (size_t i = 0; i < a.size(); ++i) count += std::popcount(a[i] | b[i]);
  return count;
}

void OrInto(std::vector<uint64_t>& acc, const std::vector<uint64_t>& mask) {
  for (size_t i = 0; i < acc.size(); ++i) acc[i] |= mask[i];
}

/// Location-independent sensor quality used by the aggregate valuation.
double SensorTheta(const SlotSensor& s) { return (1.0 - s.inaccuracy) * s.trust; }

/// Shared batched-sweep kernel of the two coverage valuations (Eq. 5 over
/// region cells / trajectory-corridor cells): out[i] = marginal of probing
/// sensors[i] against the accumulated coverage state. `value_from` is the
/// owner's ValueFrom (they differ only in captured params).
template <typename ValueFrom>
void CoverageMarginals(std::span<const int> sensors, std::span<double> out,
                       const std::vector<std::vector<uint64_t>>& cover_mask,
                       const std::vector<double>& theta,
                       const std::vector<uint64_t>& acc_mask, double theta_sum,
                       int count, double current_value,
                       const ValueFrom& value_from) {
  for (size_t i = 0; i < sensors.size(); ++i) {
    const int s = sensors[i];
    if (cover_mask[s].empty()) {
      out[i] = 0.0;
      continue;
    }
    const int new_covered = PopCountOr(acc_mask, cover_mask[s]);
    out[i] = value_from(new_covered, theta_sum + theta[s], count) - current_value;
  }
}

}  // namespace

AggregateQuery::AggregateQuery(const Params& params, const SlotContext& slot)
    : MultiQueryBase(params.id), params_(params) {
  const double cell = std::max(1e-9, params_.cell_size);
  cells_x_ = std::max(1, static_cast<int>(std::ceil(params_.region.Width() / cell)));
  const int cells_y =
      std::max(1, static_cast<int>(std::ceil(params_.region.Height() / cell)));
  num_cells_ = cells_x_ * cells_y;

  cover_mask_.resize(slot.sensors.size());
  theta_.assign(slot.sensors.size(), 0.0);
  const double range = params_.sensing_range;
  // Quick reject: a sensing disk touching the region requires the sensor
  // inside the region grown by the range. With a slot index this is one
  // rect probe instead of a full population scan; the probe returns
  // exactly the sensors the brute-force Contains test accepts, ascending.
  const Rect grown{params_.region.x_min - range, params_.region.y_min - range,
                   params_.region.x_max + range, params_.region.y_max + range};
  slot_indexed_ = slot.index != nullptr;
  std::vector<int> coarse;
  if (slot_indexed_) {
    slot.index->RectQuery(grown, &coarse);
  } else {
    for (const SlotSensor& s : slot.sensors) {
      if (grown.Contains(s.location)) coarse.push_back(s.index);
    }
  }
  for (int si : coarse) {
    const SlotSensor& s = slot.sensors[si];
    std::vector<uint64_t> mask(NumWords(), 0);
    bool any = false;
    for (int c = 0; c < num_cells_; ++c) {
      const int cx = c % cells_x_;
      const int cy = c / cells_x_;
      const Point center{params_.region.x_min + (cx + 0.5) * cell,
                         params_.region.y_min + (cy + 0.5) * cell};
      if (Distance(center, s.location) <= range) {
        mask[c / 64] |= uint64_t{1} << (c % 64);
        any = true;
      }
    }
    if (any) {
      cover_mask_[s.index] = std::move(mask);
      theta_[s.index] = SensorTheta(s);
      candidates_.push_back(s.index);
    }
  }
  acc_mask_.assign(NumWords(), 0);
}

const std::vector<int>* AggregateQuery::CandidateSensors() const {
  return slot_indexed_ ? &candidates_ : nullptr;
}

double AggregateQuery::ValueFrom(int covered_cells, double theta_sum,
                                 int count) const {
  if (count == 0) return 0.0;
  const double coverage = static_cast<double>(covered_cells) / num_cells_;
  return params_.budget * coverage * (theta_sum / count);
}

double AggregateQuery::MarginalValue(int sensor) const {
  ++valuation_calls_;
  if (cover_mask_[sensor].empty()) return 0.0;  // not a candidate: no change
  const int new_covered = PopCountOr(acc_mask_, cover_mask_[sensor]);
  const double new_value =
      ValueFrom(new_covered, theta_sum_ + theta_[sensor],
                static_cast<int>(selected_.size()) + 1);
  return new_value - current_value_;
}

void AggregateQuery::MarginalValuesUncounted(std::span<const int> sensors,
                                             std::span<double> out) const {
  CoverageMarginals(sensors, out, cover_mask_, theta_, acc_mask_, theta_sum_,
                    static_cast<int>(selected_.size()) + 1, current_value_,
                    [this](int covered, double ts, int count) {
                      return ValueFrom(covered, ts, count);
                    });
}

void AggregateQuery::Commit(int sensor, double payment) {
  if (!cover_mask_[sensor].empty()) {
    OrInto(acc_mask_, cover_mask_[sensor]);
    covered_cells_ = PopCount(acc_mask_);
    theta_sum_ += theta_[sensor];
  }
  selected_.push_back(sensor);
  current_value_ = ValueFrom(covered_cells_, theta_sum_,
                             static_cast<int>(selected_.size()));
  total_payment_ += payment;
}

void AggregateQuery::ResetSelection() {
  MultiQueryBase::ResetSelection();
  acc_mask_.assign(NumWords(), 0);
  covered_cells_ = 0;
  theta_sum_ = 0.0;
}

double AggregateQuery::CurrentCoverage() const {
  return num_cells_ > 0 ? static_cast<double>(covered_cells_) / num_cells_ : 0.0;
}

double AggregateQuery::ValueOf(const std::vector<int>& sensors) const {
  std::vector<uint64_t> acc(NumWords(), 0);
  double theta_sum = 0.0;
  int count = 0;
  for (int s : sensors) {
    if (!cover_mask_[s].empty()) {
      OrInto(acc, cover_mask_[s]);
      theta_sum += theta_[s];
    }
    ++count;
  }
  return ValueFrom(PopCount(acc), theta_sum, count);
}

// ---------------------------------------------------------------------------
// TrajectoryQuery
// ---------------------------------------------------------------------------

TrajectoryQuery::TrajectoryQuery(const Params& params, const SlotContext& slot)
    : MultiQueryBase(params.id), params_(params) {
  // Cells of interest: grid cells of the trajectory's bounding box whose
  // center lies within `corridor` of the polyline.
  const double cell = std::max(1e-9, params_.cell_size);
  const Rect box = params_.trajectory.BoundingBox();
  const int nx = std::max(1, static_cast<int>(std::ceil((box.Width() + 2 * params_.corridor) / cell)));
  const int ny = std::max(1, static_cast<int>(std::ceil((box.Height() + 2 * params_.corridor) / cell)));
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const Point center{box.x_min - params_.corridor + (x + 0.5) * cell,
                         box.y_min - params_.corridor + (y + 0.5) * cell};
      if (params_.trajectory.DistanceTo(center) <= params_.corridor) {
        cell_centers_.push_back(center);
      }
    }
  }
  num_cells_ = static_cast<int>(cell_centers_.size());
  if (num_cells_ == 0) {
    // Degenerate trajectory: treat its first waypoint (if any) as the
    // single cell of interest.
    if (!params_.trajectory.waypoints.empty()) {
      cell_centers_.push_back(params_.trajectory.waypoints.front());
      num_cells_ = 1;
    } else {
      num_cells_ = 1;
      cell_centers_.push_back(Point{0, 0});
    }
  }

  cover_mask_.resize(slot.sensors.size());
  theta_.assign(slot.sensors.size(), 0.0);
  // Coarse pruning: a sensor covering any corridor cell lies inside the
  // cell centers' bounding box grown by the sensing range.
  slot_indexed_ = slot.index != nullptr;
  std::vector<int> coarse;
  if (slot_indexed_) {
    Rect grown;
    grown.x_min = grown.x_max = cell_centers_[0].x;
    grown.y_min = grown.y_max = cell_centers_[0].y;
    for (const Point& c : cell_centers_) {
      grown.x_min = std::min(grown.x_min, c.x);
      grown.x_max = std::max(grown.x_max, c.x);
      grown.y_min = std::min(grown.y_min, c.y);
      grown.y_max = std::max(grown.y_max, c.y);
    }
    // Grow by the range plus a rounding slack: unlike AggregateQuery's
    // quick reject (where both paths test the same grown rect), the
    // unindexed trajectory path has no coarse filter at all, so a
    // boundary sensor lost to the +-range arithmetic's rounding would
    // break bit-equality with the dense scan. The slack dwarfs that
    // rounding while staying far below any cell size.
    const double slack =
        1e-9 * (1.0 + std::abs(grown.x_max) + std::abs(grown.y_max) +
                std::abs(grown.x_min) + std::abs(grown.y_min) +
                params_.sensing_range);
    grown.x_min -= params_.sensing_range + slack;
    grown.y_min -= params_.sensing_range + slack;
    grown.x_max += params_.sensing_range + slack;
    grown.y_max += params_.sensing_range + slack;
    slot.index->RectQuery(grown, &coarse);
  } else {
    for (const SlotSensor& s : slot.sensors) coarse.push_back(s.index);
  }
  for (int si : coarse) {
    const SlotSensor& s = slot.sensors[si];
    std::vector<uint64_t> mask(NumWords(), 0);
    bool any = false;
    for (int c = 0; c < num_cells_; ++c) {
      if (Distance(cell_centers_[c], s.location) <= params_.sensing_range) {
        mask[c / 64] |= uint64_t{1} << (c % 64);
        any = true;
      }
    }
    if (any) {
      cover_mask_[s.index] = std::move(mask);
      theta_[s.index] = SensorTheta(s);
      candidates_.push_back(s.index);
    }
  }
  acc_mask_.assign(NumWords(), 0);
}

const std::vector<int>* TrajectoryQuery::CandidateSensors() const {
  return slot_indexed_ ? &candidates_ : nullptr;
}

double TrajectoryQuery::ValueFrom(int covered_cells, double theta_sum,
                                  int count) const {
  if (count == 0) return 0.0;
  const double coverage = static_cast<double>(covered_cells) / num_cells_;
  return params_.budget * coverage * (theta_sum / count);
}

double TrajectoryQuery::MarginalValue(int sensor) const {
  ++valuation_calls_;
  if (cover_mask_[sensor].empty()) return 0.0;
  const int new_covered = PopCountOr(acc_mask_, cover_mask_[sensor]);
  const double new_value =
      ValueFrom(new_covered, theta_sum_ + theta_[sensor],
                static_cast<int>(selected_.size()) + 1);
  return new_value - current_value_;
}

void TrajectoryQuery::MarginalValuesUncounted(std::span<const int> sensors,
                                              std::span<double> out) const {
  CoverageMarginals(sensors, out, cover_mask_, theta_, acc_mask_, theta_sum_,
                    static_cast<int>(selected_.size()) + 1, current_value_,
                    [this](int covered, double ts, int count) {
                      return ValueFrom(covered, ts, count);
                    });
}

void TrajectoryQuery::Commit(int sensor, double payment) {
  if (!cover_mask_[sensor].empty()) {
    OrInto(acc_mask_, cover_mask_[sensor]);
    covered_cells_ = PopCount(acc_mask_);
    theta_sum_ += theta_[sensor];
  }
  selected_.push_back(sensor);
  current_value_ = ValueFrom(covered_cells_, theta_sum_,
                             static_cast<int>(selected_.size()));
  total_payment_ += payment;
}

void TrajectoryQuery::ResetSelection() {
  MultiQueryBase::ResetSelection();
  acc_mask_.assign(NumWords(), 0);
  covered_cells_ = 0;
  theta_sum_ = 0.0;
}

double TrajectoryQuery::CurrentCoverage() const {
  return num_cells_ > 0 ? static_cast<double>(covered_cells_) / num_cells_ : 0.0;
}

double TrajectoryQuery::ValueOf(const std::vector<int>& sensors) const {
  std::vector<uint64_t> acc(NumWords(), 0);
  double theta_sum = 0.0;
  int count = 0;
  for (int s : sensors) {
    if (!cover_mask_[s].empty()) {
      OrInto(acc, cover_mask_[s]);
      theta_sum += theta_[s];
    }
    ++count;
  }
  return ValueFrom(PopCount(acc), theta_sum, count);
}

}  // namespace psens
