#include "core/location_monitoring.h"

#include <algorithm>
#include <cmath>

#include "regress/sampling_time_selector.h"

namespace psens {

LocationMonitoringManager::LocationMonitoringManager(
    std::vector<double> history_times, std::vector<double> history_values,
    Config config)
    : history_times_(std::move(history_times)),
      history_values_(std::move(history_values)),
      config_(config) {}

void LocationMonitoringManager::AddQuery(const LocationMonitoringQuery& query) {
  queries_.push_back(query);
  LocationMonitoringQuery& q = queries_.back();
  std::sort(q.desired.begin(), q.desired.end());
  q.sampled.clear();
  q.qualities.clear();
  q.spent = 0.0;
  q.last_satisfied = -1;
  q.next_desired = 0;
  q.value = 0.0;
}

double LocationMonitoringManager::Valuation(const LocationMonitoringQuery& q,
                                            const std::vector<int>& sampled,
                                            const std::vector<double>& qualities) const {
  if (sampled.empty() || qualities.empty()) return 0.0;
  // G of Eq. (17) is evaluated over the query's own monitoring window
  // [t1, t2] of the historical series: the query cares about how well its
  // samples explain the phenomenon during its lifetime, and the desired
  // times were chosen to minimize exactly this window's residuals.
  const int lo = std::max(0, std::min<int>(q.t1, static_cast<int>(history_times_.size()) - 1));
  const int hi = std::max(lo, std::min<int>(q.t2, static_cast<int>(history_times_.size()) - 1));
  std::vector<double> window_times;
  std::vector<double> window_values;
  window_times.reserve(hi - lo + 1);
  for (int i = lo; i <= hi; ++i) {
    window_times.push_back(history_times_[i]);
    window_values.push_back(history_values_[i]);
  }
  auto to_window = [&](const std::vector<int>& slots) {
    std::vector<int> indices;
    indices.reserve(slots.size());
    for (int s : slots) {
      int i = s - lo;
      if (i < 0) i = 0;
      if (i > hi - lo) i = hi - lo;
      indices.push_back(i);
    }
    return indices;
  };
  const double g = ResidualRatio(window_times, window_values, to_window(q.desired),
                                 to_window(sampled), config_.model_degree);
  double theta_sum = 0.0;
  for (double theta : qualities) theta_sum += theta;
  const double mean_theta = theta_sum / static_cast<double>(qualities.size());
  return q.budget * g * mean_theta;
}

double LocationMonitoringManager::SampleGain(const LocationMonitoringQuery& q,
                                             int t) const {
  // Value if a perfect-quality sample is taken at t (Theta extended by 1.0
  // — "the expected quality of a sensor reading before the actual sensor
  // selection", Section 3.3).
  std::vector<int> sampled = q.sampled;
  sampled.push_back(t);
  std::vector<double> qualities = q.qualities;
  qualities.push_back(1.0);
  const double with = Valuation(q, sampled, qualities);
  return with - q.value;
}

std::vector<PointQuery> LocationMonitoringManager::CreatePointQueries(int t) {
  std::vector<PointQuery> created;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    LocationMonitoringQuery& q = queries_[qi];
    if (!q.ActiveAt(t)) continue;

    const bool is_desired =
        std::binary_search(q.desired.begin(), q.desired.end(), t);
    // nst: next desired slot not yet satisfied; "missed" when it already
    // passed. "Overdue" when all desired slots are behind us.
    const bool exhausted = q.next_desired >= q.desired.size();
    const bool missed = !exhausted && q.desired[q.next_desired] < t;
    const bool overdue = exhausted && !q.desired.empty() && t > q.desired.back();

    const double delta_vt = SampleGain(q, t);
    double delta_v;
    if (config_.desired_times_only) {
      if (!is_desired) continue;  // baseline: sample only at desired times
      delta_v = delta_vt;
    } else if (is_desired || missed || overdue) {
      // Line 5 of CreatePointQuery: full value at desired slots, when the
      // previous desired sample failed (catch-up), or past the final
      // desired time.
      delta_v = delta_vt;
    } else {
      // Line 6: opportunistic sample funded by a fraction alpha of the
      // accrued surplus v_q(T') - C-hat.
      const double surplus = q.value - q.spent;
      delta_v = std::min(config_.alpha * surplus, delta_vt);
    }
    if (delta_v <= 0.0) continue;

    PointQuery pq;
    pq.id = q.id;
    pq.location = q.location;
    pq.budget = delta_v;
    pq.theta_min = config_.theta_min;
    pq.parent = static_cast<int>(qi);
    created.push_back(pq);
  }
  return created;
}

double LocationMonitoringManager::ApplyResults(
    int t, const std::vector<PointQuery>& created,
    const std::vector<PointAssignment>& assignments) {
  double realized = 0.0;
  for (size_t i = 0; i < created.size() && i < assignments.size(); ++i) {
    const PointAssignment& a = assignments[i];
    const int qi = created[i].parent;
    if (qi < 0 || static_cast<size_t>(qi) >= queries_.size()) continue;
    LocationMonitoringQuery& q = queries_[static_cast<size_t>(qi)];
    if (!a.satisfied()) continue;  // pi = -inf in the paper's notation
    q.sampled.push_back(t);
    q.qualities.push_back(a.quality);
    q.spent += a.payment;
    // Advance the desired-time cursor: a successful sample at or after a
    // desired slot is treated as covering it (our reading of the paper's
    // lst/nst updates — after a catch-up sample the query returns to
    // opportunistic mode rather than staying in catch-up forever).
    while (q.next_desired < q.desired.size() && q.desired[q.next_desired] <= t) {
      q.last_satisfied = q.desired[q.next_desired];
      ++q.next_desired;
    }
    const double new_value = Valuation(q, q.sampled, q.qualities);
    realized += new_value - q.value;
    q.value = new_value;
  }
  return realized;
}

void LocationMonitoringManager::RemoveExpired(int t) {
  std::vector<LocationMonitoringQuery> alive;
  alive.reserve(queries_.size());
  for (LocationMonitoringQuery& q : queries_) {
    if (q.t2 < t) {
      ++num_completed_;
      if (q.budget > 0.0) completed_quality_sum_ += q.value / q.budget;
    } else {
      alive.push_back(std::move(q));
    }
  }
  queries_ = std::move(alive);
}

double LocationMonitoringManager::MeanCompletedQuality() const {
  return num_completed_ > 0 ? completed_quality_sum_ / num_completed_ : 0.0;
}

}  // namespace psens
