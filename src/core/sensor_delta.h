#ifndef PSENS_CORE_SENSOR_DELTA_H_
#define PSENS_CORE_SENSOR_DELTA_H_

#include <vector>

#include "common/geometry.h"

namespace psens {

/// One slot's worth of sensor-population change, as produced by the
/// churn/mobility workload streams (sim/workload.h) or assembled by an
/// application driving the engine directly. Deltas are applied in field
/// order: arrivals, departures, moves, price changes; a later entry for
/// the same sensor wins.
///
/// Lives in core (not engine): both the serving engine
/// (engine/acquisition_engine.h) and delta-absorbing schedulers
/// (core/sieve_streaming.h) consume it, and plain churn data has no
/// business pulling the engine layer into the scheduler core.
struct SensorDelta {
  struct Placement {
    int sensor_id = 0;
    Point position;
  };
  struct PriceChange {
    int sensor_id = 0;
    double base_price = 0.0;
  };
  /// Sensors announcing themselves present at a location.
  std::vector<Placement> arrivals;
  /// Sensors leaving the system (presence off; profile state retained).
  std::vector<int> departures;
  /// Present sensors re-announcing a new location.
  std::vector<Placement> moves;
  /// Sensors re-announcing a new fixed price component C_s.
  std::vector<PriceChange> price_changes;

  bool empty() const {
    return arrivals.empty() && departures.empty() && moves.empty() &&
           price_changes.empty();
  }
};

}  // namespace psens

#endif  // PSENS_CORE_SENSOR_DELTA_H_
