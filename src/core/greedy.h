#ifndef PSENS_CORE_GREEDY_H_
#define PSENS_CORE_GREEDY_H_

#include <vector>

#include "core/multi_query.h"
#include "core/slot.h"

namespace psens {

/// Outcome of joint multi-query sensor selection. Per-query values and
/// payments live on the MultiQuery objects themselves (they are mutated by
/// the run); this struct aggregates the slot-level accounting.
struct SelectionResult {
  /// Selected slot-sensor indices (cost paid once per sensor).
  std::vector<int> selected_sensors;
  double total_value = 0.0;
  double total_cost = 0.0;
  /// Total valuation-function calls made during the run (Theorem 1
  /// property 4 bounds this by O(|Q| |S|^2) for Algorithm 1).
  int64_t valuation_calls = 0;

  double Utility() const { return total_value - total_cost; }
};

/// Which engine executes the Algorithm 1 selection rule.
enum class GreedyEngine {
  /// CELF-style lazy evaluation (src/core/lazy_greedy.h): a max-heap of
  /// cached net gains where only the heap front is re-evaluated. Selects
  /// the identical sensor sequence as kEager whenever the valuations are
  /// submodular, with far fewer valuation calls. The default.
  kLazy,
  /// The paper's literal exhaustive rescan of every remaining sensor each
  /// round. Kept as the reference implementation for tests and for the
  /// valuation-call comparisons in bench_scheduler_quality.
  kEager,
  /// Stochastic greedy (src/core/stochastic_greedy.h): each round evaluates
  /// only a seeded random sample of the remaining candidates instead of all
  /// of them, trading the exact engines' bit-identical selections for a
  /// (1 - 1/e - epsilon) expected-utility guarantee on monotone submodular
  /// instances and per-slot cost independent of how many candidates each
  /// round *could* probe. Reproducible: the sample stream derives from
  /// SlotContext::approx (seed, time), not from global state.
  kStochastic,
  /// Sieve streaming (src/core/sieve_streaming.h): threshold-bucketed
  /// single-pass selection. Deterministic; the bucket state can also be
  /// carried across slots by SieveStreamingScheduler so churn deltas are
  /// absorbed without re-streaming the whole population.
  kSieve,
};

/// Algorithm 1 ("Greedy Sensor Selection"): iteratively pick the sensor a
/// maximizing sum_{q: delta_v > 0} delta_v_{q,a} - c_a; stop when no sensor
/// has positive net benefit. Each selected sensor's cost is split among
/// the benefiting queries proportionally to their marginal values
/// (pi_{q,a} = delta_v_{q,a} c_a / sum delta_v, line 10), which yields
/// Theorem 1's guarantees: positive total utility and non-negative
/// individual utility.
///
/// `cost_scale[s]`, when provided, multiplies sensor s's cost during
/// selection (used by Algorithm 3's sharing weights, Eq. 18, and by
/// Algorithm 5's payment adjustment); the *paid* cost is still the true
/// slot cost.
SelectionResult GreedySensorSelection(const std::vector<MultiQuery*>& queries,
                                      const SlotContext& slot,
                                      const std::vector<double>* cost_scale = nullptr,
                                      GreedyEngine engine = GreedyEngine::kLazy);

struct CandidatePlan;

/// Sum of ValuationCalls() across `queries` — the engines' shared
/// before/after bookkeeping for SelectionResult::valuation_calls.
int64_t TotalValuationCalls(const std::vector<MultiQuery*>& queries);

/// Algorithm 1 line 10: commits `sensor` to every benefiting query,
/// splitting its *true* announced cost proportionally to the positive
/// marginal values (pi_{q,a} = delta_v * c_a / sum delta_v). Returns the
/// cost charged. Every engine — eager, lazy, stochastic, sieve — funnels
/// its commits through this one implementation, so the Theorem 1 payment
/// properties and cross-engine payment equivalence rest on a single body
/// of code.
double CommitWithProportionalPayments(const std::vector<MultiQuery*>& queries,
                                      const CandidatePlan& plan,
                                      const SlotContext& slot, int sensor);

/// The paper's baseline for multi-sensor one-shot queries (Section 4.4):
/// sequential execution with data buffering. Queries are processed one by
/// one; each greedily buys the sensors that maximize its own utility at
/// the sensors' *remaining* cost, and bought sensors become free for
/// subsequent queries in the slot.
SelectionResult BaselineSequentialSelection(const std::vector<MultiQuery*>& queries,
                                            const SlotContext& slot);

}  // namespace psens

#endif  // PSENS_CORE_GREEDY_H_
