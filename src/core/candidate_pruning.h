#ifndef PSENS_CORE_CANDIDATE_PRUNING_H_
#define PSENS_CORE_CANDIDATE_PRUNING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/arena.h"
#include "core/multi_query.h"

namespace psens {

/// Inverted candidate index for one joint selection run: which queries can
/// possibly assign positive marginal value to which sensor. Built from the
/// queries' CandidateSensors() hooks; a query exposing no candidate list
/// ("dense") is attached to every sensor.
///
/// The plan is exact, not heuristic: CandidateSensors() is contractually
/// conservative (a sensor outside the list has marginal value <= 0 against
/// every possible selection state), so a sensor with no interested query
/// has net gain <= -cost and can never be picked by Algorithm 1's
/// positive-net rule. Scanning `sensors` (ascending) instead of all slot
/// sensors, and summing marginals over `queries_of_sensor[s]` (ascending
/// query order) instead of all queries, therefore reproduces the dense
/// scan's selections, payments, and tie-breaks bit for bit.
struct CandidatePlan {
  /// False when no query exposed a candidate list; engines then run the
  /// reference dense loops (identical behaviour *and* identical
  /// valuation-call counts to the pre-index code).
  bool active = false;
  /// Sensors (ascending) with at least one interested query.
  ArenaBuffer<int> sensors;
  /// CSR inverted index: sensor s's interested queries, ascending by
  /// query position, are qs_data[qs_offsets[s] .. qs_offsets[s+1]). One
  /// flat slab (arena-backed when the slot carries an arena) replaces the
  /// former vector-of-vectors — O(1) allocations per plan instead of one
  /// per sensor, and each sensor's query run is a contiguous read.
  ArenaBuffer<int64_t> qs_offsets;
  ArenaBuffer<int> qs_data;
  /// Dense fallbacks (0..n-1 / 0..Q-1), filled only when !active or some
  /// query is dense.
  ArenaBuffer<int> all_sensors;
  ArenaBuffer<int> all_queries;

  /// Per query: where its candidate sensor list (ascending) lives — the
  /// query-major mirror of queries_of_sensor, used by the batched round
  /// evaluator (core/batch_eval.h) to sweep each query's sensors in one
  /// MarginalValues call. `external` points into the query object's own
  /// CandidateSensors() storage (stable during a selection run and across
  /// plan moves); `sanitized_index` selects a plan-owned copy when a hook
  /// returned out-of-range ids; neither set means the dense fallback.
  struct QueryCandidateRef {
    const std::vector<int>* external = nullptr;
    int sanitized_index = -1;
  };
  std::vector<QueryCandidateRef> query_candidates;
  /// Backing storage for sanitized query_candidates entries.
  std::vector<std::vector<int>> sanitized;

  /// Sensors an engine must scan, resolving the dense fallback.
  std::span<const int> ScanSensors() const {
    const ArenaBuffer<int>& s = active ? sensors : all_sensors;
    return {s.data(), s.size()};
  }
  /// Queries that may value `sensor`, resolving the dense fallback.
  std::span<const int> QueriesOf(int sensor) const {
    if (!active) return {all_queries.data(), all_queries.size()};
    const size_t b = static_cast<size_t>(qs_offsets[static_cast<size_t>(sensor)]);
    const size_t e =
        static_cast<size_t>(qs_offsets[static_cast<size_t>(sensor) + 1]);
    return {qs_data.data() + b, e - b};
  }
  /// Sensors query `query` may value (ascending), resolving the dense
  /// fallback. Scanning these per query and summing into per-sensor
  /// accumulators in ascending query order visits exactly the (sensor,
  /// query) pairs of the sensor-major reference loops, with the identical
  /// per-sensor accumulation order.
  std::span<const int> SensorsOf(int query) const {
    const QueryCandidateRef& ref = query_candidates[static_cast<size_t>(query)];
    if (ref.external != nullptr) return {ref.external->data(), ref.external->size()};
    if (ref.sanitized_index >= 0) {
      const std::vector<int>& s = sanitized[static_cast<size_t>(ref.sanitized_index)];
      return {s.data(), s.size()};
    }
    return {all_sensors.data(), all_sensors.size()};
  }
};

/// Builds the plan for one selection run. `arena` (usually
/// SlotContext::arena, may be null) backs the plan's flat index storage;
/// the plan must then not outlive the arena's next Reset — engines build
/// it per selection inside one slot, which satisfies this by construction.
CandidatePlan BuildCandidatePlan(const std::vector<MultiQuery*>& queries,
                                 int num_sensors,
                                 SlotArena* arena = nullptr);

/// Debug cross-check of the pruning contract for one committed sensor:
/// asserts that every query *not* in the plan's list for `sensor` indeed
/// reports a non-positive marginal value. Compiled to a no-op in NDEBUG
/// builds (the extra MarginalValue probes would otherwise distort the
/// valuation-call diagnostics and the asymptotics pruning exists to fix).
void CheckPrunedMarginals(const std::vector<MultiQuery*>& queries,
                          const CandidatePlan& plan, int sensor);

}  // namespace psens

#endif  // PSENS_CORE_CANDIDATE_PRUNING_H_
