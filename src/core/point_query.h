#ifndef PSENS_CORE_POINT_QUERY_H_
#define PSENS_CORE_POINT_QUERY_H_

#include "common/geometry.h"
#include "core/slot.h"

namespace psens {

/// A single-sensor point query (Section 2.2.1): the value of a reading of
/// quality theta is B_q * theta when theta >= theta_min, else 0 (Eq. 3).
struct PointQuery {
  int id = 0;
  Point location;
  /// Budget B_q; the user pays at most this for a perfect reading.
  double budget = 0.0;
  /// Minimum acceptable quality theta_min (Eq. 3); the paper uses 0.2.
  double theta_min = 0.2;
  /// Identifier of the continuous query this point query was generated
  /// for (Algorithms 2/3), or -1 for an end-user query.
  int parent = -1;
};

/// Valuation v_q(s) of Eq. (3) for a slot sensor.
inline double PointQueryValue(const PointQuery& q, const SlotSensor& s,
                              double dmax) {
  const double theta = SlotQuality(s, q.location, dmax);
  if (theta < q.theta_min) return 0.0;
  return q.budget * theta;
}

/// Slab-kernel form of Eq. (3): the same valuation from SlotSlabs column
/// entries. Routes through the same ReadingQuality as the AoS form with
/// identically ordered operands, so for equal inputs the result is
/// bit-identical whatever the build flags.
inline double PointQueryValueAt(const PointQuery& q, double x, double y,
                                double inaccuracy, double trust, double dmax) {
  const double theta =
      ReadingQuality(inaccuracy, trust, Distance(Point{x, y}, q.location), dmax);
  if (theta < q.theta_min) return 0.0;
  return q.budget * theta;
}

}  // namespace psens

#endif  // PSENS_CORE_POINT_QUERY_H_
