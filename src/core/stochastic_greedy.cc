#include "core/stochastic_greedy.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "common/rng.h"
#include "core/batch_eval.h"
#include "core/candidate_pruning.h"

namespace psens {

uint64_t ApproxSlotSeed(const ApproxParams& params, int time) {
  if (params.slot_seed != 0) return params.slot_seed;
  // splitmix64 finalizer over seed xor a time-derived odd constant: slots
  // get well-separated streams from one base seed.
  uint64_t z = params.seed + 0x9E3779B97F4A7C15ULL *
                                 (static_cast<uint64_t>(time) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "derive", never emit it
}

int StochasticSampleSize(const ApproxParams& params, int num_candidates,
                         int num_queries) {
  const int k =
      params.sample_hint > 0 ? params.sample_hint : std::max(num_queries, 1);
  const double eps = std::clamp(params.epsilon, 1e-6, 0.999999);
  const double raw =
      std::ceil(std::log(1.0 / eps) * static_cast<double>(num_candidates) /
                static_cast<double>(k));
  const int s = std::max(params.min_sample, static_cast<int>(raw));
  return std::min(s, std::max(num_candidates, 1));
}

SelectionResult StochasticGreedySensorSelection(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<double>* cost_scale) {
  SelectionResult result;
  const int64_t calls_before = TotalValuationCalls(queries);
  const int n = static_cast<int>(slot.sensors.size());

  const CandidatePlan plan = BuildCandidatePlan(queries, n, slot.arena);
  NetEvaluator evaluator(queries, plan, slot, cost_scale, slot.pool);

  // Remaining candidates in mutable order: the partial Fisher-Yates below
  // shuffles a per-round prefix; pruning compacts the prefix in place.
  // Sensors outside SlotContext::eligible (per-shard scheduler passes)
  // never enter the pool, so they cannot be sampled or selected.
  const std::span<const int> scan0 = plan.ScanSensors();
  std::vector<int> remaining;
  remaining.reserve(scan0.size());
  for (int s : scan0) {
    if (slot.eligible == nullptr || (*slot.eligible)[static_cast<size_t>(s)]) {
      remaining.push_back(s);
    }
  }
  const int sample_size =
      StochasticSampleSize(slot.approx, static_cast<int>(remaining.size()),
                           static_cast<int>(queries.size()));
  Rng rng(ApproxSlotSeed(slot.approx, slot.time));

  std::vector<int> scan;  // this round's sample, ascending
  std::vector<double> net;

  // Commit exactly like the exact engines (Algorithm 1 line 10).
  const auto commit = [&](int best_sensor) {
    result.total_cost +=
        CommitWithProportionalPayments(queries, plan, slot, best_sensor);
    result.selected_sensors.push_back(best_sensor);
  };

  // Ascending stable argmax with strict >, the exact engines' tie-break.
  const auto argmax = [&]() {
    int best_sensor = -1;
    double best_net = 0.0;
    for (size_t k = 0; k < scan.size(); ++k) {
      if (net[k] > best_net) {
        best_net = net[k];
        best_sensor = scan[k];
      }
    }
    return best_sensor;
  };

  // Compacts remaining[0..s) down to the sampled sensors that stay viable
  // (positive net, not committed); the unsampled tail slides over the gap.
  // Marginals only shrink as selections grow (submodularity), so a sensor
  // whose net is non-positive now can never be picked later — pruning it
  // is exact, with the same caveat as the CELF cache for the aggregate
  // valuation's mildly non-submodular mean-quality factor: a pruned
  // marginal that grows back is forfeited (Theorem 1 is unaffected).
  const auto compact_prefix = [&](int s, int committed) {
    size_t write = 0;
    for (int j = 0; j < s; ++j) {
      const int id = remaining[static_cast<size_t>(j)];
      const auto it = std::lower_bound(scan.begin(), scan.end(), id);
      const size_t k = static_cast<size_t>(it - scan.begin());
      if (id != committed && net[k] > 0.0) remaining[write++] = id;
    }
    const size_t dropped = static_cast<size_t>(s) - write;
    if (dropped > 0) {
      std::move(remaining.begin() + s, remaining.end(),
                remaining.begin() + static_cast<long>(write));
      remaining.resize(remaining.size() - dropped);
    }
  };

  // Round 0 sweeps the full candidate set — exact greedy's first pick —
  // and prunes every candidate that can never be selected, so the sampled
  // rounds draw from viable candidates only.
  {
    scan = remaining;
    net.resize(scan.size());
    evaluator.EvaluateNets(scan, net.data());
    const int best_sensor = argmax();
    if (best_sensor >= 0) {
      CheckPrunedMarginals(queries, plan, best_sensor);
      commit(best_sensor);
    }
    compact_prefix(static_cast<int>(remaining.size()), best_sensor);
    if (best_sensor < 0) remaining.clear();  // nothing viable at all
  }

  // Sampled rounds. An empty round doubles the next round's sample
  // (escalation) so tail-end candidates cannot be missed for long; an
  // empty round that covered every remaining candidate is exact greedy's
  // own termination proof. A productive round resets the sample to its
  // base size, keeping the steady-state cost at (selections * sample).
  int current_sample = sample_size;
  while (!remaining.empty()) {
    const int s = std::min(current_sample, static_cast<int>(remaining.size()));
    // Partial Fisher-Yates: after the loop, remaining[0..s) is a uniform
    // sample without replacement. Consumes the RNG deterministically.
    for (int j = 0; j < s; ++j) {
      const int64_t pick =
          rng.UniformInt(j, static_cast<int64_t>(remaining.size()) - 1);
      std::swap(remaining[static_cast<size_t>(j)],
                remaining[static_cast<size_t>(pick)]);
    }
    scan.assign(remaining.begin(), remaining.begin() + s);
    // The evaluator contract wants ascending, duplicate-free sensors; the
    // sample is duplicate-free by construction.
    std::sort(scan.begin(), scan.end());
    net.resize(scan.size());
    evaluator.EvaluateNets(scan, net.data());
    const int best_sensor = argmax();
    if (best_sensor >= 0) {
      current_sample = sample_size;
      CheckPrunedMarginals(queries, plan, best_sensor);
      commit(best_sensor);
    } else if (s == static_cast<int>(remaining.size())) {
      break;  // a full empty sweep is the exact termination condition
    } else {
      current_sample *= 2;
    }
    compact_prefix(s, best_sensor);
  }

  for (const MultiQuery* q : queries) result.total_value += q->CurrentValue();
  result.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return result;
}

}  // namespace psens
