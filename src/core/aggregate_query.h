#ifndef PSENS_CORE_AGGREGATE_QUERY_H_
#define PSENS_CORE_AGGREGATE_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "core/multi_query.h"

namespace psens {

/// Spatial-aggregate query (Section 2.2.2) with the example valuation of
/// Eq. (5):
///
///   v_q(S) = B_q * G_q(S) * (sum_{s in S} theta_s) / |S|,
///
/// where G_q is the fraction of the query region covered by the selected
/// sensors' sensing disks and theta_s = (1 - gamma_s) * tau_s is the
/// sensor's location-independent reading quality. The mean-quality factor
/// makes the valuation non-submodular and non-monotone (Section 3.2),
/// which is why the paper schedules these queries with greedy Algorithm 1
/// rather than the local-search approximation.
///
/// Queries over trajectories (Section 2.2.3) are the same valuation with
/// the coverage computed over cells near the trajectory; see
/// `TrajectoryQuery`.
class AggregateQuery : public MultiQueryBase {
 public:
  struct Params {
    int id = 0;
    Rect region;
    double budget = 0.0;
    /// Sensing range of a sensor (disk radius), Section 4.4 sets 10 units.
    double sensing_range = 10.0;
    /// Rasterization cell size for the coverage function.
    double cell_size = 2.0;
  };

  /// Binds the query to the slot: precomputes each candidate sensor's
  /// covered-cell bitset. Sensors whose disk misses the region entirely
  /// are not candidates.
  AggregateQuery(const Params& params, const SlotContext& slot);

  double MarginalValue(int sensor) const override;
  /// Tight sweep over the probed sensors' precomputed coverage bitsets —
  /// one virtual call per batch instead of per sensor.
  void MarginalValuesUncounted(std::span<const int> sensors,
                               std::span<double> out) const override;
  bool ThreadSafeBatchValuation() const override { return true; }
  void Commit(int sensor, double payment) override;
  double MaxValue() const override { return params_.budget; }

  /// Sensors whose sensing disk covers at least one region cell (marginal
  /// value is exactly zero for all others). Exposed only when the slot was
  /// indexed at bind time, so unindexed slots keep the reference scan.
  const std::vector<int>* CandidateSensors() const override;

  void ResetSelection() override;

  /// Coverage G(S) in [0, 1] for the current selection.
  double CurrentCoverage() const;

  /// Value of an arbitrary sensor set (non-incremental; used by the
  /// baseline and tests).
  double ValueOf(const std::vector<int>& sensors) const;

  const Params& params() const { return params_; }

 private:
  int NumWords() const { return static_cast<int>((num_cells_ + 63) / 64); }
  double ValueFrom(int covered_cells, double theta_sum, int count) const;

  Params params_;
  int num_cells_ = 0;
  int cells_x_ = 0;
  /// Per slot-sensor: candidate ordinal into mask_words_, or -1 when the
  /// sensor covers no cell. One flat word slab (NumWords() words per
  /// ordinal) replaces the former vector-of-bitsets so the probe kernel
  /// does one int load + one contiguous word run per sensor; popcount
  /// word order is unchanged, so marginals stay bit-identical.
  std::vector<int> mask_slot_;
  std::vector<uint64_t> mask_words_;
  std::vector<double> theta_;
  /// Sensors with non-empty masks, ascending; valid when slot_indexed_.
  std::vector<int> candidates_;
  bool slot_indexed_ = false;

  // Incremental selection state.
  std::vector<uint64_t> acc_mask_;
  int covered_cells_ = 0;
  double theta_sum_ = 0.0;

  /// Per-candidate round-delta memo, armed only on slab-synced binds
  /// (SlotContext::SlabsSynced — the SoA ablation switch, so the AoS
  /// reference path recomputes every probe). `state_version_` names the
  /// current selection state; a memo entry stamped with it replays the
  /// identical double the sweep kernel computed under the same inputs.
  /// Written from at most one worker at a time (each query's batch slice
  /// belongs to one NetEvaluator worker, with a join between rounds).
  bool soa_ = false;
  uint64_t state_version_ = 1;
  mutable std::vector<uint64_t> cached_at_;
  mutable std::vector<double> cached_delta_;
};

/// Query over a trajectory (Section 2.2.3): treated as a spatial-aggregate
/// query whose cells are those within `corridor` of the polyline.
class TrajectoryQuery : public MultiQueryBase {
 public:
  struct Params {
    int id = 0;
    Trajectory trajectory;
    double budget = 0.0;
    double sensing_range = 10.0;
    double cell_size = 2.0;
    /// Half-width of the corridor of interest around the trajectory.
    double corridor = 2.0;
  };

  TrajectoryQuery(const Params& params, const SlotContext& slot);

  double MarginalValue(int sensor) const override;
  void MarginalValuesUncounted(std::span<const int> sensors,
                               std::span<double> out) const override;
  bool ThreadSafeBatchValuation() const override { return true; }
  void Commit(int sensor, double payment) override;
  double MaxValue() const override { return params_.budget; }
  const std::vector<int>* CandidateSensors() const override;
  void ResetSelection() override;

  double CurrentCoverage() const;
  double ValueOf(const std::vector<int>& sensors) const;

 private:
  int NumWords() const { return static_cast<int>((num_cells_ + 63) / 64); }
  double ValueFrom(int covered_cells, double theta_sum, int count) const;

  Params params_;
  int num_cells_ = 0;
  std::vector<Point> cell_centers_;
  /// Flat coverage slab, same layout as AggregateQuery's.
  std::vector<int> mask_slot_;
  std::vector<uint64_t> mask_words_;
  std::vector<double> theta_;
  std::vector<int> candidates_;
  bool slot_indexed_ = false;

  std::vector<uint64_t> acc_mask_;
  int covered_cells_ = 0;
  double theta_sum_ = 0.0;

  /// Round-delta memo; same contract as AggregateQuery's.
  bool soa_ = false;
  uint64_t state_version_ = 1;
  mutable std::vector<uint64_t> cached_at_;
  mutable std::vector<double> cached_delta_;
};

}  // namespace psens

#endif  // PSENS_CORE_AGGREGATE_QUERY_H_
