#ifndef PSENS_CORE_SENSOR_H_
#define PSENS_CORE_SENSOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/geometry.h"

namespace psens {

/// Energy cost models from Section 4.1: fixed, c_e(E) = C_s, and linear,
/// c_e(E) = C_s (1 + beta (1 - E)).
enum class EnergyCostModel {
  kFixed,
  kLinear,
};

/// Privacy sensitivity levels (Section 4.1), mapped to multipliers
/// {0, 0.25, 0.5, 0.75, 1}.
enum class PrivacySensitivity {
  kZero = 0,
  kLow,
  kModerate,
  kHigh,
  kVeryHigh,
};

/// Multiplier for a privacy sensitivity level.
double PrivacyLevelValue(PrivacySensitivity level);

/// Static characteristics of a participant's sensing device.
struct SensorProfile {
  /// Inherent inaccuracy gamma in [0, 1] (percentage of the value range).
  double inaccuracy = 0.0;
  /// Trustworthiness tau in [0, 1].
  double trust = 1.0;
  /// Fixed price component C_s.
  double base_price = 10.0;
  EnergyCostModel energy_model = EnergyCostModel::kFixed;
  /// Cost increment factor beta of the linear energy model.
  double energy_beta = 0.0;
  PrivacySensitivity privacy = PrivacySensitivity::kZero;
  /// Size w of the history of revealed report times.
  int privacy_window = 5;
  /// Maximum number of readings the sensor can provide over the
  /// simulation ("lifetime", Section 4.1).
  int lifetime = 50;
};

/// A sensor: static profile plus mutable state (energy, reporting history,
/// current position). The aggregator owns the sensors; mobility models
/// update positions once per slot.
class Sensor {
 public:
  Sensor() = default;
  Sensor(int id, const SensorProfile& profile)
      : id_(id), profile_(profile) {}

  int id() const { return id_; }
  const SensorProfile& profile() const { return profile_; }

  const Point& position() const { return position_; }
  bool available() const { return available_ && !WornOut(); }
  /// The raw presence flag as announced (ignores wear-out) — lets the
  /// streaming engine diff a mobility/churn update against current state.
  bool present() const { return available_; }

  /// Updates this slot's position/presence (from the mobility trace).
  void SetPosition(const Point& p, bool present) {
    position_ = p;
    available_ = present;
  }

  /// Re-announces the fixed price component C_s (price-jitter churn
  /// streams; flows into EnergyCost/PrivacyCost like the original price).
  void SetBasePrice(double base_price) { profile_.base_price = base_price; }

  /// Remaining energy E in [0, 1]: 1 - readings / lifetime.
  double RemainingEnergy() const;

  /// True once the number of readings reached the lifetime.
  bool WornOut() const { return readings_taken_ >= profile_.lifetime; }

  int readings_taken() const { return readings_taken_; }

  /// Energy cost component c_e(E) per the profile's model (Section 4.1).
  double EnergyCost() const;

  /// Privacy loss p_s(H, l) of Eq. (14): weighted average of the time
  /// distances between recent report times and `now`, with more weight on
  /// recent reports. In [0, ~1].
  double PrivacyLoss(int now) const;

  /// Privacy cost component c_p = PSL * p_s * C_s of Eq. (15).
  double PrivacyCost(int now) const;

  /// Announced total cost c_s = c_e + c_p of Eq. (8) at time slot `now`.
  double Cost(int now) const { return EnergyCost() + PrivacyCost(now); }

  /// Records that the sensor provided a measurement at slot `now`:
  /// consumes one reading and appends `now` to the (bounded) history of
  /// revealed report times.
  void RecordReading(int now);

  const std::deque<int>& report_history() const { return report_history_; }

 private:
  int id_ = -1;
  SensorProfile profile_;
  Point position_;
  bool available_ = false;
  int readings_taken_ = 0;
  std::deque<int> report_history_;
};

/// Quality of a reading from sensor `s` for queried location `lq`
/// (Eq. 4): (1 - gamma) (1 - d / dmax) tau when d <= dmax, else 0.
double ReadingQuality(const Sensor& s, const Point& lq, double dmax);

/// Same, from raw parameters (used where no Sensor object exists).
double ReadingQuality(double inaccuracy, double trust, double distance,
                      double dmax);

}  // namespace psens

#endif  // PSENS_CORE_SENSOR_H_
