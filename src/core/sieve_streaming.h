#ifndef PSENS_CORE_SIEVE_STREAMING_H_
#define PSENS_CORE_SIEVE_STREAMING_H_

#include <vector>

#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/slot.h"

namespace psens {

struct SensorDelta;

/// Sieve-streaming (Badanidiyuru et al.) selection for the Algorithm 1
/// objective sum_q delta-v - cost. Instead of ranking candidates round by
/// round, the sieve keeps a geometric grid of acceptance thresholds
///
///   tau_j = (1 + epsilon)^j,   epsilon * m <= tau_j <= m,
///
/// (m = the best single-sensor net seen so far) plus a tau = 0 floor
/// bucket, and streams candidates once per bucket in announcement order:
/// a sensor joins bucket j iff its net marginal against the bucket's
/// current selection is at least tau_j. The best bucket by realized
/// utility is committed with Algorithm 1's proportional payments, then
/// (ApproxParams::sieve_refine, default on) a refinement pass runs
/// CELF-style greedy rounds from scratch over a population-independent
/// candidate pool — the union of all buckets' members, a persistent
/// "bench" of the best singleton-net candidates ever streamed (capped
/// at kRefineBenchSize), and a per-slot seeded exploration sample of
/// the candidate scan (kRefineSampleSize) — and keeps whichever
/// selection, winner replay or refined, realizes the higher utility.
/// The bench recovers stream-order rejects with large singleton nets;
/// the sample tracks queries that moved since initialization (the
/// delta path only streams arrivals). The sample RNG seeds from the
/// engine-stamped slot seed, so replays reproduce it bit-for-bit.
///
/// Two modes:
///
///   - SieveStreamingSensorSelection / SelectFull: one slot, full stream.
///     Each bucket only streams candidates whose *single-sensor* net
///     reaches its threshold (an upper bound on any later marginal for
///     submodular valuations), so high-threshold buckets touch few
///     sensors.
///   - SelectDelta: the cross-slot mode. Bucket membership is keyed by
///     global sensor id and carried across slots; a churn delta is
///     absorbed by replaying each bucket's (small) member list against
///     the new slot context — departures drop out naturally, repriced
///     members are re-validated — and offering only the *arriving*
///     sensors to the thresholds. Per-slot valuation work is
///     O(buckets * (members + arrivals)), independent of the population,
///     where every exact engine pays at least one full candidate sweep.
///
/// Deterministic: no RNG anywhere; identical inputs (slot context bits,
/// delta stream) produce identical selections on any thread count.
class SieveStreamingScheduler {
 public:
  explicit SieveStreamingScheduler(const ApproxParams& params = {});

  /// (Re)initializes the sieve from the slot's full candidate stream and
  /// commits the winning bucket onto `queries`.
  SelectionResult SelectFull(const std::vector<MultiQuery*>& queries,
                             const SlotContext& slot,
                             const std::vector<double>* cost_scale = nullptr);

  /// Absorbs one churn delta: replays carried bucket members against the
  /// new slot context and offers the delta's arrivals (and moved sensors,
  /// which may have entered the working region) to every bucket. Falls
  /// back to SelectFull when the sieve has no state yet.
  SelectionResult SelectDelta(const std::vector<MultiQuery*>& queries,
                              const SlotContext& slot,
                              const SensorDelta& delta,
                              const std::vector<double>* cost_scale = nullptr);

  /// Same as SelectDelta with the arriving global sensor ids already
  /// extracted (the form tests drive directly).
  SelectionResult SelectArrivals(const std::vector<MultiQuery*>& queries,
                                 const SlotContext& slot,
                                 const std::vector<int>& arrival_ids,
                                 const std::vector<double>* cost_scale = nullptr);

  bool initialized() const { return initialized_; }
  /// Global sensor ids of the last Select* call's committed selection:
  /// the winning bucket's members in acceptance order, followed by any
  /// refinement-pass picks (ApproxParams::sieve_refine) in commit order.
  /// Empty before the first call.
  const std::vector<int>& winner_members() const { return winner_members_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }

 private:
  struct Bucket {
    /// Threshold exponent: tau = (1 + epsilon)^exponent, or the tau = 0
    /// floor when `floor` is set.
    int exponent = 0;
    bool floor = false;
    /// Global sensor ids in acceptance order.
    std::vector<int> members;
  };

  double Tau(const Bucket& bucket) const;
  /// Extends the threshold grid to cover a new best single net `m`.
  void EnsureBuckets(double m);

  double epsilon_;
  double max_single_net_ = 0.0;
  bool initialized_ = false;
  std::vector<Bucket> buckets_;  // descending tau; floor bucket last
  std::vector<int> winner_members_;
  /// Refinement bench (ApproxParams::sieve_refine): the top streamed
  /// candidates by singleton net, (net, global id) sorted descending,
  /// capped — sensors no bucket accepted but whose singleton net says
  /// they belong in refinement contention. Maintained only when
  /// refinement is on.
  std::vector<std::pair<double, int>> bench_;
};

/// One-shot per-slot sieve selection — what GreedyEngine::kSieve in
/// GreedySensorSelection dispatches to. Equivalent to
/// SieveStreamingScheduler(slot.approx).SelectFull(...).
SelectionResult SieveStreamingSensorSelection(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<double>* cost_scale = nullptr);

}  // namespace psens

#endif  // PSENS_CORE_SIEVE_STREAMING_H_
