#ifndef PSENS_CORE_MULTI_QUERY_H_
#define PSENS_CORE_MULTI_QUERY_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/point_query.h"
#include "core/slot.h"

namespace psens {

/// A query participating in joint sensor selection (Algorithm 1 and the
/// multi-sensor baseline). Valuations are black boxes supplied by the
/// application (Section 2); schedulers only probe marginal values and
/// commit selected sensors. Implementations keep incremental state so
/// marginal evaluation is cheap.
class MultiQuery {
 public:
  virtual ~MultiQuery() = default;

  virtual int id() const = 0;

  /// Marginal value delta-v_{q,s} = v_q(S_q + s) - v_q(S_q) of adding slot
  /// sensor `sensor` to the current selection. May be negative (valuations
  /// need not be monotone, e.g. Eq. 5).
  virtual double MarginalValue(int sensor) const = 0;

  /// Batched valuation: out[i] = exactly the value MarginalValue(sensors[i])
  /// would return against the current selection, with the same
  /// valuation-call accounting folded into one AddValuationCalls merge.
  /// Values and ValuationCalls() totals are bit-identical to the scalar
  /// loop (tests/batched_valuation_test.cc pins this per query type).
  void MarginalValues(std::span<const int> sensors, std::span<double> out) const {
    MarginalValuesUncounted(sensors, out);
    AddValuationCalls(static_cast<int64_t>(sensors.size()));
  }

  /// Computation core of MarginalValues, *without* the accounting. The
  /// batched/parallel engines (core/batch_eval.h) call this from worker
  /// threads and merge per-thread call counts at batch end through
  /// AddValuationCalls, so ValuationCalls() is never mutated from workers.
  ///
  /// Contract for overrides: no mutation of query state other than
  /// per-object scratch. Engines shard work *by query* — two threads may
  /// probe different queries concurrently, but one query is only ever
  /// probed by one thread at a time, so per-object scratch needs no
  /// locking. ThreadSafeBatchValuation() advertises conformance.
  ///
  /// The default falls back to per-sensor MarginalValue probes (which
  /// count) and cancels their accounting — correct and exactly equivalent,
  /// but neither batched nor safe off the owning thread.
  virtual void MarginalValuesUncounted(std::span<const int> sensors,
                                       std::span<double> out) const;

  /// Merges externally tracked valuation-call counts into ValuationCalls().
  /// Engines use it to keep per-thread counters out of worker threads; the
  /// default is a no-op for implementations that do not track calls.
  virtual void AddValuationCalls(int64_t count) const { (void)count; }

  /// True when MarginalValuesUncounted honours the no-shared-mutation
  /// contract above, so the parallel selection path may probe this query
  /// from worker threads. Engines fall back to the bit-identical serial
  /// sweep when any participating query says no.
  virtual bool ThreadSafeBatchValuation() const { return false; }

  /// Adds `sensor` to the selection, charging `payment` to the query.
  virtual void Commit(int sensor, double payment) = 0;

  /// v_q(S_q) for the current selection.
  virtual double CurrentValue() const = 0;

  /// The maximum attainable valuation (used for the "average quality of
  /// results" metric of Section 4.4: achieved value / max value).
  virtual double MaxValue() const = 0;

  /// Sum of payments charged so far.
  virtual double TotalPayment() const = 0;

  virtual const std::vector<int>& SelectedSensors() const = 0;

  /// Clears the selection (selection state only; not slot binding).
  virtual void ResetSelection() = 0;

  /// Number of valuation-function evaluations performed (for the
  /// complexity property 4 of Theorem 1).
  virtual int64_t ValuationCalls() const = 0;

  /// Slot-sensor indices (ascending) that can ever carry positive marginal
  /// value for this query, or nullptr for "unknown — consider every
  /// sensor". Implementations must be conservative: a sensor outside the
  /// list must have MarginalValue <= 0 against *every* selection state.
  /// The greedy engines use this to skip hopeless valuations
  /// (core/candidate_pruning.h); pruned and dense runs select identically.
  virtual const std::vector<int>* CandidateSensors() const { return nullptr; }
};

/// Common bookkeeping for MultiQuery implementations.
class MultiQueryBase : public MultiQuery {
 public:
  explicit MultiQueryBase(int id) : id_(id) {}

  int id() const override { return id_; }
  double CurrentValue() const override { return current_value_; }
  double TotalPayment() const override { return total_payment_; }
  const std::vector<int>& SelectedSensors() const override { return selected_; }
  int64_t ValuationCalls() const override { return valuation_calls_; }

  /// Single merge point for deferred (per-thread) call accounting. Only
  /// ever invoked from the coordinating thread at batch end, so the plain
  /// `mutable` field needs no synchronization.
  void AddValuationCalls(int64_t count) const override {
    valuation_calls_ += count;
  }

  void ResetSelection() override {
    selected_.clear();
    current_value_ = 0.0;
    total_payment_ = 0.0;
  }

 protected:
  int id_;
  std::vector<int> selected_;
  double current_value_ = 0.0;
  double total_payment_ = 0.0;
  mutable int64_t valuation_calls_ = 0;
};

/// Single-sensor point query (Eq. 3) wrapped for joint selection: the set
/// valuation is v_q(S) = max_{s in S} v_q(s), so the marginal of a second,
/// better sensor is only its improvement.
class PointMultiQuery : public MultiQueryBase {
 public:
  PointMultiQuery(const PointQuery& query, const SlotContext* slot)
      : MultiQueryBase(query.id), query_(query), slot_(slot) {}

  const PointQuery& query() const { return query_; }

  double MarginalValue(int sensor) const override;
  /// Tight sweep: one fused pass, no per-sensor virtual dispatch. On a
  /// slab-synced slot (SlotContext::SlabsSynced) the pass streams the
  /// SoA columns; when the candidate value cache is warm (the pruned
  /// engines probe ascending subsequences of CandidateSensors, and Eq. 3
  /// is selection-independent) probes become cached-value lookups. All
  /// paths produce bit-identical values and accounting.
  void MarginalValuesUncounted(std::span<const int> sensors,
                               std::span<double> out) const override;
  bool ThreadSafeBatchValuation() const override { return true; }
  void Commit(int sensor, double payment) override;
  double MaxValue() const override { return query_.budget; }

  /// Sensors within dmax of the queried location (Eq. 4 quality — and so
  /// Eq. 3 value — is exactly zero beyond it), via the slot's spatial
  /// index; nullptr when the slot is unindexed.
  const std::vector<int>* CandidateSensors() const override;

  /// The slot sensor currently providing the best reading (-1 if none).
  int BestSensor() const { return best_sensor_; }
  /// Quality theta of the best committed reading.
  double BestQuality() const;

  void ResetSelection() override {
    MultiQueryBase::ResetSelection();
    best_sensor_ = -1;
  }

 private:
  PointQuery query_;
  const SlotContext* slot_;
  int best_sensor_ = -1;
  mutable std::vector<int> candidates_;
  mutable bool candidates_ready_ = false;
  /// Eq. 3 value per candidate (parallel to candidates_), computed once
  /// per slot binding when the slabs are synced: the valuation depends
  /// only on (query, sensor), never on selection state, so re-probes hit
  /// this cache. Filled on the coordinating thread by CandidateSensors
  /// (the pruning plan builds before any worker probes), read-only after.
  mutable std::vector<double> cand_values_;
  mutable bool cand_values_ready_ = false;
};

/// Arbitrary set-valuation query defined by a callback; used in tests and
/// available to applications with custom utility functions (the paper
/// treats valuations as black boxes).
class CallbackMultiQuery : public MultiQueryBase {
 public:
  using SetValuation = std::function<double(const std::vector<int>&)>;

  CallbackMultiQuery(int id, SetValuation valuation, double max_value)
      : MultiQueryBase(id), valuation_(std::move(valuation)), max_value_(max_value) {}

  double MarginalValue(int sensor) const override;
  /// Batched probe reusing one selection+candidate scratch vector instead
  /// of copying the selection per sensor. ThreadSafeBatchValuation stays
  /// false: the user-supplied callback's thread safety is unknown.
  void MarginalValuesUncounted(std::span<const int> sensors,
                               std::span<double> out) const override;
  void Commit(int sensor, double payment) override;
  double MaxValue() const override { return max_value_; }

 private:
  SetValuation valuation_;
  double max_value_;
  mutable std::vector<int> batch_with_;
};

}  // namespace psens

#endif  // PSENS_CORE_MULTI_QUERY_H_
