#ifndef PSENS_CORE_LOCATION_MONITORING_H_
#define PSENS_CORE_LOCATION_MONITORING_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "core/point_query.h"
#include "core/point_scheduling.h"

namespace psens {

/// A continuous location-monitoring query (Q1 of Section 2.3): monitor a
/// phenomenon at `location` over slots [t1, t2], with desired sampling
/// times `desired` (the set T). The valuation is Eq. (16):
///
///   v_q(T', Theta) = B_q * G(T') * mean(Theta),
///
/// where G is the residual ratio of Eq. (17) against the historical
/// series, T' the sampled slots, and Theta the achieved reading qualities.
struct LocationMonitoringQuery {
  int id = 0;
  Point location;
  int t1 = 0;
  int t2 = 0;  // inclusive
  double budget = 0.0;
  /// Desired sampling slots T (absolute slot numbers in [t1, t2]).
  std::vector<int> desired;

  // ---- Algorithm 2 state ----
  std::vector<int> sampled;        // T'
  std::vector<double> qualities;   // Theta
  double spent = 0.0;              // C-hat, total payments so far
  int last_satisfied = -1;         // lst
  size_t next_desired = 0;         // index into `desired` (nst)
  double value = 0.0;              // v_q(T', Theta), cached

  bool ActiveAt(int t) const { return t >= t1 && t <= t2; }
};

/// Algorithm 2 ("Sensor Selection for Location Monitoring Queries"):
/// each slot, CreatePointQueries derives one point query per active
/// monitoring query (full budget at desired/missed/overdue slots, an
/// alpha-fraction of the accrued surplus otherwise), and ApplyResults
/// folds the point-query outcomes back into the query state.
///
/// The valuation's G factor is computed against a shared historical
/// series (e.g. the previous day's ozone trace): slot t of the current
/// period corresponds to index t of the series, exactly the "data values
/// for the current time interval are almost the same as in the same time
/// interval in the past" assumption of Section 4.5.
class LocationMonitoringManager {
 public:
  struct Config {
    /// Fraction alpha of the accrued surplus spendable on an
    /// opportunistic (non-desired-time) sample.
    double alpha = 0.5;
    /// Baseline mode (Section 4.5): generate point queries only at the
    /// desired sampling times, never opportunistically.
    bool desired_times_only = false;
    /// theta_min for generated point queries.
    double theta_min = 0.2;
    /// Polynomial degree of the historical model.
    int model_degree = 1;
  };

  LocationMonitoringManager(std::vector<double> history_times,
                            std::vector<double> history_values, Config config);

  void AddQuery(const LocationMonitoringQuery& query);

  /// Function CreatePointQuery for every active query at slot `t`.
  /// Returned point queries have `parent` set to the internal query index;
  /// queries that choose not to sample this slot produce nothing.
  std::vector<PointQuery> CreatePointQueries(int t);

  /// Procedure ApplyResults: `created` must be the vector returned by
  /// CreatePointQueries(t) and `assignments` its scheduling outcome
  /// (aligned by index). Returns the total valuation increase realized
  /// this slot (for welfare accounting).
  double ApplyResults(int t, const std::vector<PointQuery>& created,
                      const std::vector<PointAssignment>& assignments);

  /// Drops queries whose period ended before `t`, folding them into the
  /// completed-query statistics.
  void RemoveExpired(int t);

  const std::vector<LocationMonitoringQuery>& queries() const { return queries_; }

  /// Number of queries finished so far and their mean quality of results
  /// (value / budget at expiry).
  int num_completed() const { return num_completed_; }
  double MeanCompletedQuality() const;

  /// v_q(T', Theta) of Eq. (16) for an explicit state; exposed for tests.
  double Valuation(const LocationMonitoringQuery& q,
                   const std::vector<int>& sampled,
                   const std::vector<double>& qualities) const;

 private:
  /// Delta-v_t: value increase if a (perfect-quality) sample is taken now.
  double SampleGain(const LocationMonitoringQuery& q, int t) const;

  std::vector<double> history_times_;
  std::vector<double> history_values_;
  Config config_;
  std::vector<LocationMonitoringQuery> queries_;
  int num_completed_ = 0;
  double completed_quality_sum_ = 0.0;
};

}  // namespace psens

#endif  // PSENS_CORE_LOCATION_MONITORING_H_
