#ifndef PSENS_CORE_AGGREGATOR_H_
#define PSENS_CORE_AGGREGATOR_H_

#include <vector>

#include "core/aggregate_query.h"
#include "core/location_monitoring.h"
#include "core/query_mix.h"
#include "core/region_monitoring.h"
#include "core/sensor.h"
#include "mobility/trace.h"

namespace psens {

/// The aggregator of Section 2: the central server sensors announce their
/// location and price to at the beginning of every slot, and that end
/// users submit queries to. This facade owns the sensor registry and the
/// per-slot pipeline (Algorithm 5), so a downstream application only
/// queues queries and calls RunSlot once per time slot:
///
///   Aggregator aggregator(std::move(sensors), config);
///   aggregator.SubmitPointQuery(q);
///   ...
///   const QueryMixSlotResult r = aggregator.RunSlot(trace, t);
///
/// One-shot queries queue for the *next* slot only (the paper's model:
/// the aggregator periodically collects queries and answers the batch);
/// continuous queries live in the attached managers until they expire.
class Aggregator {
 public:
  struct Config {
    Rect working_region;
    double dmax = 10.0;
    /// Algorithm 5 (true) or the sequential baseline (false).
    bool use_greedy = true;
  };

  Aggregator(std::vector<Sensor> sensors, const Config& config);

  /// Queues a one-shot single-sensor point query for the next slot.
  void SubmitPointQuery(const PointQuery& query);

  /// Queues a one-shot spatial-aggregate query for the next slot.
  void SubmitAggregateQuery(const AggregateQuery::Params& params);

  /// Attaches continuous-query managers (not owned; may be null).
  void AttachLocationMonitoring(LocationMonitoringManager* manager) {
    location_manager_ = manager;
  }
  void AttachRegionMonitoring(RegionMonitoringManager* manager) {
    region_manager_ = manager;
  }

  /// Runs one time slot: applies trace positions to the registry, answers
  /// the queued one-shot queries jointly with the continuous queries'
  /// generated point queries (Algorithm 5), charges the selected sensors
  /// one reading each, expires finished continuous queries, and clears the
  /// one-shot queues.
  QueryMixSlotResult RunSlot(const Trace& trace, int time);

  /// Sum of per-slot utilities so far (social welfare).
  double TotalWelfare() const { return total_welfare_; }
  int SlotsRun() const { return slots_run_; }

  const std::vector<Sensor>& sensors() const { return sensors_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<Sensor> sensors_;
  std::vector<PointQuery> pending_points_;
  std::vector<AggregateQuery::Params> pending_aggregates_;
  LocationMonitoringManager* location_manager_ = nullptr;
  RegionMonitoringManager* region_manager_ = nullptr;
  double total_welfare_ = 0.0;
  int slots_run_ = 0;
};

}  // namespace psens

#endif  // PSENS_CORE_AGGREGATOR_H_
