#include "core/arena.h"

#include <algorithm>

namespace psens {

void* SlotArena::Allocate(size_t bytes, size_t align) {
  if (align == 0) align = 1;
  if (!chunks_.empty()) {
    Chunk& c = chunks_.back();
    // Align the pointer address, not the offset: the chunk base is only
    // max_align_t-aligned, so over-aligned requests need the extra slack.
    const uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
    const size_t aligned =
        static_cast<size_t>(((base + c.used + align - 1) &
                             ~static_cast<uintptr_t>(align - 1)) -
                            base);
    if (aligned + bytes <= c.size) {
      c.used = aligned + bytes;
      bytes_allocated_ += bytes;
      return c.data.get() + aligned;
    }
  }
  // Spill: the new chunk is at least double the standard size so a
  // sequence of large requests amortizes, and always fits this request
  // with worst-case alignment padding.
  Chunk& c = AddChunk(bytes + align);
  const size_t base = reinterpret_cast<uintptr_t>(c.data.get()) & (align - 1);
  const size_t aligned = base == 0 ? 0 : align - base;
  c.used = aligned + bytes;
  bytes_allocated_ += bytes;
  return c.data.get() + aligned;
}

SlotArena::Chunk& SlotArena::AddChunk(size_t min_bytes) {
  const size_t grown = chunks_.empty() ? chunk_bytes_ : 2 * chunk_bytes_;
  const size_t size = std::max(grown, min_bytes);
  Chunk c;
  c.data = std::make_unique<unsigned char[]>(size);
  c.size = size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(c));
  return chunks_.back();
}

void SlotArena::Reset() {
  bytes_allocated_ = 0;
  if (chunks_.size() > 1) {
    // Coalesce to one chunk at the high-water mark: next slot's identical
    // allocation pattern fits without spilling.
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    chunks_.clear();
    bytes_reserved_ = 0;
    AddChunk(total);
  }
  if (!chunks_.empty()) chunks_.back().used = 0;
}

}  // namespace psens
