#ifndef PSENS_CORE_MULTI_SENSOR_POINT_QUERY_H_
#define PSENS_CORE_MULTI_SENSOR_POINT_QUERY_H_

#include <vector>

#include "core/multi_query.h"

namespace psens {

/// A multiple-sensor point query (Section 2.2.1): the application wants up
/// to `redundancy` readings of the phenomenon at one location — e.g. "to
/// assess the trustworthiness of a particular sensor", redundant
/// measurements are needed. The valuation generalizes Eq. (3):
///
///   v_q(S) = B_q * (sum of the top-k qualities among S) / k,
///
/// with k = `redundancy` and per-reading qualities theta(s, l_q) of
/// Eq. (4) filtered by theta_min. Monotone and submodular in S (adding a
/// sensor can only raise a top-k sum, with diminishing returns), so both
/// greedy Algorithm 1 and the local-search machinery apply.
class MultiSensorPointQuery : public MultiQueryBase {
 public:
  struct Params {
    int id = 0;
    Point location;
    double budget = 0.0;
    double theta_min = 0.2;
    /// Number of redundant readings wanted (k >= 1).
    int redundancy = 3;
  };

  MultiSensorPointQuery(const Params& params, const SlotContext* slot)
      : MultiQueryBase(params.id), params_(params), slot_(slot) {}

  double MarginalValue(int sensor) const override;
  /// Batched probe: the committed qualities are sorted once per batch, and
  /// each sensor's top-k value comes from an O(k) merge of its quality
  /// into that shared order — the same non-increasing value sequence (and
  /// so the same floating-point sum) the scalar copy+sort produces.
  void MarginalValuesUncounted(std::span<const int> sensors,
                               std::span<double> out) const override;
  bool ThreadSafeBatchValuation() const override { return true; }
  void Commit(int sensor, double payment) override;
  double MaxValue() const override { return params_.budget; }

  /// Sensors within dmax of the queried location (quality — and so the
  /// top-k valuation — is exactly zero beyond it); nullptr when the slot
  /// is unindexed.
  const std::vector<int>* CandidateSensors() const override;

  void ResetSelection() override {
    MultiQueryBase::ResetSelection();
    qualities_.clear();
  }

  /// Qualities of the committed readings (unsorted).
  const std::vector<double>& qualities() const { return qualities_; }

  /// Number of readings still wanted to reach the redundancy target.
  int RemainingReadings() const;

  const Params& params() const { return params_; }

 private:
  double Quality(int sensor) const;
  /// Quality(sensor) computed from the slot's SoA columns (bit-identical;
  /// requires SlotContext::SlabsSynced).
  double QualityFromSlabs(int sensor) const;
  /// Valuation from a set of reading qualities (top-k mean scaled by B).
  double ValueFromQualities(std::vector<double> qualities) const;

  Params params_;
  const SlotContext* slot_;
  std::vector<double> qualities_;
  mutable std::vector<int> candidates_;
  mutable bool candidates_ready_ = false;
  /// Filtered quality theta per candidate (parallel to candidates_),
  /// computed once per slot binding when the slabs are synced — the
  /// quality depends only on (query, sensor), so batch probes resolve
  /// against this cache. Same fill/read discipline as PointMultiQuery's
  /// candidate value cache.
  mutable std::vector<double> cand_theta_;
  mutable bool cand_theta_ready_ = false;
  /// Per-batch scratch: qualities_ sorted descending (see
  /// MarginalValuesUncounted). Per-object, so the by-query sharding of the
  /// parallel engines needs no locking.
  mutable std::vector<double> batch_sorted_;
};

}  // namespace psens

#endif  // PSENS_CORE_MULTI_SENSOR_POINT_QUERY_H_
