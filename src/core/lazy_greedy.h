#ifndef PSENS_CORE_LAZY_GREEDY_H_
#define PSENS_CORE_LAZY_GREEDY_H_

#include <vector>

#include "core/greedy.h"
#include "core/multi_query.h"
#include "core/slot.h"

namespace psens {

/// CELF-style lazy-evaluation variant of Algorithm 1 ("Greedy Sensor
/// Selection"). Semantically it implements the same selection rule as the
/// eager loop in greedy.cc — repeatedly pick the sensor maximizing
/// sum_{q: delta_v > 0} delta_v_{q,a} - c_a until no sensor has positive
/// net benefit — but instead of rescanning every remaining sensor each
/// round it keeps a max-heap of *cached* net gains and only re-evaluates
/// the top candidate:
///
///   - pop the heap maximum; if its cached net was computed this round it
///     is fresh and wins (or, if non-positive, terminates the run);
///   - otherwise re-evaluate its net against the current selection, stamp
///     it with the round, and push it back.
///
/// When every participating valuation v_q is submodular, cached nets are
/// upper bounds on true nets (marginals only shrink as selections grow),
/// so a fresh heap maximum provably dominates all other candidates and
/// the lazy run selects the *identical* sensor sequence — with identical
/// proportional payments (Algorithm 1 line 10) — as the eager rescan,
/// while typically making far fewer valuation calls (tracked through the
/// same `SelectionResult::valuation_calls` diagnostics).
///
/// The paper's aggregate valuation (Eq. 5) is mildly non-submodular
/// through its mean-quality factor; a stale cached net can then
/// underestimate a marginal that has grown, and the lazy run may pick a
/// different (still positive-net) sensor or stop one pick early. The
/// Theorem 1 properties (positive total utility, individual rationality,
/// payments covering cost) hold regardless, because they only depend on
/// committing positive-net sensors with proportional payments.
///
/// `cost_scale` has the same meaning as in GreedySensorSelection: it
/// scales sensor costs during candidate ranking (Eq. 18 sharing weights),
/// while the committed payment always charges the true slot cost.
SelectionResult LazyGreedySensorSelection(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<double>* cost_scale = nullptr);

}  // namespace psens

#endif  // PSENS_CORE_LAZY_GREEDY_H_
