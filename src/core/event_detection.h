#ifndef PSENS_CORE_EVENT_DETECTION_H_
#define PSENS_CORE_EVENT_DETECTION_H_

#include <vector>

#include "common/geometry.h"
#include "core/point_query.h"
#include "core/point_scheduling.h"

namespace psens {

/// Continuous event-detection queries (Q3 of Section 2.3): "notify me when
/// phenomenon > threshold with confidence > alpha at location l during
/// [t1, t2]". The paper describes but does not evaluate these, noting that
/// "data acquisition for this type ... is very similar to monitoring
/// queries; the main difference is that redundant sampling might be needed
/// to ensure the confidence requested".
///
/// We implement exactly that: each slot the query requests enough
/// concurrent readings that the combined confidence of the (independent,
/// partially trusted) readings reaches `confidence`; a reading of quality
/// theta is treated as correct with probability theta, so k readings of
/// qualities theta_i give confidence 1 - prod(1 - theta_i).
struct EventDetectionQuery {
  int id = 0;
  Point location;
  int t1 = 0;
  int t2 = 0;  // inclusive
  /// Event predicate: reading value > threshold fires the event.
  double threshold = 0.0;
  /// Required detection confidence in (0, 1).
  double confidence = 0.9;
  /// Budget spendable per slot on redundant readings.
  double budget_per_slot = 0.0;
  double theta_min = 0.2;

  // ---- state ----
  double spent = 0.0;
  int slots_detecting = 0;  // slots where the confidence target was met
  int slots_active = 0;
  bool triggered = false;   // an event notification was emitted

  bool ActiveAt(int t) const { return t >= t1 && t <= t2; }
};

/// Detection confidence of a set of reading qualities:
/// 1 - prod_i (1 - theta_i).
double DetectionConfidence(const std::vector<double>& qualities);

/// Smallest number of quality-`theta` readings reaching `confidence`
/// (at least 1; capped at `max_readings`).
int RequiredRedundancy(double confidence, double theta, int max_readings = 8);

/// Manager driving a set of event-detection queries through the shared
/// point-query machinery: CreatePointQueries emits one point query per
/// required redundant reading (budget split across them), ApplyResults
/// evaluates the achieved confidence and the event predicate against the
/// actual readings.
class EventDetectionManager {
 public:
  struct Config {
    /// Assumed per-reading quality when sizing redundancy upfront.
    double expected_theta = 0.7;
    int max_redundancy = 8;
  };

  explicit EventDetectionManager(const Config& config) : config_(config) {}

  void AddQuery(const EventDetectionQuery& query);

  /// Point queries for slot `t`; `parent` = internal query index. The i-th
  /// redundant reading for a query is a separate point query at the same
  /// location so the schedulers naturally pick distinct sensors.
  std::vector<PointQuery> CreatePointQueries(int t);

  /// Folds outcomes back: `readings[i]` is the measured value for created
  /// point query i (only used when assignments[i] is satisfied). Returns
  /// the number of queries whose event fired this slot with sufficient
  /// confidence.
  int ApplyResults(int t, const std::vector<PointQuery>& created,
                   const std::vector<PointAssignment>& assignments,
                   const std::vector<double>& readings);

  void RemoveExpired(int t);

  const std::vector<EventDetectionQuery>& queries() const { return queries_; }
  /// Fraction of active query-slots that met their confidence target.
  double DetectionRate() const;

 private:
  Config config_;
  std::vector<EventDetectionQuery> queries_;
  int64_t detecting_slots_ = 0;
  int64_t active_slots_ = 0;
};

}  // namespace psens

#endif  // PSENS_CORE_EVENT_DETECTION_H_
