#include "core/sensor.h"

#include <algorithm>

namespace psens {

double PrivacyLevelValue(PrivacySensitivity level) {
  switch (level) {
    case PrivacySensitivity::kZero: return 0.0;
    case PrivacySensitivity::kLow: return 0.25;
    case PrivacySensitivity::kModerate: return 0.5;
    case PrivacySensitivity::kHigh: return 0.75;
    case PrivacySensitivity::kVeryHigh: return 1.0;
  }
  return 0.0;
}

double Sensor::RemainingEnergy() const {
  if (profile_.lifetime <= 0) return 0.0;
  const double used =
      static_cast<double>(readings_taken_) / static_cast<double>(profile_.lifetime);
  return std::max(0.0, 1.0 - used);
}

double Sensor::EnergyCost() const {
  switch (profile_.energy_model) {
    case EnergyCostModel::kFixed:
      return profile_.base_price;
    case EnergyCostModel::kLinear:
      return profile_.base_price *
             (1.0 + profile_.energy_beta * (1.0 - RemainingEnergy()));
  }
  return profile_.base_price;
}

double Sensor::PrivacyLoss(int now) const {
  const int w = profile_.privacy_window;
  if (w <= 0) return 0.0;
  // Eq. (14): (w + sum_{t' in H} (w - (t - t'))) / (w (w + 1) / 2).
  // Report times older than the window contribute zero weight.
  double weighted = static_cast<double>(w);
  for (int t_prime : report_history_) {
    const int age = now - t_prime;
    if (age >= 0 && age < w) weighted += static_cast<double>(w - age);
  }
  const double normalizer = static_cast<double>(w) * (w + 1) / 2.0;
  return weighted / normalizer;
}

double Sensor::PrivacyCost(int now) const {
  const double psl = PrivacyLevelValue(profile_.privacy);
  if (psl == 0.0) return 0.0;
  return psl * PrivacyLoss(now) * profile_.base_price;
}

void Sensor::RecordReading(int now) {
  ++readings_taken_;
  report_history_.push_back(now);
  while (static_cast<int>(report_history_.size()) > profile_.privacy_window) {
    report_history_.pop_front();
  }
}

double ReadingQuality(double inaccuracy, double trust, double distance,
                      double dmax) {
  if (distance > dmax || dmax <= 0.0) return 0.0;
  return (1.0 - inaccuracy) * (1.0 - distance / dmax) * trust;
}

double ReadingQuality(const Sensor& s, const Point& lq, double dmax) {
  return ReadingQuality(s.profile().inaccuracy, s.profile().trust,
                        Distance(s.position(), lq), dmax);
}

}  // namespace psens
