#include "core/event_detection.h"

#include <algorithm>
#include <cmath>

namespace psens {

double DetectionConfidence(const std::vector<double>& qualities) {
  double miss = 1.0;
  for (double theta : qualities) {
    miss *= 1.0 - std::clamp(theta, 0.0, 1.0);
  }
  return 1.0 - miss;
}

int RequiredRedundancy(double confidence, double theta, int max_readings) {
  confidence = std::clamp(confidence, 0.0, 0.999999);
  theta = std::clamp(theta, 1e-6, 1.0 - 1e-9);
  // Smallest k with 1 - (1 - theta)^k >= confidence.
  const double k = std::log(1.0 - confidence) / std::log(1.0 - theta);
  return std::clamp(static_cast<int>(std::ceil(k - 1e-12)), 1, max_readings);
}

void EventDetectionManager::AddQuery(const EventDetectionQuery& query) {
  queries_.push_back(query);
  EventDetectionQuery& q = queries_.back();
  q.spent = 0.0;
  q.slots_detecting = 0;
  q.slots_active = 0;
  q.triggered = false;
}

std::vector<PointQuery> EventDetectionManager::CreatePointQueries(int t) {
  std::vector<PointQuery> created;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    EventDetectionQuery& q = queries_[qi];
    if (!q.ActiveAt(t)) continue;
    ++q.slots_active;
    const int redundancy = RequiredRedundancy(
        q.confidence, config_.expected_theta, config_.max_redundancy);
    if (q.budget_per_slot <= 0.0) continue;
    // Split the slot budget across the redundant readings. Each reading is
    // an independent point query on a small ring around the target (the
    // point schedulers assign one sensor per distinct location, so the
    // ring makes them eligible for *distinct* sensors — redundant
    // sampling of the same spot by different participants).
    const double share = q.budget_per_slot / redundancy;
    for (int r = 0; r < redundancy; ++r) {
      const double angle = 2.0 * M_PI * r / redundancy;
      PointQuery pq;
      pq.id = q.id * 1000 + r;
      pq.location = Point{q.location.x + 0.5 * std::cos(angle),
                          q.location.y + 0.5 * std::sin(angle)};
      pq.budget = share;
      pq.theta_min = q.theta_min;
      pq.parent = static_cast<int>(qi);
      created.push_back(pq);
    }
  }
  return created;
}

int EventDetectionManager::ApplyResults(int t, const std::vector<PointQuery>& created,
                                        const std::vector<PointAssignment>& assignments,
                                        const std::vector<double>& readings) {
  (void)t;
  int fired = 0;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    EventDetectionQuery& q = queries_[qi];
    std::vector<double> qualities;
    std::vector<int> used_sensors;
    bool any_above_threshold = false;
    for (size_t i = 0; i < created.size() && i < assignments.size(); ++i) {
      if (created[i].parent != static_cast<int>(qi)) continue;
      const PointAssignment& a = assignments[i];
      if (!a.satisfied()) continue;
      // Only distinct sensors count toward the confidence target: the same
      // sensor answering two ring queries is still a single measurement.
      if (std::find(used_sensors.begin(), used_sensors.end(), a.sensor) !=
          used_sensors.end()) {
        continue;
      }
      used_sensors.push_back(a.sensor);
      qualities.push_back(a.quality);
      q.spent += a.payment;
      if (i < readings.size() && readings[i] > q.threshold) {
        any_above_threshold = true;
      }
    }
    if (qualities.empty()) continue;
    const double achieved = DetectionConfidence(qualities);
    if (achieved >= q.confidence) {
      ++q.slots_detecting;
      ++detecting_slots_;
      if (any_above_threshold) {
        q.triggered = true;
        ++fired;
      }
    }
  }
  for (const EventDetectionQuery& q : queries_) {
    if (q.ActiveAt(t)) ++active_slots_;
  }
  return fired;
}

void EventDetectionManager::RemoveExpired(int t) {
  std::vector<EventDetectionQuery> alive;
  alive.reserve(queries_.size());
  for (EventDetectionQuery& q : queries_) {
    if (q.t2 >= t) alive.push_back(std::move(q));
  }
  queries_ = std::move(alive);
}

double EventDetectionManager::DetectionRate() const {
  return active_slots_ > 0
             ? static_cast<double>(detecting_slots_) / static_cast<double>(active_slots_)
             : 0.0;
}

}  // namespace psens
