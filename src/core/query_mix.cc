#include "core/query_mix.h"

#include <algorithm>
#include <memory>

#include "core/greedy.h"
#include "core/point_scheduling.h"

namespace psens {
namespace {

/// Converts the post-selection state of generated point queries into the
/// PointAssignment records the monitoring managers expect.
std::vector<PointAssignment> ExtractAssignments(
    const std::vector<std::unique_ptr<PointMultiQuery>>& queries) {
  std::vector<PointAssignment> assignments(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    PointAssignment& a = assignments[i];
    a.query = static_cast<int>(i);
    if (queries[i]->BestSensor() >= 0 && queries[i]->CurrentValue() > 0.0) {
      a.sensor = queries[i]->BestSensor();
      a.value = queries[i]->CurrentValue();
      a.quality = queries[i]->BestQuality();
      a.payment = queries[i]->TotalPayment();
    }
    assignments[i].query = static_cast<int>(i);
  }
  return assignments;
}

QueryMixSlotResult RunGreedyMix(const SlotContext& slot,
                                const std::vector<PointQuery>& user_point_queries,
                                const std::vector<AggregateQuery::Params>& aggregates,
                                LocationMonitoringManager* location_manager,
                                RegionMonitoringManager* region_manager,
                                GreedyEngine engine) {
  QueryMixSlotResult result;

  // Stage 1: point-query creation for continuous queries.
  std::vector<PointQuery> lm_created;
  if (location_manager != nullptr) {
    lm_created = location_manager->CreatePointQueries(slot.time);
  }
  std::vector<PointQuery> rm_created;
  if (region_manager != nullptr) {
    rm_created = region_manager->CreatePointQueries(slot);
  }

  // Build the joint query set for Algorithm 1.
  std::vector<std::unique_ptr<PointMultiQuery>> user_points;
  for (const PointQuery& q : user_point_queries) {
    user_points.push_back(std::make_unique<PointMultiQuery>(q, &slot));
  }
  std::vector<std::unique_ptr<PointMultiQuery>> lm_points;
  for (const PointQuery& q : lm_created) {
    lm_points.push_back(std::make_unique<PointMultiQuery>(q, &slot));
  }
  std::vector<std::unique_ptr<PointMultiQuery>> rm_points;
  for (const PointQuery& q : rm_created) {
    rm_points.push_back(std::make_unique<PointMultiQuery>(q, &slot));
  }
  std::vector<std::unique_ptr<AggregateQuery>> aggregate_queries;
  for (const AggregateQuery::Params& params : aggregates) {
    aggregate_queries.push_back(std::make_unique<AggregateQuery>(params, slot));
  }

  std::vector<MultiQuery*> all;
  for (auto& q : aggregate_queries) all.push_back(q.get());
  for (auto& q : user_points) all.push_back(q.get());
  for (auto& q : lm_points) all.push_back(q.get());
  for (auto& q : rm_points) all.push_back(q.get());

  // Stage 2: joint sensor selection (Algorithm 1) with the Eq. (18)
  // sharing weights from the region manager.
  std::vector<double> cost_scale;
  const std::vector<double>* scale_ptr = nullptr;
  if (region_manager != nullptr) {
    cost_scale = region_manager->CostScale(slot);
    scale_ptr = &cost_scale;
  }
  const SelectionResult selection =
      GreedySensorSelection(all, slot, scale_ptr, engine);
  result.selected_sensors = selection.selected_sensors;
  result.total_cost = selection.total_cost;
  result.valuation_calls = selection.valuation_calls;

  // Stage 3: apply results to continuous-query managers.
  if (location_manager != nullptr) {
    result.location_value_gain = location_manager->ApplyResults(
        slot.time, lm_created, ExtractAssignments(lm_points));
  }
  if (region_manager != nullptr) {
    // Sensors selected for queries other than this region query (A_{r,t}):
    // approximated as all selected sensors; duplicates with its own planned
    // samples are skipped inside ApplyResults.
    const RegionMonitoringManager::SlotOutcome outcome = region_manager->ApplyResults(
        slot, rm_created, ExtractAssignments(rm_points), selection.selected_sensors);
    result.region_value_gain = outcome.value_gain;
    // Stage "payment adjustment": contributions from region queries reduce
    // what other queries pay; they are transfers, so slot welfare is
    // unchanged (total value - total sensor cost).
  }

  // Stage 4: accounting.
  for (const auto& q : user_points) {
    ++result.point.total;
    if (q->BestSensor() >= 0 && q->CurrentValue() > 0.0) {
      ++result.point.answered;
      result.point.value += q->CurrentValue();
      result.point.quality_sum += q->CurrentValue() / q->MaxValue();
    }
  }
  for (const auto& q : aggregate_queries) {
    ++result.aggregate.total;
    if (q->CurrentValue() > 0.0) {
      ++result.aggregate.answered;
      result.aggregate.value += q->CurrentValue();
      result.aggregate.quality_sum += q->CurrentValue() / q->MaxValue();
    }
  }
  result.total_value = result.point.value + result.aggregate.value +
                       result.location_value_gain + result.region_value_gain;
  return result;
}

QueryMixSlotResult RunBaselineMix(const SlotContext& slot,
                                  const std::vector<PointQuery>& user_point_queries,
                                  const std::vector<AggregateQuery::Params>& aggregates,
                                  LocationMonitoringManager* location_manager,
                                  RegionMonitoringManager* region_manager) {
  QueryMixSlotResult result;

  // Step 1: aggregate queries first, sequential baseline.
  std::vector<std::unique_ptr<AggregateQuery>> aggregate_queries;
  for (const AggregateQuery::Params& params : aggregates) {
    aggregate_queries.push_back(std::make_unique<AggregateQuery>(params, slot));
  }
  std::vector<MultiQuery*> aggregate_ptrs;
  for (auto& q : aggregate_queries) aggregate_ptrs.push_back(q.get());
  const SelectionResult aggregate_selection =
      BaselineSequentialSelection(aggregate_ptrs, slot);
  result.valuation_calls += aggregate_selection.valuation_calls;

  // The cost of sensors selected for aggregates is zero for the point
  // stage (buffered data).
  SlotContext discounted = slot;
  for (int si : aggregate_selection.selected_sensors) {
    discounted.sensors[si].cost = 0.0;
  }

  // Step 2: point queries (end-user + those generated for continuous
  // queries, which in baseline mode fire only at desired sampling times),
  // scheduled with the arrival-order baseline.
  std::vector<PointQuery> lm_created;
  if (location_manager != nullptr) {
    lm_created = location_manager->CreatePointQueries(slot.time);
  }
  std::vector<PointQuery> rm_created;
  if (region_manager != nullptr) {
    rm_created = region_manager->CreatePointQueries(slot);
  }
  std::vector<PointQuery> all_points = user_point_queries;
  const size_t lm_offset = all_points.size();
  all_points.insert(all_points.end(), lm_created.begin(), lm_created.end());
  const size_t rm_offset = all_points.size();
  all_points.insert(all_points.end(), rm_created.begin(), rm_created.end());

  PointSchedulingOptions options;
  options.scheduler = PointScheduler::kBaseline;
  const PointScheduleResult point_result =
      SchedulePointQueries(all_points, discounted, options);

  // Step 3: apply continuous-query results.
  if (location_manager != nullptr) {
    std::vector<PointAssignment> lm_assign(
        point_result.assignments.begin() + static_cast<long>(lm_offset),
        point_result.assignments.begin() + static_cast<long>(rm_offset));
    result.location_value_gain =
        location_manager->ApplyResults(slot.time, lm_created, lm_assign);
  }
  if (region_manager != nullptr) {
    std::vector<PointAssignment> rm_assign(
        point_result.assignments.begin() + static_cast<long>(rm_offset),
        point_result.assignments.end());
    const RegionMonitoringManager::SlotOutcome outcome =
        region_manager->ApplyResults(slot, rm_created, rm_assign, {});
    result.region_value_gain = outcome.value_gain;
  }

  // Step 4: accounting. Selected sensors = aggregate-stage + point-stage.
  std::vector<char> selected(slot.sensors.size(), 0);
  for (int si : aggregate_selection.selected_sensors) selected[si] = 1;
  for (int si : point_result.selected_sensors) selected[si] = 1;
  for (int si = 0; si < static_cast<int>(slot.sensors.size()); ++si) {
    if (selected[si]) {
      result.selected_sensors.push_back(si);
      result.total_cost += slot.sensors[si].cost;
    }
  }

  for (size_t i = 0; i < user_point_queries.size(); ++i) {
    ++result.point.total;
    const PointAssignment& a = point_result.assignments[i];
    if (a.satisfied()) {
      ++result.point.answered;
      result.point.value += a.value;
      result.point.quality_sum += a.value / user_point_queries[i].budget;
    }
  }
  for (const auto& q : aggregate_queries) {
    ++result.aggregate.total;
    if (q->CurrentValue() > 0.0) {
      ++result.aggregate.answered;
      result.aggregate.value += q->CurrentValue();
      result.aggregate.quality_sum += q->CurrentValue() / q->MaxValue();
    }
  }
  result.total_value = result.point.value + result.aggregate.value +
                       result.location_value_gain + result.region_value_gain;
  return result;
}

}  // namespace

QueryMixSlotResult RunQueryMixSlot(const SlotContext& slot,
                                   const std::vector<PointQuery>& user_point_queries,
                                   const std::vector<AggregateQuery::Params>& aggregates,
                                   LocationMonitoringManager* location_manager,
                                   RegionMonitoringManager* region_manager,
                                   const QueryMixOptions& options) {
  if (options.use_greedy) {
    return RunGreedyMix(slot, user_point_queries, aggregates, location_manager,
                        region_manager, options.engine);
  }
  return RunBaselineMix(slot, user_point_queries, aggregates, location_manager,
                        region_manager);
}

}  // namespace psens
