#include "core/batch_eval.h"

#include <algorithm>
#include <span>

#include "common/thread_pool.h"

namespace psens {
namespace {

/// Minimum eval-set size / interested-query count before a round is worth
/// sharding: below these the pool's wake/wait handshake dwarfs the
/// valuation work. Purely a performance knob — results are bit-identical
/// on either side of it.
constexpr size_t kMinParallelSensors = 64;
constexpr size_t kMinParallelQueries = 256;

/// Cap on the pair buffer (entries, ~12 bytes each): dense plans — every
/// query interested in every sensor — would otherwise materialize the
/// full |Q| x n cross product per selection. Queries are windowed to this
/// budget instead; another pure performance/memory knob.
constexpr int64_t kMaxPairBufferEntries = int64_t{1} << 21;  // ~24 MB

}  // namespace

NetEvaluator::NetEvaluator(const std::vector<MultiQuery*>& queries,
                           const CandidatePlan& plan, const SlotContext& slot,
                           const std::vector<double>* cost_scale,
                           ThreadPool* pool)
    : queries_(queries),
      plan_(plan),
      slot_(slot),
      cost_scale_(cost_scale),
      pool_(pool) {
  const size_t n = slot.sensors.size();
  SlotArena* arena = slot.arena;
  cost_column_ = slot.SlabsSynced() ? slot.slabs.cost.data() : nullptr;
  offsets_.Acquire(arena, queries.size() + 1);
  offsets_[0] = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    offsets_[qi + 1] =
        offsets_[qi] + static_cast<int64_t>(plan_.SensorsOf(static_cast<int>(qi)).size());
  }
  // Window the queries to the pair-buffer budget (always at least one
  // query per window, so a single huge query still fits in one window's
  // oversized buffer rather than failing).
  windows_.push_back(0);
  int64_t max_window = 0;
  {
    int begin = 0;
    for (int qi = 0; qi < static_cast<int>(queries.size()); ++qi) {
      const int64_t window_pairs = offsets_[static_cast<size_t>(qi) + 1] -
                                   offsets_[static_cast<size_t>(begin)];
      if (window_pairs > kMaxPairBufferEntries && qi > begin) {
        max_window = std::max(max_window, offsets_[static_cast<size_t>(qi)] -
                                              offsets_[static_cast<size_t>(begin)]);
        begin = qi;
        windows_.push_back(begin);
      }
    }
    max_window = std::max(max_window, offsets_[queries.size()] -
                                          offsets_[static_cast<size_t>(begin)]);
    windows_.push_back(static_cast<int>(queries.size()));
  }
  pair_sensor_.Acquire(arena, static_cast<size_t>(max_window));
  pair_delta_.Acquire(arena, static_cast<size_t>(max_window));
  counts_.Acquire(arena, queries.size());
  std::fill(counts_.begin(), counts_.end(), int64_t{0});
  mark_.Acquire(arena, n);
  std::fill(mark_.begin(), mark_.end(), char{0});
  positive_sum_.Acquire(arena, n);
  std::fill(positive_sum_.begin(), positive_sum_.end(), 0.0);

  parallel_ = pool_ != nullptr && pool_->size() > 1;
  if (parallel_) {
    for (const MultiQuery* q : queries_) {
      if (!q->ThreadSafeBatchValuation()) {
        parallel_ = false;
        break;
      }
    }
  }
}

double NetEvaluator::ScaledCost(int sensor) const {
  double scale = 1.0;
  if (cost_scale_ != nullptr) scale = (*cost_scale_)[sensor];
  const double cost = cost_column_ != nullptr
                          ? cost_column_[sensor]
                          : slot_.sensors[static_cast<size_t>(sensor)].cost;
  return cost * scale;
}

void NetEvaluator::SweepQueries(int window_begin, int begin, int end) {
  const int64_t base = offsets_[static_cast<size_t>(window_begin)];
  for (int qi = begin; qi < end; ++qi) {
    const std::span<const int> candidates = plan_.SensorsOf(qi);
    int* sensors = pair_sensor_.data() + (offsets_[static_cast<size_t>(qi)] - base);
    double* deltas = pair_delta_.data() + (offsets_[static_cast<size_t>(qi)] - base);
    int64_t m = 0;
    for (int s : candidates) {
      if (mark_[static_cast<size_t>(s)]) sensors[m++] = s;
    }
    queries_[static_cast<size_t>(qi)]->MarginalValuesUncounted(
        std::span<const int>(sensors, static_cast<size_t>(m)),
        std::span<double>(deltas, static_cast<size_t>(m)));
    counts_[static_cast<size_t>(qi)] = m;
  }
}

void NetEvaluator::EvaluateNets(std::span<const int> sensors, double* net) {
  if (sensors.empty()) return;
  for (int s : sensors) mark_[static_cast<size_t>(s)] = 1;

  // Windows run sequentially in ascending query order; within a window,
  // stage 1 computes per-query batched deltas (each query's pairs land in
  // its own pre-laid slice, so parallel workers write disjoint memory and
  // the result is independent of scheduling) and stage 2 scatters them
  // into per-sensor positive-marginal accumulators in ascending query
  // order — across windows too, each sensor's sum stays one
  // floating-point chain in exactly the reference sensor-major loop's
  // (ascending query) order.
  for (size_t w = 0; w + 1 < windows_.size(); ++w) {
    const int wbegin = windows_[w];
    const int wend = windows_[w + 1];
    const int window_queries = wend - wbegin;
    if (window_queries <= 0) continue;
    if (parallel_ && sensors.size() >= kMinParallelSensors) {
      const int chunks = std::min(window_queries, pool_->size() * 8);
      const int per_chunk = (window_queries + chunks - 1) / chunks;
      pool_->ParallelFor(chunks, [&](int c) {
        const int begin = wbegin + c * per_chunk;
        const int end = std::min(wend, begin + per_chunk);
        if (begin < end) SweepQueries(wbegin, begin, end);
      });
    } else {
      SweepQueries(wbegin, wbegin, wend);
    }
    const int64_t base = offsets_[static_cast<size_t>(wbegin)];
    for (int qi = wbegin; qi < wend; ++qi) {
      const int* sensors_q =
          pair_sensor_.data() + (offsets_[static_cast<size_t>(qi)] - base);
      const double* deltas_q =
          pair_delta_.data() + (offsets_[static_cast<size_t>(qi)] - base);
      const int64_t m = counts_[static_cast<size_t>(qi)];
      for (int64_t j = 0; j < m; ++j) {
        if (deltas_q[j] > 0.0) {
          positive_sum_[static_cast<size_t>(sensors_q[j])] += deltas_q[j];
        }
      }
    }
  }

  // Stage 3: gather nets in eval-set order, resetting the touched state.
  for (size_t k = 0; k < sensors.size(); ++k) {
    const int s = sensors[k];
    net[k] = positive_sum_[static_cast<size_t>(s)] - ScaledCost(s);
    positive_sum_[static_cast<size_t>(s)] = 0.0;
    mark_[static_cast<size_t>(s)] = 0;
  }

  // Stage 4: batch-end accounting merge — one AddValuationCalls per query
  // from this (the coordinating) thread, never from workers.
  const int num_queries = static_cast<int>(queries_.size());
  for (int qi = 0; qi < num_queries; ++qi) {
    if (counts_[static_cast<size_t>(qi)] > 0) {
      queries_[static_cast<size_t>(qi)]->AddValuationCalls(
          counts_[static_cast<size_t>(qi)]);
    }
  }
}

double NetEvaluator::EvaluateNet(int sensor) {
  const std::span<const int> interested = plan_.QueriesOf(sensor);
  if (!parallel_ || interested.size() < kMinParallelQueries) {
    // Serial reference: counted scalar probes, ascending query order.
    double positive_sum = 0.0;
    for (int qi : interested) {
      const double delta = queries_[static_cast<size_t>(qi)]->MarginalValue(sensor);
      if (delta > 0.0) positive_sum += delta;
    }
    return positive_sum - ScaledCost(sensor);
  }

  // Stale-front re-evaluation batch: the sensor's per-query deltas are
  // pure and independent, so workers fill disjoint slots of a dense array
  // and the ascending-order reduction below reproduces the serial
  // floating-point chain exactly.
  const int m = static_cast<int>(interested.size());
  single_deltas_.resize(static_cast<size_t>(m));
  const int probe = sensor;
  const int chunks = std::min(m, pool_->size() * 8);
  const int per_chunk = (m + chunks - 1) / chunks;
  pool_->ParallelFor(chunks, [&](int c) {
    const int begin = c * per_chunk;
    const int end = std::min(m, begin + per_chunk);
    for (int p = begin; p < end; ++p) {
      queries_[static_cast<size_t>(interested[static_cast<size_t>(p)])]
          ->MarginalValuesUncounted(
              std::span<const int>(&probe, 1),
              std::span<double>(&single_deltas_[static_cast<size_t>(p)], 1));
    }
  });
  double positive_sum = 0.0;
  for (int p = 0; p < m; ++p) {
    if (single_deltas_[static_cast<size_t>(p)] > 0.0) {
      positive_sum += single_deltas_[static_cast<size_t>(p)];
    }
  }
  for (int qi : interested) {
    queries_[static_cast<size_t>(qi)]->AddValuationCalls(1);
  }
  return positive_sum - ScaledCost(sensor);
}

}  // namespace psens
