#include "core/greedy.h"

#include <algorithm>

#include "core/lazy_greedy.h"

namespace psens {
namespace {

int64_t TotalValuationCalls(const std::vector<MultiQuery*>& queries) {
  int64_t total = 0;
  for (const MultiQuery* q : queries) total += q->ValuationCalls();
  return total;
}

/// The literal Algorithm 1: full rescan of every remaining sensor each
/// round. Reference implementation for GreedyEngine::kEager.
SelectionResult EagerGreedySensorSelection(const std::vector<MultiQuery*>& queries,
                                           const SlotContext& slot,
                                           const std::vector<double>* cost_scale) {
  SelectionResult result;
  const int64_t calls_before = TotalValuationCalls(queries);
  const int n = static_cast<int>(slot.sensors.size());
  std::vector<char> remaining(n, 1);

  std::vector<double> marginals(queries.size());
  while (true) {
    int best_sensor = -1;
    double best_net = 0.0;
    for (int s = 0; s < n; ++s) {
      if (!remaining[s]) continue;
      double scale = 1.0;
      if (cost_scale != nullptr) scale = (*cost_scale)[s];
      const double cost = slot.sensors[s].cost * scale;
      double positive_sum = 0.0;
      for (MultiQuery* q : queries) {
        const double delta = q->MarginalValue(s);
        if (delta > 0.0) positive_sum += delta;
      }
      const double net = positive_sum - cost;
      if (net > best_net) {
        best_net = net;
        best_sensor = s;
      }
    }
    if (best_sensor < 0) break;  // line 12: no sensor with positive net gain

    // Recompute the winning sensor's per-query marginals and commit with
    // proportionate payments (line 10). The *true* cost is charged.
    const double true_cost = slot.sensors[best_sensor].cost;
    double positive_sum = 0.0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      marginals[qi] = queries[qi]->MarginalValue(best_sensor);
      if (marginals[qi] > 0.0) positive_sum += marginals[qi];
    }
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (marginals[qi] > 0.0) {
        const double payment = marginals[qi] * true_cost / positive_sum;
        queries[qi]->Commit(best_sensor, payment);
      }
    }
    remaining[best_sensor] = 0;
    result.selected_sensors.push_back(best_sensor);
    result.total_cost += true_cost;
  }

  for (const MultiQuery* q : queries) result.total_value += q->CurrentValue();
  result.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return result;
}

}  // namespace

SelectionResult GreedySensorSelection(const std::vector<MultiQuery*>& queries,
                                      const SlotContext& slot,
                                      const std::vector<double>* cost_scale,
                                      GreedyEngine engine) {
  if (engine == GreedyEngine::kEager) {
    return EagerGreedySensorSelection(queries, slot, cost_scale);
  }
  return LazyGreedySensorSelection(queries, slot, cost_scale);
}

SelectionResult BaselineSequentialSelection(const std::vector<MultiQuery*>& queries,
                                            const SlotContext& slot) {
  SelectionResult result;
  const int64_t calls_before = TotalValuationCalls(queries);
  const int n = static_cast<int>(slot.sensors.size());
  std::vector<double> remaining_cost(n);
  for (int s = 0; s < n; ++s) remaining_cost[s] = slot.sensors[s].cost;
  std::vector<char> selected(n, 0);

  for (MultiQuery* q : queries) {
    // Greedily buy sensors maximizing this query's own net utility at the
    // sensors' remaining (possibly zero) cost.
    std::vector<char> used(n, 0);
    while (true) {
      int best_sensor = -1;
      double best_net = 0.0;
      for (int s = 0; s < n; ++s) {
        if (used[s]) continue;
        const double net = q->MarginalValue(s) - remaining_cost[s];
        if (net > best_net) {
          best_net = net;
          best_sensor = s;
        }
      }
      if (best_sensor < 0) break;
      q->Commit(best_sensor, remaining_cost[best_sensor]);
      used[best_sensor] = 1;
      if (!selected[best_sensor]) {
        selected[best_sensor] = 1;
        result.selected_sensors.push_back(best_sensor);
        result.total_cost += slot.sensors[best_sensor].cost;
      }
      remaining_cost[best_sensor] = 0.0;  // buffered data is free from now on
    }
  }

  for (const MultiQuery* q : queries) result.total_value += q->CurrentValue();
  result.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return result;
}

}  // namespace psens
