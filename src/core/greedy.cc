#include "core/greedy.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/batch_eval.h"
#include "core/candidate_pruning.h"
#include "core/lazy_greedy.h"
#include "core/sieve_streaming.h"
#include "core/stochastic_greedy.h"

namespace psens {

int64_t TotalValuationCalls(const std::vector<MultiQuery*>& queries) {
  int64_t total = 0;
  for (const MultiQuery* q : queries) total += q->ValuationCalls();
  return total;
}

double CommitWithProportionalPayments(const std::vector<MultiQuery*>& queries,
                                      const CandidatePlan& plan,
                                      const SlotContext& slot, int sensor) {
  // (query, delta) scratch reused across commits. Commits only ever run
  // on the thread coordinating a selection; concurrent selection runs
  // (slot sharding) each see their own thread_local copy.
  thread_local std::vector<std::pair<int, double>> marginals;
  const double true_cost = slot.sensors[sensor].cost;
  marginals.clear();
  double positive_sum = 0.0;
  for (int qi : plan.QueriesOf(sensor)) {
    const double delta = queries[qi]->MarginalValue(sensor);
    marginals.emplace_back(qi, delta);
    if (delta > 0.0) positive_sum += delta;
  }
  for (const auto& [qi, delta] : marginals) {
    if (delta > 0.0) {
      queries[qi]->Commit(sensor, delta * true_cost / positive_sum);
    }
  }
  return true_cost;
}

namespace {

/// The literal Algorithm 1: full rescan of every remaining sensor each
/// round. Reference implementation for GreedyEngine::kEager. When queries
/// expose candidate lists (indexed slots), the rescan covers only sensors
/// some query can value, and each sensor's net sums only over its
/// interested queries — selections and payments are bit-identical to the
/// dense scan (see core/candidate_pruning.h). The rescan itself runs
/// through the batched round evaluator (core/batch_eval.h): per-query
/// MarginalValues sweeps instead of per-sensor virtual probes, sharded
/// over `slot.pool` when one is attached — with nets, tie-breaks, and
/// valuation-call totals bit-identical to this loop's historical
/// sensor-major scalar form for any thread count.
SelectionResult EagerGreedySensorSelection(const std::vector<MultiQuery*>& queries,
                                           const SlotContext& slot,
                                           const std::vector<double>* cost_scale) {
  SelectionResult result;
  const int64_t calls_before = TotalValuationCalls(queries);
  const int n = static_cast<int>(slot.sensors.size());
  // Round scratch draws from the slot arena when one is attached (reset
  // at the next BeginSlot; a selection never outlives its slot).
  ArenaBuffer<char> remaining;
  remaining.Acquire(slot.arena, static_cast<size_t>(n));
  // SlotContext::eligible (per-shard scheduler passes) restricts which
  // sensors may be *selected*; valuations and payments are untouched.
  for (int s = 0; s < n; ++s) {
    remaining[static_cast<size_t>(s)] =
        slot.eligible == nullptr || (*slot.eligible)[static_cast<size_t>(s)];
  }

  const CandidatePlan plan = BuildCandidatePlan(queries, n, slot.arena);
  NetEvaluator evaluator(queries, plan, slot, cost_scale, slot.pool);

  ArenaBuffer<int> scan;  // remaining scan sensors, ascending, per round
  ArenaBuffer<double> net;
  scan.Acquire(slot.arena, static_cast<size_t>(n));
  net.Acquire(slot.arena, static_cast<size_t>(n));
  while (true) {
    size_t scan_n = 0;
    for (int s : plan.ScanSensors()) {
      if (remaining[static_cast<size_t>(s)]) scan[scan_n++] = s;
    }
    evaluator.EvaluateNets({scan.data(), scan_n}, net.data());
    int best_sensor = -1;
    double best_net = 0.0;
    // Ascending stable argmax with strict >: the first maximum wins, the
    // same (gain, sensor-id) tie-break as the reference ascending rescan.
    for (size_t k = 0; k < scan_n; ++k) {
      if (net[k] > best_net) {
        best_net = net[k];
        best_sensor = scan[k];
      }
    }
    if (best_sensor < 0) break;  // line 12: no sensor with positive net gain
    CheckPrunedMarginals(queries, plan, best_sensor);
    result.total_cost +=
        CommitWithProportionalPayments(queries, plan, slot, best_sensor);
    remaining[static_cast<size_t>(best_sensor)] = 0;
    result.selected_sensors.push_back(best_sensor);
  }

  for (const MultiQuery* q : queries) result.total_value += q->CurrentValue();
  result.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return result;
}

}  // namespace

SelectionResult GreedySensorSelection(const std::vector<MultiQuery*>& queries,
                                      const SlotContext& slot,
                                      const std::vector<double>* cost_scale,
                                      GreedyEngine engine) {
  switch (engine) {
    case GreedyEngine::kEager:
      return EagerGreedySensorSelection(queries, slot, cost_scale);
    case GreedyEngine::kStochastic:
      return StochasticGreedySensorSelection(queries, slot, cost_scale);
    case GreedyEngine::kSieve:
      return SieveStreamingSensorSelection(queries, slot, cost_scale);
    case GreedyEngine::kLazy:
      break;
  }
  return LazyGreedySensorSelection(queries, slot, cost_scale);
}

SelectionResult BaselineSequentialSelection(const std::vector<MultiQuery*>& queries,
                                            const SlotContext& slot) {
  SelectionResult result;
  const int64_t calls_before = TotalValuationCalls(queries);
  const int n = static_cast<int>(slot.sensors.size());
  std::vector<double> remaining_cost(n);
  for (int s = 0; s < n; ++s) remaining_cost[s] = slot.sensors[s].cost;
  std::vector<char> selected(n, 0);

  std::vector<int> all_sensors(n);
  std::iota(all_sensors.begin(), all_sensors.end(), 0);

  for (MultiQuery* q : queries) {
    // Greedily buy sensors maximizing this query's own net utility at the
    // sensors' remaining (possibly zero) cost. Only the query's candidate
    // sensors can have positive net (others have marginal <= 0 against
    // cost >= 0), so the scan shrinks to them on indexed slots.
    const std::vector<int>* candidates = q->CandidateSensors();
    const std::vector<int>& scan = candidates != nullptr ? *candidates : all_sensors;
    std::vector<char> used(n, 0);
    while (true) {
      int best_sensor = -1;
      double best_net = 0.0;
      for (int s : scan) {
        if (used[s]) continue;
        const double net = q->MarginalValue(s) - remaining_cost[s];
        if (net > best_net) {
          best_net = net;
          best_sensor = s;
        }
      }
      if (best_sensor < 0) break;
      q->Commit(best_sensor, remaining_cost[best_sensor]);
      used[best_sensor] = 1;
      if (!selected[best_sensor]) {
        selected[best_sensor] = 1;
        result.selected_sensors.push_back(best_sensor);
        result.total_cost += slot.sensors[best_sensor].cost;
      }
      remaining_cost[best_sensor] = 0.0;  // buffered data is free from now on
    }
  }

  for (const MultiQuery* q : queries) result.total_value += q->CurrentValue();
  result.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return result;
}

}  // namespace psens
