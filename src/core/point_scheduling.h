#ifndef PSENS_CORE_POINT_SCHEDULING_H_
#define PSENS_CORE_POINT_SCHEDULING_H_

#include <cstdint>
#include <vector>

#include "core/point_query.h"
#include "core/slot.h"
#include "solver/facility_location.h"

namespace psens {

/// How single-sensor point queries are scheduled within a slot
/// (Section 3.1 and the baseline of Section 4.3).
enum class PointScheduler {
  /// Exact BILP of Eq. (9) via branch-and-bound.
  kOptimal,
  /// Deterministic local search for non-monotone submodular u (Eq. 12),
  /// the 1/3-approximation of Feige et al. used by the paper.
  kLocalSearch,
  /// Randomized local-search variant: improvement moves scanned in random
  /// order with random restarts (practical stand-in for the randomized
  /// 2/5-approximation mentioned in Section 3.1.2).
  kRandomizedLocalSearch,
  /// Paper baseline: queries processed on arrival one by one, each picking
  /// its best sensor; a selected sensor's cost drops to zero for later
  /// queries in the slot (buffered data is free).
  kBaseline,
};

/// Per-query outcome of point scheduling.
struct PointAssignment {
  /// Index into the scheduled query vector.
  int query = -1;
  /// Index into SlotContext::sensors, or -1 if the query got no sensor.
  int sensor = -1;
  /// Achieved valuation v_q(s) (0 when unsatisfied).
  double value = 0.0;
  /// Achieved reading quality theta.
  double quality = 0.0;
  /// Payment pi_{q,s} charged to the query (Eq. 11). Always < value for
  /// satisfied queries (individual rationality).
  double payment = 0.0;

  bool satisfied() const { return sensor >= 0 && value > 0.0; }
};

struct PointScheduleResult {
  std::vector<PointAssignment> assignments;  // one per query, same order
  /// Selected slot-sensor indices (each cost is paid once).
  std::vector<int> selected_sensors;
  double total_value = 0.0;
  double total_cost = 0.0;
  /// True when the optimal scheduler proved optimality (always true for
  /// heuristics, which make no claim).
  bool proven_optimal = false;

  double Utility() const { return total_value - total_cost; }
  int NumSatisfied() const;
};

struct PointSchedulingOptions {
  PointScheduler scheduler = PointScheduler::kLocalSearch;
  /// Additive improvement threshold for local search moves.
  double epsilon = 1e-6;
  /// Restarts for the randomized local search.
  int restarts = 3;
  uint64_t seed = 1;
  /// Node budget for the exact branch-and-bound. On the evaluation's
  /// dense slots the contested core occasionally needs more nodes than
  /// this to *prove* optimality; the search then returns the best solution
  /// found (never worse than the local-search warm start) and flags
  /// `proven_optimal = false`.
  int64_t node_limit = 500'000;
};

/// Translates the slot's single-sensor point queries into the facility-
/// location form of Eq. (9): distinct queried locations become clients,
/// sensors become facilities, v_l(s) = sum of positive per-query values.
/// `location_of_query[i]` gives query i's location index.
FacilityLocationProblem BuildPointProblem(const std::vector<PointQuery>& queries,
                                          const SlotContext& slot,
                                          std::vector<int>* location_of_query);

/// Schedules single-sensor point queries with the chosen scheduler and
/// computes Eq. (11) payments.
PointScheduleResult SchedulePointQueries(const std::vector<PointQuery>& queries,
                                         const SlotContext& slot,
                                         const PointSchedulingOptions& options);

/// Local-search maximization of the submodular utility u (Eq. 12) over a
/// facility-location instance. Exposed for tests and micro-benchmarks.
FacilityLocationSolution LocalSearchFacility(const FacilityLocationProblem& problem,
                                             double epsilon = 1e-6,
                                             bool randomized = false,
                                             uint64_t seed = 1, int restarts = 1);

}  // namespace psens

#endif  // PSENS_CORE_POINT_SCHEDULING_H_
