#include "solver/simplex.h"

#include <cmath>
#include <limits>

namespace psens {
namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Rows 0..m-1 are constraints, row m is the
/// objective (stored negated, so the solve drives all entries >= 0).
/// Column layout: [structural | slack | artificial | rhs].
struct Tableau {
  size_t m = 0;
  size_t cols = 0;  // total columns including rhs
  std::vector<std::vector<double>> t;
  std::vector<size_t> basis;

  double& At(size_t r, size_t c) { return t[r][c]; }
  double At(size_t r, size_t c) const { return t[r][c]; }

  void Pivot(size_t pivot_row, size_t pivot_col) {
    const double pivot = t[pivot_row][pivot_col];
    for (size_t c = 0; c < cols; ++c) t[pivot_row][c] /= pivot;
    for (size_t r = 0; r <= m; ++r) {
      if (r == pivot_row) continue;
      const double factor = t[r][pivot_col];
      if (std::fabs(factor) < kEps) continue;
      for (size_t c = 0; c < cols; ++c) {
        t[r][c] -= factor * t[pivot_row][c];
      }
    }
    basis[pivot_row] = pivot_col;
  }

  /// Runs the simplex loop on the current objective row over columns in
  /// [0, usable_cols). Returns kOptimal or kUnbounded / kIterationLimit.
  LpStatus Iterate(size_t usable_cols, int max_iterations) {
    const size_t rhs = cols - 1;
    int iterations = 0;
    // Switch to Bland's rule (guaranteed termination) once we have done
    // enough iterations to suspect cycling.
    const int bland_threshold = max_iterations / 2;
    while (true) {
      if (++iterations > max_iterations) return LpStatus::kIterationLimit;
      const bool bland = iterations > bland_threshold;
      // Entering column: most negative objective entry (Dantzig) or the
      // first negative one (Bland).
      size_t entering = usable_cols;
      double best = -kEps;
      for (size_t c = 0; c < usable_cols; ++c) {
        const double v = t[m][c];
        if (v < -kEps) {
          if (bland) {
            entering = c;
            break;
          }
          if (v < best) {
            best = v;
            entering = c;
          }
        }
      }
      if (entering == usable_cols) return LpStatus::kOptimal;
      // Ratio test.
      size_t leaving = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < m; ++r) {
        const double a = t[r][entering];
        if (a > kEps) {
          const double ratio = t[r][rhs] / a;
          if (ratio < best_ratio - kEps ||
              (bland && ratio < best_ratio + kEps && leaving != m &&
               basis[r] < basis[leaving])) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == m) return LpStatus::kUnbounded;
      Pivot(leaving, entering);
    }
  }
};

}  // namespace

LpSolution SimplexSolver::Maximize(const Matrix& a, const std::vector<double>& b,
                                   const std::vector<double>& c,
                                   int max_iterations) {
  LpSolution solution;
  const size_t m = a.Rows();
  const size_t n = a.Cols();
  if (b.size() != m || c.size() != n) return solution;

  // Count artificials: one per row with negative rhs.
  size_t num_artificial = 0;
  for (double bi : b) {
    if (bi < 0.0) ++num_artificial;
  }

  Tableau tab;
  tab.m = m;
  const size_t structural = n;
  const size_t slack0 = structural;
  const size_t art0 = slack0 + m;
  tab.cols = art0 + num_artificial + 1;
  const size_t rhs = tab.cols - 1;
  tab.t.assign(m + 1, std::vector<double>(tab.cols, 0.0));
  tab.basis.assign(m, 0);

  size_t art = 0;
  for (size_t r = 0; r < m; ++r) {
    const double sign = b[r] < 0.0 ? -1.0 : 1.0;
    for (size_t j = 0; j < n; ++j) tab.At(r, j) = sign * a(r, j);
    tab.At(r, slack0 + r) = sign;  // slack coefficient
    tab.At(r, rhs) = sign * b[r];
    if (b[r] < 0.0) {
      tab.At(r, art0 + art) = 1.0;
      tab.basis[r] = art0 + art;
      ++art;
    } else {
      tab.basis[r] = slack0 + r;
    }
  }

  if (num_artificial > 0) {
    // Phase 1: minimize sum of artificials == maximize -(sum). Objective row
    // (negated for our convention) starts with +1 on artificial columns, then
    // is priced out against the rows whose basis is artificial.
    for (size_t k = 0; k < num_artificial; ++k) tab.At(m, art0 + k) = 1.0;
    for (size_t r = 0; r < m; ++r) {
      if (tab.basis[r] >= art0) {
        for (size_t cc = 0; cc < tab.cols; ++cc) {
          tab.At(m, cc) -= tab.At(r, cc);
        }
      }
    }
    const LpStatus phase1 = tab.Iterate(tab.cols - 1, max_iterations);
    if (phase1 == LpStatus::kIterationLimit) {
      solution.status = phase1;
      return solution;
    }
    // Feasible iff the phase-1 optimum is ~0 (rhs cell holds -optimum).
    if (std::fabs(tab.At(m, rhs)) > 1e-6) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive any artificial still in the basis out (degenerate rows).
    for (size_t r = 0; r < m; ++r) {
      if (tab.basis[r] >= art0) {
        size_t entering = art0;
        for (size_t cc = 0; cc < art0; ++cc) {
          if (std::fabs(tab.At(r, cc)) > kEps) {
            entering = cc;
            break;
          }
        }
        if (entering < art0) tab.Pivot(r, entering);
        // If the whole row is zero the constraint is redundant; leave it.
      }
    }
  }

  // Phase 2: restore the real objective (negated) and price out basics.
  for (size_t cc = 0; cc < tab.cols; ++cc) tab.At(m, cc) = 0.0;
  for (size_t j = 0; j < n; ++j) tab.At(m, j) = -c[j];
  for (size_t r = 0; r < m; ++r) {
    const size_t bc = tab.basis[r];
    const double coef = tab.At(m, bc);
    if (std::fabs(coef) > kEps) {
      for (size_t cc = 0; cc < tab.cols; ++cc) {
        tab.At(m, cc) -= coef * tab.At(r, cc);
      }
    }
  }
  // Forbid artificial columns from re-entering by restricting usable columns.
  const LpStatus phase2 = tab.Iterate(art0, max_iterations);
  if (phase2 != LpStatus::kOptimal) {
    solution.status = phase2;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (tab.basis[r] < n) solution.x[tab.basis[r]] = tab.At(r, rhs);
  }
  solution.objective = tab.At(m, rhs);
  return solution;
}

}  // namespace psens
