#include "solver/facility_location.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace psens {
namespace {

constexpr double kEps = 1e-9;

/// Depth-first branch-and-bound over one connected component of the
/// contested core (after persistency preprocessing). `base_value[l]` holds
/// the best value already guaranteed at location l by pre-opened sensors.
class ComponentSearch {
 public:
  ComponentSearch(const FacilityLocationProblem& problem,
                  std::vector<double>* best_value, int64_t node_limit)
      : problem_(problem), best_value_(*best_value), node_limit_(node_limit) {}

  /// Searches over `candidates`; returns the best additional objective and
  /// fills `chosen` with the opened subset. best_value_ is restored.
  double Run(const std::vector<int>& candidates, std::vector<int>* chosen,
             bool* proven_optimal, int64_t* nodes) {
    incumbent_ = 0.0;
    incumbent_open_.clear();
    open_path_.clear();
    GreedyIncumbent(candidates);
    Dfs(0.0, candidates);
    *chosen = incumbent_open_;
    *proven_optimal = !hit_node_limit_;
    *nodes += nodes_;
    return incumbent_;
  }

 private:
  double Marginal(int i) const {
    double gain = -problem_.open_cost[i];
    for (const auto& [loc, v] : problem_.value[i]) {
      if (v > best_value_[loc]) gain += v - best_value_[loc];
    }
    return gain;
  }

  void ApplyOpen(int i, std::vector<std::pair<int, double>>* undo) {
    for (const auto& [loc, v] : problem_.value[i]) {
      if (v > best_value_[loc]) {
        undo->emplace_back(loc, best_value_[loc]);
        best_value_[loc] = v;
      }
    }
  }

  void GreedyIncumbent(const std::vector<int>& candidates) {
    std::vector<std::pair<int, double>> undo;
    std::vector<int> opened;
    double objective = 0.0;
    std::vector<char> used(problem_.NumSensors(), 0);
    while (true) {
      int best = -1;
      double best_gain = kEps;
      for (int i : candidates) {
        if (used[i]) continue;
        const double g = Marginal(i);
        if (g > best_gain) {
          best_gain = g;
          best = i;
        }
      }
      if (best < 0) break;
      used[best] = 1;
      ApplyOpen(best, &undo);
      objective += best_gain;
      opened.push_back(best);
    }
    if (objective > incumbent_) {
      incumbent_ = objective;
      incumbent_open_ = opened;
    }
    // Restore.
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      best_value_[it->first] = it->second;
    }
  }

  void Dfs(double objective, const std::vector<int>& undecided) {
    if (hit_node_limit_) return;
    if (++nodes_ > node_limit_) {
      hit_node_limit_ = true;
      return;
    }
    if (objective > incumbent_ + kEps) {
      incumbent_ = objective;
      incumbent_open_ = open_path_;
    }
    // Filter non-positive-marginal sensors (permanently dominated in this
    // subtree: best_value_ only grows) and compute two upper bounds:
    // marginal-sum (submodularity) and per-location best improvement.
    std::vector<int> active;
    active.reserve(undecided.size());
    double marginal_sum = 0.0;
    int branch_sensor = -1;
    double branch_marginal = kEps;
    for (int loc : touched_) loc_improve_[loc] = 0.0;
    touched_.clear();
    if (loc_improve_.size() < best_value_.size()) {
      loc_improve_.assign(best_value_.size(), 0.0);
    }
    for (int i : undecided) {
      const double m = Marginal(i);
      if (m <= 0.0) continue;
      active.push_back(i);
      marginal_sum += m;
      if (m > branch_marginal) {
        branch_marginal = m;
        branch_sensor = i;
      }
      for (const auto& [loc, v] : problem_.value[i]) {
        const double improve = v - best_value_[loc];
        if (improve > 0.0) {
          if (loc_improve_[loc] == 0.0) touched_.push_back(loc);
          if (improve > loc_improve_[loc]) loc_improve_[loc] = improve;
        }
      }
    }
    if (branch_sensor < 0) return;
    double location_sum = 0.0;
    for (int loc : touched_) location_sum += loc_improve_[loc];
    if (objective + std::min(marginal_sum, location_sum) <= incumbent_ + kEps) {
      return;
    }
    const int i = branch_sensor;
    std::vector<int> rest;
    rest.reserve(active.size() - 1);
    for (int j : active) {
      if (j != i) rest.push_back(j);
    }

    // Branch 1: open sensor i.
    std::vector<std::pair<int, double>> undo;
    ApplyOpen(i, &undo);
    open_path_.push_back(i);
    Dfs(objective + branch_marginal, rest);
    open_path_.pop_back();
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      best_value_[it->first] = it->second;
    }

    // Branch 2: close sensor i.
    Dfs(objective, rest);
  }

  const FacilityLocationProblem& problem_;
  std::vector<double>& best_value_;
  const int64_t node_limit_;

  std::vector<int> open_path_;
  std::vector<double> loc_improve_;
  std::vector<int> touched_;

  double incumbent_ = 0.0;
  std::vector<int> incumbent_open_;
  int64_t nodes_ = 0;
  bool hit_node_limit_ = false;
};

/// Union-find for the component decomposition.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

double EvaluateOpenSet(const FacilityLocationProblem& problem,
                       const std::vector<char>& open,
                       std::vector<int>* assignment) {
  std::vector<double> best(problem.num_locations, 0.0);
  std::vector<int> assigned(problem.num_locations, -1);
  double cost = 0.0;
  for (int i = 0; i < problem.NumSensors(); ++i) {
    if (!open[i]) continue;
    cost += problem.open_cost[i];
    for (const auto& [loc, v] : problem.value[i]) {
      if (v > best[loc]) {
        best[loc] = v;
        assigned[loc] = i;
      }
    }
  }
  double total_value = 0.0;
  for (double v : best) total_value += v;
  if (assignment != nullptr) *assignment = std::move(assigned);
  return total_value - cost;
}

FacilityLocationSolution FacilityLocationSolver::Solve(
    const FacilityLocationProblem& problem,
    const std::vector<char>* warm_start) const {
  const int n = problem.NumSensors();
  FacilityLocationSolution solution;
  solution.open.assign(n, 0);
  solution.proven_optimal = true;

  // ---------------------------------------------------------------------
  // Persistency preprocessing (fixpoint):
  //  * pre-OPEN sensor i when its marginal is positive even if every other
  //    non-closed sensor were open (submodularity: its marginal against
  //    any subset is at least that, so every optimal solution contains i);
  //  * pre-CLOSE sensor i when its marginal against just the pre-opened
  //    set is non-positive (it can only shrink as more sensors open).
  // ---------------------------------------------------------------------
  enum : char { kUndecided = 0, kOpen = 1, kClosed = 2 };
  std::vector<char> state(n, kUndecided);
  std::vector<double> best_open(problem.num_locations, 0.0);

  // Dominance elimination: close i when some j is pointwise at least as
  // valuable at every location and at most as costly (ties broken by
  // index, so exact twins keep exactly one representative). Mobile sensors
  // pausing at the same popular spot are the common case.
  {
    std::vector<std::vector<std::pair<int, double>>> sorted = problem.value;
    for (auto& list : sorted) std::sort(list.begin(), list.end());
    auto dominates = [&](int j, int i) {
      // Does j dominate i?
      if (problem.open_cost[j] > problem.open_cost[i] + kEps) return false;
      const auto& vi = sorted[i];
      const auto& vj = sorted[j];
      size_t pj = 0;
      bool strict = problem.open_cost[j] < problem.open_cost[i] - kEps;
      for (const auto& [loc, v] : vi) {
        while (pj < vj.size() && vj[pj].first < loc) ++pj;
        if (pj == vj.size() || vj[pj].first != loc) return false;
        if (vj[pj].second < v - kEps) return false;
        if (vj[pj].second > v + kEps) strict = true;
      }
      if (vj.size() > vi.size()) strict = true;
      return strict || j < i;
    };
    for (int i = 0; i < n; ++i) {
      if (sorted[i].empty()) {
        state[i] = kClosed;  // yields nothing anywhere
        continue;
      }
      for (int j = 0; j < n && state[i] == kUndecided; ++j) {
        if (j == i || state[j] == kClosed) continue;
        if (sorted[j].size() < sorted[i].size()) continue;
        if (dominates(j, i)) state[i] = kClosed;
      }
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    // Top-2 values per location over non-closed sensors.
    std::vector<double> top1(problem.num_locations, 0.0);
    std::vector<double> top2(problem.num_locations, 0.0);
    std::vector<int> top1_sensor(problem.num_locations, -1);
    for (int i = 0; i < n; ++i) {
      if (state[i] == kClosed) continue;
      for (const auto& [loc, v] : problem.value[i]) {
        if (v > top1[loc]) {
          top2[loc] = top1[loc];
          top1[loc] = v;
          top1_sensor[loc] = i;
        } else if (v > top2[loc]) {
          top2[loc] = v;
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      if (state[i] != kUndecided) continue;
      // Pessimistic marginal: all other non-closed sensors open.
      double pess = -problem.open_cost[i];
      for (const auto& [loc, v] : problem.value[i]) {
        const double others = top1_sensor[loc] == i ? top2[loc] : top1[loc];
        if (v > others) pess += v - others;
      }
      if (pess > kEps) {
        state[i] = kOpen;
        for (const auto& [loc, v] : problem.value[i]) {
          if (v > best_open[loc]) best_open[loc] = v;
        }
        changed = true;
        continue;
      }
      // Optimistic marginal: only pre-opened sensors open.
      double opt = -problem.open_cost[i];
      for (const auto& [loc, v] : problem.value[i]) {
        if (v > best_open[loc]) opt += v - best_open[loc];
      }
      if (opt <= kEps) {
        state[i] = kClosed;
        changed = true;
      }
    }
  }

  // ---------------------------------------------------------------------
  // Component decomposition of the remaining undecided core: two sensors
  // interact only if they can both improve some common location.
  // ---------------------------------------------------------------------
  std::vector<int> undecided;
  for (int i = 0; i < n; ++i) {
    if (state[i] == kUndecided) undecided.push_back(i);
  }
  UnionFind uf(n);
  {
    std::vector<int> last_at_loc(problem.num_locations, -1);
    for (int i : undecided) {
      for (const auto& [loc, v] : problem.value[i]) {
        if (v <= best_open[loc]) continue;  // cannot improve here
        if (last_at_loc[loc] >= 0) uf.Union(i, last_at_loc[loc]);
        last_at_loc[loc] = i;
      }
    }
  }
  std::vector<std::vector<int>> components;
  {
    std::vector<int> root_to_component(n, -1);
    for (int i : undecided) {
      const int r = uf.Find(i);
      if (root_to_component[r] < 0) {
        root_to_component[r] = static_cast<int>(components.size());
        components.emplace_back();
      }
      components[root_to_component[r]].push_back(i);
    }
  }

  // ---------------------------------------------------------------------
  // Exact search per component, on top of the pre-opened baseline.
  // ---------------------------------------------------------------------
  for (int i = 0; i < n; ++i) solution.open[i] = state[i] == kOpen ? 1 : 0;
  std::vector<double> best_value = best_open;
  for (const std::vector<int>& component : components) {
    // The node limit is a shared budget across components. Even with an
    // exhausted budget each component still gets its greedy incumbent (a
    // single root visit), so the result stays at least greedy-quality.
    const int64_t remaining =
        std::max<int64_t>(1, node_limit_ - solution.nodes_explored);
    ComponentSearch search(problem, &best_value, remaining);
    std::vector<int> chosen;
    bool proven = true;
    search.Run(component, &chosen, &proven, &solution.nodes_explored);
    if (!proven) solution.proven_optimal = false;
    for (int i : chosen) {
      solution.open[i] = 1;
      // Committing this component's choice before solving the next one is
      // sound: components share no improvable location.
      for (const auto& [loc, v] : problem.value[i]) {
        if (v > best_value[loc]) best_value[loc] = v;
      }
    }
  }

  solution.objective = EvaluateOpenSet(problem, solution.open, &solution.assignment);

  // A caller-provided warm start can only help if the search was truncated.
  if (warm_start != nullptr && static_cast<int>(warm_start->size()) == n) {
    std::vector<int> assignment;
    const double warm_objective = EvaluateOpenSet(problem, *warm_start, &assignment);
    if (warm_objective > solution.objective) {
      solution.objective = warm_objective;
      solution.open = *warm_start;
      solution.assignment = std::move(assignment);
    }
  }
  return solution;
}

FacilityLocationSolution SolveByBruteForce(const FacilityLocationProblem& problem) {
  const int n = problem.NumSensors();
  FacilityLocationSolution best;
  best.open.assign(n, 0);
  best.objective = 0.0;
  best.proven_optimal = true;
  std::vector<char> open(n, 0);
  const uint64_t subsets = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    for (int i = 0; i < n; ++i) open[i] = (mask >> i) & 1 ? 1 : 0;
    const double obj = EvaluateOpenSet(problem, open);
    if (obj > best.objective + 1e-12) {
      best.objective = obj;
      best.open = open;
    }
    best.nodes_explored++;
  }
  best.objective = EvaluateOpenSet(problem, best.open, &best.assignment);
  return best;
}

}  // namespace psens
