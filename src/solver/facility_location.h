#ifndef PSENS_SOLVER_FACILITY_LOCATION_H_
#define PSENS_SOLVER_FACILITY_LOCATION_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace psens {

/// The BILP of Eq. (9) in maximization-form uncapacitated-facility-location
/// structure: opening sensor i costs `open_cost[i]`; location l assigned to
/// an open sensor i yields `value` v_l(i); each location is assigned to at
/// most one sensor; objective = sum of assigned values - sum of open costs.
///
/// Values are given sparsely per sensor as (location, value) pairs with
/// value > 0 (non-positive entries can never help and are dropped by the
/// paper's v' transformation, Eq. 10).
struct FacilityLocationProblem {
  int num_locations = 0;
  std::vector<double> open_cost;
  std::vector<std::vector<std::pair<int, double>>> value;

  int NumSensors() const { return static_cast<int>(open_cost.size()); }
};

struct FacilityLocationSolution {
  double objective = 0.0;
  /// Per location: index of the assigned sensor, or -1 if unassigned.
  std::vector<int> assignment;
  /// Per sensor: 1 if opened (selected), 0 otherwise.
  std::vector<char> open;
  /// True when the search proved optimality (node limit not hit).
  bool proven_optimal = false;
  int64_t nodes_explored = 0;
};

/// Exact branch-and-bound solver for `FacilityLocationProblem`.
///
/// Branches on sensor open/close decisions. The upper bound exploits
/// submodularity of the coverage term: given the currently opened set W and
/// undecided set U, g(W + S) <= g(W) + sum_{i in S} max(0, marginal_i(W)),
/// so bound = g(W) + sum over undecided positive marginals. The incumbent
/// is warm-started greedily. Exact on the instance sizes of the paper's
/// evaluation; a node limit makes worst-case behaviour safe (the returned
/// solution is then the best found and `proven_optimal` is false).
class FacilityLocationSolver {
 public:
  explicit FacilityLocationSolver(int64_t node_limit = 50'000'000)
      : node_limit_(node_limit) {}

  /// `warm_start`, when given (size = NumSensors()), seeds the incumbent
  /// (e.g. from a local-search solution), which typically prunes most of
  /// the tree.
  FacilityLocationSolution Solve(const FacilityLocationProblem& problem,
                                 const std::vector<char>* warm_start = nullptr) const;

 private:
  int64_t node_limit_;
};

/// Evaluates the objective of opening exactly the sensors with open[i] != 0
/// (each location takes its best positive value among open sensors).
/// Also fills `assignment` if non-null.
double EvaluateOpenSet(const FacilityLocationProblem& problem,
                       const std::vector<char>& open,
                       std::vector<int>* assignment = nullptr);

/// Exhaustive solver over all 2^n subsets, for testing the branch-and-bound
/// (n <= 20 or so).
FacilityLocationSolution SolveByBruteForce(const FacilityLocationProblem& problem);

}  // namespace psens

#endif  // PSENS_SOLVER_FACILITY_LOCATION_H_
