#ifndef PSENS_SOLVER_SIMPLEX_H_
#define PSENS_SOLVER_SIMPLEX_H_

#include <vector>

#include "la/matrix.h"

namespace psens {

/// Result of an LP solve.
enum class LpStatus {
  kOptimal,
  kUnbounded,
  kInfeasible,
  kIterationLimit,
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Dense primal simplex solver for problems in the form
///
///   maximize    c^T x
///   subject to  A x <= b,  x >= 0
///
/// Negative entries in `b` are handled with a standard two-phase method.
/// Bland's rule is used when degeneracy is detected, guaranteeing
/// termination. Purpose-built for LP relaxations of the paper's BILP
/// (Eq. 9) and for tests — not a production LP code.
class SimplexSolver {
 public:
  /// `a` is m x n; `b` has m entries; `c` has n entries.
  LpSolution Maximize(const Matrix& a, const std::vector<double>& b,
                      const std::vector<double>& c,
                      int max_iterations = 100000);
};

}  // namespace psens

#endif  // PSENS_SOLVER_SIMPLEX_H_
