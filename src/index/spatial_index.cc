#include "index/spatial_index.h"

#include <memory>
#include <utility>

#include "core/slot.h"
#include "index/kd_tree.h"
#include "index/uniform_grid.h"

namespace psens {

std::unique_ptr<SpatialIndex> BuildUniformGridIndex(const std::vector<Point>& points,
                                                    double cell_size) {
  return std::make_unique<UniformGridIndex>(points, cell_size);
}

std::unique_ptr<SpatialIndex> BuildKdTreeIndex(const std::vector<Point>& points) {
  return std::make_unique<KdTreeIndex>(points);
}

std::unique_ptr<SpatialIndex> BuildSpatialIndexAuto(const std::vector<Point>& points) {
  // Building the grid is O(n) — cheap enough to double as the density
  // probe. Keep it when enough cells are occupied; otherwise the points
  // are clustered and the k-d tree's adaptive splits pay off.
  auto grid = std::make_unique<UniformGridIndex>(points);
  if (grid->OccupiedCellFraction() >= kGridOccupancyThreshold) return grid;
  return std::make_unique<KdTreeIndex>(points);
}

void AttachSlotIndex(SlotContext& slot) {
  slot.index.reset();
  if (slot.index_policy == SlotIndexPolicy::kNone) return;
  const int n = static_cast<int>(slot.sensors.size());
  if (slot.index_policy == SlotIndexPolicy::kAuto && n < slot.index_auto_threshold)
    return;
  if (n == 0) return;
  std::vector<Point> points;
  points.reserve(slot.sensors.size());
  for (const SlotSensor& s : slot.sensors) points.push_back(s.location);
  switch (slot.index_policy) {
    case SlotIndexPolicy::kGrid:
      slot.index = BuildUniformGridIndex(points);
      break;
    case SlotIndexPolicy::kKdTree:
      slot.index = BuildKdTreeIndex(points);
      break;
    case SlotIndexPolicy::kAuto:
      slot.index = BuildSpatialIndexAuto(points);
      break;
    case SlotIndexPolicy::kNone:
      break;  // handled above
  }
}

}  // namespace psens
